// Package dagger is a Go reproduction of "Dagger: Efficient and Fast RPCs
// in Cloud Microservices with Near-Memory Reconfigurable NICs" (Lazarev,
// Xiang, Adit, Zhang, Delimitrou — ASPLOS 2021).
//
// The repository contains two coupled systems:
//
//   - A functional Dagger RPC framework (internal/core over
//     internal/fabric): IDL and code generator, client pools, threaded
//     servers, completion queues, per-flow rings, connection management and
//     NIC-side load balancing, runnable in-process. The memcached and MICA
//     ports (internal/kvs) and the 8-tier Flight Registration application
//     (internal/flight) run on it.
//
//   - A calibrated discrete-event timing model (internal/sim,
//     internal/interconnect, internal/nicmodel, internal/netmodel) that
//     regenerates every table and figure of the paper's evaluation via
//     internal/experiments and cmd/daggerbench.
//
// See DESIGN.md for the system inventory and the per-experiment index, and
// EXPERIMENTS.md for paper-vs-measured results. The root bench_test.go
// exposes each experiment as a testing.B benchmark.
package dagger
