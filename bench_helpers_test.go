package dagger_test

import (
	"context"
	"testing"

	"dagger/internal/core"
	"dagger/internal/fabric"
)

// Small wrappers keeping the functional-stack benchmarks terse.

func serverCfg() core.ServerConfig { return core.ServerConfig{} }

type echoSrv struct{ s *core.RpcThreadedServer }

func newEchoServer(tb testing.TB, nic *fabric.SoftNIC) *echoSrv {
	tb.Helper()
	s := core.NewRpcThreadedServer(nic, serverCfg())
	if err := s.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil }); err != nil {
		tb.Fatal(err)
	}
	if err := s.Start(); err != nil {
		tb.Fatal(err)
	}
	return &echoSrv{s: s}
}

func (e *echoSrv) stop() { e.s.Stop() }

type benchClient struct{ rc *core.RpcClient }

func newClient(tb testing.TB, nic *fabric.SoftNIC, dst uint32) *benchClient {
	tb.Helper()
	rc, err := core.NewRpcClient(nic, 0)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := rc.OpenConnection(dst); err != nil {
		rc.Close()
		tb.Fatal(err)
	}
	return &benchClient{rc: rc}
}

func (c *benchClient) call(fn uint16, req []byte) ([]byte, error) { return c.rc.Call(fn, req) }
func (c *benchClient) close()                                     { c.rc.Close() }
