module dagger

go 1.22
