package microsim

import (
	"math"
	"math/rand"

	"dagger/internal/dataplane"
	"dagger/internal/sim"
	"dagger/internal/stats"
)

// Mode selects where networking processing runs (Figure 5's experiment).
type Mode int

// Core placement modes.
const (
	// IsolatedNetworking pins network interrupt/RPC processing to separate
	// cores: tier cores run application logic only.
	IsolatedNetworking Mode = iota
	// SharedCores runs networking and application logic on the same cores:
	// networking processing occupies tier cores and interferes.
	SharedCores
)

func (m Mode) String() string {
	if m == SharedCores {
		return "shared"
	}
	return "isolated"
}

// RunConfig parametrizes one characterization run.
type RunConfig struct {
	Graph *Graph
	// QPS is the offered end-to-end load.
	QPS float64
	// Requests is the number of end-to-end requests to complete.
	Requests int
	// Seed fixes the run's randomness.
	Seed int64
	// Mode places networking on shared or isolated cores.
	Mode Mode
	// BudgetMicros gives every request a deadline budget in microseconds
	// (the wire header's Budget field in the functional stack); 0 means
	// requests carry no deadline.
	BudgetMicros uint32
	// Shed applies the dataplane shed policy at every tier: a request whose
	// budget has expired is dropped when a core is granted, before it
	// occupies the core (shed-before-dispatch). With Shed false expired
	// requests still execute, which is the overload tail-amplification the
	// budget exists to prevent.
	Shed bool
	// MarkDepth enables ECN-style congestion marking at every tier: a visit
	// that finds MarkDepth/2 or more requests already queued for the tier's
	// cores picks up a congestion mark (dataplane.Mark over the core queue
	// depth), and the mark sticks to the request tier-to-tier — exactly how
	// a wire mark survives reassembly and response echo in the functional
	// stack. 0 disables marking.
	MarkDepth int
}

// TierStats aggregates per-visit measurements at one tier.
type TierStats struct {
	Total   *stats.Histogram // ns, full visit latency (incl. children wait? no — own components only)
	Net     *stats.Histogram // ns, RPC+TCP+queueing
	RPC     *stats.Histogram // ns, RPC processing + queueing share
	TCP     *stats.Histogram // ns, TCP/IP processing
	Compute *stats.Histogram // ns, application compute
}

func newTierStats() *TierStats {
	return &TierStats{
		Total:   stats.NewHistogram(),
		Net:     stats.NewHistogram(),
		RPC:     stats.NewHistogram(),
		TCP:     stats.NewHistogram(),
		Compute: stats.NewHistogram(),
	}
}

// NetFrac returns the networking share of latency at percentile p, computed
// as the ratio of the component percentiles.
func (ts *TierStats) NetFrac(p float64) float64 {
	tot := ts.Total.Percentile(p)
	if tot == 0 {
		return 0
	}
	f := float64(ts.Net.Percentile(p)) / float64(tot)
	if f > 1 {
		f = 1
	}
	return f
}

// Result is one run's output.
type Result struct {
	Config   RunConfig
	PerTier  map[string]*TierStats
	E2E      *TierStats
	PerType  map[string]*stats.Histogram // request type -> e2e latency, ns
	ReqSizes map[string][]int64          // tier -> request sizes
	RspSizes map[string][]int64
	Finished int
	// Shed counts requests dropped by the dataplane shed policy before
	// completing (only nonzero when Config.Shed is set). Shed requests do
	// not contribute to the latency histograms: they have no completion.
	Shed int
	// Marked counts completed requests that picked up a congestion mark at
	// any tier on their call tree (only nonzero when Config.MarkDepth > 0).
	Marked int
}

// AllReqSizes flattens request sizes across tiers.
func (r *Result) AllReqSizes() []int64 {
	var out []int64
	for _, v := range r.ReqSizes {
		out = append(out, v...)
	}
	return out
}

// AllRspSizes flattens response sizes across tiers.
func (r *Result) AllRspSizes() []int64 {
	var out []int64
	for _, v := range r.RspSizes {
		out = append(out, v...)
	}
	return out
}

type runner struct {
	cfg   RunConfig
	eng   *sim.Engine
	rng   *rand.Rand
	cores []*sim.Resource
	res   *Result
}

// Run executes one characterization run to completion.
func Run(cfg RunConfig) *Result {
	if cfg.Requests <= 0 {
		cfg.Requests = 2000
	}
	r := &runner{
		cfg: cfg,
		eng: sim.NewEngine(),
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
		res: &Result{
			Config:   cfg,
			PerTier:  map[string]*TierStats{},
			E2E:      newTierStats(),
			PerType:  map[string]*stats.Histogram{},
			ReqSizes: map[string][]int64{},
			RspSizes: map[string][]int64{},
		},
	}
	for _, t := range cfg.Graph.Tiers {
		r.cores = append(r.cores, sim.NewResource(r.eng, t.Cores))
		r.res.PerTier[t.Name] = newTierStats()
	}
	// Open-loop Poisson arrivals.
	gap := func() sim.Time {
		g := sim.Time(-math.Log(1-r.rng.Float64()) / cfg.QPS * 1e9)
		if g < 1 {
			g = 1
		}
		return g
	}
	launched := 0
	var arrive func()
	arrive = func() {
		if launched >= cfg.Requests {
			return
		}
		launched++
		typ := cfg.Graph.pickType(r.rng)
		start := r.eng.Now()
		typeHist := r.res.PerType[typ.Name]
		if typeHist == nil {
			typeHist = stats.NewHistogram()
			r.res.PerType[typ.Name] = typeHist
		}
		req := &reqState{start: start}
		r.visit(typ.Root, req, func(net, comp sim.Time) {
			if req.shed {
				r.res.Shed++
				return
			}
			if req.marked {
				r.res.Marked++
			}
			total := r.eng.Now() - start
			r.res.E2E.Total.Record(int64(total))
			r.res.E2E.Net.Record(int64(net))
			r.res.E2E.Compute.Record(int64(comp))
			typeHist.Record(int64(total))
			r.res.Finished++
		})
		r.eng.After(gap(), arrive)
	}
	r.eng.After(0, arrive)
	r.eng.Run()
	return r.res
}

// reqState is one end-to-end request's budget bookkeeping: its virtual
// arrival time (the budget's anchor), whether any tier has shed it, and
// whether any tier's queue congestion-marked it. A shed request's remaining
// visits short-circuit without occupying cores; a mark sticks for the rest
// of the call tree (the wire stamp survives every hop).
type reqState struct {
	start  sim.Time
	shed   bool
	marked bool
}

// visit executes one call-tree node: queue for the tier's cores, pay
// networking and compute costs, fan out to children in parallel, and
// report this subtree's accumulated networking and compute time.
func (r *runner) visit(c Call, req *reqState, done func(net, comp sim.Time)) {
	tier := &r.cfg.Graph.Tiers[c.Tier]
	ts := r.res.PerTier[tier.Name]
	for i := 0; i < max(1, c.Count); i++ {
		r.visitOnce(tier, ts, c, req, done)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (r *runner) visitOnce(tier *Tier, ts *TierStats, c Call, req *reqState, done func(net, comp sim.Time)) {
	// Sample this visit's costs.
	compute := tier.ComputeMean
	if tier.ComputeSigma > 0 {
		compute = sim.Time(float64(tier.ComputeMean) * math.Exp(tier.ComputeSigma*r.rng.NormFloat64()-tier.ComputeSigma*tier.ComputeSigma/2))
	}
	rpcCost, tcpCost := tier.RPCCost, tier.TCPCost

	// Record this visit's RPC sizes for Figure 4.
	r.res.ReqSizes[tier.Name] = append(r.res.ReqSizes[tier.Name], tier.ReqSize.Sample(r.rng))
	r.res.RspSizes[tier.Name] = append(r.res.RspSizes[tier.Name], tier.RespSize.Sample(r.rng))

	arrival := r.eng.Now()
	core := r.cores[r.cfg.Graph.TierIndex(tier.Name)]
	// ECN-style congestion marking at the tier's core queue: a visit that
	// arrives to find the queue at or past the mark threshold stamps the
	// request, and the stamp rides the request through the rest of its call
	// tree to the completion (Result.Marked).
	if r.cfg.MarkDepth > 0 && !req.marked && dataplane.Mark(core.QueueLen(), r.cfg.MarkDepth) {
		req.marked = true
	}
	core.Acquire(func() {
		queueWait := r.eng.Now() - arrival
		// Shed-before-dispatch (the dataplane shed policy): when the
		// request's budget expired while it queued, release the core
		// without executing — the caller has already given up, so the
		// occupancy would be pure waste. A request shed at any tier stays
		// shed for the rest of its call tree.
		if r.cfg.Shed && !req.shed {
			elapsed := dataplane.ElapsedMicros(int64(r.eng.Now() - req.start))
			req.shed = dataplane.ShouldShed(r.cfg.BudgetMicros, elapsed)
		}
		if req.shed {
			core.Release()
			done(queueWait, 0)
			return
		}
		// Core occupancy: in shared mode the core also runs the RPC and
		// TCP processing; isolated mode offloads it (it still takes wall
		// time, on other cores, but does not occupy this tier's cores).
		occupancy := compute
		if r.cfg.Mode == SharedCores {
			occupancy += rpcCost + tcpCost
		}
		r.eng.After(occupancy, func() {
			core.Release()
			// Networking wall time: processing plus queueing (the paper's
			// profiler attributes queue time to the RPC layer, §3.1).
			netHere := rpcCost + tcpCost + queueWait
			finish := func(childNet, childComp sim.Time) {
				visitNet := netHere + childNet
				visitComp := compute + childComp
				ts.Total.Record(int64(queueWait + rpcCost + tcpCost + compute))
				ts.Net.Record(int64(netHere))
				ts.RPC.Record(int64(rpcCost + queueWait))
				ts.TCP.Record(int64(tcpCost))
				ts.Compute.Record(int64(compute))
				done(visitNet, visitComp)
			}
			if len(c.Children) == 0 {
				finish(0, 0)
				return
			}
			// Fan out to children in parallel; wait for all.
			remaining := 0
			for _, ch := range c.Children {
				remaining += max(1, ch.Count)
			}
			var maxNet, maxComp sim.Time
			for _, ch := range c.Children {
				r.visit(ch, req, func(n, cp sim.Time) {
					if n > maxNet {
						maxNet = n
					}
					if cp > maxComp {
						maxComp = cp
					}
					remaining--
					if remaining == 0 {
						finish(maxNet, maxComp)
					}
				})
			}
		})
	})
}
