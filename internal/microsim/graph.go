// Package microsim is the characterization substrate for §3 of the paper:
// a queueing simulator for microservice call graphs in the style of
// DeathStarBench's Social Network and Media applications (Figures 1 and 2).
// Each tier has a core pool, a compute-time distribution, and per-visit
// RPC- and TCP/IP-processing costs; requests traverse the graph per request
// type, and the simulator records per-tier and end-to-end latency broken
// down into compute vs networking — regenerating Figure 3 (networking
// share of median/tail latency vs load), Figure 4 (RPC size distributions)
// and Figure 5 (CPU interference between networking and application logic).
package microsim

import (
	"math"
	"math/rand"

	"dagger/internal/sim"
	"dagger/internal/workload"
)

// Tier is one microservice.
type Tier struct {
	Name  string
	Cores int
	// ComputeMean/ComputeSigma parametrize a log-normal compute time in
	// nanoseconds (sigma of ln; 0 sigma = deterministic).
	ComputeMean  sim.Time
	ComputeSigma float64
	// RPCCost and TCPCost are the per-visit networking processing costs
	// (request+response combined) of the commodity stack this tier runs on.
	RPCCost sim.Time
	TCPCost sim.Time
	// ReqSize and RespSize sample this tier's RPC request/response sizes.
	ReqSize  workload.SizeDist
	RespSize workload.SizeDist
}

// Call is an edge in a request's fan-out: the callee tier index and calls
// issued in parallel to it.
type Call struct {
	Tier  int
	Count int
	// Children are nested calls made from within the callee.
	Children []Call
}

// RequestType is one end-user operation: a weighted call tree rooted at the
// application's entry tier.
type RequestType struct {
	Name   string
	Weight float64
	Root   Call
}

// Graph is an end-to-end application.
type Graph struct {
	Name  string
	Tiers []Tier
	Types []RequestType
}

// TierIndex returns the index of a named tier, or -1.
func (g *Graph) TierIndex(name string) int {
	for i, t := range g.Tiers {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// Tier name constants for the profiled Social Network subset (Figure 3's
// s1..s6).
const (
	TierNginx       = "nginx"
	TierComposePost = "ComposePost"
	TierMedia       = "Media"       // s1
	TierUser        = "User"        // s2
	TierUniqueID    = "UniqueID"    // s3
	TierText        = "Text"        // s4
	TierUserMention = "UserMention" // s5
	TierUrlShorten  = "UrlShorten"  // s6
	TierPostStorage = "PostStorage"
	TierTimeline    = "Timeline"
)

// small helper distributions
func fixed(n int64) workload.SizeDist { return workload.FixedSize(n) }

func logn(median int64, sigma float64, min, max int64) workload.SizeDist {
	return workload.LogNormalSize{Mu: math.Log(float64(median)), Sigma: sigma, Min: min, Max: max}
}

// SocialNetwork builds the Social Network graph restricted to the profiled
// subset: nginx front-end, ComposePost middle tier, the six profiled
// services s1..s6, and the storage back-ends. Compute times and networking
// costs are set so the low-load breakdown matches §3.1: networking is ~40%
// of per-tier latency on average and up to ~80% for the light User and
// UniqueID tiers; Text and UserMention are compute-heavy.
func SocialNetwork() *Graph {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	// Commodity-stack networking costs per visit (Thrift RPC + kernel
	// TCP/IP, request+response processing).
	const rpc, tcp = 160, 100 // microseconds
	g := &Graph{
		Name: "social-network",
		Tiers: []Tier{
			{Name: TierNginx, Cores: 8, ComputeMean: us(80), ComputeSigma: 0.3, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(180, 0.6, 32, 1024), RespSize: fixed(48)},
			{Name: TierComposePost, Cores: 4, ComputeMean: us(150), ComputeSigma: 0.3, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(350, 0.7, 64, 2048), RespSize: fixed(32)},
			{Name: TierMedia, Cores: 4, ComputeMean: us(420), ComputeSigma: 0.4, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(56), RespSize: fixed(24)},
			{Name: TierUser, Cores: 4, ComputeMean: us(110), ComputeSigma: 0.3, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(48), RespSize: fixed(24)},
			{Name: TierUniqueID, Cores: 4, ComputeMean: us(90), ComputeSigma: 0.2, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(40), RespSize: fixed(16)},
			{Name: TierText, Cores: 2, ComputeMean: us(1500), ComputeSigma: 0.4, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(580, 0.5, 64, 4096), RespSize: fixed(32)},
			{Name: TierUserMention, Cores: 2, ComputeMean: us(1000), ComputeSigma: 0.4, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(150, 0.5, 32, 1024), RespSize: fixed(24)},
			{Name: TierUrlShorten, Cores: 2, ComputeMean: us(380), ComputeSigma: 0.4, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(300, 0.6, 48, 2048), RespSize: fixed(40)},
			{Name: TierPostStorage, Cores: 4, ComputeMean: us(240), ComputeSigma: 0.5, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(400, 0.7, 64, 4096), RespSize: fixed(32)},
			{Name: TierTimeline, Cores: 4, ComputeMean: us(200), ComputeSigma: 0.5, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(64), RespSize: logn(900, 0.8, 64, 8192)},
		},
	}
	ix := g.TierIndex
	compose := Call{Tier: ix(TierNginx), Count: 1, Children: []Call{
		{Tier: ix(TierComposePost), Count: 1, Children: []Call{
			{Tier: ix(TierMedia), Count: 1},
			{Tier: ix(TierUser), Count: 1},
			{Tier: ix(TierUniqueID), Count: 1},
			{Tier: ix(TierText), Count: 1, Children: []Call{
				{Tier: ix(TierUserMention), Count: 1},
				{Tier: ix(TierUrlShorten), Count: 1},
			}},
			{Tier: ix(TierPostStorage), Count: 1},
		}},
	}}
	readHome := Call{Tier: ix(TierNginx), Count: 1, Children: []Call{
		{Tier: ix(TierTimeline), Count: 1, Children: []Call{
			{Tier: ix(TierPostStorage), Count: 1},
			{Tier: ix(TierUser), Count: 1},
		}},
	}}
	readUser := Call{Tier: ix(TierNginx), Count: 1, Children: []Call{
		{Tier: ix(TierTimeline), Count: 1, Children: []Call{
			{Tier: ix(TierPostStorage), Count: 1},
		}},
	}}
	g.Types = []RequestType{
		{Name: "compose-post", Weight: 0.6, Root: compose},
		{Name: "read-home-timeline", Weight: 0.25, Root: readHome},
		{Name: "read-user-timeline", Weight: 0.15, Root: readUser},
	}
	return g
}

// MediaServing builds the Media application of Figure 2, reduced to its
// browse/review paths; used alongside Social Network for the Figure 4 size
// CDFs.
func MediaServing() *Graph {
	us := func(n int64) sim.Time { return sim.Time(n) * sim.Microsecond }
	const rpc, tcp = 160, 100
	g := &Graph{
		Name: "media-serving",
		Tiers: []Tier{
			{Name: "nginx", Cores: 8, ComputeMean: us(80), ComputeSigma: 0.3, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(200, 0.6, 32, 1024), RespSize: fixed(48)},
			{Name: "ComposeReview", Cores: 4, ComputeMean: us(140), ComputeSigma: 0.3, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(420, 0.7, 64, 2048), RespSize: fixed(32)},
			{Name: "MovieId", Cores: 4, ComputeMean: us(90), ComputeSigma: 0.2, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(48), RespSize: fixed(24)},
			{Name: "UniqueId", Cores: 4, ComputeMean: us(85), ComputeSigma: 0.2, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(40), RespSize: fixed(16)},
			{Name: "Text", Cores: 2, ComputeMean: us(1300), ComputeSigma: 0.4, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(640, 0.5, 64, 4096), RespSize: fixed(32)},
			{Name: "Rating", Cores: 4, ComputeMean: us(120), ComputeSigma: 0.3, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(56), RespSize: fixed(24)},
			{Name: "MovieInfo", Cores: 4, ComputeMean: us(300), ComputeSigma: 0.5, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: fixed(64), RespSize: logn(1200, 0.8, 64, 8192)},
			{Name: "ReviewStorage", Cores: 4, ComputeMean: us(260), ComputeSigma: 0.5, RPCCost: us(rpc), TCPCost: us(tcp),
				ReqSize: logn(500, 0.7, 64, 4096), RespSize: fixed(32)},
		},
	}
	ix := g.TierIndex
	composeReview := Call{Tier: ix("nginx"), Count: 1, Children: []Call{
		{Tier: ix("ComposeReview"), Count: 1, Children: []Call{
			{Tier: ix("MovieId"), Count: 1},
			{Tier: ix("UniqueId"), Count: 1},
			{Tier: ix("Text"), Count: 1},
			{Tier: ix("Rating"), Count: 1},
			{Tier: ix("ReviewStorage"), Count: 1},
		}},
	}}
	browse := Call{Tier: ix("nginx"), Count: 1, Children: []Call{
		{Tier: ix("MovieInfo"), Count: 1, Children: []Call{
			{Tier: ix("ReviewStorage"), Count: 1},
			{Tier: ix("Rating"), Count: 1},
		}},
	}}
	g.Types = []RequestType{
		{Name: "compose-review", Weight: 0.4, Root: composeReview},
		{Name: "browse-movie", Weight: 0.6, Root: browse},
	}
	return g
}

// pickType samples a request type by weight.
func (g *Graph) pickType(rng *rand.Rand) *RequestType {
	total := 0.0
	for i := range g.Types {
		total += g.Types[i].Weight
	}
	x := rng.Float64() * total
	for i := range g.Types {
		if x < g.Types[i].Weight {
			return &g.Types[i]
		}
		x -= g.Types[i].Weight
	}
	return &g.Types[len(g.Types)-1]
}
