package microsim

import (
	"testing"

	"dagger/internal/stats"
)

func run(t *testing.T, qps float64, mode Mode, n int) *Result {
	t.Helper()
	res := Run(RunConfig{Graph: SocialNetwork(), QPS: qps, Requests: n, Seed: 11, Mode: mode})
	if res.Finished != n {
		t.Fatalf("finished %d of %d", res.Finished, n)
	}
	return res
}

func TestRunCompletesAllRequests(t *testing.T) {
	res := run(t, 200, IsolatedNetworking, 500)
	if res.E2E.Total.Count() != 500 {
		t.Fatal("e2e histogram incomplete")
	}
	for _, tier := range []string{TierUser, TierText, TierUniqueID} {
		if res.PerTier[tier].Total.Count() == 0 {
			t.Fatalf("tier %s saw no traffic", tier)
		}
	}
}

// §3.1: networking is a large share of per-tier latency — up to ~80% for
// the light User and UniqueID tiers, much lower for compute-heavy Text.
func TestNetworkingShareShape(t *testing.T) {
	res := run(t, 200, IsolatedNetworking, 1500)
	user := res.PerTier[TierUser].NetFrac(50)
	uid := res.PerTier[TierUniqueID].NetFrac(50)
	text := res.PerTier[TierText].NetFrac(50)
	if user < 0.6 || uid < 0.6 {
		t.Errorf("light tiers: User %.2f, UniqueID %.2f networking share, want > 0.6", user, uid)
	}
	if text > 0.4 {
		t.Errorf("Text networking share %.2f, want < 0.4 (compute-heavy)", text)
	}
	// End-to-end: at least a third of latency is communication.
	if e2e := res.E2E.NetFrac(50); e2e < 0.33 {
		t.Errorf("e2e networking share %.2f, want >= 0.33", e2e)
	}
}

// Networking share grows with load (queueing attributed to the RPC layer).
func TestNetworkingShareGrowsWithLoad(t *testing.T) {
	low := run(t, 200, SharedCores, 1500)
	high := run(t, 800, SharedCores, 1500)
	lowTail := low.E2E.NetFrac(99)
	highTail := high.E2E.NetFrac(99)
	if highTail < lowTail {
		t.Errorf("tail networking share fell with load: %.2f -> %.2f", lowTail, highTail)
	}
	// Latency itself must grow with load.
	if high.E2E.Total.Percentile(99) <= low.E2E.Total.Percentile(99) {
		t.Error("tail latency did not grow with load")
	}
}

// Figure 5: sharing cores between networking and logic inflates latency,
// and the inflation worsens with load.
func TestInterferenceInflatesLatency(t *testing.T) {
	iso := run(t, 600, IsolatedNetworking, 1500)
	shared := run(t, 600, SharedCores, 1500)
	isoP99 := iso.E2E.Total.Percentile(99)
	sharedP99 := shared.E2E.Total.Percentile(99)
	if sharedP99 <= isoP99 {
		t.Errorf("shared p99 %v <= isolated p99 %v", sharedP99, isoP99)
	}
	isoMed := iso.E2E.Total.Percentile(50)
	sharedMed := shared.E2E.Total.Percentile(50)
	if sharedMed <= isoMed {
		t.Errorf("shared median %v <= isolated median %v", sharedMed, isoMed)
	}
	// Interference grows with load: the shared/isolated tail gap at 800
	// QPS exceeds the gap at 200 QPS.
	isoLow := run(t, 200, IsolatedNetworking, 1000)
	sharedLow := run(t, 200, SharedCores, 1000)
	gapLow := float64(sharedLow.E2E.Total.Percentile(99)) / float64(isoLow.E2E.Total.Percentile(99))
	gapHigh := float64(sharedP99) / float64(isoP99)
	if gapHigh < gapLow {
		t.Errorf("interference gap shrank with load: %.2f -> %.2f", gapLow, gapHigh)
	}
}

// Figure 4: 75% of requests < 512 B; >90% of responses <= 64 B; per-service
// shapes (Text median ~580 B; Media/User/UniqueID <= 64 B).
func TestRPCSizeDistributions(t *testing.T) {
	res := run(t, 200, IsolatedNetworking, 2000)
	req := stats.NewCDF(res.AllReqSizes())
	rsp := stats.NewCDF(res.AllRspSizes())
	if f := req.At(512); f < 0.65 {
		t.Errorf("requests <= 512B: %.2f, want >= 0.65 (paper: 75%%)", f)
	}
	if f := rsp.At(64); f < 0.85 {
		t.Errorf("responses <= 64B: %.2f, want >= 0.85 (paper: >90%%)", f)
	}
	// Per-service: Media/User/UniqueID tiny; Text median around 580 B.
	for _, tier := range []string{TierMedia, TierUser, TierUniqueID} {
		c := stats.NewCDF(res.ReqSizes[tier])
		if c.At(64) < 0.99 {
			t.Errorf("%s requests should be <= 64B", tier)
		}
	}
	text := stats.NewCDF(res.ReqSizes[TierText])
	med := text.Quantile(0.5)
	if med < 350 || med > 900 {
		t.Errorf("Text median request size %d, want ~580", med)
	}
}

func TestMediaServingGraph(t *testing.T) {
	res := Run(RunConfig{Graph: MediaServing(), QPS: 200, Requests: 500, Seed: 3, Mode: IsolatedNetworking})
	if res.Finished != 500 {
		t.Fatalf("finished %d", res.Finished)
	}
	if res.PerTier["MovieInfo"].Total.Count() == 0 {
		t.Fatal("browse path unused")
	}
	if res.PerTier["Text"].Total.Count() == 0 {
		t.Fatal("compose path unused")
	}
}

func TestGraphTierIndex(t *testing.T) {
	g := SocialNetwork()
	if g.TierIndex(TierUser) < 0 {
		t.Fatal("User tier missing")
	}
	if g.TierIndex("nope") != -1 {
		t.Fatal("unknown tier should return -1")
	}
}

func TestDeterministicRuns(t *testing.T) {
	a := Run(RunConfig{Graph: SocialNetwork(), QPS: 300, Requests: 300, Seed: 9, Mode: SharedCores})
	b := Run(RunConfig{Graph: SocialNetwork(), QPS: 300, Requests: 300, Seed: 9, Mode: SharedCores})
	if a.E2E.Total.Percentile(50) != b.E2E.Total.Percentile(50) ||
		a.E2E.Total.Percentile(99) != b.E2E.Total.Percentile(99) {
		t.Fatal("same seed produced different results")
	}
}

// TestCongestionMarksCarryTierToTier pins the microsim half of the closed
// loop: under heavy load with marking enabled, requests that queue behind
// the mark threshold at any tier complete marked; at trivial load, or with
// marking disabled, no request is marked. Marks and sheds are orthogonal —
// a shed request is not counted marked (it never completes).
func TestCongestionMarksCarryTierToTier(t *testing.T) {
	base := RunConfig{Graph: SocialNetwork(), Requests: 1500, Seed: 21, Mode: IsolatedNetworking}

	hot := base
	hot.QPS = 4000 // far past the graph's capacity: queues build at every tier
	hot.MarkDepth = 8
	res := Run(hot)
	if res.Marked == 0 {
		t.Fatal("overloaded run with marking enabled produced no marks")
	}
	if res.Marked > res.Finished {
		t.Fatalf("marked %d > finished %d", res.Marked, res.Finished)
	}

	cold := base
	cold.QPS = 50 // well under capacity: queues never reach the threshold
	cold.MarkDepth = 8
	if res := Run(cold); res.Marked != 0 {
		t.Fatalf("uncongested run marked %d requests", res.Marked)
	}

	off := hot
	off.MarkDepth = 0
	if res := Run(off); res.Marked != 0 {
		t.Fatalf("marking disabled but %d requests marked", res.Marked)
	}

	// Determinism: the mark count is part of the replayable result.
	again := Run(hot)
	if again.Marked != res.Marked || again.Finished != res.Finished {
		t.Fatalf("marking not deterministic: %d/%d vs %d/%d",
			again.Marked, again.Finished, res.Marked, res.Finished)
	}
}

// Per-request-type latency: compose-post traverses the deep fan-out
// (including the heavy Text subtree) and must be slower than the timeline
// reads.
func TestPerRequestTypeLatency(t *testing.T) {
	res := run(t, 300, IsolatedNetworking, 2000)
	compose := res.PerType["compose-post"]
	readHome := res.PerType["read-home-timeline"]
	readUser := res.PerType["read-user-timeline"]
	if compose == nil || readHome == nil || readUser == nil {
		t.Fatal("per-type histograms missing")
	}
	if compose.Count()+readHome.Count()+readUser.Count() != 2000 {
		t.Fatal("per-type counts do not sum to total")
	}
	if compose.Percentile(50) <= readHome.Percentile(50) {
		t.Errorf("compose median %v should exceed read-home %v",
			compose.Percentile(50), readHome.Percentile(50))
	}
	if compose.Percentile(50) <= readUser.Percentile(50) {
		t.Errorf("compose median %v should exceed read-user %v",
			compose.Percentile(50), readUser.Percentile(50))
	}
	// Request mix weights roughly respected (60/25/15).
	frac := float64(compose.Count()) / 2000
	if frac < 0.5 || frac > 0.7 {
		t.Errorf("compose fraction %.2f, want ~0.6", frac)
	}
}
