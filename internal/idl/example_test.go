package idl_test

import (
	"fmt"
	"log"
	"strings"

	"dagger/internal/idl"
)

// Example parses the paper's Listing 1 schema and generates Go bindings.
func Example() {
	const schema = `
Message PingRequest  { int64 nonce; }
Message PingResponse { int64 nonce; bool ok; }

Service Health {
    rpc ping(PingRequest) returns(PingResponse);
}
`
	file, err := idl.Parse(schema)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("messages=%d services=%d\n", len(file.Messages), len(file.Services))

	src := idl.Generate(file, "healthpb")
	fmt.Println(strings.Contains(src, "func (s *HealthClient) Ping(ctx context.Context, req *PingRequest) (*PingResponse, error)"))
	fmt.Println(strings.Contains(src, "type HealthServer interface"))
	// Output:
	// messages=2 services=1
	// true
	// true
}

// ExampleMessage_FixedWireSize shows layout introspection for fixed-width
// messages.
func ExampleMessage_FixedWireSize() {
	file, _ := idl.Parse(`Message Point { int32 x; int32 y; char[8] tag; }`)
	m, _ := file.Message("Point")
	size, fixed := m.FixedWireSize()
	fmt.Println(size, fixed)
	// Output: 16 true
}
