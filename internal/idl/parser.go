package idl

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

type token struct {
	kind string // "ident", "punct", "int", "eof"
	text string
	line int
}

type lexer struct {
	src  []rune
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: []rune(src), line: 1} }

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case unicode.IsSpace(c):
			l.pos++
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			goto scan
		}
	}
	return token{kind: "eof", line: l.line}, nil

scan:
	c := l.src[l.pos]
	switch {
	case unicode.IsLetter(c) || c == '_':
		start := l.pos
		for l.pos < len(l.src) && (unicode.IsLetter(l.src[l.pos]) || unicode.IsDigit(l.src[l.pos]) || l.src[l.pos] == '_') {
			l.pos++
		}
		return token{kind: "ident", text: string(l.src[start:l.pos]), line: l.line}, nil
	case unicode.IsDigit(c):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(l.src[l.pos]) {
			l.pos++
		}
		return token{kind: "int", text: string(l.src[start:l.pos]), line: l.line}, nil
	case strings.ContainsRune("{}();[],", c):
		l.pos++
		return token{kind: "punct", text: string(c), line: l.line}, nil
	default:
		return token{}, fmt.Errorf("idl: line %d: unexpected character %q", l.line, c)
	}
}

type parser struct {
	lex  *lexer
	tok  token
	err  error
	file File
}

// Parse parses IDL source text into a validated File.
func Parse(src string) (*File, error) {
	p := &parser{lex: newLexer(src)}
	p.advance()
	for p.err == nil && p.tok.kind != "eof" {
		switch {
		case p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "message"):
			p.parseMessage()
		case p.tok.kind == "ident" && strings.EqualFold(p.tok.text, "service"):
			p.parseService()
		default:
			p.fail("expected Message or Service, got %q", p.tok.text)
		}
	}
	if p.err != nil {
		return nil, p.err
	}
	if err := p.file.Validate(); err != nil {
		return nil, err
	}
	return &p.file, nil
}

func (p *parser) advance() {
	if p.err != nil {
		return
	}
	t, err := p.lex.next()
	if err != nil {
		p.err = err
		return
	}
	p.tok = t
}

func (p *parser) fail(format string, args ...interface{}) {
	if p.err == nil {
		p.err = fmt.Errorf("idl: line %d: %s", p.tok.line, fmt.Sprintf(format, args...))
	}
}

func (p *parser) expect(kind, text string) string {
	if p.err != nil {
		return ""
	}
	if p.tok.kind != kind || (text != "" && p.tok.text != text) {
		p.fail("expected %s %q, got %q", kind, text, p.tok.text)
		return ""
	}
	got := p.tok.text
	p.advance()
	return got
}

func (p *parser) expectIdent() string { return p.expect("ident", "") }

func (p *parser) parseMessage() {
	p.advance() // consume "Message"
	m := Message{Name: p.expectIdent()}
	p.expect("punct", "{")
	for p.err == nil && !(p.tok.kind == "punct" && p.tok.text == "}") {
		m.Fields = append(m.Fields, p.parseField())
	}
	p.expect("punct", "}")
	if p.err == nil {
		p.file.Messages = append(p.file.Messages, m)
	}
}

func (p *parser) parseField() Field {
	var f Field
	typeName := p.expectIdent()
	switch typeName {
	case "int32":
		f.Kind = TypeInt32
	case "int64":
		f.Kind = TypeInt64
	case "uint32":
		f.Kind = TypeUint32
	case "uint64":
		f.Kind = TypeUint64
	case "bool":
		f.Kind = TypeBool
	case "bytes":
		f.Kind = TypeBytes
	case "string":
		f.Kind = TypeString
	case "char":
		f.Kind = TypeChar
		p.expect("punct", "[")
		n := p.expect("int", "")
		p.expect("punct", "]")
		if p.err == nil {
			f.ArrayLen, _ = strconv.Atoi(n)
		}
	default:
		p.fail("unknown type %q", typeName)
	}
	f.Name = p.expectIdent()
	p.expect("punct", ";")
	return f
}

func (p *parser) parseService() {
	p.advance() // consume "Service"
	s := Service{Name: p.expectIdent()}
	p.expect("punct", "{")
	for p.err == nil && !(p.tok.kind == "punct" && p.tok.text == "}") {
		s.Methods = append(s.Methods, p.parseMethod())
	}
	p.expect("punct", "}")
	if p.err == nil {
		p.file.Services = append(p.file.Services, s)
	}
}

func (p *parser) parseMethod() Method {
	if p.tok.kind != "ident" || p.tok.text != "rpc" {
		p.fail("expected rpc, got %q", p.tok.text)
		return Method{}
	}
	p.advance()
	m := Method{Name: p.expectIdent()}
	p.expect("punct", "(")
	m.Request = p.expectIdent()
	p.expect("punct", ")")
	if ret := p.expectIdent(); ret != "returns" {
		p.fail("expected returns, got %q", ret)
	}
	p.expect("punct", "(")
	m.Response = p.expectIdent()
	p.expect("punct", ")")
	p.expect("punct", ";")
	return m
}
