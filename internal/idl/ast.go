// Package idl implements Dagger's interface definition language: a
// Protobuf-inspired schema (the paper adopts the Google Protobuf IDL shape,
// Listing 1) with fixed-layout types, plus a Go code generator that emits
// message codecs, client stubs, and server dispatch glue over the core RPC
// API.
//
// Grammar (semicolons terminate fields and rpcs):
//
//	Message GetRequest {
//	    int32    timestamp;
//	    char[32] key;
//	}
//
//	Service KeyValueStore {
//	    rpc get(GetRequest) returns(GetResponse);
//	    rpc set(SetRequest) returns(SetResponse);
//	}
//
// Field types: int32, int64, uint32, uint64, bool, char[N] (fixed byte
// array), bytes and string (16-bit length-prefixed). The layout restriction
// mirrors §4.5: arguments are continuous objects without references.
package idl

import "fmt"

// TypeKind enumerates IDL field types.
type TypeKind int

// Field type kinds.
const (
	TypeInt32 TypeKind = iota
	TypeInt64
	TypeUint32
	TypeUint64
	TypeBool
	TypeChar  // char[N]
	TypeBytes // length-prefixed
	TypeString
)

func (k TypeKind) String() string {
	switch k {
	case TypeInt32:
		return "int32"
	case TypeInt64:
		return "int64"
	case TypeUint32:
		return "uint32"
	case TypeUint64:
		return "uint64"
	case TypeBool:
		return "bool"
	case TypeChar:
		return "char[]"
	case TypeBytes:
		return "bytes"
	case TypeString:
		return "string"
	default:
		return fmt.Sprintf("type(%d)", int(k))
	}
}

// Field is one message field.
type Field struct {
	Name     string
	Kind     TypeKind
	ArrayLen int // for TypeChar
}

// WireSize returns the field's encoded size; variable-length fields return
// (minimum, false).
func (f Field) WireSize() (int, bool) {
	switch f.Kind {
	case TypeInt32, TypeUint32:
		return 4, true
	case TypeInt64, TypeUint64:
		return 8, true
	case TypeBool:
		return 1, true
	case TypeChar:
		return f.ArrayLen, true
	case TypeBytes, TypeString:
		return 2, false
	default:
		return 0, false
	}
}

// Message is a named record type.
type Message struct {
	Name   string
	Fields []Field
}

// FixedWireSize returns the message's encoded size if every field is
// fixed-width.
func (m Message) FixedWireSize() (int, bool) {
	total := 0
	for _, f := range m.Fields {
		n, fixed := f.WireSize()
		if !fixed {
			return 0, false
		}
		total += n
	}
	return total, true
}

// Method is one rpc declaration in a service.
type Method struct {
	Name     string
	Request  string
	Response string
}

// Service is a named group of rpc methods.
type Service struct {
	Name    string
	Methods []Method
}

// File is a parsed IDL file.
type File struct {
	Messages []Message
	Services []Service
}

// Message looks up a message by name.
func (f *File) Message(name string) (Message, bool) {
	for _, m := range f.Messages {
		if m.Name == name {
			return m, true
		}
	}
	return Message{}, false
}

// Validate checks cross-references: every rpc request/response must name a
// declared message, and names must be unique.
func (f *File) Validate() error {
	seen := map[string]bool{}
	for _, m := range f.Messages {
		if seen[m.Name] {
			return fmt.Errorf("idl: duplicate message %q", m.Name)
		}
		seen[m.Name] = true
		fields := map[string]bool{}
		for _, fl := range m.Fields {
			if fields[fl.Name] {
				return fmt.Errorf("idl: duplicate field %q in message %q", fl.Name, m.Name)
			}
			fields[fl.Name] = true
			if fl.Kind == TypeChar && fl.ArrayLen <= 0 {
				return fmt.Errorf("idl: char array %q.%q needs positive length", m.Name, fl.Name)
			}
		}
	}
	svcSeen := map[string]bool{}
	for _, s := range f.Services {
		if svcSeen[s.Name] {
			return fmt.Errorf("idl: duplicate service %q", s.Name)
		}
		svcSeen[s.Name] = true
		mSeen := map[string]bool{}
		for _, m := range s.Methods {
			if mSeen[m.Name] {
				return fmt.Errorf("idl: duplicate rpc %q in service %q", m.Name, s.Name)
			}
			mSeen[m.Name] = true
			if _, ok := f.Message(m.Request); !ok {
				return fmt.Errorf("idl: rpc %s.%s: unknown request type %q", s.Name, m.Name, m.Request)
			}
			if _, ok := f.Message(m.Response); !ok {
				return fmt.Errorf("idl: rpc %s.%s: unknown response type %q", s.Name, m.Name, m.Response)
			}
		}
	}
	return nil
}
