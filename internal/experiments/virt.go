package experiments

import (
	"fmt"
	"io"
	"math/rand"

	"dagger/internal/interconnect"
	"dagger/internal/netmodel"
	"dagger/internal/nicmodel"
	"dagger/internal/sim"
	"dagger/internal/wire"
)

// The Figure 14 experiment: several Dagger NIC instances virtualized on one
// physical FPGA, sharing the CCI-P bus through the round-robin PCIe/UPI
// arbiter and reaching each other through the ToR switch model. The paper
// uses this setup to host the 8 flight-service tiers on one device (§5.7)
// and argues (§6) that per-instance soft configuration plus fair arbitration
// make the NIC an excellent virtualization substrate.
//
// The experiment measures per-tenant throughput in two scenarios:
//   - fair: every tenant offers the same load;
//   - antagonist: tenant 0 floods far beyond its share.
//
// Round-robin arbitration must keep the well-behaved tenants' throughput
// (nearly) unchanged in the antagonist scenario.

// VirtConfig parametrizes the virtualization experiment.
type VirtConfig struct {
	Tenants int
	// OfferedRPSPerTenant is each tenant's open-loop load.
	OfferedRPSPerTenant float64
	// AntagonistMultiplier scales tenant 0's load (1 = fair scenario).
	AntagonistMultiplier float64
	Requests             int
	Seed                 int64
}

// VirtResult reports per-tenant achieved throughput.
type VirtResult struct {
	PerTenantRPS []float64
}

// RunVirt executes the virtualization experiment.
func RunVirt(cfg VirtConfig) *VirtResult {
	if cfg.Tenants <= 0 {
		cfg.Tenants = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 50_000
	}
	if cfg.AntagonistMultiplier <= 0 {
		cfg.AntagonistMultiplier = 1
	}
	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 4}

	// One physical FPGA: a shared arbiter in front of the UPI endpoint
	// (12 ns per line grant, the §5.5 endpoint bottleneck) and one NIC
	// instance per tenant.
	arb := netmodel.NewArbiter(eng, cfg.Tenants, interconnect.EndpointRPCService)
	nics := make([]*nicmodel.NIC, cfg.Tenants)
	for i := range nics {
		n, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
			NFlows: 1, ConnCacheSize: 256, Iface: iface,
		})
		if err != nil {
			panic(err)
		}
		nics[i] = n
	}
	msg := &wire.Message{Payload: make([]byte, 64)}

	completed := make([]int, cfg.Tenants)
	firstDone := make([]sim.Time, cfg.Tenants)
	lastDone := make([]sim.Time, cfg.Tenants)

	for tenant := 0; tenant < cfg.Tenants; tenant++ {
		tenant := tenant
		offered := cfg.OfferedRPSPerTenant
		perTenant := cfg.Requests / cfg.Tenants
		if tenant == 0 {
			// The antagonist offers (and is given quota for) its inflated
			// load, so it stays active for the whole measurement window.
			offered *= cfg.AntagonistMultiplier
			perTenant = int(float64(perTenant) * cfg.AntagonistMultiplier)
		}
		gapMean := 1e9 / offered
		issued := 0
		var arrive func()
		arrive = func() {
			if issued >= perTenant {
				return
			}
			issued++
			// A tenant round trip: bus grant (arbitrated), its own NIC
			// pipeline, switch hop, and the echo back through the bus.
			arb.Request(tenant, msg.Lines(), func() {
				d := nics[tenant].PipelineDelay(msg)
				eng.After(d+netmodel.ToRDelay, func() {
					arb.Request(tenant, msg.Lines(), func() {
						if completed[tenant] == 0 {
							firstDone[tenant] = eng.Now()
						}
						completed[tenant]++
						lastDone[tenant] = eng.Now()
					})
				})
			})
			gap := sim.Time(rng.ExpFloat64() * gapMean)
			if gap < 1 {
				gap = 1
			}
			eng.After(gap, arrive)
		}
		eng.After(0, arrive)
	}
	eng.Run()

	// Rate each tenant over its own active window: tenants finish their
	// quotas at different times.
	res := &VirtResult{PerTenantRPS: make([]float64, cfg.Tenants)}
	for i, c := range completed {
		if window := lastDone[i] - firstDone[i]; window > 0 {
			res.PerTenantRPS[i] = float64(c-1) / (float64(window) / 1e9)
		}
	}
	return res
}

// RunFig14 regenerates the Figure 14 virtualization demonstration.
func RunFig14(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 14: virtualized NIC instances sharing one FPGA (round-robin arbiter)")
	n := reqs(quick, 200_000)
	fair := RunVirt(VirtConfig{Tenants: 4, OfferedRPSPerTenant: 5e6, Requests: n, Seed: 1})
	antagonist := RunVirt(VirtConfig{Tenants: 4, OfferedRPSPerTenant: 5e6,
		AntagonistMultiplier: 10, Requests: n, Seed: 1})
	fmt.Fprintf(w, "  %-22s", "scenario")
	for i := 0; i < 4; i++ {
		fmt.Fprintf(w, "  tenant%d(Mrps)", i)
	}
	fmt.Fprintln(w)
	row := func(name string, r *VirtResult) {
		fmt.Fprintf(w, "  %-22s", name)
		for _, rps := range r.PerTenantRPS {
			fmt.Fprintf(w, "  %13.1f", rps/1e6)
		}
		fmt.Fprintln(w)
	}
	row("fair (5 Mrps each)", fair)
	row("tenant0 floods (x10)", antagonist)
	fmt.Fprintln(w, "  round-robin arbitration isolates well-behaved tenants from the antagonist")
	return nil
}
