package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/nicmodel"
	"dagger/internal/overload"
	"dagger/internal/sim"
	"dagger/internal/stats"
	"dagger/internal/wire"
	"dagger/internal/workload"
)

// OverloadConfig parametrizes one point of the paper's overload story
// (§4.2, Fig. 7) on the timing stack: an open-loop client offers load —
// possibly past the server core's capacity — and every request carries a
// deadline budget. With Shed set the server NIC applies the dataplane shed
// policy before dispatch (nicmodel.NIC.ShedExpired): budget-expired work is
// dropped at core-grant time instead of occupying the core. Without Shed
// the same expired work still executes, which is the tail amplification the
// budget exists to prevent.
type OverloadConfig struct {
	// Iface is the CPU-NIC interface under test.
	Iface interconnect.Config
	// OfferedRPS is the open-loop offered load.
	OfferedRPS float64
	// Requests is the number of RPCs to issue.
	Requests int
	// BudgetMicros is the per-request deadline budget (µs); 0 disables
	// deadlines entirely.
	BudgetMicros uint32
	// Shed enables shed-before-dispatch at the server.
	Shed bool
	Seed int64
}

// OverloadResult is one overload point's measured outcome.
type OverloadResult struct {
	OfferedRPS float64
	// GoodputRPS counts only completions that met their deadline.
	GoodputRPS float64
	// Latency holds round-trip latencies of completed requests (ns). Shed
	// requests never complete and are excluded — the point of shedding is
	// that the client has already given up on them.
	Latency   *stats.Histogram
	Completed int
	// Shed counts requests dropped by the shed policy before dispatch.
	Shed int
	// DeadlineMisses counts requests that completed after their deadline
	// (doomed work the server executed anyway; always 0 when Shed is on).
	DeadlineMisses int
	// Metrics is the server NIC's registry snapshot at quiescence
	// (shed.expired, conn.*, ... under the cross-substrate names).
	Metrics metrics.Snapshot
}

// MedianUs returns the median completed round trip in microseconds.
func (r *OverloadResult) MedianUs() float64 { return float64(r.Latency.Percentile(50)) / 1e3 }

// P99Us returns the 99th-percentile completed round trip in microseconds.
func (r *OverloadResult) P99Us() float64 { return float64(r.Latency.Percentile(99)) / 1e3 }

// OverloadServiceTime returns the per-request server-core occupancy the
// overload model charges for iface (receive pickup + response submission,
// the same symmetric cost RunEcho uses), which caps sustainable throughput
// at 1e9/OverloadServiceTime requests per second.
func OverloadServiceTime(iface interconnect.Config) sim.Time {
	return interconnect.ThreadCPUPerRPC(iface, 1)
}

// RunOverloadPoint executes one overload point on the timing stack: a
// single-flow client/server NIC pair in loopback, one server core, Poisson
// open-loop arrivals, budget-carrying simulated requests.
func RunOverloadPoint(cfg OverloadConfig) *OverloadResult {
	if cfg.Requests <= 0 {
		cfg.Requests = 100_000
	}
	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	arrivals := workload.NewPoissonArrival(rng, cfg.OfferedRPS)

	clientNIC, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: 1, ConnCacheSize: 1024, Iface: cfg.Iface,
	})
	if err != nil {
		panic(err)
	}
	serverNIC, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: 1, ConnCacheSize: 1024, Iface: cfg.Iface,
	})
	if err != nil {
		panic(err)
	}
	if err := serverNIC.CM.Open(1, nicmodel.ConnTuple{SrcFlow: 0}); err != nil {
		panic(err)
	}

	serverCore := sim.NewResource(eng, 1)
	service := OverloadServiceTime(cfg.Iface)
	msg := &wire.Message{Payload: make([]byte, 64)}
	res := &OverloadResult{OfferedRPS: cfg.OfferedRPS, Latency: stats.NewHistogram()}

	var firstArrival, lastCompletion sim.Time
	budgetNanos := sim.Time(cfg.BudgetMicros) * sim.Microsecond
	inBudget := 0

	complete := func(start sim.Time) {
		d := serverNIC.PipelineDelay(msg)
		eng.After(d+linkDelay+cfg.Iface.RxDeliver(), func() {
			total := eng.Now() - start
			res.Completed++
			res.Latency.Record(int64(total))
			if budgetNanos > 0 && total > budgetNanos {
				res.DeadlineMisses++
			} else {
				inBudget++
			}
			if eng.Now() > lastCompletion {
				lastCompletion = eng.Now()
			}
		})
	}

	serveReq := func(start sim.Time) {
		_, cmPenalty, err := serverNIC.CM.Lookup(1)
		if err != nil {
			panic(err)
		}
		eng.After(cfg.Iface.RxDeliver()+cmPenalty, func() {
			serverCore.Acquire(func() {
				// Shed-before-dispatch: the dataplane shed policy runs at
				// core-grant time, covering budget spent in the queue, and
				// a shed request never occupies the core.
				if cfg.Shed && serverNIC.ShedExpired(start, cfg.BudgetMicros) {
					serverCore.Release()
					res.Shed++
					return
				}
				eng.After(service, func() {
					serverCore.Release()
					complete(start)
				})
			})
		})
	}

	issued := 0
	var arrive func()
	arrive = func() {
		if issued >= cfg.Requests {
			return
		}
		issued++
		start := eng.Now()
		if issued == 1 {
			firstArrival = start
		}
		d := clientNIC.PipelineDelay(msg)
		eng.After(cfg.Iface.TxDeliver()+d+linkDelay, func() { serveReq(start) })
		eng.After(arrivals.NextGap(), arrive)
	}
	eng.After(0, arrive)
	eng.Run()

	if elapsed := lastCompletion - firstArrival; elapsed > 0 {
		res.GoodputRPS = float64(inBudget) / (float64(elapsed) / 1e9)
	}
	res.Metrics = serverNIC.Metrics().Snapshot()
	return res
}

// overloadBudgetMicros is the sweep's per-request deadline budget: an order
// of magnitude above the unloaded round trip, so it only binds once queues
// build up.
const overloadBudgetMicros = 50

// RunOverload regenerates the paper's overload/tail-latency story (§4.2,
// Fig. 7 dispatcher): an open-loop load sweep past server saturation, run
// with budget shedding off and on, on both substrates. The timing-stack
// sweep is deterministic and asserts the separation the shed policy exists
// to produce: past saturation, the p99 of completed requests with shedding
// on stays near the budget while without shedding it grows with the
// backlog. The functional-stack sweep drives the same policy through real
// goroutines and wall clocks (indicative, not asserted).
func RunOverload(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "§4.2 overload: deadline-budget shedding under open-loop load (timing stack)")
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	satRPS := 1e9 / float64(OverloadServiceTime(iface))
	n := reqs(quick, 200_000)
	fmt.Fprintf(w, "  server capacity ~%.1f Mrps, budget %dus, %d requests/point\n",
		satRPS/1e6, overloadBudgetMicros, n)
	fmt.Fprintf(w, "  %-8s %-9s | %9s %9s %7s | %9s %9s %7s\n",
		"load", "offered", "off p50", "off p99", "miss%", "on p50", "on p99", "shed%")

	type point struct{ off, on *OverloadResult }
	var last point
	for _, mult := range []float64{0.7, 1.0, 1.5, 2.5} {
		cfg := OverloadConfig{
			Iface: iface, OfferedRPS: mult * satRPS, Requests: n,
			BudgetMicros: overloadBudgetMicros, Seed: int64(mult * 100),
		}
		off := RunOverloadPoint(cfg)
		cfg.Shed = true
		on := RunOverloadPoint(cfg)
		fmt.Fprintf(w, "  %-8s %-9s | %8.1fus %8.1fus %6.1f%% | %8.1fus %8.1fus %6.1f%%\n",
			fmt.Sprintf("%.1fx", mult), fmt.Sprintf("%.1fMrps", cfg.OfferedRPS/1e6),
			off.MedianUs(), off.P99Us(), 100*float64(off.DeadlineMisses)/float64(max(1, off.Completed)),
			on.MedianUs(), on.P99Us(), 100*float64(on.Shed)/float64(n))
		last = point{off: off, on: on}
	}
	// The experiment's regression gate (also enforced by CI's smoke run):
	// past saturation, shedding must bound the completed-request tail below
	// the no-shed tail, or the overload story has rotted.
	if last.on.P99Us() >= last.off.P99Us() {
		return fmt.Errorf("overload: shed-on p99 %.1fus >= shed-off p99 %.1fus past saturation",
			last.on.P99Us(), last.off.P99Us())
	}
	if last.on.Shed == 0 {
		return fmt.Errorf("overload: no requests shed at %.1fx saturation", 2.5)
	}
	PublishMetrics("overload", last.on.Metrics)

	fmt.Fprintln(w, "  functional stack (real goroutines, wall clock; indicative):")
	fdur := 300 * time.Millisecond
	if quick {
		fdur = 150 * time.Millisecond
	}
	for _, shed := range []bool{false, true} {
		fr, err := overload.Run(overload.Config{
			OfferedMultiple: 2.5, Duration: fdur, Shed: shed, Seed: 11,
		})
		if err != nil {
			return err
		}
		mode := "off"
		if shed {
			mode = "on"
		}
		fmt.Fprintf(w, "    shed %-3s: issued=%d completed=%d shed=%d p50=%.2fms p99=%.2fms\n",
			mode, fr.Issued, fr.Completed, fr.Shed,
			float64(fr.P50.Microseconds())/1e3, float64(fr.P99.Microseconds())/1e3)
	}
	return nil
}
