package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"dagger/internal/dataplane"
	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/overload"
	"dagger/internal/retry"
	"dagger/internal/sim"
	"dagger/internal/stats"
	"dagger/internal/wire"
	"dagger/internal/workload"
)

// The congestion experiment closes the control loop the overload experiment
// leaves open: instead of the server shedding doomed work after its budget
// expires, the server's queue marks requests admitted past half occupancy
// (the ECN-style dataplane.Mark policy stamped into wire frames by both
// substrates) and the client reacts — halving its AIMD in-flight window on
// a marked completion and scaling its retry backoff by the occupancy hint —
// so the queue never grows deep enough to doom work in the first place.

// Congestion-point calibration, all in multiples of the per-request service
// time S so the geometry is interface-independent:
//
//   - the server queue admits up to congQueueCap requests, so the open-loop
//     (unmarked) stack pins the queue at cap and every completion costs
//     ~(cap+1)*S — far past the budget;
//   - marks fire at cap/2 (the dataplane threshold), and the AIMD window
//     cannot exceed congWindowMax, so the closed-loop stack's worst
//     completion costs ~(congWindowMax+1)*S — comfortably inside the budget;
//   - the budget sits between the two: congBudgetServiceMult*S.
const (
	congQueueCap          = 128
	congWindowMax         = 80
	congBudgetServiceMult = 100
)

// CongestionConfig parametrizes one timing-stack congestion point.
type CongestionConfig struct {
	// Iface sets the per-request service time (OverloadServiceTime).
	Iface interconnect.Config
	// OfferedRPS is the open-loop offered load.
	OfferedRPS float64
	// Requests is the number of end-to-end requests to issue.
	Requests int
	// Marked arms the closed loop: queue marks past half occupancy, client
	// AIMD window plus scaled retry backoff. Unmarked runs open-loop.
	Marked bool
	Seed   int64
}

// CongestionResult is one congestion point's measured outcome.
type CongestionResult struct {
	OfferedRPS float64
	// GoodputRPS counts only completions that met the deadline budget,
	// measured from the request's arrival — client-side backoff wait
	// included, so deferring a request does not launder its deadline.
	GoodputRPS float64
	// Latency holds send-to-completion round trips of completed requests
	// (ns): the queueing the ECN loop actually bounds. Client-side backoff
	// wait is excluded here (it is load deferral, not queue latency) but
	// still counts against the deadline budget above.
	Latency   *stats.Histogram
	Completed int
	// Marks counts completions that carried a congestion mark.
	Marks int
	// Refused counts client-side window refusals (each is retried after a
	// scaled backoff until the request's re-anchored budget expires).
	Refused int
	// GaveUp counts requests abandoned client-side when wire.SubBudget
	// reported the re-anchored budget expired before a retry could issue.
	GaveUp int
	// Dropped counts requests refused by the full server queue (only the
	// unmarked open-loop stack ever fills it).
	Dropped int
	// DeadlineMisses counts completions that arrived after the budget.
	DeadlineMisses int
	// FinalWindow is the AIMD window when the run ended (congWindowMax when
	// marking is off: the loop never engages).
	FinalWindow int
}

// MetricsSnapshot renders the point's counters as a metrics snapshot under
// the cross-substrate naming scheme (the congestion point models the client
// loop directly rather than through a NIC, so it has no registry of its
// own). mark.echoed/call.refused match the core client's families.
func (r *CongestionResult) MetricsSnapshot() metrics.Snapshot {
	reg := metrics.New()
	reg.Counter("call.completed").Add(uint64(r.Completed))
	reg.Counter("call.refused").Add(uint64(r.Refused))
	reg.Counter("call.gaveup").Add(uint64(r.GaveUp))
	reg.Counter("mark.echoed").Add(uint64(r.Marks))
	reg.Counter("drop.ring").Add(uint64(r.Dropped))
	reg.Gauge("conn.window").Set(int64(r.FinalWindow))
	return reg.Snapshot()
}

// MedianUs returns the median completed round trip in microseconds.
func (r *CongestionResult) MedianUs() float64 { return float64(r.Latency.Percentile(50)) / 1e3 }

// P99Us returns the 99th-percentile completed round trip in microseconds.
func (r *CongestionResult) P99Us() float64 { return float64(r.Latency.Percentile(99)) / 1e3 }

// congBudgetMicros converts the calibrated budget into the wire header's
// microsecond unit, rounding up so a sub-microsecond service time still
// yields a live (nonzero) budget.
func congBudgetMicros(service sim.Time) uint32 {
	nanos := int64(service) * congBudgetServiceMult
	us := nanos / 1000
	if nanos%1000 != 0 || us == 0 {
		us++
	}
	return uint32(us)
}

// RunCongestionPoint executes one congestion point on the timing stack: one
// server core behind a bounded queue, Poisson open-loop arrivals, and — when
// Marked — the full closed loop (queue marks, AIMD window, scaled backoff,
// saturating budget re-anchor) in virtual time.
func RunCongestionPoint(cfg CongestionConfig) *CongestionResult {
	if cfg.Requests <= 0 {
		cfg.Requests = 50_000
	}
	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	arrivals := workload.NewPoissonArrival(rng, cfg.OfferedRPS)

	service := OverloadServiceTime(cfg.Iface)
	budgetMicros := congBudgetMicros(service)
	budgetNanos := sim.Time(budgetMicros) * sim.Microsecond
	serverCore := sim.NewResource(eng, 1)

	res := &CongestionResult{OfferedRPS: cfg.OfferedRPS, Latency: stats.NewHistogram()}
	// Client congestion state, mirroring core.RpcClient's per-connection
	// loop: AIMD window, epoch guard (halve at most once per in-flight
	// window), and the last marked completion's occupancy hint scaling the
	// retry backoff schedule.
	window := congWindowMax
	inflight := 0
	var issuedSeq, completedSeq, epoch uint64
	var lastHint uint8
	if !cfg.Marked {
		// Open loop: the window never binds and marks are not applied.
		window = dataplane.DefaultMaxWindow
	}
	pol := retry.Policy{
		Base: time.Duration(service), Max: time.Duration(64 * service), Multiplier: 2,
	}

	var firstArrival, lastCompletion sim.Time
	inBudget := 0
	complete := func(arrival, sent sim.Time, marked bool, hint uint8) {
		inflight--
		completedSeq++
		total := eng.Now() - arrival
		res.Completed++
		res.Latency.Record(int64(eng.Now() - sent))
		if total > budgetNanos {
			res.DeadlineMisses++
		} else {
			inBudget++
		}
		if eng.Now() > lastCompletion {
			lastCompletion = eng.Now()
		}
		if cfg.Marked {
			if marked {
				res.Marks++
				lastHint = hint
				if completedSeq > epoch {
					window = dataplane.WindowOnMark(window, 1)
					epoch = issuedSeq
				}
			} else {
				lastHint = 0
				window = dataplane.WindowOnClean(window, congWindowMax)
			}
		}
	}

	// attempt tries to issue one request; a window refusal backs off (scaled
	// by the congestion hint) and retries with the budget re-anchored through
	// the saturating wire.SubBudget — when it reports expiry the client gives
	// up instead of sending provably doomed work.
	var attempt func(start sim.Time, try int)
	attempt = func(start sim.Time, try int) {
		elapsed := dataplane.ElapsedMicros(int64(eng.Now() - start))
		if _, expired := wire.SubBudget(budgetMicros, elapsed); expired {
			res.GaveUp++
			return
		}
		if inflight >= window {
			res.Refused++
			d := pol.ScaledBackoff(try, dataplane.BackoffScale(lastHint))
			eng.After(sim.Time(d), func() { attempt(start, try+1) })
			return
		}
		depth := serverCore.QueueLen()
		if !dataplane.Admit(depth, congQueueCap) {
			res.Dropped++
			return
		}
		marked := cfg.Marked && dataplane.Mark(depth, congQueueCap)
		var hint uint8
		if marked {
			hint = dataplane.OccupancyHint(depth, congQueueCap)
		}
		inflight++
		issuedSeq++
		sent := eng.Now()
		serverCore.Acquire(func() {
			eng.After(service, func() {
				serverCore.Release()
				complete(start, sent, marked, hint)
			})
		})
	}

	issued := 0
	var arrive func()
	arrive = func() {
		if issued >= cfg.Requests {
			return
		}
		issued++
		if issued == 1 {
			firstArrival = eng.Now()
		}
		attempt(eng.Now(), 0)
		eng.After(arrivals.NextGap(), arrive)
	}
	eng.After(0, arrive)
	eng.Run()

	res.FinalWindow = window
	if elapsed := lastCompletion - firstArrival; elapsed > 0 {
		res.GoodputRPS = float64(inBudget) / (float64(elapsed) / 1e9)
	}
	return res
}

// RunCongestion runs the closed-loop congestion story: the same 2x-capacity
// open-loop load, with the ECN-style mark loop off and on. Off, the bounded
// server queue pins at capacity and every completion pays the full backlog —
// past the deadline budget, so goodput collapses. On, marks halve the
// client's window before the queue can grow past the mark threshold's
// neighborhood, the tail stays inside the budget, and goodput holds. The
// timing-stack comparison is deterministic and asserted (CI runs it as a
// smoke test); the functional-stack run drives the identical policy through
// real goroutines and wall clocks (indicative).
func RunCongestion(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "closed-loop congestion (§4.2 overload, closed loop): ECN-style queue marks driving client AIMD backoff (timing stack)")
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	service := OverloadServiceTime(iface)
	satRPS := 1e9 / float64(service)
	n := reqs(quick, 100_000)
	fmt.Fprintf(w, "  server capacity ~%.1f Mrps, queue cap %d, budget %dus (%dx service), %d requests\n",
		satRPS/1e6, congQueueCap, congBudgetMicros(service), congBudgetServiceMult, n)
	fmt.Fprintf(w, "  %-8s | %9s %9s %9s %8s | %8s %8s %8s %7s\n",
		"marks", "p50", "p99", "goodput", "miss%", "marked", "refused", "gaveup", "window")

	cfg := CongestionConfig{Iface: iface, OfferedRPS: 2 * satRPS, Requests: n, Seed: 7}
	off := RunCongestionPoint(cfg)
	cfg.Marked = true
	on := RunCongestionPoint(cfg)
	for _, p := range []struct {
		label string
		r     *CongestionResult
	}{{"off", off}, {"on", on}} {
		fmt.Fprintf(w, "  %-8s | %8.1fus %8.1fus %5.2fMrps %7.1f%% | %8d %8d %8d %7d\n",
			p.label, p.r.MedianUs(), p.r.P99Us(), p.r.GoodputRPS/1e6,
			100*float64(p.r.DeadlineMisses)/float64(max(1, p.r.Completed)),
			p.r.Marks, p.r.Refused, p.r.GaveUp, p.r.FinalWindow)
	}

	// Regression gates (enforced by CI's smoke run): the unmarked stack must
	// exhibit the collapse the loop exists to prevent, and the marked stack
	// must actually prevent it.
	budgetUs := float64(congBudgetMicros(service))
	if on.Marks == 0 {
		return fmt.Errorf("congestion: closed loop saw no marks at 2x saturation")
	}
	if on.P99Us() > budgetUs {
		return fmt.Errorf("congestion: marked p99 %.1fus exceeds the %vus budget", on.P99Us(), budgetUs)
	}
	if off.P99Us() <= budgetUs {
		return fmt.Errorf("congestion: unmarked p99 %.1fus within budget — queue never collapsed", off.P99Us())
	}
	if on.GoodputRPS < 3*off.GoodputRPS || on.GoodputRPS == 0 {
		return fmt.Errorf("congestion: marked goodput %.2fMrps not well above unmarked %.2fMrps",
			on.GoodputRPS/1e6, off.GoodputRPS/1e6)
	}
	if on.FinalWindow >= congWindowMax {
		return fmt.Errorf("congestion: AIMD window never decreased from %d", on.FinalWindow)
	}
	PublishMetrics("congestion", on.MetricsSnapshot())

	fmt.Fprintln(w, "  functional stack (real goroutines, wall clock; indicative):")
	fdur := 200 * time.Millisecond
	if quick {
		fdur = 100 * time.Millisecond
	}
	fr, err := overload.RunCongestion(overload.CongestionConfig{Workers: 24, Duration: fdur, Seed: 13})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    completed=%d marks=%d refused=%d window=%d->%d p50=%.2fms p99=%.2fms\n",
		fr.Completed, fr.Marks, fr.Refused, dataplane.DefaultMaxWindow, fr.FinalWindow,
		float64(fr.P50.Microseconds())/1e3, float64(fr.P99.Microseconds())/1e3)
	return nil
}
