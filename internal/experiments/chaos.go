package experiments

import (
	"fmt"
	"io"

	"dagger/internal/faults"
	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/nicmodel"
	"dagger/internal/overload"
	"dagger/internal/sim"
	"dagger/internal/stats"
)

// The chaos experiment drives both substrates through the deterministic
// fault-injection plane (internal/faults) and gates graceful degradation:
// under per-class fault rates up to 1%, goodput must stay within 10% of the
// clean run, tail latency must inflate by at most two retransmission
// timeouts, every corrupted frame must be caught by the header checksum
// (zero corrupt frames dispatched), and nothing may hang — every request
// completes. The timing-stack sweep is virtual-time deterministic and
// asserted (CI runs it as a smoke test); the functional half drives the same
// injector through real NICs, goroutines, and the reliable transport.

// ChaosPointConfig parametrizes one timing-stack chaos point.
type ChaosPointConfig struct {
	// Iface is the CPU-NIC interface under test.
	Iface interconnect.Config
	// PPM is the aggregate fault rate in parts per million, split evenly
	// across the five classes (Drop, Duplicate, Delay, Reorder, Corrupt).
	PPM uint32
	// Seed selects the fault plan.
	Seed uint64
	// Requests is the number of closed-loop RPCs to issue.
	Requests int
	// RTO is the client's virtual retransmission timeout: a request
	// unanswered for this long is re-sent. Lost and corrupted frames are
	// recovered through it, so it bounds per-fault latency inflation.
	RTO sim.Time
}

// ChaosPointResult is one chaos point's measured outcome.
type ChaosPointResult struct {
	PPM     uint32
	Latency *stats.Histogram
	// Completed counts requests that received a response; the no-hang gate
	// requires it to equal Requests.
	Completed int
	// Retransmits counts virtual-RTO re-sends.
	Retransmits uint64
	// Elapsed is the virtual makespan of the closed loop; goodput is
	// Requests/Elapsed.
	Elapsed sim.Time
	// Fault-stage counters from the server RX path.
	FaultDrops, FaultDups, FaultDelays, FaultCorrupts, CorruptDrops uint64
	// Metrics is the RX path's registry snapshot at quiescence.
	Metrics metrics.Snapshot
}

// P99Us returns the 99th-percentile round trip in microseconds.
func (r *ChaosPointResult) P99Us() float64 { return float64(r.Latency.Percentile(99)) / 1e3 }

// MedianUs returns the median round trip in microseconds.
func (r *ChaosPointResult) MedianUs() float64 { return float64(r.Latency.Percentile(50)) / 1e3 }

// GoodputRPS returns completed requests per second of virtual time.
func (r *ChaosPointResult) GoodputRPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / (float64(r.Elapsed) / 1e9)
}

// RunChaosPoint executes one chaos point on the timing stack: a closed loop
// of requests from a virtual client through the server RX path's fault stage.
// The client re-sends any request unanswered within the RTO, so dropped,
// corrupted, and held frames are all eventually recovered; duplicate
// completions (from Duplicate verdicts or retransmit races) are deduplicated
// client-side by RPC id, pinning the at-least-once/exactly-once split the
// functional stack exhibits.
func RunChaosPoint(cfg ChaosPointConfig) *ChaosPointResult {
	if cfg.Requests <= 0 {
		cfg.Requests = 20_000
	}
	eng := sim.NewEngine()
	rx := nicmodel.NewRxPath(1, 4096)
	if cfg.PPM > 0 {
		per := cfg.PPM / 5
		inj, err := faults.NewInjector(faults.Config{
			Seed: cfg.Seed,
			Rates: faults.Rates{
				Drop: per, Duplicate: per, Delay: per,
				Reorder: per, Corrupt: per,
			},
		})
		if err != nil {
			panic(err)
		}
		rx.SetFaultInjector(inj)
	}
	reg := metrics.New()
	rx.DescribeMetrics(reg)

	service := OverloadServiceTime(cfg.Iface)
	reqDelay := cfg.Iface.TxDeliver() + linkDelay
	respDelay := service + linkDelay + cfg.Iface.RxDeliver()
	res := &ChaosPointResult{PPM: cfg.PPM, Latency: stats.NewHistogram()}
	done := make([]bool, cfg.Requests+1)
	started := make([]sim.Time, cfg.Requests+1)

	issued := 0
	var issue func()
	var send func(id int)
	// The server side: every admitted entry completes after the service and
	// return-path delays. Duplicate deliveries complete twice; the client's
	// done[] check absorbs the extra.
	pump := func() {
		for _, e := range rx.Complete(0) {
			id := int(e.RPCID)
			eng.After(respDelay, func() {
				if done[id] {
					return
				}
				done[id] = true
				res.Completed++
				res.Latency.Record(int64(eng.Now() - started[id]))
				issue()
			})
		}
	}
	send = func(id int) {
		eng.After(reqDelay, func() {
			rx.Deliver(nicmodel.RxEntry{RPCID: uint64(id)})
			pump()
		})
		// Virtual RTO: if the request is still unanswered (dropped, corrupted,
		// or held by the fault stage), re-send. Each re-send is a fresh
		// admission, which also ages held entries toward release.
		eng.After(reqDelay+cfg.RTO, func() {
			if !done[id] {
				res.Retransmits++
				send(id)
			}
		})
	}
	issue = func() {
		if issued >= cfg.Requests {
			return
		}
		issued++
		id := issued
		started[id] = eng.Now()
		send(id)
	}
	eng.After(0, issue)
	eng.Run()

	res.Elapsed = eng.Now()
	res.FaultDrops = rx.FaultDrops.Load()
	res.FaultDups = rx.FaultDups.Load()
	res.FaultDelays = rx.FaultDelays.Load()
	res.FaultCorrupts = rx.FaultCorrupts.Load()
	res.CorruptDrops = rx.CorruptDrops.Load()
	res.Metrics = reg.Snapshot()
	return res
}

// RunChaos regenerates the fault-injection degradation sweep on both
// substrates and enforces the hardening gates (see the package comment at the
// top of this file). CI runs it in quick mode as a smoke test.
func RunChaos(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "chaos (Fig. 6 transport/protocol units, §4.5): goodput and tail under deterministic fault injection (timing stack)")
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	n := reqs(quick, 20_000)
	// The RTO must comfortably clear one clean round trip; four is the
	// margin a real transport would converge near.
	rto := 4 * (iface.TxDeliver() + linkDelay + OverloadServiceTime(iface) + linkDelay + iface.RxDeliver())
	fmt.Fprintf(w, "  aggregate fault rate split across 5 classes (drop/dup/delay/reorder/corrupt), RTO %v, %d closed-loop requests/point\n", rto, n)
	fmt.Fprintf(w, "  %-8s | %9s %9s | %9s %7s | %7s %7s %7s\n",
		"rate", "p50", "p99", "goodput", "rexmit", "drops", "corrupt", "caught")

	var clean *ChaosPointResult
	for _, ppm := range []uint32{0, 1_000, 10_000} { // 0, 0.1%, 1% aggregate
		r := RunChaosPoint(ChaosPointConfig{
			Iface: iface, PPM: ppm, Seed: 0xC4A05, Requests: n, RTO: rto,
		})
		fmt.Fprintf(w, "  %-8s | %8.2fus %8.2fus | %7.2fM %7d | %7d %7d %7d\n",
			fmt.Sprintf("%.1f%%", float64(ppm)/10_000),
			r.MedianUs(), r.P99Us(), r.GoodputRPS()/1e6, r.Retransmits,
			r.FaultDrops, r.FaultCorrupts, r.CorruptDrops)
		if clean == nil {
			clean = r
		}
		// Hardening gates, every point.
		if r.Completed != n {
			return fmt.Errorf("chaos: %d of %d requests completed at rate %dppm — a call hung or was lost for good",
				r.Completed, n, ppm)
		}
		if r.CorruptDrops != r.FaultCorrupts {
			return fmt.Errorf("chaos: %d corrupted frames injected but only %d caught — corrupt frames were dispatched",
				r.FaultCorrupts, r.CorruptDrops)
		}
		if ppm >= 10_000 && (r.FaultDrops == 0 || r.FaultCorrupts == 0) {
			return fmt.Errorf("chaos: rate %dppm injected no faults; the sweep is vacuous", ppm)
		}
		// Graceful-degradation gates at <=1% aggregate fault rate.
		if float64(r.Elapsed) > float64(clean.Elapsed)/0.9 {
			return fmt.Errorf("chaos: goodput at %dppm degraded past 10%%: makespan %v vs clean %v",
				ppm, r.Elapsed, clean.Elapsed)
		}
		if maxP99 := clean.P99Us() + 2*float64(rto)/1e3; r.P99Us() > maxP99 {
			return fmt.Errorf("chaos: p99 %.2fus at %dppm exceeds clean p99 + 2 RTO (%.2fus)",
				r.P99Us(), ppm, maxP99)
		}
		// The last sweep point (1% per class) is the one the unified report
		// keeps.
		PublishMetrics("chaos", r.Metrics)
	}

	fmt.Fprintln(w, "  functional stack (real NICs, goroutines, reliable transport; same injector):")
	fr, err := overload.RunChaos(overload.ChaosConfig{Quick: quick})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    in-fabric: %d calls, %d ok, %d timed out, %d corrupt accepted (NIC caught %d/%d)\n",
		fr.Calls, fr.Succeeded, fr.TimedOut, fr.CorruptAccepted, fr.NICCorruptDrops, fr.NICCorrupts)
	fmt.Fprintf(w, "    lossy transport: %d/%d calls ok over %.1f%% datagram loss (%d retransmits)\n",
		fr.LossySucceeded, fr.LossyCalls, 100*fr.LossRate, fr.Retransmits)
	fmt.Fprintf(w, "    dead peer: failed fast in %v with ErrPeerDead (%d dead letters)\n",
		fr.DeadLatency, fr.DeadLetters)
	return nil
}
