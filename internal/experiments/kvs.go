package experiments

import (
	"fmt"
	"math/rand"

	"dagger/internal/interconnect"
	"dagger/internal/kvs/memcached"
	"dagger/internal/kvs/mica"
	"dagger/internal/sim"
	"dagger/internal/stats"
	"dagger/internal/workload"
)

// The Figure 12 experiment: memcached and MICA served over Dagger. This is
// a hybrid run — the real Go stores execute every operation (so data
// integrity is checked end to end) while the clock charged per operation is
// the calibrated service-time model, putting the results on the paper's
// time scale.
//
// Per-op service times are derived from the single-core throughputs the
// paper reports in Figure 12 (memcached 0.6/1.5 Mrps and MICA 4.7/5.2 Mrps
// for the 50%/95% GET mixes of the tiny dataset): solving the two mix
// equations gives the GET and SET costs below.
const (
	mcdGetCPU sim.Time = 556
	mcdSetCPU sim.Time = 2778
	// The small dataset's larger items push memcached slightly harder.
	mcdSmallExtra sim.Time = 60

	micaGetCPU sim.Time = 190
	micaSetCPU sim.Time = 236
	// mica "small" items add copy cost on sets.
	micaSmallExtra sim.Time = 40

	// highLocalityFactor models §5.6's skew-0.9999 run: near-perfect cache
	// residency roughly halves MICA's per-op cost (10.2 vs 5.2 Mrps).
	highLocalityFactor = 0.5
)

// KVSSystem selects the store under test.
type KVSSystem int

// Stores of Figure 12.
const (
	Memcached KVSSystem = iota
	MICA
)

func (s KVSSystem) String() string {
	if s == MICA {
		return "mica"
	}
	return "mcd"
}

// KVSConfig parametrizes one Figure 12 cell.
type KVSConfig struct {
	System  KVSSystem
	Dataset workload.Dataset
	Mix     workload.Mix
	// Theta is the Zipfian skew (0.99 in the main runs, 0.9999 in the
	// high-locality run).
	Theta float64
	// OfferedRPS is the open-loop load; 0 measures saturation throughput.
	OfferedRPS float64
	Requests   int
	// Populate keys to load before the run (scaled down from the paper's
	// 10M/200M records; the access skew, not the footprint, drives the
	// result).
	Populate int
	Seed     int64
}

// KVSResult is one cell's outcome.
type KVSResult struct {
	Label         string
	ThroughputRPS float64
	Latency       *stats.Histogram
	Hits, Misses  uint64
	Errors        int
}

// Mrps returns throughput in Mrps.
func (r *KVSResult) Mrps() float64 { return r.ThroughputRPS / 1e6 }

// MedianUs returns median latency in microseconds.
func (r *KVSResult) MedianUs() float64 { return float64(r.Latency.Percentile(50)) / 1e3 }

// P99Us returns p99 latency in microseconds.
func (r *KVSResult) P99Us() float64 { return float64(r.Latency.Percentile(99)) / 1e3 }

// kvsStore abstracts the two real stores behind the served path.
type kvsStore interface {
	get(key []byte) bool // returns hit
	set(key, val []byte) error
}

type mcdAdapter struct{ s *memcached.Store }

func (a mcdAdapter) get(key []byte) bool {
	_, err := a.s.Get(string(key))
	return err == nil
}
func (a mcdAdapter) set(key, val []byte) error {
	a.s.Set(string(key), val, 0)
	return nil
}

type micaAdapter struct{ s *mica.Store }

func (a micaAdapter) get(key []byte) bool {
	_, err := a.s.Get(key)
	return err == nil
}
func (a micaAdapter) set(key, val []byte) error { return a.s.Set(key, val) }

// serviceTime returns the modeled per-op core time.
func serviceTime(cfg KVSConfig, op workload.Op) sim.Time {
	var t sim.Time
	switch cfg.System {
	case Memcached:
		if op == workload.OpGet {
			t = mcdGetCPU
		} else {
			t = mcdSetCPU
		}
		if cfg.Dataset.Name == "small" {
			t += mcdSmallExtra
		}
	case MICA:
		if op == workload.OpGet {
			t = micaGetCPU
		} else {
			t = micaSetCPU
		}
		if cfg.Dataset.Name == "small" && op == workload.OpSet {
			t += micaSmallExtra
		}
	}
	if cfg.Theta > 0.999 {
		t = sim.Time(float64(t) * highLocalityFactor)
	}
	if t < 1 {
		t = 1
	}
	return t
}

// RunKVS executes one Figure 12 cell on a single server core over the
// Dagger UPI interface.
func RunKVS(cfg KVSConfig) *KVSResult {
	if cfg.Requests <= 0 {
		cfg.Requests = 100_000
	}
	if cfg.Populate <= 0 {
		cfg.Populate = 200_000
	}
	if cfg.Theta == 0 {
		cfg.Theta = 0.99
	}

	// Build and load the real store.
	var store kvsStore
	switch cfg.System {
	case Memcached:
		store = mcdAdapter{memcached.New(16, 0)}
	case MICA:
		store = micaAdapter{mica.NewStore(1, 1<<18, 64<<20)}
	}
	ds := cfg.Dataset
	ds.Records = uint64(cfg.Populate)
	var keyBuf []byte
	valBuf := make([]byte, ds.ValueSize)
	for i := uint64(0); i < ds.Records; i++ {
		keyBuf = workload.KeyForRecord(ds, i, keyBuf)
		if err := store.set(keyBuf, valBuf); err != nil {
			panic(fmt.Sprintf("populate: %v", err))
		}
	}
	gen := workload.NewKVGenerator(cfg.Seed, ds, cfg.Mix, cfg.Theta)

	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 4}
	saturate := cfg.OfferedRPS <= 0
	offered := cfg.OfferedRPS
	if saturate {
		offered = 3e9 / float64(serviceTime(cfg, workload.OpGet))
	}

	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	res := &KVSResult{
		Label:   fmt.Sprintf("%s-%s", cfg.System, cfg.Dataset.Name),
		Latency: stats.NewHistogram(),
	}

	// Dagger path latency components (client core -> NIC -> server).
	reqPath := iface.TxCPU() + iface.TxDeliver() + 35 + linkDelay + iface.RxDeliver()
	rspPath := iface.TxDeliver() + 35 + linkDelay + iface.RxDeliver() + iface.RxCPU()

	serverCore := sim.NewResource(eng, 1)
	queueCap := 256
	queued := 0
	issued := 0
	var firstArrival, lastCompletion sim.Time

	var arrive func()
	arrive = func() {
		if issued >= cfg.Requests {
			return
		}
		issued++
		if issued == 1 {
			firstArrival = eng.Now()
		}
		op := gen.Next()
		// Copy the generator's reused buffers: the simulated service runs
		// later in virtual time.
		key := append([]byte(nil), op.Key...)
		val := append([]byte(nil), op.Value...)
		kind := op.Op
		start := eng.Now()
		if queued >= queueCap {
			res.Errors++ // dropped at the server ring (<1% in valid runs)
		} else {
			queued++
			eng.After(reqPath, func() {
				serverCore.Acquire(func() {
					svc := serviceTime(cfg, kind)
					eng.After(svc, func() {
						// Execute the real operation for integrity.
						if kind == workload.OpGet {
							if store.get(key) {
								res.Hits++
							} else {
								res.Misses++
							}
						} else if err := store.set(key, val); err != nil {
							res.Errors++
						}
						serverCore.Release()
						queued--
						eng.After(rspPath, func() {
							res.Latency.Record(int64(eng.Now() - start))
							if eng.Now() > lastCompletion {
								lastCompletion = eng.Now()
							}
						})
					})
				})
			})
		}
		gap := sim.Time(rng.ExpFloat64() * 1e9 / offered)
		if gap < 1 {
			gap = 1
		}
		eng.After(gap, arrive)
	}
	eng.After(0, arrive)
	eng.Run()

	if lastCompletion > firstArrival {
		completed := res.Latency.Count()
		res.ThroughputRPS = float64(completed) / (float64(lastCompletion-firstArrival) / 1e9)
	}
	return res
}

// Fig12Cells returns the four store/dataset combinations of Figure 12.
func Fig12Cells() []KVSConfig {
	return []KVSConfig{
		{System: Memcached, Dataset: workload.Tiny, Mix: workload.WriteIntensive},
		{System: Memcached, Dataset: workload.Small, Mix: workload.WriteIntensive},
		{System: MICA, Dataset: workload.Tiny, Mix: workload.WriteIntensive},
		{System: MICA, Dataset: workload.Small, Mix: workload.WriteIntensive},
	}
}
