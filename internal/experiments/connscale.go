package experiments

import (
	"fmt"
	"io"

	"dagger/internal/connstate"
	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/nicmodel"
	"dagger/internal/overload"
	"dagger/internal/sim"
	"dagger/internal/stats"
	"dagger/internal/wire"
)

// The connscale experiment regenerates the paper's connection-scalability
// story (§4.2, Fig. 9): the NIC steers by connection state held in a
// bounded direct-mapped near-memory cache backed by host DRAM, so latency is
// flat while the active connection working set fits the cache and degrades
// by exactly the host-lookup penalty once it spills. Both substrates sit on
// internal/connstate, so the miss counts are byte-identical; the timing
// stack additionally charges the penalty in virtual time and asserts the
// latency step.

// ConnScaleConfig parametrizes one timing-stack connection-scalability
// point.
type ConnScaleConfig struct {
	// Iface is the CPU-NIC interface under test.
	Iface interconnect.Config
	// CacheSize is the server NIC's connection-cache capacity (C).
	CacheSize int
	// Conns is the active connection working set, driven round-robin.
	Conns int
	// Requests is the number of closed-loop RPCs to issue.
	Requests int
}

// ConnScaleResult is one connection-scalability point's measured outcome.
type ConnScaleResult struct {
	Conns int
	// Latency holds closed-loop round trips (ns); with one request in
	// flight the distribution isolates the connection-lookup cost from
	// queueing.
	Latency *stats.Histogram
	// Stats is the server connection manager's counter snapshot: the same
	// connstate.Stats the functional fabric exposes, so the two substrates'
	// miss counts are directly comparable.
	Stats connstate.Stats
	// Metrics is the server NIC's registry snapshot at quiescence (conn.*
	// under the cross-substrate names).
	Metrics metrics.Snapshot
}

// MedianUs returns the median round trip in microseconds.
func (r *ConnScaleResult) MedianUs() float64 { return float64(r.Latency.Percentile(50)) / 1e3 }

// P99Us returns the 99th-percentile round trip in microseconds.
func (r *ConnScaleResult) P99Us() float64 { return float64(r.Latency.Percentile(99)) / 1e3 }

// MissFrac returns the fraction of steering lookups that fell back to host
// memory.
func (r *ConnScaleResult) MissFrac() float64 {
	total := r.Stats.Hits + r.Stats.Misses
	if total == 0 {
		return 0
	}
	return float64(r.Stats.Misses) / float64(total)
}

// RunConnScalePoint executes one connection-scalability point on the timing
// stack: a single-flow client/server NIC pair in loopback, the full working
// set opened up front, then a closed loop of requests round-robining across
// the connections. Each server-side steering lookup goes through the
// connection manager, so a working set past the cache capacity pays the
// host-lookup penalty on the critical path of every request.
func RunConnScalePoint(cfg ConnScaleConfig) *ConnScaleResult {
	if cfg.Requests <= 0 {
		cfg.Requests = 50_000
	}
	eng := sim.NewEngine()
	clientNIC, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: 1, ConnCacheSize: cfg.CacheSize, Iface: cfg.Iface,
	})
	if err != nil {
		panic(err)
	}
	serverNIC, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: 1, ConnCacheSize: cfg.CacheSize, Iface: cfg.Iface,
	})
	if err != nil {
		panic(err)
	}
	// Open the whole working set up front: the sweep measures steady-state
	// steering, not connection setup. Opens beyond the cache capacity
	// already evict (direct-mapped conflicts), exactly as on the functional
	// substrate.
	for id := 1; id <= cfg.Conns; id++ {
		if err := serverNIC.CM.Open(uint32(id), nicmodel.ConnTuple{SrcFlow: 0}); err != nil {
			panic(err)
		}
	}

	service := OverloadServiceTime(cfg.Iface)
	msg := &wire.Message{Payload: make([]byte, 64)}
	res := &ConnScaleResult{Conns: cfg.Conns, Latency: stats.NewHistogram()}

	issued := 0
	var issue func()
	issue = func() {
		if issued >= cfg.Requests {
			return
		}
		issued++
		id := uint32((issued-1)%cfg.Conns) + 1
		start := eng.Now()
		d := clientNIC.PipelineDelay(msg)
		eng.After(cfg.Iface.TxDeliver()+d+linkDelay, func() {
			_, cmPenalty, err := serverNIC.CM.Lookup(id)
			if err != nil {
				panic(err)
			}
			eng.After(cfg.Iface.RxDeliver()+cmPenalty+service, func() {
				rd := serverNIC.PipelineDelay(msg)
				eng.After(rd+linkDelay+cfg.Iface.RxDeliver(), func() {
					res.Latency.Record(int64(eng.Now() - start))
					issue()
				})
			})
		})
	}
	eng.After(0, issue)
	eng.Run()

	res.Stats = serverNIC.CM.Stats()
	res.Metrics = serverNIC.Metrics().Snapshot()
	return res
}

// connScaleCacheSize is the sweep's server cache capacity: small enough that
// the 4C point stays cheap, large enough that the flat region has several
// points.
const connScaleCacheSize = 64

// RunConnScale regenerates the connection-scalability curve (§4.2, Fig. 9)
// on both substrates. The timing-stack sweep is deterministic and asserted
// (CI runs it as a smoke test): p99 must stay flat — with zero misses —
// while the working set fits the cache, and must degrade by the host-lookup
// penalty, with every steady-state lookup missing, once the working set
// doubles past it. The functional sweep drives the identical connstate
// geometry through real NICs and asserts the same miss counters; its wall
// clock latencies are indicative.
func RunConnScale(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "connection scalability (§4.2, Fig. 9): p99 vs active connections under a bounded near-memory cache (timing stack)")
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	n := reqs(quick, 50_000)
	penaltyUs := float64(connstate.HostLookupPenaltyNanos) / 1e3
	fmt.Fprintf(w, "  cache C=%d conns, host-lookup penalty %.1fus, %d closed-loop requests/point\n",
		connScaleCacheSize, penaltyUs, n)
	fmt.Fprintf(w, "  %-8s %-6s | %9s %9s | %10s %10s %7s\n",
		"conns", "vs C", "p50", "p99", "hits", "misses", "miss%")

	var base *ConnScaleResult
	for _, conns := range []int{
		connScaleCacheSize / 4, connScaleCacheSize / 2, connScaleCacheSize,
		2 * connScaleCacheSize, 4 * connScaleCacheSize,
	} {
		r := RunConnScalePoint(ConnScaleConfig{
			Iface: iface, CacheSize: connScaleCacheSize, Conns: conns, Requests: n,
		})
		fmt.Fprintf(w, "  %-8d %-6s | %8.2fus %8.2fus | %10d %10d %6.1f%%\n",
			conns, fmt.Sprintf("%gx", float64(conns)/connScaleCacheSize),
			r.MedianUs(), r.P99Us(), r.Stats.Hits, r.Stats.Misses, 100*r.MissFrac())
		if base == nil {
			base = r
		}
		// Regression gates (enforced by CI's smoke run): the flat region must
		// be genuinely flat and miss-free, and the spill region must pay the
		// host-lookup penalty on essentially every request.
		switch {
		case conns <= connScaleCacheSize:
			if r.Stats.Misses != 0 {
				return fmt.Errorf("connscale: %d conns inside a %d-entry cache missed %d lookups",
					conns, connScaleCacheSize, r.Stats.Misses)
			}
			if diff := r.P99Us() - base.P99Us(); diff > penaltyUs/2 || diff < -penaltyUs/2 {
				return fmt.Errorf("connscale: p99 moved %.2fus across the flat region (conns=%d)",
					diff, conns)
			}
		default:
			if r.P99Us() < base.P99Us()+0.9*penaltyUs {
				return fmt.Errorf("connscale: %d conns p99 %.2fus did not degrade by the %.1fus penalty over base %.2fus",
					conns, r.P99Us(), penaltyUs, base.P99Us())
			}
			if r.Stats.Misses < uint64(9*n/10) {
				return fmt.Errorf("connscale: %d conns missed only %d/%d lookups",
					conns, r.Stats.Misses, n)
			}
		}
		// The last sweep point (4C, every lookup spilling) is the one the
		// unified report keeps.
		PublishMetrics("connscale", r.Metrics)
	}

	fmt.Fprintln(w, "  functional stack (real NICs and goroutines; miss counters asserted, latency indicative):")
	rounds := 6
	if quick {
		rounds = 3
	}
	fr, err := overload.RunConnScale(overload.ConnScaleConfig{Rounds: rounds})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "    fit   %3d conns (C=%d): calls=%d misses=%d p50=%v p99=%v\n",
		fr.FitConns, fr.CacheSize, fr.FitCalls, fr.FitMisses, fr.FitP50, fr.FitP99)
	fmt.Fprintf(w, "    spill %3d conns:        calls=%d misses=%d (%.0f%%) p50=%v p99=%v\n",
		fr.SpillConns, fr.SpillCalls, fr.SpillMisses,
		100*float64(fr.SpillMisses)/float64(max(1, fr.SpillCalls)), fr.SpillP50, fr.SpillP99)
	fmt.Fprintf(w, "    churn: all %d conns closed, server table drained to %d entries\n",
		fr.SpillConns, fr.FinalOpen)
	return nil
}
