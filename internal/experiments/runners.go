package experiments

import (
	"fmt"
	"io"
	"sort"

	"dagger/internal/baseline"
	"dagger/internal/flight"
	"dagger/internal/interconnect"
	"dagger/internal/microsim"
	"dagger/internal/nicmodel"
	"dagger/internal/stats"
	"dagger/internal/trace"
	"dagger/internal/workload"
)

// Runner executes one experiment and writes the paper-style rows to w.
type Runner func(w io.Writer, quick bool) error

// Registry maps experiment ids (table/figure numbers) to runners.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig3":          RunFig3,
		"fig4":          RunFig4,
		"fig5":          RunFig5,
		"table1":        RunTable1,
		"table3":        RunTable3,
		"fig10":         RunFig10,
		"fig11-latency": RunFig11Latency,
		"fig11-scale":   RunFig11Scale,
		"fig12":         RunFig12,
		"fig12-skew":    RunFig12Skew,
		"table4":        RunTable4,
		"fig14-virt":    RunFig14,
		"ablations":     RunAblations,
		"fig15":         RunFig15,
		"raw-read":      RunRawReadCompare,
		"overload":      RunOverload,
		"congestion":    RunCongestion,
		"connscale":     RunConnScale,
		"chaos":         RunChaos,
	}
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	r := Registry()
	ids := make([]string, 0, len(r))
	for id := range r {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func reqs(quick bool, full int) int {
	if quick {
		return full / 10
	}
	return full
}

// RunFig3 regenerates Figure 3: networking share of median and tail latency
// per Social Network tier as load grows.
func RunFig3(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 3: networking fraction of median / p99 latency (Social Network)")
	tiers := []string{
		microsim.TierMedia, microsim.TierUser, microsim.TierUniqueID,
		microsim.TierText, microsim.TierUserMention, microsim.TierUrlShorten,
	}
	labels := []string{"s1", "s2", "s3", "s4", "s5", "s6"}
	fmt.Fprintf(w, "%-6s", "QPS")
	for _, l := range labels {
		fmt.Fprintf(w, " %12s", l)
	}
	fmt.Fprintf(w, " %12s\n", "e2e")
	for _, qps := range []float64{200, 400, 600, 800} {
		res := microsim.Run(microsim.RunConfig{
			Graph: microsim.SocialNetwork(), QPS: qps,
			Requests: reqs(quick, 4000), Seed: 42, Mode: microsim.SharedCores,
		})
		fmt.Fprintf(w, "%-6.0f", qps)
		for _, tier := range tiers {
			ts := res.PerTier[tier]
			fmt.Fprintf(w, "  %4.0f%%/%4.0f%%", 100*ts.NetFrac(50), 100*ts.NetFrac(99))
		}
		fmt.Fprintf(w, "  %4.0f%%/%4.0f%%\n", 100*res.E2E.NetFrac(50), 100*res.E2E.NetFrac(99))
	}
	fmt.Fprintln(w, "(median%/p99% networking share; s1=Media s2=User s3=UniqueID s4=Text s5=UserMention s6=UrlShorten)")
	return nil
}

// RunFig4 regenerates Figure 4: the CDF of RPC sizes plus per-service
// breakdowns for Social Network and Media.
func RunFig4(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 4: RPC request/response size distribution")
	for _, g := range []*microsim.Graph{microsim.SocialNetwork(), microsim.MediaServing()} {
		res := microsim.Run(microsim.RunConfig{
			Graph: g, QPS: 200, Requests: reqs(quick, 4000), Seed: 17,
		})
		req := stats.NewCDF(res.AllReqSizes())
		rsp := stats.NewCDF(res.AllRspSizes())
		fmt.Fprintf(w, "%s:\n", g.Name)
		fmt.Fprintf(w, "  requests:  P(<=64B)=%.2f P(<=512B)=%.2f P(<=1KB)=%.2f median=%dB\n",
			req.At(64), req.At(512), req.At(1024), req.Quantile(0.5))
		fmt.Fprintf(w, "  responses: P(<=64B)=%.2f P(<=512B)=%.2f median=%dB\n",
			rsp.At(64), rsp.At(512), rsp.Quantile(0.5))
		if g.Name == "social-network" {
			for _, tier := range []string{
				microsim.TierMedia, microsim.TierUser, microsim.TierUniqueID,
				microsim.TierText, microsim.TierUserMention, microsim.TierUrlShorten,
			} {
				c := stats.NewCDF(res.ReqSizes[tier])
				fmt.Fprintf(w, "  %-12s median req = %4dB, P(<=64B) = %.2f\n",
					tier, c.Quantile(0.5), c.At(64))
			}
		}
	}
	return nil
}

// RunFig5 regenerates Figure 5: end-to-end latency with networking isolated
// on separate cores vs sharing cores with application logic.
func RunFig5(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 5: CPU interference between networking and application logic")
	fmt.Fprintf(w, "%-6s %14s %14s %14s %14s\n", "QPS",
		"iso med(us)", "iso p99(us)", "shared med(us)", "shared p99(us)")
	for _, qps := range []float64{200, 400, 600, 800} {
		iso := microsim.Run(microsim.RunConfig{
			Graph: microsim.SocialNetwork(), QPS: qps,
			Requests: reqs(quick, 4000), Seed: 23, Mode: microsim.IsolatedNetworking,
		})
		sh := microsim.Run(microsim.RunConfig{
			Graph: microsim.SocialNetwork(), QPS: qps,
			Requests: reqs(quick, 4000), Seed: 23, Mode: microsim.SharedCores,
		})
		fmt.Fprintf(w, "%-6.0f %14.0f %14.0f %14.0f %14.0f\n", qps,
			float64(iso.E2E.Total.Percentile(50))/1e3, float64(iso.E2E.Total.Percentile(99))/1e3,
			float64(sh.E2E.Total.Percentile(50))/1e3, float64(sh.E2E.Total.Percentile(99))/1e3)
	}
	return nil
}

// RunTable1 prints the NIC implementation specification.
func RunTable1(w io.Writer, _ bool) error {
	fmt.Fprintln(w, "Table 1: Implementation specifications of Dagger NIC")
	for _, s := range nicmodel.SpecTable() {
		fmt.Fprintf(w, "  %-46s %s\n", s.Parameter, s.Value)
	}
	return nil
}

// RunTable3 regenerates Table 3: median RTT and single-core throughput vs
// the published baselines; the Dagger row is measured live.
func RunTable3(w io.Writer, quick bool) error {
	upi4 := interconnect.Config{Kind: interconnect.UPI, Batch: 4}
	upi1 := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	n := reqs(quick, 150_000)
	sat := RunEcho(EchoConfig{Iface: upi4, Requests: n, ToR: true, Seed: 1})
	lat := RunEcho(EchoConfig{Iface: upi1, OfferedRPS: 2e6, Requests: n, ToR: true, Seed: 2})
	dagger := baseline.DaggerRow(lat.MedianUs(), sat.Mrps())

	fmt.Fprintln(w, "Table 3: median RTT and single-core RPC throughput")
	for _, s := range baseline.Published() {
		fmt.Fprintf(w, "  %s (published)\n", baseline.FormatRow(s))
	}
	fmt.Fprintf(w, "  %s (measured)\n", baseline.FormatRow(dagger))
	lo, hi := baseline.SpeedupRange(dagger, baseline.Published())
	fmt.Fprintf(w, "  per-core speedup vs throughput-reporting baselines: %.1f-%.1fx\n", lo, hi)
	return nil
}

// RunFig10 regenerates Figure 10: single-core throughput, median and 99th
// percentile latency for each CPU-NIC interface.
func RunFig10(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 10: single-core throughput and latency per CPU-NIC interface (64B RPCs)")
	fmt.Fprintf(w, "  %-18s %10s %10s %10s\n", "interface", "thr(Mrps)", "med(us)", "p99(us)")
	n := reqs(quick, 150_000)
	for i, c := range interconnect.Fig10Configs() {
		sat := RunEcho(EchoConfig{Iface: c, Requests: n, Seed: int64(i)})
		lat := RunEcho(EchoConfig{Iface: c, OfferedRPS: 0.85 * sat.ThroughputRPS, Requests: n, Seed: int64(i) + 100})
		fmt.Fprintf(w, "  %-18s %10.1f %10.2f %10.2f\n", c.Name(), sat.Mrps(), lat.MedianUs(), lat.P99Us())
	}
	be := RunEcho(EchoConfig{Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 4},
		Requests: n, BestEffort: true, Seed: 99})
	fmt.Fprintf(w, "  best-effort single-core max: %.1f Mrps (server drops allowed)\n", be.Mrps())
	return nil
}

// RunFig11Latency regenerates Figure 11 (left): latency-throughput curves
// for B in {1, 2, 4, auto}.
func RunFig11Latency(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 11 (left): latency vs throughput, single-core async 64B RPCs")
	n := reqs(quick, 120_000)
	for _, b := range []interconnect.Config{
		{Kind: interconnect.UPI, Batch: 1},
		{Kind: interconnect.UPI, Batch: 2},
		{Kind: interconnect.UPI, Batch: 4},
		{Kind: interconnect.UPI, Batch: 4, AutoBatch: true},
	} {
		fmt.Fprintf(w, "  %s:\n", b.Name())
		for _, mrps := range []float64{1, 2, 4, 6, 7, 8, 10, 12} {
			eff := ResolveAutoBatch(b, mrps*1e6)
			if mrps*1e6 > eff.SaturationRPS() {
				continue
			}
			r := RunEcho(EchoConfig{Iface: b, OfferedRPS: mrps * 1e6, Requests: n, Seed: int64(mrps * 10)})
			fmt.Fprintf(w, "    offered=%5.1f Mrps achieved=%5.1f med=%5.2fus\n", mrps, r.Mrps(), r.MedianUs())
		}
	}
	return nil
}

// RunFig11Scale regenerates Figure 11 (right): throughput scaling with
// thread count, end-to-end RPCs vs raw UPI reads.
func RunFig11Scale(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 11 (right): multi-thread scaling, 64B requests")
	fmt.Fprintf(w, "  %-8s %14s %14s\n", "threads", "e2e (Mrps)", "raw UPI (Mrps)")
	n := reqs(quick, 200_000)
	upi4 := interconnect.Config{Kind: interconnect.UPI, Batch: 4}
	for _, th := range []int{1, 2, 3, 4, 5, 6, 7, 8} {
		e2e := RunEcho(EchoConfig{Iface: upi4, Threads: th, Requests: n, Seed: int64(th)})
		raw := RunRawReads(th, n*2)
		fmt.Fprintf(w, "  %-8d %14.1f %14.1f\n", th, e2e.Mrps(), raw.ThroughputRPS/1e6)
	}
	return nil
}

// RunFig12 regenerates Figure 12: memcached and MICA over Dagger — latency
// under the write-intensive mix and peak single-core throughput per mix.
func RunFig12(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 12: memcached and MICA over Dagger (single core)")
	fmt.Fprintf(w, "  %-11s %9s %9s %12s %12s\n", "system", "med(us)", "p99(us)", "50%GET Mrps", "95%GET Mrps")
	n := reqs(quick, 120_000)
	pop := reqs(quick, 200_000)
	for _, cell := range Fig12Cells() {
		cell.Requests = n
		cell.Populate = pop
		// Peak throughput per mix.
		wi := cell
		wi.Mix = workload.WriteIntensive
		satWI := RunKVS(wi)
		ri := cell
		ri.Mix = workload.ReadIntensive
		satRI := RunKVS(ri)
		// Latency at half the write-intensive peak: §5.6 measures latency
		// "under the write-intensive workload" with <1%% drops.
		lat := wi
		lat.OfferedRPS = 0.5 * satWI.ThroughputRPS
		latRes := RunKVS(lat)
		fmt.Fprintf(w, "  %-11s %9.1f %9.1f %12.1f %12.1f\n",
			satWI.Label, latRes.MedianUs(), latRes.P99Us(), satWI.Mrps(), satRI.Mrps())
	}
	return nil
}

// RunFig12Skew regenerates the §5.6 high-locality run: MICA under Zipf
// skew 0.9999.
func RunFig12Skew(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "§5.6 skew run: MICA-tiny under Zipf 0.9999")
	n := reqs(quick, 120_000)
	for _, mix := range []workload.Mix{workload.ReadIntensive, workload.WriteIntensive} {
		r := RunKVS(KVSConfig{
			System: MICA, Dataset: workload.Tiny, Mix: mix,
			Theta: 0.9999, Requests: n, Populate: reqs(quick, 200_000),
		})
		fmt.Fprintf(w, "  %-8s peak throughput = %5.1f Mrps\n", mix.Name, r.Mrps())
	}
	return nil
}

// RunTable4 regenerates Table 4: the Flight Registration service under the
// Simple and Optimized threading models.
func RunTable4(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Table 4: Flight Registration service, threading models")
	fmt.Fprintf(w, "  %-10s %12s %10s %10s %10s\n", "model", "max Krps", "med(us)", "p90(us)", "p99(us)")
	n := reqs(quick, 40_000)
	simpleLoads := []float64{1000, 2000, 2700, 3500, 5000}
	optLoads := []float64{25000, 40000, 48000, 60000}
	for _, th := range []flight.Threading{flight.Simple, flight.Optimized} {
		loads := simpleLoads
		if th == flight.Optimized {
			loads = optLoads
		}
		maxLoad, _ := flight.MaxSustainableLoad(th, loads, n, 3)
		lat := flight.RunModel(flight.ModelConfig{Threading: th, LoadRPS: 1000, Requests: n, Seed: 4})
		fmt.Fprintf(w, "  %-10s %12.1f %10.1f %10.1f %10.1f\n", th, maxLoad/1e3,
			float64(lat.Latency.Percentile(50))/1e3,
			float64(lat.Latency.Percentile(90))/1e3,
			float64(lat.Latency.Percentile(99))/1e3)
	}
	// Bottleneck analysis via the request tracing system (§5.7).
	tr := trace.NewCollector(0)
	flight.RunModel(flight.ModelConfig{Threading: flight.Simple, LoadRPS: 2000, Requests: n / 2, Seed: 9, Tracer: tr})
	fmt.Fprintf(w, "  tracing bottleneck: %s service\n", tr.Analyze().Bottleneck())
	return nil
}

// RunFig15 regenerates Figure 15: latency/load curves for the Flight
// Registration service with the Optimized threading model.
func RunFig15(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "Figure 15: Flight Registration latency vs load (Optimized threading)")
	fmt.Fprintf(w, "  %-10s %10s %10s %10s %8s\n", "load Krps", "med(us)", "p90(us)", "p99(us)", "drops")
	n := reqs(quick, 40_000)
	for _, krps := range []float64{15, 20, 25, 30, 35, 40, 45, 50} {
		r := flight.RunModel(flight.ModelConfig{
			Threading: flight.Optimized, LoadRPS: krps * 1e3, Requests: n, Seed: 7,
		})
		fmt.Fprintf(w, "  %-10.0f %10.1f %10.1f %10.1f %7.2f%%\n", krps,
			float64(r.Latency.Percentile(50))/1e3,
			float64(r.Latency.Percentile(90))/1e3,
			float64(r.Latency.Percentile(99))/1e3,
			100*r.DropFrac())
	}
	return nil
}

// RunRawReadCompare regenerates §5.3's raw shared-memory access comparison:
// PCIe DMA vs UPI read latency.
func RunRawReadCompare(w io.Writer, _ bool) error {
	fmt.Fprintln(w, "§5.3 raw shared-memory read latency (one way)")
	fmt.Fprintf(w, "  PCIe DMA: %d ns\n", interconnect.PCIeDMARead)
	fmt.Fprintf(w, "  UPI read: %d ns\n", interconnect.UPIDeliver)
	return nil
}
