package experiments

import (
	"fmt"
	"io"

	"dagger/internal/interconnect"
	"dagger/internal/nicmodel"
)

// RunAblations sweeps the design decisions DESIGN.md §5 calls out — batch
// width, connection-cache sizing, HCC residency — and prints their effect.
// The same sweeps run under testing.B in bench_test.go.
func RunAblations(w io.Writer, quick bool) error {
	n := reqs(quick, 100_000)

	fmt.Fprintln(w, "Ablation sweeps for the design decisions of DESIGN.md §5")
	fmt.Fprintln(w, "Ablation: CCI-P batch width B (single-core saturation, 64B RPCs)")
	for _, b := range []int{1, 2, 4, 8, 16} {
		cfg := interconnect.Config{Kind: interconnect.UPI, Batch: b}
		sat := RunEcho(EchoConfig{Iface: cfg, Requests: n, Seed: int64(b)})
		lowLoad := RunEcho(EchoConfig{Iface: cfg, OfferedRPS: 1e6, Requests: n / 2, Seed: int64(b) + 50})
		fmt.Fprintf(w, "  B=%-3d thr=%5.1f Mrps   low-load med=%5.2fus (batch-fill wait)\n",
			b, sat.Mrps(), lowLoad.MedianUs())
	}

	fmt.Fprintln(w, "Ablation: connection-cache sizing (direct-mapped, 64 entries)")
	for _, conns := range []int{32, 64, 128, 512} {
		cm := nicmodel.NewConnectionManager(64)
		for i := 0; i < conns; i++ {
			if err := cm.Open(uint32(i), nicmodel.ConnTuple{SrcFlow: uint16(i)}); err != nil {
				return err
			}
		}
		lookups := 10_000
		var penalty int64
		for i := 0; i < lookups; i++ {
			_, p, err := cm.Lookup(uint32(i % conns))
			if err != nil {
				return err
			}
			penalty += int64(p)
		}
		fmt.Fprintf(w, "  %4d connections: hit rate %5.1f%%, mean lookup penalty %5.1f ns\n",
			conns, 100*cm.HitRate(), float64(penalty)/float64(lookups))
	}

	fmt.Fprintln(w, "Ablation: HCC residency (128 KB direct-mapped)")
	for _, footprint := range []uint64{32 << 10, 128 << 10, 512 << 10} {
		h := nicmodel.NewHCC()
		accesses := 20_000
		var penalty int64
		for i := 0; i < accesses; i++ {
			penalty += int64(h.Access(uint64(i*64) % footprint))
		}
		fmt.Fprintf(w, "  %4d KB working set: hit rate %5.1f%%, mean access penalty %5.1f ns\n",
			footprint>>10, 100*h.HitRate(), float64(penalty)/float64(accesses))
	}

	fmt.Fprintln(w, "Ablation: interface family at equal batch (B=1)")
	for _, cfg := range []interconnect.Config{
		{Kind: interconnect.MMIO, Batch: 1},
		{Kind: interconnect.Doorbell, Batch: 1},
		{Kind: interconnect.UPI, Batch: 1},
	} {
		sat := RunEcho(EchoConfig{Iface: cfg, Requests: n, Seed: 3})
		fmt.Fprintf(w, "  %-10s thr=%5.1f Mrps (isolates the communication model from batching)\n",
			cfg.Name(), sat.Mrps())
	}
	return nil
}
