package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dagger/internal/interconnect"
	"dagger/internal/metrics"
)

// TestMetricsReport pins the report container's contract: publish replaces
// per-experiment, entries come back sorted, and the JSON rendering is
// byte-stable across identical reports.
func TestMetricsReport(t *testing.T) {
	snap := func(v uint64) metrics.Snapshot {
		reg := metrics.New()
		reg.Counter("rpc.in").Add(v)
		return reg.Snapshot()
	}
	var r MetricsReport
	r.Publish("zeta", snap(1))
	r.Publish("alpha", snap(2))
	r.Publish("zeta", snap(3)) // re-run replaces
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	es := r.Entries()
	if es[0].Experiment != "alpha" || es[1].Experiment != "zeta" {
		t.Fatalf("entries not sorted: %v, %v", es[0].Experiment, es[1].Experiment)
	}
	if got := es[1].Metrics.Value("rpc.in"); got != 3 {
		t.Fatalf("replaced snapshot lost: rpc.in = %d, want 3", got)
	}

	var a, b bytes.Buffer
	if err := r.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("WriteJSON not byte-stable across identical reports")
	}
	if !strings.Contains(a.String(), `"experiment": "alpha"`) {
		t.Fatalf("JSON missing experiment id:\n%s", a.String())
	}
}

// TestPointResultsCarryMetrics pins that the sweep points snapshot their
// server NIC registries, which is what PublishMetrics forwards into the
// unified report.
func TestPointResultsCarryMetrics(t *testing.T) {
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	cs := RunConnScalePoint(ConnScaleConfig{Iface: iface, CacheSize: 8, Conns: 16, Requests: 200})
	if got, want := cs.Metrics.Value("conn.misses"), int64(cs.Stats.Misses); got != want || got == 0 {
		t.Fatalf("connscale point: conn.misses sample %d, stats %d", got, want)
	}
	ov := RunOverloadPoint(OverloadConfig{
		Iface: iface, OfferedRPS: 1e6, Requests: 200, BudgetMicros: 1, Shed: true, Seed: 3,
	})
	if got, want := ov.Metrics.Value("shed.expired"), int64(ov.Shed); got != want {
		t.Fatalf("overload point: shed.expired sample %d, result %d", got, want)
	}
	cg := RunCongestionPoint(CongestionConfig{Iface: iface, OfferedRPS: 1e6, Requests: 200, Marked: true, Seed: 5})
	if got, want := cg.MetricsSnapshot().Value("call.completed"), int64(cg.Completed); got != want || got == 0 {
		t.Fatalf("congestion point: call.completed sample %d, result %d", got, want)
	}
}
