package experiments

import (
	"bytes"
	"strings"
	"testing"

	"dagger/internal/interconnect"
	"dagger/internal/workload"
)

func echoSat(t *testing.T, cfg interconnect.Config) *EchoResult {
	t.Helper()
	return RunEcho(EchoConfig{Iface: cfg, Requests: 60_000, Seed: 1})
}

// Figure 10's headline: the DES-measured saturation throughputs land within
// 10% of the paper for every interface variant.
func TestEchoSaturationMatchesFig10(t *testing.T) {
	want := map[string]float64{
		"MMIO":             4.2,
		"Doorbell":         4.3,
		"Doorbell, B = 3":  7.9,
		"Doorbell, B = 7":  9.9,
		"Doorbell, B = 11": 10.8,
		"UPI, B = 1":       8.1,
		"UPI, B = 4":       12.4,
	}
	for _, cfg := range interconnect.Fig10Configs() {
		got := echoSat(t, cfg).Mrps()
		paper := want[cfg.Name()]
		if got < paper*0.88 || got > paper*1.12 {
			t.Errorf("%s: measured %.1f Mrps, paper %.1f", cfg.Name(), got, paper)
		}
	}
}

// Figure 10's latency ordering: UPI variants are the fastest; doorbell
// batching trades latency for throughput monotonically in B.
func TestEchoLatencyOrdering(t *testing.T) {
	med := func(cfg interconnect.Config) float64 {
		sat := echoSat(t, cfg)
		lat := RunEcho(EchoConfig{Iface: cfg, OfferedRPS: 0.85 * sat.ThroughputRPS, Requests: 60_000, Seed: 2})
		return lat.MedianUs()
	}
	upi1 := med(interconnect.Config{Kind: interconnect.UPI, Batch: 1})
	upi4 := med(interconnect.Config{Kind: interconnect.UPI, Batch: 4})
	mmio := med(interconnect.Config{Kind: interconnect.MMIO, Batch: 1})
	db3 := med(interconnect.Config{Kind: interconnect.DoorbellBatch, Batch: 3})
	db11 := med(interconnect.Config{Kind: interconnect.DoorbellBatch, Batch: 11})
	if upi1 >= mmio || upi4 >= mmio {
		t.Errorf("UPI latency (%.2f/%.2f) should beat MMIO (%.2f)", upi1, upi4, mmio)
	}
	if db11 <= db3 {
		t.Errorf("doorbell B=11 median %.2f should exceed B=3 %.2f", db11, db3)
	}
	if upi1 > 2.3 {
		t.Errorf("UPI B=1 median %.2fus, paper ~1.8us", upi1)
	}
}

// Figure 11 left: B=1 latency is flat until its knee; B=4 pays a batch-fill
// penalty at low load; auto follows the better of the two.
func TestEchoAutoBatchFollowsBest(t *testing.T) {
	lat := func(cfg interconnect.Config, mrps float64) float64 {
		return RunEcho(EchoConfig{Iface: cfg, OfferedRPS: mrps * 1e6, Requests: 40_000, Seed: 3}).MedianUs()
	}
	b1 := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	b4 := interconnect.Config{Kind: interconnect.UPI, Batch: 4}
	auto := interconnect.Config{Kind: interconnect.UPI, Batch: 4, AutoBatch: true}
	lowB1, lowB4, lowAuto := lat(b1, 2), lat(b4, 2), lat(auto, 2)
	if lowB4 <= lowB1 {
		t.Errorf("B=4 at low load (%.2f) should be slower than B=1 (%.2f): batch-fill wait", lowB4, lowB1)
	}
	if lowAuto > lowB1*1.1 {
		t.Errorf("auto at low load (%.2f) should track B=1 (%.2f)", lowAuto, lowB1)
	}
	// At high load auto must sustain B=4-level throughput.
	hiAuto := RunEcho(EchoConfig{Iface: auto, OfferedRPS: 11e6, Requests: 60_000, Seed: 4})
	if hiAuto.Mrps() < 10.5 {
		t.Errorf("auto at high load achieved %.1f Mrps, want B=4 level", hiAuto.Mrps())
	}
}

// Figure 11 right: linear scaling to 4 threads, flat at ~42 Mrps; raw reads
// scale further to ~80 Mrps.
func TestEchoThreadScaling(t *testing.T) {
	upi4 := interconnect.Config{Kind: interconnect.UPI, Batch: 4}
	four := RunEcho(EchoConfig{Iface: upi4, Threads: 4, Requests: 120_000, Seed: 5}).Mrps()
	eight := RunEcho(EchoConfig{Iface: upi4, Threads: 8, Requests: 120_000, Seed: 5}).Mrps()
	if four < 38 || four > 46 {
		t.Errorf("4-thread throughput %.1f Mrps, paper ~42", four)
	}
	if eight > four*1.08 {
		t.Errorf("8 threads (%.1f) should not scale past the endpoint cap (%.1f)", eight, four)
	}
	raw8 := RunRawReads(8, 400_000).ThroughputRPS / 1e6
	if raw8 < 72 || raw8 > 92 {
		t.Errorf("8-thread raw reads %.1f Mrps, paper ~80", raw8)
	}
	raw2 := RunRawReads(2, 200_000).ThroughputRPS / 1e6
	if raw2 >= raw8 {
		t.Error("raw reads should scale with threads")
	}
}

// §5.2: best-effort mode reaches ~16.5 Mrps single-core.
func TestEchoBestEffort(t *testing.T) {
	r := RunEcho(EchoConfig{
		Iface:    interconnect.Config{Kind: interconnect.UPI, Batch: 4},
		Requests: 80_000, BestEffort: true, Seed: 6,
	})
	if r.Mrps() < 15 || r.Mrps() > 18.5 {
		t.Errorf("best-effort %.1f Mrps, paper ~16.5", r.Mrps())
	}
	if r.Dropped == 0 {
		t.Error("best-effort run produced no drops")
	}
}

// ToR adds ~0.3us to the round trip.
func TestEchoToRDelay(t *testing.T) {
	cfg := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	loop := RunEcho(EchoConfig{Iface: cfg, OfferedRPS: 2e6, Requests: 40_000, Seed: 7})
	tor := RunEcho(EchoConfig{Iface: cfg, OfferedRPS: 2e6, Requests: 40_000, ToR: true, Seed: 7})
	diff := tor.MedianUs() - loop.MedianUs()
	if diff < 0.2 || diff > 0.45 {
		t.Errorf("ToR RTT penalty %.2fus, want ~0.3", diff)
	}
}

// Larger RPCs cost more pipeline occupancy (multi-line transfer, §4.7).
func TestEchoPayloadScaling(t *testing.T) {
	cfg := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	small := RunEcho(EchoConfig{Iface: cfg, OfferedRPS: 2e6, Requests: 30_000, PayloadBytes: 16, Seed: 8})
	big := RunEcho(EchoConfig{Iface: cfg, OfferedRPS: 2e6, Requests: 30_000, PayloadBytes: 1024, Seed: 8})
	if big.MedianUs() <= small.MedianUs() {
		t.Errorf("1KB RPCs (%.2f) should be slower than 16B (%.2f)", big.MedianUs(), small.MedianUs())
	}
}

// Figure 12: KVS throughputs match the paper (which calibrated the service
// times) and the MICA-vs-memcached relationships hold.
func TestKVSThroughputShape(t *testing.T) {
	run := func(sys KVSSystem, mix workload.Mix) *KVSResult {
		return RunKVS(KVSConfig{
			System: sys, Dataset: workload.Tiny, Mix: mix,
			Requests: 40_000, Populate: 50_000, Seed: 9,
		})
	}
	mcdWI := run(Memcached, workload.WriteIntensive)
	mcdRI := run(Memcached, workload.ReadIntensive)
	micaWI := run(MICA, workload.WriteIntensive)
	micaRI := run(MICA, workload.ReadIntensive)
	if m := mcdWI.Mrps(); m < 0.5 || m > 0.75 {
		t.Errorf("mcd 50%%GET %.2f Mrps, paper ~0.6", m)
	}
	if m := mcdRI.Mrps(); m < 1.3 || m > 1.8 {
		t.Errorf("mcd 95%%GET %.2f Mrps, paper ~1.5", m)
	}
	if m := micaWI.Mrps(); m < 4.2 || m > 5.2 {
		t.Errorf("mica 50%%GET %.2f Mrps, paper ~4.7", m)
	}
	if m := micaRI.Mrps(); m < 4.7 || m > 5.7 {
		t.Errorf("mica 95%%GET %.2f Mrps, paper ~5.2", m)
	}
	if micaWI.Mrps() < 5*mcdWI.Mrps() {
		t.Error("MICA should be much faster than memcached")
	}
	// Real stores executed real operations: the skewed read mix hits.
	if micaRI.Hits == 0 || mcdRI.Hits == 0 {
		t.Error("no hits recorded; real stores not exercised")
	}
}

// §5.6 skew 0.9999: locality roughly doubles MICA throughput.
func TestKVSHighSkewLocality(t *testing.T) {
	base := RunKVS(KVSConfig{System: MICA, Dataset: workload.Tiny, Mix: workload.ReadIntensive,
		Requests: 40_000, Populate: 50_000, Seed: 10})
	skew := RunKVS(KVSConfig{System: MICA, Dataset: workload.Tiny, Mix: workload.ReadIntensive,
		Theta: 0.9999, Requests: 40_000, Populate: 50_000, Seed: 10})
	ratio := skew.Mrps() / base.Mrps()
	if ratio < 1.6 || ratio > 2.4 {
		t.Errorf("skew speedup %.2fx, paper ~2x (10.2 vs 5.2 Mrps)", ratio)
	}
}

// KVS latency stays in the paper's microsecond band at moderate load.
func TestKVSLatencyBand(t *testing.T) {
	sat := RunKVS(KVSConfig{System: MICA, Dataset: workload.Tiny, Mix: workload.WriteIntensive,
		Requests: 40_000, Populate: 50_000, Seed: 11})
	lat := RunKVS(KVSConfig{System: MICA, Dataset: workload.Tiny, Mix: workload.WriteIntensive,
		OfferedRPS: 0.5 * sat.ThroughputRPS, Requests: 40_000, Populate: 50_000, Seed: 11})
	if lat.MedianUs() < 1.5 || lat.MedianUs() > 4.5 {
		t.Errorf("mica median %.1fus, paper band 2.8-3.5us", lat.MedianUs())
	}
	if lat.P99Us() < lat.MedianUs() || lat.P99Us() > 9 {
		t.Errorf("mica p99 %.1fus, paper band 5.4-7.8us", lat.P99Us())
	}
}

// Every registered experiment runs to completion in quick mode and produces
// output mentioning its table/figure.
func TestAllRunnersSmoke(t *testing.T) {
	for id, r := range Registry() {
		var buf bytes.Buffer
		if err := r(&buf, true); err != nil {
			t.Errorf("%s: %v", id, err)
			continue
		}
		out := buf.String()
		if len(out) < 40 {
			t.Errorf("%s: suspiciously short output %q", id, out)
		}
		if !strings.Contains(out, "Figure") && !strings.Contains(out, "Table") && !strings.Contains(out, "§") {
			t.Errorf("%s: output does not identify its artifact", id)
		}
	}
}

// TestOverloadShedSeparation pins the overload story's shape on the timing
// stack: below saturation the shed policy is inert (identical results on and
// off), past saturation it bounds the completed-request tail near the budget
// while the no-shed tail grows with the backlog.
func TestOverloadShedSeparation(t *testing.T) {
	iface := interconnect.Config{Kind: interconnect.UPI, Batch: 1}
	satRPS := 1e9 / float64(OverloadServiceTime(iface))

	run := func(mult float64, shed bool) *OverloadResult {
		return RunOverloadPoint(OverloadConfig{
			Iface: iface, OfferedRPS: mult * satRPS, Requests: 20_000,
			BudgetMicros: overloadBudgetMicros, Shed: shed, Seed: 9,
		})
	}

	// Below saturation the budget never binds: shed on/off must be
	// bit-identical (same seed, same arrivals, zero sheds).
	subOff, subOn := run(0.5, false), run(0.5, true)
	if subOn.Shed != 0 {
		t.Fatalf("%d sheds below saturation", subOn.Shed)
	}
	if subOff.P99Us() != subOn.P99Us() || subOff.Completed != subOn.Completed {
		t.Fatalf("shed policy perturbed a sub-saturation run: off p99 %.1fus/%d completed, on %.1fus/%d",
			subOff.P99Us(), subOff.Completed, subOn.P99Us(), subOn.Completed)
	}

	// Past saturation the separation appears.
	off, on := run(2.5, false), run(2.5, true)
	if on.Shed == 0 {
		t.Fatal("no sheds at 2.5x saturation")
	}
	if on.P99Us() >= off.P99Us() {
		t.Fatalf("shed-on p99 %.1fus >= shed-off p99 %.1fus", on.P99Us(), off.P99Us())
	}
	// With shedding, completed requests stay near the budget (they were
	// admitted precisely because their budget had not expired).
	if on.P99Us() > 2*overloadBudgetMicros {
		t.Fatalf("shed-on p99 %.1fus far exceeds the %dus budget", on.P99Us(), overloadBudgetMicros)
	}
	// Without shedding, expired work still executes: deadline misses abound.
	// (With shedding, completions can still overshoot slightly — a request
	// admitted just under budget pays the service and response path after
	// the check — but the p99 bound above caps the overshoot.)
	if off.DeadlineMisses == 0 {
		t.Fatal("no deadline misses without shedding past saturation")
	}

	// Determinism: the same config reproduces bit-identical results.
	again := run(2.5, true)
	if again.Shed != on.Shed || again.Completed != on.Completed || again.P99Us() != on.P99Us() {
		t.Fatalf("overload point not deterministic: %d/%d/%.1f vs %d/%d/%.1f",
			again.Shed, again.Completed, again.P99Us(), on.Shed, on.Completed, on.P99Us())
	}
}

func TestRegistryIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry()) {
		t.Fatal("IDs out of sync with Registry")
	}
	for _, want := range []string{"fig3", "fig4", "fig5", "fig10", "fig11-latency",
		"fig11-scale", "fig12", "fig12-skew", "fig15", "table1", "table3", "table4",
		"raw-read", "overload", "congestion"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from registry", want)
		}
	}
}

func TestResolveAutoBatch(t *testing.T) {
	auto := interconnect.Config{Kind: interconnect.UPI, Batch: 4, AutoBatch: true}
	if got := ResolveAutoBatch(auto, 2e6); got.Batch != 1 || got.AutoBatch {
		t.Errorf("low load resolved to %+v, want B=1", got)
	}
	if got := ResolveAutoBatch(auto, 10e6); got.Batch != 4 {
		t.Errorf("high load resolved to %+v, want B=4", got)
	}
	if got := ResolveAutoBatch(auto, 0); got.Batch != 4 {
		t.Errorf("saturation resolved to %+v, want B=4", got)
	}
	fixed := interconnect.Config{Kind: interconnect.UPI, Batch: 2}
	if got := ResolveAutoBatch(fixed, 1e6); got != fixed {
		t.Error("fixed config must pass through unchanged")
	}
}

func TestEchoDeterminism(t *testing.T) {
	cfg := EchoConfig{Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 4},
		OfferedRPS: 5e6, Requests: 20_000, Seed: 12}
	a, b := RunEcho(cfg), RunEcho(cfg)
	if a.Completed != b.Completed || a.Latency.Percentile(99) != b.Latency.Percentile(99) {
		t.Fatal("echo runs with same seed differ")
	}
}

// Figure 14: round-robin arbitration isolates well-behaved tenants from an
// antagonist flooding the shared bus.
func TestVirtualizationIsolation(t *testing.T) {
	fair := RunVirt(VirtConfig{Tenants: 4, OfferedRPSPerTenant: 5e6, Requests: 40_000, Seed: 1})
	ant := RunVirt(VirtConfig{Tenants: 4, OfferedRPSPerTenant: 5e6,
		AntagonistMultiplier: 10, Requests: 40_000, Seed: 1})
	for i := 1; i < 4; i++ {
		fairRPS := fair.PerTenantRPS[i]
		antRPS := ant.PerTenantRPS[i]
		if antRPS < 0.9*fairRPS {
			t.Errorf("tenant %d throughput fell %0.1f -> %0.1f Mrps under antagonist",
				i, fairRPS/1e6, antRPS/1e6)
		}
	}
	// The antagonist gets more than its fair-share baseline (spare capacity)
	// but is capped by arbitration, far below its 50 Mrps offered load.
	if ant.PerTenantRPS[0] < fair.PerTenantRPS[0] {
		t.Error("antagonist got less than baseline despite flooding")
	}
	if ant.PerTenantRPS[0] > 45e6 {
		t.Error("antagonist was not capped by the shared bus")
	}
}
