// Package experiments composes the substrate models into the paper's
// evaluation: one runner per table and figure (§5), each printing the same
// rows or series the paper reports. `cmd/daggerbench` and the root
// bench_test.go drive these runners.
package experiments

import (
	"math/rand"

	"dagger/internal/dataplane"
	"dagger/internal/interconnect"
	"dagger/internal/netmodel"
	"dagger/internal/nicmodel"
	"dagger/internal/sim"
	"dagger/internal/stats"
	"dagger/internal/wire"
)

// Echo timing constants shared by the RPC-path experiments. The stack is
// symmetric (§4.4): the server core pays the same per-RPC interface cost as
// the client (receive pickup + response submission); the echo handler
// itself is folded into that cost.
const (
	linkDelay = netmodel.LoopbackDelay
	// bestEffortBookkeep is the residual per-RPC client cost when responses
	// are not processed (the §5.2 best-effort mode: "allowing arbitrary
	// packet drops by the server").
	bestEffortBookkeep sim.Time = 12
	// bestEffortQueueCap bounds the server-core queue in best-effort mode;
	// arrivals refused by dataplane.Admit at this depth are dropped (65 keeps
	// the pre-dataplane "depth > 64 drops" admission boundary).
	bestEffortQueueCap = 65
)

// EchoConfig parametrizes the symmetric echo benchmark of §5.2–5.5: a
// client issues fixed-size RPCs to an echo server over the full Dagger
// pipeline (CPU -> interconnect -> NIC RPC unit -> network -> NIC -> CPU and
// back).
type EchoConfig struct {
	// Iface is the CPU-NIC interface under test.
	Iface interconnect.Config
	// OfferedRPS is the open-loop offered load; 0 means "saturate": offer
	// well beyond capacity and measure sustained completions.
	OfferedRPS float64
	// Requests is the number of RPCs to issue.
	Requests int
	// PayloadBytes sizes each RPC (64 B in the paper's Figure 10/11 runs;
	// payloads above one cache line charge extra interconnect lines).
	PayloadBytes int
	// Threads is the number of client threads (Figure 11 right); each gets
	// its own NIC flow and core share.
	Threads int
	// ToR adds the top-of-rack switch crossing (Table 3's setting) instead
	// of the pure FPGA loopback.
	ToR bool
	// BestEffort allows dropping requests at full queues instead of
	// back-pressuring (the paper's 16.5 Mrps best-effort run).
	BestEffort bool
	Seed       int64
}

// EchoResult is the measured outcome.
type EchoResult struct {
	ThroughputRPS float64
	Latency       *stats.Histogram // ns round trip
	Completed     int
	Dropped       int
}

// MedianUs returns the median round trip in microseconds.
func (r *EchoResult) MedianUs() float64 { return float64(r.Latency.Percentile(50)) / 1e3 }

// P99Us returns the 99th percentile round trip in microseconds.
func (r *EchoResult) P99Us() float64 { return float64(r.Latency.Percentile(99)) / 1e3 }

// Mrps returns throughput in millions of requests per second.
func (r *EchoResult) Mrps() float64 { return r.ThroughputRPS / 1e6 }

// batcher groups submissions into CCI-P batches (§4.4). A fixed-width
// batcher waits for a full batch (the B=4 low-load latency penalty of
// Fig. 11); the auto mode is resolved to a width before the run by the
// soft-reconfiguration unit.
type batcher struct {
	eng   *sim.Engine
	width int
	buf   []func()
	flush func([]func())
}

func (b *batcher) add(fn func()) {
	b.buf = append(b.buf, fn)
	if len(b.buf) >= b.width {
		batch := b.buf
		b.buf = nil
		b.flush(batch)
	}
}

// autoBatchThresholdRPS is the load above which the soft-reconfiguration
// unit switches from B=1 to the full batch width (Fig. 11's "B = auto").
const autoBatchThresholdRPS = 7e6

// ResolveAutoBatch applies the soft-reconfiguration policy: at low offered
// load run unbatched for latency; at high load use B=4 for throughput.
func ResolveAutoBatch(cfg interconnect.Config, offeredRPS float64) interconnect.Config {
	if !cfg.AutoBatch {
		return cfg
	}
	resolved := cfg
	resolved.AutoBatch = false
	if offeredRPS > 0 && offeredRPS < autoBatchThresholdRPS {
		return resolved.WithBatch(1)
	}
	return resolved.WithBatch(4)
}

// RunEcho executes the echo benchmark on the timing stack.
func RunEcho(cfg EchoConfig) *EchoResult {
	if cfg.Requests <= 0 {
		cfg.Requests = 200_000
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 64
	}
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	iface := ResolveAutoBatch(cfg.Iface, cfg.OfferedRPS)
	saturate := cfg.OfferedRPS <= 0
	offered := cfg.OfferedRPS
	if saturate {
		offered = 3 * iface.SaturationRPS() * float64(cfg.Threads)
	}

	eng := sim.NewEngine()
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	// Two NIC instances in loopback, as in §5.1.
	clientNIC, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: cfg.Threads, ConnCacheSize: 1024, Iface: iface,
	})
	if err != nil {
		panic(err)
	}
	serverNIC, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: cfg.Threads, ConnCacheSize: 1024, Iface: iface,
	})
	if err != nil {
		panic(err)
	}
	// One connection per client thread, registered in the server NIC's
	// connection manager; per-request lookups hit the direct-mapped cache
	// (a miss would add a host-memory round trip).
	for th := 0; th < cfg.Threads; th++ {
		if err := serverNIC.CM.Open(uint32(th+1), nicmodel.ConnTuple{SrcFlow: uint16(th)}); err != nil {
			panic(err)
		}
	}

	// Shared UPI/CCI-P endpoint on the FPGA (the blue-region bottleneck,
	// §5.5). PCIe interfaces get an endpoint too, but with ample capacity.
	epService := interconnect.EndpointRPCService
	if iface.Kind != interconnect.UPI {
		epService = 8
	}
	endpoint := interconnect.NewEndpoint(eng, epService)

	net := linkDelay
	if cfg.ToR {
		// One switch crossing per direction: +0.3 us on the round trip.
		net += netmodel.ToRDelay
	}

	// Per-thread client core and server core; with >1 thread, SMT packing
	// inflates per-thread CPU cost (2 threads per physical core, §5.5).
	threadsOnCore := 1
	if cfg.Threads > 1 {
		threadsOnCore = 2
	}
	txCPU := sim.Time(float64(iface.TxCPU()) * float64(interconnect.ThreadCPUPerRPC(iface, threadsOnCore)) / float64(iface.CPUPerRPC()))
	rxCPU := interconnect.ThreadCPUPerRPC(iface, threadsOnCore) - txCPU

	res := &EchoResult{Latency: stats.NewHistogram()}
	lines := wire.LinesFor(cfg.PayloadBytes)
	msg := &wire.Message{Payload: make([]byte, cfg.PayloadBytes)}

	var firstArrival, lastCompletion sim.Time
	perThread := cfg.Requests / cfg.Threads
	if perThread == 0 {
		perThread = 1
	}

	for th := 0; th < cfg.Threads; th++ {
		th := th
		clientCore := sim.NewResource(eng, 1)
		serverCore := sim.NewResource(eng, 1)
		inflight := 0
		maxInflight := iface.MaxOutstanding()
		if cfg.BestEffort {
			maxInflight = 1 << 30 // drops replace back-pressure
		}

		// Return path delivery to the client (NIC -> host -> client core).
		complete := func(start sim.Time) {
			eng.After(iface.RxDeliver(), func() {
				if cfg.BestEffort {
					// Response pickup is skipped; latency is not tracked.
					inflight--
					return
				}
				clientCore.Acquire(func() {
					eng.After(rxCPU, func() {
						clientCore.Release()
						inflight--
						res.Completed++
						res.Latency.Record(int64(eng.Now() - start))
						if eng.Now() > lastCompletion {
							lastCompletion = eng.Now()
						}
					})
				})
			})
		}

		// Server response path: server core prepares and submits the echo
		// response through its own interface batch.
		serverTx := &batcher{eng: eng, width: iface.Batch}
		serverTx.flush = func(batch []func()) {
			eng.After(iface.TxDeliver(), func() {
				for _, fn := range batch {
					endpoint.Admit(func() {
						d := serverNIC.PipelineDelay(msg)
						eng.After(d+net, fn)
					})
				}
			})
		}

		// Server receive path: the NIC looks the connection up (to steer
		// the response) and touches its transport state in the HCC before
		// delivering to the host. In best-effort mode the server sheds
		// load: requests arriving to a deeply backed-up core are dropped
		// without a response.
		serveReq := func(start sim.Time) {
			_, cmPenalty, err := serverNIC.CM.Lookup(uint32(th + 1))
			if err != nil {
				panic(err)
			}
			hccPenalty := serverNIC.HCC.Access(uint64(th) * 64)
			eng.After(iface.RxDeliver()+cmPenalty+hccPenalty, func() {
				if cfg.BestEffort && !dataplane.Admit(serverCore.QueueLen(), bestEffortQueueCap) {
					if dataplane.DropRefused(dataplane.RxRingOverflow) {
						res.Dropped++
					}
					return
				}
				serverCore.Acquire(func() {
					eng.After(rxCPU+txCPU, func() {
						serverCore.Release()
						serverTx.add(func() { complete(start) })
					})
				})
			})
		}

		// Client TX path.
		clientTx := &batcher{eng: eng, width: iface.Batch}
		clientTx.flush = func(batch []func()) {
			eng.After(iface.TxDeliver(), func() {
				for _, fn := range batch {
					endpoint.Admit(func() {
						d := clientNIC.PipelineDelay(msg)
						eng.After(d+net, fn)
					})
				}
			})
		}

		// Open-loop arrivals on this thread. When the CCI-P outstanding
		// window (128) is full, submission back-pressures: the arrival
		// retries until a slot frees (or drops, in best-effort mode).
		gapMean := 1e9 / (offered / float64(cfg.Threads))
		issued := 0
		var arrive func()
		arrive = func() {
			if issued >= perThread {
				return
			}
			issued++
			start := eng.Now()
			if th == 0 && issued == 1 {
				firstArrival = start
			}
			next := func() {
				gap := sim.Time(rng.ExpFloat64() * gapMean)
				if gap < 1 {
					gap = 1
				}
				eng.After(gap, arrive)
			}
			submitCost := txCPU
			if cfg.BestEffort {
				// The client skips response processing; only submission
				// plus minimal bookkeeping hits the core.
				submitCost = txCPU + bestEffortBookkeep
			}
			admit := func() {
				inflight++
				clientCore.Acquire(func() {
					eng.After(submitCost, func() {
						clientCore.Release()
						if cfg.BestEffort {
							// Throughput is counted at submission; the
							// response path (if any) is best-effort.
							res.Completed++
							if eng.Now() > lastCompletion {
								lastCompletion = eng.Now()
							}
						}
						clientTx.add(func() { serveReq(start) })
					})
				})
			}
			if inflight < maxInflight {
				admit()
				next()
				return
			}
			if cfg.BestEffort {
				res.Dropped++
				next()
				return
			}
			var retry func()
			retry = func() {
				if inflight < maxInflight {
					admit()
					next()
					return
				}
				eng.After(50, retry)
			}
			eng.After(50, retry)
		}
		eng.After(0, arrive)
	}
	_ = lines

	eng.Run()
	elapsed := lastCompletion - firstArrival
	if elapsed > 0 {
		res.ThroughputRPS = float64(res.Completed) / (float64(elapsed) / 1e9)
	}
	return res
}

// RawReadResult is the §5.5 raw idle-read scaling measurement.
type RawReadResult struct {
	Threads       int
	ThroughputRPS float64
}

// rawReadCPU is the per-read thread cost of an idle UPI memory read.
const rawReadCPU sim.Time = 80

// RunRawReads measures raw UPI read scaling (Fig. 11 right, red series):
// threads issue idle memory reads through the shared UPI endpoint.
func RunRawReads(threads, reads int) *RawReadResult {
	if reads <= 0 {
		reads = 500_000
	}
	eng := sim.NewEngine()
	endpoint := interconnect.NewEndpoint(eng, interconnect.EndpointRawService)
	threadsOnCore := 1
	if threads > 1 {
		threadsOnCore = 2
	}
	cost := rawReadCPU
	if threadsOnCore > 1 {
		cost = sim.Time(float64(cost) / interconnect.SMTFactor)
	}
	completed := 0
	var last sim.Time
	per := reads / threads
	for th := 0; th < threads; th++ {
		var issue func()
		n := 0
		issue = func() {
			if n >= per {
				return
			}
			n++
			// Reads are pipelined: the thread pays its per-read CPU cost
			// and keeps issuing while the endpoint serves asynchronously.
			endpoint.Admit(func() {
				completed++
				if eng.Now() > last {
					last = eng.Now()
				}
			})
			eng.After(cost, issue)
		}
		eng.After(0, issue)
	}
	eng.Run()
	r := &RawReadResult{Threads: threads}
	if last > 0 {
		r.ThroughputRPS = float64(completed) / (float64(last) / 1e9)
	}
	return r
}
