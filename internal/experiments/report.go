package experiments

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"dagger/internal/metrics"
)

// ReportEntry is one experiment's published metrics snapshot.
type ReportEntry struct {
	Experiment string           `json:"experiment"`
	Metrics    metrics.Snapshot `json:"metrics"`
}

// MetricsReport accumulates per-experiment snapshots into the unified
// telemetry report daggerbench emits with -metrics and CI archives. Runners
// publish whatever registries their components expose (NIC monitors, or a
// registry built from result counters when a run has no NIC); names follow
// the cross-substrate scheme (conn.*, shed.*, mark.*, call.*, ...).
type MetricsReport struct {
	mu      sync.Mutex
	entries []ReportEntry
}

// Publish records snap under the experiment id, replacing any earlier
// snapshot for the same id (a re-run keeps the latest).
func (r *MetricsReport) Publish(experiment string, snap metrics.Snapshot) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.entries {
		if r.entries[i].Experiment == experiment {
			r.entries[i].Metrics = snap
			return
		}
	}
	r.entries = append(r.entries, ReportEntry{Experiment: experiment, Metrics: snap})
}

// Entries returns a copy of the report sorted by experiment id.
func (r *MetricsReport) Entries() []ReportEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]ReportEntry, len(r.entries))
	copy(out, r.entries)
	sort.Slice(out, func(i, j int) bool { return out[i].Experiment < out[j].Experiment })
	return out
}

// Len returns the number of experiments with a published snapshot.
func (r *MetricsReport) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.entries)
}

// WriteJSON writes the report as indented JSON. Entries sort by experiment
// id and samples by name, so identical runs produce byte-identical reports.
func (r *MetricsReport) WriteJSON(w io.Writer) error {
	out := struct {
		Experiments []ReportEntry `json:"experiments"`
	}{Experiments: r.Entries()}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// defaultReport is the package-level sink runners publish into;
// cmd/daggerbench drains it via Report when -metrics is set.
var defaultReport = &MetricsReport{}

// PublishMetrics records snap in the package-level report under id.
func PublishMetrics(id string, snap metrics.Snapshot) { defaultReport.Publish(id, snap) }

// Report returns the package-level report.
func Report() *MetricsReport { return defaultReport }
