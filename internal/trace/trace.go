// Package trace is the lightweight request tracing system of §5.7: the
// paper builds one to profile the Flight Registration service and discover
// that the long-running Flight tier blocks dispatch threads. Traces are
// per-request span lists (service, queue wait, service time); the analyzer
// aggregates them into per-service occupancy and points at the bottleneck.
package trace

import (
	"fmt"
	"sort"
	"sync"

	"dagger/internal/metrics"
	"dagger/internal/sim"
)

// Span is one tier visit within a request.
type Span struct {
	Service string
	Start   sim.Time // arrival at the tier
	Queue   sim.Time // time waiting for a thread/core
	Work    sim.Time // handler execution time
	End     sim.Time // response sent
	// Marked records that the request reached this tier carrying an
	// ECN-style congestion mark (stamped by a queue on its path), so the
	// profile can attribute queue pressure to the services that see it.
	Marked bool
	// ConnMiss records that the request's connection lookup missed the
	// NIC's near-memory connection cache (§4.2) and paid the host-lookup
	// penalty, so the profile can spot services whose connection working
	// set outgrew the cache.
	ConnMiss bool
}

// Total returns the span's wall time.
func (s Span) Total() sim.Time { return s.End - s.Start }

// Trace is one end-to-end request.
type Trace struct {
	ID    uint64
	Spans []Span
}

// Collector accumulates traces; safe for concurrent use.
type Collector struct {
	mu      sync.Mutex
	next    uint64
	traces  []Trace
	cap     int
	dropped uint64

	// corruptDrops counts requests the traced server discarded because their
	// header failed checksum verification (wire.ErrBadChecksum) — corruption
	// never produces a trace (the request is unattributable), so the profile
	// carries the count instead, keeping a corrupted-traffic profile from
	// being mistaken for a clean one.
	corruptDrops metrics.Counter
}

// NewCollector creates a collector retaining at most capTraces traces
// (0 = unbounded).
func NewCollector(capTraces int) *Collector {
	return &Collector{cap: capTraces}
}

// DescribeMetrics registers read-time gauges over the collector's state:
// traces begun, retained, and dropped at the retention cap. The collector's
// own fields stay mutex-guarded; the gauges take the lock at snapshot time.
func (c *Collector) DescribeMetrics(reg *metrics.Registry) {
	reg.Func("trace.begun", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.next)
	})
	reg.Func("trace.retained", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(len(c.traces))
	})
	reg.Func("trace.dropped", func() int64 {
		c.mu.Lock()
		defer c.mu.Unlock()
		return int64(c.dropped)
	})
	reg.RegisterCounter("trace.corruptdrop", &c.corruptDrops)
}

// NoteCorruptDrop records one request discarded at the server for a failed
// header checksum. Lock-free (the counter is atomic): it sits on the server's
// frame-drop path.
func (c *Collector) NoteCorruptDrop() { c.corruptDrops.Inc() }

// CorruptDrops returns the number of checksum-failure drops recorded.
func (c *Collector) CorruptDrops() uint64 { return c.corruptDrops.Load() }

// Begin starts a new trace and returns its id. Traces beyond the retention
// cap are not retained (lightweight by design) but are counted: Dropped
// reports how many, so a truncated profile is never mistaken for a complete
// one.
func (c *Collector) Begin() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.next++
	id := c.next
	if c.cap == 0 || len(c.traces) < c.cap {
		c.traces = append(c.traces, Trace{ID: id})
	} else {
		c.dropped++
	}
	return id
}

// Dropped returns the number of traces begun after the retention cap filled
// and therefore not retained.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Record appends a span to trace id. Spans for traces beyond the retention
// cap are dropped silently (lightweight by design).
func (c *Collector) Record(id uint64, sp Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	idx := int(id) - 1
	if idx < 0 || idx >= len(c.traces) {
		return
	}
	c.traces[idx].Spans = append(c.traces[idx].Spans, sp)
}

// Traces returns a snapshot of collected traces.
func (c *Collector) Traces() []Trace {
	traces, _ := c.Snapshot()
	return traces
}

// Snapshot returns the collected traces together with the count of traces
// dropped at the retention cap.
func (c *Collector) Snapshot() ([]Trace, uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Trace, len(c.traces))
	copy(out, c.traces)
	return out, c.dropped
}

// ServiceProfile aggregates one service's spans.
type ServiceProfile struct {
	Service    string
	Spans      uint64
	TotalBusy  sim.Time
	TotalQueue sim.Time
	// Marked counts spans whose request arrived congestion-marked.
	Marked uint64
	// ConnMisses counts spans whose request missed the connection cache.
	ConnMisses uint64
}

// MeanBusy returns the mean handler time.
func (p ServiceProfile) MeanBusy() sim.Time {
	if p.Spans == 0 {
		return 0
	}
	return p.TotalBusy / sim.Time(p.Spans)
}

// MeanQueue returns the mean queueing time.
func (p ServiceProfile) MeanQueue() sim.Time {
	if p.Spans == 0 {
		return 0
	}
	return p.TotalQueue / sim.Time(p.Spans)
}

// MarkedFrac returns the fraction of this service's spans that arrived
// congestion-marked.
func (p ServiceProfile) MarkedFrac() float64 {
	if p.Spans == 0 {
		return 0
	}
	return float64(p.Marked) / float64(p.Spans)
}

// ConnMissFrac returns the fraction of this service's spans whose request
// missed the connection cache.
func (p ServiceProfile) ConnMissFrac() float64 {
	if p.Spans == 0 {
		return 0
	}
	return float64(p.ConnMisses) / float64(p.Spans)
}

// Report is the analyzer output.
type Report struct {
	Profiles []ServiceProfile // sorted by TotalBusy descending
	// Dropped is the number of traces the collector began but did not retain
	// (retention cap); nonzero means the profile is computed from a prefix
	// of the request population.
	Dropped uint64
}

// Bottleneck returns the service with the largest aggregate busy time.
func (r Report) Bottleneck() string {
	if len(r.Profiles) == 0 {
		return ""
	}
	return r.Profiles[0].Service
}

// String renders the report.
func (r Report) String() string {
	out := "service profile (by total busy time):\n"
	for _, p := range r.Profiles {
		out += fmt.Sprintf("  %-18s spans=%-7d busy(mean)=%-10v queue(mean)=%v",
			p.Service, p.Spans, p.MeanBusy(), p.MeanQueue())
		if p.Marked > 0 {
			out += fmt.Sprintf(" marked=%.0f%%", 100*p.MarkedFrac())
		}
		if p.ConnMisses > 0 {
			out += fmt.Sprintf(" conn-miss=%.0f%%", 100*p.ConnMissFrac())
		}
		out += "\n"
	}
	if r.Dropped > 0 {
		out += fmt.Sprintf("  (truncated: %d traces dropped at the retention cap)\n", r.Dropped)
	}
	return out
}

// Analyze aggregates the collected traces into a bottleneck report.
func (c *Collector) Analyze() Report {
	traces, dropped := c.Snapshot()
	byService := map[string]*ServiceProfile{}
	for _, tr := range traces {
		for _, sp := range tr.Spans {
			p := byService[sp.Service]
			if p == nil {
				p = &ServiceProfile{Service: sp.Service}
				byService[p.Service] = p
			}
			p.Spans++
			p.TotalBusy += sp.Work
			p.TotalQueue += sp.Queue
			if sp.Marked {
				p.Marked++
			}
			if sp.ConnMiss {
				p.ConnMisses++
			}
		}
	}
	rep := Report{Dropped: dropped}
	for _, p := range byService {
		rep.Profiles = append(rep.Profiles, *p)
	}
	sort.Slice(rep.Profiles, func(i, j int) bool {
		return rep.Profiles[i].TotalBusy > rep.Profiles[j].TotalBusy
	})
	return rep
}
