package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCollectAndAnalyze(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 10; i++ {
		id := c.Begin()
		c.Record(id, Span{Service: "Flight", Start: 0, Queue: 50, Work: 1000, End: 1050})
		c.Record(id, Span{Service: "Baggage", Start: 0, Queue: 10, Work: 100, End: 110})
	}
	rep := c.Analyze()
	if rep.Bottleneck() != "Flight" {
		t.Fatalf("bottleneck = %q, want Flight", rep.Bottleneck())
	}
	if len(rep.Profiles) != 2 {
		t.Fatalf("profiles = %d", len(rep.Profiles))
	}
	flight := rep.Profiles[0]
	if flight.Spans != 10 || flight.MeanBusy() != 1000 || flight.MeanQueue() != 50 {
		t.Fatalf("flight profile = %+v", flight)
	}
	if !strings.Contains(rep.String(), "Flight") {
		t.Fatal("report text missing service")
	}
}

// TestMarkedAggregation pins the congestion-mark profile: marked spans are
// counted per service, surfaced as a fraction, and rendered only for
// services that actually saw marks.
func TestMarkedAggregation(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 8; i++ {
		id := c.Begin()
		// Flight sees pressure on half its visits; Baggage never does.
		c.Record(id, Span{Service: "Flight", Work: 1000, Queue: 50, Marked: i%2 == 0})
		c.Record(id, Span{Service: "Baggage", Work: 100, Queue: 10})
	}
	rep := c.Analyze()
	var flight, baggage ServiceProfile
	for _, p := range rep.Profiles {
		switch p.Service {
		case "Flight":
			flight = p
		case "Baggage":
			baggage = p
		}
	}
	if flight.Marked != 4 || flight.MarkedFrac() != 0.5 {
		t.Fatalf("flight marked = %d (frac %.2f), want 4 (0.50)", flight.Marked, flight.MarkedFrac())
	}
	if baggage.Marked != 0 || baggage.MarkedFrac() != 0 {
		t.Fatalf("baggage marked = %d, want 0", baggage.Marked)
	}
	text := rep.String()
	if !strings.Contains(text, "marked=50%") {
		t.Fatalf("report missing marked fraction:\n%s", text)
	}
	if strings.Count(text, "marked=") != 1 {
		t.Fatalf("unmarked service should not render a marked column:\n%s", text)
	}
}

// TestConnMissAggregation pins the connection-cache-miss profile, mirroring
// the congestion-mark one: missed spans are counted per service, surfaced as
// a fraction, and rendered only for services that actually saw misses.
func TestConnMissAggregation(t *testing.T) {
	c := NewCollector(0)
	for i := 0; i < 8; i++ {
		id := c.Begin()
		// Flight's connection working set outgrew the cache on a quarter of
		// its visits; Baggage's always fits.
		c.Record(id, Span{Service: "Flight", Work: 1000, Queue: 50, ConnMiss: i%4 == 0})
		c.Record(id, Span{Service: "Baggage", Work: 100, Queue: 10})
	}
	rep := c.Analyze()
	var flight, baggage ServiceProfile
	for _, p := range rep.Profiles {
		switch p.Service {
		case "Flight":
			flight = p
		case "Baggage":
			baggage = p
		}
	}
	if flight.ConnMisses != 2 || flight.ConnMissFrac() != 0.25 {
		t.Fatalf("flight conn misses = %d (frac %.2f), want 2 (0.25)", flight.ConnMisses, flight.ConnMissFrac())
	}
	if baggage.ConnMisses != 0 || baggage.ConnMissFrac() != 0 {
		t.Fatalf("baggage conn misses = %d, want 0", baggage.ConnMisses)
	}
	text := rep.String()
	if !strings.Contains(text, "conn-miss=25%") {
		t.Fatalf("report missing conn-miss fraction:\n%s", text)
	}
	if strings.Count(text, "conn-miss=") != 1 {
		t.Fatalf("miss-free service should not render a conn-miss column:\n%s", text)
	}
}

func TestSpanTotal(t *testing.T) {
	sp := Span{Start: 100, End: 350}
	if sp.Total() != 250 {
		t.Fatalf("total = %v", sp.Total())
	}
}

func TestRetentionCap(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 10; i++ {
		id := c.Begin()
		c.Record(id, Span{Service: "S", Work: 1, End: 1})
	}
	if got := len(c.Traces()); got != 3 {
		t.Fatalf("retained %d traces, want 3", got)
	}
	// Records for dropped traces are ignored, not panicking.
	c.Record(999, Span{Service: "S"})
}

func TestDroppedCounter(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 10; i++ {
		id := c.Begin()
		c.Record(id, Span{Service: "S", Work: 1, End: 1})
	}
	if got := c.Dropped(); got != 7 {
		t.Fatalf("Dropped() = %d, want 7", got)
	}
	traces, dropped := c.Snapshot()
	if len(traces) != 3 || dropped != 7 {
		t.Fatalf("Snapshot() = %d traces, %d dropped; want 3, 7", len(traces), dropped)
	}
	rep := c.Analyze()
	if rep.Dropped != 7 {
		t.Fatalf("Report.Dropped = %d, want 7", rep.Dropped)
	}
	if !strings.Contains(rep.String(), "7 traces dropped") {
		t.Fatalf("report does not surface the truncation:\n%s", rep.String())
	}

	// An unbounded collector never drops.
	u := NewCollector(0)
	for i := 0; i < 10; i++ {
		u.Begin()
	}
	if got := u.Dropped(); got != 0 {
		t.Fatalf("unbounded collector Dropped() = %d, want 0", got)
	}
	if rep := u.Analyze(); strings.Contains(rep.String(), "truncated") {
		t.Fatal("unbounded report mentions truncation")
	}
}

func TestEmptyReport(t *testing.T) {
	c := NewCollector(0)
	rep := c.Analyze()
	if rep.Bottleneck() != "" {
		t.Fatal("empty collector has no bottleneck")
	}
}

func TestConcurrentCollection(t *testing.T) {
	c := NewCollector(0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := c.Begin()
				c.Record(id, Span{Service: "X", Work: 5, End: 5})
			}
		}()
	}
	wg.Wait()
	rep := c.Analyze()
	if rep.Profiles[0].Spans != 1600 {
		t.Fatalf("spans = %d, want 1600", rep.Profiles[0].Spans)
	}
}
