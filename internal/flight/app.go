// Package flight implements the paper's end-to-end microservice benchmark
// (§5.7, Figure 13): an 8-tier Flight Registration service — Passenger and
// Staff front-ends, a Check-in orchestrator, Flight, Baggage and Passport
// services, and two MICA-backed databases (Airport and Citizens). The tiers
// exhibit one-to-one, one-to-many and many-to-one dependencies, both chain
// and fan-out, and mix blocking and non-blocking RPCs exactly as described.
//
// The functional application in this file runs on the real Dagger RPC stack
// (internal/core over internal/fabric); the timing model regenerating
// Table 4 and Figure 15 lives in model.go.
package flight

import (
	"context"
	"sync"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/kvs/mica"
	"dagger/internal/wire"
)

// Tier fabric addresses.
const (
	AddrPassengerFE uint32 = iota + 1
	AddrStaffFE
	AddrCheckIn
	AddrFlight
	AddrBaggage
	AddrPassport
	AddrAirportDB
	AddrCitizensDB
)

// Function IDs.
const (
	FnRegister uint16 = iota // PassengerFE / CheckIn: register a passenger
	FnFlightInfo
	FnCheckBags
	FnVerifyPassport
	FnStaffLookup
)

// Passenger is a registration request.
type Passenger struct {
	ID       uint64
	FlightNo uint32
	Bags     uint32
}

func (p Passenger) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Uint64(p.ID)
	e.Uint32(p.FlightNo)
	e.Uint32(p.Bags)
	return e.Bytes()
}

func decodePassenger(b []byte) (Passenger, error) {
	d := wire.NewDecoder(b)
	p := Passenger{ID: d.Uint64(), FlightNo: d.Uint32(), Bags: d.Uint32()}
	return p, d.Err()
}

// Record is the registration outcome stored in the Airport database.
type Record struct {
	PassengerID uint64
	FlightNo    uint32
	Gate        uint32
	Bags        uint32
	PassportOK  bool
}

func (r Record) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Uint64(r.PassengerID)
	e.Uint32(r.FlightNo)
	e.Uint32(r.Gate)
	e.Uint32(r.Bags)
	e.Bool(r.PassportOK)
	return e.Bytes()
}

func decodeRecord(b []byte) (Record, error) {
	d := wire.NewDecoder(b)
	r := Record{
		PassengerID: d.Uint64(),
		FlightNo:    d.Uint32(),
		Gate:        d.Uint32(),
		Bags:        d.Uint32(),
		PassportOK:  d.Bool(),
	}
	return r, d.Err()
}

// Config tunes the application.
type Config struct {
	// Threading selects each middle tier's threading model; missing
	// entries default to dispatch threads. The paper's "Optimized" model
	// moves Flight, Check-in and Passport to worker threads.
	Threading map[string]core.ServerConfig
	// FlightWork emulates the Flight service's long-running lookup.
	FlightWork time.Duration
	// FlowsPerTier is each tier NIC's flow count.
	FlowsPerTier int
	// RingDepth is the per-flow RX ring depth.
	RingDepth int
	// Citizens seeds the Citizens database with this many residents.
	Citizens int
}

// OptimizedThreading returns the paper's Optimized model: worker threads
// for the long-running Flight service and the nested-blocking Check-in and
// Passport services.
func OptimizedThreading(workers int) map[string]core.ServerConfig {
	w := core.ServerConfig{Threading: core.WorkerThreads, Workers: workers}
	return map[string]core.ServerConfig{
		"Flight":   w,
		"CheckIn":  w,
		"Passport": w,
	}
}

// App is a running Flight Registration deployment.
type App struct {
	Fabric *fabric.Fabric

	servers []*core.RpcThreadedServer
	pools   []*core.RpcClientPool
	nics    []*fabric.SoftNIC

	passengerPool *core.RpcClientPool
	staffPool     *core.RpcClientPool

	airport  *mica.Store
	citizens *mica.Store
}

func (a *App) tierCfg(cfg Config, tier string) core.ServerConfig {
	if c, ok := cfg.Threading[tier]; ok {
		return c
	}
	return core.ServerConfig{Threading: core.DispatchThreads}
}

// New builds and starts all eight tiers on a fresh fabric.
func New(cfg Config) (*App, error) {
	if cfg.FlowsPerTier <= 0 {
		cfg.FlowsPerTier = 2
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 1024
	}
	if cfg.Citizens <= 0 {
		cfg.Citizens = 1000
	}
	a := &App{Fabric: fabric.NewFabric()}
	ok := false
	defer func() {
		if !ok {
			a.Close()
		}
	}()

	mkNIC := func(addr uint32) (*fabric.SoftNIC, error) {
		n, err := a.Fabric.CreateNIC(addr, cfg.FlowsPerTier, cfg.RingDepth)
		if err != nil {
			return nil, err
		}
		a.nics = append(a.nics, n)
		return n, nil
	}
	// mkPool builds a client pool on nic with a connection from every
	// client to every destination; conns[dst][i] is client i's connection
	// to dst (the SRQ model: connections share the client's ring).
	mkPool := func(nic *fabric.SoftNIC, dsts ...uint32) (*core.RpcClientPool, map[uint32][]uint32, error) {
		pool, err := core.NewRpcClientPool(nic, cfg.FlowsPerTier)
		if err != nil {
			return nil, nil, err
		}
		a.pools = append(a.pools, pool)
		conns := make(map[uint32][]uint32)
		for _, d := range dsts {
			ids, err := pool.ConnectAll(d)
			if err != nil {
				return nil, nil, err
			}
			conns[d] = ids
		}
		return pool, conns, nil
	}

	// Databases first (Airport, Citizens) — MICA over Dagger with
	// object-level NIC steering.
	airportNIC, err := mkNIC(AddrAirportDB)
	if err != nil {
		return nil, err
	}
	a.airport = mica.NewStore(cfg.FlowsPerTier, 1<<12, 1<<22)
	srv, err := mica.Serve(airportNIC, a.airport, core.ServerConfig{})
	if err != nil {
		return nil, err
	}
	a.servers = append(a.servers, srv)

	citizensNIC, err := mkNIC(AddrCitizensDB)
	if err != nil {
		return nil, err
	}
	a.citizens = mica.NewStore(cfg.FlowsPerTier, 1<<12, 1<<22)
	srv, err = mica.Serve(citizensNIC, a.citizens, core.ServerConfig{})
	if err != nil {
		return nil, err
	}
	a.servers = append(a.servers, srv)
	for i := 0; i < cfg.Citizens; i++ {
		key := citizenKey(uint64(i))
		if err := a.citizens.Set(key, []byte{1}); err != nil {
			return nil, err
		}
	}

	// Flight service: static flight table, long-running lookups.
	flightNIC, err := mkNIC(AddrFlight)
	if err != nil {
		return nil, err
	}
	fsrv := core.NewRpcThreadedServer(flightNIC, a.tierCfg(cfg, "Flight"))
	if err := fsrv.Register(FnFlightInfo, "Flight.info", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		flightNo := d.Uint32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		if cfg.FlightWork > 0 {
			time.Sleep(cfg.FlightWork)
		}
		e := wire.NewEncoder(nil)
		e.Uint32(100 + flightNo%64) // gate assignment
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := fsrv.Start(); err != nil {
		return nil, err
	}
	a.servers = append(a.servers, fsrv)

	// Baggage service.
	baggageNIC, err := mkNIC(AddrBaggage)
	if err != nil {
		return nil, err
	}
	bsrv := core.NewRpcThreadedServer(baggageNIC, a.tierCfg(cfg, "Baggage"))
	if err := bsrv.Register(FnCheckBags, "Baggage.check", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		_ = d.Uint64() // passenger
		bags := d.Uint32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		e := wire.NewEncoder(nil)
		e.Bool(bags <= 3) // checked baggage allowance
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := bsrv.Start(); err != nil {
		return nil, err
	}
	a.servers = append(a.servers, bsrv)

	// Passport service: blocking nested call into Citizens DB.
	passportNIC, err := mkNIC(AddrPassport)
	if err != nil {
		return nil, err
	}
	passportClients, passportConns, err := mkPool(passportNIC, AddrCitizensDB)
	if err != nil {
		return nil, err
	}
	psrv := core.NewRpcThreadedServer(passportNIC, a.tierCfg(cfg, "Passport"))
	var passportRR counter
	if err := psrv.Register(FnVerifyPassport, "Passport.verify", func(ctx context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		pid := d.Uint64()
		if err := d.Err(); err != nil {
			return nil, err
		}
		idx := passportRR.next(passportClients.Size())
		mc := mica.NewClientConn(passportClients.Client(idx), passportConns[AddrCitizensDB][idx])
		_, err := mc.GetContext(ctx, citizenKey(pid))
		e := wire.NewEncoder(nil)
		e.Bool(err == nil)
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := psrv.Start(); err != nil {
		return nil, err
	}
	a.servers = append(a.servers, psrv)

	// Check-in orchestrator: non-blocking fan-out to Flight, Baggage,
	// Passport; then blocking write to the Airport DB.
	checkinNIC, err := mkNIC(AddrCheckIn)
	if err != nil {
		return nil, err
	}
	checkinClients, checkinConns, err := mkPool(checkinNIC, AddrFlight, AddrBaggage, AddrPassport, AddrAirportDB)
	if err != nil {
		return nil, err
	}
	csrv := core.NewRpcThreadedServer(checkinNIC, a.tierCfg(cfg, "CheckIn"))
	var checkinRR counter
	if err := csrv.Register(FnRegister, "CheckIn.register", func(ctx context.Context, req []byte) ([]byte, error) {
		p, err := decodePassenger(req)
		if err != nil {
			return nil, err
		}
		idx := checkinRR.next(checkinClients.Size())
		return a.checkIn(ctx, checkinClients.Client(idx), checkinConns, idx, p)
	}); err != nil {
		return nil, err
	}
	if err := csrv.Start(); err != nil {
		return nil, err
	}
	a.servers = append(a.servers, csrv)

	// Passenger front-end: non-blocking RPCs into Check-in.
	pfeNIC, err := mkNIC(AddrPassengerFE)
	if err != nil {
		return nil, err
	}
	a.passengerPool, _, err = mkPool(pfeNIC, AddrCheckIn)
	if err != nil {
		return nil, err
	}

	// Staff front-end: asynchronously audits Airport records.
	sfeNIC, err := mkNIC(AddrStaffFE)
	if err != nil {
		return nil, err
	}
	a.staffPool, _, err = mkPool(sfeNIC, AddrAirportDB)
	if err != nil {
		return nil, err
	}

	ok = true
	return a, nil
}

// checkIn runs the orchestration: parallel fan-out, join, then a blocking
// Airport write. conns routes each nested call to the right downstream
// connection on the shared client ring.
func (a *App) checkIn(ctx context.Context, cli *core.RpcClient, conns map[uint32][]uint32, idx int, p Passenger) ([]byte, error) {
	type result struct {
		gate   uint32
		bagsOK bool
		passOK bool
	}
	var res result
	var firstErr error
	var mu sync.Mutex
	var wg sync.WaitGroup
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}

	// Flight info.
	wg.Add(1)
	ef := wire.NewEncoder(nil)
	ef.Uint32(p.FlightNo)
	if err := cli.CallConnAsyncContext(ctx, conns[AddrFlight][idx], FnFlightInfo, ef.Bytes(), func(out []byte, err error) {
		defer wg.Done()
		if err != nil {
			fail(err)
			return
		}
		d := wire.NewDecoder(out)
		mu.Lock()
		res.gate = d.Uint32()
		mu.Unlock()
	}); err != nil {
		wg.Done()
		fail(err)
	}

	// Baggage.
	wg.Add(1)
	eb := wire.NewEncoder(nil)
	eb.Uint64(p.ID)
	eb.Uint32(p.Bags)
	if err := cli.CallConnAsyncContext(ctx, conns[AddrBaggage][idx], FnCheckBags, eb.Bytes(), func(out []byte, err error) {
		defer wg.Done()
		if err != nil {
			fail(err)
			return
		}
		d := wire.NewDecoder(out)
		mu.Lock()
		res.bagsOK = d.Bool()
		mu.Unlock()
	}); err != nil {
		wg.Done()
		fail(err)
	}

	// Passport.
	wg.Add(1)
	ep := wire.NewEncoder(nil)
	ep.Uint64(p.ID)
	if err := cli.CallConnAsyncContext(ctx, conns[AddrPassport][idx], FnVerifyPassport, ep.Bytes(), func(out []byte, err error) {
		defer wg.Done()
		if err != nil {
			fail(err)
			return
		}
		d := wire.NewDecoder(out)
		mu.Lock()
		res.passOK = d.Bool()
		mu.Unlock()
	}); err != nil {
		wg.Done()
		fail(err)
	}

	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	rec := Record{
		PassengerID: p.ID,
		FlightNo:    p.FlightNo,
		Gate:        res.gate,
		Bags:        p.Bags,
		PassportOK:  res.passOK && res.bagsOK,
	}
	// Blocking write to the Airport DB.
	mc := mica.NewClientConn(cli, conns[AddrAirportDB][idx])
	if err := mc.SetContext(ctx, recordKey(p.ID), rec.encode()); err != nil {
		return nil, err
	}
	return rec.encode(), nil
}

// RegisterPassenger drives one end-to-end registration through the
// Passenger front-end (blocking, for tests and examples; the load
// generator uses the async path).
func (a *App) RegisterPassenger(p Passenger) (Record, error) {
	return a.RegisterPassengerContext(context.Background(), p)
}

// RegisterPassengerContext is RegisterPassenger under ctx: the deadline
// budget rides the wire into Check-in and cascades through the fan-out tiers
// and both databases.
func (a *App) RegisterPassengerContext(ctx context.Context, p Passenger) (Record, error) {
	cli := a.passengerPool.Client(0)
	out, err := cli.CallContext(ctx, FnRegister, p.encode())
	if err != nil {
		return Record{}, err
	}
	return decodeRecord(out)
}

// StaffLookup reads a registration record via the Staff front-end.
func (a *App) StaffLookup(passengerID uint64) (Record, error) {
	mc := mica.NewClient(a.staffPool.Client(0))
	raw, err := mc.Get(recordKey(passengerID))
	if err != nil {
		return Record{}, err
	}
	return decodeRecord(raw)
}

// Close stops every tier.
func (a *App) Close() {
	for _, p := range a.pools {
		p.Close()
	}
	if a.passengerPool != nil {
		a.passengerPool.Close()
	}
	if a.staffPool != nil {
		a.staffPool.Close()
	}
	for _, s := range a.servers {
		s.Stop()
	}
	for _, n := range a.nics {
		n.Close()
	}
}

func citizenKey(id uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Uint64(id)
	return append([]byte("cz"), e.Bytes()...)
}

func recordKey(id uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Uint64(id)
	return append([]byte("rec"), e.Bytes()...)
}

// counter is a tiny synchronized round-robin cursor.
type counter struct {
	mu sync.Mutex
	n  int
}

func (c *counter) next(mod int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := c.n % mod
	c.n++
	return v
}
