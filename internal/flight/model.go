package flight

import (
	"math/rand"

	"dagger/internal/sim"
	"dagger/internal/stats"
	"dagger/internal/trace"
)

// This file is the timing model that regenerates Table 4 and Figure 15:
// the same 8-tier graph as the functional app, executed as a discrete-event
// queueing simulation at Dagger-scale clocks. The threading models map to
// queueing structure exactly as in §5.7:
//
//   - Simple: each tier's RPC handlers run in the dispatch threads. A
//     long-running Flight lookup blocks its flow's dispatch thread, the
//     NIC's RX ring backs up, and requests drop — which is what caps the
//     Simple model's sustainable load at a few Krps despite its lower
//     baseline latency.
//   - Optimized: Flight, Check-in and Passport hand requests from dispatch
//     to worker threads. Dispatch threads only pay the RX/dispatch cost, so
//     rings drain even while workers chew on slow requests; throughput
//     rises ~17x at the cost of inter-thread handoff latency.

// Threading selects the Table 4 row.
type Threading int

// Threading models of Table 4.
const (
	// Simple runs every handler in its dispatch thread.
	Simple Threading = iota
	// Optimized moves Flight/CheckIn/Passport handlers to worker pools.
	Optimized
)

func (m Threading) String() string {
	if m == Optimized {
		return "Optimized"
	}
	return "Simple"
}

// ModelConfig parametrizes a run.
type ModelConfig struct {
	Threading Threading
	// LoadRPS is the offered passenger-registration load.
	LoadRPS float64
	// Requests to offer (completed + dropped).
	Requests int
	Seed     int64
	// Flows is each tier's NIC flow / dispatch thread count (default 2).
	Flows int
	// RingDepth is the per-flow RX ring depth (default 6, per the paper's
	// ring provisioning rule for Krps-scale flows).
	RingDepth int
	// Workers sizes the worker pools in the Optimized model (default 4).
	Workers int
	// Tracer, when set, records per-tier spans for bottleneck analysis.
	Tracer *trace.Collector
}

// Model timing constants (simulated nanoseconds).
const (
	hopLatency   sim.Time = 1300 // one NIC-to-NIC RPC hop over Dagger
	rxDispatch   sim.Time = 600  // dispatch-thread RX + unmarshal cost
	handoffCost  sim.Time = 2500 // dispatch->worker queue transfer
	feWork       sim.Time = 500  // front-end request handling
	checkinWork  sim.Time = 1200 // orchestration logic
	baggageWork  sim.Time = 900
	passportWork sim.Time = 800
	micaWork     sim.Time = 700 // Airport / Citizens lookup or write

	flightFastWork sim.Time = 4000                 // typical flight lookup
	flightSlowWork sim.Time = 12 * sim.Millisecond // long-running lookup
	flightSlowFrac          = 0.003
)

// ModelResult is one run's output.
type ModelResult struct {
	Threading Threading
	LoadRPS   float64
	Latency   *stats.Histogram // ns, completed end-to-end registrations
	Offered   int
	Completed int
	Dropped   int
}

// DropFrac returns the fraction of offered requests dropped.
func (r *ModelResult) DropFrac() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Dropped) / float64(r.Offered)
}

// modelTier is one service in the queueing model.
type modelTier struct {
	name     string
	eng      *sim.Engine
	ring     *sim.Queue    // bounded RX ring (flows * depth)
	dispatch *sim.Resource // dispatch threads (= flows)
	workers  *sim.Resource // worker pool (Optimized tiers only)
	workQ    *sim.Queue    // dispatch -> worker queue
	drops    *int
}

type flightModel struct {
	cfg ModelConfig
	eng *sim.Engine
	rng *rand.Rand
	res *ModelResult

	pfe, checkin, flight, baggage, passport, airport, citizens, staff *modelTier
}

func newModelTier(eng *sim.Engine, name string, flows, ringDepth, workers int, drops *int) *modelTier {
	t := &modelTier{
		name:     name,
		eng:      eng,
		ring:     sim.NewQueue(flows * ringDepth),
		dispatch: sim.NewResource(eng, flows),
		drops:    drops,
	}
	if workers > 0 {
		t.workers = sim.NewResource(eng, workers)
		t.workQ = sim.NewQueue(256)
	}
	return t
}

// handle admits one request to the tier: ring -> dispatch -> (workers) ->
// body. body runs holding the processing thread; it must call release()
// exactly once when the handler logic (including nested blocking calls, in
// the holding thread's context) is done. fail runs instead when the request
// is dropped at this tier.
func (t *modelTier) handle(traceID uint64, tr *trace.Collector, work sim.Time,
	body func(release func()), fail func()) {
	arrival := t.eng.Now()
	if !t.ring.Push(struct{}{}) {
		*t.drops++
		fail()
		return
	}
	t.dispatch.Acquire(func() {
		t.ring.Pop()
		if t.workers == nil {
			// Dispatch-thread processing: hold the dispatch thread through
			// the handler body.
			t.eng.After(rxDispatch+work, func() {
				queue := t.eng.Now() - arrival - rxDispatch - work
				body(func() {
					if tr != nil {
						tr.Record(traceID, trace.Span{
							Service: t.name, Start: arrival, Queue: queue,
							Work: work, End: t.eng.Now(),
						})
					}
					t.dispatch.Release()
				})
			})
			return
		}
		// Worker processing: dispatch pays only RX + handoff, then frees.
		t.eng.After(rxDispatch, func() {
			t.dispatch.Release()
			if !t.workQ.Push(struct{}{}) {
				*t.drops++
				fail()
				return
			}
			t.workers.Acquire(func() {
				t.workQ.Pop()
				t.eng.After(handoffCost+work, func() {
					queue := t.eng.Now() - arrival - rxDispatch - handoffCost - work
					body(func() {
						if tr != nil {
							tr.Record(traceID, trace.Span{
								Service: t.name, Start: arrival, Queue: queue,
								Work: work, End: t.eng.Now(),
							})
						}
						t.workers.Release()
					})
				})
			})
		})
	})
}

// RunModel executes the Table 4 / Figure 15 experiment.
func RunModel(cfg ModelConfig) *ModelResult {
	if cfg.Flows <= 0 {
		cfg.Flows = 2
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 6
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.Requests <= 0 {
		cfg.Requests = 20000
	}
	m := &flightModel{
		cfg: cfg,
		eng: sim.NewEngine(),
		rng: rand.New(rand.NewSource(cfg.Seed + 1)),
		res: &ModelResult{Threading: cfg.Threading, LoadRPS: cfg.LoadRPS, Latency: stats.NewHistogram()},
	}
	workersFor := func(tier string) int {
		if cfg.Threading == Optimized {
			switch tier {
			case "Flight", "CheckIn", "Passport":
				return cfg.Workers
			}
		}
		return 0
	}
	mk := func(name string) *modelTier {
		return newModelTier(m.eng, name, cfg.Flows, cfg.RingDepth, workersFor(name), &m.res.Dropped)
	}
	m.pfe = mk("PassengerFE")
	m.checkin = mk("CheckIn")
	m.flight = mk("Flight")
	m.baggage = mk("Baggage")
	m.passport = mk("Passport")
	m.airport = mk("AirportDB")
	m.citizens = mk("CitizensDB")
	m.staff = mk("StaffFE")

	// Open-loop Poisson arrivals at the passenger front-end.
	meanGap := 1e9 / cfg.LoadRPS
	var arrive func()
	offered := 0
	arrive = func() {
		if offered >= cfg.Requests {
			return
		}
		offered++
		m.res.Offered++
		m.registration()
		gap := sim.Time(m.rng.ExpFloat64() * meanGap)
		if gap < 1 {
			gap = 1
		}
		m.eng.After(gap, arrive)
	}
	// Staff front-end asynchronously audits Airport records at a tenth of
	// the passenger load (Figure 13's many-to-one dependency on the DB).
	staffGap := meanGap * 10
	staffOffered := 0
	var staffAudit func()
	staffAudit = func() {
		if staffOffered >= cfg.Requests/10 {
			return
		}
		staffOffered++
		m.staff.handle(0, nil, m.jitter(feWork), func(relFE func()) {
			relFE()
			m.hop(func() {
				m.airport.handle(0, nil, m.jitter(micaWork), func(relDB func()) {
					relDB()
				}, func() {})
			})
		}, func() {})
		gap := sim.Time(m.rng.ExpFloat64() * staffGap)
		if gap < 1 {
			gap = 1
		}
		m.eng.After(gap, staffAudit)
	}
	m.eng.After(0, arrive)
	m.eng.After(0, staffAudit)
	m.eng.Run()
	return m.res
}

// registration walks one passenger registration through the graph.
func (m *flightModel) registration() {
	start := m.eng.Now()
	var traceID uint64
	if m.cfg.Tracer != nil {
		traceID = m.cfg.Tracer.Begin()
	}
	dropped := func() {}
	m.pfe.handle(traceID, m.cfg.Tracer, m.jitter(feWork), func(releaseFE func()) {
		// Front-end issues a non-blocking RPC to Check-in and does not
		// hold its thread, so release immediately after send.
		releaseFE()
		m.hop(func() {
			m.checkin.handle(traceID, m.cfg.Tracer, m.jitter(checkinWork), func(releaseCI func()) {
				// Fan out (non-blocking) to Flight, Baggage, Passport;
				// Check-in's thread blocks until all three respond.
				remaining := 3
				join := func() {
					remaining--
					if remaining > 0 {
						return
					}
					// Blocking write to the Airport DB, then respond.
					m.hop(func() {
						m.airport.handle(traceID, m.cfg.Tracer, m.jitter(micaWork), func(releaseDB func()) {
							releaseDB()
							m.hop(func() {
								releaseCI()
								// Response travels back to the front-end.
								m.hop(func() {
									m.res.Completed++
									m.res.Latency.Record(int64(m.eng.Now() - start))
								})
							})
						}, func() { releaseCI(); dropped() })
					})
				}
				m.hop(func() {
					m.flight.handle(traceID, m.cfg.Tracer, m.flightWork(), func(rel func()) {
						rel()
						m.hop(join)
					}, func() { join() }) // a drop still unblocks the join
				})
				m.hop(func() {
					m.baggage.handle(traceID, m.cfg.Tracer, m.jitter(baggageWork), func(rel func()) {
						rel()
						m.hop(join)
					}, func() { join() })
				})
				m.hop(func() {
					m.passport.handle(traceID, m.cfg.Tracer, m.jitter(passportWork), func(relPP func()) {
						// Passport blocks on a nested Citizens lookup.
						m.hop(func() {
							m.citizens.handle(traceID, m.cfg.Tracer, m.jitter(micaWork), func(relCZ func()) {
								relCZ()
								m.hop(func() {
									relPP()
									m.hop(join)
								})
							}, func() { relPP(); join() })
						})
					}, func() { join() })
				})
			}, dropped)
		})
	}, dropped)
}

func (m *flightModel) flightWork() sim.Time {
	if m.rng.Float64() < flightSlowFrac {
		return m.jitter(flightSlowWork)
	}
	return m.jitter(flightFastWork)
}

// jitter applies ±30% uniform spread so low-load tails are not degenerate.
func (m *flightModel) jitter(t sim.Time) sim.Time {
	return sim.Time(float64(t) * (0.7 + 0.6*m.rng.Float64()))
}

func (m *flightModel) hop(fn func()) {
	m.eng.After(hopLatency, fn)
}

// MaxSustainableLoad sweeps offered load and returns the highest load whose
// drop fraction stays under 1% (Table 4's "highest load" criterion).
func MaxSustainableLoad(th Threading, loads []float64, requests int, seed int64) (float64, *ModelResult) {
	var best float64
	var bestRes *ModelResult
	for _, l := range loads {
		res := RunModel(ModelConfig{Threading: th, LoadRPS: l, Requests: requests, Seed: seed})
		if res.DropFrac() <= 0.01 && l > best {
			best = l
			bestRes = res
		}
	}
	return best, bestRes
}
