package flight

import (
	"testing"
	"time"

	"dagger/internal/core"
	"dagger/internal/trace"
)

func TestFunctionalAppRegistersPassenger(t *testing.T) {
	app, err := New(Config{Citizens: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	p := Passenger{ID: 7, FlightNo: 1234, Bags: 2}
	rec, err := app.RegisterPassenger(p)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PassengerID != 7 || rec.FlightNo != 1234 || rec.Bags != 2 {
		t.Fatalf("record = %+v", rec)
	}
	if !rec.PassportOK {
		t.Fatal("seeded citizen failed passport check")
	}
	if rec.Gate != 100+1234%64 {
		t.Fatalf("gate = %d", rec.Gate)
	}
}

func TestFunctionalAppStaffLookup(t *testing.T) {
	app, err := New(Config{Citizens: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	if _, err := app.RegisterPassenger(Passenger{ID: 9, FlightNo: 42, Bags: 1}); err != nil {
		t.Fatal(err)
	}
	rec, err := app.StaffLookup(9)
	if err != nil {
		t.Fatal(err)
	}
	if rec.PassengerID != 9 || rec.FlightNo != 42 {
		t.Fatalf("staff view = %+v", rec)
	}
	if _, err := app.StaffLookup(424242); err == nil {
		t.Fatal("lookup of unregistered passenger succeeded")
	}
}

func TestFunctionalAppUnknownCitizen(t *testing.T) {
	app, err := New(Config{Citizens: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	rec, err := app.RegisterPassenger(Passenger{ID: 999999, FlightNo: 1, Bags: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PassportOK {
		t.Fatal("unknown citizen passed passport check")
	}
}

func TestFunctionalAppTooManyBags(t *testing.T) {
	app, err := New(Config{Citizens: 10})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	rec, err := app.RegisterPassenger(Passenger{ID: 1, FlightNo: 1, Bags: 9})
	if err != nil {
		t.Fatal(err)
	}
	if rec.PassportOK {
		t.Fatal("over-allowance passenger approved")
	}
}

func TestFunctionalAppOptimizedThreading(t *testing.T) {
	app, err := New(Config{
		Citizens:   100,
		Threading:  OptimizedThreading(4),
		FlightWork: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	// Concurrent registrations overlap the slow Flight service under the
	// worker model.
	start := time.Now()
	const n = 6
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		i := i
		go func() {
			_, err := app.RegisterPassenger(Passenger{ID: uint64(i), FlightNo: uint32(i), Bags: 1})
			errs <- err
		}()
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	if elapsed > time.Duration(n)*2*time.Millisecond {
		t.Fatalf("worker threading did not overlap flight lookups: %v", elapsed)
	}
}

func TestPassengerRecordCodecs(t *testing.T) {
	p := Passenger{ID: 123456789, FlightNo: 777, Bags: 3}
	got, err := decodePassenger(p.encode())
	if err != nil || got != p {
		t.Fatalf("passenger round trip: %+v %v", got, err)
	}
	r := Record{PassengerID: 5, FlightNo: 6, Gate: 107, Bags: 1, PassportOK: true}
	got2, err := decodeRecord(r.encode())
	if err != nil || got2 != r {
		t.Fatalf("record round trip: %+v %v", got2, err)
	}
}

func TestOptimizedThreadingMap(t *testing.T) {
	m := OptimizedThreading(8)
	for _, tier := range []string{"Flight", "CheckIn", "Passport"} {
		cfg, ok := m[tier]
		if !ok || cfg.Threading != core.WorkerThreads || cfg.Workers != 8 {
			t.Fatalf("tier %s config = %+v", tier, cfg)
		}
	}
	if _, ok := m["Baggage"]; ok {
		t.Fatal("Baggage should stay on dispatch threads")
	}
}

// ===== Timing model (Table 4 / Figure 15) =====

func TestModelLowLoadLatency(t *testing.T) {
	simple := RunModel(ModelConfig{Threading: Simple, LoadRPS: 1000, Requests: 8000, Seed: 1})
	opt := RunModel(ModelConfig{Threading: Optimized, LoadRPS: 1000, Requests: 8000, Seed: 1})
	sMed := simple.Latency.Percentile(50)
	oMed := opt.Latency.Percentile(50)
	// Table 4: Simple has the lower baseline latency (13.3us vs 23.4us);
	// both are tens of microseconds.
	if sMed >= oMed {
		t.Errorf("simple median %v should beat optimized %v", sMed, oMed)
	}
	if sMed < 8_000 || sMed > 25_000 {
		t.Errorf("simple median %v ns outside the paper's ~13us scale", sMed)
	}
	if oMed < 15_000 || oMed > 40_000 {
		t.Errorf("optimized median %v ns outside the paper's ~23us scale", oMed)
	}
	// Tails at low load stay microsecond-scale.
	if simple.Latency.Percentile(99) > 100_000 {
		t.Errorf("simple p99 %v ns should be us-scale at low load", simple.Latency.Percentile(99))
	}
}

func TestModelThroughputGap(t *testing.T) {
	simpleLoads := []float64{2000, 2700, 3500, 5000, 10000}
	optLoads := []float64{25000, 40000, 48000, 60000}
	simpleMax, _ := MaxSustainableLoad(Simple, simpleLoads, 40000, 3)
	optMax, _ := MaxSustainableLoad(Optimized, optLoads, 40000, 3)
	if simpleMax == 0 || optMax == 0 {
		t.Fatalf("no sustainable load found: simple=%v opt=%v", simpleMax, optMax)
	}
	// Table 4: the Optimized threading model sustains ~17x the load.
	if optMax < 8*simpleMax {
		t.Errorf("optimized max %v < 8x simple max %v (paper: 17x)", optMax, simpleMax)
	}
	if simpleMax > 6000 {
		t.Errorf("simple max load %v, paper scale is ~2.7K", simpleMax)
	}
	if optMax < 40000 {
		t.Errorf("optimized max load %v, paper scale is ~48K", optMax)
	}
}

func TestModelDropsGrowWithLoad(t *testing.T) {
	lo := RunModel(ModelConfig{Threading: Simple, LoadRPS: 1000, Requests: 15000, Seed: 5})
	hi := RunModel(ModelConfig{Threading: Simple, LoadRPS: 25000, Requests: 15000, Seed: 5})
	if hi.DropFrac() <= lo.DropFrac() {
		t.Errorf("drops did not grow with load: %.4f -> %.4f", lo.DropFrac(), hi.DropFrac())
	}
	if hi.DropFrac() < 0.05 {
		t.Errorf("simple model at 25K should drop heavily, got %.4f", hi.DropFrac())
	}
}

// Figure 15: beyond the ~25 Krps saturation point the tail soars while the
// median stays in the 23-26us band.
func TestModelFig15Knee(t *testing.T) {
	pre := RunModel(ModelConfig{Threading: Optimized, LoadRPS: 15000, Requests: 30000, Seed: 7})
	post := RunModel(ModelConfig{Threading: Optimized, LoadRPS: 40000, Requests: 30000, Seed: 7})
	preTail := pre.Latency.Percentile(99)
	postTail := post.Latency.Percentile(99)
	if postTail < 5*preTail {
		t.Errorf("tail did not soar past the knee: %v -> %v", preTail, postTail)
	}
	preMed := pre.Latency.Percentile(50)
	postMed := post.Latency.Percentile(50)
	if postMed > 2*preMed {
		t.Errorf("median should stay flat past the knee: %v -> %v", preMed, postMed)
	}
}

// The tracing system finds the Flight tier as the bottleneck, as §5.7's
// profiling did.
func TestModelTraceFindsFlightBottleneck(t *testing.T) {
	tr := trace.NewCollector(0)
	RunModel(ModelConfig{Threading: Simple, LoadRPS: 2000, Requests: 10000, Seed: 9, Tracer: tr})
	rep := tr.Analyze()
	if rep.Bottleneck() != "Flight" {
		t.Fatalf("bottleneck = %q, want Flight\n%s", rep.Bottleneck(), rep)
	}
}

func TestModelDeterminism(t *testing.T) {
	a := RunModel(ModelConfig{Threading: Optimized, LoadRPS: 20000, Requests: 5000, Seed: 11})
	b := RunModel(ModelConfig{Threading: Optimized, LoadRPS: 20000, Requests: 5000, Seed: 11})
	if a.Completed != b.Completed || a.Dropped != b.Dropped ||
		a.Latency.Percentile(99) != b.Latency.Percentile(99) {
		t.Fatal("same seed produced different model results")
	}
}
