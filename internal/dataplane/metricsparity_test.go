// Cross-substrate metrics-plane parity: both stacks now publish their
// telemetry through internal/metrics registries under shared family names
// (conn.*, shed.*, mark.*), so one seeded open/lookup/close trace plus an
// overload (ring-filling) phase and a seeded shed replay must yield
// byte-identical snapshots for those families — asserted with one
// metrics.Diff over filtered snapshots instead of per-getter comparisons.
// A non-empty diff means a substrate renamed, dropped, or double-counted a
// shared-policy counter.
package dataplane_test

import (
	"math/rand"
	"testing"
	"time"

	"dagger/internal/core"
	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/nicmodel"
	"dagger/internal/sim"
	"dagger/internal/wire"
)

func TestMetricsSnapshotParity(t *testing.T) {
	const (
		cacheSize = 8
		markCap   = 16
	)

	// --- Connection phase: seeded open/lookup/close trace (the connparity
	// replay), fabric NIC vs ConnectionManager. ---
	fab := fabric.NewFabric()
	src, err := fab.CreateNIC(paritySrcAddr, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fab.CreateNICConns(parityDstAddr, parityFlows, 64, cacheSize)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	nic, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: parityFlows, ConnCacheSize: cacheSize,
		Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var rr uint32
	for i, op := range connTrace(47, 500) {
		if op.close {
			if err := src.Send(&wire.Message{Header: wire.Header{
				Kind: wire.KindDisconnect, ConnID: op.connID,
				SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
			}}); err != nil {
				t.Fatalf("op %d: disconnect: %v", i, err)
			}
			if err := nic.CM.Close(op.connID); err != nil {
				t.Fatalf("op %d: cm close: %v", i, err)
			}
			continue
		}
		if err := src.Send(&wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, ConnID: op.connID,
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
		}}); err != nil {
			t.Fatalf("op %d: send: %v", i, err)
		}
		recvConnFrame(t, dst) // drain so ring depth stays zero (no marks here)
		if _, _, err := nic.CM.Lookup(op.connID); err != nil {
			// First contact: same round-robin assignment rule as the fabric.
			flow := dataplane.RoundRobin(rr, parityFlows)
			rr++
			if err := nic.CM.Open(op.connID, nicmodel.ConnTuple{SrcFlow: flow}); err != nil {
				t.Fatalf("op %d: cm open: %v", i, err)
			}
		}
	}

	// --- Overload phase: fill a ring of the same capacity without draining
	// on both substrates, accruing identical congestion-mark counts. A
	// separate NIC pair keeps this phase's steering out of the connection
	// counters above. ---
	markDst, err := fab.CreateNIC(parityDstAddr+1, 1, markCap)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < markCap; i++ {
		if err := src.Send(&wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, RPCID: uint64(i),
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr + 1,
		}}); err != nil {
			t.Fatalf("mark send %d: %v", i, err)
		}
	}
	rx := nicmodel.NewRxPath(1, markCap)
	rxReg := metrics.New()
	rx.DescribeMetrics(rxReg)
	for i := 0; i < markCap; i++ {
		rx.Deliver(nicmodel.RxEntry{RPCID: uint64(i)})
	}

	// --- Shed phase: seeded (budget, delay) cases through the functional
	// ShedDecision (wall timestamps, counted in a registry of its own — the
	// real server's sheds depend on scheduler timing) and the timing NIC's
	// ShedExpired (virtual time, counted in Monitor.Sheds). ---
	shedReg := metrics.New()
	funcSheds := shedReg.Counter("shed.expired")
	rng := rand.New(rand.NewSource(48))
	type shedCase struct {
		budget    uint32
		elapsedNs int64
	}
	var cases []shedCase
	for i := 0; i < 150; i++ {
		cases = append(cases, shedCase{uint32(rng.Intn(100)), int64(rng.Intn(150_000))})
	}
	base := time.Unix(1_000_000, 0)
	for _, c := range cases {
		if core.ShedDecision(base, base.Add(time.Duration(c.elapsedNs)), c.budget) {
			funcSheds.Inc()
		}
	}
	idx := 0
	var step func()
	step = func() {
		if idx == len(cases) {
			return
		}
		c := cases[idx]
		idx++
		arrival := eng.Now()
		eng.After(sim.Time(c.elapsedNs), func() {
			nic.ShedExpired(arrival, c.budget)
			step()
		})
	}
	step()
	eng.Run()

	// --- The acceptance assertion: one Diff over the shared families. ---
	functional := metrics.Merge(
		dst.Metrics().Snapshot().Filter("conn"),
		markDst.Metrics().Snapshot().Filter("mark"),
		shedReg.Snapshot().Filter("shed"),
	)
	timing := metrics.Merge(
		nic.Metrics().Snapshot().Filter("conn", "shed"),
		rxReg.Snapshot().Filter("mark"),
	)
	if d := metrics.Diff(functional, timing); d != "" {
		t.Fatalf("substrate snapshots diverged:\n%s", d)
	}

	// The trace must actually exercise the families, or the diff proves
	// nothing.
	for _, name := range []string{"conn.hits", "conn.misses", "conn.evictions", "conn.closes", "mark.rx.stamped", "shed.expired"} {
		if functional.Value(name) == 0 {
			t.Fatalf("family sample %s never fired; parity vacuous\nsnapshot: %+v", name, functional.Samples)
		}
	}
}

// TestMetricsParityKindStrict pins that the parity diff above is strict
// about metric kinds, not just values: a substrate exposing a shared family
// as a raw counter where the other derives it (or vice versa) must show up
// in Diff, which is why RxPath and the fabric both publish mark.rx.stamped
// as derived gauges.
func TestMetricsParityKindStrict(t *testing.T) {
	a := metrics.New()
	a.Counter("conn.hits").Add(7)
	b := metrics.New()
	b.Func("conn.hits", func() int64 { return 7 })
	if d := metrics.Diff(a.Snapshot(), b.Snapshot()); d == "" {
		t.Fatal("kind mismatch not surfaced by Diff")
	}
}
