// Cross-substrate parity: the functional fabric and the timing-model NIC
// must reach byte-identical steering and shed decisions for the same inputs,
// because both are thin adapters over the same internal/dataplane policy.
// A divergence here means one substrate grew its own policy again.
package dataplane_test

import (
	"math/rand"
	"testing"
	"time"

	"dagger/internal/core"
	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/interconnect"
	"dagger/internal/nicmodel"
	"dagger/internal/sim"
	"dagger/internal/wire"
)

const (
	paritySrcAddr = 0x0A000001
	parityDstAddr = 0x0A000002
	parityFlows   = 5
	parityReqs    = 400
)

// parityReq is one element of the seeded request sequence both substrates
// consume.
type parityReq struct {
	key    []byte
	connID uint32
}

func paritySequence(seed int64) []parityReq {
	rng := rand.New(rand.NewSource(seed))
	seq := make([]parityReq, parityReqs)
	for i := range seq {
		key := make([]byte, 1+rng.Intn(16))
		rng.Read(key)
		seq[i] = parityReq{key: key, connID: uint32(rng.Intn(8))}
	}
	return seq
}

// sendAndObserve pushes one request through the real fabric and reports which
// of the destination NIC's flows its frame landed on.
func sendAndObserve(t *testing.T, src, dst *fabric.SoftNIC, m *wire.Message) uint16 {
	t.Helper()
	if err := src.Send(m); err != nil {
		t.Fatalf("Send: %v", err)
	}
	picked := -1
	for i := 0; i < dst.NumFlows(); i++ {
		fl, err := dst.Flow(i)
		if err != nil {
			t.Fatal(err)
		}
		if frame, ok := fl.TryRecv(); ok {
			if picked != -1 {
				t.Fatalf("frame delivered to flows %d and %d", picked, i)
			}
			picked = i
			fl.Buffers().Put(frame)
		}
	}
	if picked == -1 {
		t.Fatal("frame not delivered to any flow")
	}
	return uint16(picked)
}

func parityNICs(t *testing.T, balancer fabric.Balancer, ex fabric.KeyExtractor) (src, dst *fabric.SoftNIC) {
	t.Helper()
	fab := fabric.NewFabric()
	src, err := fab.CreateNIC(paritySrcAddr, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err = fab.CreateNIC(parityDstAddr, parityFlows, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.SetBalancer(balancer, ex); err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestSteeringParityUniform(t *testing.T) {
	src, dst := parityNICs(t, fabric.BalanceUniform, nil)
	bal := nicmodel.NewBalancer(nicmodel.BalancerUniform, parityFlows)
	for i, req := range paritySequence(42) {
		m := &wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, ConnID: req.connID,
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
		}, Payload: req.key}
		got := sendAndObserve(t, src, dst, m)
		want := bal.Pick(nicmodel.Steer{})
		if got != want {
			t.Fatalf("request %d: fabric steered to flow %d, nicmodel to %d", i, got, want)
		}
	}
}

func TestSteeringParityKeyHash(t *testing.T) {
	extractor := func(payload []byte) []byte { return payload }
	src, dst := parityNICs(t, fabric.BalanceObjectLevel, extractor)
	bal := nicmodel.NewBalancer(nicmodel.BalancerObjectLevel, parityFlows)
	for i, req := range paritySequence(43) {
		m := &wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, ConnID: req.connID,
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
		}, Payload: req.key}
		got := sendAndObserve(t, src, dst, m)
		want := bal.Pick(nicmodel.Steer{Key: req.key})
		if got != want {
			t.Fatalf("request %d (key %x): fabric steered to flow %d, nicmodel to %d", i, req.key, got, want)
		}
	}
}

func TestSteeringParityStatic(t *testing.T) {
	src, dst := parityNICs(t, fabric.BalanceStatic, nil)
	bal := nicmodel.NewBalancer(nicmodel.BalancerStatic, parityFlows)
	// The timing model's connection manager assigns a flow at Open time; the
	// fabric assigns round-robin on first contact. Mirror the fabric's
	// first-contact rule with the same dataplane primitive, then let both
	// substrates steer every subsequent request from the remembered flow.
	conns := map[uint32]uint16{}
	var rr uint32
	for i, req := range paritySequence(44) {
		connFlow, known := conns[req.connID]
		if !known {
			connFlow = dataplane.RoundRobin(rr, parityFlows)
			rr++
			conns[req.connID] = connFlow
		}
		m := &wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, ConnID: req.connID,
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
		}, Payload: req.key}
		got := sendAndObserve(t, src, dst, m)
		want := bal.Pick(nicmodel.Steer{ConnFlow: connFlow})
		if got != want {
			t.Fatalf("request %d (conn %d): fabric steered to flow %d, nicmodel to %d", i, req.connID, got, want)
		}
	}
}

// TestMarkParity drives both substrates' receive queues from empty to full
// with the same capacity and asserts byte-identical congestion verdicts: the
// fabric's per-frame FlagCongested bit and occupancy hint byte must equal the
// timing model's per-entry Marked/Hint, and both must equal the raw
// dataplane.Mark / dataplane.OccupancyHint decision on the same depth. A
// divergence means one substrate moved its mark point (e.g. marking after the
// push instead of at admission) and the ECN signal would fire at different
// loads on the two stacks.
func TestMarkParity(t *testing.T) {
	const capacity = 16

	// Functional substrate: one flow, ring depth = capacity, filled without
	// draining so frame i is admitted at ring depth i.
	fab := fabric.NewFabric()
	src, err := fab.CreateNIC(paritySrcAddr, 1, capacity)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fab.CreateNIC(parityDstAddr, 1, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < capacity; i++ {
		m := &wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, RPCID: uint64(i),
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
		}}
		if err := src.Send(m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	fl, err := dst.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	fabricMarked := make([]bool, capacity)
	fabricHint := make([]uint8, capacity)
	for i := 0; i < capacity; i++ {
		frame, ok := fl.TryRecv()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		h, err := wire.ParseHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		fabricMarked[i] = h.Congested()
		fabricHint[i] = h.Occupancy
		fl.Buffers().Put(frame)
	}

	// Timing substrate: one RX path, buffer capacity = capacity, batch 1 so
	// every Deliver immediately moves its entry to the pending set and entry
	// i is likewise admitted at depth i.
	rx := nicmodel.NewRxPath(1, capacity)
	for i := 0; i < capacity; i++ {
		rx.Deliver(nicmodel.RxEntry{RPCID: uint64(i)})
	}
	entries := rx.Complete(0)
	if len(entries) != capacity {
		t.Fatalf("rx path delivered %d of %d entries", len(entries), capacity)
	}

	marks := 0
	for i := 0; i < capacity; i++ {
		want := dataplane.Mark(i, capacity)
		var wantHint uint8
		if want {
			wantHint = dataplane.OccupancyHint(i, capacity)
		}
		if fabricMarked[i] != want || entries[i].Marked != want {
			t.Fatalf("depth %d: fabric marked=%v, nicmodel marked=%v, dataplane=%v",
				i, fabricMarked[i], entries[i].Marked, want)
		}
		if fabricHint[i] != wantHint || entries[i].Hint != wantHint {
			t.Fatalf("depth %d: fabric hint=%d, nicmodel hint=%d, dataplane=%d",
				i, fabricHint[i], entries[i].Hint, wantHint)
		}
		if want {
			marks++
		}
	}
	if marks == 0 {
		t.Fatal("no depth marked; sequence does not exercise the policy")
	}
	if got := fl.Marked(); got != uint64(marks) {
		t.Fatalf("fabric flow marked %d frames, want %d", got, marks)
	}
	if got := rx.Marked.Load(); got != uint64(marks) {
		t.Fatalf("rx path marked %d entries, want %d", got, marks)
	}
}

// TestShedParity drives the same seeded (budget, queueing-delay) pairs
// through the functional server's shed decision (core.ShedDecision over wall
// timestamps) and the timing model's (nicmodel.NIC.ShedExpired over virtual
// time) and asserts identical verdicts, including exact-boundary cases.
func TestShedParity(t *testing.T) {
	type shedCase struct {
		budget    uint32
		elapsedNs int64
	}
	rng := rand.New(rand.NewSource(45))
	var cases []shedCase
	for i := 0; i < 200; i++ {
		budget := uint32(rng.Intn(100))
		elapsed := int64(rng.Intn(150_000))
		cases = append(cases, shedCase{budget, elapsed})
	}
	// Exact boundaries: elapsed == budget (shed), one ns under (keep), no
	// budget at all (never shed).
	cases = append(cases,
		shedCase{50, 50_000},
		shedCase{50, 49_999},
		shedCase{0, 1 << 40},
	)

	// Functional verdicts: wall timestamps built from a fixed base.
	base := time.Unix(1_000_000, 0)
	functional := make([]bool, len(cases))
	for i, c := range cases {
		functional[i] = core.ShedDecision(base, base.Add(time.Duration(c.elapsedNs)), c.budget)
	}

	// Timing verdicts: the same delays elapse in virtual time between arrival
	// and the NIC's shed check.
	eng := sim.NewEngine()
	nic, err := nicmodel.NewNIC(eng, nicmodel.HardConfig{
		NFlows: 1, ConnCacheSize: 16,
		Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	timing := make([]bool, 0, len(cases))
	var step func(i int)
	step = func(i int) {
		if i == len(cases) {
			return
		}
		arrival := eng.Now()
		eng.After(sim.Time(cases[i].elapsedNs), func() {
			timing = append(timing, nic.ShedExpired(arrival, cases[i].budget))
			step(i + 1)
		})
	}
	step(0)
	eng.Run()

	if len(timing) != len(cases) {
		t.Fatalf("timing stack evaluated %d of %d cases", len(timing), len(cases))
	}
	sheds := 0
	for i := range cases {
		if functional[i] != timing[i] {
			t.Fatalf("case %d (budget %dus, elapsed %dns): functional=%v timing=%v",
				i, cases[i].budget, cases[i].elapsedNs, functional[i], timing[i])
		}
		if timing[i] {
			sheds++
		}
	}
	if sheds == 0 {
		t.Fatal("no case shed; sequence does not exercise the policy")
	}
	if got := nic.Monitor.Sheds.Load(); got != uint64(sheds) {
		t.Fatalf("NIC shed monitor = %d, want %d", got, sheds)
	}
}
