package dataplane

import (
	"math/rand"
	"testing"
)

func TestSchemeString(t *testing.T) {
	cases := []struct {
		s    Scheme
		want string
	}{
		{SteerStatic, "static"},
		{SteerUniform, "uniform"},
		{SteerKeyHash, "object-level"},
		{Scheme(42), "unknown"},
	}
	for _, tc := range cases {
		if got := tc.s.String(); got != tc.want {
			t.Errorf("Scheme(%d).String() = %q, want %q", int(tc.s), got, tc.want)
		}
	}
}

func TestRoundRobinFullWidth(t *testing.T) {
	// The modulo must happen at full counter width (the PR 2 bias fix):
	// truncating the counter to uint16 first would alias every 65536
	// requests and skew the distribution for non-power-of-two flow counts.
	const nflows = 48
	if got, want := RoundRobin(1<<16, nflows), uint16((1<<16)%nflows); got != want {
		t.Fatalf("RoundRobin(65536, %d) = %d, want %d (modulo must use full counter width)", nflows, got, want)
	}
	// Consecutive counter values walk the flows in a clean cycle.
	for rr := uint32(90); rr < 190; rr++ {
		got, want := RoundRobin(rr+1, nflows), uint16((rr+1)%nflows)
		if got != want {
			t.Fatalf("RoundRobin(%d, %d) = %d, want %d", rr+1, nflows, got, want)
		}
	}
}

func TestStaticFlowWraps(t *testing.T) {
	if got := StaticFlow(7, 4); got != 3 {
		t.Fatalf("StaticFlow(7, 4) = %d, want 3", got)
	}
	if got := StaticFlow(2, 4); got != 2 {
		t.Fatalf("StaticFlow(2, 4) = %d, want 2", got)
	}
	if got := StaticFlow(9, 0); got != 0 {
		t.Fatalf("StaticFlow with 0 flows = %d, want 0", got)
	}
}

func TestHashKeyMatchesFNV1a(t *testing.T) {
	// Pinned FNV-1a vectors: if this hash ever changes, object-level
	// steering diverges between substrates and across versions.
	cases := []struct {
		key  string
		want uint32
	}{
		{"", 2166136261},
		{"a", 0xe40c292c},
		{"user:1042", HashKey([]byte("user:1042"))}, // self-consistency
	}
	for _, tc := range cases {
		if got := HashKey([]byte(tc.key)); got != tc.want {
			t.Errorf("HashKey(%q) = %#x, want %#x", tc.key, got, tc.want)
		}
	}
}

func TestSteerDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		nflows := 1 + rng.Intn(16)
		key := make([]byte, rng.Intn(24))
		rng.Read(key)
		in := SteerInput{
			NFlows:   nflows,
			ConnFlow: uint16(rng.Intn(64)),
			HasConn:  rng.Intn(2) == 0,
			Key:      key,
			RR:       rng.Uint32(),
		}
		for _, s := range []Scheme{SteerStatic, SteerUniform, SteerKeyHash} {
			a := Steer(s, in)
			b := Steer(s, in)
			if a != b {
				t.Fatalf("Steer(%v, %+v) nondeterministic: %d then %d", s, in, a, b)
			}
			if int(a) >= nflows {
				t.Fatalf("Steer(%v, %+v) = %d, out of range [0,%d)", s, in, a, nflows)
			}
		}
	}
}

func TestSteerStaticFallsBackToRoundRobin(t *testing.T) {
	in := SteerInput{NFlows: 4, HasConn: false, RR: 6}
	if got, want := Steer(SteerStatic, in), RoundRobin(6, 4); got != want {
		t.Fatalf("static steer without a connection = %d, want round-robin %d", got, want)
	}
	in.HasConn = true
	in.ConnFlow = 1
	if got := Steer(SteerStatic, in); got != 1 {
		t.Fatalf("static steer with pinned flow = %d, want 1", got)
	}
}

func TestShouldShed(t *testing.T) {
	cases := []struct {
		budget  uint32
		elapsed uint64
		want    bool
	}{
		{0, 0, false},             // no deadline: never shed
		{0, 1 << 40, false},       // no deadline even when ancient
		{100, 0, false},           // fresh request
		{100, 99, false},          // inside budget
		{100, 100, true},          // deadline exactly reached
		{100, 101, true},          // past deadline
		{1, 1, true},              // minimum budget
		{^uint32(0), 1000, false}, // huge budget
	}
	for _, tc := range cases {
		if got := ShouldShed(tc.budget, tc.elapsed); got != tc.want {
			t.Errorf("ShouldShed(%d, %d) = %v, want %v", tc.budget, tc.elapsed, got, tc.want)
		}
	}
}

func TestElapsedMicros(t *testing.T) {
	cases := []struct {
		ns   int64
		want uint64
	}{
		{-5, 0}, {0, 0}, {999, 0}, {1000, 1}, {1999, 1}, {2000, 2},
	}
	for _, tc := range cases {
		if got := ElapsedMicros(tc.ns); got != tc.want {
			t.Errorf("ElapsedMicros(%d) = %d, want %d", tc.ns, got, tc.want)
		}
	}
}

func TestAdmit(t *testing.T) {
	cases := []struct {
		depth, capacity int
		want            bool
	}{
		{0, 4, true},
		{3, 4, true},
		{4, 4, false},
		{5, 4, false},
		{1 << 20, 0, true},  // unbounded
		{1 << 20, -1, true}, // unbounded
	}
	for _, tc := range cases {
		if got := Admit(tc.depth, tc.capacity); got != tc.want {
			t.Errorf("Admit(%d, %d) = %v, want %v", tc.depth, tc.capacity, got, tc.want)
		}
	}
}

func TestOverflowPolicies(t *testing.T) {
	// The split is load-bearing: RX rings shed load (lossy transport),
	// the TX request table stalls the producer. If either constant
	// changes, every queue admission site in both substrates changes
	// behaviour.
	if RxRingOverflow != OverflowDrop {
		t.Error("RX ring overflow must drop (best-effort delivery)")
	}
	if TxTableOverflow != OverflowBackpressure {
		t.Error("TX table overflow must backpressure the producer")
	}
	if got := OverflowDrop.String(); got != "drop" {
		t.Errorf("OverflowDrop.String() = %q", got)
	}
	if got := OverflowBackpressure.String(); got != "backpressure" {
		t.Errorf("OverflowBackpressure.String() = %q", got)
	}
}

// TestDecisionFunctionsZeroAlloc pins the allocation-free contract: these
// run per packet on both substrates' hot paths.
func TestDecisionFunctionsZeroAlloc(t *testing.T) {
	key := []byte("object:12345")
	in := SteerInput{NFlows: 8, ConnFlow: 3, HasConn: true, Key: key, RR: 41}
	var sink uint16
	var sinkB bool
	checks := []struct {
		name string
		fn   func()
	}{
		{"Steer/static", func() { sink = Steer(SteerStatic, in) }},
		{"Steer/uniform", func() { sink = Steer(SteerUniform, in) }},
		{"Steer/keyhash", func() { sink = Steer(SteerKeyHash, in) }},
		{"HashKey", func() { sink = uint16(HashKey(key)) }},
		{"ResponseFlow", func() { sink = ResponseFlow(9, 4) }},
		{"ShouldShed", func() { sinkB = ShouldShed(250, 300) }},
		{"ElapsedMicros", func() { sinkB = ElapsedMicros(12345) > 0 }},
		{"Admit", func() { sinkB = Admit(3, 4) }},
		{"Mark", func() { sinkB = Mark(9, 16) }},
		{"OccupancyHint", func() { sinkB = OccupancyHint(9, 16) > 0 }},
		{"HintCongested", func() { sinkB = HintCongested(200) }},
		{"WindowOnMark", func() { sink = uint16(WindowOnMark(64, 1)) }},
		{"WindowOnClean", func() { sink = uint16(WindowOnClean(64, 128)) }},
		{"BackoffScale", func() { sink = uint16(BackoffScale(200)) }},
	}
	for _, c := range checks {
		if avg := testing.AllocsPerRun(200, c.fn); avg != 0 {
			t.Errorf("%s allocates %.1f times per run, want 0", c.name, avg)
		}
	}
	_, _ = sink, sinkB
}
