// Cross-substrate connection-state parity: the functional fabric's bounded
// connection cache and the timing model's ConnectionManager are both thin
// adapters over internal/connstate, so the same connection trace — opens on
// first contact, lookups, closes — must produce byte-identical slot
// decisions: the same per-step hit/miss/eviction verdicts, the same steering
// flows, and the same open population. A divergence means one substrate grew
// its own cache geometry again.
package dataplane_test

import (
	"math/rand"
	"testing"

	"dagger/internal/connstate"
	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/nicmodel"
	"dagger/internal/wire"
)

// connTraceOp is one step of the seeded connection trace: a request on a
// connection id, or a close of it.
type connTraceOp struct {
	connID uint32
	close  bool
}

func connTrace(seed int64, n int) []connTraceOp {
	rng := rand.New(rand.NewSource(seed))
	open := map[uint32]bool{}
	ops := make([]connTraceOp, 0, n)
	for len(ops) < n {
		id := uint32(rng.Intn(24)) // three times the cache size: plenty of aliasing
		if open[id] && rng.Intn(8) == 0 {
			ops = append(ops, connTraceOp{connID: id, close: true})
			delete(open, id)
			continue
		}
		open[id] = true
		ops = append(ops, connTraceOp{connID: id})
	}
	return ops
}

// TestConnCacheParity replays one seeded connection trace through a real
// fabric NIC (size-8 connection cache, static balancing) and through the
// timing stack's ConnectionManager (size-8), asserting byte-identical
// decisions at every step: hit/miss/eviction/open/close counter deltas, the
// steered flow vs the cached tuple's flow, the per-frame wire.FlagConnMiss
// stamp vs the sim.Time penalty, and the open population after closes.
func TestConnCacheParity(t *testing.T) {
	const cacheSize = 8

	fab := fabric.NewFabric()
	src, err := fab.CreateNIC(paritySrcAddr, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := fab.CreateNICConns(parityDstAddr, parityFlows, 64, cacheSize)
	if err != nil {
		t.Fatal(err)
	}

	cm := nicmodel.NewConnectionManager(cacheSize)
	// Mirror the fabric's first-contact rule with the same dataplane
	// primitive: unknown connections are assigned round-robin and opened.
	var rr uint32

	prev := connstate.Stats{}
	cmPrev := connstate.Stats{}
	for i, op := range connTrace(46, 600) {
		if op.close {
			// Functional: the close propagates as a disconnect control frame.
			if err := src.Send(&wire.Message{Header: wire.Header{
				Kind: wire.KindDisconnect, ConnID: op.connID,
				SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
			}}); err != nil {
				t.Fatalf("op %d: disconnect: %v", i, err)
			}
			// Timing: the same close against the ConnectionManager.
			if err := cm.Close(op.connID); err != nil {
				t.Fatalf("op %d: cm close: %v", i, err)
			}
		} else {
			m := &wire.Message{Header: wire.Header{
				Kind: wire.KindRequest, ConnID: op.connID,
				SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
			}}
			if err := src.Send(m); err != nil {
				t.Fatalf("op %d: send: %v", i, err)
			}
			gotFlow, gotMiss := recvConnFrame(t, dst)

			var wantFlow uint16
			wantMiss := false
			if tup, penalty, err := cm.Lookup(op.connID); err == nil {
				wantFlow = tup.SrcFlow
				wantMiss = penalty != 0
				if wantMiss && penalty != nicmodel.HostLookupPenalty {
					t.Fatalf("op %d: penalty %v is neither 0 nor HostLookupPenalty", i, penalty)
				}
			} else {
				// First contact: both substrates assign round-robin and open.
				wantFlow = dataplane.RoundRobin(rr, parityFlows)
				rr++
				if err := cm.Open(op.connID, nicmodel.ConnTuple{SrcFlow: wantFlow}); err != nil {
					t.Fatalf("op %d: cm open: %v", i, err)
				}
			}
			if gotFlow != wantFlow {
				t.Fatalf("op %d (conn %d): fabric steered to flow %d, nicmodel to %d",
					i, op.connID, gotFlow, wantFlow)
			}
			if gotMiss != wantMiss {
				t.Fatalf("op %d (conn %d): fabric miss=%v, nicmodel miss=%v",
					i, op.connID, gotMiss, wantMiss)
			}
		}

		// Counter deltas must match step for step, not just in aggregate.
		cur, cmCur := dst.ConnStats(), cm.Stats()
		if d, cd := delta(prev, cur), delta(cmPrev, cmCur); d != cd {
			t.Fatalf("op %d (conn %d, close=%v): fabric delta %+v, nicmodel delta %+v",
				i, op.connID, op.close, d, cd)
		}
		prev, cmPrev = cur, cmCur

		if dst.ConnOpenCount() != cm.OpenCount() {
			t.Fatalf("op %d: open population diverged: fabric %d, nicmodel %d",
				i, dst.ConnOpenCount(), cm.OpenCount())
		}
	}

	// The trace must actually exercise every decision kind.
	final := dst.ConnStats()
	if final.Hits == 0 || final.Misses == 0 || final.Evictions == 0 || final.Closes == 0 {
		t.Fatalf("trace did not exercise the full policy: %+v", final)
	}
}

// recvConnFrame pops the single delivered frame off dst, returning the flow
// it was steered to and whether it carries the conn-miss stamp.
func recvConnFrame(t *testing.T, dst *fabric.SoftNIC) (uint16, bool) {
	t.Helper()
	picked := -1
	miss := false
	for i := 0; i < dst.NumFlows(); i++ {
		fl, err := dst.Flow(i)
		if err != nil {
			t.Fatal(err)
		}
		if frame, ok := fl.TryRecv(); ok {
			if picked != -1 {
				t.Fatalf("frame delivered to flows %d and %d", picked, i)
			}
			h, err := wire.ParseHeader(frame)
			if err != nil {
				t.Fatal(err)
			}
			picked = i
			miss = h.ConnMissed()
			fl.Buffers().Put(frame)
		}
	}
	if picked == -1 {
		t.Fatal("frame not delivered to any flow")
	}
	return uint16(picked), miss
}

func delta(a, b connstate.Stats) connstate.Stats {
	return connstate.Stats{
		Hits:      b.Hits - a.Hits,
		Misses:    b.Misses - a.Misses,
		Evictions: b.Evictions - a.Evictions,
		Opens:     b.Opens - a.Opens,
		Closes:    b.Closes - a.Closes,
	}
}
