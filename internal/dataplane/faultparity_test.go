// Cross-substrate fault parity: the functional fabric's admission fault
// stage and the timing-model RxPath's must execute byte-identical verdict
// sequences with identical semantics — same per-class counts, same surviving
// frames, same delivery order under delay/reorder/duplicate — because both
// are thin adapters over internal/faults. A divergence here means one
// substrate grew its own chaos semantics.
package dataplane_test

import (
	"testing"

	"dagger/internal/fabric"
	"dagger/internal/faults"
	"dagger/internal/metrics"
	"dagger/internal/nicmodel"
	"dagger/internal/wire"
)

const faultParityReqs = 600

func faultParityConfig() faults.Config {
	return faults.Config{
		Seed: 7,
		Rates: faults.Rates{
			Drop:      150_000,
			Duplicate: 100_000,
			Delay:     100_000,
			Reorder:   50_000,
			Corrupt:   100_000,
		},
		MaxDelay: 3,
	}
}

func TestFaultParity(t *testing.T) {
	cfg := faultParityConfig()
	plan := faults.Plan(cfg, faultParityReqs)
	counts := faults.CountClasses(plan)
	// Non-vacuity: the pinned sequence must exercise every verdict class, or
	// the parity below proves nothing about the class it skipped.
	for class := faults.Deliver; class <= faults.CorruptBit; class++ {
		if counts[class] == 0 {
			t.Fatalf("seeded plan never draws %v; sequence does not exercise the policy", class)
		}
	}

	// Functional fabric: a serial closed stream of requests through a real
	// NIC pair, the injector installed at the destination's admission point.
	fab := fabric.NewFabric()
	src, err := fab.CreateNIC(paritySrcAddr, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	// Ring deep enough that no admitted frame (including duplicates) is ever
	// refused: a ring-full drop is not part of the verdict sequence and
	// would desynchronize the substrates.
	dst, err := fab.CreateNIC(parityDstAddr, 1, 4*faultParityReqs)
	if err != nil {
		t.Fatal(err)
	}
	fabInj, err := faults.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dst.SetFaultInjector(fabInj)
	for i := 0; i < faultParityReqs; i++ {
		m := &wire.Message{Header: wire.Header{
			Kind: wire.KindRequest, ConnID: 1, RPCID: uint64(i + 1),
			SrcAddr: paritySrcAddr, DstAddr: parityDstAddr,
		}}
		if err := src.Send(m); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	dst.FlushFaults()
	fl, err := dst.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	var fabSeq []uint64
	for {
		frame, ok := fl.TryRecv()
		if !ok {
			break
		}
		h, err := wire.ParseHeader(frame)
		if err != nil {
			t.Fatalf("delivered frame %d unparseable: %v", len(fabSeq), err)
		}
		fabSeq = append(fabSeq, h.RPCID)
		fl.Buffers().Put(frame)
	}

	// Timing substrate: the same verdict sequence through an RxPath. Batch 1
	// moves every admitted entry straight to the completion set in admission
	// order, making the two delivery sequences directly comparable.
	rx := nicmodel.NewRxPath(1, 4*faultParityReqs)
	rxInj, err := faults.NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rx.SetFaultInjector(rxInj)
	for i := 0; i < faultParityReqs; i++ {
		rx.Deliver(nicmodel.RxEntry{RPCID: uint64(i + 1)})
	}
	rx.FlushFaults()
	entries := rx.Complete(0)
	rxSeq := make([]uint64, len(entries))
	for i, e := range entries {
		rxSeq[i] = e.RPCID
	}

	// Both injectors consumed the whole plan.
	if fabInj.Issued() != faultParityReqs || rxInj.Issued() != faultParityReqs {
		t.Fatalf("verdicts consumed: fabric %d, rxpath %d, want %d",
			fabInj.Issued(), rxInj.Issued(), faultParityReqs)
	}

	// Per-class execution counts: identical across substrates and equal to
	// the plan's tallies (nothing was refused by a full ring/buffer, so
	// every verdict executed).
	type tally struct{ drops, dups, delays, corrupts, corruptDrops uint64 }
	fabT := tally{dst.FaultDrops.Load(), dst.FaultDups.Load(), dst.FaultDelays.Load(),
		dst.FaultCorrupts.Load(), dst.CorruptDrops.Load()}
	rxT := tally{rx.FaultDrops.Load(), rx.FaultDups.Load(), rx.FaultDelays.Load(),
		rx.FaultCorrupts.Load(), rx.CorruptDrops.Load()}
	if fabT != rxT {
		t.Fatalf("fault counters diverged:\n  fabric %+v\n  rxpath %+v", fabT, rxT)
	}
	want := tally{
		drops:        counts[faults.Drop],
		dups:         counts[faults.Duplicate],
		delays:       counts[faults.Delay] + counts[faults.Reorder],
		corrupts:     counts[faults.CorruptBit],
		corruptDrops: counts[faults.CorruptBit],
	}
	if fabT != want {
		t.Fatalf("fault counters != plan tallies:\n  got  %+v\n  want %+v", fabT, want)
	}

	// Delivery parity: same survivors in the same order. This pins the
	// delay-aging, reorder-release, and duplicate-placement semantics
	// byte-identically, not just the counts.
	if len(fabSeq) != len(rxSeq) {
		t.Fatalf("delivered %d frames on fabric, %d on rxpath", len(fabSeq), len(rxSeq))
	}
	for i := range fabSeq {
		if fabSeq[i] != rxSeq[i] {
			t.Fatalf("delivery order diverged at %d: fabric rpc %d, rxpath rpc %d",
				i, fabSeq[i], rxSeq[i])
		}
	}
	wantDelivered := faultParityReqs - int(counts[faults.Drop]) - int(counts[faults.CorruptBit]) +
		int(counts[faults.Duplicate])
	if len(fabSeq) != wantDelivered {
		t.Fatalf("delivered %d frames, want %d (N - drops - corrupts + dups)",
			len(fabSeq), wantDelivered)
	}

	// The fault.* metrics families diff clean across substrates, like the
	// conn.*/mark.*/shed.* families.
	rxReg := metrics.New()
	rx.DescribeMetrics(rxReg)
	if diffs := metrics.Diff(
		dst.Metrics().Snapshot().Filter("fault"),
		rxReg.Snapshot().Filter("fault"),
	); len(diffs) != 0 {
		t.Fatalf("fault.* snapshots diverged: %v", diffs)
	}
}
