// Package dataplane is the single source of truth for Dagger's NIC
// dataplane policy: flow steering/load balancing, deadline-budget shed
// decisions, and ring/queue backpressure. The paper's central claim is
// hardware/software co-design — the same dispatch policies govern both the
// real RPC stack and the modelled hardware (§4.2, Fig. 7) — so both of this
// repo's substrates consume this package rather than keeping hand-mirrored
// copies:
//
//   - the functional goroutine stack: fabric.SoftNIC steering and the core
//     server's shed-before-dispatch path;
//   - the discrete-event timing stack: nicmodel.Balancer, the nicmodel RX/TX
//     queue admission checks, and microsim's budget-carrying requests.
//
// Every decision here is a pure function over plain inputs (flow count,
// steering key, round-robin counter, remaining budget, queue depth). The
// determinism contract: no wall clock, no rand, no allocation, no hidden
// state — the caller owns all state (its rr counter, its clock, its queues)
// and the same inputs always produce the same decision on every substrate.
// testing.AllocsPerRun pins the zero-allocation property; daggervet's
// simdeterminism analyzer pins the no-wall-clock/no-rand property.
package dataplane

// Scheme selects how requests are balanced across a NIC's RX flows. The
// zero value is SteerStatic, matching both substrates' default.
type Scheme int

const (
	// SteerStatic pins each connection to a flow for its lifetime
	// (connection-level affinity). Connections without an assignment yet
	// fall back to round-robin for the initial placement.
	SteerStatic Scheme = iota
	// SteerUniform spreads individual requests round-robin across flows
	// regardless of connection.
	SteerUniform
	// SteerKeyHash steers by a key extracted from the payload (the paper's
	// object-level balancing), giving all requests for one object the same
	// flow.
	SteerKeyHash
)

func (s Scheme) String() string {
	switch s {
	case SteerStatic:
		return "static"
	case SteerUniform:
		return "uniform"
	case SteerKeyHash:
		return "object-level"
	default:
		return "unknown"
	}
}

// KeyExtractor pulls the steering key out of a request payload for
// SteerKeyHash. It must not retain or mutate the payload.
type KeyExtractor func(payload []byte) []byte

// SteerInput carries the plain inputs of one steering decision. The caller
// owns the round-robin counter and the connection table; dataplane holds no
// state of its own.
type SteerInput struct {
	// NFlows is the number of RX flows on the target NIC (> 0).
	NFlows int
	// ConnFlow is the flow the connection is pinned to (SteerStatic only).
	ConnFlow uint16
	// HasConn reports whether ConnFlow is a real assignment; when false a
	// static steer falls back to round-robin placement via RR.
	HasConn bool
	// Key is the extracted steering key (SteerKeyHash only).
	Key []byte
	// RR is the caller's round-robin counter value for this decision
	// (already advanced; full counter width, wrap-safe).
	RR uint32
}

// Steer computes the flow index for one request under scheme s. It is the
// single steering decision point for both substrates.
func Steer(s Scheme, in SteerInput) uint16 {
	switch s {
	case SteerUniform:
		return RoundRobin(in.RR, in.NFlows)
	case SteerKeyHash:
		return KeyHashFlow(in.Key, in.NFlows)
	default: // SteerStatic
		if in.HasConn {
			return StaticFlow(in.ConnFlow, in.NFlows)
		}
		return RoundRobin(in.RR, in.NFlows)
	}
}

// RoundRobin maps a round-robin counter value to a flow index. The modulo
// is taken at full counter width so the distribution stays uniform across
// the uint32 wrap (flow counts are not powers of two in general).
func RoundRobin(rr uint32, nflows int) uint16 {
	if nflows <= 0 {
		return 0
	}
	return uint16(rr % uint32(nflows))
}

// StaticFlow maps a connection's pinned flow to a valid index, wrapping
// out-of-range assignments instead of faulting (mirrors the hardware, which
// masks the flow field against the configured flow count).
func StaticFlow(connFlow uint16, nflows int) uint16 {
	if nflows <= 0 {
		return 0
	}
	return connFlow % uint16(nflows)
}

// KeyHashFlow maps a steering key to a flow index via HashKey.
func KeyHashFlow(key []byte, nflows int) uint16 {
	if nflows <= 0 {
		return 0
	}
	return uint16(HashKey(key) % uint32(nflows))
}

// HashKey is the dataplane's key hash: FNV-1a over the key bytes, inlined
// so the hot path does not allocate (hash/fnv's interface-based API does).
// Both substrates must use this exact function or object-level steering
// diverges between them.
func HashKey(key []byte) uint32 {
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return h
}

// ResponseFlow steers a response onto the client NIC: responses return on
// the flow the request was issued from, wrapped to the client's flow count.
func ResponseFlow(reqFlow uint16, nflows int) uint16 {
	return StaticFlow(reqFlow, nflows)
}

// ShouldShed is the deadline-budget shed decision: a request carrying
// budgetMicros (remaining deadline budget in whole microseconds; 0 means no
// deadline) is shed when at least that many microseconds have already
// elapsed since it was received — the deadline has passed before the
// handler would run, so executing it can only waste server time.
//
// Both substrates call this with their own clock: the core server with
// wall-clock elapsed time, the timing stack with virtual sim.Time. Whole
// microseconds keep the decision identical across substrates regardless of
// the clock's native resolution.
func ShouldShed(budgetMicros uint32, elapsedMicros uint64) bool {
	return budgetMicros > 0 && elapsedMicros >= uint64(budgetMicros)
}

// ElapsedMicros converts elapsed nanoseconds to the whole microseconds used
// by ShouldShed, truncating toward zero (an in-progress microsecond has not
// elapsed). Negative elapsed time — a clock read before the request's
// receive stamp — counts as zero.
func ElapsedMicros(elapsedNanos int64) uint64 {
	if elapsedNanos <= 0 {
		return 0
	}
	return uint64(elapsedNanos) / 1000
}

// Overflow is the policy applied when a bounded queue is full.
type Overflow int

const (
	// OverflowDrop discards the newest item (lossy, best-effort delivery;
	// the sender sees a drop counter or ErrRingFull, never blocks).
	OverflowDrop Overflow = iota
	// OverflowBackpressure refuses the item and stalls the producer until
	// space frees up.
	OverflowBackpressure
)

func (o Overflow) String() string {
	if o == OverflowBackpressure {
		return "backpressure"
	}
	return "drop"
}

// RxRingOverflow is the policy at a full RX ring or flow FIFO: drop the
// newest frame. RX rings are lossy by design — the transport layer above
// recovers, and dropping beats head-of-line blocking the NIC pipeline.
// fabric counts these in SoftNIC.Drops (surfacing ErrRingFull to local
// senders); nicmodel counts them in PacketMonitor.RxDrops.
const RxRingOverflow = OverflowDrop

// TxTableOverflow is the policy at a full TX request table: backpressure
// the producer (the hardware asserts back-pressure on the RPC unit; the
// model returns a stall and retries next cycle).
const TxTableOverflow = OverflowBackpressure

// DropRefused reports how a queue governed by policy o treats a refused
// item: true means discard it (and count the drop), false means leave it
// with the producer, which stalls and retries.
func DropRefused(o Overflow) bool { return o == OverflowDrop }

// Admit is the backpressure admission decision for a bounded queue:
// an item is admitted while depth < capacity. capacity <= 0 means the
// queue is unbounded. What happens to a refused item is the queue's
// Overflow policy (RxRingOverflow, TxTableOverflow).
func Admit(depth, capacity int) bool {
	return capacity <= 0 || depth < capacity
}
