package dataplane

// Congestion marking and reaction: the closed-loop half of the dataplane
// policy. Queues on the data path (fabric flow rings, the nicmodel RX ring
// and TX table, microsim tier queues) call Mark as they admit an item; when
// occupancy has crossed the mark threshold the frame is stamped with an
// ECN-style congestion-experienced bit plus a one-byte occupancy hint. The
// server echoes the stamp into its response, and the client reacts: an
// AIMD-style in-flight window (WindowOnMark / WindowOnClean) plus a backoff
// scale for the retry policy (BackoffScale). Like every decision in this
// package the functions are pure, integer-only, and allocation-free, so both
// substrates reach byte-identical mark decisions from the same inputs.

// MarkHint is the smallest occupancy hint that encodes a congested queue.
// OccupancyHint quantizes depth/capacity onto [0, 255] such that
// HintCongested(OccupancyHint(d, c)) == Mark(d, c) exactly.
const MarkHint uint8 = 128

// Default AIMD window bounds for clients that do not configure their own.
// The max is deliberately far above any bounded ring on the data path: an
// unmarked connection behaves as if no window existed at all, so enabling
// the control loop is inert until a queue actually reports congestion.
const (
	DefaultMinWindow = 1
	DefaultMaxWindow = 1 << 16
)

// Mark is the congestion-mark decision for a bounded queue: an item admitted
// when the queue already holds depth items is marked once occupancy has
// reached half of capacity (2*depth >= capacity). capacity <= 0 means the
// queue is unbounded and never marks; negative depth never marks.
//
// Half-capacity marking fires well before the queue's Admit/Overflow policy
// engages, which is the point: the client hears about pressure while there
// is still room to react, instead of discovering it via drops.
func Mark(depth, capacity int) bool {
	return capacity > 0 && depth >= 0 && 2*depth >= capacity
}

// OccupancyHint quantizes a queue's occupancy onto one byte for the wire's
// occupancy-hint field: 0 is empty (or unbounded), 255 is at or beyond
// capacity. Rounding is chosen so the hint and the mark bit agree exactly:
// HintCongested(OccupancyHint(d, c)) == Mark(d, c) for every d, c.
func OccupancyHint(depth, capacity int) uint8 {
	if capacity <= 0 || depth <= 0 {
		return 0
	}
	if depth >= capacity {
		return 255
	}
	return uint8((255*depth + capacity/2) / capacity)
}

// HintCongested reports whether a wire occupancy hint encodes a congested
// queue (hint >= MarkHint).
func HintCongested(hint uint8) bool { return hint >= MarkHint }

// WindowOnMark is the multiplicative-decrease reaction to a congestion mark:
// the in-flight window halves, floored at min (and never below 1, so a
// marked connection still makes progress).
func WindowOnMark(window, min int) int {
	if min < 1 {
		min = 1
	}
	window /= 2
	if window < min {
		return min
	}
	return window
}

// WindowOnClean is the additive-increase reaction to an unmarked completion:
// the in-flight window grows by one, capped at max (max <= 0 means
// unbounded growth is capped at DefaultMaxWindow).
func WindowOnClean(window, max int) int {
	if max <= 0 {
		max = DefaultMaxWindow
	}
	window++
	if window > max {
		return max
	}
	if window < 1 {
		return 1
	}
	return window
}

// BackoffScale maps the most recent occupancy hint to an integer multiplier
// for the retry policy's backoff: 1 below the mark threshold (no change),
// 2 for a congested queue, 4 for a queue in the top quarter of its capacity.
// Integer steps keep the schedule deterministic and cheap to apply.
func BackoffScale(hint uint8) int {
	switch {
	case hint < MarkHint:
		return 1
	case hint < 192:
		return 2
	default:
		return 4
	}
}
