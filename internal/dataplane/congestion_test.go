package dataplane

import "testing"

func TestMarkThreshold(t *testing.T) {
	cases := []struct {
		depth, capacity int
		want            bool
	}{
		{0, 16, false},
		{7, 16, false},
		{8, 16, true}, // exactly half
		{15, 16, true},
		{16, 16, true}, // at capacity
		{20, 16, true}, // beyond capacity (racy Len estimates can overshoot)
		{2, 5, false},
		{3, 5, true},  // ceil(5/2)
		{0, 1, false}, // capacity 1, empty: below half
		{1, 1, true},  // capacity 1, occupied
		{5, 0, false},
		{5, -1, false}, // unbounded never marks
		{-1, 16, false},
	}
	for _, c := range cases {
		if got := Mark(c.depth, c.capacity); got != c.want {
			t.Errorf("Mark(%d, %d) = %v, want %v", c.depth, c.capacity, got, c.want)
		}
	}
}

func TestOccupancyHintRange(t *testing.T) {
	if got := OccupancyHint(0, 16); got != 0 {
		t.Errorf("empty queue hint = %d, want 0", got)
	}
	if got := OccupancyHint(5, 0); got != 0 {
		t.Errorf("unbounded queue hint = %d, want 0", got)
	}
	if got := OccupancyHint(16, 16); got != 255 {
		t.Errorf("full queue hint = %d, want 255", got)
	}
	if got := OccupancyHint(100, 16); got != 255 {
		t.Errorf("over-full queue hint = %d, want 255", got)
	}
	prev := uint8(0)
	for d := 0; d <= 64; d++ {
		h := OccupancyHint(d, 64)
		if h < prev {
			t.Fatalf("hint not monotone: OccupancyHint(%d, 64) = %d < %d", d, h, prev)
		}
		prev = h
	}
}

// TestHintAgreesWithMark pins the quantization contract: the one-byte hint
// carries enough information to reconstruct the mark decision exactly, for
// every depth and capacity. The client's HintCongested and the queue's Mark
// must never disagree or the two ends of the loop see different worlds.
func TestHintAgreesWithMark(t *testing.T) {
	for capacity := 1; capacity <= 257; capacity++ {
		for depth := 0; depth <= capacity+3; depth++ {
			mark := Mark(depth, capacity)
			hint := HintCongested(OccupancyHint(depth, capacity))
			if mark != hint {
				t.Fatalf("depth %d capacity %d: Mark=%v but HintCongested(hint)=%v",
					depth, capacity, mark, hint)
			}
		}
	}
}

func TestWindowAIMD(t *testing.T) {
	if got := WindowOnMark(64, 1); got != 32 {
		t.Errorf("WindowOnMark(64, 1) = %d, want 32", got)
	}
	if got := WindowOnMark(3, 1); got != 1 {
		t.Errorf("WindowOnMark(3, 1) = %d, want 1", got)
	}
	if got := WindowOnMark(1, 1); got != 1 {
		t.Errorf("WindowOnMark(1, 1) = %d, want 1 (never below 1)", got)
	}
	if got := WindowOnMark(64, 16); got != 32 {
		t.Errorf("WindowOnMark(64, 16) = %d, want 32", got)
	}
	if got := WindowOnMark(20, 16); got != 16 {
		t.Errorf("WindowOnMark(20, 16) = %d, want floor 16", got)
	}
	if got := WindowOnMark(2, 0); got != 1 {
		t.Errorf("WindowOnMark(2, 0) = %d, want 1 (min clamped to 1)", got)
	}
	if got := WindowOnClean(64, 128); got != 65 {
		t.Errorf("WindowOnClean(64, 128) = %d, want 65", got)
	}
	if got := WindowOnClean(128, 128); got != 128 {
		t.Errorf("WindowOnClean(128, 128) = %d, want cap 128", got)
	}
	if got := WindowOnClean(5, 0); got != 6 {
		t.Errorf("WindowOnClean(5, 0) = %d, want 6 (default cap)", got)
	}
	if got := WindowOnClean(0, 8); got != 1 {
		t.Errorf("WindowOnClean(0, 8) = %d, want 1", got)
	}
	// Decrease must dominate increase: one mark undoes many cleans.
	w := 64
	for i := 0; i < 31; i++ {
		w = WindowOnClean(w, 128)
	}
	if w != 95 {
		t.Fatalf("31 cleans from 64 = %d, want 95", w)
	}
	if w = WindowOnMark(w, 1); w != 47 {
		t.Fatalf("one mark after growth = %d, want 47", w)
	}
}

func TestBackoffScale(t *testing.T) {
	cases := []struct {
		hint uint8
		want int
	}{
		{0, 1}, {64, 1}, {127, 1},
		{128, 2}, {160, 2}, {191, 2},
		{192, 4}, {255, 4},
	}
	for _, c := range cases {
		if got := BackoffScale(c.hint); got != c.want {
			t.Errorf("BackoffScale(%d) = %d, want %d", c.hint, got, c.want)
		}
	}
	// A hint below the mark threshold must never scale backoff: the scale
	// only engages once the queue actually reported congestion.
	for h := 0; h < int(MarkHint); h++ {
		if BackoffScale(uint8(h)) != 1 {
			t.Fatalf("BackoffScale(%d) != 1 below MarkHint", h)
		}
	}
}
