// Package netmodel models the network between Dagger NICs: point-to-point
// links with propagation and serialization delay, the simple ToR switch
// model with a static switching table used in the paper's loopback and
// multi-tier setups (§5.1, §5.7, Figure 14), and the round-robin PCIe/UPI
// arbiter that shares one physical FPGA's CCI-P bus among virtualized NIC
// instances.
package netmodel

import (
	"fmt"

	"dagger/internal/sim"
)

// ToRDelay is the top-of-rack switch delay assumed in the paper's Table 3
// comparison (0.3 us round trip contribution: 150 ns per crossing).
const ToRDelay sim.Time = 150

// LoopbackDelay is the on-FPGA loopback network delay between two NIC
// instances on the same device (§5.1's evaluation topology).
const LoopbackDelay sim.Time = 50

// Link is a point-to-point wire with fixed propagation delay and a
// serialization rate. Transfers are serialized in FIFO order.
type Link struct {
	eng       *sim.Engine
	delay     sim.Time
	nsPerByte float64
	busyUntil sim.Time

	Sent      uint64
	BytesSent uint64
}

// NewLink creates a link with propagation delay and bandwidth in bytes per
// nanosecond (e.g. 12.5 B/ns = 100 Gb/s). bandwidth <= 0 means infinite.
func NewLink(eng *sim.Engine, delay sim.Time, bytesPerNs float64) *Link {
	var nsPerByte float64
	if bytesPerNs > 0 {
		nsPerByte = 1 / bytesPerNs
	}
	return &Link{eng: eng, delay: delay, nsPerByte: nsPerByte}
}

// Send transmits a message of the given size; fn fires at the receiver when
// the last byte arrives.
func (l *Link) Send(bytes int, fn func()) {
	now := l.eng.Now()
	start := now
	if l.busyUntil > start {
		start = l.busyUntil
	}
	ser := sim.Time(float64(bytes) * l.nsPerByte)
	l.busyUntil = start + ser
	l.Sent++
	l.BytesSent += uint64(bytes)
	l.eng.At(l.busyUntil+l.delay, fn)
}

// Port is a switch egress: a handler invoked for delivered frames.
type Port func(dst uint32, frame []byte)

// Switch is the paper's "simple model of a ToR networking switch with a
// static switching table" (§5.7): L2 forwarding by destination address with
// a fixed per-frame latency and per-port FIFO serialization.
type Switch struct {
	eng     *sim.Engine
	latency sim.Time
	links   map[uint32]*Link
	ports   map[uint32]Port

	Forwarded uint64
	Unrouted  uint64
}

// NewSwitch creates a switch with per-crossing latency.
func NewSwitch(eng *sim.Engine, latency sim.Time) *Switch {
	return &Switch{
		eng:     eng,
		latency: latency,
		links:   make(map[uint32]*Link),
		ports:   make(map[uint32]Port),
	}
}

// Connect attaches an address to the switch via a link and a delivery
// handler (the static switching table entry).
func (s *Switch) Connect(addr uint32, link *Link, port Port) error {
	if _, dup := s.ports[addr]; dup {
		return fmt.Errorf("netmodel: address %#x already connected", addr)
	}
	s.links[addr] = link
	s.ports[addr] = port
	return nil
}

// Forward routes a frame to dst; delivery fires after switch latency plus
// the egress link's serialization and propagation. Frames to unknown
// addresses are counted and dropped (static table: no learning, no
// flooding).
func (s *Switch) Forward(dst uint32, frame []byte) {
	port, ok := s.ports[dst]
	if !ok {
		s.Unrouted++
		return
	}
	s.Forwarded++
	link := s.links[dst]
	s.eng.After(s.latency, func() {
		link.Send(len(frame), func() { port(dst, frame) })
	})
}

// Arbiter models the PCIe/UPI arbiter of Figure 14: fair round-robin
// sharing of the CCI-P bus among NIC instances on one FPGA. Each transfer
// occupies the bus for its serialization time; waiting instances are served
// round-robin by instance id.
type Arbiter struct {
	eng       *sim.Engine
	perLine   sim.Time
	busyUntil sim.Time
	queues    [][]func()
	next      int
	inService bool

	Transfers uint64
}

// NewArbiter creates an arbiter over n instances with a per-cache-line bus
// occupancy (UPI at 19.2 GB/s moves a 64 B line in ~3.3 ns).
func NewArbiter(eng *sim.Engine, n int, perLine sim.Time) *Arbiter {
	if n <= 0 {
		panic("netmodel: arbiter needs at least one instance")
	}
	if perLine <= 0 {
		perLine = 4
	}
	return &Arbiter{eng: eng, perLine: perLine, queues: make([][]func(), n)}
}

// Request asks for the bus on behalf of an instance for `lines` cache
// lines; fn runs when the transfer completes.
func (a *Arbiter) Request(instance, lines int, fn func()) {
	if instance < 0 || instance >= len(a.queues) {
		panic("netmodel: arbiter instance out of range")
	}
	if lines < 1 {
		lines = 1
	}
	a.queues[instance] = append(a.queues[instance], func() {
		a.eng.After(sim.Time(lines)*a.perLine, func() {
			a.Transfers++
			a.inService = false
			a.dispatch()
			fn()
		})
	})
	if !a.inService {
		a.dispatch()
	}
}

func (a *Arbiter) dispatch() {
	if a.inService {
		return
	}
	for i := 0; i < len(a.queues); i++ {
		idx := (a.next + i) % len(a.queues)
		if len(a.queues[idx]) > 0 {
			job := a.queues[idx][0]
			a.queues[idx] = a.queues[idx][1:]
			a.next = (idx + 1) % len(a.queues)
			a.inService = true
			job()
			return
		}
	}
}
