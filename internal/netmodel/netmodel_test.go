package netmodel

import (
	"testing"

	"dagger/internal/sim"
)

func TestLinkPropagationOnly(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 100, 0) // infinite bandwidth
	var at sim.Time
	l.Send(64, func() { at = eng.Now() })
	eng.Run()
	if at != 100 {
		t.Fatalf("delivery at %v, want 100", at)
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine()
	l := NewLink(eng, 0, 1) // 1 byte/ns
	var first, second sim.Time
	l.Send(100, func() { first = eng.Now() })
	l.Send(100, func() { second = eng.Now() })
	eng.Run()
	if first != 100 {
		t.Fatalf("first at %v, want 100", first)
	}
	if second != 200 {
		t.Fatalf("second at %v, want 200 (serialized)", second)
	}
	if l.Sent != 2 || l.BytesSent != 200 {
		t.Fatalf("stats: %d sent, %d bytes", l.Sent, l.BytesSent)
	}
}

func TestSwitchForwarding(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, ToRDelay)
	delivered := map[uint32][]byte{}
	for _, addr := range []uint32{1, 2} {
		addr := addr
		link := NewLink(eng, 50, 0)
		if err := sw.Connect(addr, link, func(dst uint32, frame []byte) {
			delivered[addr] = frame
		}); err != nil {
			t.Fatal(err)
		}
	}
	sw.Forward(2, []byte("hello"))
	var deliveredAt sim.Time
	eng.At(0, func() {}) // anchor
	eng.Run()
	deliveredAt = eng.Now()
	if string(delivered[2]) != "hello" {
		t.Fatal("frame not delivered to addr 2")
	}
	if delivered[1] != nil {
		t.Fatal("frame leaked to addr 1")
	}
	if deliveredAt != ToRDelay+50 {
		t.Fatalf("delivered at %v, want %v", deliveredAt, ToRDelay+50)
	}
}

func TestSwitchUnroutedDrop(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 10)
	sw.Forward(99, []byte("x"))
	eng.Run()
	if sw.Unrouted != 1 || sw.Forwarded != 0 {
		t.Fatalf("unrouted=%d forwarded=%d", sw.Unrouted, sw.Forwarded)
	}
}

func TestSwitchDuplicateConnect(t *testing.T) {
	eng := sim.NewEngine()
	sw := NewSwitch(eng, 10)
	l := NewLink(eng, 0, 0)
	if err := sw.Connect(1, l, func(uint32, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := sw.Connect(1, l, func(uint32, []byte) {}); err == nil {
		t.Fatal("duplicate connect succeeded")
	}
}

func TestArbiterFairRoundRobin(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArbiter(eng, 3, 10)
	var order []int
	// Instance 0 floods; instances 1 and 2 each want one transfer. Fair
	// round-robin must interleave them rather than starving.
	for i := 0; i < 3; i++ {
		inst := 0
		a.Request(inst, 1, func() { order = append(order, inst) })
	}
	a.Request(1, 1, func() { order = append(order, 1) })
	a.Request(2, 1, func() { order = append(order, 2) })
	eng.Run()
	if len(order) != 5 {
		t.Fatalf("transfers = %d, want 5", len(order))
	}
	// The first transfer is instance 0 (it asked first); the next two
	// grants must include 1 and 2 before 0's backlog drains completely.
	seen1, seen2 := -1, -1
	last0 := -1
	for i, v := range order {
		switch v {
		case 1:
			seen1 = i
		case 2:
			seen2 = i
		case 0:
			last0 = i
		}
	}
	if seen1 > 3 || seen2 > 3 {
		t.Fatalf("round robin starved: order %v", order)
	}
	if last0 < 2 {
		t.Fatalf("instance 0 backlog finished too early: %v", order)
	}
	if a.Transfers != 5 {
		t.Fatalf("arbiter transfers = %d", a.Transfers)
	}
}

func TestArbiterSerializesBus(t *testing.T) {
	eng := sim.NewEngine()
	a := NewArbiter(eng, 2, 10)
	var times []sim.Time
	a.Request(0, 2, func() { times = append(times, eng.Now()) }) // 20 ns
	a.Request(1, 1, func() { times = append(times, eng.Now()) }) // 10 ns after
	eng.Run()
	if times[0] != 20 || times[1] != 30 {
		t.Fatalf("completion times %v, want [20 30]", times)
	}
}
