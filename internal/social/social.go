// Package social implements a functional Social Network application in the
// shape of Figure 1 — the paper's motivating microservice workload — running
// end to end on the Dagger RPC stack. The tiers mirror the profiled subset
// of §3: an Nginx-like front-end, the ComposePost orchestrator, the
// UniqueID, Text, UserMention, UrlShorten, Media, and User services, a
// MICA-backed post storage, a memcached-backed user cache, and a timeline
// service — with the same one-to-many fan-outs and nested chains.
//
// Unlike internal/microsim (the queueing model behind Figures 3-5), this
// package really executes: posts are composed, text is parsed for mentions
// and URLs, URLs are shortened, posts land in storage, and timelines read
// them back — every hop an RPC over the fabric.
package social

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/kvs/memcached"
	"dagger/internal/kvs/mica"
	"dagger/internal/wire"
)

// Tier fabric addresses.
const (
	AddrClient uint32 = iota + 1
	AddrNginx
	AddrComposePost
	AddrUniqueID
	AddrText
	AddrUserMention
	AddrUrlShorten
	AddrMedia
	AddrUser
	AddrPostStorage
	AddrTimeline
	AddrUserStorage // memcached
)

// Function IDs (per tier; tiers have disjoint NICs so ids may overlap, but
// unique ids keep traces readable).
const (
	FnComposePost uint16 = iota + 1
	FnReadTimeline
	FnUniqueID
	FnProcessText
	FnExtractMentions
	FnShortenURL
	FnProcessMedia
	FnGetUser
	FnStorePost
	FnGetPosts
)

// Post is a stored social-network post.
type Post struct {
	ID       uint64
	Author   string
	Text     string
	Mentions []string
	URLs     []string
	MediaIDs []uint64
}

func (p Post) encode() []byte {
	e := wire.NewEncoder(nil)
	e.Uint64(p.ID)
	e.String16(p.Author)
	e.String16(p.Text)
	e.Uint32(uint32(len(p.Mentions)))
	for _, m := range p.Mentions {
		e.String16(m)
	}
	e.Uint32(uint32(len(p.URLs)))
	for _, u := range p.URLs {
		e.String16(u)
	}
	e.Uint32(uint32(len(p.MediaIDs)))
	for _, id := range p.MediaIDs {
		e.Uint64(id)
	}
	return e.Bytes()
}

func decodePost(b []byte) (Post, error) {
	d := wire.NewDecoder(b)
	p := Post{ID: d.Uint64(), Author: d.String16(), Text: d.String16()}
	for n := d.Uint32(); n > 0; n-- {
		p.Mentions = append(p.Mentions, d.String16())
	}
	for n := d.Uint32(); n > 0; n-- {
		p.URLs = append(p.URLs, d.String16())
	}
	for n := d.Uint32(); n > 0; n-- {
		p.MediaIDs = append(p.MediaIDs, d.Uint64())
	}
	return p, d.Err()
}

// ComposeRequest is a front-end post-creation request.
type ComposeRequest struct {
	Author   string
	Text     string
	MediaIDs []uint64
}

func (r ComposeRequest) encode() []byte {
	e := wire.NewEncoder(nil)
	e.String16(r.Author)
	e.String16(r.Text)
	e.Uint32(uint32(len(r.MediaIDs)))
	for _, id := range r.MediaIDs {
		e.Uint64(id)
	}
	return e.Bytes()
}

func decodeComposeRequest(b []byte) (ComposeRequest, error) {
	d := wire.NewDecoder(b)
	r := ComposeRequest{Author: d.String16(), Text: d.String16()}
	for n := d.Uint32(); n > 0; n-- {
		r.MediaIDs = append(r.MediaIDs, d.Uint64())
	}
	return r, d.Err()
}

// Config tunes the deployment.
type Config struct {
	// FlowsPerTier is each tier NIC's flow count (default 2).
	FlowsPerTier int
	// RingDepth is the per-flow RX ring depth (default 1024).
	RingDepth int
	// Users pre-registers this many user accounts (default 64).
	Users int
	// TimelineLength bounds per-user timelines (default 32).
	TimelineLength int
}

// App is a running Social Network deployment.
type App struct {
	Fabric *fabric.Fabric
	cfg    Config

	servers []*core.RpcThreadedServer
	pools   []*core.RpcClientPool
	nics    []*fabric.SoftNIC

	clientPool *core.RpcClientPool

	postStore *mica.Store      // post storage backend
	userCache *memcached.Store // user storage backend

	mu        sync.Mutex
	timelines map[string][]uint64 // author -> newest-first post ids
	shortURLs map[string]string

	nextPostID atomic.Uint64
	nextShort  atomic.Uint64

	// Counters.
	Composed atomic.Uint64
	Reads    atomic.Uint64
}

type tierClient struct {
	pool  *core.RpcClientPool
	conns map[uint32][]uint32
	rr    atomic.Uint32
}

// pick returns a client and its connection to dst, round-robin.
func (tc *tierClient) pick(dst uint32) (*core.RpcClient, uint32) {
	i := int(tc.rr.Add(1)-1) % tc.pool.Size()
	return tc.pool.Client(i), tc.conns[dst][i]
}

// New builds and starts all tiers.
func New(cfg Config) (*App, error) {
	if cfg.FlowsPerTier <= 0 {
		cfg.FlowsPerTier = 2
	}
	if cfg.RingDepth <= 0 {
		cfg.RingDepth = 1024
	}
	if cfg.Users <= 0 {
		cfg.Users = 64
	}
	if cfg.TimelineLength <= 0 {
		cfg.TimelineLength = 32
	}
	a := &App{
		cfg:       cfg,
		Fabric:    fabric.NewFabric(),
		timelines: map[string][]uint64{},
		shortURLs: map[string]string{},
	}
	ok := false
	defer func() {
		if !ok {
			a.Close()
		}
	}()

	mkNIC := func(addr uint32) (*fabric.SoftNIC, error) {
		n, err := a.Fabric.CreateNIC(addr, cfg.FlowsPerTier, cfg.RingDepth)
		if err != nil {
			return nil, err
		}
		a.nics = append(a.nics, n)
		return n, nil
	}
	mkServer := func(nic *fabric.SoftNIC, regs map[uint16]struct {
		name string
		h    core.Handler
	}) error {
		srv := core.NewRpcThreadedServer(nic, core.ServerConfig{})
		for fn, r := range regs {
			if err := srv.Register(fn, r.name, r.h); err != nil {
				return err
			}
		}
		if err := srv.Start(); err != nil {
			return err
		}
		a.servers = append(a.servers, srv)
		return nil
	}
	mkClients := func(nic *fabric.SoftNIC, dsts ...uint32) (*tierClient, error) {
		pool, err := core.NewRpcClientPool(nic, cfg.FlowsPerTier)
		if err != nil {
			return nil, err
		}
		a.pools = append(a.pools, pool)
		tc := &tierClient{pool: pool, conns: map[uint32][]uint32{}}
		for _, d := range dsts {
			ids, err := pool.ConnectAll(d)
			if err != nil {
				return nil, err
			}
			tc.conns[d] = ids
		}
		return tc, nil
	}

	// --- Backends ---
	postNIC, err := mkNIC(AddrPostStorage)
	if err != nil {
		return nil, err
	}
	a.postStore = mica.NewStore(cfg.FlowsPerTier, 1<<12, 1<<22)
	micaSrv, err := mica.Serve(postNIC, a.postStore, core.ServerConfig{})
	if err != nil {
		return nil, err
	}
	a.servers = append(a.servers, micaSrv)

	userStoreNIC, err := mkNIC(AddrUserStorage)
	if err != nil {
		return nil, err
	}
	a.userCache = memcached.New(8, 0)
	mcdSrv, err := memcached.Serve(userStoreNIC, a.userCache, core.ServerConfig{})
	if err != nil {
		return nil, err
	}
	a.servers = append(a.servers, mcdSrv)
	for i := 0; i < cfg.Users; i++ {
		name := fmt.Sprintf("user%d", i)
		a.userCache.Set("acct:"+name, []byte(name), 0)
	}

	// --- UniqueID ---
	uidNIC, err := mkNIC(AddrUniqueID)
	if err != nil {
		return nil, err
	}
	if err := mkServer(uidNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnUniqueID: {"UniqueID.next", func(_ context.Context, req []byte) ([]byte, error) {
			e := wire.NewEncoder(nil)
			e.Uint64(a.nextPostID.Add(1))
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- UserMention ---
	umNIC, err := mkNIC(AddrUserMention)
	if err != nil {
		return nil, err
	}
	if err := mkServer(umNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnExtractMentions: {"UserMention.extract", func(_ context.Context, req []byte) ([]byte, error) {
			d := wire.NewDecoder(req)
			text := d.String16()
			if err := d.Err(); err != nil {
				return nil, err
			}
			var mentions []string
			for _, w := range strings.Fields(text) {
				if strings.HasPrefix(w, "@") && len(w) > 1 {
					mentions = append(mentions, strings.TrimPrefix(strings.TrimRight(w, ".,!?"), "@"))
				}
			}
			e := wire.NewEncoder(nil)
			e.Uint32(uint32(len(mentions)))
			for _, m := range mentions {
				e.String16(m)
			}
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- UrlShorten ---
	usNIC, err := mkNIC(AddrUrlShorten)
	if err != nil {
		return nil, err
	}
	if err := mkServer(usNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnShortenURL: {"UrlShorten.shorten", func(_ context.Context, req []byte) ([]byte, error) {
			d := wire.NewDecoder(req)
			url := d.String16()
			if err := d.Err(); err != nil {
				return nil, err
			}
			short := fmt.Sprintf("https://dg.gr/%x", a.nextShort.Add(1))
			a.mu.Lock()
			a.shortURLs[short] = url
			a.mu.Unlock()
			e := wire.NewEncoder(nil)
			e.String16(short)
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- Text: extracts mentions and URLs via nested RPCs ---
	textNIC, err := mkNIC(AddrText)
	if err != nil {
		return nil, err
	}
	textClients, err := mkClients(textNIC, AddrUserMention, AddrUrlShorten)
	if err != nil {
		return nil, err
	}
	if err := mkServer(textNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnProcessText: {"Text.process", func(ctx context.Context, req []byte) ([]byte, error) {
			d := wire.NewDecoder(req)
			text := d.String16()
			if err := d.Err(); err != nil {
				return nil, err
			}
			// Nested: mentions from UserMention, short links from
			// UrlShorten (one call per URL — the one-to-many edge).
			cli, conn := textClients.pick(AddrUserMention)
			e := wire.NewEncoder(nil)
			e.String16(text)
			out, err := cli.CallConnContext(ctx, conn, FnExtractMentions, e.Bytes())
			if err != nil {
				return nil, fmt.Errorf("usermention: %w", err)
			}
			md := wire.NewDecoder(out)
			var mentions []string
			for n := md.Uint32(); n > 0; n-- {
				mentions = append(mentions, md.String16())
			}
			var shortened []string
			for _, w := range strings.Fields(text) {
				if strings.HasPrefix(w, "http://") || strings.HasPrefix(w, "https://") {
					cli, conn := textClients.pick(AddrUrlShorten)
					ue := wire.NewEncoder(nil)
					ue.String16(w)
					out, err := cli.CallConnContext(ctx, conn, FnShortenURL, ue.Bytes())
					if err != nil {
						return nil, fmt.Errorf("urlshorten: %w", err)
					}
					ud := wire.NewDecoder(out)
					shortened = append(shortened, ud.String16())
				}
			}
			e = wire.NewEncoder(nil)
			e.Uint32(uint32(len(mentions)))
			for _, m := range mentions {
				e.String16(m)
			}
			e.Uint32(uint32(len(shortened)))
			for _, u := range shortened {
				e.String16(u)
			}
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- Media ---
	mediaNIC, err := mkNIC(AddrMedia)
	if err != nil {
		return nil, err
	}
	if err := mkServer(mediaNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnProcessMedia: {"Media.process", func(_ context.Context, req []byte) ([]byte, error) {
			d := wire.NewDecoder(req)
			n := d.Uint32()
			ids := make([]uint64, 0, n)
			for ; n > 0; n-- {
				ids = append(ids, d.Uint64())
			}
			if err := d.Err(); err != nil {
				return nil, err
			}
			e := wire.NewEncoder(nil)
			e.Uint32(uint32(len(ids)))
			for _, id := range ids {
				e.Uint64(id | 1<<63) // "transcoded" media handle
			}
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- User: validates accounts against the memcached-backed storage ---
	userNIC, err := mkNIC(AddrUser)
	if err != nil {
		return nil, err
	}
	userClients, err := mkClients(userNIC, AddrUserStorage)
	if err != nil {
		return nil, err
	}
	if err := mkServer(userNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnGetUser: {"User.get", func(ctx context.Context, req []byte) ([]byte, error) {
			d := wire.NewDecoder(req)
			name := d.String16()
			if err := d.Err(); err != nil {
				return nil, err
			}
			cli, conn := userClients.pick(AddrUserStorage)
			mc := memcachedClientConn(cli, conn)
			_, err := mc.GetContext(ctx, "acct:"+name)
			e := wire.NewEncoder(nil)
			e.Bool(err == nil)
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- Timeline: reads posts back from post storage ---
	tlNIC, err := mkNIC(AddrTimeline)
	if err != nil {
		return nil, err
	}
	tlClients, err := mkClients(tlNIC, AddrPostStorage)
	if err != nil {
		return nil, err
	}
	if err := mkServer(tlNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnGetPosts: {"Timeline.read", func(ctx context.Context, req []byte) ([]byte, error) {
			d := wire.NewDecoder(req)
			author := d.String16()
			limit := int(d.Uint32())
			if err := d.Err(); err != nil {
				return nil, err
			}
			a.mu.Lock()
			ids := append([]uint64(nil), a.timelines[author]...)
			a.mu.Unlock()
			if limit > 0 && len(ids) > limit {
				ids = ids[:limit]
			}
			e := wire.NewEncoder(nil)
			var blobs [][]byte
			for _, id := range ids {
				cli, conn := tlClients.pick(AddrPostStorage)
				mc := mica.NewClientConn(cli, conn)
				if raw, err := mc.GetContext(ctx, postKey(id)); err == nil {
					blobs = append(blobs, raw)
				}
			}
			e.Uint32(uint32(len(blobs)))
			for _, b := range blobs {
				e.Bytes16(b)
			}
			a.Reads.Add(1)
			return e.Bytes(), nil
		}},
	}); err != nil {
		return nil, err
	}

	// --- ComposePost orchestrator: the fan-out hub of Figure 1 ---
	cpNIC, err := mkNIC(AddrComposePost)
	if err != nil {
		return nil, err
	}
	cpClients, err := mkClients(cpNIC, AddrUniqueID, AddrText, AddrMedia, AddrUser, AddrPostStorage)
	if err != nil {
		return nil, err
	}
	if err := mkServer(cpNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnComposePost: {"ComposePost.compose", func(ctx context.Context, req []byte) ([]byte, error) {
			cr, err := decodeComposeRequest(req)
			if err != nil {
				return nil, err
			}
			return a.composePost(ctx, cpClients, cr)
		}},
	}); err != nil {
		return nil, err
	}

	// --- Nginx front-end: routes compose and read requests ---
	nginxNIC, err := mkNIC(AddrNginx)
	if err != nil {
		return nil, err
	}
	feClients, err := mkClients(nginxNIC, AddrComposePost, AddrTimeline)
	if err != nil {
		return nil, err
	}
	if err := mkServer(nginxNIC, map[uint16]struct {
		name string
		h    core.Handler
	}{
		FnComposePost: {"nginx.compose", func(ctx context.Context, req []byte) ([]byte, error) {
			cli, conn := feClients.pick(AddrComposePost)
			return cli.CallConnContext(ctx, conn, FnComposePost, req)
		}},
		FnReadTimeline: {"nginx.read", func(ctx context.Context, req []byte) ([]byte, error) {
			cli, conn := feClients.pick(AddrTimeline)
			return cli.CallConnContext(ctx, conn, FnGetPosts, req)
		}},
	}); err != nil {
		return nil, err
	}

	// --- Client pool driving the front-end ---
	clientNIC, err := mkNIC(AddrClient)
	if err != nil {
		return nil, err
	}
	a.clientPool, err = core.NewRpcClientPool(clientNIC, cfg.FlowsPerTier)
	if err != nil {
		return nil, err
	}
	if _, err := a.clientPool.ConnectAll(AddrNginx); err != nil {
		return nil, err
	}

	ok = true
	return a, nil
}

// composePost runs the fan-out: UniqueID, Text, Media, and User in
// parallel; then the post is assembled and stored.
func (a *App) composePost(ctx context.Context, tc *tierClient, cr ComposeRequest) ([]byte, error) {
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		postID   uint64
		mentions []string
		urls     []string
		mediaIDs []uint64
		userOK   bool
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	call := func(dst uint32, fn uint16, payload []byte, on func(*wire.Decoder)) {
		wg.Add(1)
		cli, conn := tc.pick(dst)
		if err := cli.CallConnAsyncContext(ctx, conn, fn, payload, func(out []byte, err error) {
			defer wg.Done()
			if err != nil {
				fail(err)
				return
			}
			mu.Lock()
			on(wire.NewDecoder(out))
			mu.Unlock()
		}); err != nil {
			wg.Done()
			fail(err)
		}
	}

	call(AddrUniqueID, FnUniqueID, nil, func(d *wire.Decoder) { postID = d.Uint64() })

	te := wire.NewEncoder(nil)
	te.String16(cr.Text)
	call(AddrText, FnProcessText, te.Bytes(), func(d *wire.Decoder) {
		for n := d.Uint32(); n > 0; n-- {
			mentions = append(mentions, d.String16())
		}
		for n := d.Uint32(); n > 0; n-- {
			urls = append(urls, d.String16())
		}
	})

	me := wire.NewEncoder(nil)
	me.Uint32(uint32(len(cr.MediaIDs)))
	for _, id := range cr.MediaIDs {
		me.Uint64(id)
	}
	call(AddrMedia, FnProcessMedia, me.Bytes(), func(d *wire.Decoder) {
		for n := d.Uint32(); n > 0; n-- {
			mediaIDs = append(mediaIDs, d.Uint64())
		}
	})

	ue := wire.NewEncoder(nil)
	ue.String16(cr.Author)
	call(AddrUser, FnGetUser, ue.Bytes(), func(d *wire.Decoder) { userOK = d.Bool() })

	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	if !userOK {
		return nil, fmt.Errorf("social: unknown user %q", cr.Author)
	}

	post := Post{
		ID: postID, Author: cr.Author, Text: cr.Text,
		Mentions: mentions, URLs: urls, MediaIDs: mediaIDs,
	}
	// Blocking store into MICA-backed post storage.
	cli, conn := tc.pick(AddrPostStorage)
	mc := mica.NewClientConn(cli, conn)
	if err := mc.SetContext(ctx, postKey(post.ID), post.encode()); err != nil {
		return nil, err
	}
	a.mu.Lock()
	tl := append([]uint64{post.ID}, a.timelines[post.Author]...)
	if len(tl) > a.cfg.TimelineLength {
		tl = tl[:a.cfg.TimelineLength]
	}
	a.timelines[post.Author] = tl
	a.mu.Unlock()
	a.Composed.Add(1)
	return post.encode(), nil
}

// ComposePost creates a post through the front-end and returns it.
func (a *App) ComposePost(author, text string, mediaIDs []uint64) (Post, error) {
	return a.ComposePostContext(context.Background(), author, text, mediaIDs)
}

// ComposePostContext is ComposePost under ctx: the deadline budget rides the
// wire into nginx and cascades through every downstream tier.
func (a *App) ComposePostContext(ctx context.Context, author, text string, mediaIDs []uint64) (Post, error) {
	cli := a.clientPool.Client(0)
	out, err := cli.CallContext(ctx, FnComposePost, ComposeRequest{Author: author, Text: text, MediaIDs: mediaIDs}.encode())
	if err != nil {
		return Post{}, err
	}
	return decodePost(out)
}

// ReadUserTimeline returns a user's newest posts through the front-end.
func (a *App) ReadUserTimeline(author string, limit int) ([]Post, error) {
	return a.ReadUserTimelineContext(context.Background(), author, limit)
}

// ReadUserTimelineContext is ReadUserTimeline under ctx.
func (a *App) ReadUserTimelineContext(ctx context.Context, author string, limit int) ([]Post, error) {
	cli := a.clientPool.Client(0)
	e := wire.NewEncoder(nil)
	e.String16(author)
	e.Uint32(uint32(limit))
	out, err := cli.CallContext(ctx, FnReadTimeline, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(out)
	n := d.Uint32()
	posts := make([]Post, 0, n)
	for ; n > 0; n-- {
		p, err := decodePost(d.Bytes16())
		if err != nil {
			return nil, err
		}
		posts = append(posts, p)
	}
	return posts, d.Err()
}

// ResolveShortURL expands a shortened link.
func (a *App) ResolveShortURL(short string) (string, bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	u, ok := a.shortURLs[short]
	return u, ok
}

// Close stops every tier.
func (a *App) Close() {
	for _, p := range a.pools {
		p.Close()
	}
	if a.clientPool != nil {
		a.clientPool.Close()
	}
	for _, s := range a.servers {
		s.Stop()
	}
	for _, n := range a.nics {
		n.Close()
	}
	// Give in-flight dispatch goroutines a beat to observe closure.
	time.Sleep(time.Millisecond)
}

func postKey(id uint64) []byte {
	e := wire.NewEncoder(nil)
	e.Uint64(id)
	return append([]byte("post:"), e.Bytes()...)
}

// memcachedClientConn adapts a client+connection to the memcached typed
// client (which uses the default connection otherwise).
func memcachedClientConn(cli *core.RpcClient, conn uint32) *memcached.Client {
	return memcached.NewClientConn(cli, conn)
}
