package social

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func newApp(t *testing.T) *App {
	t.Helper()
	app, err := New(Config{Users: 16})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(app.Close)
	return app
}

func TestComposePostFullFanout(t *testing.T) {
	app := newApp(t)
	post, err := app.ComposePost("user1",
		"hi @user2 check https://example.com/long/path and @user3!", []uint64{7, 8})
	if err != nil {
		t.Fatal(err)
	}
	if post.ID == 0 {
		t.Fatal("UniqueID service did not assign an id")
	}
	if len(post.Mentions) != 2 || post.Mentions[0] != "user2" || post.Mentions[1] != "user3" {
		t.Fatalf("mentions = %v", post.Mentions)
	}
	if len(post.URLs) != 1 || !strings.HasPrefix(post.URLs[0], "https://dg.gr/") {
		t.Fatalf("urls = %v", post.URLs)
	}
	if orig, ok := app.ResolveShortURL(post.URLs[0]); !ok || orig != "https://example.com/long/path" {
		t.Fatalf("short url resolution: %q %v", orig, ok)
	}
	if len(post.MediaIDs) != 2 || post.MediaIDs[0]&(1<<63) == 0 {
		t.Fatalf("media not processed: %v", post.MediaIDs)
	}
	if app.Composed.Load() != 1 {
		t.Fatal("composed counter")
	}
}

func TestComposeRejectsUnknownUser(t *testing.T) {
	app := newApp(t)
	if _, err := app.ComposePost("ghost", "hello", nil); err == nil {
		t.Fatal("post by unknown user accepted")
	}
}

func TestReadUserTimeline(t *testing.T) {
	app := newApp(t)
	for i := 0; i < 5; i++ {
		if _, err := app.ComposePost("user4", fmt.Sprintf("post number %d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	posts, err := app.ReadUserTimeline("user4", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 3 {
		t.Fatalf("timeline length = %d, want 3", len(posts))
	}
	// Newest first.
	if posts[0].Text != "post number 4" || posts[2].Text != "post number 2" {
		t.Fatalf("timeline order: %q ... %q", posts[0].Text, posts[2].Text)
	}
	for _, p := range posts {
		if p.Author != "user4" {
			t.Fatalf("foreign post in timeline: %+v", p)
		}
	}
	// Unknown user: empty timeline, no error.
	posts, err = app.ReadUserTimeline("nobody", 10)
	if err != nil || len(posts) != 0 {
		t.Fatalf("unknown user timeline: %d posts, %v", len(posts), err)
	}
}

func TestTimelineLengthBound(t *testing.T) {
	app, err := New(Config{Users: 4, TimelineLength: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer app.Close()
	for i := 0; i < 6; i++ {
		if _, err := app.ComposePost("user0", fmt.Sprintf("p%d", i), nil); err != nil {
			t.Fatal(err)
		}
	}
	posts, err := app.ReadUserTimeline("user0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(posts) != 3 {
		t.Fatalf("timeline retained %d, want 3", len(posts))
	}
	if posts[0].Text != "p5" {
		t.Fatalf("newest = %q", posts[0].Text)
	}
}

func TestConcurrentComposers(t *testing.T) {
	app := newApp(t)
	const writers, perWriter = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			author := fmt.Sprintf("user%d", w)
			for i := 0; i < perWriter; i++ {
				if _, err := app.ComposePost(author, fmt.Sprintf("from %s #%d", author, i), nil); err != nil {
					t.Errorf("%s: %v", author, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if app.Composed.Load() != writers*perWriter {
		t.Fatalf("composed = %d", app.Composed.Load())
	}
	// Post IDs are unique across writers.
	seen := map[uint64]bool{}
	for w := 0; w < writers; w++ {
		posts, err := app.ReadUserTimeline(fmt.Sprintf("user%d", w), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(posts) != perWriter {
			t.Fatalf("user%d timeline = %d", w, len(posts))
		}
		for _, p := range posts {
			if seen[p.ID] {
				t.Fatalf("duplicate post id %d", p.ID)
			}
			seen[p.ID] = true
		}
	}
}

func TestPostCodecRoundTrip(t *testing.T) {
	p := Post{
		ID: 42, Author: "user1", Text: "hello @x https://a.b",
		Mentions: []string{"x"}, URLs: []string{"https://dg.gr/1"},
		MediaIDs: []uint64{1 << 63},
	}
	got, err := decodePost(p.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != p.ID || got.Author != p.Author || got.Text != p.Text ||
		len(got.Mentions) != 1 || got.Mentions[0] != "x" ||
		len(got.URLs) != 1 || got.URLs[0] != p.URLs[0] ||
		len(got.MediaIDs) != 1 || got.MediaIDs[0] != p.MediaIDs[0] {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestBackendsAreExercised(t *testing.T) {
	app := newApp(t)
	if _, err := app.ComposePost("user2", "check @user5", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := app.ReadUserTimeline("user2", 1); err != nil {
		t.Fatal(err)
	}
	// The post went through MICA-backed storage and the user check through
	// the memcached-backed cache.
	micaSets := uint64(0)
	for i := 0; i < app.postStore.NumPartitions(); i++ {
		micaSets += app.postStore.Partition(i).Sets
	}
	if micaSets == 0 {
		t.Fatal("post storage (MICA) never written")
	}
	if app.userCache.Hits.Load() == 0 {
		t.Fatal("user cache (memcached) never read")
	}
}
