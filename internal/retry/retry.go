// Package retry implements the small, deterministic retry policy used by RPC
// clients and the reliable transport: capped exponential backoff with seeded
// jitter, aware of the caller's remaining deadline budget.
//
// Determinism matters here: the simulation and test harnesses replay traffic
// and expect identical schedules, so jitter comes from a splitmix64 stream
// seeded by the policy (never math/rand, per daggervet's simdeterminism rule).
package retry

import (
	"errors"
	"time"
)

// Policy describes a backoff schedule. The zero value is not useful; start
// from Default and override fields.
type Policy struct {
	// MaxAttempts bounds the total number of tries (first call included).
	MaxAttempts int
	// Base is the delay before the first retry.
	Base time.Duration
	// Max caps the exponentially growing delay.
	Max time.Duration
	// Multiplier scales the delay between attempts (typically 2).
	Multiplier float64
	// Jitter is the fraction of the computed delay randomized away, in
	// [0, 1]. 0.2 means the delay is drawn from [0.8d, d].
	Jitter float64
	// Seed feeds the deterministic jitter stream. Two policies with equal
	// fields produce identical schedules.
	Seed uint64
}

// Default is a conservative schedule: 3 attempts, 1ms base doubling to a 50ms
// cap, 20% jitter.
var Default = Policy{
	MaxAttempts: 3,
	Base:        time.Millisecond,
	Max:         50 * time.Millisecond,
	Multiplier:  2,
	Jitter:      0.2,
	Seed:        0x9E3779B97F4A7C15,
}

// ErrBudgetExhausted reports that the remaining deadline budget cannot absorb
// the next backoff delay, so retrying would only produce doomed work.
var ErrBudgetExhausted = errors.New("retry: deadline budget exhausted")

// Backoff returns the delay before retry attempt `attempt` (1-based: attempt
// 1 is the first retry). The schedule is exponential from Base with the
// policy's cap and deterministic jitter; attempts < 1 return 0.
func (p Policy) Backoff(attempt int) time.Duration {
	if attempt < 1 || p.Base <= 0 {
		return 0
	}
	d := float64(p.Base)
	mult := p.Multiplier
	if mult < 1 {
		mult = 1
	}
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.Max > 0 && d >= float64(p.Max) {
			d = float64(p.Max)
			break
		}
	}
	if p.Max > 0 && d > float64(p.Max) {
		d = float64(p.Max)
	}
	if p.Jitter > 0 {
		// Deterministic draw in [1-Jitter, 1] from a splitmix64 stream
		// keyed by (Seed, attempt). Jitter is clamped to [0, 1]: a larger
		// value would scale the delay negative, and a negative delay fires
		// a retry immediately — the opposite of backing off.
		jitter := p.Jitter
		if jitter > 1 {
			jitter = 1
		}
		u := splitmix64(p.Seed + uint64(attempt))
		frac := float64(u>>11) / (1 << 53) // [0, 1)
		d *= 1 - jitter*frac
	}
	return time.Duration(d)
}

// ScaledBackoff is Backoff with an integer congestion multiplier applied
// after the cap: a connection whose peer reported congestion
// (dataplane.BackoffScale of its occupancy hint) waits scale times longer
// between attempts, deliberately beyond Policy.Max — the cap bounds the
// uncongested schedule, not the congestion reaction. scale < 1 is treated
// as 1.
func (p Policy) ScaledBackoff(attempt, scale int) time.Duration {
	d := p.Backoff(attempt)
	if scale > 1 {
		d *= time.Duration(scale)
	}
	return d
}

// minHeadroom is the floor on the work headroom NextDelay demands beyond
// the backoff delay. A Policy with Base <= 0 would otherwise demand zero
// headroom and admit retries whose budget expires the moment they arrive.
const minHeadroom = 100 * time.Microsecond

// NextDelay returns the backoff before retry `attempt` and whether the
// caller's remaining budget can absorb that delay (with headroom for the call
// itself). remaining <= 0 means no deadline: always ok.
func (p Policy) NextDelay(attempt int, remaining time.Duration) (time.Duration, bool) {
	return p.NextDelayScaled(attempt, remaining, 1)
}

// NextDelayScaled is NextDelay with a congestion backoff multiplier (see
// ScaledBackoff); the budget check is applied to the scaled delay, so a
// congested connection gives up on doomed retries sooner.
func (p Policy) NextDelayScaled(attempt int, remaining time.Duration, scale int) (time.Duration, bool) {
	d := p.ScaledBackoff(attempt, scale)
	if remaining <= 0 {
		return d, true
	}
	// Require the budget to cover the delay plus headroom for the call
	// itself — at least one base delay, floored at minHeadroom so a
	// zero-Base policy cannot admit retries that are doomed on arrival.
	headroom := p.Base
	if headroom < minHeadroom {
		headroom = minHeadroom
	}
	if remaining <= d+headroom {
		return d, false
	}
	return d, true
}

// splitmix64 advances the splitmix64 generator one step from x.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	z := x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
