package retry

import (
	"testing"
	"time"
)

func TestBackoffMonotoneAndCapped(t *testing.T) {
	p := Policy{MaxAttempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond, Multiplier: 2}
	prev := time.Duration(0)
	for a := 1; a <= 8; a++ {
		d := p.Backoff(a)
		if d < prev {
			t.Fatalf("attempt %d: backoff %v < previous %v (no jitter set)", a, d, prev)
		}
		if d > p.Max {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", a, d, p.Max)
		}
		prev = d
	}
	if got := p.Backoff(1); got != time.Millisecond {
		t.Fatalf("first retry delay = %v, want Base", got)
	}
	if got := p.Backoff(8); got != 8*time.Millisecond {
		t.Fatalf("late retry delay = %v, want cap", got)
	}
	if p.Backoff(0) != 0 || p.Backoff(-3) != 0 {
		t.Fatal("non-positive attempts must not delay")
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := Default
	q := Default
	for a := 1; a <= 5; a++ {
		if p.Backoff(a) != q.Backoff(a) {
			t.Fatalf("attempt %d: equal policies disagree", a)
		}
	}
	// Jitter shrinks the delay by at most the jitter fraction.
	noJitter := p
	noJitter.Jitter = 0
	for a := 1; a <= 5; a++ {
		d, full := p.Backoff(a), noJitter.Backoff(a)
		if d > full {
			t.Fatalf("attempt %d: jittered %v > unjittered %v", a, d, full)
		}
		if min := time.Duration(float64(full) * (1 - p.Jitter)); d < min {
			t.Fatalf("attempt %d: jittered %v below floor %v", a, d, min)
		}
	}
	// Different seeds give different schedules (with overwhelming odds).
	other := p
	other.Seed++
	same := true
	for a := 1; a <= 5; a++ {
		if p.Backoff(a) != other.Backoff(a) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

func TestNextDelayBudgetAware(t *testing.T) {
	p := Policy{MaxAttempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond, Multiplier: 2}
	if _, ok := p.NextDelay(1, 0); !ok {
		t.Fatal("no deadline must always allow a retry")
	}
	if _, ok := p.NextDelay(1, time.Second); !ok {
		t.Fatal("ample budget refused")
	}
	if _, ok := p.NextDelay(1, 500*time.Microsecond); ok {
		t.Fatal("retry allowed with budget smaller than the delay")
	}
	// Budget covers the delay but leaves no room for the call itself.
	d := p.Backoff(2)
	if _, ok := p.NextDelay(2, d+p.Base/2); ok {
		t.Fatal("retry allowed with no headroom for the call")
	}
}

// Regression: Jitter > 1 used to scale delays negative (d *= 1 - Jitter*frac
// with frac near 1), making "backoff" fire immediately. The fraction is now
// clamped to [0, 1].
func TestBackoffJitterClamped(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: time.Millisecond, Max: 50 * time.Millisecond,
		Multiplier: 2, Jitter: 3.5, Seed: 1}
	for a := 1; a <= 20; a++ {
		if d := p.Backoff(a); d < 0 {
			t.Fatalf("attempt %d: negative backoff %v from Jitter > 1", a, d)
		}
	}
	// Clamped jitter must behave exactly like Jitter = 1.
	one := p
	one.Jitter = 1
	for a := 1; a <= 20; a++ {
		if p.Backoff(a) != one.Backoff(a) {
			t.Fatalf("attempt %d: Jitter 3.5 and Jitter 1 schedules diverge", a)
		}
	}
}

// Regression: with Base <= 0 the headroom check degenerated to
// remaining <= d+0, admitting retries whose budget expires on arrival. A
// positive headroom floor is now required.
func TestNextDelayHeadroomFloor(t *testing.T) {
	p := Policy{MaxAttempts: 3, Base: 0, Max: 10 * time.Millisecond, Multiplier: 2}
	// Base 0 means Backoff is 0; a 1ns budget used to pass (1 > 0+0).
	if _, ok := p.NextDelay(1, time.Nanosecond); ok {
		t.Fatal("doomed retry admitted with zero-Base policy")
	}
	if _, ok := p.NextDelay(1, 50*time.Microsecond); ok {
		t.Fatal("retry admitted below the headroom floor")
	}
	if _, ok := p.NextDelay(1, time.Second); !ok {
		t.Fatal("ample budget refused under zero-Base policy")
	}
}

func TestScaledBackoff(t *testing.T) {
	p := Policy{MaxAttempts: 5, Base: time.Millisecond, Max: 8 * time.Millisecond, Multiplier: 2}
	for a := 1; a <= 5; a++ {
		base := p.Backoff(a)
		if got := p.ScaledBackoff(a, 1); got != base {
			t.Fatalf("attempt %d: scale 1 changed delay %v -> %v", a, base, got)
		}
		if got := p.ScaledBackoff(a, 0); got != base {
			t.Fatalf("attempt %d: scale 0 not treated as 1", a)
		}
		if got := p.ScaledBackoff(a, 4); got != 4*base {
			t.Fatalf("attempt %d: scale 4 = %v, want %v", a, got, 4*base)
		}
	}
	// The congestion scale intentionally exceeds the uncongested cap.
	if got := p.ScaledBackoff(5, 4); got != 32*time.Millisecond {
		t.Fatalf("scaled capped delay = %v, want 32ms", got)
	}
	// The scaled delay is what the budget check sees.
	d := p.Backoff(1) // 1ms
	if _, ok := p.NextDelayScaled(1, 2*d+p.Base/2, 4); ok {
		t.Fatal("budget check ignored the congestion scale")
	}
	if _, ok := p.NextDelayScaled(1, 10*d, 4); !ok {
		t.Fatal("ample budget refused under scale")
	}
}
