package retry

import (
	"testing"
	"time"
)

func TestBackoffMonotoneAndCapped(t *testing.T) {
	p := Policy{MaxAttempts: 8, Base: time.Millisecond, Max: 8 * time.Millisecond, Multiplier: 2}
	prev := time.Duration(0)
	for a := 1; a <= 8; a++ {
		d := p.Backoff(a)
		if d < prev {
			t.Fatalf("attempt %d: backoff %v < previous %v (no jitter set)", a, d, prev)
		}
		if d > p.Max {
			t.Fatalf("attempt %d: backoff %v exceeds cap %v", a, d, p.Max)
		}
		prev = d
	}
	if got := p.Backoff(1); got != time.Millisecond {
		t.Fatalf("first retry delay = %v, want Base", got)
	}
	if got := p.Backoff(8); got != 8*time.Millisecond {
		t.Fatalf("late retry delay = %v, want cap", got)
	}
	if p.Backoff(0) != 0 || p.Backoff(-3) != 0 {
		t.Fatal("non-positive attempts must not delay")
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := Default
	q := Default
	for a := 1; a <= 5; a++ {
		if p.Backoff(a) != q.Backoff(a) {
			t.Fatalf("attempt %d: equal policies disagree", a)
		}
	}
	// Jitter shrinks the delay by at most the jitter fraction.
	noJitter := p
	noJitter.Jitter = 0
	for a := 1; a <= 5; a++ {
		d, full := p.Backoff(a), noJitter.Backoff(a)
		if d > full {
			t.Fatalf("attempt %d: jittered %v > unjittered %v", a, d, full)
		}
		if min := time.Duration(float64(full) * (1 - p.Jitter)); d < min {
			t.Fatalf("attempt %d: jittered %v below floor %v", a, d, min)
		}
	}
	// Different seeds give different schedules (with overwhelming odds).
	other := p
	other.Seed++
	same := true
	for a := 1; a <= 5; a++ {
		if p.Backoff(a) != other.Backoff(a) {
			same = false
		}
	}
	if same {
		t.Fatal("distinct seeds produced identical schedules")
	}
}

func TestNextDelayBudgetAware(t *testing.T) {
	p := Policy{MaxAttempts: 3, Base: time.Millisecond, Max: 10 * time.Millisecond, Multiplier: 2}
	if _, ok := p.NextDelay(1, 0); !ok {
		t.Fatal("no deadline must always allow a retry")
	}
	if _, ok := p.NextDelay(1, time.Second); !ok {
		t.Fatal("ample budget refused")
	}
	if _, ok := p.NextDelay(1, 500*time.Microsecond); ok {
		t.Fatal("retry allowed with budget smaller than the delay")
	}
	// Budget covers the delay but leaves no room for the call itself.
	d := p.Backoff(2)
	if _, ok := p.NextDelay(2, d+p.Base/2); ok {
		t.Fatal("retry allowed with no headroom for the call")
	}
}
