// Package interconnect models the CPU–NIC I/O interfaces compared in the
// paper (§4.3–4.4, Figure 10): the three standard PCIe-based transfer
// methods — MMIO (WQE-by-MMIO), doorbell, and doorbell batching — and
// Dagger's memory-interconnect interface over UPI encapsulated in CCI-P.
//
// The models are transaction-level: each interface is characterized by the
// CPU time a core spends per RPC (which bounds per-core throughput), the
// bus delivery latency per transfer in each direction, how batching
// amortizes the per-transaction cost, and the interconnect's outstanding
// request limit. The paper argues (§4.3) that the performance difference
// between PCIe and memory interconnects comes from the logical
// communication model, not the physical bandwidth — exactly the level this
// model captures. Calibration constants are taken from the paper: UPI
// delivers software-buffer data to the NIC in 400 ns with another 400 ns of
// bookkeeping, CCI-P supports 128 outstanding requests, PCIe DMA reads
// measure ~450 ns vs ~400 ns for UPI.
package interconnect

import (
	"fmt"

	"dagger/internal/sim"
)

// Kind selects a CPU–NIC interface family.
type Kind int

// Interface families (§4.4.1).
const (
	// MMIO transfers every RPC with write-combined / AVX MMIO stores
	// (WQE-by-MMIO): lowest PCIe latency, throughput limited by MMIO issue
	// rate.
	MMIO Kind = iota
	// Doorbell uses descriptor writes + an MMIO doorbell + a NIC DMA fetch
	// per request.
	Doorbell
	// DoorbellBatch groups B requests into one DMA initiated by one
	// doorbell.
	DoorbellBatch
	// UPI is Dagger's memory-interconnect interface: the CPU writes RPCs to
	// a shared buffer; coherence state machines deliver the lines to the
	// NIC with no explicit notification.
	UPI
)

func (k Kind) String() string {
	switch k {
	case MMIO:
		return "MMIO"
	case Doorbell:
		return "Doorbell"
	case DoorbellBatch:
		return "DoorbellBatch"
	case UPI:
		return "UPI"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Timing constants calibrated from the paper (§4.3–4.4, §5.3). All values
// are simulated nanoseconds.
const (
	// UPIDeliver is the one-way software-buffer-to-NIC delivery latency
	// over CCI-P/UPI (§4.4: "delivers data ... within 400 ns").
	UPIDeliver sim.Time = 400
	// UPIBookkeep is the reverse bookkeeping latency (§4.4).
	UPIBookkeep sim.Time = 400
	// PCIeDMARead is the measured PCIe DMA shared-memory read latency
	// (§5.3's raw comparison: 450 ns vs 400 ns for UPI).
	PCIeDMARead sim.Time = 450
	// MMIOWrite is the one-way latency of a non-cacheable AVX MMIO write
	// reaching NIC registers.
	MMIOWrite sim.Time = 800
	// DoorbellTx is the one-way submission latency of the doorbell method:
	// descriptor write flush + doorbell MMIO + DMA descriptor/payload
	// fetch (two PCIe crossings on top of the MMIO).
	DoorbellTx sim.Time = 1250
	// PCIeRxDeliver is the NIC-to-host DMA write + polling pickup latency
	// on the receive path of PCIe interfaces.
	PCIeRxDeliver sim.Time = 600
	// UPIRxDeliver is the NIC-to-host delivery over the coherent bus.
	UPIRxDeliver sim.Time = 300
	// CCIPMaxOutstanding is the CCI-P in-flight request limit (§4.4).
	CCIPMaxOutstanding = 128
)

// Per-RPC CPU-cost model constants (ns of core time), calibrated so that
// single-core saturation throughput matches Figure 10: throughput = 1e9 /
// (TxCPU + RxCPU) rps.
const (
	mmioCPUPerRPC     = 238.0 // 2x AVX non-cacheable stores + stall: 4.2 Mrps
	doorbellCPUFixed  = 70.0  // descriptor write + bookkeeping
	doorbellCPUPerRPC = 8.0   // per-request DMA completion handling
	doorbellMMIOCost  = 162.0 // the doorbell MMIO itself, amortized by B
	upiCPUFixed       = 68.0  // shared-buffer write + completion polling
	upiCPUPerBatch    = 55.0  // cache-line ownership handoff, amortized by B
)

// Config describes one concrete CPU–NIC interface instance.
type Config struct {
	Kind  Kind
	Batch int // batching width B (>=1); meaningful for DoorbellBatch and UPI
	// AutoBatch lets the soft-reconfiguration unit adjust the effective
	// batch width with load (Fig. 11's "B = auto" curve): batches flush
	// early when the offered load is too low to fill them.
	AutoBatch bool
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Batch < 1 {
		return fmt.Errorf("interconnect: batch must be >= 1, got %d", c.Batch)
	}
	if c.Kind == MMIO && c.Batch != 1 {
		return fmt.Errorf("interconnect: MMIO cannot batch")
	}
	if c.Kind == Doorbell && c.Batch != 1 {
		return fmt.Errorf("interconnect: plain doorbell has B=1; use DoorbellBatch")
	}
	return nil
}

// Name returns the display name used in Figure 10's x-axis.
func (c Config) Name() string {
	switch c.Kind {
	case MMIO:
		return "MMIO"
	case Doorbell:
		return "Doorbell"
	case DoorbellBatch:
		return fmt.Sprintf("Doorbell, B = %d", c.Batch)
	case UPI:
		if c.AutoBatch {
			return "UPI, B = auto"
		}
		return fmt.Sprintf("UPI, B = %d", c.Batch)
	}
	return "unknown"
}

// CPUPerRPC returns the core time consumed per RPC on the submission side,
// with batch amortization applied. This is the quantity that bounds
// per-core RPC throughput.
func (c Config) CPUPerRPC() sim.Time {
	b := float64(c.Batch)
	switch c.Kind {
	case MMIO:
		return sim.Time(mmioCPUPerRPC)
	case Doorbell, DoorbellBatch:
		return sim.Time(doorbellCPUFixed + doorbellCPUPerRPC + doorbellMMIOCost/b)
	case UPI:
		return sim.Time(upiCPUFixed + upiCPUPerBatch/b)
	}
	panic("interconnect: unknown kind")
}

// TxCPU returns the submission-side share of the per-RPC core cost.
func (c Config) TxCPU() sim.Time {
	return sim.Time(float64(c.CPUPerRPC()) * 0.6)
}

// RxCPU returns the completion-side share of the per-RPC core cost.
func (c Config) RxCPU() sim.Time {
	return c.CPUPerRPC() - c.TxCPU()
}

// WithBatch returns a copy of the config with batch width b (used by the
// soft-reconfiguration unit's adaptive batching).
func (c Config) WithBatch(b int) Config {
	c.Batch = b
	return c
}

// TxDeliver returns the one-way submission latency from CPU buffers to NIC
// logic for one batch.
func (c Config) TxDeliver() sim.Time {
	switch c.Kind {
	case MMIO:
		return MMIOWrite
	case Doorbell, DoorbellBatch:
		return DoorbellTx
	case UPI:
		return UPIDeliver
	}
	panic("interconnect: unknown kind")
}

// RxDeliver returns the one-way NIC-to-host delivery latency.
func (c Config) RxDeliver() sim.Time {
	switch c.Kind {
	case UPI:
		return UPIRxDeliver
	default:
		return PCIeRxDeliver
	}
}

// MaxOutstanding returns the interconnect's in-flight transfer limit.
func (c Config) MaxOutstanding() int { return CCIPMaxOutstanding }

// SaturationRPS returns the analytic single-core saturation throughput in
// requests/second implied by the CPU cost model (used for sanity checks and
// sweep sizing; the DES measures the real value including queueing).
func (c Config) SaturationRPS() float64 {
	return 1e9 / float64(c.CPUPerRPC())
}

// Fig10Configs returns the seven interface variants evaluated in Figure 10,
// in the paper's order.
func Fig10Configs() []Config {
	return []Config{
		{Kind: MMIO, Batch: 1},
		{Kind: Doorbell, Batch: 1},
		{Kind: DoorbellBatch, Batch: 3},
		{Kind: DoorbellBatch, Batch: 7},
		{Kind: DoorbellBatch, Batch: 11},
		{Kind: UPI, Batch: 1},
		{Kind: UPI, Batch: 4},
	}
}
