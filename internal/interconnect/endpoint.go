package interconnect

import "dagger/internal/sim"

// Endpoint models the FPGA-side UPI/CCI-P endpoint IP in the blue bitstream.
// The paper's thread-scaling experiment (§5.5, Fig. 11 right) shows the
// endpoint — not the CPU or the NIC pipeline — is the multi-thread
// bottleneck: raw UPI reads flatten at ~80 Mrps, end-to-end RPCs at
// ~42 Mrps. We model it as a deterministic single server with a fixed
// per-request service time.
type Endpoint struct {
	eng       *sim.Engine
	svc       sim.Time
	busyUntil sim.Time
	served    uint64
}

// Endpoint service times implied by the measured saturation rates. An
// end-to-end RPC crosses the endpoint twice (request into the NIC, response
// out of the peer NIC instance on the same FPGA), so 12 ns per crossing
// caps end-to-end traffic at ~42 Mrps; a raw idle read crosses once,
// capping at ~83 Mrps.
const (
	// EndpointRPCService is the per-crossing service time for RPC traffic.
	EndpointRPCService sim.Time = 12
	// EndpointRawService is the service time for raw idle memory reads.
	EndpointRawService sim.Time = 12
)

// NewEndpoint creates an endpoint with a per-request service time.
func NewEndpoint(eng *sim.Engine, serviceTime sim.Time) *Endpoint {
	if serviceTime <= 0 {
		panic("interconnect: endpoint service time must be positive")
	}
	return &Endpoint{eng: eng, svc: serviceTime}
}

// Admit serializes one request through the endpoint; fn runs when the
// request's service completes.
func (ep *Endpoint) Admit(fn func()) {
	start := ep.eng.Now()
	if ep.busyUntil > start {
		start = ep.busyUntil
	}
	ep.busyUntil = start + ep.svc
	ep.served++
	ep.eng.At(ep.busyUntil, fn)
}

// QueueDelay reports how long a request admitted now would wait before
// service begins.
func (ep *Endpoint) QueueDelay() sim.Time {
	if ep.busyUntil <= ep.eng.Now() {
		return 0
	}
	return ep.busyUntil - ep.eng.Now()
}

// Served returns the number of admitted requests.
func (ep *Endpoint) Served() uint64 { return ep.served }

// SMT models simultaneous multithreading slowdown: when two logical threads
// share one physical core, each runs at SMTFactor of its solo speed. The
// paper's platform is a 12-core, 2-thread/core Broadwell (Table 2); its
// scaling run packs 2 threads per core, which is why 4 threads reach
// ~42 Mrps rather than 4x12.4.
const SMTFactor = 0.85

// ThreadCPUPerRPC returns the effective per-RPC CPU cost for a thread given
// how many logical threads share its physical core.
func ThreadCPUPerRPC(cfg Config, threadsOnCore int) sim.Time {
	base := float64(cfg.CPUPerRPC())
	if threadsOnCore > 1 {
		base /= SMTFactor
	}
	return sim.Time(base)
}
