package interconnect

import (
	"math"
	"testing"

	"dagger/internal/sim"
)

func TestConfigValidation(t *testing.T) {
	good := []Config{
		{Kind: MMIO, Batch: 1},
		{Kind: Doorbell, Batch: 1},
		{Kind: DoorbellBatch, Batch: 11},
		{Kind: UPI, Batch: 4},
		{Kind: UPI, Batch: 1, AutoBatch: true},
	}
	for _, c := range good {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: unexpected error %v", c.Name(), err)
		}
	}
	bad := []Config{
		{Kind: MMIO, Batch: 4},
		{Kind: Doorbell, Batch: 2},
		{Kind: UPI, Batch: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("%+v: validation passed, want error", c)
		}
	}
}

// The CPU cost model must land the single-core saturation throughputs of
// Figure 10 within 10%.
func TestSaturationMatchesFigure10(t *testing.T) {
	want := map[string]float64{ // Mrps from Fig. 10
		"MMIO":             4.2,
		"Doorbell":         4.3,
		"Doorbell, B = 3":  7.9,
		"Doorbell, B = 7":  9.9,
		"Doorbell, B = 11": 10.8,
		"UPI, B = 1":       8.1,
		"UPI, B = 4":       12.4,
	}
	for _, cfg := range Fig10Configs() {
		got := cfg.SaturationRPS() / 1e6
		paper := want[cfg.Name()]
		if math.Abs(got-paper)/paper > 0.10 {
			t.Errorf("%s: saturation %.1f Mrps, paper %.1f (>10%% off)", cfg.Name(), got, paper)
		}
	}
}

// Figure 10's ordering: UPI beats doorbell batching beats plain doorbell
// and MMIO on throughput; UPI has the lowest submission latency.
func TestInterfaceOrdering(t *testing.T) {
	upi4 := Config{Kind: UPI, Batch: 4}
	upi1 := Config{Kind: UPI, Batch: 1}
	db11 := Config{Kind: DoorbellBatch, Batch: 11}
	db1 := Config{Kind: Doorbell, Batch: 1}
	mmio := Config{Kind: MMIO, Batch: 1}

	if upi4.SaturationRPS() <= db11.SaturationRPS() {
		t.Error("UPI B=4 should out-throughput doorbell B=11")
	}
	if db11.SaturationRPS() <= db1.SaturationRPS() {
		t.Error("doorbell batching should beat plain doorbell")
	}
	if upi1.SaturationRPS() <= mmio.SaturationRPS() {
		t.Error("UPI B=1 should out-throughput MMIO")
	}
	if upi1.TxDeliver() >= mmio.TxDeliver() {
		t.Error("UPI delivery should be faster than MMIO")
	}
	if db1.TxDeliver() <= mmio.TxDeliver() {
		t.Error("doorbell submission path should be slower than MMIO")
	}
}

func TestPaperTimingConstants(t *testing.T) {
	// §4.4: UPI delivers within 400 ns, bookkeeping another 400 ns.
	if UPIDeliver != 400 || UPIBookkeep != 400 {
		t.Error("UPI constants drifted from the paper")
	}
	// §5.3: PCIe DMA 450 ns vs UPI 400 ns — UPI is "physically slightly
	// faster than PCIe".
	if PCIeDMARead <= UPIDeliver {
		t.Error("PCIe DMA read should be slower than UPI read")
	}
	if CCIPMaxOutstanding != 128 {
		t.Error("CCI-P outstanding limit should be 128")
	}
}

func TestBatchAmortization(t *testing.T) {
	prev := sim.Time(1 << 62)
	for _, b := range []int{1, 2, 4, 8, 16} {
		c := Config{Kind: UPI, Batch: b}
		cost := c.CPUPerRPC()
		if cost >= prev {
			t.Errorf("UPI B=%d cost %v not below B smaller", b, cost)
		}
		prev = cost
	}
}

func TestConfigNames(t *testing.T) {
	if (Config{Kind: DoorbellBatch, Batch: 7}).Name() != "Doorbell, B = 7" {
		t.Error("doorbell batch name")
	}
	if (Config{Kind: UPI, Batch: 1, AutoBatch: true}).Name() != "UPI, B = auto" {
		t.Error("auto batch name")
	}
}

func TestEndpointSerializes(t *testing.T) {
	eng := sim.NewEngine()
	ep := NewEndpoint(eng, 10)
	var done []sim.Time
	for i := 0; i < 5; i++ {
		ep.Admit(func() { done = append(done, eng.Now()) })
	}
	eng.Run()
	for i, at := range done {
		want := sim.Time((i + 1) * 10)
		if at != want {
			t.Fatalf("request %d completed at %v, want %v", i, at, want)
		}
	}
}

func TestEndpointRateCap(t *testing.T) {
	// Offer 100 Mrps to an endpoint that can serve ~42 Mrps; completions
	// must be capped near the service rate.
	eng := sim.NewEngine()
	ep := NewEndpoint(eng, EndpointRPCService)
	completed := 0
	gap := sim.Time(10) // 100 Mrps offered
	var offer func()
	n := 0
	offer = func() {
		if n >= 100_000 {
			return
		}
		n++
		// An RPC crosses the endpoint twice (request + response).
		ep.Admit(func() {})
		ep.Admit(func() { completed++ })
		eng.After(gap, offer)
	}
	eng.After(0, offer)
	eng.RunUntil(1 * sim.Millisecond)
	rate := float64(completed) / 1e-3 / 1e6 // Mrps
	if rate < 38 || rate > 45 {
		t.Fatalf("endpoint-capped rate = %.1f Mrps, want ~41.7", rate)
	}
}

func TestEndpointIdleNoDelay(t *testing.T) {
	eng := sim.NewEngine()
	ep := NewEndpoint(eng, 100)
	if ep.QueueDelay() != 0 {
		t.Fatal("idle endpoint reports queue delay")
	}
	ep.Admit(func() {})
	if ep.QueueDelay() != 100 {
		t.Fatalf("queue delay = %v, want 100", ep.QueueDelay())
	}
	eng.Run()
	if ep.Served() != 1 {
		t.Fatalf("served = %d", ep.Served())
	}
}

func TestThreadCPUPerRPC(t *testing.T) {
	cfg := Config{Kind: UPI, Batch: 4}
	solo := ThreadCPUPerRPC(cfg, 1)
	shared := ThreadCPUPerRPC(cfg, 2)
	if solo != cfg.CPUPerRPC() {
		t.Error("solo thread cost should equal config cost")
	}
	if float64(shared) <= float64(solo) {
		t.Error("SMT sharing should inflate per-thread cost")
	}
}

func TestFig10ConfigsComplete(t *testing.T) {
	cfgs := Fig10Configs()
	if len(cfgs) != 7 {
		t.Fatalf("Fig10 variants = %d, want 7", len(cfgs))
	}
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", c.Name(), err)
		}
	}
}

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{MMIO: "MMIO", Doorbell: "Doorbell", DoorbellBatch: "DoorbellBatch", UPI: "UPI"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q", int(k), k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestCPUCostSplit(t *testing.T) {
	for _, cfg := range Fig10Configs() {
		tx, rx := cfg.TxCPU(), cfg.RxCPU()
		if tx+rx != cfg.CPUPerRPC() {
			t.Errorf("%s: tx+rx = %v != total %v", cfg.Name(), tx+rx, cfg.CPUPerRPC())
		}
		if tx <= rx {
			t.Errorf("%s: submission share should dominate", cfg.Name())
		}
	}
}

func TestWithBatch(t *testing.T) {
	base := Config{Kind: UPI, Batch: 1}
	b4 := base.WithBatch(4)
	if b4.Batch != 4 || base.Batch != 1 {
		t.Fatal("WithBatch should copy, not mutate")
	}
	if b4.CPUPerRPC() >= base.CPUPerRPC() {
		t.Fatal("larger batch should amortize CPU cost")
	}
}

func TestRxDeliverPerFamily(t *testing.T) {
	if (Config{Kind: UPI, Batch: 1}).RxDeliver() >= (Config{Kind: MMIO, Batch: 1}).RxDeliver() {
		t.Error("UPI receive delivery should beat PCIe")
	}
	for _, cfg := range Fig10Configs() {
		if cfg.MaxOutstanding() != CCIPMaxOutstanding {
			t.Errorf("%s: outstanding limit %d", cfg.Name(), cfg.MaxOutstanding())
		}
	}
}

func TestEndpointRejectsBadService(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero service time accepted")
		}
	}()
	NewEndpoint(sim.NewEngine(), 0)
}
