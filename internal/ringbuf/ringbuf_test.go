package ringbuf

import (
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

func TestRingBasics(t *testing.T) {
	r := New[int](4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d, want 4", r.Cap())
	}
	for i := 0; i < 4; i++ {
		if !r.Push(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if r.Push(99) {
		t.Fatal("push into full ring succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := r.Pop()
		if !ok || v != i {
			t.Fatalf("pop = %v,%v want %d", v, ok, i)
		}
	}
	if _, ok := r.Pop(); ok {
		t.Fatal("pop from empty ring succeeded")
	}
}

func TestRingCapacityRounding(t *testing.T) {
	if New[int](5).Cap() != 8 {
		t.Fatal("capacity 5 should round to 8")
	}
	if New[int](1).Cap() != 2 {
		t.Fatal("capacity 1 should round to 2")
	}
	if New[int](0).Cap() != 2 {
		t.Fatal("capacity 0 should round to 2")
	}
}

func TestRingWrapAround(t *testing.T) {
	r := New[int](2)
	for round := 0; round < 1000; round++ {
		if !r.Push(round) {
			t.Fatalf("push failed at round %d", round)
		}
		v, ok := r.Pop()
		if !ok || v != round {
			t.Fatalf("round %d: got %v,%v", round, v, ok)
		}
	}
}

// Property: single-threaded push/pop sequences behave exactly like a FIFO.
func TestRingFIFOProperty(t *testing.T) {
	f := func(ops []int8) bool {
		r := New[int](64)
		var model []int
		next := 0
		for _, op := range ops {
			if op >= 0 {
				pushed := r.Push(next)
				if pushed != (len(model) < 64) {
					return false
				}
				if pushed {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.Pop()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return r.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRingSPSCConcurrent(t *testing.T) {
	r := New[uint64](256)
	const n = 50_000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := uint64(0); i < n; {
			if r.Push(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	var sum uint64
	go func() {
		defer wg.Done()
		for c := 0; c < n; {
			if v, ok := r.Pop(); ok {
				if v != uint64(c) {
					t.Errorf("out of order: got %d want %d", v, c)
					return
				}
				sum += v
				c++
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if want := uint64(n) * (n - 1) / 2; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
}

func TestRingMPMCConcurrent(t *testing.T) {
	r := New[int](128)
	const producers, perProducer = 4, 5_000
	var wg sync.WaitGroup
	wg.Add(producers)
	for p := 0; p < producers; p++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; {
				if r.Push(1) {
					i++
				} else {
					runtime.Gosched()
				}
			}
		}()
	}
	done := make(chan struct{})
	total := 0
	go func() {
		defer close(done)
		for total < producers*perProducer {
			if v, ok := r.Pop(); ok {
				total += v
			} else {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	<-done
	if total != producers*perProducer {
		t.Fatalf("total = %d", total)
	}
}

func TestFreeList(t *testing.T) {
	f := NewFreeList(8)
	seen := map[uint32]bool{}
	for i := 0; i < 8; i++ {
		id, ok := f.Get()
		if !ok {
			t.Fatalf("get %d failed", i)
		}
		if seen[id] {
			t.Fatalf("duplicate slot %d", id)
		}
		seen[id] = true
	}
	if _, ok := f.Get(); ok {
		t.Fatal("get from exhausted free list succeeded")
	}
	f.Put(3)
	id, ok := f.Get()
	if !ok || id != 3 {
		t.Fatalf("got %d,%v want 3", id, ok)
	}
}

func TestFreeListAllIDsInRange(t *testing.T) {
	f := NewFreeList(5)
	for i := 0; i < 5; i++ {
		id, ok := f.Get()
		if !ok || id >= 5 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func BenchmarkRingPushPop(b *testing.B) {
	r := New[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(i)
		r.Pop()
	}
}

func BenchmarkRingSPSC(b *testing.B) {
	r := New[int](1024)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for c := 0; c < b.N; {
			if _, ok := r.Pop(); ok {
				c++
			} else {
				runtime.Gosched()
			}
		}
	}()
	b.ReportAllocs()
	for i := 0; i < b.N; {
		if r.Push(i) {
			i++
		} else {
			runtime.Gosched()
		}
	}
	<-done
}
