package ringbuf

import (
	"sync"
	"testing"
)

func TestBufPoolGetLenAndCap(t *testing.T) {
	p := NewBufPool(4, nil, 64, 256, 1024)
	for _, n := range []int{1, 63, 64, 65, 256, 1000, 1024} {
		b := p.Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d) len = %d", n, len(b))
		}
		if cap(b) < n {
			t.Fatalf("Get(%d) cap = %d < n", n, cap(b))
		}
	}
	if b := p.Get(0); b != nil {
		t.Fatal("Get(0) should be nil")
	}
	if b := p.Get(-1); b != nil {
		t.Fatal("Get(-1) should be nil")
	}
	// Oversized requests fall through to the allocator.
	if b := p.Get(4096); len(b) != 4096 {
		t.Fatal("oversized Get wrong length")
	}
}

func TestBufPoolRecyclesSameBuffer(t *testing.T) {
	p := NewBufPool(4, nil, 64, 256)
	b := p.Get(100)
	b[0] = 42
	p.Put(b)
	got := p.Get(100)
	if &got[0] != &b[0] {
		t.Fatal("Put then Get did not recycle the same buffer")
	}
	// A recycled buffer must satisfy any request up to its class size.
	p.Put(got)
	big := p.Get(256)
	if &big[0] != &b[0] {
		t.Fatal("recycled buffer not reused for a larger request within its class")
	}
}

func TestBufPoolClassPlacement(t *testing.T) {
	p := NewBufPool(4, nil, 64, 256)
	// A 256-cap buffer filed under the 256 class must never be returned
	// for... rather, must still satisfy Get(256); a 100-cap buffer must not.
	odd := make([]byte, 100)
	p.Put(odd) // cap 100: filed under class 64
	got := p.Get(256)
	if cap(got) < 256 {
		t.Fatalf("Get(256) returned cap %d", cap(got))
	}
	// The 100-cap buffer was filed under the 64 class (largest class its
	// capacity satisfies), so it serves requests up to 64 bytes.
	small := p.Get(60)
	if &small[0] != &odd[0] {
		t.Fatal("100-cap buffer should satisfy Get(60) from the 64 class")
	}
	// Tiny and nil buffers are dropped, not filed.
	p.Put(make([]byte, 10))
	p.Put(nil)
	if b := p.Get(32); cap(b) < 32 {
		t.Fatal("Get after dropped Put returned bad buffer")
	}
}

func TestBufPoolParentSpillAndRefill(t *testing.T) {
	parent := NewBufPool(8, nil, 64)
	child := NewBufPool(2, parent, 64)
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 64)
	}
	// Child ring holds 2; the rest must spill to the parent.
	for _, b := range bufs {
		child.Put(b)
	}
	seen := map[*byte]bool{}
	for i := 0; i < 4; i++ {
		b := child.Get(64)
		seen[&b[0]] = true
	}
	for i, b := range bufs {
		if !seen[&b[0]] {
			t.Fatalf("buffer %d lost: neither child ring nor parent returned it", i)
		}
	}
}

func TestBufPoolConcurrent(t *testing.T) {
	parent := NewBufPool(64, nil, 64, 1024)
	child := NewBufPool(8, parent, 64, 1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				b := child.Get(1 + i%1024)
				b[0] = byte(i)
				child.Put(b)
			}
		}()
	}
	wg.Wait()
}

func TestBufPoolPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("no classes", func() { NewBufPool(4, nil) })
	mustPanic("descending classes", func() { NewBufPool(4, nil, 256, 64) })
	mustPanic("duplicate classes", func() { NewBufPool(4, nil, 64, 64) })
}
