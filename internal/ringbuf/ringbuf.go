// Package ringbuf provides the bounded lock-free rings that back Dagger's
// software side of the CPU–NIC interface: per-flow RX/TX rings and the
// free-slot FIFOs used for buffer bookkeeping (§4.4, Figure 8).
//
// The implementation is a Vyukov-style bounded MPMC queue with per-slot
// sequence numbers. Dagger normally uses it single-producer/single-consumer
// (one RpcClient or server dispatch thread per ring, the paper's lock-free
// provisioning), but the stronger MPMC guarantee also covers the shared-ring
// SRQ configuration where several connections share one RpcClient ring.
package ringbuf

import (
	"sync/atomic"
)

type slot[T any] struct {
	seq atomic.Uint64
	val T
}

// Ring is a bounded lock-free queue. Create with New.
type Ring[T any] struct {
	mask uint64
	buf  []slot[T]

	_   [56]byte // keep enqueue/dequeue cursors on separate cache lines
	enq atomic.Uint64
	_   [56]byte
	deq atomic.Uint64
}

// New creates a ring with the given capacity, rounded up to a power of two
// (minimum 2).
func New[T any](capacity int) *Ring[T] {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &Ring[T]{mask: uint64(n - 1), buf: make([]slot[T], n)}
	for i := range r.buf {
		r.buf[i].seq.Store(uint64(i))
	}
	return r
}

// Cap returns the ring capacity.
func (r *Ring[T]) Cap() int { return len(r.buf) }

// Len returns an instantaneous (racy under concurrency) occupancy estimate.
func (r *Ring[T]) Len() int {
	d := r.enq.Load() - r.deq.Load()
	if d > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(d)
}

// Push enqueues v, returning false if the ring is full.
func (r *Ring[T]) Push(v T) bool {
	for {
		pos := r.enq.Load()
		s := &r.buf[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos:
			if r.enq.CompareAndSwap(pos, pos+1) {
				s.val = v
				s.seq.Store(pos + 1)
				return true
			}
		case seq < pos:
			return false // full
		}
		// seq > pos: another producer advanced; retry.
	}
}

// Pop dequeues the oldest value, returning false if the ring is empty.
func (r *Ring[T]) Pop() (T, bool) {
	var zero T
	for {
		pos := r.deq.Load()
		s := &r.buf[pos&r.mask]
		seq := s.seq.Load()
		switch {
		case seq == pos+1:
			if r.deq.CompareAndSwap(pos, pos+1) {
				v := s.val
				s.val = zero
				s.seq.Store(pos + uint64(len(r.buf)))
				return v, true
			}
		case seq < pos+1:
			return zero, false // empty
		}
	}
}

// FreeList tracks free slot indices for a request table (the paper's "Free
// Slot FIFO", Figure 9B). It is a Ring[uint32] pre-filled with 0..n-1.
type FreeList struct {
	ring *Ring[uint32]
	size int
}

// NewFreeList creates a free list holding slot ids 0..n-1, all initially
// free.
func NewFreeList(n int) *FreeList {
	f := &FreeList{ring: New[uint32](n), size: n}
	for i := 0; i < n; i++ {
		if !f.ring.Push(uint32(i)) {
			panic("ringbuf: free list seed overflow")
		}
	}
	return f
}

// Get removes a free slot id, returning false if none are free.
func (f *FreeList) Get() (uint32, bool) { return f.ring.Pop() }

// Put returns a slot id to the free list. Returning more ids than the list's
// size indicates a double-free and panics.
func (f *FreeList) Put(id uint32) {
	if !f.ring.Push(id) {
		panic("ringbuf: free list overflow (double free?)")
	}
}

// Size returns the total number of slots managed.
func (f *FreeList) Size() int { return f.size }
