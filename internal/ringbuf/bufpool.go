package ringbuf

import "dagger/internal/metrics"

// BufPool is a size-classed free list of byte buffers, the software stand-in
// for the paper's free-buffer FIFOs (§4.4): the data path recycles frame and
// payload buffers through it instead of allocating per message.
//
// A pool holds one bounded MPMC Ring per size class. Get returns a buffer
// whose capacity is at least the requested length (contents undefined); Put
// files a buffer under the largest class that its capacity still satisfies,
// so a recycled buffer always honours Get's capacity contract.
//
// Pools form a two-level hierarchy: per-flow pools share a per-fabric parent.
// A Get that misses locally falls back to the parent before allocating, and a
// Put that overflows the local ring spills to the parent before dropping.
// That keeps buffers circulating even when they migrate between flows (for
// example frames injected by the UDP gateway into a local flow's ring).
type BufPool struct {
	parent  *BufPool
	classes []int // ascending buffer capacities
	rings   []*Ring[[]byte]

	// Loan accounting: buffers handed out by Get and relinquished via Put
	// (whether recycled, spilled, or dropped). At quiescence gets == puts,
	// which is how tests check that no code path leaks a pooled buffer.
	gets metrics.Counter
	puts metrics.Counter
}

// DescribeMetrics registers the pool's loan counters and a parked-buffer
// occupancy gauge into reg.
func (p *BufPool) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("pool.gets", &p.gets)
	reg.RegisterCounter("pool.puts", &p.puts)
	reg.Func("pool.occupancy", func() int64 {
		var parked int64
		for _, r := range p.rings {
			parked += int64(r.Len())
		}
		return parked
	})
}

// Loans returns the number of buffers handed out by Get and relinquished via
// Put. A steady-state imbalance (gets > puts after all traffic drains) means
// some consumer kept a pooled buffer without repaying it.
func (p *BufPool) Loans() (gets, puts uint64) {
	return p.gets.Load(), p.puts.Load()
}

// NewBufPool creates a pool with the given per-class ring capacity and
// ascending size classes. parent may be nil. Panics if classes is empty or
// not strictly ascending.
func NewBufPool(slots int, parent *BufPool, classes ...int) *BufPool {
	if len(classes) == 0 {
		panic("ringbuf: BufPool needs at least one size class")
	}
	p := &BufPool{parent: parent, classes: classes, rings: make([]*Ring[[]byte], len(classes))}
	prev := 0
	for i, c := range classes {
		if c <= prev {
			panic("ringbuf: BufPool size classes must be strictly ascending")
		}
		prev = c
		p.rings[i] = New[[]byte](slots)
	}
	return p
}

// Get returns a buffer of length n with capacity at least n and undefined
// contents. Requests larger than the biggest size class fall through to the
// allocator; n <= 0 returns nil.
func (p *BufPool) Get(n int) []byte {
	if n <= 0 {
		return nil
	}
	p.gets.Add(1)
	for i, c := range p.classes {
		if n > c {
			continue
		}
		if b, ok := p.rings[i].Pop(); ok {
			return b[:n]
		}
		if p.parent != nil {
			if b := p.parent.get(i, n); b != nil {
				return b
			}
		}
		return make([]byte, n, c)
	}
	return make([]byte, n)
}

// get pops from class ci or any larger class, without allocating. Used for
// parent fallback so a child miss never double-allocates.
func (p *BufPool) get(ci, n int) []byte {
	for i := ci; i < len(p.rings); i++ {
		if b, ok := p.rings[i].Pop(); ok {
			return b[:n]
		}
	}
	return nil
}

// Put recycles b. Buffers smaller than the smallest size class (or nil) are
// dropped; a full local ring spills to the parent pool; a full parent drops
// the buffer for the garbage collector.
func (p *BufPool) Put(b []byte) {
	if cap(b) > 0 {
		p.puts.Add(1)
	}
	p.put(b)
}

// put files b without touching the loan counters, so a spill to the parent
// pool is not double-counted as a second repayment.
func (p *BufPool) put(b []byte) {
	c := cap(b)
	if c < p.classes[0] {
		return
	}
	for i := len(p.classes) - 1; i >= 0; i-- {
		if c < p.classes[i] {
			continue
		}
		if p.rings[i].Push(b[:0]) {
			return
		}
		if p.parent != nil {
			p.parent.put(b)
		}
		return
	}
}
