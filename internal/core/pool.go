package core

import (
	"fmt"

	"dagger/internal/fabric"
)

// RpcClientPool encapsulates a pool of RpcClients that concurrently call
// remote procedures (§4.2). Each pooled client owns one NIC flow, giving
// lock-free per-client rings; the pool hands clients to application threads
// 1:1.
type RpcClientPool struct {
	clients []*RpcClient
}

// NewRpcClientPool creates size clients over flows [0, size) of nic.
func NewRpcClientPool(nic *fabric.SoftNIC, size int) (*RpcClientPool, error) {
	if size <= 0 {
		return nil, fmt.Errorf("core: pool size must be positive")
	}
	if size > nic.NumFlows() {
		return nil, fmt.Errorf("core: pool size %d exceeds NIC flows %d", size, nic.NumFlows())
	}
	p := &RpcClientPool{}
	for i := 0; i < size; i++ {
		c, err := NewRpcClient(nic, i)
		if err != nil {
			p.Close()
			return nil, err
		}
		p.clients = append(p.clients, c)
	}
	return p, nil
}

// Size returns the number of clients.
func (p *RpcClientPool) Size() int { return len(p.clients) }

// Client returns client i.
func (p *RpcClientPool) Client(i int) *RpcClient { return p.clients[i] }

// ConnectAll opens a connection to dst on every client and returns the
// connection ids, index-aligned with the clients.
func (p *RpcClientPool) ConnectAll(dst uint32) ([]uint32, error) {
	ids := make([]uint32, len(p.clients))
	for i, c := range p.clients {
		id, err := c.OpenConnection(dst)
		if err != nil {
			return nil, err
		}
		ids[i] = id
	}
	return ids, nil
}

// Close shuts down all clients.
func (p *RpcClientPool) Close() {
	for _, c := range p.clients {
		if c != nil {
			c.Close()
		}
	}
}
