package core_test

import (
	"context"
	"fmt"
	"log"

	"dagger/internal/core"
	"dagger/internal/fabric"
)

// Example demonstrates the §4.2 programming model: a server registering a
// remote procedure and a client calling it synchronously.
func Example() {
	fab := fabric.NewFabric()
	serverNIC, err := fab.CreateNIC(2, 1, 0)
	if err != nil {
		log.Fatal(err)
	}
	clientNIC, err := fab.CreateNIC(1, 1, 0)
	if err != nil {
		log.Fatal(err)
	}

	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	if err := srv.Register(0, "greeter.hello", func(_ context.Context, req []byte) ([]byte, error) {
		return append([]byte("hello, "), req...), nil
	}); err != nil {
		log.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		log.Fatal(err)
	}
	defer srv.Stop()

	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		log.Fatal(err)
	}
	resp, err := cli.Call(0, []byte("dagger"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(resp))
	// Output: hello, dagger
}

// ExampleRpcClient_CallAsync shows a non-blocking call completed through
// the client's CompletionQueue callback.
func ExampleRpcClient_CallAsync() {
	fab := fabric.NewFabric()
	serverNIC, _ := fab.CreateNIC(2, 1, 0)
	clientNIC, _ := fab.CreateNIC(1, 1, 0)
	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	_ = srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	_ = srv.Start()
	defer srv.Stop()
	cli, _ := core.NewRpcClient(clientNIC, 0)
	defer cli.Close()
	_, _ = cli.OpenConnection(2)

	done := make(chan struct{})
	_ = cli.CallAsync(0, []byte("async"), func(resp []byte, err error) {
		fmt.Println(string(resp), err)
		close(done)
	})
	<-done
	// Output: async <nil>
}
