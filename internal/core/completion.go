package core

import "sync"

// completion is one finished asynchronous RPC.
type completion struct {
	RPCID uint64
	FnID  uint16
	Resp  []byte
	Err   error
}

// Completion is the public view of a completed request.
type Completion struct {
	RPCID uint64
	FnID  uint16
	Resp  []byte
	Err   error
}

// CompletionQueue accumulates completed requests for asynchronous
// (non-blocking) calls (§4.2: "each RpcClient contains the associated
// CompletionQueue object which accumulates completed requests"). Completed
// entries can be polled, and per-call continuation callbacks are invoked by
// the receive path on arrival.
type CompletionQueue struct {
	mu      sync.Mutex
	entries []Completion
	count   uint64
}

// NewCompletionQueue returns an empty queue.
func NewCompletionQueue() *CompletionQueue {
	return &CompletionQueue{}
}

func (q *CompletionQueue) complete(c completion) {
	q.mu.Lock()
	q.entries = append(q.entries, Completion(c))
	q.count++
	q.mu.Unlock()
}

// Poll removes and returns up to max completed entries (all if max <= 0).
func (q *CompletionQueue) Poll(max int) []Completion {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := len(q.entries)
	if max > 0 && max < n {
		n = max
	}
	out := make([]Completion, n)
	copy(out, q.entries[:n])
	q.entries = q.entries[n:]
	return out
}

// Len returns the number of entries waiting to be polled.
func (q *CompletionQueue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.entries)
}

// Total returns the number of completions ever enqueued.
func (q *CompletionQueue) Total() uint64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.count
}
