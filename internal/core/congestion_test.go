package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/retry"
	"dagger/internal/wire"
)

// TestSubBudgetMatchesShedDecision pins the wire/core budget boundary: the
// saturating wire.SubBudget re-anchor and the server's ShedDecision are two
// views of the same dataplane policy, so for every (budget, elapsed) pair
// SubBudget must report expired exactly when the server would shed. It also
// pins the saturation properties that motivated SubBudget: a decrement never
// wraps below zero (the uint32 underflow this satellite fixes), and a live
// budget never re-anchors to 0, because 0 on the wire means "no deadline".
func TestSubBudgetMatchesShedDecision(t *testing.T) {
	type pair struct {
		budget  uint32
		elapsed uint64 // microseconds
	}
	rng := rand.New(rand.NewSource(46))
	var cases []pair
	for i := 0; i < 300; i++ {
		cases = append(cases, pair{uint32(rng.Intn(2000)), uint64(rng.Intn(3000))})
	}
	cases = append(cases,
		pair{100, 100},          // exact expiry
		pair{100, 99},           // one microsecond of life left
		pair{100, 101},          // would wrap without saturation
		pair{1, 1 << 40},        // elapsed far past uint32 range
		pair{0, 1 << 40},        // no deadline: never expires
		pair{wire.MaxBudget, 0}, // full budget, no time passed
		pair{wire.MaxBudget, uint64(wire.MaxBudget)},
	)

	base := time.Unix(2_000_000, 0)
	for _, c := range cases {
		remaining, expired := wire.SubBudget(c.budget, c.elapsed)
		shed := ShedDecision(base, base.Add(time.Duration(c.elapsed)*time.Microsecond), c.budget)
		raw := dataplane.ShouldShed(c.budget, c.elapsed)
		if expired != shed || expired != raw {
			t.Fatalf("budget %d elapsed %dus: SubBudget expired=%v, ShedDecision=%v, ShouldShed=%v",
				c.budget, c.elapsed, expired, shed, raw)
		}
		if expired && remaining != 0 {
			t.Fatalf("budget %d elapsed %dus: expired with remaining %d", c.budget, c.elapsed, remaining)
		}
		if c.budget > 0 && !expired {
			if remaining == 0 {
				t.Fatalf("budget %d elapsed %dus: live budget re-anchored to 0 (no-deadline)", c.budget, c.elapsed)
			}
			if remaining > c.budget {
				t.Fatalf("budget %d elapsed %dus: remaining %d wrapped past the budget", c.budget, c.elapsed, remaining)
			}
		}
		if c.budget == 0 && (remaining != 0 || expired) {
			t.Fatalf("no-deadline budget produced remaining=%d expired=%v", remaining, expired)
		}
	}
}

// congestedPair builds a client/server pair whose server-side RX ring is
// small enough to mark under a handful of queued requests. The handler
// blocks until release is closed; started fires once when the first request
// reaches it, which guarantees the dispatch thread is parked and every
// subsequent frame ages in the ring.
func congestedPair(t *testing.T, ringDepth int) (cli *RpcClient, conn uint32, started, release chan struct{}, cleanup func()) {
	t.Helper()
	f := fabric.NewFabric()
	nicS, err := f.CreateNIC(2, 1, ringDepth)
	if err != nil {
		t.Fatal(err)
	}
	started = make(chan struct{})
	release = make(chan struct{})
	var once sync.Once
	srv := NewRpcThreadedServer(nicS, ServerConfig{})
	if err := srv.Register(0, "gate", func(ctx context.Context, req []byte) ([]byte, error) {
		once.Do(func() { close(started) })
		<-release
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	nicC, err := f.CreateNIC(1, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	cli, err = NewRpcClient(nicC, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err = cli.OpenConnection(2)
	if err != nil {
		t.Fatal(err)
	}
	return cli, conn, started, release, func() {
		cli.Close()
		srv.Stop()
	}
}

// TestClientCongestionLoop drives the whole control loop end to end on the
// functional substrate: a stalled server dispatch thread lets requests pile
// into a depth-8 RX ring, the fabric stamps the ones admitted past half
// occupancy, the server echoes the stamp into its responses, and the client
// reacts — counting marks, recording the hint, and multiplicatively shrinking
// the connection's AIMD window (at most once per in-flight window).
func TestClientCongestionLoop(t *testing.T) {
	const ringDepth = 8
	cli, conn, started, release, cleanup := congestedPair(t, ringDepth)
	defer cleanup()

	var wg sync.WaitGroup
	results := make([]error, ringDepth+1)
	issue := func(i int) {
		if err := cli.CallAsync(0, []byte{byte(i)}, func(_ []byte, err error) {
			results[i] = err
			wg.Done()
		}); err != nil {
			t.Errorf("issue %d: %v", i, err)
			wg.Done()
		}
	}
	// First request occupies the handler; wait until it provably does.
	wg.Add(1)
	issue(0)
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}
	// The next ringDepth requests age in the ring at depths 0..ringDepth-1;
	// the upper half crosses the dataplane mark threshold.
	for i := 1; i <= ringDepth; i++ {
		wg.Add(1)
		issue(i)
	}
	close(release)
	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("call %d failed: %v", i, err)
		}
	}

	if got := cli.Marks.Load(); got != ringDepth/2 {
		t.Fatalf("client saw %d marked responses, want %d", got, ringDepth/2)
	}
	st, ok := cli.Congestion(conn)
	if !ok {
		t.Fatal("connection 1 reports no congestion state")
	}
	if st.Marks != ringDepth/2 || st.Cleans != ringDepth/2+1 {
		t.Fatalf("marks/cleans = %d/%d, want %d/%d", st.Marks, st.Cleans, ringDepth/2, ringDepth/2+1)
	}
	if st.InFlight != 0 {
		t.Fatalf("inflight = %d after all completions", st.InFlight)
	}
	// All marks land inside one in-flight window (every call was issued
	// before the first completion), so the epoch guard admits exactly one
	// multiplicative decrease: the clean completions that precede the first
	// mark stay capped at the max, and no clean follows the last mark.
	if st.Window != dataplane.DefaultMaxWindow/2 {
		t.Fatalf("window = %d, want one halving to %d", st.Window, dataplane.DefaultMaxWindow/2)
	}
	// The marked responses drain after the clean ones (ring order), so the
	// surviving hint is congested and scales retry backoff.
	if !dataplane.HintCongested(st.LastHint) {
		t.Fatalf("last hint %d not congested after marked drain", st.LastHint)
	}
	if scale := cli.backoffScale(conn); scale < 2 {
		t.Fatalf("backoff scale = %d, want >= 2 while congested", scale)
	}
}

// TestCongestionWindowRefusal pins the client-side enforcement half: a full
// AIMD window refuses new issues with ErrCongested before anything reaches
// the NIC, the refusal is counted, and CallConnRetry treats it as safe to
// retry — succeeding once the window reopens.
func TestCongestionWindowRefusal(t *testing.T) {
	cli, conn, started, release, cleanup := congestedPair(t, 256)
	defer cleanup()

	// Clamp the window to 1 as if heavy marking had collapsed it.
	cli.mu.Lock()
	cli.cong[conn].window = 1
	cli.cong[conn].lastHint = 255
	cli.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(1)
	if err := cli.CallAsync(0, []byte("hold"), func(_ []byte, err error) {
		if err != nil {
			t.Errorf("held call: %v", err)
		}
		wg.Done()
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(2 * time.Second):
		t.Fatal("handler never started")
	}

	// Window full: the second issue must be refused locally.
	if _, err := cli.Call(0, []byte("overflow")); !errors.Is(err, ErrCongested) {
		t.Fatalf("err = %v, want ErrCongested", err)
	}
	if got := cli.Refused.Load(); got != 1 {
		t.Fatalf("refused = %d, want 1", got)
	}

	// CallConnRetry backs off (scaled by the congested hint) and succeeds
	// once the held call completes and frees the window.
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(release)
	}()
	p := retry.Policy{Base: 2 * time.Millisecond, Max: 50 * time.Millisecond, Multiplier: 2, MaxAttempts: 10, Seed: 7}
	resp, err := cli.CallConnRetry(context.Background(), p, conn, 0, []byte("again"))
	if err != nil {
		t.Fatalf("retry after window reopened: %v", err)
	}
	if string(resp) != "again" {
		t.Fatalf("resp = %q", resp)
	}
	cli.Release(resp)
	wg.Wait()

	st, _ := cli.Congestion(conn)
	if st.InFlight != 0 {
		t.Fatalf("inflight = %d after completions", st.InFlight)
	}
}
