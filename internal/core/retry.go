package core

import (
	"context"
	"errors"
	"time"

	"dagger/internal/fabric"
	"dagger/internal/retry"
)

// Retryable reports whether an RPC error is safe to retry: the request
// provably did not execute, so a retry cannot duplicate side effects. Shed
// requests never reached a handler; ring-full send failures never left the
// client; congestion-window refusals were never sent at all. Timeouts are
// NOT retryable — the handler may have run. ErrPeerDead is NOT retryable
// either: although the request provably never executed, the path to the peer
// is dead, and retrying converts one fast failure into MaxRetries slow ones.
func Retryable(err error) bool {
	return errors.Is(err, ErrShed) || errors.Is(err, fabric.ErrRingFull) ||
		errors.Is(err, ErrCongested)
}

// CallRetry issues a blocking RPC on the default connection, retrying safe
// failures (see Retryable) under the policy's backoff schedule. Retries stop
// when attempts are exhausted, ctx is done, or the remaining ctx budget
// cannot absorb the next backoff delay (retry.ErrBudgetExhausted wraps the
// last RPC error in that case).
func (c *RpcClient) CallRetry(ctx context.Context, p retry.Policy, fnID uint16, req []byte) ([]byte, error) {
	c.mu.Lock()
	conn := c.defaultConn
	ok := c.hasConn
	c.mu.Unlock()
	if !ok {
		return nil, errNoConn
	}
	return c.CallConnRetry(ctx, p, conn, fnID, req)
}

// CallConnRetry is CallRetry on a specific connection.
func (c *RpcClient) CallConnRetry(ctx context.Context, p retry.Policy, connID uint32, fnID uint16, req []byte) ([]byte, error) {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			// The connection's last congestion hint scales the backoff:
			// a congested peer gets multiplicatively more breathing room
			// than the uncongested schedule would give it.
			d, ok := p.NextDelayScaled(attempt, remainingBudget(ctx), c.backoffScale(connID))
			if !ok {
				return nil, errors.Join(retry.ErrBudgetExhausted, lastErr)
			}
			if d > 0 {
				t := acquireTimer(d)
				select {
				case <-t.C:
				case <-ctx.Done():
					releaseTimer(t)
					return nil, ctx.Err()
				case <-c.stop:
					releaseTimer(t)
					return nil, ErrClientClose
				}
				releaseTimer(t)
			}
		}
		resp, err := c.CallConnContext(ctx, connID, fnID, req)
		if err == nil || !Retryable(err) {
			return resp, err
		}
		lastErr = err
	}
	return nil, lastErr
}

// remainingBudget returns the time left until ctx's deadline, or 0 when ctx
// has none (retry.Policy treats 0 as unbounded).
func remainingBudget(ctx context.Context) time.Duration {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	return time.Until(dl)
}
