// Package core implements Dagger's RPC programming model (§4.2): RpcClient
// and RpcClientPool on the client side, RpcThreadedServer with
// RpcServerThread dispatch loops on the server side, CompletionQueue for
// asynchronous calls, and both dispatch-thread and worker-thread request
// processing. The API follows the paper's Thrift-/Protobuf-inspired design;
// typed stubs over it are produced by the IDL code generator
// (internal/idl, cmd/daggergen).
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dagger/internal/fabric"
	"dagger/internal/wire"
)

// Errors returned by the RPC layer.
var (
	ErrTimeout     = errors.New("core: rpc timed out")
	ErrClientClose = errors.New("core: client closed")
	ErrRemote      = errors.New("core: remote handler error")
	ErrNoFn        = errors.New("core: no such remote function")
)

// DefaultTimeout bounds synchronous calls so a lost best-effort frame
// cannot hang a dispatch thread forever.
const DefaultTimeout = 5 * time.Second

// call tracks one in-flight RPC.
type call struct {
	done chan struct{}
	cb   func([]byte, error)
	resp []byte
	err  error
}

// RpcClient issues RPCs over one NIC flow (its RX/TX ring pair, Figure 7).
// A client may hold several open connections; they share the ring (the SRQ
// model, §4.2), so Send is internally synchronized.
type RpcClient struct {
	nic    *fabric.SoftNIC
	flowID uint16
	flow   *fabric.Flow

	cq      *CompletionQueue
	timeout time.Duration

	mu      sync.Mutex
	conns   map[uint32]uint32 // connID -> destination address
	nextRPC uint64
	pending map[uint64]*call

	defaultConn uint32
	hasConn     bool

	stop     chan struct{}
	stopOnce sync.Once
	recvWG   sync.WaitGroup

	// Counters.
	Issued    atomic.Uint64
	Completed atomic.Uint64
	TimedOut  atomic.Uint64
}

// NewRpcClient binds a client to flow flowID of nic. Each flow should back
// at most one client (1:1 flow-to-ring mapping); this is the caller's
// contract, normally managed by RpcClientPool.
func NewRpcClient(nic *fabric.SoftNIC, flowID int) (*RpcClient, error) {
	fl, err := nic.Flow(flowID)
	if err != nil {
		return nil, err
	}
	c := &RpcClient{
		nic:     nic,
		flowID:  uint16(flowID),
		flow:    fl,
		cq:      NewCompletionQueue(),
		timeout: DefaultTimeout,
		conns:   make(map[uint32]uint32),
		pending: make(map[uint64]*call),
		stop:    make(chan struct{}),
	}
	c.recvWG.Add(1)
	go c.recvLoop()
	return c, nil
}

// SetTimeout overrides the synchronous call timeout (0 disables it).
func (c *RpcClient) SetTimeout(d time.Duration) { c.timeout = d }

// CompletionQueue returns the client's completion queue.
func (c *RpcClient) CompletionQueue() *CompletionQueue { return c.cq }

// FlowID returns the NIC flow this client owns.
func (c *RpcClient) FlowID() uint16 { return c.flowID }

// OpenConnection registers a connection to a destination address and
// returns its connection ID. The first opened connection becomes the
// default for Call/CallAsync.
func (c *RpcClient) OpenConnection(dstAddr uint32) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	id := uint32(len(c.conns) + 1)
	id = id<<8 | uint32(c.flowID) // keep ids unique across a NIC's clients
	for {
		if _, dup := c.conns[id]; !dup {
			break
		}
		id += 256
	}
	c.conns[id] = dstAddr
	if !c.hasConn {
		c.defaultConn = id
		c.hasConn = true
	}
	return id, nil
}

// CloseConnection removes a connection.
func (c *RpcClient) CloseConnection(id uint32) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.conns[id]; !ok {
		return fmt.Errorf("core: connection %d not open", id)
	}
	delete(c.conns, id)
	if c.defaultConn == id {
		c.hasConn = false
		for rest := range c.conns {
			c.defaultConn = rest
			c.hasConn = true
			break
		}
	}
	return nil
}

// Call issues a blocking RPC on the default connection.
func (c *RpcClient) Call(fnID uint16, req []byte) ([]byte, error) {
	c.mu.Lock()
	conn := c.defaultConn
	ok := c.hasConn
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("core: no open connection")
	}
	return c.CallConn(conn, fnID, req)
}

// CallConn issues a blocking RPC on a specific connection.
func (c *RpcClient) CallConn(connID uint32, fnID uint16, req []byte) ([]byte, error) {
	cl, err := c.issue(connID, fnID, req, nil)
	if err != nil {
		return nil, err
	}
	if c.timeout > 0 {
		t := time.NewTimer(c.timeout)
		defer t.Stop()
		select {
		case <-cl.done:
		case <-t.C:
			c.abandon(cl)
			c.TimedOut.Add(1)
			return nil, ErrTimeout
		case <-c.stop:
			return nil, ErrClientClose
		}
	} else {
		select {
		case <-cl.done:
		case <-c.stop:
			return nil, ErrClientClose
		}
	}
	return cl.resp, cl.err
}

// CallAsync issues a non-blocking RPC on the default connection; cb runs on
// the client's receive path when the response (or failure) arrives, after
// being accumulated in the CompletionQueue.
func (c *RpcClient) CallAsync(fnID uint16, req []byte, cb func([]byte, error)) error {
	c.mu.Lock()
	conn := c.defaultConn
	ok := c.hasConn
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("core: no open connection")
	}
	return c.CallConnAsync(conn, fnID, req, cb)
}

// CallConnAsync issues a non-blocking RPC on a specific connection.
func (c *RpcClient) CallConnAsync(connID uint32, fnID uint16, req []byte, cb func([]byte, error)) error {
	_, err := c.issue(connID, fnID, req, cb)
	return err
}

func (c *RpcClient) issue(connID uint32, fnID uint16, req []byte, cb func([]byte, error)) (*call, error) {
	select {
	case <-c.stop:
		return nil, ErrClientClose
	default:
	}
	c.mu.Lock()
	dst, ok := c.conns[connID]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("core: connection %d not open", connID)
	}
	c.nextRPC++
	id := c.nextRPC
	cl := &call{cb: cb}
	if cb == nil {
		cl.done = make(chan struct{})
	}
	c.pending[id] = cl
	c.mu.Unlock()

	m := &wire.Message{
		Header: wire.Header{
			Kind:    wire.KindRequest,
			ConnID:  connID,
			RPCID:   id,
			FlowID:  c.flowID,
			FnID:    fnID,
			SrcAddr: c.nic.Addr(),
			DstAddr: dst,
		},
		Payload: req,
	}
	if err := c.nic.Send(m); err != nil {
		c.abandon(cl)
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, err
	}
	c.Issued.Add(1)
	return cl, nil
}

func (c *RpcClient) abandon(target *call) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for id, cl := range c.pending {
		if cl == target {
			delete(c.pending, id)
			return
		}
	}
}

// recvLoop is the client's receive path: it drains the flow's RX ring,
// reassembles multi-line RPCs in software (§4.7: the interconnect's MTU is
// one cache line), matches responses to pending calls, and completes them
// through the CompletionQueue.
func (c *RpcClient) recvLoop() {
	defer c.recvWG.Done()
	ras := wire.NewReassembler()
	for {
		frame, ok := c.flow.RecvResponse(c.stop)
		if !ok {
			return
		}
		m, ok, err := reassemble(ras, c.flowID, frame)
		if err != nil || !ok || m.Kind != wire.KindResponse {
			continue
		}
		c.mu.Lock()
		cl, ok := c.pending[m.RPCID]
		if ok {
			delete(c.pending, m.RPCID)
		}
		c.mu.Unlock()
		if !ok {
			continue // late response after timeout
		}
		var resp []byte
		var rerr error
		if m.Flags&flagError != 0 {
			rerr = fmt.Errorf("%w: %s", ErrRemote, string(m.Payload))
		} else {
			resp = append([]byte(nil), m.Payload...)
		}
		c.Completed.Add(1)
		c.cq.complete(completion{RPCID: m.RPCID, FnID: m.FnID, Resp: resp, Err: rerr})
		if cl.cb != nil {
			cl.cb(resp, rerr)
		}
		if cl.done != nil {
			cl.resp, cl.err = resp, rerr
			close(cl.done)
		}
	}
}

// Close shuts the client down; in-flight synchronous calls return
// ErrClientClose.
func (c *RpcClient) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.recvWG.Wait()
}

// flagError marks a response carrying a handler error string.
const flagError = 0x1

// reassemble feeds one delivered frame's cache lines through the software
// reassembler, returning the completed message if the frame's last line
// finishes an RPC.
func reassemble(ras *wire.Reassembler, flowID uint16, frame []byte) (wire.Message, bool, error) {
	var (
		m    wire.Message
		done bool
		err  error
	)
	for off := 0; off+wire.CacheLineSize <= len(frame); off += wire.CacheLineSize {
		m, done, err = ras.AddLine(flowID, frame[off:off+wire.CacheLineSize])
		if err != nil {
			return wire.Message{}, false, err
		}
	}
	return m, done, nil
}
