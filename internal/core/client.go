// Package core implements Dagger's RPC programming model (§4.2): RpcClient
// and RpcClientPool on the client side, RpcThreadedServer with
// RpcServerThread dispatch loops on the server side, CompletionQueue for
// asynchronous calls, and both dispatch-thread and worker-thread request
// processing. The API follows the paper's Thrift-/Protobuf-inspired design;
// typed stubs over it are produced by the IDL code generator
// (internal/idl, cmd/daggergen).
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/metrics"
	"dagger/internal/wire"
)

// Errors returned by the RPC layer.
var (
	ErrTimeout     = errors.New("core: rpc timed out")
	ErrClientClose = errors.New("core: client closed")
	ErrRemote      = errors.New("core: remote handler error")
	ErrNoFn        = errors.New("core: no such remote function")
	// ErrShed reports that the server dropped the request before invoking
	// the handler because its deadline budget had already expired. The
	// handler did not run, so shed requests are always safe to retry.
	ErrShed = errors.New("core: request shed at server (budget expired)")
	// ErrCongested reports that the connection's congestion window is full:
	// recent responses carried congestion marks and the AIMD reaction has
	// capped the in-flight count. The request was never sent, so it is
	// always safe to retry (CallRetry does, with scaled backoff).
	ErrCongested = errors.New("core: connection congestion window full")
	// ErrPeerDead reports that the transport layer gave up delivering the
	// request after exhausting retransmissions: the peer (or the path to it)
	// is dead, and the synthetic wire.FlagDead response that carries this
	// verdict let the call fail fast instead of burning its full timeout.
	// Deliberately NOT retryable via CallRetry — re-sending into a dead path
	// converts one fast failure into MaxRetries slow ones; callers that want
	// failover should re-resolve the route first.
	ErrPeerDead = errors.New("core: peer dead (transport gave up delivery)")
	// errNoConn is a sentinel: the issue path is allocation-free, so it
	// must not mint a fresh error per call.
	errNoConn = errors.New("core: no open connection")
	// ErrConnNotOpen reports a call or close on a connection ID that is not
	// open — never opened, or already closed. Calls after CloseConnection
	// fail with it rather than being silently re-steered. Wrapped with the
	// offending ID; match with errors.Is.
	ErrConnNotOpen = errors.New("core: connection not open")
)

// DefaultTimeout bounds synchronous calls so a lost best-effort frame
// cannot hang a dispatch thread forever.
const DefaultTimeout = 5 * time.Second

// call tracks one in-flight RPC. Instances are pooled: the done channel is
// capacity 1 and signalled by send (never closed), so a call can be reused
// across RPCs without reallocating the channel.
type call struct {
	id   uint64
	conn uint32 // connection the call was issued on (congestion accounting)
	sync bool
	done chan struct{}
	cb   func([]byte, error)
	resp []byte
	err  error
}

var callPool = sync.Pool{
	New: func() any { return &call{done: make(chan struct{}, 1)} },
}

// timerPool recycles timeout timers across synchronous calls.
var timerPool sync.Pool

func acquireTimer(d time.Duration) *time.Timer {
	if t, _ := timerPool.Get().(*time.Timer); t != nil {
		t.Reset(d)
		return t
	}
	return time.NewTimer(d)
}

func releaseTimer(t *time.Timer) {
	t.Stop()
	timerPool.Put(t)
}

// RpcClient issues RPCs over one NIC flow (its RX/TX ring pair, Figure 7).
// A client may hold several open connections; they share the ring (the SRQ
// model, §4.2), so Send is internally synchronized.
type RpcClient struct {
	nic    *fabric.SoftNIC
	flowID uint16
	flow   *fabric.Flow

	cq      *CompletionQueue
	timeout atomic.Int64 // nanoseconds; 0 disables the call timeout

	mu      sync.Mutex
	conns   map[uint32]uint32 // connID -> destination address
	cong    map[uint32]*connCongestion
	nextRPC uint64
	pending map[uint64]*call

	defaultConn uint32
	hasConn     bool

	stop     chan struct{}
	stopOnce sync.Once
	recvWG   sync.WaitGroup

	// Counters. metrics.Counter is a drop-in for the atomic.Uint64 these
	// grew up as; every client registers them in its metrics registry.
	Issued    metrics.Counter
	Completed metrics.Counter
	TimedOut  metrics.Counter
	Canceled  metrics.Counter
	// Marks counts responses that arrived carrying a congestion mark;
	// Refused counts issues rejected client-side by a full congestion
	// window (ErrCongested — the request never reached the NIC).
	Marks   metrics.Counter
	Refused metrics.Counter
	// ConnMisses counts responses whose request missed the server NIC's
	// connection cache (the echoed wire.FlagConnMiss): nonzero means the
	// active connection working set no longer fits near memory (§4.2).
	ConnMisses metrics.Counter
	// Late counts responses that arrived after their call was abandoned
	// (timeout/cancel) or that duplicated an already-completed RPC — the
	// observable trace of the fabric's at-least-once delivery under faults.
	Late metrics.Counter
	// PeerDead counts calls failed by a transport dead-letter verdict
	// (ErrPeerDead).
	PeerDead metrics.Counter

	reg *metrics.Registry
}

// Metrics returns the client's telemetry registry.
func (c *RpcClient) Metrics() *metrics.Registry { return c.reg }

// describeMetrics registers the client's call and congestion counters.
func (c *RpcClient) describeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("call.issued", &c.Issued)
	reg.RegisterCounter("call.completed", &c.Completed)
	reg.RegisterCounter("call.timedout", &c.TimedOut)
	reg.RegisterCounter("call.canceled", &c.Canceled)
	reg.RegisterCounter("call.refused", &c.Refused)
	reg.RegisterCounter("call.late", &c.Late)
	reg.RegisterCounter("call.peerdead", &c.PeerDead)
	reg.RegisterCounter("mark.echoed", &c.Marks)
	reg.RegisterCounter("conn.miss.echoed", &c.ConnMisses)
}

// connCongestion is one connection's view of the congestion control loop:
// an AIMD in-flight window driven by the ECN-style marks echoed in
// responses. All fields are guarded by RpcClient.mu. The window starts at
// dataplane.DefaultMaxWindow, far above any bounded ring, so the loop is
// inert until a queue actually reports congestion.
type connCongestion struct {
	window   int    // current in-flight cap
	inflight int    // calls issued and not yet completed or abandoned
	epoch    uint64 // halve at most once per window: marks with RPCID <= epoch are absorbed
	marks    uint64 // responses that carried a congestion mark
	cleans   uint64 // responses that did not
	lastHint uint8  // occupancy hint from the most recent marked response (0 after a clean one)
}

// CongestionState is a read-only snapshot of one connection's control loop,
// surfaced for callers that adapt offered load or for tests and experiments.
type CongestionState struct {
	Window   int
	InFlight int
	Marks    uint64
	Cleans   uint64
	LastHint uint8
}

// Congestion reports connID's congestion-control state; ok is false if the
// connection is not open.
func (c *RpcClient) Congestion(connID uint32) (CongestionState, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	cc := c.cong[connID]
	if cc == nil {
		return CongestionState{}, false
	}
	return CongestionState{
		Window:   cc.window,
		InFlight: cc.inflight,
		Marks:    cc.marks,
		Cleans:   cc.cleans,
		LastHint: cc.lastHint,
	}, true
}

// backoffScale maps connID's most recent congestion hint to the integer
// backoff multiplier the retry helpers apply (1 when the connection is not
// congested or not open).
func (c *RpcClient) backoffScale(connID uint32) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cc := c.cong[connID]; cc != nil {
		return dataplane.BackoffScale(cc.lastHint)
	}
	return 1
}

// NewRpcClient binds a client to flow flowID of nic. Each flow should back
// at most one client (1:1 flow-to-ring mapping); this is the caller's
// contract, normally managed by RpcClientPool.
func NewRpcClient(nic *fabric.SoftNIC, flowID int) (*RpcClient, error) {
	fl, err := nic.Flow(flowID)
	if err != nil {
		return nil, err
	}
	c := &RpcClient{
		nic:     nic,
		flowID:  uint16(flowID),
		flow:    fl,
		cq:      NewCompletionQueue(),
		conns:   make(map[uint32]uint32),
		cong:    make(map[uint32]*connCongestion),
		pending: make(map[uint64]*call),
		stop:    make(chan struct{}),
	}
	c.reg = metrics.New()
	c.describeMetrics(c.reg)
	c.timeout.Store(int64(DefaultTimeout))
	c.recvWG.Add(1)
	go c.recvLoop()
	return c, nil
}

// SetTimeout overrides the synchronous call timeout (0 disables it). It is
// safe to call concurrently with in-flight calls; calls that have already
// started keep the timeout they observed.
func (c *RpcClient) SetTimeout(d time.Duration) { c.timeout.Store(int64(d)) }

// CompletionQueue returns the client's completion queue.
func (c *RpcClient) CompletionQueue() *CompletionQueue { return c.cq }

// FlowID returns the NIC flow this client owns.
func (c *RpcClient) FlowID() uint16 { return c.flowID }

// Release returns a response buffer obtained from Call/CallConn (or from a
// completion) to the client's buffer pool. Optional — unreleased buffers are
// simply reclaimed by the GC — but releasing keeps the round trip
// allocation-free. The buffer must not be used after Release.
func (c *RpcClient) Release(resp []byte) {
	if resp != nil {
		c.flow.Buffers().Put(resp)
	}
}

// OpenConnection registers a connection to a destination address and
// returns its connection ID. The first opened connection becomes the
// default for Call/CallAsync.
func (c *RpcClient) OpenConnection(dstAddr uint32) (uint32, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Connection IDs stay unique across a NIC's clients by flow-indexed
	// residue: client k of an F-flow NIC mints k+1, k+1+F, k+1+2F, … so two
	// clients can never collide, and one client's IDs walk distinct
	// direct-mapped connection-cache slots instead of stacking a single slot
	// (the NIC cache indexes by the ID's LSBs, connstate.Key).
	nflows := uint32(c.nic.NumFlows())
	id := uint32(len(c.conns))*nflows + uint32(c.flowID) + 1
	for {
		if _, dup := c.conns[id]; !dup {
			break
		}
		id += nflows
	}
	c.conns[id] = dstAddr
	c.cong[id] = &connCongestion{window: dataplane.DefaultMaxWindow}
	if !c.hasConn {
		c.defaultConn = id
		c.hasConn = true
	}
	return id, nil
}

// CloseConnection removes a connection and propagates the close over the
// wire (a KindDisconnect control frame) so the server NIC retires its
// steering entry instead of leaking it — the lifecycle's close semantics
// come from connstate. If the default connection is closed, the
// lowest-numbered surviving connection becomes the new default —
// deterministically, not at the mercy of map iteration order. Subsequent
// calls on the closed ID fail with ErrConnNotOpen.
func (c *RpcClient) CloseConnection(id uint32) error {
	c.mu.Lock()
	dst, ok := c.conns[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrConnNotOpen, id)
	}
	delete(c.conns, id)
	delete(c.cong, id)
	if c.defaultConn == id {
		c.hasConn = false
		for rest := range c.conns {
			if !c.hasConn || rest < c.defaultConn {
				c.defaultConn = rest
				c.hasConn = true
			}
		}
	}
	c.mu.Unlock()
	// Best-effort, like the data path itself: the local state is already
	// gone either way, and the control frame costs one cache line.
	m := wire.Message{Header: wire.Header{
		Kind:    wire.KindDisconnect,
		ConnID:  id,
		FlowID:  c.flowID,
		SrcAddr: c.nic.Addr(),
		DstAddr: dst,
	}}
	_ = c.nic.Send(&m)
	return nil
}

// Call issues a blocking RPC on the default connection. The returned
// response buffer is owned by the caller; pass it to Release when done to
// keep the round trip allocation-free.
func (c *RpcClient) Call(fnID uint16, req []byte) ([]byte, error) {
	return c.CallContext(context.Background(), fnID, req)
}

// CallContext issues a blocking RPC on the default connection under ctx. A
// ctx deadline is stamped into the request header as the remaining budget in
// microseconds, so every downstream tier can shed the request once it
// expires; ctx cancellation or expiry abandons the call promptly (pooled
// buffers are repaid by the receive path when a late response arrives).
func (c *RpcClient) CallContext(ctx context.Context, fnID uint16, req []byte) ([]byte, error) {
	c.mu.Lock()
	conn := c.defaultConn
	ok := c.hasConn
	c.mu.Unlock()
	if !ok {
		return nil, errNoConn
	}
	return c.CallConnContext(ctx, conn, fnID, req)
}

// CallConn issues a blocking RPC on a specific connection.
func (c *RpcClient) CallConn(connID uint32, fnID uint16, req []byte) ([]byte, error) {
	return c.CallConnContext(context.Background(), connID, fnID, req)
}

// CallConnContext issues a blocking RPC on a specific connection under ctx;
// see CallContext for the deadline/cancellation contract.
func (c *RpcClient) CallConnContext(ctx context.Context, connID uint32, fnID uint16, req []byte) ([]byte, error) {
	budget, err := c.budgetFrom(ctx)
	if err != nil {
		return nil, err
	}
	cl, err := c.issue(connID, fnID, req, budget, nil, true)
	if err != nil {
		return nil, err
	}
	var timerC <-chan time.Time
	var t *time.Timer
	if timeout := time.Duration(c.timeout.Load()); timeout > 0 {
		t = acquireTimer(timeout)
		timerC = t.C
	}
	select {
	case <-cl.done:
	case <-ctx.Done():
		// Cancellation or deadline expiry: abandon the call. The receive
		// path repays the pooled response buffer if a late response lands.
		if c.abandon(cl) {
			c.release(cl)
			if t != nil {
				releaseTimer(t)
			}
			err := ctx.Err()
			if errors.Is(err, context.DeadlineExceeded) {
				c.TimedOut.Add(1)
			} else {
				c.Canceled.Add(1)
			}
			return nil, err
		}
		// The response raced in: the receive path owns the call and is
		// about to signal it. Consume the completion instead.
		<-cl.done
	case <-timerC:
		if c.abandon(cl) {
			c.release(cl)
			releaseTimer(t)
			c.TimedOut.Add(1)
			return nil, ErrTimeout
		}
		// The response raced in between the timer firing and the
		// abandon: the receive path owns the call and is about to
		// signal it. Consume the completion instead of timing out.
		<-cl.done
	case <-c.stop:
		if t != nil {
			releaseTimer(t)
		}
		return nil, ErrClientClose
	}
	if t != nil {
		releaseTimer(t)
	}
	resp, rerr := cl.resp, cl.err
	c.release(cl)
	return resp, rerr
}

// CallAsync issues a non-blocking RPC on the default connection; cb runs on
// the client's receive path when the response (or failure) arrives, after
// being accumulated in the CompletionQueue.
func (c *RpcClient) CallAsync(fnID uint16, req []byte, cb func([]byte, error)) error {
	return c.CallAsyncContext(context.Background(), fnID, req, cb)
}

// CallAsyncContext is CallAsync with a context. The ctx is consulted at issue
// time — an expired or canceled ctx fails fast, and a ctx deadline is stamped
// into the header so downstream tiers shed the request once it expires — but
// a cancellation after issue does not revoke the callback: the response (or
// the client timeout/close) completes it.
func (c *RpcClient) CallAsyncContext(ctx context.Context, fnID uint16, req []byte, cb func([]byte, error)) error {
	c.mu.Lock()
	conn := c.defaultConn
	ok := c.hasConn
	c.mu.Unlock()
	if !ok {
		return errNoConn
	}
	return c.CallConnAsyncContext(ctx, conn, fnID, req, cb)
}

// CallConnAsync issues a non-blocking RPC on a specific connection.
func (c *RpcClient) CallConnAsync(connID uint32, fnID uint16, req []byte, cb func([]byte, error)) error {
	return c.CallConnAsyncContext(context.Background(), connID, fnID, req, cb)
}

// CallConnAsyncContext is CallConnAsync with a context; see CallAsyncContext
// for the contract.
func (c *RpcClient) CallConnAsyncContext(ctx context.Context, connID uint32, fnID uint16, req []byte, cb func([]byte, error)) error {
	budget, err := c.budgetFrom(ctx)
	if err != nil {
		return err
	}
	_, err = c.issue(connID, fnID, req, budget, cb, false)
	return err
}

// budgetFrom converts ctx's remaining deadline into the header's microsecond
// budget (0 = no deadline), counting and failing fast when ctx is already
// done. Sub-microsecond remainders round up to 1µs so a still-live deadline
// never encodes as "no deadline"; budgets beyond MaxBudget saturate.
func (c *RpcClient) budgetFrom(ctx context.Context) (uint32, error) {
	if err := ctx.Err(); err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			c.TimedOut.Add(1)
		} else {
			c.Canceled.Add(1)
		}
		return 0, err
	}
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, nil
	}
	rem := time.Until(dl)
	if rem <= 0 {
		c.TimedOut.Add(1)
		return 0, context.DeadlineExceeded
	}
	us := rem.Microseconds()
	if us < 1 {
		us = 1
	}
	if us > int64(wire.MaxBudget) {
		return wire.MaxBudget, nil
	}
	return uint32(us), nil
}

func (c *RpcClient) issue(connID uint32, fnID uint16, req []byte, budget uint32, cb func([]byte, error), sync bool) (*call, error) {
	select {
	case <-c.stop:
		return nil, ErrClientClose
	default:
	}
	c.mu.Lock()
	dst, ok := c.conns[connID]
	if !ok {
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %d", ErrConnNotOpen, connID)
	}
	cc := c.cong[connID]
	if cc != nil && cc.inflight >= cc.window {
		// AIMD window full: refuse locally instead of piling onto a queue
		// that just told us it is congested. Nothing was sent, so the
		// caller (typically CallRetry) can back off and try again.
		c.mu.Unlock()
		c.Refused.Add(1)
		return nil, ErrCongested
	}
	if cc != nil {
		cc.inflight++
	}
	c.nextRPC++
	id := c.nextRPC
	cl := callPool.Get().(*call)
	cl.id = id
	cl.conn = connID
	cl.sync = sync
	cl.cb = cb
	c.pending[id] = cl
	c.mu.Unlock()

	m := wire.Message{
		Header: wire.Header{
			Kind:    wire.KindRequest,
			ConnID:  connID,
			RPCID:   id,
			FlowID:  c.flowID,
			FnID:    fnID,
			SrcAddr: c.nic.Addr(),
			DstAddr: dst,
			Budget:  budget,
		},
		Payload: req,
	}
	if err := c.nic.Send(&m); err != nil {
		// The frame never entered a ring, so no response can arrive for
		// this RPC id; the call is safe to recycle once unregistered.
		if c.abandon(cl) {
			c.release(cl)
		}
		return nil, err
	}
	c.Issued.Add(1)
	return cl, nil
}

// abandon unregisters cl from the pending table, returning true if this
// caller won ownership of the call. A false return means the receive path
// already claimed it and will (or did) complete it.
func (c *RpcClient) abandon(cl *call) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if cur, ok := c.pending[cl.id]; ok && cur == cl {
		delete(c.pending, cl.id)
		// The call will never complete through the receive path, so its
		// congestion-window slot frees here. Whoever removes the pending
		// entry — this abandon or the receive path — decrements exactly once.
		if cc := c.cong[cl.conn]; cc != nil && cc.inflight > 0 {
			cc.inflight--
		}
		return true
	}
	return false
}

// release returns a call to the pool. The caller must own the call (have
// received its done signal, or won abandon).
func (c *RpcClient) release(cl *call) {
	select {
	case <-cl.done: // drain a stale signal so the next user starts clean
	default:
	}
	cl.id = 0
	cl.conn = 0
	cl.sync = false
	cl.cb = nil
	cl.resp = nil
	cl.err = nil
	callPool.Put(cl)
}

// recvLoop is the client's receive path: it drains the flow's RX ring,
// reassembles multi-line RPCs in software (§4.7: the interconnect's MTU is
// one cache line), matches responses to pending calls, and completes them.
// Frames are recycled to the flow's buffer pool as soon as the reassembler
// has consumed them; reassembled payloads are handed to callers owned
// (synchronous calls) or parked in the CompletionQueue (asynchronous).
func (c *RpcClient) recvLoop() {
	defer c.recvWG.Done()
	pool := c.flow.Buffers()
	ras := wire.NewReassemblerPool(pool)
	for {
		frame, ok := c.flow.RecvResponse(c.stop)
		if !ok {
			return
		}
		m, ok, err := reassemble(ras, pool, c.flowID, frame)
		pool.Put(frame)
		if err != nil || !ok {
			// No completed message; m is zero and Put(nil) is loan-neutral,
			// so repaying unconditionally keeps the ownership contract
			// uniform on every continue path.
			pool.Put(m.Payload)
			continue
		}
		if m.Kind != wire.KindResponse {
			pool.Put(m.Payload)
			continue
		}
		c.mu.Lock()
		cl, ok := c.pending[m.RPCID]
		if ok {
			delete(c.pending, m.RPCID)
			c.noteCompletionLocked(cl.conn, &m.Header)
		}
		c.mu.Unlock()
		if !ok {
			// Late response: the call timed out/was canceled, or this is a
			// duplicate of an already-completed RPC (at-least-once delivery
			// under fault injection). Repay the loan and count it.
			c.Late.Add(1)
			pool.Put(m.Payload)
			continue
		}
		if m.Congested() {
			c.Marks.Add(1)
		}
		if m.ConnMissed() {
			c.ConnMisses.Add(1)
		}
		var resp []byte
		var rerr error
		switch {
		case m.Flags&wire.FlagDead != 0:
			// Synthetic dead-letter response from the transport bridge: the
			// request was abandoned after exhausting retransmissions.
			rerr = ErrPeerDead
			c.PeerDead.Add(1)
			pool.Put(m.Payload)
		case m.Flags&flagShed != 0:
			rerr = ErrShed
			pool.Put(m.Payload)
		case m.Flags&flagError != 0:
			rerr = fmt.Errorf("%w: %s", ErrRemote, string(m.Payload))
			pool.Put(m.Payload)
		default:
			resp = m.Payload
		}
		c.Completed.Add(1)
		if cl.sync {
			// Ownership of resp transfers to the blocked caller; the
			// CompletionQueue only accumulates asynchronous completions.
			cl.resp, cl.err = resp, rerr
			cl.done <- struct{}{}
			continue
		}
		c.cq.complete(completion{RPCID: m.RPCID, FnID: m.FnID, Resp: resp, Err: rerr})
		if cl.cb != nil {
			cl.cb(resp, rerr)
		}
		c.release(cl)
	}
}

// noteCompletionLocked applies one response's congestion signal to its
// connection's AIMD state. Callers hold c.mu. A marked response halves the
// window at most once per in-flight window (the epoch guard: marks on calls
// issued before the last decrease are echoes of the same congestion event);
// a clean response grows it by one and clears the backoff hint.
func (c *RpcClient) noteCompletionLocked(connID uint32, h *wire.Header) {
	cc := c.cong[connID]
	if cc == nil {
		return
	}
	if cc.inflight > 0 {
		cc.inflight--
	}
	if h.Congested() {
		cc.marks++
		cc.lastHint = h.Occupancy
		if h.RPCID > cc.epoch {
			cc.window = dataplane.WindowOnMark(cc.window, dataplane.DefaultMinWindow)
			cc.epoch = c.nextRPC
		}
	} else {
		cc.cleans++
		cc.lastHint = 0
		cc.window = dataplane.WindowOnClean(cc.window, dataplane.DefaultMaxWindow)
	}
}

// Close shuts the client down; in-flight synchronous calls return
// ErrClientClose.
func (c *RpcClient) Close() {
	c.stopOnce.Do(func() { close(c.stop) })
	c.recvWG.Wait()
}

// Response header flags.
const (
	// flagError marks a response carrying a handler error string.
	flagError = 0x1
	// flagShed marks a response for a request the server dropped before
	// invoking the handler because its deadline budget had expired.
	flagShed = 0x2
)

// reassemble feeds one delivered frame's cache lines through the software
// reassembler, returning the completed message if the frame's last line
// finishes an RPC. The frame is fully consumed: the caller may recycle it
// as soon as reassemble returns. On true, the returned message's Payload is
// a pooled buffer the caller owns and must repay to pool.
//
// A frame normally carries exactly one marshalled message, but a malformed
// or batched frame can complete a message and then keep going; any earlier
// completed payload is repaid here so no path leaks a pool loan.
//
// dagger:yields-ownership Payload
func reassemble(ras *wire.Reassembler, pool wire.BufferPool, flowID uint16, frame []byte) (wire.Message, bool, error) {
	var (
		m    wire.Message
		done bool
	)
	for off := 0; off+wire.CacheLineSize <= len(frame); off += wire.CacheLineSize {
		next, completed, err := ras.AddLine(flowID, frame[off:off+wire.CacheLineSize])
		if err != nil {
			if done {
				pool.Put(m.Payload)
			}
			return wire.Message{}, false, err
		}
		if completed {
			if done {
				// Two messages completed in one frame: only the last is
				// delivered (the frame was malformed batching), but the
				// earlier payload's loan must still be repaid.
				pool.Put(m.Payload)
			}
			m, done = next, true
		}
	}
	return m, done, nil
}
