package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagger/internal/fabric"
	"dagger/internal/sim"
	"dagger/internal/trace"
)

// testPair builds a client NIC and a started echo server.
func testPair(t testing.TB, cfg ServerConfig) (*RpcClient, *RpcThreadedServer, func()) {
	t.Helper()
	f := fabric.NewFabric()
	cnic, err := f.CreateNIC(1, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	snic, err := f.CreateNIC(2, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRpcThreadedServer(snic, cfg)
	if err := srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(1, "fail", func(_ context.Context, req []byte) ([]byte, error) {
		return nil, errors.New("boom")
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(cnic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}
	return cli, srv, func() {
		cli.Close()
		srv.Stop()
	}
}

func TestSyncCallEcho(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	resp, err := cli.Call(0, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("ping")) {
		t.Fatalf("resp = %q", resp)
	}
	if cli.Issued.Load() != 1 || cli.Completed.Load() != 1 {
		t.Fatal("counters wrong")
	}
}

func TestSyncCallRemoteError(t *testing.T) {
	cli, srv, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	_, err := cli.Call(1, nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v, want ErrRemote", err)
	}
	if srv.Errors.Load() != 1 {
		t.Fatal("server error counter")
	}
}

func TestCallUnknownFunction(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	_, err := cli.Call(42, nil)
	if !errors.Is(err, ErrRemote) {
		t.Fatalf("err = %v", err)
	}
}

func TestAsyncCallCompletion(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	done := make(chan []byte, 1)
	err := cli.CallAsync(0, []byte("async"), func(resp []byte, err error) {
		if err != nil {
			t.Errorf("async err: %v", err)
		}
		done <- resp
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case resp := <-done:
		if !bytes.Equal(resp, []byte("async")) {
			t.Fatalf("resp = %q", resp)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("async callback never fired")
	}
	// The completion queue accumulated it too.
	if cli.CompletionQueue().Total() != 1 {
		t.Fatal("completion queue missed the completion")
	}
}

func TestCompletionQueuePoll(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	const n = 10
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		if err := cli.CallAsync(0, []byte{byte(i)}, func([]byte, error) { wg.Done() }); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	got := 0
	for _, batch := range [][]Completion{cli.CompletionQueue().Poll(3), cli.CompletionQueue().Poll(0)} {
		got += len(batch)
	}
	if got != n {
		t.Fatalf("polled %d completions, want %d", got, n)
	}
	if cli.CompletionQueue().Len() != 0 {
		t.Fatal("queue not drained")
	}
}

func TestWorkerThreadingModel(t *testing.T) {
	cli, srv, shutdown := testPair(t, ServerConfig{Threading: WorkerThreads, Workers: 4})
	defer shutdown()
	resp, err := cli.Call(0, []byte("via-worker"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp, []byte("via-worker")) {
		t.Fatal("payload mismatch")
	}
	if srv.Handled.Load() != 1 {
		t.Fatal("handled counter")
	}
}

// Long-running handlers must not block other requests under WorkerThreads,
// but do serialize under DispatchThreads — the paper's Table 4 effect.
func TestThreadingModelConcurrency(t *testing.T) {
	run := func(cfg ServerConfig) time.Duration {
		f := fabric.NewFabric()
		cnic, _ := f.CreateNIC(1, 4, 256)
		snic, _ := f.CreateNIC(2, 1, 256) // single dispatch thread
		srv := NewRpcThreadedServer(snic, cfg)
		_ = srv.Register(0, "slow", func(_ context.Context, req []byte) ([]byte, error) {
			time.Sleep(20 * time.Millisecond)
			return req, nil
		})
		_ = srv.Start()
		defer srv.Stop()
		pool, err := NewRpcClientPool(cnic, 4)
		if err != nil {
			panic(err)
		}
		defer pool.Close()
		if _, err := pool.ConnectAll(2); err != nil {
			panic(err)
		}
		start := time.Now()
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if _, err := pool.Client(i).Call(0, []byte("x")); err != nil {
					t.Errorf("call: %v", err)
				}
			}(i)
		}
		wg.Wait()
		return time.Since(start)
	}
	dispatch := run(ServerConfig{Threading: DispatchThreads})
	worker := run(ServerConfig{Threading: WorkerThreads, Workers: 4})
	if dispatch < 70*time.Millisecond {
		t.Errorf("dispatch threading should serialize 4x20ms handlers, took %v", dispatch)
	}
	if worker > 60*time.Millisecond {
		t.Errorf("worker threading should overlap handlers, took %v", worker)
	}
}

func TestTimeout(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 16)
	snic, _ := f.CreateNIC(2, 1, 16)
	srv := NewRpcThreadedServer(snic, ServerConfig{})
	_ = srv.Register(0, "stall", func(_ context.Context, req []byte) ([]byte, error) {
		time.Sleep(500 * time.Millisecond)
		return req, nil
	})
	_ = srv.Start()
	defer srv.Stop()
	cli, _ := NewRpcClient(cnic, 0)
	defer cli.Close()
	_, _ = cli.OpenConnection(2)
	cli.SetTimeout(30 * time.Millisecond)
	_, err := cli.Call(0, nil)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if cli.TimedOut.Load() != 1 {
		t.Fatal("timeout counter")
	}
}

func TestCallWithoutConnection(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 16)
	cli, _ := NewRpcClient(cnic, 0)
	defer cli.Close()
	if _, err := cli.Call(0, nil); err == nil {
		t.Fatal("call without connection succeeded")
	}
	if err := cli.CloseConnection(5); err == nil {
		t.Fatal("closing unopened connection succeeded")
	}
}

func TestMultipleConnectionsSRQ(t *testing.T) {
	// One client, connections to two different servers sharing its ring.
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 256)
	mk := func(addr uint32, tag string) *RpcThreadedServer {
		snic, _ := f.CreateNIC(addr, 1, 256)
		srv := NewRpcThreadedServer(snic, ServerConfig{})
		_ = srv.Register(0, "tag", func(_ context.Context, req []byte) ([]byte, error) {
			return []byte(tag + string(req)), nil
		})
		_ = srv.Start()
		return srv
	}
	s1 := mk(10, "one:")
	defer s1.Stop()
	s2 := mk(20, "two:")
	defer s2.Stop()
	cli, _ := NewRpcClient(cnic, 0)
	defer cli.Close()
	c1, _ := cli.OpenConnection(10)
	c2, _ := cli.OpenConnection(20)
	r1, err := cli.CallConn(c1, 0, []byte("a"))
	if err != nil || string(r1) != "one:a" {
		t.Fatalf("conn1: %q %v", r1, err)
	}
	r2, err := cli.CallConn(c2, 0, []byte("b"))
	if err != nil || string(r2) != "two:b" {
		t.Fatalf("conn2: %q %v", r2, err)
	}
}

func TestPoolParallelClients(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 8, 1024)
	snic, _ := f.CreateNIC(2, 8, 1024)
	srv := NewRpcThreadedServer(snic, ServerConfig{})
	_ = srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	_ = srv.Start()
	defer srv.Stop()
	pool, err := NewRpcClientPool(cnic, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if _, err := pool.ConnectAll(2); err != nil {
		t.Fatal(err)
	}
	var total atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < pool.Size(); i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				msg := []byte(fmt.Sprintf("c%d-%d", i, j))
				resp, err := pool.Client(i).Call(0, msg)
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if !bytes.Equal(resp, msg) {
					t.Errorf("client %d: cross-talk %q != %q", i, resp, msg)
					return
				}
				total.Add(1)
			}
		}(i)
	}
	wg.Wait()
	if total.Load() != 1600 {
		t.Fatalf("completed %d, want 1600", total.Load())
	}
}

func TestPoolValidation(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 2, 16)
	if _, err := NewRpcClientPool(cnic, 0); err == nil {
		t.Fatal("zero-size pool accepted")
	}
	if _, err := NewRpcClientPool(cnic, 3); err == nil {
		t.Fatal("pool larger than NIC flows accepted")
	}
}

func TestServerRegistrationRules(t *testing.T) {
	f := fabric.NewFabric()
	snic, _ := f.CreateNIC(2, 1, 16)
	srv := NewRpcThreadedServer(snic, ServerConfig{})
	if err := srv.Register(0, "a", func(context.Context, []byte) ([]byte, error) { return nil, nil }); err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(0, "b", func(context.Context, []byte) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if srv.FunctionName(0) != "a" {
		t.Fatal("function name lookup")
	}
	_ = srv.Start()
	defer srv.Stop()
	if err := srv.Register(1, "late", func(context.Context, []byte) ([]byte, error) { return nil, nil }); err == nil {
		t.Fatal("registration after start accepted")
	}
	if err := srv.Start(); err == nil {
		t.Fatal("double start accepted")
	}
}

func TestClientCloseUnblocksCalls(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 16)
	snic, _ := f.CreateNIC(2, 1, 16)
	srv := NewRpcThreadedServer(snic, ServerConfig{})
	release := make(chan struct{})
	_ = srv.Register(0, "never", func(_ context.Context, req []byte) ([]byte, error) {
		<-release
		return nil, nil
	})
	_ = srv.Start()
	defer srv.Stop()
	defer close(release)
	cli, _ := NewRpcClient(cnic, 0)
	_, _ = cli.OpenConnection(2)
	cli.SetTimeout(0)
	errCh := make(chan error, 1)
	go func() {
		_, err := cli.Call(0, nil)
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cli.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrClientClose) {
			t.Fatalf("err = %v, want ErrClientClose", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("call not unblocked by Close")
	}
	if _, err := cli.Call(0, nil); !errors.Is(err, ErrClientClose) {
		t.Fatal("call after close should fail")
	}
}

func TestServerThreadCounters(t *testing.T) {
	cli, srv, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	for i := 0; i < 5; i++ {
		if _, err := cli.Call(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	var sum uint64
	for _, th := range srv.Threads() {
		sum += th.Processed.Load()
	}
	if sum != 5 {
		t.Fatalf("thread processed sum = %d, want 5", sum)
	}
}

func TestServerTracing(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 64)
	snic, _ := f.CreateNIC(2, 1, 64)
	srv := NewRpcThreadedServer(snic, ServerConfig{Threading: WorkerThreads, Workers: 2})
	_ = srv.Register(0, "slowop", func(_ context.Context, req []byte) ([]byte, error) {
		time.Sleep(2 * time.Millisecond)
		return req, nil
	})
	_ = srv.Register(1, "fastop", func(_ context.Context, req []byte) ([]byte, error) { return req, nil })
	tc := trace.NewCollector(0)
	if err := srv.SetTracer(tc); err != nil {
		t.Fatal(err)
	}
	_ = srv.Start()
	defer srv.Stop()
	if err := srv.SetTracer(tc); err == nil {
		t.Fatal("SetTracer after Start accepted")
	}
	cli, _ := NewRpcClient(cnic, 0)
	defer cli.Close()
	_, _ = cli.OpenConnection(2)
	for i := 0; i < 5; i++ {
		if _, err := cli.Call(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
		if _, err := cli.Call(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	rep := tc.Analyze()
	if rep.Bottleneck() != "slowop" {
		t.Fatalf("bottleneck = %q, want slowop\n%s", rep.Bottleneck(), rep)
	}
	var slow, fast *trace.ServiceProfile
	for i := range rep.Profiles {
		switch rep.Profiles[i].Service {
		case "slowop":
			slow = &rep.Profiles[i]
		case "fastop":
			fast = &rep.Profiles[i]
		}
	}
	if slow == nil || fast == nil {
		t.Fatal("profiles missing")
	}
	if slow.Spans != 5 || fast.Spans != 5 {
		t.Fatalf("span counts: slow=%d fast=%d", slow.Spans, fast.Spans)
	}
	if slow.MeanBusy() < sim.Time(time.Millisecond) {
		t.Fatalf("slow op mean busy = %v, want >= 1ms", slow.MeanBusy())
	}
}
