package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/metrics"
	"dagger/internal/sim"
	"dagger/internal/trace"
	"dagger/internal/wire"
)

// ThreadingModel selects where RPC handlers run (§4.2, §5.7).
type ThreadingModel int

// Threading models.
const (
	// DispatchThreads runs handlers directly in the per-flow dispatch
	// thread (FaRM-style, lowest latency; long handlers block the flow's
	// RX ring).
	DispatchThreads ThreadingModel = iota
	// WorkerThreads hands requests from dispatch threads to a worker pool
	// (higher throughput for long-running handlers, extra queueing
	// latency). This is the paper's "Optimized" model for the Flight
	// service's heavyweight tiers.
	WorkerThreads
)

func (m ThreadingModel) String() string {
	if m == WorkerThreads {
		return "worker"
	}
	return "dispatch"
}

// Handler processes one request payload and returns the response payload.
// The request buffer is borrowed: the server recycles it after the response
// is sent, so a handler that wants to keep request bytes past its return
// must copy them. The returned response is read (marshalled into a frame)
// before the handler's thread proceeds, and is not retained.
//
// ctx carries the request's remaining deadline budget (from the wire header's
// Budget field) and is canceled when the server stops. Handlers that issue
// downstream RPCs should pass ctx along so every tier inherits a strictly
// shrunken deadline and doomed work is shed as early as possible.
type Handler func(ctx context.Context, req []byte) ([]byte, error)

// ServerConfig configures an RpcThreadedServer.
type ServerConfig struct {
	// Threading selects dispatch- or worker-thread processing.
	Threading ThreadingModel
	// Workers sizes the worker pool (WorkerThreads only; default 4).
	Workers int
	// WorkerQueue bounds the dispatch->worker queue (default 1024).
	WorkerQueue int
}

// RpcServerThread is one server event loop bound to one NIC flow: the
// dispatch thread of Figure 7.
type RpcServerThread struct {
	srv    *RpcThreadedServer
	flowID uint16
	flow   *fabric.Flow

	Processed metrics.Counter
}

// RpcThreadedServer owns a NIC's server side: a dispatch thread per flow
// and a registry of remote procedures.
type RpcThreadedServer struct {
	nic *fabric.SoftNIC
	cfg ServerConfig

	mu       sync.RWMutex
	handlers map[uint16]Handler
	names    map[uint16]string

	threads []*RpcServerThread
	work    chan workItem
	stop    chan struct{}
	wg      sync.WaitGroup
	started bool
	tracer  *trace.Collector
	start   time.Time

	// baseCtx is the parent of every handler context; Stop cancels it so
	// in-flight handlers blocked on downstream work unwind promptly.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// Counters. metrics.Counter is a drop-in for the atomic.Uint64 these
	// grew up as; every server registers them in its metrics registry.
	Handled metrics.Counter
	Errors  metrics.Counter
	// Shed counts requests dropped before handler invocation because their
	// deadline budget had already expired on arrival or in queue.
	Shed metrics.Counter

	reg *metrics.Registry
}

// Metrics returns the server's telemetry registry. The shed counter uses
// the cross-substrate name (shed.expired) so snapshots diff cleanly against
// the timing stack's NIC monitor.
func (s *RpcThreadedServer) Metrics() *metrics.Registry { return s.reg }

// describeMetrics registers the server's dispatch counters, including one
// per-thread processed counter.
func (s *RpcThreadedServer) describeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("rpc.handled", &s.Handled)
	reg.RegisterCounter("rpc.errors", &s.Errors)
	reg.RegisterCounter("shed.expired", &s.Shed)
	for _, t := range s.threads {
		reg.RegisterCounter(fmt.Sprintf("thread.%d.processed", t.flowID), &t.Processed)
	}
}

type workItem struct {
	t        *RpcServerThread
	m        wire.Message
	received time.Time
	deadline time.Time // zero when the request carries no budget
}

// ShedDecision is the functional substrate's entry into the shared
// dataplane shed policy: a request received at received carrying budget
// microseconds of deadline budget (0 = no deadline) is shed when the
// handler would only start at execStart, after the budget has expired.
// It is exported so the cross-substrate parity test can assert the server
// and the timing model's nicmodel.NIC.ShedExpired reach identical verdicts.
func ShedDecision(received, execStart time.Time, budget uint32) bool {
	elapsed := dataplane.ElapsedMicros(execStart.Sub(received).Nanoseconds())
	return dataplane.ShouldShed(budget, elapsed)
}

// NewRpcThreadedServer creates a server over all flows of nic.
func NewRpcThreadedServer(nic *fabric.SoftNIC, cfg ServerConfig) *RpcThreadedServer {
	if cfg.Workers <= 0 {
		cfg.Workers = 4
	}
	if cfg.WorkerQueue <= 0 {
		cfg.WorkerQueue = 1024
	}
	s := &RpcThreadedServer{
		nic:      nic,
		cfg:      cfg,
		handlers: make(map[uint16]Handler),
		names:    make(map[uint16]string),
		stop:     make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < nic.NumFlows(); i++ {
		fl, _ := nic.Flow(i)
		s.threads = append(s.threads, &RpcServerThread{srv: s, flowID: uint16(i), flow: fl})
	}
	s.reg = metrics.New()
	s.describeMetrics(s.reg)
	return s
}

// Register binds fnID to a handler. Registration must precede Start.
func (s *RpcThreadedServer) Register(fnID uint16, name string, h Handler) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: register after start")
	}
	if _, dup := s.handlers[fnID]; dup {
		return fmt.Errorf("core: function %d already registered", fnID)
	}
	s.handlers[fnID] = h
	s.names[fnID] = name
	return nil
}

// SetTracer attaches the lightweight request tracing system (§5.7): every
// handled request records a span (service = registered function name, queue
// = dispatch-to-execution wait, work = handler time). Must be called before
// Start.
func (s *RpcThreadedServer) SetTracer(c *trace.Collector) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return fmt.Errorf("core: set tracer after start")
	}
	s.tracer = c
	return nil
}

// FunctionName returns the registered name for a function id.
func (s *RpcThreadedServer) FunctionName(fnID uint16) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.names[fnID]
}

// Threads returns the server's dispatch threads.
func (s *RpcThreadedServer) Threads() []*RpcServerThread { return s.threads }

// Start launches dispatch threads (and the worker pool if configured).
func (s *RpcThreadedServer) Start() error {
	s.mu.Lock()
	if s.started {
		s.mu.Unlock()
		return fmt.Errorf("core: server already started")
	}
	s.started = true
	s.start = time.Now()
	s.mu.Unlock()

	if s.cfg.Threading == WorkerThreads {
		s.work = make(chan workItem, s.cfg.WorkerQueue)
		for i := 0; i < s.cfg.Workers; i++ {
			s.wg.Add(1)
			go s.workerLoop()
		}
	}
	for _, t := range s.threads {
		s.wg.Add(1)
		go s.dispatchLoop(t)
	}
	return nil
}

// Stop shuts down all threads and waits for them. The base handler context
// is canceled first so handlers blocked on downstream calls unwind.
func (s *RpcThreadedServer) Stop() {
	select {
	case <-s.stop:
		return
	default:
		s.baseCancel()
		close(s.stop)
	}
	s.wg.Wait()
	// All dispatch and worker threads have exited, but requests they parked
	// in the worker queue still hold payload-buffer loans; drain and repay
	// them so a stopped server leaves its flow pools balanced.
	if s.work != nil {
		for {
			select {
			case item := <-s.work:
				item.t.flow.Buffers().Put(item.m.Payload)
			default:
				return
			}
		}
	}
}

func (s *RpcThreadedServer) dispatchLoop(t *RpcServerThread) {
	defer s.wg.Done()
	pool := t.flow.Buffers()
	ras := wire.NewReassemblerPool(pool)
	for {
		frame, ok := t.flow.Recv(s.stop)
		if !ok {
			return
		}
		m, ok, err := reassemble(ras, pool, t.flowID, frame)
		pool.Put(frame)
		if err != nil || !ok {
			// No completed message; m is zero and Put(nil) is loan-neutral,
			// so repaying unconditionally keeps the ownership contract
			// uniform on every continue path.
			if errors.Is(err, wire.ErrBadChecksum) && s.tracer != nil {
				// A corrupted request never produces a trace (it is
				// unattributable); count the drop so a corrupted-traffic
				// profile is never mistaken for a clean one.
				s.tracer.NoteCorruptDrop()
			}
			pool.Put(m.Payload)
			continue
		}
		if m.Kind != wire.KindRequest {
			pool.Put(m.Payload)
			continue
		}
		received := time.Now()
		var deadline time.Time
		if m.Budget > 0 {
			deadline = received.Add(time.Duration(m.Budget) * time.Microsecond)
		}
		if s.cfg.Threading == WorkerThreads {
			select {
			case s.work <- workItem{t: t, m: m, received: received, deadline: deadline}:
			case <-s.stop:
				// Shutdown raced the enqueue: the request payload is still
				// this loop's loan, so repay it before exiting.
				pool.Put(m.Payload)
				return
			}
			continue
		}
		s.process(t, m, received, deadline)
	}
}

func (s *RpcThreadedServer) workerLoop() {
	defer s.wg.Done()
	for {
		select {
		case item := <-s.work:
			s.process(item.t, item.m, item.received, item.deadline)
		case <-s.stop:
			return
		}
	}
}

func (s *RpcThreadedServer) process(t *RpcServerThread, m wire.Message, received, deadline time.Time) {
	s.mu.RLock()
	h, ok := s.handlers[m.FnID]
	name := s.names[m.FnID]
	tracer := s.tracer
	s.mu.RUnlock()
	execStart := time.Now()

	resp := wire.Message{
		Header: wire.Header{
			Kind:    wire.KindResponse,
			ConnID:  m.ConnID,
			RPCID:   m.RPCID,
			FlowID:  m.FlowID, // steer back to the requester's flow
			FnID:    m.FnID,
			SrcAddr: s.nic.Addr(),
			DstAddr: m.SrcAddr,
		},
	}
	// ECN echo: a congestion mark stamped on the request (by any queue on
	// its way here) is reflected into the response, hint included, so the
	// client's control loop hears about server-side pressure. The response
	// can additionally pick up a fresh mark at the client's own RX ring.
	if m.Congested() {
		resp.Flags |= wire.FlagCongested
		resp.Occupancy = m.Occupancy
	}
	// Connection-cache echo: a request that missed the NIC's near-memory
	// connection cache (§4.2) is reflected into the response so the client
	// can observe a working set outgrowing the cache.
	if m.ConnMissed() {
		resp.Flags |= wire.FlagConnMiss
	}
	switch {
	case !ok:
		resp.Flags |= flagError
		resp.Payload = []byte(ErrNoFn.Error())
		s.Errors.Add(1)
	case ShedDecision(received, execStart, m.Budget):
		// The budget expired on arrival or while queued: shed without
		// invoking the handler — the caller already gave up, so any work
		// here would be doomed (the tail-amplification the budget exists
		// to prevent).
		resp.Flags |= flagShed
		s.Shed.Add(1)
		_ = s.nic.Send(&resp)
		t.flow.Buffers().Put(m.Payload)
		return
	default:
		ctx := s.baseCtx
		if !deadline.IsZero() {
			// Hand the handler the remaining budget so downstream calls
			// inherit a strictly shrunken deadline.
			var cancel context.CancelFunc
			ctx, cancel = context.WithDeadline(s.baseCtx, deadline)
			defer cancel()
		}
		if out, err := h(ctx, m.Payload); err != nil {
			resp.Flags |= flagError
			resp.Payload = []byte(err.Error())
			s.Errors.Add(1)
		} else {
			resp.Payload = out
		}
	}
	t.Processed.Add(1)
	s.Handled.Add(1)
	// Best-effort: a full client ring drops the response, mirroring the
	// paper's lossy transport.
	_ = s.nic.Send(&resp)
	// The request payload (from the flow pool via the reassembler) is done:
	// Send has marshalled the response, so recycling is safe even when the
	// handler echoed the request buffer back as the response.
	t.flow.Buffers().Put(m.Payload)

	if tracer != nil {
		if name == "" {
			name = fmt.Sprintf("fn-%d", m.FnID)
		}
		id := tracer.Begin()
		tracer.Record(id, trace.Span{
			Service:  name,
			Start:    sim.Time(received.Sub(s.start)),
			Queue:    sim.Time(execStart.Sub(received)),
			Work:     sim.Time(time.Since(execStart)),
			End:      sim.Time(time.Since(s.start)),
			Marked:   m.Congested(),
			ConnMiss: m.ConnMissed(),
		})
	}
}
