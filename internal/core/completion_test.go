package core

import (
	"sync"
	"testing"
)

// TestCompletionQueueConcurrentPollPush hammers the CompletionQueue — the
// linchpin of the asynchronous RPC path (§4.2) — with concurrent producers
// (the receive path calling complete) and consumers (application threads
// calling Poll with assorted batch sizes, plus Len/Total readers). Run
// under -race in CI, it must deliver every completion exactly once.
func TestCompletionQueueConcurrentPollPush(t *testing.T) {
	const (
		producers     = 4
		perProducer   = 5000
		pollers       = 4
		totalExpected = producers * perProducer
	)
	q := NewCompletionQueue()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.complete(completion{
					RPCID: uint64(p*perProducer + i + 1),
					FnID:  uint16(p),
				})
			}
		}(p)
	}

	var (
		mu       sync.Mutex
		received = make(map[uint64]bool, totalExpected)
		dupes    int
	)
	done := make(chan struct{})
	var pollWG sync.WaitGroup
	for c := 0; c < pollers; c++ {
		pollWG.Add(1)
		go func(batch int) {
			defer pollWG.Done()
			for {
				got := q.Poll(batch)
				if len(got) == 0 {
					select {
					case <-done:
						// Final drain: producers are finished, so one empty
						// poll after done means the queue is dry.
						if got := q.Poll(0); len(got) == 0 {
							return
						} else {
							record(&mu, received, &dupes, got)
						}
					default:
					}
					continue
				}
				record(&mu, received, &dupes, got)
			}
		}(c * 7) // batch sizes 0 (drain-all), 7, 14, 21
	}

	wg.Wait()
	close(done)
	pollWG.Wait()

	if dupes != 0 {
		t.Fatalf("%d completions delivered more than once", dupes)
	}
	if len(received) != totalExpected {
		t.Fatalf("received %d distinct completions, want %d", len(received), totalExpected)
	}
	if got := q.Total(); got != totalExpected {
		t.Fatalf("Total() = %d, want %d", got, totalExpected)
	}
	if got := q.Len(); got != 0 {
		t.Fatalf("Len() = %d after full drain, want 0", got)
	}
}

func record(mu *sync.Mutex, received map[uint64]bool, dupes *int, got []Completion) {
	mu.Lock()
	defer mu.Unlock()
	for _, c := range got {
		if received[c.RPCID] {
			*dupes++
		}
		received[c.RPCID] = true
	}
}

// TestCompletionQueuePollBatchBounds checks Poll's batching contract: a
// positive max bounds the batch, zero or negative drains everything, and
// order is preserved.
func TestCompletionQueuePollBatchBounds(t *testing.T) {
	q := NewCompletionQueue()
	for i := 1; i <= 10; i++ {
		q.complete(completion{RPCID: uint64(i)})
	}
	if got := q.Poll(3); len(got) != 3 || got[0].RPCID != 1 || got[2].RPCID != 3 {
		t.Fatalf("Poll(3) = %+v, want RPCIDs 1..3", got)
	}
	if got := q.Poll(-1); len(got) != 7 || got[0].RPCID != 4 || got[6].RPCID != 10 {
		t.Fatalf("Poll(-1) = %+v, want RPCIDs 4..10", got)
	}
	if got := q.Poll(0); len(got) != 0 {
		t.Fatalf("Poll(0) on empty queue = %+v, want empty", got)
	}
}
