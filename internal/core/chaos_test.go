package core

import (
	"bytes"
	"context"
	"testing"
	"time"

	"dagger/internal/fabric"
	"dagger/internal/faults"
)

// Delivery semantics under duplication, pinned end to end: the fabric is
// at-least-once (a duplicated request runs the handler again — handlers must
// be idempotent or deduplicate on their own state, see DESIGN.md §9), while
// call completion is exactly-once (the client's pending-table match completes
// each RPC once; the duplicate response is counted Late and its buffer
// repaid).
func TestDuplicateDeliveryAtLeastOnce(t *testing.T) {
	f := fabric.NewFabric()
	cnic, err := f.CreateNIC(1, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	snic, err := f.CreateNIC(2, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(faults.Config{
		Seed:  3,
		Rates: faults.Rates{Duplicate: faults.RateDenominator},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every request admitted at the server NIC is delivered twice; responses
	// come back over the un-faulted client NIC.
	snic.SetFaultInjector(inj)

	srv := NewRpcThreadedServer(snic, ServerConfig{})
	if err := srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	cli, err := NewRpcClient(cnic, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}

	const n = 20
	for i := 0; i < n; i++ {
		resp, err := cli.Call(0, []byte("dup?"))
		if err != nil {
			t.Fatalf("call %d under duplication: %v", i, err)
		}
		if !bytes.Equal(resp, []byte("dup?")) {
			t.Fatalf("call %d: resp %q", i, resp)
		}
		cli.Release(resp)
	}

	// At-least-once at the server: every duplicate ran the handler. The
	// duplicate responses trail their originals, so poll for the steady state.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Handled.Load() == 2*n && cli.Late.Load() == n {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if got := srv.Handled.Load(); got != 2*n {
		t.Fatalf("server handled %d requests, want %d (each delivered twice)", got, 2*n)
	}
	// Exactly-once completion at the client: one completion per call, the
	// duplicate response observable only as the call.late counter.
	if got := cli.Completed.Load(); got != n {
		t.Fatalf("client completed %d calls, want %d", got, n)
	}
	if got := cli.Late.Load(); got != n {
		t.Fatalf("client late responses = %d, want %d (one per duplicate)", got, n)
	}
}
