package core

import (
	"context"
	"errors"
	"testing"

	"dagger/internal/fabric"
	"dagger/internal/trace"
)

// connPair builds a client and started echo server over NICs with an
// explicit server-side connection cache capacity.
func connPair(t *testing.T, connCache int) (*RpcClient, *fabric.SoftNIC, func()) {
	t.Helper()
	f := fabric.NewFabric()
	cnic, err := f.CreateNIC(1, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	snic, err := f.CreateNICConns(2, 2, 256, connCache)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRpcThreadedServer(snic, ServerConfig{})
	if err := srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	tracer := trace.NewCollector(0)
	if err := srv.SetTracer(tracer); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(cnic, 0)
	if err != nil {
		t.Fatal(err)
	}
	return cli, snic, func() {
		cli.Close()
		srv.Stop()
	}
}

// TestClosePropagationEndToEnd covers the full close lifecycle: client
// CloseConnection emits a wire control frame, the server NIC retires its
// steering entry (OpenCount back to baseline), and a post-close call fails
// with the ErrConnNotOpen sentinel instead of being silently re-steered.
func TestClosePropagationEndToEnd(t *testing.T) {
	cli, snic, shutdown := connPair(t, 0)
	defer shutdown()
	id, err := cli.OpenConnection(2)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cli.CallConn(id, 0, []byte("ping"))
	if err != nil {
		t.Fatal(err)
	}
	cli.Release(resp)
	if got := snic.ConnOpenCount(); got != 1 {
		t.Fatalf("server open count after first call = %d, want 1", got)
	}
	serverOpens := snic.ConnStats().Opens

	if err := cli.CloseConnection(id); err != nil {
		t.Fatal(err)
	}
	// The fabric delivers control frames synchronously: by the time
	// CloseConnection returns, the server NIC has retired the entry.
	if got := snic.ConnOpenCount(); got != 0 {
		t.Fatalf("server open count after close = %d, want 0 (entry leaked)", got)
	}
	if _, err := cli.CallConn(id, 0, []byte("ping")); !errors.Is(err, ErrConnNotOpen) {
		t.Fatalf("post-close call: %v, want ErrConnNotOpen", err)
	}
	if err := cli.CloseConnection(id); !errors.Is(err, ErrConnNotOpen) {
		t.Fatalf("double close: %v, want ErrConnNotOpen", err)
	}
	// The failed call never reached the wire: no fresh server-side entry.
	if got := snic.ConnStats().Opens; got != serverOpens {
		t.Fatalf("post-close call re-opened server state (%d -> %d opens)", serverOpens, got)
	}

	// Churn: an open/call/close loop holds the server table at its
	// steady-state size — the boundedness the old unbounded map lacked.
	for i := 0; i < 50; i++ {
		id, err := cli.OpenConnection(2)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := cli.CallConn(id, 0, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		cli.Release(resp)
		if got := snic.ConnOpenCount(); got != 1 {
			t.Fatalf("iteration %d: server open count = %d, want 1", i, got)
		}
		if err := cli.CloseConnection(id); err != nil {
			t.Fatal(err)
		}
		if got := snic.ConnOpenCount(); got != 0 {
			t.Fatalf("iteration %d: server open count after close = %d, want 0", i, got)
		}
	}
}

// TestConnMissEchoedToClient drives a connection working set that aliases
// one server cache slot and checks the miss makes the full round trip:
// fabric stamp → server echo → client counter.
func TestConnMissEchoedToClient(t *testing.T) {
	cli, snic, shutdown := connPair(t, 4)
	defer shutdown()
	// A 2-flow client NIC mints ids 1, 3, 5, …; ids 1 and 5 alias one slot
	// of a size-4 cache.
	var ids []uint32
	for i := 0; i < 3; i++ {
		id, err := cli.OpenConnection(2)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	if ids[0] != 1 || ids[2] != 5 {
		t.Fatalf("connection ids = %v, want flow-interleaved 1,3,5", ids)
	}
	call := func(id uint32) {
		t.Helper()
		resp, err := cli.CallConn(id, 0, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		cli.Release(resp)
	}
	call(ids[0]) // first contact: open
	call(ids[2]) // first contact: open, evicts ids[0]
	if got := cli.ConnMisses.Load(); got != 0 {
		t.Fatalf("client conn misses after opens = %d, want 0", got)
	}
	call(ids[0]) // miss
	call(ids[2]) // miss
	if got := cli.ConnMisses.Load(); got != 2 {
		t.Fatalf("client conn misses = %d, want 2 (echoed FlagConnMiss)", got)
	}
	if got := snic.ConnMisses(); got != 2 {
		t.Fatalf("server NIC conn misses = %d, want 2", got)
	}
	// A conflict-free id stays hit-only.
	call(ids[1])
	call(ids[1])
	if got := cli.ConnMisses.Load(); got != 2 {
		t.Fatalf("conflict-free connection echoed a miss (total %d)", got)
	}
}
