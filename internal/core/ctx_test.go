package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dagger/internal/fabric"
	"dagger/internal/retry"
	"dagger/internal/ringbuf"
)

// waitPoolsBalanced polls until every pool's loan counters balance
// (gets == puts), i.e. every pooled buffer handed out by Get was repaid by
// Put — the PR-2 ownership contract. Late responses to abandoned calls
// drain asynchronously, so balance is eventually reached, not instant.
func waitPoolsBalanced(t *testing.T, pools map[string]*ringbuf.BufPool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		status := ""
		for name, p := range pools {
			gets, puts := p.Loans()
			if gets != puts {
				status += fmt.Sprintf("%s: gets=%d puts=%d; ", name, gets, puts)
			}
		}
		if status == "" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled buffers leaked: %s", status)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBudgetShrinksAcrossTiers is the multi-tier acceptance check: a 3-tier
// chain (client → mid server → leaf server) in which each downstream tier
// must observe a strictly smaller remaining deadline budget than its
// caller, because the budget is stamped on the wire at each hop from the
// caller's ctx and time passes in flight.
func TestBudgetShrinksAcrossTiers(t *testing.T) {
	f := fabric.NewFabric()

	// Tier C: leaf.
	nicC, err := f.CreateNIC(3, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	var remC atomic.Int64
	srvC := NewRpcThreadedServer(nicC, ServerConfig{})
	if err := srvC.Register(0, "leaf", func(ctx context.Context, req []byte) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			return nil, errors.New("leaf: ctx carries no deadline")
		}
		remC.Store(int64(time.Until(dl)))
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srvC.Start(); err != nil {
		t.Fatal(err)
	}
	defer srvC.Stop()

	// Tier B: middle server with its own downstream client. The handler
	// passes its ctx straight into the downstream call, so tier C inherits
	// whatever budget is left after B's queueing and work.
	nicB, err := f.CreateNIC(2, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	nicBC, err := f.CreateNIC(4, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	bcli, err := NewRpcClient(nicBC, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer bcli.Close()
	if _, err := bcli.OpenConnection(3); err != nil {
		t.Fatal(err)
	}
	var remB atomic.Int64
	srvB := NewRpcThreadedServer(nicB, ServerConfig{})
	if err := srvB.Register(0, "mid", func(ctx context.Context, req []byte) ([]byte, error) {
		dl, ok := ctx.Deadline()
		if !ok {
			return nil, errors.New("mid: ctx carries no deadline")
		}
		remB.Store(int64(time.Until(dl)))
		resp, err := bcli.CallContext(ctx, 0, req)
		if err != nil {
			return nil, err
		}
		out := append([]byte(nil), resp...)
		bcli.Release(resp)
		return out, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srvB.Start(); err != nil {
		t.Fatal(err)
	}
	defer srvB.Stop()

	// Tier A: the root client sets the total budget.
	nicA, err := f.CreateNIC(1, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(nicA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}

	const total = 2 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), total)
	defer cancel()
	resp, err := cli.CallContext(ctx, 0, []byte("hop"))
	if err != nil {
		t.Fatal(err)
	}
	if string(resp) != "hop" {
		t.Fatalf("resp = %q", resp)
	}
	cli.Release(resp)

	b, c := time.Duration(remB.Load()), time.Duration(remC.Load())
	if !(0 < c && c < b && b < total) {
		t.Fatalf("budgets not strictly shrinking: total=%v > mid=%v > leaf=%v > 0 violated", total, b, c)
	}
}

// TestServerShedsExpiredRequests parks a request in the worker queue behind
// an occupied single worker until its budget lapses: the server must shed
// it without invoking the handler, count it, and answer with a shed flag
// the client surfaces as ErrShed. (Worker threading is what makes the
// expiry deterministic: the budget clock starts when the dispatch thread
// reassembles the request, and the worker queue is where it then ages.)
func TestServerShedsExpiredRequests(t *testing.T) {
	f := fabric.NewFabric()
	nicS, err := f.CreateNIC(2, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRpcThreadedServer(nicS, ServerConfig{Threading: WorkerThreads, Workers: 1})
	started := make(chan struct{})
	release := make(chan struct{})
	if err := srv.Register(0, "occupy", func(_ context.Context, req []byte) ([]byte, error) {
		close(started)
		<-release
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	var fastRuns atomic.Int64
	if err := srv.Register(1, "fast", func(_ context.Context, req []byte) ([]byte, error) {
		fastRuns.Add(1)
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	nicA, err := f.CreateNIC(1, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(nicA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}

	// Occupy the server's only worker.
	if err := cli.CallAsync(0, []byte("block"), func(resp []byte, err error) {
		if err == nil {
			cli.Release(resp)
		}
	}); err != nil {
		t.Fatal(err)
	}
	<-started

	// Queue a budgeted request behind it in the worker queue; async, so
	// the shed response (not the client-side deadline) completes the
	// callback.
	shedErr := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := cli.CallAsyncContext(ctx, 1, []byte("doomed"), func(resp []byte, err error) {
		if err == nil {
			cli.Release(resp)
		}
		shedErr <- err
	}); err != nil {
		t.Fatal(err)
	}

	// Let the budget lapse while the request waits in the worker queue,
	// then free the worker.
	time.Sleep(30 * time.Millisecond)
	close(release)

	select {
	case err := <-shedErr:
		if !errors.Is(err, ErrShed) {
			t.Fatalf("err = %v, want ErrShed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("shed response never arrived")
	}
	if got := srv.Shed.Load(); got != 1 {
		t.Fatalf("Shed = %d, want 1", got)
	}
	if fastRuns.Load() != 0 {
		t.Fatal("handler ran for a request the server should have shed")
	}
	waitPoolsBalanced(t, map[string]*ringbuf.BufPool{
		"client-flow": cli.flow.Buffers(),
		"server-flow": srv.threads[0].flow.Buffers(),
	})
}

// TestCancelPromptnessAndPoolBalance cancels a call whose handler is
// blocked server-side: the client must return context.Canceled promptly
// (long before the handler completes), and once the late response drains,
// every pool's Get/Put loan accounting must balance — cancellation leaks
// no pooled buffers.
func TestCancelPromptnessAndPoolBalance(t *testing.T) {
	f := fabric.NewFabric()
	nicS, err := f.CreateNIC(2, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRpcThreadedServer(nicS, ServerConfig{})
	if err := srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	gate := make(chan struct{})
	if err := srv.Register(1, "gated", func(_ context.Context, req []byte) ([]byte, error) {
		close(entered)
		<-gate
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	nicA, err := f.CreateNIC(1, 1, 512)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(nicA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}

	// Normal traffic first, so the pools carry real loan counts.
	payload := []byte("0123456789abcdef0123456789abcdef0123456789abcdef")
	for i := 0; i < 50; i++ {
		resp, err := cli.Call(0, payload)
		if err != nil {
			t.Fatal(err)
		}
		cli.Release(resp)
	}

	// Cancel a call that is provably mid-flight: the handler has entered
	// and is blocked, so no response can race the abandon.
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		resp, err := cli.CallContext(ctx, 1, payload)
		if err == nil {
			cli.Release(resp)
		}
		done <- err
	}()
	<-entered
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
			t.Fatalf("cancel took %v to unblock the call", elapsed)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled call never returned")
	}
	if cli.Canceled.Load() != 1 {
		t.Fatalf("Canceled = %d, want 1", cli.Canceled.Load())
	}

	// Release the handler; its late response must be repaid to the pool by
	// the receive path (the abandoned caller is gone).
	close(gate)
	waitPoolsBalanced(t, map[string]*ringbuf.BufPool{
		"client-flow": cli.flow.Buffers(),
		"server-flow": srv.threads[0].flow.Buffers(),
	})
}

// TestConcurrentCallCancelCloseStress hammers the abandon/complete
// ownership race from all sides at once — calls with short deadlines,
// asynchronous cancels, and a mid-storm client Close — and relies on the
// race detector (CI runs this under -race) to catch unsynchronized access
// in the pooled call lifecycle.
func TestConcurrentCallCancelCloseStress(t *testing.T) {
	f := fabric.NewFabric()
	nicS, err := f.CreateNIC(2, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewRpcThreadedServer(nicS, ServerConfig{Threading: WorkerThreads, Workers: 4})
	if err := srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		// Stretch some handlers so cancels land mid-call.
		if len(req) > 0 && req[0]%2 == 1 {
			time.Sleep(200 * time.Microsecond)
		}
		return req, nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	nicA, err := f.CreateNIC(1, 4, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(nicA, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}

	allowed := func(err error) bool {
		return err == nil ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrTimeout) ||
			errors.Is(err, ErrClientClose) ||
			errors.Is(err, ErrShed) ||
			errors.Is(err, fabric.ErrRingFull)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var ctx context.Context
				var cancel context.CancelFunc
				if i%2 == 0 {
					ctx, cancel = context.WithTimeout(context.Background(), time.Duration(1+i%4)*time.Millisecond)
				} else {
					ctx, cancel = context.WithCancel(context.Background())
					go func() {
						time.Sleep(time.Duration(i%3) * 150 * time.Microsecond)
						cancel()
					}()
				}
				resp, err := cli.CallContext(ctx, 0, []byte{byte(g), byte(i)})
				if err == nil {
					cli.Release(resp)
				} else if !allowed(err) {
					t.Errorf("unexpected error: %v", err)
				}
				cancel()
			}
		}()
	}
	// Close the client while the storm is in progress.
	time.Sleep(20 * time.Millisecond)
	cli.Close()
	wg.Wait()
}

// TestCallRetryRingFull drives CallRetry against a full request ring (the
// server is never started, so nothing drains it): every attempt fails with
// the retryable fabric.ErrRingFull, the policy's attempt budget is
// consumed, and the last error surfaces.
func TestCallRetryRingFull(t *testing.T) {
	f := fabric.NewFabric()
	const ringSize = 8
	if _, err := f.CreateNIC(2, 1, ringSize); err != nil {
		t.Fatal(err)
	}
	nicA, err := f.CreateNIC(1, 1, ringSize)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewRpcClient(nicA, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(2); err != nil {
		t.Fatal(err)
	}

	// Fill the server's request ring.
	for i := 0; i < ringSize; i++ {
		if err := cli.CallAsync(0, nil, nil); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}

	p := retry.Policy{Base: time.Millisecond, Max: 4 * time.Millisecond, Multiplier: 2, MaxAttempts: 3, Seed: 1}
	_, err = cli.CallRetry(context.Background(), p, 0, nil)
	if !errors.Is(err, fabric.ErrRingFull) {
		t.Fatalf("err = %v, want ErrRingFull", err)
	}
	if drops := nicA.Drops.Load(); drops != uint64(p.MaxAttempts) {
		t.Fatalf("send attempts = %d, want %d", drops, p.MaxAttempts)
	}

	// With a ctx budget too small to absorb the next backoff, the retry
	// loop stops early and reports exhaustion wrapping the last error.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	p.Base = 50 * time.Millisecond
	p.Max = 100 * time.Millisecond
	_, err = cli.CallRetry(ctx, p, 0, nil)
	if !errors.Is(err, retry.ErrBudgetExhausted) || !errors.Is(err, fabric.ErrRingFull) {
		t.Fatalf("err = %v, want ErrBudgetExhausted wrapping ErrRingFull", err)
	}
}

// TestRetryableClassification pins the safe-to-retry set: only errors that
// prove the request never executed qualify.
func TestRetryableClassification(t *testing.T) {
	for _, tc := range []struct {
		err  error
		want bool
	}{
		{ErrShed, true},
		{fabric.ErrRingFull, true},
		{ErrCongested, true},
		{ErrTimeout, false},
		{ErrRemote, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{nil, false},
	} {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}
