package core

import (
	"sync"
	"testing"
	"time"

	"dagger/internal/fabric"
)

// allocReq spans two cache lines so the round trip exercises multi-line
// reassembly, not just the single-line fast path.
var allocReq = []byte("0123456789abcdef0123456789abcdef0123456789abcdef")

// warmAllocPath primes every free list on the round trip: frame and payload
// buffer pools, the call and timer pools, and the pending-map buckets.
func warmAllocPath(tb testing.TB, cli *RpcClient, iters int) {
	tb.Helper()
	for i := 0; i < iters; i++ {
		resp, err := cli.Call(0, allocReq)
		if err != nil {
			tb.Fatal(err)
		}
		cli.Release(resp)
	}
}

// BenchmarkSendRecvAllocs reports the round trip's allocation count (the
// EXPERIMENTS.md number; 0 allocs/op on the pooled path).
func BenchmarkSendRecvAllocs(b *testing.B) {
	cli, _, shutdown := testPair(b, ServerConfig{})
	defer shutdown()
	warmAllocPath(b, cli, 200)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := cli.Call(0, allocReq)
		if err != nil {
			b.Fatal(err)
		}
		cli.Release(resp)
	}
}

// TestSetTimeoutConcurrentWithCalls hammers SetTimeout while calls are in
// flight; under -race this is the regression test for the old unsynchronized
// timeout field.
func TestSetTimeoutConcurrentWithCalls(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		timeouts := []time.Duration{time.Second, 2 * time.Second, 0}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cli.SetTimeout(timeouts[i%len(timeouts)])
		}
	}()
	for i := 0; i < 500; i++ {
		resp, err := cli.Call(0, allocReq)
		if err != nil {
			t.Fatal(err)
		}
		cli.Release(resp)
	}
	close(stop)
	wg.Wait()
}

// TestCloseConnectionElectsLowestSurvivor pins the deterministic default
// re-election: closing the default connection must promote the
// lowest-numbered survivor, not whichever the map iterator yields first.
func TestCloseConnectionElectsLowestSurvivor(t *testing.T) {
	// Repeat with fresh clients: the old map-iteration election only
	// misbehaved probabilistically.
	for round := 0; round < 10; round++ {
		f := fabric.NewFabric()
		nic, err := f.CreateNIC(1, 1, 16)
		if err != nil {
			t.Fatal(err)
		}
		cli, err := NewRpcClient(nic, 0)
		if err != nil {
			t.Fatal(err)
		}
		ids := make([]uint32, 6)
		for i := range ids {
			if ids[i], err = cli.OpenConnection(uint32(10 + i)); err != nil {
				t.Fatal(err)
			}
		}
		// IDs ascend in open order, so ids[0] is both default and lowest.
		if err := cli.CloseConnection(ids[0]); err != nil {
			t.Fatal(err)
		}
		cli.mu.Lock()
		got, has := cli.defaultConn, cli.hasConn
		cli.mu.Unlock()
		if !has || got != ids[1] {
			t.Fatalf("round %d: default after close = %d (has=%v), want lowest survivor %d",
				round, got, has, ids[1])
		}
		// Closing a non-default connection must not move the default.
		if err := cli.CloseConnection(ids[3]); err != nil {
			t.Fatal(err)
		}
		cli.mu.Lock()
		got, has = cli.defaultConn, cli.hasConn
		cli.mu.Unlock()
		if !has || got != ids[1] {
			t.Fatalf("round %d: default moved to %d after closing non-default", round, got)
		}
		cli.Close()
		nic.Close()
	}
}
