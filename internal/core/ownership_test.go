package core

import (
	"bytes"
	"context"
	"sync/atomic"
	"testing"
	"time"

	"dagger/internal/fabric"
	"dagger/internal/ringbuf"
	"dagger/internal/wire"
)

// Regression tests for pooled-buffer ownership on the RPC receive path. Each
// pins a leak found by the bufownership dataflow analyzer: every pooled
// payload loan must be repaid on every path, which the tests assert through
// the pool's Get/Put loan counters.

func ownershipPool() *ringbuf.BufPool {
	return ringbuf.NewBufPool(8, nil, wire.MaxFrameSize)
}

// TestReassembleMultiMessageRepaysPool covers the malformed-batching path:
// when one frame completes two messages, only the last is delivered but the
// earlier payload's pool loan must still be repaid inside reassemble.
func TestReassembleMultiMessageRepaysPool(t *testing.T) {
	pool := ownershipPool()
	ras := wire.NewReassemblerPool(pool)

	first := &wire.Message{
		Header:  wire.Header{Kind: wire.KindRequest, RPCID: 1},
		Payload: []byte("first"),
	}
	second := &wire.Message{
		Header:  wire.Header{Kind: wire.KindRequest, RPCID: 2},
		Payload: []byte("second"),
	}
	frame, err := wire.MarshalAppend(nil, first)
	if err != nil {
		t.Fatal(err)
	}
	frame, err = wire.MarshalAppend(frame, second)
	if err != nil {
		t.Fatal(err)
	}

	m, ok, err := reassemble(ras, pool, 0, frame)
	if err != nil || !ok {
		t.Fatalf("reassemble: ok=%v err=%v, want completed message", ok, err)
	}
	if m.RPCID != 2 || !bytes.Equal(m.Payload, []byte("second")) {
		t.Fatalf("reassemble delivered RPCID=%d payload=%q, want the last message", m.RPCID, m.Payload)
	}
	// Repay the delivered payload, as the dispatch loop does once it is done.
	pool.Put(m.Payload)
	if gets, puts := pool.Loans(); gets != puts {
		t.Fatalf("pool loans unbalanced after multi-message frame: gets=%d puts=%d", gets, puts)
	}
}

// TestReassembleErrorAfterCompletedRepaysPool covers the error-after-done
// path: a frame whose first message completes and whose trailing line is
// garbage must repay the completed payload's loan before returning the error.
func TestReassembleErrorAfterCompletedRepaysPool(t *testing.T) {
	pool := ownershipPool()
	ras := wire.NewReassemblerPool(pool)

	msg := &wire.Message{
		Header:  wire.Header{Kind: wire.KindRequest, RPCID: 7},
		Payload: []byte("payload"),
	}
	frame, err := wire.MarshalAppend(nil, msg)
	if err != nil {
		t.Fatal(err)
	}
	// A zeroed trailing line fails ParseHeader (bad magic) after the first
	// message already completed and minted a pooled payload.
	frame = append(frame, make([]byte, wire.CacheLineSize)...)

	m, ok, err := reassemble(ras, pool, 0, frame)
	if err == nil || ok {
		t.Fatalf("reassemble: ok=%v err=%v, want error and no message", ok, err)
	}
	if m.Payload != nil {
		t.Fatalf("reassemble returned payload %q alongside error", m.Payload)
	}
	// Mirror the call sites, which Put the (nil) payload unconditionally on
	// the continue path; Put(nil) must be loan-neutral.
	pool.Put(m.Payload)
	if gets, puts := pool.Loans(); gets != puts {
		t.Fatalf("pool loans unbalanced after error mid-frame: gets=%d puts=%d", gets, puts)
	}
}

// TestStopDrainsWorkerQueue covers the shutdown path of the WorkerThreads
// model: requests parked in the dispatch->worker queue when Stop is called
// still hold payload loans, which Stop must drain and repay so the server's
// flow pool balances.
func TestStopDrainsWorkerQueue(t *testing.T) {
	fab := fabric.NewFabric()
	clientNIC, err := fab.CreateNIC(0x0A000001, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	serverNIC, err := fab.CreateNIC(0x0A000002, 1, 0)
	if err != nil {
		t.Fatal(err)
	}

	srv := NewRpcThreadedServer(serverNIC, ServerConfig{
		Threading:   WorkerThreads,
		Workers:     1,
		WorkerQueue: 8,
	})
	var entered atomic.Int32
	err = srv.Register(0, "block", func(ctx context.Context, req []byte) ([]byte, error) {
		entered.Add(1)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	cli, err := NewRpcClient(clientNIC, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(0x0A000002); err != nil {
		t.Fatal(err)
	}

	// One request occupies the single worker (blocked in the handler); the
	// rest pile up in the worker queue.
	const requests = 4
	for i := 0; i < requests; i++ {
		if err := cli.CallAsync(0, []byte("ping"), func([]byte, error) {}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for entered.Load() < 1 || len(srv.work) < requests-1 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: entered=%d queued=%d", entered.Load(), len(srv.work))
		}
		time.Sleep(time.Millisecond)
	}

	// Stop cancels the blocked handler, stops the worker and dispatch
	// threads, and must repay the loans of every request still parked in the
	// queue.
	srv.Stop()

	fl, err := serverNIC.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	if gets, puts := fl.Buffers().Loans(); gets != puts {
		t.Fatalf("server flow pool unbalanced after Stop: gets=%d puts=%d", gets, puts)
	}
}
