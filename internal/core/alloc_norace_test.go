//go:build !race

package core

import (
	"context"
	"testing"
)

// TestSendRecvZeroAlloc is the tentpole acceptance check: once the pools are
// warm, a synchronous in-process round trip (send, serve, receive, release)
// performs zero heap allocations — across all goroutines, since AllocsPerRun
// counts process-wide mallocs. Excluded under -race: the detector's
// instrumentation allocates on its own behalf.
func TestSendRecvZeroAlloc(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	warmAllocPath(t, cli, 200)
	avg := testing.AllocsPerRun(500, func() {
		resp, err := cli.Call(0, allocReq)
		if err != nil {
			t.Fatal(err)
		}
		cli.Release(resp)
	})
	if avg != 0 {
		t.Fatalf("round trip allocates %.2f times/op; want 0", avg)
	}
}

// TestCallContextZeroAlloc pins the ctx-first API to the same budget: an
// explicit CallContext with context.Background() takes the identical pooled
// path (Background's nil Done channel keeps the wait select allocation-free,
// and a zero budget skips the server's deadline context).
func TestCallContextZeroAlloc(t *testing.T) {
	cli, _, shutdown := testPair(t, ServerConfig{})
	defer shutdown()
	warmAllocPath(t, cli, 200)
	ctx := context.Background()
	avg := testing.AllocsPerRun(500, func() {
		resp, err := cli.CallContext(ctx, 0, allocReq)
		if err != nil {
			t.Fatal(err)
		}
		cli.Release(resp)
	})
	if avg != 0 {
		t.Fatalf("ctx-first round trip allocates %.2f times/op; want 0", avg)
	}
}
