// Package memcached implements a memcached-like in-memory key-value store:
// a sharded hash table with per-shard locking, LRU eviction under a memory
// bound, item flags and expiration-free TTL semantics reduced to the SET/GET
// subset the paper drives over Dagger (§5.6). The original protocol's
// command semantics (STORED/NOT_FOUND responses, flags round-tripping) are
// preserved so the Dagger port can "keep the original memcached protocol to
// verify the integrity and correctness of the data".
package memcached

import (
	"container/list"
	"errors"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// Errors mirroring memcached's protocol responses.
var (
	// ErrNotFound is returned for missing keys (NOT_FOUND).
	ErrNotFound = errors.New("memcached: NOT_FOUND")
	// ErrCASMismatch is returned when a CAS token is stale (EXISTS).
	ErrCASMismatch = errors.New("memcached: EXISTS")
)

// Item is one stored value with memcached's metadata.
type Item struct {
	Key   string
	Value []byte
	Flags uint32
	CAS   uint64
}

type entry struct {
	item Item
	elem *list.Element
}

type shard struct {
	mu    sync.Mutex
	items map[string]*entry
	lru   *list.List // front = most recently used
	bytes int64
}

// Store is a sharded, LRU-bounded KVS.
type Store struct {
	shards   []*shard
	maxBytes int64 // per shard
	casSeq   atomic.Uint64

	Hits      atomic.Uint64
	MissCount atomic.Uint64
	Sets      atomic.Uint64
	Evictions atomic.Uint64
}

// New creates a store with nShards shards and a total memory bound in
// bytes (0 = unbounded).
func New(nShards int, maxBytes int64) *Store {
	if nShards <= 0 {
		nShards = 8
	}
	s := &Store{maxBytes: 0}
	if maxBytes > 0 {
		s.maxBytes = maxBytes / int64(nShards)
		if s.maxBytes == 0 {
			s.maxBytes = 1
		}
	}
	for i := 0; i < nShards; i++ {
		s.shards = append(s.shards, &shard{
			items: make(map[string]*entry),
			lru:   list.New(),
		})
	}
	return s
}

func (s *Store) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return s.shards[h.Sum32()%uint32(len(s.shards))]
}

func itemBytes(key string, val []byte) int64 {
	return int64(len(key) + len(val) + 48) // struct overhead estimate
}

// Set stores a value, evicting LRU items if the shard exceeds its bound.
// It returns the item's CAS token.
func (s *Store) Set(key string, value []byte, flags uint32) uint64 {
	cas := s.casSeq.Add(1)
	sh := s.shardFor(key)
	val := append([]byte(nil), value...)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.items[key]; ok {
		sh.bytes += int64(len(val) - len(e.item.Value))
		e.item.Value = val
		e.item.Flags = flags
		e.item.CAS = cas
		sh.lru.MoveToFront(e.elem)
	} else {
		e := &entry{item: Item{Key: key, Value: val, Flags: flags, CAS: cas}}
		e.elem = sh.lru.PushFront(e)
		sh.items[key] = e
		sh.bytes += itemBytes(key, val)
	}
	s.Sets.Add(1)
	if s.maxBytes > 0 {
		for sh.bytes > s.maxBytes && sh.lru.Len() > 1 {
			oldest := sh.lru.Back()
			victim := oldest.Value.(*entry)
			sh.lru.Remove(oldest)
			delete(sh.items, victim.item.Key)
			sh.bytes -= itemBytes(victim.item.Key, victim.item.Value)
			s.Evictions.Add(1)
		}
	}
	return cas
}

// Get fetches a value, refreshing its LRU position.
func (s *Store) Get(key string) (Item, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		s.MissCount.Add(1)
		return Item{}, ErrNotFound
	}
	sh.lru.MoveToFront(e.elem)
	s.Hits.Add(1)
	item := e.item
	item.Value = append([]byte(nil), e.item.Value...)
	return item, nil
}

// CompareAndSwap stores value only if the caller's CAS token matches the
// item's current token (memcached's cas command). It returns the new token
// on success, ErrNotFound for missing keys, and ErrCASMismatch when another
// writer got there first.
func (s *Store) CompareAndSwap(key string, value []byte, flags uint32, cas uint64) (uint64, error) {
	newCAS := s.casSeq.Add(1)
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		s.MissCount.Add(1)
		return 0, ErrNotFound
	}
	if e.item.CAS != cas {
		return 0, ErrCASMismatch
	}
	val := append([]byte(nil), value...)
	sh.bytes += int64(len(val) - len(e.item.Value))
	e.item.Value = val
	e.item.Flags = flags
	e.item.CAS = newCAS
	sh.lru.MoveToFront(e.elem)
	s.Sets.Add(1)
	return newCAS, nil
}

// Delete removes a key; it reports whether the key existed.
func (s *Store) Delete(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[key]
	if !ok {
		return false
	}
	sh.lru.Remove(e.elem)
	delete(sh.items, key)
	sh.bytes -= itemBytes(key, e.item.Value)
	return true
}

// Len returns the total number of stored items.
func (s *Store) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// Bytes returns the approximate resident size.
func (s *Store) Bytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.Lock()
		n += sh.bytes
		sh.mu.Unlock()
	}
	return n
}
