package memcached

import (
	"context"
	"errors"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/wire"
)

// This file is the Dagger port of memcached (§5.6): the original store runs
// unchanged; only its transport is swapped from kernel TCP/IP to Dagger
// RPCs. As in the paper, the change is small — the handlers below replace
// memcached's connection state machine with two registered functions while
// keeping the protocol's command semantics.

// Function IDs for the memcached service.
const (
	FnGet uint16 = iota
	FnSet
	FnDelete
	FnCAS
)

// Serve registers memcached's GET/SET commands on a Dagger server over nic
// and starts it.
func Serve(nic *fabric.SoftNIC, store *Store, cfg core.ServerConfig) (*core.RpcThreadedServer, error) {
	srv := core.NewRpcThreadedServer(nic, cfg)
	if err := srv.Register(FnGet, "memcached.get", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		key := string(d.Bytes16())
		if err := d.Err(); err != nil {
			return nil, err
		}
		item, err := store.Get(key)
		e := wire.NewEncoder(nil)
		if errors.Is(err, ErrNotFound) {
			e.Bool(false)
			return e.Bytes(), nil
		}
		e.Bool(true)
		e.Uint32(item.Flags)
		e.Uint64(item.CAS)
		e.Bytes16(item.Value)
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Register(FnSet, "memcached.set", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		key := string(d.Bytes16())
		flags := d.Uint32()
		value := d.Bytes16()
		if err := d.Err(); err != nil {
			return nil, err
		}
		cas := store.Set(key, value, flags)
		e := wire.NewEncoder(nil)
		e.Uint64(cas)
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Register(FnDelete, "memcached.delete", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		key := string(d.Bytes16())
		if err := d.Err(); err != nil {
			return nil, err
		}
		e := wire.NewEncoder(nil)
		e.Bool(store.Delete(key))
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Register(FnCAS, "memcached.cas", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		key := string(d.Bytes16())
		flags := d.Uint32()
		cas := d.Uint64()
		value := d.Bytes16()
		if err := d.Err(); err != nil {
			return nil, err
		}
		newCAS, err := store.CompareAndSwap(key, value, flags, cas)
		e := wire.NewEncoder(nil)
		switch {
		case errors.Is(err, ErrNotFound):
			e.Uint32(casNotFound)
		case errors.Is(err, ErrCASMismatch):
			e.Uint32(casExists)
		default:
			e.Uint32(casStored)
			e.Uint64(newCAS)
		}
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}

// CAS reply status codes on the wire.
const (
	casStored uint32 = iota
	casNotFound
	casExists
)

// Client is a typed memcached client over a Dagger RpcClient.
type Client struct {
	c    *core.RpcClient
	conn uint32 // 0 = the client's default connection
}

// NewClient wraps an RpcClient (with an open connection to the server).
func NewClient(c *core.RpcClient) *Client { return &Client{c: c} }

// NewClientConn wraps an RpcClient using a specific connection — for
// clients holding connections to several services over one ring.
func NewClientConn(c *core.RpcClient, connID uint32) *Client {
	return &Client{c: c, conn: connID}
}

func (mc *Client) call(ctx context.Context, fnID uint16, req []byte) ([]byte, error) {
	if mc.conn != 0 {
		return mc.c.CallConnContext(ctx, mc.conn, fnID, req)
	}
	return mc.c.CallContext(ctx, fnID, req)
}

// Get fetches key; a NOT_FOUND reply maps back to ErrNotFound.
func (mc *Client) Get(key string) (Item, error) {
	return mc.GetContext(context.Background(), key)
}

// GetContext is Get under ctx's deadline/cancellation.
func (mc *Client) GetContext(ctx context.Context, key string) (Item, error) {
	e := wire.NewEncoder(nil)
	e.Bytes16([]byte(key))
	out, err := mc.call(ctx, FnGet, e.Bytes())
	if err != nil {
		return Item{}, err
	}
	d := wire.NewDecoder(out)
	if !d.Bool() {
		return Item{}, ErrNotFound
	}
	item := Item{Key: key, Flags: d.Uint32(), CAS: d.Uint64()}
	item.Value = append([]byte(nil), d.Bytes16()...)
	return item, d.Err()
}

// Set stores key=value and returns the CAS token.
func (mc *Client) Set(key string, value []byte, flags uint32) (uint64, error) {
	return mc.SetContext(context.Background(), key, value, flags)
}

// SetContext is Set under ctx's deadline/cancellation.
func (mc *Client) SetContext(ctx context.Context, key string, value []byte, flags uint32) (uint64, error) {
	e := wire.NewEncoder(nil)
	e.Bytes16([]byte(key))
	e.Uint32(flags)
	e.Bytes16(value)
	out, err := mc.call(ctx, FnSet, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(out)
	cas := d.Uint64()
	return cas, d.Err()
}

// Delete removes key; it reports whether the key existed.
func (mc *Client) Delete(key string) (bool, error) {
	return mc.DeleteContext(context.Background(), key)
}

// DeleteContext is Delete under ctx's deadline/cancellation.
func (mc *Client) DeleteContext(ctx context.Context, key string) (bool, error) {
	e := wire.NewEncoder(nil)
	e.Bytes16([]byte(key))
	out, err := mc.call(ctx, FnDelete, e.Bytes())
	if err != nil {
		return false, err
	}
	d := wire.NewDecoder(out)
	existed := d.Bool()
	return existed, d.Err()
}

// CompareAndSwap updates key only if cas matches the stored token, keeping
// memcached's STORED / NOT_FOUND / EXISTS semantics across the wire.
func (mc *Client) CompareAndSwap(key string, value []byte, flags uint32, cas uint64) (uint64, error) {
	e := wire.NewEncoder(nil)
	e.Bytes16([]byte(key))
	e.Uint32(flags)
	e.Uint64(cas)
	e.Bytes16(value)
	out, err := mc.call(context.Background(), FnCAS, e.Bytes())
	if err != nil {
		return 0, err
	}
	d := wire.NewDecoder(out)
	switch d.Uint32() {
	case casNotFound:
		return 0, ErrNotFound
	case casExists:
		return 0, ErrCASMismatch
	}
	newCAS := d.Uint64()
	return newCAS, d.Err()
}
