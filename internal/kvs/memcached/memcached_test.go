package memcached

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"dagger/internal/core"
	"dagger/internal/fabric"
)

func TestSetGet(t *testing.T) {
	s := New(4, 0)
	cas1 := s.Set("k", []byte("v1"), 7)
	item, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(item.Value) != "v1" || item.Flags != 7 || item.CAS != cas1 {
		t.Fatalf("item = %+v", item)
	}
	cas2 := s.Set("k", []byte("v2"), 9)
	if cas2 <= cas1 {
		t.Fatal("CAS not monotone")
	}
	item, _ = s.Get("k")
	if string(item.Value) != "v2" || item.Flags != 9 {
		t.Fatalf("overwrite failed: %+v", item)
	}
}

func TestGetMissing(t *testing.T) {
	s := New(4, 0)
	if _, err := s.Get("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if s.MissCount.Load() != 1 {
		t.Fatal("miss counter")
	}
}

func TestDelete(t *testing.T) {
	s := New(4, 0)
	s.Set("k", []byte("v"), 0)
	if !s.Delete("k") {
		t.Fatal("delete existing returned false")
	}
	if s.Delete("k") {
		t.Fatal("delete missing returned true")
	}
	if _, err := s.Get("k"); err == nil {
		t.Fatal("deleted key still readable")
	}
	if s.Len() != 0 {
		t.Fatal("len after delete")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(1, 2048)
	for i := 0; i < 100; i++ {
		s.Set(fmt.Sprintf("key-%03d", i), make([]byte, 64), 0)
	}
	if s.Evictions.Load() == 0 {
		t.Fatal("no evictions under memory pressure")
	}
	if s.Bytes() > 2048 {
		t.Fatalf("resident %d exceeds bound", s.Bytes())
	}
	// Recently-written keys survive; the oldest are gone.
	if _, err := s.Get("key-099"); err != nil {
		t.Fatal("most recent key evicted")
	}
	if _, err := s.Get("key-000"); err == nil {
		t.Fatal("oldest key survived")
	}
}

func TestLRUTouchOnGet(t *testing.T) {
	s := New(1, 800)
	s.Set("hot", make([]byte, 32), 0)
	for i := 0; i < 50; i++ {
		s.Set(fmt.Sprintf("filler-%d", i), make([]byte, 32), 0)
		s.Get("hot") // keep refreshing
	}
	if _, err := s.Get("hot"); err != nil {
		t.Fatal("LRU-touched key was evicted")
	}
}

func TestValueIsolation(t *testing.T) {
	s := New(2, 0)
	v := []byte("mutable")
	s.Set("k", v, 0)
	v[0] = 'X'
	item, _ := s.Get("k")
	if string(item.Value) != "mutable" {
		t.Fatal("store aliased caller's buffer")
	}
	item.Value[0] = 'Y'
	item2, _ := s.Get("k")
	if string(item2.Value) != "mutable" {
		t.Fatal("returned buffer aliased store")
	}
}

// Property: the store behaves like a map under set/get/delete (no memory
// bound).
func TestMapEquivalenceProperty(t *testing.T) {
	f := func(ops []uint8, vals []byte) bool {
		s := New(4, 0)
		model := map[string][]byte{}
		for i, op := range ops {
			key := fmt.Sprintf("k%d", op%16)
			switch op % 3 {
			case 0:
				v := []byte{byte(i)}
				if len(vals) > 0 {
					v = append(v, vals[i%len(vals)])
				}
				s.Set(key, v, 0)
				model[key] = v
			case 1:
				got, err := s.Get(key)
				want, ok := model[key]
				if ok != (err == nil) {
					return false
				}
				if ok && !bytes.Equal(got.Value, want) {
					return false
				}
			case 2:
				if s.Delete(key) != (model[key] != nil) {
					return false
				}
				delete(model, key)
			}
		}
		return s.Len() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(16, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%50)
				s.Set(key, []byte(key), 0)
				if item, err := s.Get(key); err != nil || string(item.Value) != key {
					t.Errorf("concurrent get %q: %v", key, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// The Dagger port: SET/GET over the RPC fabric with protocol semantics
// preserved.
func TestDaggerPortEndToEnd(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 256)
	snic, _ := f.CreateNIC(2, 2, 256)
	store := New(8, 0)
	srv, err := Serve(snic, store, core.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	rc, _ := core.NewRpcClient(cnic, 0)
	defer rc.Close()
	if _, err := rc.OpenConnection(2); err != nil {
		t.Fatal(err)
	}
	mc := NewClient(rc)

	if _, err := mc.Get("missing"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss err = %v", err)
	}
	cas, err := mc.Set("greeting", []byte("hello dagger"), 42)
	if err != nil || cas == 0 {
		t.Fatalf("set: cas=%d err=%v", cas, err)
	}
	item, err := mc.Get("greeting")
	if err != nil {
		t.Fatal(err)
	}
	if string(item.Value) != "hello dagger" || item.Flags != 42 || item.CAS != cas {
		t.Fatalf("round trip: %+v", item)
	}
	// Data integrity across many keys (the paper's correctness check).
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("bulk-%d", i)
		if _, err := mc.Set(k, []byte(k), uint32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("bulk-%d", i)
		item, err := mc.Get(k)
		if err != nil || string(item.Value) != k || item.Flags != uint32(i) {
			t.Fatalf("bulk %d: %+v %v", i, item, err)
		}
	}
}

func TestCompareAndSwap(t *testing.T) {
	s := New(4, 0)
	cas1 := s.Set("k", []byte("v1"), 0)
	// Successful CAS with the current token.
	cas2, err := s.CompareAndSwap("k", []byte("v2"), 5, cas1)
	if err != nil || cas2 <= cas1 {
		t.Fatalf("cas: %d %v", cas2, err)
	}
	item, _ := s.Get("k")
	if string(item.Value) != "v2" || item.Flags != 5 {
		t.Fatalf("item = %+v", item)
	}
	// Stale token.
	if _, err := s.CompareAndSwap("k", []byte("v3"), 0, cas1); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale cas err = %v", err)
	}
	// Missing key.
	if _, err := s.CompareAndSwap("nope", []byte("v"), 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing cas err = %v", err)
	}
}

func TestDaggerPortDeleteAndCAS(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 256)
	snic, _ := f.CreateNIC(2, 1, 256)
	store := New(8, 0)
	srv, err := Serve(snic, store, core.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	rc, _ := core.NewRpcClient(cnic, 0)
	defer rc.Close()
	if _, err := rc.OpenConnection(2); err != nil {
		t.Fatal(err)
	}
	mc := NewClient(rc)

	cas, err := mc.Set("k", []byte("v1"), 0)
	if err != nil {
		t.Fatal(err)
	}
	// CAS over the wire: success, then stale.
	cas2, err := mc.CompareAndSwap("k", []byte("v2"), 1, cas)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mc.CompareAndSwap("k", []byte("v3"), 1, cas); !errors.Is(err, ErrCASMismatch) {
		t.Fatalf("stale cas over wire: %v", err)
	}
	if _, err := mc.CompareAndSwap("ghost", []byte("v"), 0, cas2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing cas over wire: %v", err)
	}
	item, err := mc.Get("k")
	if err != nil || string(item.Value) != "v2" || item.CAS != cas2 {
		t.Fatalf("after cas: %+v %v", item, err)
	}
	// Delete over the wire.
	existed, err := mc.Delete("k")
	if err != nil || !existed {
		t.Fatalf("delete: %v %v", existed, err)
	}
	existed, err = mc.Delete("k")
	if err != nil || existed {
		t.Fatalf("double delete: %v %v", existed, err)
	}
	if _, err := mc.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Fatal("deleted key still readable over wire")
	}
}
