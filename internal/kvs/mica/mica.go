// Package mica implements a MICA-like key-value store (Lim et al., NSDI'14
// — the paper's second KVS workload, §5.6): data is partitioned across
// cores, each partition pairs a lossy bucket index with a circular append
// log, and requests reach the right partition through key-hash ("object
// level") steering rather than locks. Under Dagger, that steering runs in
// the NIC's load balancer (§5.7), so a partition is only ever touched by
// its own server flow — the EREW mode of the original system.
package mica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math"
)

// Errors returned by partition operations.
var (
	ErrNotFound = errors.New("mica: not found")
	ErrTooLarge = errors.New("mica: item exceeds log capacity")
)

const (
	bucketWays = 8 // entries per index bucket (lossy 8-way)
	entryHdr   = 4 // key length + value length, uint16 each
)

type idxEntry struct {
	tag    uint16
	valid  bool
	offset uint64 // absolute log offset of the item record
}

// Partition is one core's shard: a lossy index over a circular log.
// Partitions are not internally synchronized — exclusive access per flow is
// the point of the design.
type Partition struct {
	buckets [][]idxEntry
	mask    uint32

	log  []byte
	head uint64 // oldest valid byte (absolute offset)
	tail uint64 // next write position (absolute offset)

	Hits        uint64
	Misses      uint64
	Sets        uint64
	IndexEvicts uint64 // lossy-bucket displacements
	LogEvicts   uint64 // items aged out by log wrap
}

// NewPartition creates a partition with nBuckets index buckets (rounded to
// a power of two) over a logBytes circular log.
func NewPartition(nBuckets int, logBytes int) *Partition {
	if nBuckets <= 0 || logBytes <= 0 {
		panic("mica: partition sizes must be positive")
	}
	n := 1
	for n < nBuckets {
		n <<= 1
	}
	p := &Partition{
		buckets: make([][]idxEntry, n),
		mask:    uint32(n - 1),
		log:     make([]byte, logBytes),
	}
	for i := range p.buckets {
		p.buckets[i] = make([]idxEntry, bucketWays)
	}
	return p
}

func keyHash(key []byte) uint64 {
	h := fnv.New64a()
	h.Write(key)
	return h.Sum64()
}

// logWrite appends a record and returns its absolute offset, advancing head
// past aged-out items.
func (p *Partition) logWrite(key, value []byte) (uint64, error) {
	rec := entryHdr + len(key) + len(value)
	if rec > len(p.log) {
		return 0, ErrTooLarge
	}
	// Age out the oldest items until the record fits.
	for p.tail+uint64(rec)-p.head > uint64(len(p.log)) {
		p.head += uint64(p.recordLen(p.head))
		p.LogEvicts++
	}
	off := p.tail
	p.putRecord(off, key, value)
	p.tail += uint64(rec)
	return off, nil
}

func (p *Partition) recordLen(off uint64) int {
	kl := int(binary.LittleEndian.Uint16(p.ring(off, 2)))
	vl := int(binary.LittleEndian.Uint16(p.ring(off+2, 2)))
	return entryHdr + kl + vl
}

// ring reads n bytes at absolute offset off, handling wraparound by
// copying when the record straddles the end of the log.
func (p *Partition) ring(off uint64, n int) []byte {
	i := int(off % uint64(len(p.log)))
	if i+n <= len(p.log) {
		return p.log[i : i+n]
	}
	out := make([]byte, n)
	first := len(p.log) - i
	copy(out, p.log[i:])
	copy(out[first:], p.log[:n-first])
	return out
}

func (p *Partition) putRecord(off uint64, key, value []byte) {
	var hdr [entryHdr]byte
	binary.LittleEndian.PutUint16(hdr[0:], uint16(len(key)))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(value)))
	p.writeRing(off, hdr[:])
	p.writeRing(off+entryHdr, key)
	p.writeRing(off+entryHdr+uint64(len(key)), value)
}

func (p *Partition) writeRing(off uint64, b []byte) {
	i := int(off % uint64(len(p.log)))
	n := copy(p.log[i:], b)
	if n < len(b) {
		copy(p.log, b[n:])
	}
}

func (p *Partition) bucketFor(h uint64) ([]idxEntry, uint16) {
	// Low bits index the bucket (FNV-64a mixes them best for short keys);
	// high bits form the tag so the two are independent.
	b := uint32(h) & p.mask
	tag := uint16(h >> 48)
	return p.buckets[b], tag
}

// Set inserts or overwrites a key. Index buckets are lossy: when a bucket
// is full, the entry with the oldest log offset is displaced.
func (p *Partition) Set(key, value []byte) error {
	if len(key) > 0xFFFF || len(value) > 0xFFFF {
		return ErrTooLarge
	}
	h := keyHash(key)
	bucket, tag := p.bucketFor(h)
	off, err := p.logWrite(key, value)
	if err != nil {
		return err
	}
	p.Sets++
	// Overwrite a matching entry if present.
	for i := range bucket {
		if bucket[i].valid && bucket[i].tag == tag {
			if k, _, ok := p.readRecord(bucket[i].offset); ok && bytes.Equal(k, key) {
				bucket[i].offset = off
				return nil
			}
		}
	}
	// Take a free slot, else displace the oldest (lossy index).
	victim := 0
	oldest := uint64(math.MaxUint64)
	for i := range bucket {
		if !bucket[i].valid {
			victim = i
			oldest = 0
			break
		}
		if bucket[i].offset < oldest {
			oldest = bucket[i].offset
			victim = i
		}
	}
	if bucket[victim].valid {
		p.IndexEvicts++
	}
	bucket[victim] = idxEntry{tag: tag, valid: true, offset: off}
	return nil
}

// readRecord fetches the record at off if it is still within the log's
// valid window.
func (p *Partition) readRecord(off uint64) (key, value []byte, ok bool) {
	if off < p.head || off >= p.tail {
		return nil, nil, false
	}
	kl := int(binary.LittleEndian.Uint16(p.ring(off, 2)))
	vl := int(binary.LittleEndian.Uint16(p.ring(off+2, 2)))
	key = p.ring(off+entryHdr, kl)
	value = p.ring(off+entryHdr+uint64(kl), vl)
	return key, value, true
}

// Get fetches a key's value. Both lossy-index displacement and log aging
// surface as ErrNotFound, as in MICA's cache mode.
func (p *Partition) Get(key []byte) ([]byte, error) {
	h := keyHash(key)
	bucket, tag := p.bucketFor(h)
	for i := range bucket {
		if !bucket[i].valid || bucket[i].tag != tag {
			continue
		}
		k, v, ok := p.readRecord(bucket[i].offset)
		if !ok {
			continue
		}
		if bytes.Equal(k, key) {
			p.Hits++
			return append([]byte(nil), v...), nil
		}
	}
	p.Misses++
	return nil, ErrNotFound
}

// Store is the partitioned front: PartitionFor implements the same key-hash
// the NIC's object-level balancer uses, so requests and data agree on
// placement.
type Store struct {
	parts []*Partition
}

// NewStore creates nPartitions partitions, each with nBuckets buckets and a
// logBytes circular log.
func NewStore(nPartitions, nBuckets, logBytes int) *Store {
	if nPartitions <= 0 {
		panic("mica: need at least one partition")
	}
	s := &Store{}
	for i := 0; i < nPartitions; i++ {
		s.parts = append(s.parts, NewPartition(nBuckets, logBytes))
	}
	return s
}

// NumPartitions returns the partition count.
func (s *Store) NumPartitions() int { return len(s.parts) }

// PartitionFor maps a key to its owning partition. This must match the
// NIC-side steering hash (fabric's object-level balancer uses FNV-32a mod
// flows; with partitions == flows the two agree).
func PartitionFor(key []byte, nPartitions int) int {
	h := fnv.New32a()
	h.Write(key)
	return int(h.Sum32() % uint32(nPartitions))
}

// Partition returns partition i.
func (s *Store) Partition(i int) *Partition { return s.parts[i] }

// Set routes a write to the owning partition (convenience for
// single-threaded use; the served path goes through per-flow handlers).
func (s *Store) Set(key, value []byte) error {
	return s.parts[PartitionFor(key, len(s.parts))].Set(key, value)
}

// Get routes a read to the owning partition.
func (s *Store) Get(key []byte) ([]byte, error) {
	return s.parts[PartitionFor(key, len(s.parts))].Get(key)
}
