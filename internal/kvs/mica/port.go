package mica

import (
	"context"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/wire"
)

// The Dagger port of MICA (§5.6–5.7): the store runs with "no changes to
// the original codebase"; a thin server application registers GET/SET
// handlers and — critically — configures the NIC's object-level load
// balancer so every key is steered to the flow that owns its partition.
// With partitions == flows, each partition is accessed by exactly one
// dispatch thread: MICA's EREW mode, with the steering hash computed on the
// FPGA instead of Flow Director.

// Function IDs for the MICA service.
const (
	FnGet uint16 = iota
	FnSet
)

// ExtractKey pulls the key out of a request payload for the NIC's
// object-level balancer. Both GET and SET payloads start with the
// 16-bit-length-prefixed key.
func ExtractKey(payload []byte) []byte {
	d := wire.NewDecoder(payload)
	return d.Bytes16()
}

// Serve configures nic for object-level steering and starts a Dagger
// server over it. The store must have exactly nic.NumFlows() partitions.
func Serve(nic *fabric.SoftNIC, store *Store, cfg core.ServerConfig) (*core.RpcThreadedServer, error) {
	if err := nic.SetBalancer(fabric.BalanceObjectLevel, ExtractKey); err != nil {
		return nil, err
	}
	srv := core.NewRpcThreadedServer(nic, cfg)
	n := store.NumPartitions()
	if err := srv.Register(FnGet, "mica.get", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		key := d.Bytes16()
		if err := d.Err(); err != nil {
			return nil, err
		}
		val, err := store.Partition(PartitionFor(key, n)).Get(key)
		e := wire.NewEncoder(nil)
		if err != nil {
			e.Bool(false)
			return e.Bytes(), nil
		}
		e.Bool(true)
		e.Bytes16(val)
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Register(FnSet, "mica.set", func(_ context.Context, req []byte) ([]byte, error) {
		d := wire.NewDecoder(req)
		key := d.Bytes16()
		val := d.Bytes16()
		if err := d.Err(); err != nil {
			return nil, err
		}
		err := store.Partition(PartitionFor(key, n)).Set(key, val)
		e := wire.NewEncoder(nil)
		e.Bool(err == nil)
		return e.Bytes(), nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	return srv, nil
}

// Client is a typed MICA client over a Dagger RpcClient.
type Client struct {
	c    *core.RpcClient
	conn uint32 // 0 = the client's default connection
}

// NewClient wraps an RpcClient with an open connection to a MICA server.
func NewClient(c *core.RpcClient) *Client { return &Client{c: c} }

// NewClientConn wraps an RpcClient using a specific connection — for
// clients that hold connections to several services (SRQ sharing).
func NewClientConn(c *core.RpcClient, connID uint32) *Client {
	return &Client{c: c, conn: connID}
}

func (mc *Client) call(ctx context.Context, fnID uint16, req []byte) ([]byte, error) {
	if mc.conn != 0 {
		return mc.c.CallConnContext(ctx, mc.conn, fnID, req)
	}
	return mc.c.CallContext(ctx, fnID, req)
}

// Get fetches a key.
func (mc *Client) Get(key []byte) ([]byte, error) {
	return mc.GetContext(context.Background(), key)
}

// GetContext fetches a key under ctx's deadline/cancellation.
func (mc *Client) GetContext(ctx context.Context, key []byte) ([]byte, error) {
	e := wire.NewEncoder(nil)
	e.Bytes16(key)
	out, err := mc.call(ctx, FnGet, e.Bytes())
	if err != nil {
		return nil, err
	}
	d := wire.NewDecoder(out)
	if !d.Bool() {
		return nil, ErrNotFound
	}
	val := append([]byte(nil), d.Bytes16()...)
	return val, d.Err()
}

// Set stores a key.
func (mc *Client) Set(key, value []byte) error {
	return mc.SetContext(context.Background(), key, value)
}

// SetContext stores a key under ctx's deadline/cancellation.
func (mc *Client) SetContext(ctx context.Context, key, value []byte) error {
	e := wire.NewEncoder(nil)
	e.Bytes16(key)
	e.Bytes16(value)
	out, err := mc.call(ctx, FnSet, e.Bytes())
	if err != nil {
		return err
	}
	d := wire.NewDecoder(out)
	if !d.Bool() {
		return ErrTooLarge
	}
	return d.Err()
}
