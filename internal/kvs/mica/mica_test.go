package mica

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/workload"
)

func TestPartitionSetGet(t *testing.T) {
	p := NewPartition(64, 1<<16)
	if err := p.Set([]byte("key"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	v, err := p.Get([]byte("key"))
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "value" {
		t.Fatalf("v = %q", v)
	}
	if err := p.Set([]byte("key"), []byte("value2")); err != nil {
		t.Fatal(err)
	}
	v, _ = p.Get([]byte("key"))
	if string(v) != "value2" {
		t.Fatalf("overwrite: %q", v)
	}
	if p.Sets != 2 || p.Hits != 2 {
		t.Fatalf("counters sets=%d hits=%d", p.Sets, p.Hits)
	}
}

func TestPartitionMiss(t *testing.T) {
	p := NewPartition(64, 1<<16)
	if _, err := p.Get([]byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
	if p.Misses != 1 {
		t.Fatal("miss counter")
	}
}

func TestPartitionLogWrapEviction(t *testing.T) {
	p := NewPartition(1024, 4096)
	val := make([]byte, 100)
	for i := 0; i < 200; i++ {
		if err := p.Set([]byte(fmt.Sprintf("key-%04d", i)), val); err != nil {
			t.Fatal(err)
		}
	}
	if p.LogEvicts == 0 {
		t.Fatal("log wrap produced no evictions")
	}
	// The newest key must be readable; the oldest aged out.
	if _, err := p.Get([]byte("key-0199")); err != nil {
		t.Fatal("newest key lost")
	}
	if _, err := p.Get([]byte("key-0000")); err == nil {
		t.Fatal("oldest key survived a full wrap")
	}
}

func TestPartitionLossyIndex(t *testing.T) {
	// One bucket: more than 8 distinct keys must displace entries.
	p := NewPartition(1, 1<<20)
	for i := 0; i < 32; i++ {
		if err := p.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if p.IndexEvicts == 0 {
		t.Fatal("full bucket produced no displacements")
	}
	found := 0
	for i := 0; i < 32; i++ {
		if _, err := p.Get([]byte(fmt.Sprintf("k%d", i))); err == nil {
			found++
		}
	}
	if found == 0 || found > 8 {
		t.Fatalf("lossy bucket retains %d keys, want 1..8", found)
	}
}

func TestPartitionRejectsOversized(t *testing.T) {
	p := NewPartition(8, 256)
	if err := p.Set([]byte("k"), make([]byte, 1024)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v", err)
	}
}

func TestRecordStraddlesLogEnd(t *testing.T) {
	// Force records to wrap the circular log boundary and verify reads.
	p := NewPartition(256, 300)
	for i := 0; i < 50; i++ {
		key := []byte(fmt.Sprintf("wrap-key-%02d", i))
		val := []byte(fmt.Sprintf("wrap-val-%02d-%s", i, "0123456789abcdef"))
		if err := p.Set(key, val); err != nil {
			t.Fatal(err)
		}
		got, err := p.Get(key)
		if err != nil {
			t.Fatalf("i=%d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("i=%d: corrupted wrap read", i)
		}
	}
}

// Property: a partition with a huge log and many buckets behaves like a map.
func TestPartitionMapEquivalenceProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		p := NewPartition(4096, 1<<20)
		model := map[string]string{}
		for i, op := range ops {
			key := fmt.Sprintf("key-%d", op%32)
			if op%2 == 0 {
				val := fmt.Sprintf("val-%d", i)
				if p.Set([]byte(key), []byte(val)) != nil {
					return false
				}
				model[key] = val
			} else {
				got, err := p.Get([]byte(key))
				want, ok := model[key]
				if ok != (err == nil) {
					return false
				}
				if ok && string(got) != want {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStorePartitioning(t *testing.T) {
	s := NewStore(8, 256, 1<<16)
	if s.NumPartitions() != 8 {
		t.Fatal("partition count")
	}
	// Keys land on stable partitions and round-trip through Store.
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if PartitionFor(k, 8) != PartitionFor(k, 8) {
			t.Fatal("unstable partitioning")
		}
		if err := s.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v, err := s.Get(k)
		if err != nil || !bytes.Equal(v, k) {
			t.Fatalf("key %d: %v", i, err)
		}
	}
	// Partitions should all carry some load.
	loaded := 0
	for i := 0; i < 8; i++ {
		if s.Partition(i).Sets > 0 {
			loaded++
		}
	}
	if loaded < 6 {
		t.Fatalf("only %d/8 partitions loaded", loaded)
	}
}

// The steering contract: the fabric's object-level balancer and
// PartitionFor must agree, so each partition is only touched by its flow.
func TestSteeringMatchesPartitioning(t *testing.T) {
	const n = 8
	f := fabric.NewFabric()
	nic, _ := f.CreateNIC(2, n, 64)
	if err := nic.SetBalancer(fabric.BalanceObjectLevel, ExtractKey); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("key-%d", i))
		want := PartitionFor(key, n)
		// Build the payload the client would send and check the NIC's flow
		// choice against the store's partition choice.
		got := int(keyedFlowPick(t, f, nic, key))
		if got != want {
			t.Fatalf("key %q: flow %d != partition %d", key, got, want)
		}
	}
}

// keyedFlowPick sends a GET payload through the fabric and reports the flow
// it landed on.
func keyedFlowPick(t *testing.T, f *fabric.Fabric, nic *fabric.SoftNIC, key []byte) uint16 {
	t.Helper()
	cnic, err := f.CreateNIC(900, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer cnic.Close()
	rc, err := core.NewRpcClient(cnic, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if _, err := rc.OpenConnection(2); err != nil {
		t.Fatal(err)
	}
	mc := NewClient(rc)
	rc.SetTimeout(1) // we only care where the frame lands, not the reply
	_, _ = mc.Get(key)
	for i := 0; i < nic.NumFlows(); i++ {
		fl, _ := nic.Flow(i)
		if _, ok := fl.TryRecv(); ok {
			return uint16(i)
		}
	}
	t.Fatal("frame not delivered")
	return 0
}

func TestDaggerPortEndToEnd(t *testing.T) {
	f := fabric.NewFabric()
	cnic, _ := f.CreateNIC(1, 1, 256)
	snic, _ := f.CreateNIC(2, 4, 256)
	store := NewStore(4, 1024, 1<<20)
	srv, err := Serve(snic, store, core.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	rc, _ := core.NewRpcClient(cnic, 0)
	defer rc.Close()
	if _, err := rc.OpenConnection(2); err != nil {
		t.Fatal(err)
	}
	mc := NewClient(rc)
	if _, err := mc.Get([]byte("ghost")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss err = %v", err)
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := mc.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v, err := mc.Get(k)
		if err != nil || !bytes.Equal(v, k) {
			t.Fatalf("key %d: %q %v", i, v, err)
		}
	}
}

// Load the store through the paper's workload generator shapes.
func TestZipfianWorkloadIntegrity(t *testing.T) {
	store := NewStore(4, 1<<14, 1<<22)
	ds := workload.Dataset{Name: "test", KeySize: 16, ValueSize: 32, Records: 10000}
	gen := workload.NewKVGenerator(42, ds, workload.WriteIntensive, 0.99)
	written := map[string][]byte{}
	for i := 0; i < 20000; i++ {
		r := gen.Next()
		if r.Op == workload.OpSet {
			if err := store.Set(r.Key, r.Value); err != nil {
				t.Fatal(err)
			}
			written[string(r.Key)] = append([]byte(nil), r.Value...)
		} else if want, ok := written[string(r.Key)]; ok {
			got, err := store.Get(r.Key)
			if err == nil && !bytes.Equal(got, want) {
				t.Fatalf("stale/corrupt read for %x", r.Key)
			}
		}
	}
}
