// Package faults is the deterministic fault-injection policy layer shared
// by both substrates: pure, seeded verdict functions with no wall clock, no
// global rand, and no hot-path allocation, in the same design discipline as
// internal/dataplane and internal/connstate. The functional fabric and the
// timing stack's nicmodel each install an Injector at queue admission and
// consume one verdict per admitted frame; because a verdict depends only on
// (Config, frame index), the two substrates see byte-identical fault
// sequences and the cross-substrate parity test can pin them.
//
// The paper's transport unit exists because real links drop, duplicate,
// reorder, and corrupt frames; this package is the repo's stand-in for that
// hostile fabric, precise enough to replay: Plan materializes the exact
// verdict sequence any injector with the same Config will issue.
package faults

import (
	"errors"
	"sync/atomic"
)

// Class is a per-frame fault verdict class.
type Class uint8

// Verdict classes. Deliver is the zero value: an unconfigured injector is a
// transparent one.
const (
	// Deliver admits the frame untouched.
	Deliver Class = iota
	// Drop discards the frame silently — the sender learns nothing, exactly
	// like a frame lost on a real link.
	Drop
	// Duplicate admits the frame and then a second copy of it.
	Duplicate
	// Delay holds the frame back for Arg subsequent admissions before
	// releasing it (frames admitted meanwhile overtake it).
	Delay
	// Reorder is a one-admission Delay: the frame swaps order with its
	// successor.
	Reorder
	// CorruptBit flips one bit of the frame's checksum-covered header region
	// (offset derived from Arg) before admission.
	CorruptBit

	// NumClasses is the number of verdict classes, for per-class tallies.
	NumClasses = int(CorruptBit) + 1
)

func (c Class) String() string {
	switch c {
	case Deliver:
		return "deliver"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	case Reorder:
		return "reorder"
	case CorruptBit:
		return "corrupt-bit"
	default:
		return "class(?)"
	}
}

// Verdict is one frame's fate. Arg carries the class parameter: admissions
// to defer for Delay, always 1 for Reorder, and the raw bit-offset entropy
// for CorruptBit (consumers reduce it modulo the covered region, e.g.
// wire.FlipCoveredBit). Arg is 0 for Deliver, Drop, and Duplicate.
type Verdict struct {
	Class Class
	Arg   uint32
}

// RateDenominator is the denominator of all fault rates: rates are expressed
// in parts per million, so a Rates field of 10_000 is a 1% rate.
const RateDenominator = 1_000_000

// Rates holds the per-class fault rates in parts per million of admitted
// frames. The classes are disjoint: a frame draws one verdict, so the sum of
// all rates must not exceed RateDenominator; the remainder is the Deliver
// probability.
type Rates struct {
	Drop      uint32
	Duplicate uint32
	Delay     uint32
	Reorder   uint32
	Corrupt   uint32
}

// Sum returns the total faulted fraction in parts per million.
func (r Rates) Sum() uint64 {
	return uint64(r.Drop) + uint64(r.Duplicate) + uint64(r.Delay) +
		uint64(r.Reorder) + uint64(r.Corrupt)
}

// DefaultMaxDelay is the Delay verdict's maximum hold (in admissions) when
// Config.MaxDelay is zero.
const DefaultMaxDelay = 4

// ErrRates reports a Rates whose sum exceeds RateDenominator.
var ErrRates = errors.New("faults: class rates sum past RateDenominator")

// Config fully determines an injector's verdict sequence. Two injectors with
// equal Configs issue byte-identical verdicts in both substrates.
type Config struct {
	// Seed selects the deterministic verdict sequence.
	Seed uint64
	// Rates are the per-class fault rates (parts per million).
	Rates Rates
	// MaxDelay bounds the Delay verdict's hold in admissions
	// (0 = DefaultMaxDelay). Delay args are uniform in [1, MaxDelay].
	MaxDelay uint32
}

// Validate rejects configs whose class rates overlap.
func (c Config) Validate() error {
	if c.Rates.Sum() > RateDenominator {
		return ErrRates
	}
	return nil
}

// goldenGamma is the splitmix64 sequence increment; argSalt decorrelates the
// Arg entropy stream from the class-draw stream.
const (
	goldenGamma = 0x9E3779B97F4A7C15
	argSalt     = 0xD6E8FEB86659FD93
)

// mix64 is the splitmix64 finalizer: a full-avalanche bijection on uint64.
func mix64(z uint64) uint64 {
	z ^= z >> 33
	z *= 0xFF51AFD7ED558CCD
	z ^= z >> 33
	z *= 0xC4CEB9FE1A85EC53
	z ^= z >> 33
	return z
}

// VerdictAt returns the verdict for the frame-th admission under cfg. Pure
// and allocation-free: the verdict depends only on (cfg, frame), so any
// consumer walking indices 0..n-1 replays the identical fault sequence.
func VerdictAt(cfg Config, frame uint64) Verdict {
	h := mix64(cfg.Seed + (frame+1)*goldenGamma)
	draw := h % RateDenominator
	r := cfg.Rates
	// Walk the cumulative class thresholds in declaration order; the tail of
	// the distribution is Deliver.
	cum := uint64(r.Drop)
	if draw < cum {
		return Verdict{Class: Drop}
	}
	cum += uint64(r.Duplicate)
	if draw < cum {
		return Verdict{Class: Duplicate}
	}
	cum += uint64(r.Delay)
	if draw < cum {
		maxDelay := cfg.MaxDelay
		if maxDelay == 0 {
			maxDelay = DefaultMaxDelay
		}
		arg := mix64(h ^ argSalt)
		return Verdict{Class: Delay, Arg: 1 + uint32(arg%uint64(maxDelay))}
	}
	cum += uint64(r.Reorder)
	if draw < cum {
		return Verdict{Class: Reorder, Arg: 1}
	}
	cum += uint64(r.Corrupt)
	if draw < cum {
		return Verdict{Class: CorruptBit, Arg: uint32(mix64(h ^ argSalt))}
	}
	return Verdict{Class: Deliver}
}

// Plan materializes the first n verdicts of cfg's sequence — the replayable
// fault schedule an injector with the same Config will issue. Experiments
// and parity tests use it to know, ahead of a run, exactly which admissions
// fault and how.
func Plan(cfg Config, n int) []Verdict {
	plan := make([]Verdict, n)
	for i := range plan {
		plan[i] = VerdictAt(cfg, uint64(i))
	}
	return plan
}

// ClassCounts tallies verdicts per class, indexed by Class.
type ClassCounts [NumClasses]uint64

// CountClasses tallies a plan per verdict class.
func CountClasses(plan []Verdict) ClassCounts {
	var c ClassCounts
	for _, v := range plan {
		c[v.Class]++
	}
	return c
}

// Injector is the stateful adapter both substrates install at queue
// admission: a Config plus an atomic admission counter. Next is
// allocation-free and safe for concurrent use; the sequence of verdicts it
// issues is exactly Plan(cfg, ∞).
type Injector struct {
	cfg  Config
	next atomic.Uint64
}

// NewInjector returns an injector over cfg's verdict sequence. Configs that
// fail Validate are rejected at construction so admission paths never have
// to re-check.
func NewInjector(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	inj := &Injector{cfg: cfg}
	return inj, nil
}

// Config returns the injector's configuration.
func (i *Injector) Config() Config { return i.cfg }

// Next consumes and returns the next verdict in the sequence.
func (i *Injector) Next() Verdict {
	return VerdictAt(i.cfg, i.next.Add(1)-1)
}

// Issued returns how many verdicts have been consumed.
func (i *Injector) Issued() uint64 { return i.next.Load() }
