package faults

import (
	"testing"
)

func testConfig() Config {
	return Config{
		Seed: 42,
		Rates: Rates{
			Drop:      150_000,
			Duplicate: 100_000,
			Delay:     100_000,
			Reorder:   50_000,
			Corrupt:   100_000,
		},
		MaxDelay: 3,
	}
}

// The plan is the sequence: every injector and every per-index evaluation of
// the same config must replay it exactly.
func TestPlanReplaysExactly(t *testing.T) {
	cfg := testConfig()
	const n = 10_000
	plan := Plan(cfg, n)
	for i, want := range plan {
		if got := VerdictAt(cfg, uint64(i)); got != want {
			t.Fatalf("VerdictAt(%d) = %+v, plan says %+v", i, got, want)
		}
	}
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range plan {
		if got := inj.Next(); got != want {
			t.Fatalf("injector verdict %d = %+v, plan says %+v", i, got, want)
		}
	}
	if inj.Issued() != n {
		t.Fatalf("Issued = %d, want %d", inj.Issued(), n)
	}
}

func TestSeedSelectsSequence(t *testing.T) {
	a := testConfig()
	b := testConfig()
	b.Seed = 43
	const n = 4096
	planA, planB := Plan(a, n), Plan(b, n)
	same := 0
	for i := range planA {
		if planA[i] == planB[i] {
			same++
		}
	}
	if same == n {
		t.Fatal("different seeds produced identical plans")
	}
	// Same seed: identical, trivially.
	for i, v := range Plan(a, n) {
		if v != planA[i] {
			t.Fatalf("same config diverged at %d", i)
		}
	}
}

// Configured rates are honored to within sampling noise, every configured
// class actually occurs, and class args respect their contracts.
func TestRatesAndArgs(t *testing.T) {
	cfg := testConfig()
	const n = 200_000
	plan := Plan(cfg, n)
	counts := CountClasses(plan)
	want := map[Class]uint64{
		Drop:       uint64(cfg.Rates.Drop),
		Duplicate:  uint64(cfg.Rates.Duplicate),
		Delay:      uint64(cfg.Rates.Delay),
		Reorder:    uint64(cfg.Rates.Reorder),
		CorruptBit: uint64(cfg.Rates.Corrupt),
		Deliver:    RateDenominator - cfg.Rates.Sum(),
	}
	for class, ppm := range want {
		got := counts[class]
		expect := float64(ppm) * n / RateDenominator
		if expect == 0 {
			if got != 0 {
				t.Errorf("%v: %d verdicts at zero rate", class, got)
			}
			continue
		}
		if got == 0 {
			t.Errorf("%v: configured but never drawn in %d frames", class, n)
		}
		if ratio := float64(got) / expect; ratio < 0.9 || ratio > 1.1 {
			t.Errorf("%v: %d verdicts, expected ~%.0f (ratio %.3f)", class, got, expect, ratio)
		}
	}
	sawDelayArgs := map[uint32]bool{}
	for _, v := range plan {
		switch v.Class {
		case Delay:
			if v.Arg < 1 || v.Arg > cfg.MaxDelay {
				t.Fatalf("Delay arg %d outside [1,%d]", v.Arg, cfg.MaxDelay)
			}
			sawDelayArgs[v.Arg] = true
		case Reorder:
			if v.Arg != 1 {
				t.Fatalf("Reorder arg %d, want 1", v.Arg)
			}
		case Deliver, Drop, Duplicate:
			if v.Arg != 0 {
				t.Fatalf("%v carries arg %d", v.Class, v.Arg)
			}
		}
	}
	if len(sawDelayArgs) != int(cfg.MaxDelay) {
		t.Errorf("delay args drawn: %d distinct, want %d", len(sawDelayArgs), cfg.MaxDelay)
	}
}

func TestZeroConfigDeliversEverything(t *testing.T) {
	for i, v := range Plan(Config{Seed: 9}, 10_000) {
		if v.Class != Deliver {
			t.Fatalf("frame %d: zero-rate config drew %v", i, v.Class)
		}
	}
}

func TestValidateRejectsOverlappingRates(t *testing.T) {
	bad := Config{Rates: Rates{Drop: 600_000, Corrupt: 500_000}}
	if err := bad.Validate(); err != ErrRates {
		t.Fatalf("Validate = %v, want ErrRates", err)
	}
	if _, err := NewInjector(bad); err != ErrRates {
		t.Fatalf("NewInjector = %v, want ErrRates", err)
	}
	full := Config{Rates: Rates{Drop: RateDenominator}}
	if err := full.Validate(); err != nil {
		t.Fatalf("rates summing to exactly the denominator rejected: %v", err)
	}
}

func TestClassStrings(t *testing.T) {
	for class, want := range map[Class]string{
		Deliver: "deliver", Drop: "drop", Duplicate: "duplicate",
		Delay: "delay", Reorder: "reorder", CorruptBit: "corrupt-bit",
		Class(99): "class(?)",
	} {
		if got := class.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", class, got, want)
		}
	}
}

// The verdict path is the per-frame hot path on both substrates: it must not
// allocate.
func TestVerdictPathAllocationFree(t *testing.T) {
	cfg := testConfig()
	inj, err := NewInjector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var sink Verdict
	if n := testing.AllocsPerRun(1000, func() {
		sink = VerdictAt(cfg, 12345)
	}); n != 0 {
		t.Errorf("VerdictAt allocates %.1f per call", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sink = inj.Next()
	}); n != 0 {
		t.Errorf("Injector.Next allocates %.1f per call", n)
	}
	_ = sink
}
