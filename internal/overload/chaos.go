package overload

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/faults"
	"dagger/internal/transport"
)

const (
	fnChaos = 4
	// chaosFaultPPM is the per-class fault rate of the in-fabric phase: 1%
	// each of drop, duplicate, delay, reorder, and corrupt — the hardening
	// target rate the chaos gates are written against.
	chaosFaultPPM = 10_000
	// chaosTimeout bounds each in-fabric call: a dropped request costs this
	// much and no more, which is what the no-hangs gate means in wall time.
	chaosTimeout = 50 * time.Millisecond
	// chaosLoss is the lossy-transport phase's datagram loss rate; the
	// reliable protocol must recover every call under it.
	chaosLoss = 0.01
)

// ChaosConfig parametrizes one functional chaos run.
type ChaosConfig struct {
	// Calls is the in-fabric phase's call count (default 400, 100 in quick
	// mode).
	Calls int
	// LossyCalls is the lossy-transport phase's call count (default 100, 30
	// in quick mode).
	LossyCalls int
	// Quick shrinks both phases for CI smoke runs.
	Quick bool
	Seed  int64
}

// ChaosResult is one functional chaos run's outcome. The fault draw is
// deterministic (seeded injector) but the stack runs in real time, so the
// success counts gate broad invariants, not exact tallies.
type ChaosResult struct {
	// In-fabric phase: calls through a server NIC whose admission stage
	// drops, duplicates, delays, reorders, and corrupts at chaosFaultPPM per
	// class.
	Calls           int
	Succeeded       int
	TimedOut        int
	CorruptAccepted int // responses whose payload failed validation
	NICCorrupts     uint64
	NICCorruptDrops uint64
	LateResponses   uint64

	// Lossy-transport phase: calls across two fabrics bridged by the
	// reliable protocol over a chaosLoss-lossy datagram net.
	LossyCalls     int
	LossySucceeded int
	LossRate       float64
	Retransmits    uint64

	// Dead-peer phase: one call into a blackholed route must fail fast with
	// core.ErrPeerDead via the transport dead-letter plane.
	DeadLatency time.Duration
	DeadLetters uint64
}

// lossyNet is an in-memory datagram network with seeded loss, the functional
// stand-in for a flaky machine-to-machine link. It implements just enough to
// carry transport.PacketConn traffic; delivery order is goroutine order, as
// with the real UDP conn.
type lossyNet struct {
	mu    sync.Mutex
	conns map[string]*lossyConn
	rng   *rand.Rand
	loss  float64
}

func newLossyNet(loss float64, seed int64) *lossyNet {
	return &lossyNet{conns: map[string]*lossyConn{}, rng: rand.New(rand.NewSource(seed)), loss: loss}
}

type lossyConn struct {
	net     *lossyNet
	name    string
	mu      sync.Mutex
	handler func([]byte, string)
	closed  bool
}

func (n *lossyNet) conn(name string) *lossyConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := &lossyConn{net: n, name: name}
	n.conns[name] = c
	return c
}

func (c *lossyConn) Send(endpoint string, pkt []byte) error {
	c.net.mu.Lock()
	dst := c.net.conns[endpoint]
	drop := c.net.rng.Float64() < c.net.loss
	c.net.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("lossynet: no conn %q", endpoint)
	}
	if drop {
		return nil // silently lost, like UDP
	}
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	go func() {
		dst.mu.Lock()
		h := dst.handler
		closed := dst.closed
		dst.mu.Unlock()
		if h != nil && !closed {
			h(cp, c.name)
		}
	}()
	return nil
}

func (c *lossyConn) SetHandler(h func([]byte, string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = h
}

func (c *lossyConn) LocalEndpoint() string { return c.name }

func (c *lossyConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// chaosPayload is the in-fabric phase's known-pattern request; the response
// must echo it byte-for-byte or the stack accepted corruption.
var chaosPayload = []byte("chaos-pattern-0123456789abcdef")

// RunChaos executes the functional half of the chaos experiment in three
// phases: in-fabric fault injection at the server NIC's admission stage,
// datagram loss under the reliable transport, and a dead peer behind the
// transport's dead-letter plane. Gate violations come back as errors so
// daggerbench's CI smoke run fails when the hardening story rots.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.Calls <= 0 {
		cfg.Calls = 400
		if cfg.Quick {
			cfg.Calls = 100
		}
	}
	if cfg.LossyCalls <= 0 {
		cfg.LossyCalls = 100
		if cfg.Quick {
			cfg.LossyCalls = 30
		}
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0xC4A05
	}
	res := &ChaosResult{LossRate: chaosLoss}
	if err := runChaosInFabric(cfg, res); err != nil {
		return nil, err
	}
	if err := runChaosTransport(cfg, res); err != nil {
		return nil, err
	}
	return res, nil
}

// runChaosInFabric is the in-fabric phase: every request frame passes the
// server NIC's fault stage at chaosFaultPPM per class. Faulted calls may time
// out — bounded by chaosTimeout — but none may hang, no corrupted frame may
// reach dispatch, and goodput must stay high.
func runChaosInFabric(cfg ChaosConfig, res *ChaosResult) error {
	fab := fabric.NewFabric()
	clientNIC, err := fab.CreateNIC(clientAddr, 1, ringDepth)
	if err != nil {
		return err
	}
	serverNIC, err := fab.CreateNIC(serverAddr, 1, ringDepth)
	if err != nil {
		return err
	}
	inj, err := faults.NewInjector(faults.Config{
		Seed: uint64(cfg.Seed),
		Rates: faults.Rates{
			Drop: chaosFaultPPM, Duplicate: chaosFaultPPM, Delay: chaosFaultPPM,
			Reorder: chaosFaultPPM, Corrupt: chaosFaultPPM,
		},
	})
	if err != nil {
		return err
	}
	serverNIC.SetFaultInjector(inj)

	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	if err := srv.Register(fnChaos, "chaos.echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Stop()
	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(serverAddr); err != nil {
		return err
	}
	cli.SetTimeout(chaosTimeout)

	res.Calls = cfg.Calls
	for i := 0; i < cfg.Calls; i++ {
		resp, err := cli.Call(fnChaos, chaosPayload)
		switch {
		case err == nil:
			if !bytes.Equal(resp, chaosPayload) {
				res.CorruptAccepted++
			}
			res.Succeeded++
			cli.Release(resp)
		case errors.Is(err, core.ErrTimeout):
			res.TimedOut++
		default:
			return fmt.Errorf("chaos: call %d failed outside the fault model: %w", i, err)
		}
	}
	// Release anything the fault stage is still holding so the loan ledger
	// and late-response counters settle.
	serverNIC.FlushFaults()
	time.Sleep(10 * time.Millisecond)
	res.NICCorrupts = serverNIC.FaultCorrupts.Load()
	res.NICCorruptDrops = serverNIC.CorruptDrops.Load()
	res.LateResponses = cli.Late.Load()

	if res.CorruptAccepted != 0 {
		return fmt.Errorf("chaos: %d corrupted payloads accepted end to end", res.CorruptAccepted)
	}
	if res.NICCorruptDrops != res.NICCorrupts {
		return fmt.Errorf("chaos: NIC caught %d of %d corrupted frames — the rest were dispatched",
			res.NICCorruptDrops, res.NICCorrupts)
	}
	if res.Succeeded+res.TimedOut != res.Calls {
		return fmt.Errorf("chaos: %d calls unaccounted for",
			res.Calls-res.Succeeded-res.TimedOut)
	}
	// ~4% of request frames fault visibly (drop/delay/reorder/corrupt); 90%
	// goodput leaves generous slack over the binomial spread.
	if res.Succeeded*10 < res.Calls*9 {
		return fmt.Errorf("chaos: only %d of %d calls succeeded at 1%% per-class faults",
			res.Succeeded, res.Calls)
	}
	return nil
}

// runChaosTransport is the cross-host phase: the reliable protocol must
// recover every call under real datagram loss, and a dead peer must fail
// fast through the dead-letter plane rather than hang.
func runChaosTransport(cfg ChaosConfig, res *ChaosResult) error {
	// Lossy link: every call must still succeed.
	net := newLossyNet(chaosLoss, cfg.Seed)
	cliFab, srvFab := fabric.NewFabric(), fabric.NewFabric()
	cliRel := transport.NewReliable(net.conn("cli"), transport.ReliableOptions{RTO: 5 * time.Millisecond})
	srvRel := transport.NewReliable(net.conn("srv"), transport.ReliableOptions{RTO: 5 * time.Millisecond})
	cliBridge := transport.NewBridge(cliFab, cliRel,
		transport.NewRouteTable(transport.Route{Lo: serverAddr, Hi: serverAddr, Endpoint: "srv"}))
	defer cliBridge.Close()
	srvBridge := transport.NewBridge(srvFab, srvRel,
		transport.NewRouteTable(transport.Route{Lo: clientAddr, Hi: clientAddr, Endpoint: "cli"}))
	defer srvBridge.Close()

	serverNIC, err := srvFab.CreateNIC(serverAddr, 1, ringDepth)
	if err != nil {
		return err
	}
	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	if err := srv.Register(fnChaos, "chaos.echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	defer srv.Stop()
	clientNIC, err := cliFab.CreateNIC(clientAddr, 1, ringDepth)
	if err != nil {
		return err
	}
	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		return err
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(serverAddr); err != nil {
		return err
	}
	cli.SetTimeout(10 * time.Second)

	res.LossyCalls = cfg.LossyCalls
	for i := 0; i < cfg.LossyCalls; i++ {
		resp, err := cli.Call(fnChaos, chaosPayload)
		if err != nil {
			return fmt.Errorf("chaos: lossy-transport call %d not recovered: %w", i, err)
		}
		if !bytes.Equal(resp, chaosPayload) {
			return fmt.Errorf("chaos: lossy-transport call %d corrupted", i)
		}
		res.LossySucceeded++
		cli.Release(resp)
	}
	res.Retransmits = cliRel.Retransmits.Load() + srvRel.Retransmits.Load()

	// Dead peer: blackholed route, bounded failure.
	dark := newLossyNet(1.0, cfg.Seed+1)
	deadFab := fabric.NewFabric()
	deadRel := transport.NewReliable(dark.conn("cli"), transport.ReliableOptions{
		RTO: 2 * time.Millisecond, MaxRetries: 3,
	})
	deadBridge := transport.NewBridge(deadFab, deadRel,
		transport.NewRouteTable(transport.Route{Lo: serverAddr, Hi: serverAddr, Endpoint: "void"}))
	defer deadBridge.Close()
	dark.conn("void")
	deadNIC, err := deadFab.CreateNIC(clientAddr, 1, 64)
	if err != nil {
		return err
	}
	deadCli, err := core.NewRpcClient(deadNIC, 0)
	if err != nil {
		return err
	}
	defer deadCli.Close()
	if _, err := deadCli.OpenConnection(serverAddr); err != nil {
		return err
	}
	deadCli.SetTimeout(30 * time.Second) // the dead-letter must beat this by miles

	start := time.Now()
	_, err = deadCli.Call(fnChaos, chaosPayload)
	res.DeadLatency = time.Since(start)
	res.DeadLetters = deadBridge.DeadLetters.Load()
	if !errors.Is(err, core.ErrPeerDead) {
		return fmt.Errorf("chaos: dead-peer call returned %v, want ErrPeerDead", err)
	}
	if res.DeadLatency > 5*time.Second {
		return fmt.Errorf("chaos: dead-peer verdict took %v — fail-fast path did not engage", res.DeadLatency)
	}
	if res.DeadLetters == 0 {
		return errors.New("chaos: dead peer produced no dead letters")
	}
	return nil
}
