// Package overload drives the functional (real-goroutine) Dagger stack
// past saturation in real time: an open-loop Poisson client offers load to
// an RpcThreadedServer with a single worker thread whose handler takes a
// fixed service time. With Shed set, every request carries a deadline budget
// (context deadline -> wire Budget), so the server applies the shared
// dataplane shed policy (core.ShedDecision) and drops budget-expired work
// before the handler runs; without it, requests carry no deadline and the
// backlog drains at full service cost, amplifying the completed-request
// tail.
//
// This is the functional-substrate half of the daggerbench "overload"
// experiment. It reads the wall clock, so unlike the timing-stack half its
// numbers are indicative rather than deterministic; the sweep's regression
// assertion lives on the timing side.
package overload

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
)

const (
	clientAddr = 0x0A000001
	serverAddr = 0x0A000002
	fnWork     = 1

	// serviceTime is the handler's per-request occupancy of the single
	// dispatch thread; it caps sustainable throughput at 1/serviceTime.
	serviceTime = 200 * time.Microsecond
	// budget is the per-request deadline when shedding is on: well above
	// the unloaded round trip, an order of magnitude below the backlog
	// drain time past saturation.
	budget = 25 * time.Millisecond
	// ringDepth sizes the server's RX rings to hold the whole overload
	// backlog, so ring drops don't mask the shed-policy comparison.
	ringDepth = 16384
)

// Config parametrizes one functional overload run.
type Config struct {
	// OfferedMultiple is the offered load as a multiple of the server's
	// saturation throughput (1/serviceTime); 2.5 offers 2.5x capacity.
	OfferedMultiple float64
	// Duration is how long the client keeps issuing requests.
	Duration time.Duration
	// Shed attaches the deadline budget to every request, arming the
	// server's shed-before-dispatch path.
	Shed bool
	Seed int64
}

// Result is one functional overload run's outcome.
type Result struct {
	Issued    int
	Completed int
	// Shed counts requests the server dropped via the dataplane shed
	// policy (the server's Shed counter: a shed response usually lands
	// after the client's own deadline expired, so counting client-side
	// core.ErrShed results would undercount).
	Shed int
	// Dropped counts requests the client gave up on: its context deadline
	// expired, the server shed it, or a ring overflowed.
	Dropped int
	Errors  int
	P50     time.Duration // completed requests only
	P99     time.Duration
}

// Run executes one functional overload run.
func Run(cfg Config) (*Result, error) {
	if cfg.OfferedMultiple <= 0 {
		cfg.OfferedMultiple = 2.5
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 300 * time.Millisecond
	}
	fab := fabric.NewFabric()
	clientNIC, err := fab.CreateNIC(clientAddr, 1, ringDepth)
	if err != nil {
		return nil, err
	}
	// One server flow = one dispatch thread = one core, matching the
	// timing-stack overload model.
	serverNIC, err := fab.CreateNIC(serverAddr, 1, ringDepth)
	if err != nil {
		return nil, err
	}
	// Worker-thread model with a single worker: the dispatch thread plays the
	// NIC dispatcher (drains the ring, stamps each request's arrival) and the
	// lone worker plays the server core, so budget spent queueing for the
	// core is visible to the shed policy. Under DispatchThreads the arrival
	// stamp lands at ring dequeue, right before execution, and queue wait
	// hides in the RX ring where ShedDecision cannot see it.
	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{
		Threading:   core.WorkerThreads,
		Workers:     1,
		WorkerQueue: ringDepth,
	})
	if err := srv.Register(fnWork, "overload.work", func(ctx context.Context, req []byte) ([]byte, error) {
		// Spin rather than sleep: time.Sleep's millisecond-scale minimum
		// granularity would inflate the 200us service time ~5x and move
		// the saturation point the sweep is calibrated against.
		for start := time.Now(); time.Since(start) < serviceTime; {
		}
		return req, nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Stop()

	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(serverAddr); err != nil {
		return nil, err
	}

	offeredRPS := cfg.OfferedMultiple * float64(time.Second) / float64(serviceTime)
	rng := rand.New(rand.NewSource(cfg.Seed + 1))

	res := &Result{}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	payload := []byte("overload")
	issue := func() {
		res.Issued++
		wg.Add(1)
		go func() {
			defer wg.Done()
			start := time.Now()
			var err error
			if cfg.Shed {
				ctx, cancel := context.WithTimeout(context.Background(), budget)
				defer cancel()
				_, err = cli.CallContext(ctx, fnWork, payload)
			} else {
				_, err = cli.Call(fnWork, payload)
			}
			mu.Lock()
			defer mu.Unlock()
			switch {
			case err == nil:
				latencies = append(latencies, time.Since(start))
				res.Completed++
			case errors.Is(err, core.ErrShed),
				errors.Is(err, context.DeadlineExceeded),
				errors.Is(err, fabric.ErrRingFull):
				res.Dropped++
			default:
				res.Errors++
			}
		}()
	}
	// Open-loop pacing against an absolute Poisson schedule: time.Sleep
	// routinely oversleeps at sub-millisecond gaps, so sleeping per gap
	// would silently cut the offered rate severalfold. Issuing every
	// arrival whose scheduled time has passed lets bursts catch the
	// schedule up after each oversleep, keeping the mean rate honest.
	start := time.Now()
	next := start
	for {
		now := time.Now()
		if now.Sub(start) >= cfg.Duration {
			break
		}
		if now.Before(next) {
			time.Sleep(next.Sub(now))
			continue
		}
		issue()
		next = next.Add(time.Duration(-math.Log(1-rng.Float64()) / offeredRPS * float64(time.Second)))
	}
	wg.Wait()
	// Count sheds at the server: a shed verdict means the budget had already
	// expired, so the shed response usually arrives after the client's own
	// context deadline fired and the client records a Dropped, not ErrShed.
	res.Shed = int(srv.Shed.Load())

	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[len(latencies)*50/100]
		idx := len(latencies) * 99 / 100
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		res.P99 = latencies[idx]
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("overload: no requests completed (issued %d)", res.Issued)
	}
	return res, nil
}
