package overload

import (
	"context"
	"fmt"
	"sort"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
)

const (
	fnConnScale = 3
	// connScaleCache sizes the server NIC's near-memory connection cache (C)
	// small enough that the spill phase's working set overruns it without
	// needing thousands of connections.
	connScaleCache = 32
)

// ConnScaleConfig parametrizes one functional connection-scalability run.
type ConnScaleConfig struct {
	// Rounds is how many round-robin passes each phase makes over its
	// connection working set (default 6).
	Rounds int
}

// ConnScaleResult is one functional connection-scalability run's outcome.
// The miss counters are deterministic — the direct-mapped cache geometry is
// shared with the timing stack via internal/connstate — so RunConnScale
// asserts them; the latency percentiles read the wall clock and are
// indicative only.
type ConnScaleResult struct {
	CacheSize int
	// Fit phase: FitConns (= C/2) connections, conflict-free by
	// construction, so every post-open lookup hits.
	FitConns  int
	FitCalls  int
	FitMisses uint64
	FitP50    time.Duration
	FitP99    time.Duration
	// Spill phase: SpillConns (= 2C) connections, so every slot hosts two
	// alternating ids and steady-state lookups miss.
	SpillConns  int
	SpillCalls  int
	SpillMisses uint64
	SpillP50    time.Duration
	SpillP99    time.Duration
	// FinalOpen is the server NIC's open-connection population after the
	// churn phase closed everything; nonzero means close propagation leaked.
	FinalOpen int
}

// RunConnScale executes the functional half of the connscale experiment: a
// real client/server NIC pair where the server's bounded connection cache
// (capacity C) steers requests. The working set first fits the cache (C/2
// connections: zero misses), then outgrows it (2C connections: steady-state
// lookups all miss, each stamped on the wire and echoed to the client), and
// finally closes everything (the table must drain — boundedness under
// churn). Counter gates are returned as errors so daggerbench's CI smoke run
// fails when the story rots.
func RunConnScale(cfg ConnScaleConfig) (*ConnScaleResult, error) {
	if cfg.Rounds <= 0 {
		cfg.Rounds = 6
	}
	fab := fabric.NewFabric()
	// One client flow keeps minted connection ids dense (1, 2, 3, …): a
	// multi-flow client strides ids by its flow count, covering only a
	// fraction of the server cache's direct-mapped slots.
	clientNIC, err := fab.CreateNIC(clientAddr, 1, ringDepth)
	if err != nil {
		return nil, err
	}
	serverNIC, err := fab.CreateNICConns(serverAddr, 1, ringDepth, connScaleCache)
	if err != nil {
		return nil, err
	}
	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	if err := srv.Register(fnConnScale, "connscale.echo", func(_ context.Context, req []byte) ([]byte, error) {
		return req, nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Stop()

	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		return nil, err
	}
	defer cli.Close()

	res := &ConnScaleResult{
		CacheSize:  connScaleCache,
		FitConns:   connScaleCache / 2,
		SpillConns: 2 * connScaleCache,
	}
	open := func(k int) ([]uint32, error) {
		ids := make([]uint32, 0, k)
		for i := 0; i < k; i++ {
			id, err := cli.OpenConnection(serverAddr)
			if err != nil {
				return nil, err
			}
			ids = append(ids, id)
		}
		return ids, nil
	}
	payload := []byte("connscale")
	callRR := func(ids []uint32) ([]time.Duration, error) {
		lat := make([]time.Duration, 0, len(ids)*cfg.Rounds)
		for r := 0; r < cfg.Rounds; r++ {
			for _, id := range ids {
				start := time.Now()
				resp, err := cli.CallConn(id, fnConnScale, payload)
				if err != nil {
					return nil, fmt.Errorf("connscale: conn %d: %w", id, err)
				}
				cli.Release(resp)
				lat = append(lat, time.Since(start))
			}
		}
		return lat, nil
	}

	// Fit phase: C/2 dense ids occupy distinct slots, so after each
	// connection's first-contact open every lookup hits.
	fitIDs, err := open(res.FitConns)
	if err != nil {
		return nil, err
	}
	fitLat, err := callRR(fitIDs)
	if err != nil {
		return nil, err
	}
	res.FitCalls = len(fitLat)
	res.FitMisses = serverNIC.ConnMisses()
	res.FitP50, res.FitP99 = latPercentiles(fitLat)
	if res.FitMisses != 0 {
		return nil, fmt.Errorf("connscale: %d conns inside a %d-entry cache missed %d times",
			res.FitConns, connScaleCache, res.FitMisses)
	}
	if got := cli.ConnMisses.Load(); got != 0 {
		return nil, fmt.Errorf("connscale: client saw %d echoed misses from a fitting working set", got)
	}

	// Spill phase: grow the working set to 2C. Each slot now hosts two ids
	// visited alternately, so after the first round's first-contact opens
	// every lookup misses, is stamped on the frame, and is echoed back.
	moreIDs, err := open(res.SpillConns - res.FitConns)
	if err != nil {
		return nil, err
	}
	allIDs := append(fitIDs, moreIDs...)
	spillLat, err := callRR(allIDs)
	if err != nil {
		return nil, err
	}
	res.SpillCalls = len(spillLat)
	res.SpillMisses = serverNIC.ConnMisses()
	res.SpillP50, res.SpillP99 = latPercentiles(spillLat)
	if res.SpillMisses < uint64(res.SpillCalls)/2 {
		return nil, fmt.Errorf("connscale: %d conns over a %d-entry cache missed only %d/%d lookups",
			res.SpillConns, connScaleCache, res.SpillMisses, res.SpillCalls)
	}
	if got := cli.ConnMisses.Load(); got != res.SpillMisses {
		return nil, fmt.Errorf("connscale: server stamped %d misses but client echo counted %d",
			res.SpillMisses, got)
	}

	// Churn phase: close every connection; each close propagates as a wire
	// control frame and the server table must drain completely — the
	// boundedness an unbounded steering map cannot offer.
	for _, id := range allIDs {
		if err := cli.CloseConnection(id); err != nil {
			return nil, fmt.Errorf("connscale: close conn %d: %w", id, err)
		}
	}
	res.FinalOpen = serverNIC.ConnOpenCount()
	if res.FinalOpen != 0 {
		return nil, fmt.Errorf("connscale: %d server entries leaked after closing all %d conns",
			res.FinalOpen, res.SpillConns)
	}
	return res, nil
}

// latPercentiles returns the p50 and p99 of the recorded latencies.
func latPercentiles(lat []time.Duration) (p50, p99 time.Duration) {
	if len(lat) == 0 {
		return 0, 0
	}
	sorted := make([]time.Duration, len(lat))
	copy(sorted, lat)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p50 = sorted[len(sorted)*50/100]
	idx := len(sorted) * 99 / 100
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return p50, sorted[idx]
}
