package overload

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"dagger/internal/core"
	"dagger/internal/dataplane"
	"dagger/internal/fabric"
	"dagger/internal/retry"
)

const (
	fnCongested = 2
	// congRingDepth sizes the server's RX ring small enough that a closed
	// loop of congWorkers callers keeps it past the half-occupancy mark
	// threshold: the handler occupies the dispatch thread for congService,
	// so all but one in-flight request age in the ring.
	congRingDepth = 32
	congWorkers   = 24
	// congService is the handler's per-request occupancy of the dispatch
	// thread (spun, not slept — see the overload handler).
	congService = 20 * time.Microsecond
)

// CongestionConfig parametrizes one functional closed-loop congestion run.
type CongestionConfig struct {
	// Workers is the number of closed-loop callers (default congWorkers).
	Workers int
	// Duration is how long the callers keep issuing requests.
	Duration time.Duration
	Seed     int64
}

// CongestionResult is one functional congestion run's outcome.
type CongestionResult struct {
	Issued    int
	Completed int
	Errors    int
	// Marks is the client's count of responses carrying the congestion
	// mark stamped by the fabric at RX-ring admission.
	Marks uint64
	// Refused is the client's count of issues refused by its own AIMD
	// window (each was retried under the scaled backoff schedule).
	Refused uint64
	// FinalWindow is the AIMD window when the run ended; a value below
	// dataplane.DefaultMaxWindow proves the loop engaged.
	FinalWindow int
	P50         time.Duration // completed requests only
	P99         time.Duration
}

// RunCongestion executes one functional closed-loop congestion run: real
// goroutines hammer a server whose dispatch thread is the bottleneck, the
// fabric stamps frames admitted past half ring occupancy, the server echoes
// the stamp, and the client's AIMD window plus scaled retry backoff absorb
// the signal. The wall clock makes the numbers indicative, not
// deterministic; the asserted comparison lives on the timing stack.
func RunCongestion(cfg CongestionConfig) (*CongestionResult, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = congWorkers
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 200 * time.Millisecond
	}
	fab := fabric.NewFabric()
	clientNIC, err := fab.CreateNIC(clientAddr, 1, ringDepth)
	if err != nil {
		return nil, err
	}
	serverNIC, err := fab.CreateNIC(serverAddr, 1, congRingDepth)
	if err != nil {
		return nil, err
	}
	// Dispatch-thread handlers: the spin holds the lone dispatch goroutine,
	// so every other in-flight request ages in the RX ring where the fabric's
	// admission-time mark can see the backlog.
	srv := core.NewRpcThreadedServer(serverNIC, core.ServerConfig{})
	if err := srv.Register(fnCongested, "congestion.work", func(ctx context.Context, req []byte) ([]byte, error) {
		for start := time.Now(); time.Since(start) < congService; {
		}
		return req, nil
	}); err != nil {
		return nil, err
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Stop()

	cli, err := core.NewRpcClient(clientNIC, 0)
	if err != nil {
		return nil, err
	}
	defer cli.Close()
	conn, err := cli.OpenConnection(serverAddr)
	if err != nil {
		return nil, err
	}

	res := &CongestionResult{}
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
	)
	pol := retry.Policy{
		Base: congService, Max: 64 * congService, Multiplier: 2,
		MaxAttempts: 20, Jitter: 0.2, Seed: uint64(cfg.Seed + 1),
	}
	payload := []byte("congestion")
	deadline := time.Now().Add(cfg.Duration)
	for i := 0; i < cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				start := time.Now()
				resp, err := cli.CallRetry(context.Background(), pol, fnCongested, payload)
				mu.Lock()
				res.Issued++
				switch {
				case err == nil:
					latencies = append(latencies, time.Since(start))
					res.Completed++
				case errors.Is(err, core.ErrClientClose):
					mu.Unlock()
					return
				default:
					res.Errors++
				}
				mu.Unlock()
				if err == nil {
					cli.Release(resp)
				}
			}
		}()
	}
	wg.Wait()

	res.Marks = cli.Marks.Load()
	res.Refused = cli.Refused.Load()
	if st, ok := cli.Congestion(conn); ok {
		res.FinalWindow = st.Window
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		res.P50 = latencies[len(latencies)*50/100]
		idx := len(latencies) * 99 / 100
		if idx >= len(latencies) {
			idx = len(latencies) - 1
		}
		res.P99 = latencies[idx]
	}
	if res.Completed == 0 {
		return nil, fmt.Errorf("congestion: no requests completed (issued %d)", res.Issued)
	}
	if res.Marks == 0 {
		return nil, fmt.Errorf("congestion: %d workers over a depth-%d ring produced no marks",
			cfg.Workers, congRingDepth)
	}
	if res.FinalWindow >= dataplane.DefaultMaxWindow {
		return nil, fmt.Errorf("congestion: AIMD window never engaged (window %d)", res.FinalWindow)
	}
	return res, nil
}
