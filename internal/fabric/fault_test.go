package fabric

import (
	"testing"

	"dagger/internal/faults"
	"dagger/internal/wire"
)

// faultNICs builds a NIC pair with a single destination flow (so every frame
// lands in a known ring) and installs an injector built from rates on the
// destination's admission stage.
func faultNICs(t *testing.T, rates faults.Rates) (*SoftNIC, *SoftNIC, *Flow) {
	t.Helper()
	f := NewFabric()
	src, err := f.CreateNIC(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := f.CreateNIC(2, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := faults.NewInjector(faults.Config{Seed: 1, Rates: rates})
	if err != nil {
		t.Fatal(err)
	}
	dst.SetFaultInjector(inj)
	fl, err := dst.Flow(0)
	if err != nil {
		t.Fatal(err)
	}
	return src, dst, fl
}

func drainRPCIDs(t *testing.T, fl *Flow) []uint64 {
	t.Helper()
	var ids []uint64
	for {
		frame, ok := fl.TryRecv()
		if !ok {
			return ids
		}
		h, err := wire.ParseHeader(frame)
		if err != nil {
			t.Fatalf("delivered frame unparseable: %v", err)
		}
		ids = append(ids, h.RPCID)
		fl.Buffers().Put(frame)
	}
}

// A dropping stage is a silent success to the sender — Send returns nil, the
// ring stays empty, and every frame buffer goes back to the pool.
func TestFaultDropIsSilentToSender(t *testing.T) {
	src, dst, fl := faultNICs(t, faults.Rates{Drop: faults.RateDenominator})
	const n = 20
	for i := 0; i < n; i++ {
		m := req(1, 2, 5, 0, "payload")
		m.RPCID = uint64(i + 1)
		if err := src.Send(m); err != nil {
			t.Fatalf("send %d through all-drop stage: %v", i, err)
		}
	}
	if ids := drainRPCIDs(t, fl); len(ids) != 0 {
		t.Fatalf("all-drop stage delivered %d frames", len(ids))
	}
	if got := dst.FaultDrops.Load(); got != n {
		t.Fatalf("FaultDrops = %d, want %d", got, n)
	}
	if gets, puts := fl.Buffers().Loans(); gets != puts {
		t.Fatalf("dropped frames leaked buffers: %d gets, %d puts", gets, puts)
	}
	// RPCsIn is NIC ingress (the frame did arrive — the chaos plane ate it
	// after admission), while ring-overflow Drops stays untouched: fault
	// losses and capacity losses are separate ledgers.
	if dst.RPCsIn.Load() != n || dst.Drops.Load() != 0 {
		t.Fatalf("RPCsIn=%d Drops=%d after faults-only losses, want %d/0",
			dst.RPCsIn.Load(), dst.Drops.Load(), n)
	}
}

// A duplicating stage delivers the original immediately followed by its copy,
// and the copy parses identically (header checksum included).
func TestFaultDuplicateDeliversOrderedCopies(t *testing.T) {
	src, dst, fl := faultNICs(t, faults.Rates{Duplicate: faults.RateDenominator})
	const n = 10
	for i := 0; i < n; i++ {
		m := req(1, 2, 5, 0, "payload")
		m.RPCID = uint64(i + 1)
		if err := src.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	ids := drainRPCIDs(t, fl)
	if len(ids) != 2*n {
		t.Fatalf("delivered %d frames, want %d", len(ids), 2*n)
	}
	for i := 0; i < n; i++ {
		if ids[2*i] != uint64(i+1) || ids[2*i+1] != uint64(i+1) {
			t.Fatalf("frames %d,%d = rpc %d,%d; want back-to-back copies of %d",
				2*i, 2*i+1, ids[2*i], ids[2*i+1], i+1)
		}
	}
	if got := dst.FaultDups.Load(); got != n {
		t.Fatalf("FaultDups = %d, want %d", got, n)
	}
	if gets, puts := fl.Buffers().Loans(); gets != puts {
		t.Fatalf("duplicate copies leaked buffers: %d gets, %d puts", gets, puts)
	}
}

// A corrupting stage flips a covered header bit and the real checksum check
// catches every flip: corrupted frames are dropped and counted, never ring'd.
func TestFaultCorruptCaughtByChecksum(t *testing.T) {
	src, dst, fl := faultNICs(t, faults.Rates{Corrupt: faults.RateDenominator})
	const n = 50
	for i := 0; i < n; i++ {
		m := req(1, 2, 5, 0, "payload")
		m.RPCID = uint64(i + 1)
		if err := src.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if ids := drainRPCIDs(t, fl); len(ids) != 0 {
		t.Fatalf("corrupted frames reached the ring: %d delivered", len(ids))
	}
	if c, d := dst.FaultCorrupts.Load(), dst.CorruptDrops.Load(); c != n || d != n {
		t.Fatalf("FaultCorrupts=%d CorruptDrops=%d, want %d/%d (every flip caught)", c, d, n, n)
	}
	if gets, puts := fl.Buffers().Loans(); gets != puts {
		t.Fatalf("corrupt drops leaked buffers: %d gets, %d puts", gets, puts)
	}
}

// Held (delayed) frames release on FlushFaults, and uninstalling the injector
// releases them too — reconfiguration never strands pool loans.
func TestFaultDelayHoldAndRelease(t *testing.T) {
	src, dst, fl := faultNICs(t, faults.Rates{Delay: faults.RateDenominator})
	m := req(1, 2, 5, 0, "held")
	m.RPCID = 42
	if err := src.Send(m); err != nil {
		t.Fatal(err)
	}
	if ids := drainRPCIDs(t, fl); len(ids) != 0 {
		t.Fatalf("delayed frame delivered before release: %v", ids)
	}
	if got := dst.FaultDelays.Load(); got != 1 {
		t.Fatalf("FaultDelays = %d, want 1", got)
	}
	dst.FlushFaults()
	if ids := drainRPCIDs(t, fl); len(ids) != 1 || ids[0] != 42 {
		t.Fatalf("flush released %v, want [42]", ids)
	}

	// Second hold, released by uninstalling the stage.
	m2 := req(1, 2, 5, 0, "held2")
	m2.RPCID = 43
	if err := src.Send(m2); err != nil {
		t.Fatal(err)
	}
	dst.SetFaultInjector(nil)
	if ids := drainRPCIDs(t, fl); len(ids) != 1 || ids[0] != 43 {
		t.Fatalf("uninstall released %v, want [43]", ids)
	}
	if gets, puts := fl.Buffers().Loans(); gets != puts {
		t.Fatalf("held frames leaked buffers: %d gets, %d puts", gets, puts)
	}
}

// Closing a NIC whose fault stage still holds frames recycles them instead of
// stranding pool loans.
func TestFaultCloseRecyclesHeldFrames(t *testing.T) {
	src, dst, fl := faultNICs(t, faults.Rates{Delay: faults.RateDenominator})
	for i := 0; i < 3; i++ {
		m := req(1, 2, 5, 0, "held")
		m.RPCID = uint64(i + 1)
		if err := src.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	dst.Close()
	// Frames the stage had already released into the ring stay with the
	// consumer; drain them, then every loan must be back.
	drainRPCIDs(t, fl)
	if gets, puts := fl.Buffers().Loans(); gets != puts {
		t.Fatalf("close stranded held frames: %d gets, %d puts", gets, puts)
	}
}
