package fabric

import (
	"fmt"
	"sync"
	"testing"

	"dagger/internal/wire"
)

func twoNICs(t *testing.T) (*Fabric, *SoftNIC, *SoftNIC) {
	t.Helper()
	f := NewFabric()
	a, err := f.CreateNIC(1, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateNIC(2, 4, 64)
	if err != nil {
		t.Fatal(err)
	}
	return f, a, b
}

func req(src, dst uint32, conn uint32, flow uint16, payload string) *wire.Message {
	return &wire.Message{
		Header: wire.Header{
			Kind: wire.KindRequest, ConnID: conn, RPCID: 1,
			FlowID: flow, SrcAddr: src, DstAddr: dst,
		},
		Payload: []byte(payload),
	}
}

func TestFabricRouting(t *testing.T) {
	_, a, b := twoNICs(t)
	if err := a.Send(req(1, 2, 7, 0, "hi")); err != nil {
		t.Fatal(err)
	}
	// Static balancing assigned some flow on b; find the frame.
	var got []byte
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		if frame, ok := fl.TryRecv(); ok {
			got = frame
			break
		}
	}
	if got == nil {
		t.Fatal("frame not delivered to any flow")
	}
	m, _, err := wire.Unmarshal(got)
	if err != nil || string(m.Payload) != "hi" {
		t.Fatalf("payload = %q err %v", m.Payload, err)
	}
	if a.RPCsOut.Load() != 1 || b.RPCsIn.Load() != 1 {
		t.Fatal("monitor counters wrong")
	}
}

func TestFabricNoRoute(t *testing.T) {
	_, a, _ := twoNICs(t)
	if err := a.Send(req(1, 99, 1, 0, "x")); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestFabricStaticConnectionAffinity(t *testing.T) {
	_, a, b := twoNICs(t)
	// All requests on one connection must land on the same server flow.
	for i := 0; i < 10; i++ {
		if err := a.Send(req(1, 2, 5, 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
	flowsHit := 0
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		n := 0
		for {
			if _, ok := fl.TryRecv(); !ok {
				break
			}
			n++
		}
		if n > 0 {
			flowsHit++
			if n != 10 {
				t.Fatalf("connection split across flows: %d on flow %d", n, i)
			}
		}
	}
	if flowsHit != 1 {
		t.Fatalf("connection hit %d flows, want 1", flowsHit)
	}
}

func TestFabricUniformBalancer(t *testing.T) {
	_, a, b := twoNICs(t)
	if err := b.SetBalancer(BalanceUniform, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if err := a.Send(req(1, 2, uint32(i), 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		n := 0
		for {
			if _, ok := fl.TryRecv(); !ok {
				break
			}
			n++
		}
		if n != 10 {
			t.Fatalf("flow %d got %d, want 10 (uniform)", i, n)
		}
	}
}

func TestUniformSteeringUnbiasedAcrossWrap(t *testing.T) {
	f := NewFabric()
	a, err := f.CreateNIC(1, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateNIC(2, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.SetBalancer(BalanceUniform, nil); err != nil {
		t.Fatal(err)
	}
	// Park the round-robin counter so the send window straddles the 16-bit
	// boundary at a misaligned offset. The old steering truncated the
	// counter to uint16 before the modulo, which replays residue 0 at the
	// wrap (65535 % 3 == 0 and uint16(65536) % 3 == 0) and skews the split
	// to 21/20/19; full-width modulo keeps it exactly uniform.
	b.rr.Store(1<<16 - 31)
	const sends = 60
	for i := 0; i < sends; i++ {
		if err := a.Send(req(1, 2, uint32(i), 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		n := 0
		for {
			if _, ok := fl.TryRecv(); !ok {
				break
			}
			n++
		}
		if n != sends/3 {
			t.Fatalf("flow %d got %d of %d across the counter wrap, want %d", i, n, sends, sends/3)
		}
	}
}

func TestFabricObjectLevelBalancer(t *testing.T) {
	_, a, b := twoNICs(t)
	if err := b.SetBalancer(BalanceObjectLevel, func(p []byte) []byte { return p }); err != nil {
		t.Fatal(err)
	}
	// Same payload key -> same flow every time, from any connection.
	for i := 0; i < 20; i++ {
		if err := a.Send(req(1, 2, uint32(i), 0, "hotkey")); err != nil {
			t.Fatal(err)
		}
	}
	hit := 0
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		n := 0
		for {
			if _, ok := fl.TryRecv(); !ok {
				break
			}
			n++
		}
		if n > 0 {
			hit++
			if n != 20 {
				t.Fatalf("key split across flows")
			}
		}
	}
	if hit != 1 {
		t.Fatalf("key landed on %d flows", hit)
	}
}

func TestFabricObjectLevelNeedsExtractor(t *testing.T) {
	_, _, b := twoNICs(t)
	if err := b.SetBalancer(BalanceObjectLevel, nil); err == nil {
		t.Fatal("object-level without extractor accepted")
	}
}

func TestFabricResponseSteering(t *testing.T) {
	_, a, b := twoNICs(t)
	resp := &wire.Message{
		Header: wire.Header{
			Kind: wire.KindResponse, ConnID: 1, RPCID: 9,
			FlowID: 1, SrcAddr: 2, DstAddr: 1,
		},
		Payload: []byte("pong"),
	}
	if err := b.Send(resp); err != nil {
		t.Fatal(err)
	}
	fl, _ := a.Flow(1)
	frame, ok := fl.TryRecv()
	if !ok {
		t.Fatal("response not steered to requester's flow 1")
	}
	m, _, _ := wire.Unmarshal(frame)
	if string(m.Payload) != "pong" {
		t.Fatal("payload mismatch")
	}
	fl0, _ := a.Flow(0)
	if _, ok := fl0.TryRecv(); ok {
		t.Fatal("response duplicated to flow 0")
	}
}

func TestFabricRingFullDrops(t *testing.T) {
	f := NewFabric()
	a, _ := f.CreateNIC(1, 1, 16)
	b, _ := f.CreateNIC(2, 1, 2)
	var lastErr error
	for i := 0; i < 5; i++ {
		if err := a.Send(req(1, 2, 1, 0, "x")); err != nil {
			lastErr = err
		}
	}
	if lastErr != ErrRingFull {
		t.Fatalf("err = %v, want ErrRingFull", lastErr)
	}
	fl, _ := b.Flow(0)
	if fl.Dropped() == 0 || a.Drops.Load() == 0 {
		t.Fatal("drop counters not updated")
	}
}

// TestFabricCongestionMarking drives one flow's RX ring from empty to full
// without draining: frames admitted below the half-occupancy threshold must
// arrive clean, frames at or past it must carry the congestion bit and an
// occupancy hint that agrees with dataplane.Mark on the same depth.
func TestFabricCongestionMarking(t *testing.T) {
	const depth = 16
	f := NewFabric()
	a, _ := f.CreateNIC(1, 1, depth)
	b, _ := f.CreateNIC(2, 1, depth)
	for i := 0; i < depth; i++ {
		if err := a.Send(req(1, 2, 1, 0, "x")); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	fl, _ := b.Flow(0)
	for i := 0; i < depth; i++ {
		frame, ok := fl.TryRecv()
		if !ok {
			t.Fatalf("frame %d missing", i)
		}
		h, err := wire.ParseHeader(frame)
		if err != nil {
			t.Fatal(err)
		}
		wantMark := i >= depth/2 // frame i was admitted at ring depth i
		if h.Congested() != wantMark {
			t.Fatalf("frame %d congested=%v, want %v", i, h.Congested(), wantMark)
		}
		if wantMark && !(h.Occupancy >= 128) {
			t.Fatalf("frame %d marked with low hint %d", i, h.Occupancy)
		}
		if !wantMark && h.Occupancy != 0 {
			t.Fatalf("clean frame %d carries hint %d", i, h.Occupancy)
		}
	}
	if got := fl.Marked(); got != depth/2 {
		t.Fatalf("flow marked %d frames, want %d", got, depth/2)
	}
	if got := b.Marks(); got != depth/2 {
		t.Fatalf("NIC marks %d, want %d", got, depth/2)
	}
}

func TestFabricCloseAndReuseAddress(t *testing.T) {
	f := NewFabric()
	a, _ := f.CreateNIC(1, 1, 4)
	if _, err := f.CreateNIC(1, 1, 4); err != ErrDupAddress {
		t.Fatalf("dup address err = %v", err)
	}
	a.Close()
	if err := a.Send(req(1, 1, 1, 0, "x")); err != ErrClosed {
		t.Fatalf("send on closed NIC err = %v", err)
	}
	if _, err := f.CreateNIC(1, 1, 4); err != nil {
		t.Fatalf("address not released: %v", err)
	}
}

func TestFlowRecvBlocksAndWakes(t *testing.T) {
	f := NewFabric()
	a, _ := f.CreateNIC(1, 1, 4)
	b, _ := f.CreateNIC(2, 1, 4)
	fl, _ := b.Flow(0)
	stop := make(chan struct{})
	got := make(chan []byte, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		frame, ok := fl.Recv(stop)
		if ok {
			got <- frame
		}
	}()
	if err := a.Send(req(1, 2, 1, 0, "wake")); err != nil {
		t.Fatal(err)
	}
	frame := <-got
	m, _, _ := wire.Unmarshal(frame)
	if string(m.Payload) != "wake" {
		t.Fatal("wrong frame")
	}
	close(stop)
	wg.Wait()
}

func TestFlowRecvStop(t *testing.T) {
	f := NewFabric()
	b, _ := f.CreateNIC(2, 1, 4)
	fl, _ := b.Flow(0)
	stop := make(chan struct{})
	done := make(chan bool)
	go func() {
		_, ok := fl.Recv(stop)
		done <- ok
	}()
	close(stop)
	if ok := <-done; ok {
		t.Fatal("Recv returned ok after stop with empty ring")
	}
}

func TestConcurrentSenders(t *testing.T) {
	f := NewFabric()
	_, _ = f.CreateNIC(99, 1, 4) // unrelated NIC
	dst, _ := f.CreateNIC(2, 4, 4096)
	const senders, per = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		s := s
		src, err := f.CreateNIC(uint32(100+s), 1, 16)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				m := req(src.Addr(), 2, uint32(s), 0, fmt.Sprintf("m%d", i))
				if err := src.Send(m); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := dst.RPCsIn.Load(); got != senders*per {
		t.Fatalf("delivered %d, want %d", got, senders*per)
	}
}

func TestGatewayForwardsNonLocal(t *testing.T) {
	f := NewFabric()
	a, _ := f.CreateNIC(1, 1, 16)
	if f.NumNICs() != 1 {
		t.Fatalf("NumNICs = %d", f.NumNICs())
	}
	var forwarded []byte
	var forwardedTo uint32
	f.SetGateway(func(dst uint32, frame []byte) error {
		forwardedTo = dst
		// Per the Gateway contract the frame is borrowed (it is recycled
		// once the gateway returns), so retaining it requires a copy.
		forwarded = append([]byte(nil), frame...)
		return nil
	})
	if err := a.Send(req(1, 777, 1, 0, "remote")); err != nil {
		t.Fatal(err)
	}
	if forwardedTo != 777 || forwarded == nil {
		t.Fatal("gateway did not receive the non-local frame")
	}
	m, _, err := wire.Unmarshal(forwarded)
	if err != nil || string(m.Payload) != "remote" {
		t.Fatalf("gateway frame: %q %v", m.Payload, err)
	}
	// Detaching the gateway restores ErrNoRoute.
	f.SetGateway(nil)
	if err := a.Send(req(1, 777, 1, 0, "x")); err != ErrNoRoute {
		t.Fatalf("err = %v, want ErrNoRoute", err)
	}
}

func TestInjectDeliversAndSteers(t *testing.T) {
	f := NewFabric()
	b, _ := f.CreateNIC(2, 2, 16)
	frame, _ := wire.MarshalAppend(nil, req(1, 2, 9, 0, "injected"))
	if err := f.Inject(frame); err != nil {
		t.Fatal(err)
	}
	found := false
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		if raw, ok := fl.TryRecv(); ok {
			m, _, _ := wire.Unmarshal(raw)
			if string(m.Payload) == "injected" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("injected frame not delivered")
	}
	// Responses steer by FlowID.
	resp := &wire.Message{Header: wire.Header{Kind: wire.KindResponse, FlowID: 1, DstAddr: 2}}
	respFrame, _ := wire.MarshalAppend(nil, resp)
	if err := f.Inject(respFrame); err != nil {
		t.Fatal(err)
	}
	fl, _ := b.Flow(1)
	if _, ok := fl.RecvResponse(make(chan struct{})); !ok {
		t.Fatal("injected response not steered to flow 1")
	}
	// Unknown destination and garbage frames are errors.
	if err := f.Inject(frameTo(t, 99)); err != ErrNoRoute {
		t.Fatalf("inject to unknown addr: %v", err)
	}
	if err := f.Inject(make([]byte, wire.CacheLineSize)); err == nil {
		t.Fatal("garbage frame injected successfully")
	}
}

func TestInjectFullRingCountsDrops(t *testing.T) {
	f := NewFabric()
	b, err := f.CreateNIC(2, 1, 2) // tiny RX ring
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 5; i++ {
		if err := f.Inject(frameTo(t, 2)); err != nil {
			lastErr = err
		}
	}
	if lastErr != ErrRingFull {
		t.Fatalf("err = %v, want ErrRingFull", lastErr)
	}
	// Gateway-path drops must hit the destination NIC's monitor counter,
	// matching the accounting local Send performs.
	if b.Drops.Load() != 3 {
		t.Fatalf("destination Drops = %d, want 3", b.Drops.Load())
	}
	fl, _ := b.Flow(0)
	if fl.Dropped() != 3 {
		t.Fatalf("flow dropped = %d, want 3", fl.Dropped())
	}
}

func frameTo(t *testing.T, dst uint32) []byte {
	t.Helper()
	frame, err := wire.MarshalAppend(nil, req(1, dst, 1, 0, "x"))
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func TestFlowIndexBounds(t *testing.T) {
	f := NewFabric()
	a, _ := f.CreateNIC(1, 2, 16)
	if _, err := a.Flow(-1); err != ErrFlowRange {
		t.Fatal("negative flow accepted")
	}
	if _, err := a.Flow(2); err != ErrFlowRange {
		t.Fatal("out-of-range flow accepted")
	}
	Yield() // exercise the scheduler hint helper
}

func TestPoolConfigCustomClassBoundary(t *testing.T) {
	// A two-line frame (128 B) straddles the default ladder's 64/256
	// boundary and would be served from the 256 B class; a custom ladder
	// with a 128 B class serves it exactly.
	cfg := PoolConfig{
		Classes:     []int{128, 512, wire.MaxFrameSize},
		FlowSlots:   8,
		FabricSlots: 16,
	}
	f, err := NewFabricPools(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := f.PoolConfig(); len(got.Classes) != 3 || got.Classes[0] != 128 ||
		got.FlowSlots != 8 || got.FabricSlots != 16 {
		t.Fatalf("PoolConfig() = %+v, want the custom config back", got)
	}
	a, err := f.CreateNIC(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateNIC(2, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, wire.FirstLinePayload+1) // first payload size needing two lines
	for i := range payload {
		payload[i] = byte(i)
	}
	m := &wire.Message{
		Header:  wire.Header{Kind: wire.KindRequest, ConnID: 1, SrcAddr: 1, DstAddr: 2},
		Payload: payload,
	}
	if m.WireSize() != 128 {
		t.Fatalf("test premise: WireSize = %d, want 128", m.WireSize())
	}
	if err := a.Send(m); err != nil {
		t.Fatal(err)
	}
	fl, _ := b.Flow(0)
	frame, ok := fl.TryRecv()
	if !ok {
		t.Fatal("frame not delivered")
	}
	if cap(frame) != 128 {
		t.Fatalf("frame served from a %d B buffer, want the exact 128 B class", cap(frame))
	}
	got, _, err := wire.Unmarshal(frame)
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Payload) != string(payload) {
		t.Fatal("payload did not round-trip through the custom pool")
	}
	fl.Buffers().Put(frame)
}

func TestPoolConfigRejectsBadLadders(t *testing.T) {
	cases := []PoolConfig{
		{Classes: nil, FlowSlots: 8, FabricSlots: 16},
		{Classes: []int{256, 128, wire.MaxFrameSize}, FlowSlots: 8, FabricSlots: 16},
		{Classes: []int{64, 256}, FlowSlots: 8, FabricSlots: 16}, // below MaxFrameSize
		{Classes: []int{64, wire.MaxFrameSize}, FlowSlots: 0, FabricSlots: 16},
		{Classes: []int{64, wire.MaxFrameSize}, FlowSlots: 8, FabricSlots: 0},
	}
	for i, cfg := range cases {
		if _, err := NewFabricPools(cfg); err == nil {
			t.Errorf("case %d: NewFabricPools accepted invalid config %+v", i, cfg)
		}
	}
}

// drain pops every queued frame on every flow of n, returning them to the
// flow pools, and reports how many frames were queued.
func drain(n *SoftNIC) int {
	total := 0
	for i := 0; i < n.NumFlows(); i++ {
		fl, _ := n.Flow(i)
		for {
			frame, ok := fl.TryRecv()
			if !ok {
				break
			}
			total++
			fl.Buffers().Put(frame)
		}
	}
	return total
}

// TestSetBalancerClearsConnTable is the stale-steering regression: switching
// away from and back to static balancing must not resume steering from the
// old connection table.
func TestSetBalancerClearsConnTable(t *testing.T) {
	_, a, b := twoNICs(t)
	if err := a.Send(req(1, 2, 5, 0, "x")); err != nil {
		t.Fatal(err)
	}
	if b.ConnOpenCount() != 1 {
		t.Fatalf("open count = %d, want 1", b.ConnOpenCount())
	}
	if err := b.SetBalancer(BalanceUniform, nil); err != nil {
		t.Fatal(err)
	}
	if b.ConnOpenCount() != 0 {
		t.Fatalf("open count after reconfiguration = %d, want 0 (stale table)", b.ConnOpenCount())
	}
	if err := b.SetBalancer(BalanceStatic, nil); err != nil {
		t.Fatal(err)
	}
	// The same connection id must be treated as first contact: a fresh open,
	// not a hit on a stale entry.
	before := b.ConnStats()
	if err := a.Send(req(1, 2, 5, 0, "x")); err != nil {
		t.Fatal(err)
	}
	after := b.ConnStats()
	if after.Opens != before.Opens+1 || after.Hits != before.Hits {
		t.Fatalf("reconfigured NIC reused stale entry: before=%+v after=%+v", before, after)
	}
	drain(b)
}

// TestFabricConnCacheThrash pins the direct-mapped conflict ping-pong on the
// functional substrate with exact monitor counters, mirroring nicmodel's
// TestConnectionManagerThrash: two connection ids aliasing one slot
// alternate miss, re-cache, evict — and the missed frames carry the wire
// mark.
func TestFabricConnCacheThrash(t *testing.T) {
	f := NewFabric()
	a, err := f.CreateNIC(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateNICConns(2, 2, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	// First contact opens both; conn 5 displaces conn 1 (same LSBs, size-4
	// cache): eviction #1.
	for _, conn := range []uint32{1, 5} {
		if err := a.Send(req(1, 2, conn, 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := b.ConnStats(); st.Opens != 2 || st.Evictions != 1 || st.Misses != 0 {
		t.Fatalf("stats after opens = %+v", st)
	}
	drain(b)
	// Alternating lookups ping-pong: every one a re-caching miss.
	for round := 0; round < 3; round++ {
		for _, conn := range []uint32{1, 5} {
			if err := a.Send(req(1, 2, conn, 0, "x")); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := b.ConnStats()
	if st.Hits != 0 || st.Misses != 6 || st.Evictions != 7 {
		t.Fatalf("stats = %+v, want 0 hits / 6 misses / 7 evictions", st)
	}
	if b.ConnHits() != 0 || b.ConnMisses() != 6 || b.ConnEvictions() != 7 {
		t.Fatal("counter accessors disagree with ConnStats")
	}
	// Every thrash-phase frame was stamped with the conn-miss mark.
	missed := 0
	for i := 0; i < b.NumFlows(); i++ {
		fl, _ := b.Flow(i)
		for {
			frame, ok := fl.TryRecv()
			if !ok {
				break
			}
			m, _, err := wire.Unmarshal(frame)
			if err != nil {
				t.Fatal(err)
			}
			if m.ConnMissed() {
				missed++
			}
			fl.Buffers().Put(frame)
		}
	}
	if missed != 6 {
		t.Fatalf("conn-miss-marked frames = %d, want 6", missed)
	}
	// A repeated send on the most recent connection hits: no mark, no evict.
	if err := a.Send(req(1, 2, 5, 0, "x")); err != nil {
		t.Fatal(err)
	}
	if st := b.ConnStats(); st.Hits != 1 || st.Evictions != 7 {
		t.Fatalf("stats after hit = %+v", st)
	}
	drain(b)
}

// TestConnMissHook verifies the optional per-miss latency hook fires once
// per backing-store lookup — the functional stack's stand-in for the timing
// stack's HostLookupPenalty.
func TestConnMissHook(t *testing.T) {
	f := NewFabric()
	a, err := f.CreateNIC(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateNICConns(2, 2, 64, 4)
	if err != nil {
		t.Fatal(err)
	}
	var hookCalls int
	b.SetConnMissHook(func() { hookCalls++ })
	for _, conn := range []uint32{1, 5, 1, 5, 5} { // open, open, miss, miss, hit
		if err := a.Send(req(1, 2, conn, 0, "x")); err != nil {
			t.Fatal(err)
		}
	}
	if hookCalls != 2 {
		t.Fatalf("miss hook ran %d times, want 2", hookCalls)
	}
	b.SetConnMissHook(nil)
	if err := a.Send(req(1, 2, 1, 0, "x")); err != nil { // miss, hook uninstalled
		t.Fatal(err)
	}
	if hookCalls != 2 {
		t.Fatalf("uninstalled hook still ran (%d calls)", hookCalls)
	}
	drain(b)
}

// TestDisconnectRetiresEntry covers close propagation at the fabric layer: a
// KindDisconnect control frame retires the connection's steering state, is
// never delivered to a ring, and an open/close churn loop holds the table at
// its steady-state size (the boundedness the unbounded map lacked).
func TestDisconnectRetiresEntry(t *testing.T) {
	_, a, b := twoNICs(t)
	if err := a.Send(req(1, 2, 9, 0, "x")); err != nil {
		t.Fatal(err)
	}
	if b.ConnOpenCount() != 1 {
		t.Fatalf("open count = %d, want 1", b.ConnOpenCount())
	}
	drain(b)
	disc := &wire.Message{Header: wire.Header{
		Kind: wire.KindDisconnect, ConnID: 9, SrcAddr: 1, DstAddr: 2,
	}}
	if err := a.Send(disc); err != nil {
		t.Fatal(err)
	}
	if b.ConnOpenCount() != 0 {
		t.Fatalf("open count after disconnect = %d, want 0", b.ConnOpenCount())
	}
	if got := drain(b); got != 0 {
		t.Fatalf("disconnect control frame delivered to a ring (%d frames)", got)
	}
	// Retiring an unknown connection is an idempotent no-op.
	if err := a.Send(disc); err != nil {
		t.Fatal(err)
	}
	// Churn: the table returns to steady state every cycle instead of
	// growing without bound.
	for i := 0; i < 200; i++ {
		conn := uint32(100 + i)
		if err := a.Send(req(1, 2, conn, 0, "x")); err != nil {
			t.Fatal(err)
		}
		if err := a.Send(&wire.Message{Header: wire.Header{
			Kind: wire.KindDisconnect, ConnID: conn, SrcAddr: 1, DstAddr: 2,
		}}); err != nil {
			t.Fatal(err)
		}
		if got := b.ConnOpenCount(); got != 0 {
			t.Fatalf("iteration %d: open count = %d, want 0", i, got)
		}
	}
	drain(b)
}
