package fabric

import (
	"reflect"
	"testing"

	"dagger/internal/metrics"
	"dagger/internal/wire"
)

// TestSuggestPoolConfigRoundTrip pins the class-boundary round trip: a
// workload spread evenly across the default ladder's bands (largest frame in
// each band, i.e. one byte under each default class) must suggest exactly
// the default ladder back. 63, 255, 1023, and 4095 sit in buckets whose next
// boundary is the power of two above them at DefaultSubBits precision, so
// any drift in the histogram geometry or the quantile→class rounding breaks
// this test.
func TestSuggestPoolConfigRoundTrip(t *testing.T) {
	reg := metrics.New()
	h := reg.Histogram("frame.bytes")
	for _, sz := range []int64{63, 255, 1023, 4095} {
		for i := 0; i < 100; i++ {
			h.Observe(sz)
		}
	}
	got := SuggestPoolConfig(reg.Snapshot())
	want := DefaultPoolConfig()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SuggestPoolConfig = %+v, want defaults %+v", got, want)
	}
	if err := got.validate(); err != nil {
		t.Fatalf("suggested config invalid: %v", err)
	}
}

// TestSuggestPoolConfigShapes covers the degenerate shapes: no histogram,
// a single-size workload, and an all-large workload.
func TestSuggestPoolConfigShapes(t *testing.T) {
	if got := SuggestPoolConfig(metrics.Snapshot{}); !reflect.DeepEqual(got, DefaultPoolConfig()) {
		t.Fatalf("empty snapshot: got %+v, want defaults", got)
	}

	reg := metrics.New()
	h := reg.Histogram("frame.bytes")
	for i := 0; i < 50; i++ {
		h.Observe(63)
	}
	got := SuggestPoolConfig(reg.Snapshot())
	if want := []int{64, wire.MaxFrameSize}; !reflect.DeepEqual(got.Classes, want) {
		t.Fatalf("uniform small frames: classes %v, want %v", got.Classes, want)
	}
	if err := got.validate(); err != nil {
		t.Fatalf("suggested config invalid: %v", err)
	}

	reg = metrics.New()
	h = reg.Histogram("frame.bytes")
	for i := 0; i < 50; i++ {
		h.Observe(int64(wire.MaxFrameSize))
	}
	got = SuggestPoolConfig(reg.Snapshot())
	if want := []int{wire.MaxFrameSize}; !reflect.DeepEqual(got.Classes, want) {
		t.Fatalf("all-max frames: classes %v, want %v", got.Classes, want)
	}
	if err := got.validate(); err != nil {
		t.Fatalf("suggested config invalid: %v", err)
	}
}

// TestSuggestPoolConfigFromLiveNIC closes the loop end to end: drive real
// traffic, feed the NIC's own snapshot to SuggestPoolConfig, and build a
// fabric from the result.
func TestSuggestPoolConfigFromLiveNIC(t *testing.T) {
	_, a, _ := twoNICs(t)
	for i := 0; i < 32; i++ {
		if err := a.Send(req(1, 2, 1, 0, "payload")); err != nil {
			t.Fatal(err)
		}
	}
	cfg := SuggestPoolConfig(a.Metrics().Snapshot())
	if err := cfg.validate(); err != nil {
		t.Fatalf("live-traffic suggestion invalid: %v", err)
	}
	if _, err := NewFabricPools(cfg); err != nil {
		t.Fatalf("NewFabricPools(suggested): %v", err)
	}
}
