package fabric

import (
	"dagger/internal/metrics"
	"dagger/internal/stats"
	"dagger/internal/wire"
)

// suggestQuantiles are the frame-size percentiles that become pool size
// classes: one class sized for each quartile-ish band of the observed
// traffic, so the common small-RPC frames draw from tight buffers while the
// tail spills into progressively larger classes. wire.MaxFrameSize is always
// appended as the terminal class.
var suggestQuantiles = []float64{25, 50, 75, 90}

// SuggestPoolConfig derives a PoolConfig class ladder from the frame-size
// histogram in a NIC metrics snapshot (the frame.bytes sample every SoftNIC
// records on its send path). Each suggested class is the smallest histogram
// bucket boundary above a suggestQuantiles percentile of the observed
// frames, so every frame counted at or below that percentile fits the
// class. Duplicate and oversized boundaries collapse; slot counts stay at
// the defaults (they provision concurrency, not frame shape). A snapshot
// with no frame.bytes observations returns DefaultPoolConfig unchanged.
func SuggestPoolConfig(snap metrics.Snapshot) PoolConfig {
	cfg := DefaultPoolConfig()
	sm, ok := snap.Get("frame.bytes")
	if !ok || sm.Value == 0 || len(sm.Buckets) == 0 {
		return cfg
	}
	var classes []int
	for _, p := range suggestQuantiles {
		// Quantile returns the containing bucket's low bound; the next
		// bucket's low bound is the tightest class that fits everything in
		// the bucket. frame.bytes is recorded with DefaultSubBits precision.
		low := sm.Quantile(p)
		idx := stats.BucketIndex(metrics.DefaultSubBits, low)
		class := int(stats.BucketLow(metrics.DefaultSubBits, idx+1))
		if class >= wire.MaxFrameSize {
			continue
		}
		if n := len(classes); n > 0 && classes[n-1] >= class {
			continue
		}
		classes = append(classes, class)
	}
	cfg.Classes = append(classes, wire.MaxFrameSize)
	return cfg
}
