// Package fabric is the functional (real-goroutine) counterpart of the
// hardware Dagger NIC: an in-process acceleration fabric that the core RPC
// API drives exactly as the paper's software stack drives the FPGA. Each
// endpoint gets a SoftNIC with per-flow RX rings (lock-free, one ring per
// flow as in Figure 7); a Fabric routes frames between NICs the way the
// paper's loopback network and ToR switch model do between NIC instances on
// the FPGA.
//
// The SoftNIC performs the work the paper offloads to hardware — framing,
// connection lookup, response steering, load balancing across server flows —
// so the software above it (internal/core) stays as thin as the paper's
// host stack: write an RPC object to a ring, read completions from a ring.
//
// # Buffer ownership
//
// The data path recycles frame buffers through size-classed free lists
// (ringbuf.BufPool) instead of allocating per message, mirroring the paper's
// free-buffer FIFOs. The ownership contract:
//
//   - SoftNIC.Send marshals into a buffer drawn from the destination flow's
//     pool and hands ownership to the ring. The *wire.Message passed to Send
//     is only read during the call; callers keep ownership of m.Payload.
//   - The ring consumer (RpcClient recv loop or server dispatch thread) owns
//     each frame it pops and must return it via Flow.Buffers().Put once the
//     reassembler has consumed it.
//   - Fabric.Inject takes ownership of its frame argument on every path,
//     including errors: the buffer is either delivered to a ring or returned
//     to a pool. Callers must not touch the frame after Inject returns.
//   - A Gateway borrows the frame only for the duration of the call and must
//     not retain it after returning; implementations that queue or retransmit
//     (UDP, Reliable) copy it first.
//   - Buffers handed to consumers by a pooled reassembler (Message.Payload)
//     are owned by the consumer, which repays the loan with a Put on the same
//     pool hierarchy when done.
package fabric

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dagger/internal/connstate"
	"dagger/internal/dataplane"
	"dagger/internal/faults"
	"dagger/internal/metrics"
	"dagger/internal/ringbuf"
	"dagger/internal/wire"
)

// Errors returned by fabric operations.
var (
	ErrNoRoute    = errors.New("fabric: no NIC at destination address")
	ErrFlowRange  = errors.New("fabric: flow index out of range")
	ErrClosed     = errors.New("fabric: NIC closed")
	ErrRingFull   = errors.New("fabric: destination ring full")
	ErrDupAddress = errors.New("fabric: address already in use")
)

// Balancer is the steering scheme for incoming requests. It aliases
// dataplane.Scheme: the decision logic lives in internal/dataplane, shared
// verbatim with the timing stack's nicmodel so the two substrates cannot
// drift.
type Balancer = dataplane.Scheme

// Steering schemes for incoming requests (aliases kept for API
// compatibility; see dataplane.Scheme for semantics).
const (
	// BalanceStatic pins each connection to the flow assigned at connect
	// time.
	BalanceStatic = dataplane.SteerStatic
	// BalanceUniform round-robins incoming requests over flows.
	BalanceUniform = dataplane.SteerUniform
	// BalanceObjectLevel hashes a key extracted from the payload, giving
	// MICA-style object-to-core affinity.
	BalanceObjectLevel = dataplane.SteerKeyHash
)

// KeyExtractor pulls the steering key out of a request payload for
// object-level balancing. Registered per NIC by the application (the paper
// instantiates an application-specific balancer inside the NICs serving
// MICA tiers, §5.7).
type KeyExtractor = dataplane.KeyExtractor

// Flow is one NIC flow. Dagger's stack is symmetric — the same NIC serves
// both RPC clients and servers, with frames distinguished by the request
// type field (§4.4) — so each flow carries two RX rings: inbound requests
// (consumed by the server dispatch thread) and inbound responses (consumed
// by the RpcClient's receive path). Each ring has a wake channel so
// receivers need not spin.
type Flow struct {
	req     *ringbuf.Ring[[]byte]
	resp    *ringbuf.Ring[[]byte]
	reqWake chan struct{}
	rspWake chan struct{}
	pool    *ringbuf.BufPool
	dropped metrics.Counter
	marked  metrics.Counter
}

// bufClasses are the default buffer size classes shared by every data-path
// pool: small control frames up to the largest legal frame, so any frame or
// payload fits a pooled buffer.
var bufClasses = []int{64, 256, 1024, 4096, wire.MaxFrameSize}

// Default per-class ring capacities: flowPoolSlots per flow,
// fabricPoolSlots in the shared per-fabric parent that flow pools spill
// into and refill from.
const (
	flowPoolSlots   = 64
	fabricPoolSlots = 256
)

// PoolConfig sizes the fabric's buffer pools. The defaults suit the mixed
// small-RPC workloads of the paper's evaluation; workloads with a very
// different payload mix (e.g. all frames just over a class boundary) can
// supply their own class ladder and slot counts.
type PoolConfig struct {
	// Classes is the ascending ladder of buffer size classes. The last
	// class must be at least wire.MaxFrameSize so any legal frame fits a
	// pooled buffer.
	Classes []int
	// FlowSlots is the per-class ring capacity of each per-flow pool.
	FlowSlots int
	// FabricSlots is the per-class ring capacity of the shared per-fabric
	// parent pool that flow pools spill into and refill from.
	FabricSlots int
}

// DefaultPoolConfig returns the pool sizing used by NewFabric.
func DefaultPoolConfig() PoolConfig {
	return PoolConfig{
		Classes:     append([]int(nil), bufClasses...),
		FlowSlots:   flowPoolSlots,
		FabricSlots: fabricPoolSlots,
	}
}

func (c PoolConfig) validate() error {
	if len(c.Classes) == 0 {
		return fmt.Errorf("fabric: PoolConfig needs at least one size class")
	}
	prev := 0
	for _, sz := range c.Classes {
		if sz <= prev {
			return fmt.Errorf("fabric: PoolConfig classes must be positive and strictly ascending, got %v", c.Classes)
		}
		prev = sz
	}
	if last := c.Classes[len(c.Classes)-1]; last < wire.MaxFrameSize {
		return fmt.Errorf("fabric: largest PoolConfig class %d is below wire.MaxFrameSize %d", last, wire.MaxFrameSize)
	}
	if c.FlowSlots <= 0 || c.FabricSlots <= 0 {
		return fmt.Errorf("fabric: PoolConfig slot counts must be positive")
	}
	return nil
}

func newFlow(depth int, parent *ringbuf.BufPool, cfg PoolConfig) *Flow {
	return &Flow{
		req:     ringbuf.New[[]byte](depth),
		resp:    ringbuf.New[[]byte](depth),
		reqWake: make(chan struct{}, 1),
		rspWake: make(chan struct{}, 1),
		pool:    ringbuf.NewBufPool(cfg.FlowSlots, parent, cfg.Classes...),
	}
}

// Buffers returns the flow's frame buffer pool. Ring consumers return frames
// here after the reassembler consumes them, and recycle reassembled payloads
// here when done.
func (f *Flow) Buffers() *ringbuf.BufPool { return f.pool }

func (f *Flow) deliver(frame []byte, isResponse bool) bool {
	ring, wake := f.req, f.reqWake
	if isResponse {
		ring, wake = f.resp, f.rspWake
	}
	// ECN-style congestion marking (the closed loop the paper's NIC exports
	// to the host stack): if the ring is already at or past the dataplane
	// mark threshold, stamp the frame before publishing it. The frame is
	// still exclusively ours until Push succeeds, so patching its header
	// bytes is race-free.
	if depth := ring.Len(); dataplane.Mark(depth, ring.Cap()) {
		wire.StampCongestion(frame, dataplane.OccupancyHint(depth, ring.Cap()))
		f.marked.Add(1)
	}
	if !ring.Push(frame) {
		// Full RX ring: the dataplane RX overflow policy (RxRingOverflow)
		// is drop-newest, never blocking the fabric.
		if dataplane.DropRefused(dataplane.RxRingOverflow) {
			f.dropped.Add(1)
		}
		return false
	}
	select {
	case wake <- struct{}{}:
	default:
	}
	return true
}

func recvFrom(ring *ringbuf.Ring[[]byte], wake chan struct{}, stop <-chan struct{}) ([]byte, bool) {
	for {
		if frame, ok := ring.Pop(); ok {
			return frame, true
		}
		select {
		case <-wake:
		case <-stop:
			// Drain anything that raced in before reporting closure.
			if frame, ok := ring.Pop(); ok {
				return frame, true
			}
			return nil, false
		}
	}
}

// Recv returns the next inbound request frame, blocking until one arrives
// or stop closes. ok=false means the NIC (or caller) shut down.
func (f *Flow) Recv(stop <-chan struct{}) ([]byte, bool) {
	return recvFrom(f.req, f.reqWake, stop)
}

// RecvResponse returns the next inbound response frame, blocking until one
// arrives or stop closes.
func (f *Flow) RecvResponse(stop <-chan struct{}) ([]byte, bool) {
	return recvFrom(f.resp, f.rspWake, stop)
}

// TryRecv returns an inbound frame without blocking, preferring requests.
func (f *Flow) TryRecv() ([]byte, bool) {
	if frame, ok := f.req.Pop(); ok {
		return frame, true
	}
	return f.resp.Pop()
}

// Dropped returns the number of frames dropped at this flow's rings.
func (f *Flow) Dropped() uint64 { return f.dropped.Load() }

// Marked returns the number of frames congestion-marked at this flow's
// rings (frames admitted while occupancy was at or past the dataplane mark
// threshold).
func (f *Flow) Marked() uint64 { return f.marked.Load() }

// DefaultConnCacheSize is the per-NIC connection cache capacity if not
// overridden by CreateNICConns: the near-memory working set the NIC steers
// from without paying the host-lookup penalty (§4.2).
const DefaultConnCacheSize = 1024

// SoftNIC is one endpoint's software NIC instance.
type SoftNIC struct {
	addr   uint32
	fab    *Fabric
	flows  []*Flow
	closed atomic.Bool

	rr atomic.Uint32

	mu        sync.RWMutex
	balancer  Balancer
	extractor KeyExtractor
	// conns is the §4.2 connection manager: a bounded direct-mapped cache of
	// connection → assigned-local-flow entries backed by a host store, with
	// the geometry and accounting owned by internal/connstate (shared with
	// the timing stack's nicmodel so the substrates cannot drift).
	conns *connstate.Cache[uint16]
	// connMissHook, when set, is invoked once per connection-cache miss
	// (outside the NIC lock): the functional stack's stand-in for the timing
	// stack's HostLookupPenalty.
	connMissHook func()

	// Chaos plane (internal/faults): an optional deterministic fault stage
	// at queue admission. faultMu guards the injector and the held-back
	// Delay/Reorder frames; it also serializes verdict consumption so the
	// admission index — and therefore the verdict sequence — is
	// deterministic under a serial driver.
	faultMu  sync.Mutex
	injector *faults.Injector
	delayed  []delayedFrame

	// Monitor counters (the packet monitor block). metrics.Counter is a
	// drop-in for the atomic.Uint64 these grew up as; every NIC registers
	// them in its metrics registry at creation.
	RPCsIn   metrics.Counter
	RPCsOut  metrics.Counter
	BytesIn  metrics.Counter
	BytesOut metrics.Counter
	Drops    metrics.Counter

	// Fault-stage counters (fault.* family, cross-substrate names shared
	// with nicmodel): verdicts executed at this NIC's admission point.
	// CorruptDrops counts corrupted frames the header checksum caught and
	// the NIC discarded instead of dispatching; the chaos gates assert it
	// equals FaultCorrupts (zero escapes).
	FaultDrops    metrics.Counter
	FaultDups     metrics.Counter
	FaultDelays   metrics.Counter
	FaultCorrupts metrics.Counter
	CorruptDrops  metrics.Counter

	reg        *metrics.Registry
	frameBytes *metrics.Histogram
}

// delayedFrame is a frame the fault stage is holding back; it releases after
// remaining further admissions at the same NIC.
type delayedFrame struct {
	fl         *Flow
	frame      []byte
	isResponse bool
	remaining  uint32
}

// Metrics returns the NIC's telemetry registry. Shared-policy families use
// the cross-substrate names (conn.*, mark.*) so snapshots diff cleanly
// against the timing stack's nicmodel NIC.
func (n *SoftNIC) Metrics() *metrics.Registry { return n.reg }

// describeMetrics registers the NIC's counters, cache gauges, and the
// observed frame-size histogram into reg.
func (n *SoftNIC) describeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("rpc.in", &n.RPCsIn)
	reg.RegisterCounter("rpc.out", &n.RPCsOut)
	reg.RegisterCounter("bytes.in", &n.BytesIn)
	reg.RegisterCounter("bytes.out", &n.BytesOut)
	reg.RegisterCounter("drop.ring", &n.Drops)
	reg.RegisterCounter("fault.dropped", &n.FaultDrops)
	reg.RegisterCounter("fault.duplicated", &n.FaultDups)
	reg.RegisterCounter("fault.delayed", &n.FaultDelays)
	reg.RegisterCounter("fault.corrupted", &n.FaultCorrupts)
	reg.RegisterCounter("fault.corrupt.dropped", &n.CorruptDrops)
	n.frameBytes = reg.Histogram("frame.bytes")
	reg.Func("mark.rx.stamped", func() int64 { return int64(n.Marks()) })
	reg.Func("drop.rx.ring", func() int64 {
		var total uint64
		for _, fl := range n.flows {
			total += fl.Dropped()
		}
		return int64(total)
	})
	reg.Func("conn.hits", func() int64 { return int64(n.ConnStats().Hits) })
	reg.Func("conn.misses", func() int64 { return int64(n.ConnStats().Misses) })
	reg.Func("conn.evictions", func() int64 { return int64(n.ConnStats().Evictions) })
	reg.Func("conn.opens", func() int64 { return int64(n.ConnStats().Opens) })
	reg.Func("conn.closes", func() int64 { return int64(n.ConnStats().Closes) })
	reg.Func("conn.open", func() int64 { return int64(n.ConnOpenCount()) })
	// Every steering lookup is either a cache hit or a backing-store miss;
	// both substrates derive conn.lookups identically so the family stays
	// snapshot-comparable.
	reg.Func("conn.lookups", func() int64 {
		st := n.ConnStats()
		return int64(st.Hits + st.Misses)
	})
}

// Addr returns the NIC's fabric address.
func (n *SoftNIC) Addr() uint32 { return n.addr }

// Marks returns the total congestion marks stamped at this NIC's flow rings.
func (n *SoftNIC) Marks() uint64 {
	var total uint64
	for _, fl := range n.flows {
		total += fl.Marked()
	}
	return total
}

// NumFlows returns the flow count (hard configuration).
func (n *SoftNIC) NumFlows() int { return len(n.flows) }

// Flow returns flow i's receive side.
func (n *SoftNIC) Flow(i int) (*Flow, error) {
	if i < 0 || i >= len(n.flows) {
		return nil, ErrFlowRange
	}
	return n.flows[i], nil
}

// SetBalancer selects the steering scheme for incoming requests
// (soft configuration). The extractor is required for object-level
// balancing. Reconfiguration drops the connection table: flow assignments
// made under the old scheme are stale (switching away from and back to
// static balancing must not resume steering from entries the interim scheme
// never maintained), so static steering restarts from first contact.
func (n *SoftNIC) SetBalancer(b Balancer, ex KeyExtractor) error {
	if b == BalanceObjectLevel && ex == nil {
		return fmt.Errorf("fabric: object-level balancer needs a key extractor")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	n.balancer = b
	n.extractor = ex
	n.conns.Reset()
	return nil
}

// SetConnMissHook installs fn to be called once per connection-cache miss,
// outside the NIC lock. The functional stack has no virtual clock, so this
// is how an experiment charges the §4.2 host-lookup penalty (or just counts
// misses); nil uninstalls.
func (n *SoftNIC) SetConnMissHook(fn func()) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.connMissHook = fn
}

// ConnStats returns the connection cache's monitor counters.
func (n *SoftNIC) ConnStats() connstate.Stats {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conns.Stats()
}

// ConnHits returns the number of steering lookups served from the
// connection cache.
func (n *SoftNIC) ConnHits() uint64 { return n.ConnStats().Hits }

// ConnMisses returns the number of steering lookups that fell back to the
// host backing store.
func (n *SoftNIC) ConnMisses() uint64 { return n.ConnStats().Misses }

// ConnEvictions returns the number of cached connection entries displaced
// by direct-mapped conflicts.
func (n *SoftNIC) ConnEvictions() uint64 { return n.ConnStats().Evictions }

// ConnOpenCount returns the number of connections the NIC currently holds
// state for (cached or in the backing store). Close propagation keeps this
// bounded under connection churn.
func (n *SoftNIC) ConnOpenCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.conns.OpenCount()
}

// retireConn removes a connection's steering state in response to a
// KindDisconnect control frame. Idempotent: retiring an unknown connection
// is a no-op.
func (n *SoftNIC) retireConn(src, id uint32) {
	n.mu.Lock()
	defer n.mu.Unlock()
	_ = n.conns.Close(connstate.Key(src, id))
}

// Close shuts the NIC down and removes it from the fabric. Frames the fault
// stage was still holding go back to their pools — ring consumers are
// assumed gone — so buffer-loan accounting balances.
func (n *SoftNIC) Close() {
	if n.closed.Swap(true) {
		return
	}
	n.faultMu.Lock()
	for _, d := range n.delayed {
		d.fl.pool.Put(d.frame)
	}
	n.delayed = nil
	n.faultMu.Unlock()
	n.fab.remove(n.addr)
}

// SetFaultInjector installs a deterministic fault stage (internal/faults) at
// the NIC's queue-admission point; nil uninstalls it. Reconfiguring releases
// any frames a previous stage was still holding, in hold order, so no pooled
// buffer is stranded across the switch.
func (n *SoftNIC) SetFaultInjector(inj *faults.Injector) {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	n.flushFaultsLocked()
	n.injector = inj
}

// FlushFaults releases every frame the fault stage is holding back (Delay
// and Reorder verdicts not yet due), delivering them in hold order. Tests
// and experiments call it when draining a faulted NIC so that ring contents
// and buffer loans account for every admitted frame.
func (n *SoftNIC) FlushFaults() {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	n.flushFaultsLocked()
}

func (n *SoftNIC) flushFaultsLocked() {
	for _, d := range n.delayed {
		if !d.fl.deliver(d.frame, d.isResponse) {
			d.fl.pool.Put(d.frame)
		}
	}
	n.delayed = n.delayed[:0]
}

// admit is the destination NIC's queue-admission point: the deterministic
// fault stage (when an injector is installed) ahead of ring delivery. admit
// owns frame on every path and returns false only when the frame itself was
// refused by a full ring (after recycling it). Fault-stage losses return
// true: the sender of a frame the chaos plane ate learns no more than the
// sender of a frame a real fabric lost.
func (n *SoftNIC) admit(fl *Flow, frame []byte, isResponse bool) bool {
	n.faultMu.Lock()
	defer n.faultMu.Unlock()
	if n.injector == nil {
		if !fl.deliver(frame, isResponse) {
			fl.pool.Put(frame)
			return false
		}
		return true
	}
	v := n.injector.Next()
	// Age frames held by earlier admissions. They release only after this
	// admission's own delivery (below), so a Reorder verdict swaps a frame
	// with its successor rather than riding alongside it.
	for i := range n.delayed {
		n.delayed[i].remaining--
	}
	ok := true
	switch v.Class {
	case faults.Drop:
		n.FaultDrops.Add(1)
		fl.pool.Put(frame)
	case faults.CorruptBit:
		wire.FlipCoveredBit(frame, v.Arg)
		n.FaultCorrupts.Add(1)
		// The header checksum is the hardening under test, so verify for
		// real rather than assuming: a caught frame is dropped at the NIC,
		// never dispatched. CRC-8 catches every single covered-bit flip
		// (the chaos gates assert zero escapes for their seeds).
		if !wire.VerifyChecksum(frame) {
			n.CorruptDrops.Add(1)
			fl.pool.Put(frame)
		} else if !fl.deliver(frame, isResponse) {
			fl.pool.Put(frame)
			ok = false
		}
	case faults.Duplicate:
		// Copy before delivering: ownership of the original transfers to the
		// ring — and possibly to a concurrent consumer — the moment Push
		// succeeds.
		dup := fl.pool.Get(len(frame))
		copy(dup, frame)
		if !fl.deliver(frame, isResponse) {
			fl.pool.Put(frame)
			ok = false
		}
		if fl.deliver(dup, isResponse) {
			n.FaultDups.Add(1)
		} else {
			fl.pool.Put(dup)
		}
	case faults.Delay, faults.Reorder:
		n.FaultDelays.Add(1)
		rem := v.Arg
		if rem == 0 {
			rem = 1
		}
		n.delayed = append(n.delayed, delayedFrame{
			fl: fl, frame: frame, isResponse: isResponse, remaining: rem,
		})
	default: // Deliver
		if !fl.deliver(frame, isResponse) {
			fl.pool.Put(frame)
			ok = false
		}
	}
	// Release everything now due, in hold order.
	if len(n.delayed) > 0 {
		kept := n.delayed[:0]
		for _, d := range n.delayed {
			if d.remaining == 0 {
				if !d.fl.deliver(d.frame, d.isResponse) {
					d.fl.pool.Put(d.frame)
				}
			} else {
				kept = append(kept, d)
			}
		}
		for i := len(kept); i < len(n.delayed); i++ {
			n.delayed[i] = delayedFrame{}
		}
		n.delayed = kept
	}
	return ok
}

// pickFlow steers an inbound request to a local flow and reports whether
// the connection lookup missed the near-memory cache. The decision itself
// is dataplane.Steer over connstate.Cache verdicts — this method only
// supplies the NIC's state (rr counter, connection cache, extractor) as
// plain inputs, and runs the miss hook outside the lock.
func (n *SoftNIC) pickFlow(m *wire.Message) (flow uint16, miss bool) {
	n.mu.RLock()
	balancer, extractor := n.balancer, n.extractor
	n.mu.RUnlock()
	switch balancer {
	case BalanceUniform:
		return dataplane.Steer(balancer, dataplane.SteerInput{
			NFlows: len(n.flows),
			RR:     n.rr.Add(1) - 1,
		}), false
	case BalanceObjectLevel:
		return dataplane.Steer(balancer, dataplane.SteerInput{
			NFlows: len(n.flows),
			Key:    extractor(m.Payload),
		}), false
	default: // static
		key := connstate.Key(m.SrcAddr, m.ConnID)
		n.mu.Lock()
		if f, hit, err := n.conns.Lookup(key); err == nil {
			hook := n.connMissHook
			n.mu.Unlock()
			if !hit && hook != nil {
				hook()
			}
			return dataplane.Steer(balancer, dataplane.SteerInput{
				NFlows:   len(n.flows),
				ConnFlow: f,
				HasConn:  true,
			}), !hit
		}
		// Unknown connection: assign round-robin and open (the CM opens the
		// connection on first contact). Open cannot fail here — the lookup
		// just reported not-open under the same lock hold.
		f := dataplane.Steer(balancer, dataplane.SteerInput{
			NFlows: len(n.flows),
			RR:     n.rr.Add(1) - 1,
		})
		_ = n.conns.Open(key, f)
		n.mu.Unlock()
		return f, false
	}
}

// Send routes a message through the fabric to its destination NIC,
// performing the steering the hardware load balancer and connection manager
// do. Messages to addresses with no local NIC are handed to the fabric's
// gateway (a cross-host transport) if one is attached. Flow-control is lossy
// at full rings, like the paper's best-effort transport (the Protocol unit
// is pass-through unless a transport protocol is layered on the gateway).
func (n *SoftNIC) Send(m *wire.Message) error {
	if n.closed.Load() {
		return ErrClosed
	}
	dst := n.fab.lookup(m.DstAddr)
	if dst == nil {
		gw := n.fab.gateway()
		if gw == nil {
			return ErrNoRoute
		}
		// Marshal into a pooled scratch buffer; the gateway only borrows
		// the frame for the duration of the call.
		frame, err := wire.MarshalAppend(n.fab.pool.Get(m.WireSize())[:0], m)
		if err != nil {
			n.fab.pool.Put(frame)
			return err
		}
		n.RPCsOut.Add(1)
		n.BytesOut.Add(uint64(len(frame)))
		n.frameBytes.Observe(int64(len(frame)))
		err = gw(m.DstAddr, frame)
		n.fab.pool.Put(frame)
		return err
	}
	if m.Kind == wire.KindDisconnect {
		// Connection-control frame: the client is propagating a close so the
		// server NIC can retire the entry instead of leaking it. Consumed by
		// the NIC itself — never delivered to a ring.
		dst.retireConn(m.SrcAddr, m.ConnID)
		return nil
	}
	var flow uint16
	var connMiss bool
	switch m.Kind {
	case wire.KindResponse:
		// Responses steer to the flow the request came from (§4.2: "the
		// NIC reads this information to ensure that the responses are
		// steered to the same flows where requests came from").
		flow = dataplane.ResponseFlow(m.FlowID, len(dst.flows))
	default:
		flow, connMiss = dst.pickFlow(m)
	}
	// Marshal into a buffer from the destination flow's pool; delivery
	// transfers ownership to the ring, and the consumer recycles it.
	fl := dst.flows[flow]
	frame, err := wire.MarshalAppend(fl.pool.Get(m.WireSize())[:0], m)
	if err != nil {
		fl.pool.Put(frame)
		return err
	}
	if connMiss {
		// The steering lookup fell back to host memory: mark the frame so
		// the server can echo it and traces can attribute the penalty.
		wire.StampConnMiss(frame)
	}
	n.RPCsOut.Add(1)
	n.BytesOut.Add(uint64(len(frame)))
	n.frameBytes.Observe(int64(len(frame)))
	size := len(frame)
	if !dst.admit(fl, frame, m.Kind == wire.KindResponse) {
		n.Drops.Add(1)
		return ErrRingFull
	}
	dst.RPCsIn.Add(1)
	dst.BytesIn.Add(uint64(size))
	return nil
}

// Gateway forwards frames addressed to NICs not present on this fabric —
// the hook a cross-host transport (internal/transport) attaches to. The
// frame is borrowed: the gateway must not retain it after returning, and
// must copy it if transmission outlives the call.
type Gateway func(dstAddr uint32, frame []byte) error

// Fabric connects SoftNICs by address.
type Fabric struct {
	mu      sync.RWMutex
	nics    map[uint32]*SoftNIC
	gw      Gateway
	pool    *ringbuf.BufPool
	poolCfg PoolConfig
}

// NewFabric creates an empty fabric with DefaultPoolConfig buffer pools.
func NewFabric() *Fabric {
	f, err := NewFabricPools(DefaultPoolConfig())
	if err != nil {
		// DefaultPoolConfig always validates; a failure here is a bug.
		panic(err)
	}
	return f
}

// NewFabricPools creates an empty fabric whose buffer pools (the shared
// parent and every per-flow pool of NICs created on it) are sized by cfg.
func NewFabricPools(cfg PoolConfig) (*Fabric, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Fabric{
		nics:    make(map[uint32]*SoftNIC),
		pool:    ringbuf.NewBufPool(cfg.FabricSlots, nil, cfg.Classes...),
		poolCfg: cfg,
	}, nil
}

// PoolConfig returns the pool sizing this fabric was created with.
func (f *Fabric) PoolConfig() PoolConfig { return f.poolCfg }

// Buffers returns the fabric-wide buffer pool, the parent that per-flow
// pools spill into. Gateways draw frames destined for Inject from here.
func (f *Fabric) Buffers() *ringbuf.BufPool { return f.pool }

// SetGateway attaches the route of last resort for non-local destinations.
func (f *Fabric) SetGateway(gw Gateway) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gw = gw
}

func (f *Fabric) gateway() Gateway {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.gw
}

// Inject delivers a frame arriving from a gateway (e.g. a UDP transport) to
// the local destination NIC, applying the same steering as local sends.
// Inject takes ownership of frame on every path: it is either delivered to
// a ring (and recycled by the consumer) or returned to a buffer pool.
//
// dagger:transfers-ownership frame
func (f *Fabric) Inject(frame []byte) error {
	m, _, err := wire.Unmarshal(frame)
	if err != nil {
		f.pool.Put(frame)
		return err
	}
	dst := f.lookup(m.DstAddr)
	if dst == nil {
		f.pool.Put(frame)
		return ErrNoRoute
	}
	if m.Kind == wire.KindDisconnect {
		// Connection-control frame from a remote host: retire the entry and
		// recycle the frame; nothing is delivered to a ring.
		dst.retireConn(m.SrcAddr, m.ConnID)
		f.pool.Put(frame)
		return nil
	}
	var flow uint16
	var connMiss bool
	if m.Kind == wire.KindResponse {
		flow = dataplane.ResponseFlow(m.FlowID, len(dst.flows))
	} else {
		flow, connMiss = dst.pickFlow(&m)
	}
	if connMiss {
		wire.StampConnMiss(frame)
	}
	fl := dst.flows[flow]
	size := len(frame)
	if !dst.admit(fl, frame, m.Kind == wire.KindResponse) {
		// Count the drop on the destination NIC so cross-host drop
		// accounting matches the in-process Send path.
		dst.Drops.Add(1)
		return ErrRingFull
	}
	dst.RPCsIn.Add(1)
	dst.BytesIn.Add(uint64(size))
	return nil
}

// DefaultRingDepth is the per-flow RX ring depth if not overridden.
const DefaultRingDepth = 1024

// CreateNIC instantiates a NIC at addr with nflows flows and the given RX
// ring depth per flow (0 uses DefaultRingDepth). The connection cache gets
// DefaultConnCacheSize entries; use CreateNICConns to size it.
func (f *Fabric) CreateNIC(addr uint32, nflows, ringDepth int) (*SoftNIC, error) {
	return f.CreateNICConns(addr, nflows, ringDepth, 0)
}

// CreateNICConns is CreateNIC with an explicit connection cache capacity
// (§4.2 hard configuration; 0 uses DefaultConnCacheSize, rounded up to a
// power of two). Connections beyond the cache's conflict-free working set
// still steer correctly — they fall back to the backing store — but each
// such lookup counts a miss and pays the (hook-injected) host-lookup
// penalty.
func (f *Fabric) CreateNICConns(addr uint32, nflows, ringDepth, connCache int) (*SoftNIC, error) {
	if nflows <= 0 {
		return nil, fmt.Errorf("fabric: need at least one flow")
	}
	if ringDepth <= 0 {
		ringDepth = DefaultRingDepth
	}
	if connCache <= 0 {
		connCache = DefaultConnCacheSize
	}
	n := &SoftNIC{
		addr:  addr,
		fab:   f,
		conns: connstate.New[uint16](connCache),
	}
	for i := 0; i < nflows; i++ {
		n.flows = append(n.flows, newFlow(ringDepth, f.pool, f.poolCfg))
	}
	n.reg = metrics.New()
	n.describeMetrics(n.reg)
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.nics[addr]; dup {
		return nil, ErrDupAddress
	}
	f.nics[addr] = n
	return n, nil
}

func (f *Fabric) lookup(addr uint32) *SoftNIC {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return f.nics[addr]
}

func (f *Fabric) remove(addr uint32) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.nics, addr)
}

// NumNICs returns the number of attached NICs.
func (f *Fabric) NumNICs() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.nics)
}

// Yield hints the scheduler during tight poll loops.
func Yield() { runtime.Gosched() }
