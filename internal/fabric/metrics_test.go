package fabric

import (
	"testing"
)

// TestNICMetricsMatchGetters drives traffic through a NIC pair and checks
// every pre-existing getter against its registry-backed sample: the getters
// are now thin adapters, and this pins that the adaptation is lossless.
func TestNICMetricsMatchGetters(t *testing.T) {
	_, a, b := twoNICs(t)
	for i := 0; i < 40; i++ {
		// A handful of connections so the conn cache sees opens and hits.
		if err := a.Send(req(1, 2, uint32(i%4+1), 0, "payload")); err != nil {
			t.Fatal(err)
		}
	}
	for _, nic := range []*SoftNIC{a, b} {
		s := nic.Metrics().Snapshot()
		st := nic.ConnStats()
		checks := map[string]int64{
			"rpc.in":          int64(nic.RPCsIn.Load()),
			"rpc.out":         int64(nic.RPCsOut.Load()),
			"bytes.in":        int64(nic.BytesIn.Load()),
			"bytes.out":       int64(nic.BytesOut.Load()),
			"drop.ring":       int64(nic.Drops.Load()),
			"mark.rx.stamped": int64(nic.Marks()),
			"conn.hits":       int64(st.Hits),
			"conn.misses":     int64(st.Misses),
			"conn.evictions":  int64(st.Evictions),
			"conn.opens":      int64(st.Opens),
			"conn.closes":     int64(st.Closes),
			"conn.open":       int64(nic.ConnOpenCount()),
		}
		for name, want := range checks {
			if got := s.Value(name); got != want {
				t.Errorf("nic %d: %s = %d, want %d (getter)", nic.Addr(), name, got, want)
			}
		}
		if _, ok := s.Get("frame.bytes"); !ok {
			t.Errorf("nic %d: frame.bytes histogram not registered", nic.Addr())
		}
	}

	// The sender's frame-size histogram saw every send, each one frame of
	// WireSize bytes.
	fb, _ := a.Metrics().Snapshot().Get("frame.bytes")
	if fb.Value != int64(a.RPCsOut.Load()) {
		t.Fatalf("frame.bytes count %d != rpc.out %d", fb.Value, a.RPCsOut.Load())
	}
}

// TestFlowMarkDropMetrics fills a depth-4 ring without consuming: the
// registry's mark and drop gauges must equal the per-flow getters.
func TestFlowMarkDropMetrics(t *testing.T) {
	f := NewFabric()
	a, err := f.CreateNIC(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.CreateNIC(2, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		m := req(1, 2, 1, 0, "x")
		m.RPCID = uint64(i + 1)
		_ = a.Send(m) // overflow drops are expected
	}
	fl, _ := b.Flow(0)
	s := b.Metrics().Snapshot()
	if got := s.Value("mark.rx.stamped"); got != int64(fl.Marked()) || got == 0 {
		t.Fatalf("mark.rx.stamped = %d, flow getter %d", got, fl.Marked())
	}
	if got := s.Value("drop.rx.ring"); got != int64(fl.Dropped()) || got == 0 {
		t.Fatalf("drop.rx.ring = %d, flow getter %d", got, fl.Dropped())
	}
	if got := s.Value("drop.ring"); got != int64(b.Drops.Load()) {
		t.Fatalf("drop.ring = %d, NIC counter %d", got, b.Drops.Load())
	}
}
