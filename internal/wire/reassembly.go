package wire

// BufferPool supplies and recycles payload buffers for the reassembler. It is
// satisfied by *ringbuf.BufPool; defining the interface here keeps wire free
// of dependencies while letting the data path plug in its free lists.
type BufferPool interface {
	// Get returns a buffer of length n with capacity at least n and
	// undefined contents.
	Get(n int) []byte
	// Put recycles a buffer previously returned by Get.
	Put(b []byte)
}

// flowState is one flow's in-progress frame. Entries persist across frames so
// the steady-state map is never written, only read.
type flowState struct {
	hdr    Header
	buf    []byte // payload assembled so far, at offset 0
	active bool
}

// Reassembler implements software RPC reassembly (§4.7): the memory
// interconnect's MTU is a single cache line, so frames arrive as line-sized
// chunks and multi-line RPCs are stitched back together on the CPU before
// delivery. Lines of one RPC arrive in order within a flow (the interconnect
// preserves per-flow ordering); interleaving across flows is handled by
// keeping one assembly buffer per flow.
//
// The reassembler strips headers as it goes: delivered messages carry a
// payload-only buffer starting at offset 0, owned by the caller. When built
// with NewReassemblerPool, payload buffers come from the pool and the caller
// repays the loan by calling pool.Put once it is done with Message.Payload
// (buffers obtained any other way are also accepted by Put, so callers may
// recycle unconditionally).
type Reassembler struct {
	pool    BufferPool
	pending map[uint16]*flowState // flowID -> assembly state
}

// NewReassembler returns an empty reassembler that allocates payload buffers
// from the heap.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint16]*flowState)}
}

// NewReassemblerPool returns an empty reassembler drawing payload buffers
// from pool. pool may be nil, which is equivalent to NewReassembler.
func NewReassemblerPool(pool BufferPool) *Reassembler {
	return &Reassembler{pool: pool, pending: make(map[uint16]*flowState)}
}

func (r *Reassembler) getBuf(n int) []byte {
	if r.pool != nil {
		return r.pool.Get(n)
	}
	return make([]byte, n)
}

// AddLine feeds one 64-byte line for a flow. When the line completes an RPC
// frame, the decoded message and true are returned; otherwise the line is
// buffered. The error reports malformed first lines. The returned payload is
// an owned buffer (it does not alias line or internal state).
func (r *Reassembler) AddLine(flowID uint16, line []byte) (Message, bool, error) {
	if len(line) != CacheLineSize {
		return Message{}, false, ErrShortBuffer
	}
	st := r.pending[flowID]
	if st == nil {
		st = &flowState{}
		r.pending[flowID] = st
	}
	if !st.active {
		hdr, err := ParseHeader(line)
		if err != nil {
			return Message{}, false, err
		}
		need := int(hdr.Len)
		if need <= FirstLinePayload {
			// Single-line frame: complete immediately.
			m := Message{Header: hdr}
			if need > 0 {
				m.Payload = r.getBuf(need)
				copy(m.Payload, line[HeaderSize:HeaderSize+need])
			}
			return m, true, nil
		}
		st.hdr = hdr
		st.buf = append(r.getBuf(need)[:0], line[HeaderSize:]...)
		st.active = true
		return Message{}, false, nil
	}
	take := int(st.hdr.Len) - len(st.buf)
	if take > CacheLineSize {
		take = CacheLineSize
	}
	st.buf = append(st.buf, line[:take]...)
	if len(st.buf) < int(st.hdr.Len) {
		return Message{}, false, nil
	}
	m := Message{Header: st.hdr, Payload: st.buf}
	st.buf = nil
	st.active = false
	return m, true, nil
}

// PendingFlows returns the number of flows with partial frames buffered.
func (r *Reassembler) PendingFlows() int {
	n := 0
	for _, st := range r.pending {
		if st.active {
			n++
		}
	}
	return n
}
