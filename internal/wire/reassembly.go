package wire

// Reassembler implements software RPC reassembly (§4.7): the memory
// interconnect's MTU is a single cache line, so frames arrive as line-sized
// chunks and multi-line RPCs are stitched back together on the CPU before
// delivery. Lines of one RPC arrive in order within a flow (the interconnect
// preserves per-flow ordering); interleaving across flows is handled by
// keeping one assembly buffer per flow.
type Reassembler struct {
	pending map[uint16][]byte // flowID -> partial frame bytes
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{pending: make(map[uint16][]byte)}
}

// AddLine feeds one 64-byte line for a flow. When the line completes an RPC
// frame, the decoded message and true are returned; otherwise the line is
// buffered. The error reports malformed first lines.
func (r *Reassembler) AddLine(flowID uint16, line []byte) (Message, bool, error) {
	if len(line) != CacheLineSize {
		return Message{}, false, ErrShortBuffer
	}
	buf := r.pending[flowID]
	buf = append(buf, line...)
	m, consumed, err := Unmarshal(buf)
	switch err {
	case nil:
		rest := buf[consumed:]
		if len(rest) == 0 {
			delete(r.pending, flowID)
		} else {
			r.pending[flowID] = rest
		}
		// Copy the payload out: the pending buffer is reused.
		cp := make([]byte, len(m.Payload))
		copy(cp, m.Payload)
		m.Payload = cp
		return m, true, nil
	case ErrShortBuffer:
		r.pending[flowID] = buf
		return Message{}, false, nil
	default:
		delete(r.pending, flowID)
		return Message{}, false, err
	}
}

// PendingFlows returns the number of flows with partial frames buffered.
func (r *Reassembler) PendingFlows() int { return len(r.pending) }
