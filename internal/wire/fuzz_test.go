package wire

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes to the frame decoder: it must never
// panic, and anything it accepts must re-encode to an equivalent frame.
func FuzzUnmarshal(f *testing.F) {
	good, _ := MarshalAppend(nil, &Message{
		Header:  Header{Kind: KindRequest, ConnID: 1, RPCID: 2, FlowID: 3, FnID: 4, Budget: 250_000},
		Payload: []byte("seed"),
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, CacheLineSize))
	f.Add(bytes.Repeat([]byte{0x00}, 3*CacheLineSize))
	// A v1-magic frame: the old 32-byte header layout must be rejected.
	v1 := append([]byte(nil), good...)
	binary.LittleEndian.PutUint16(v1, MagicV1)
	f.Add(v1)
	// A frame truncated inside the widened header extension.
	f.Add(append([]byte(nil), good[:HeaderSize-4]...))
	// A congestion-marked frame carrying an occupancy hint.
	marked := append([]byte(nil), good...)
	StampCongestion(marked, 211)
	f.Add(marked)
	// A connection-control frame (client close propagation) and a frame
	// carrying the connection-cache-miss mark.
	disc, _ := MarshalAppend(nil, &Message{
		Header: Header{Kind: KindDisconnect, ConnID: 7, FlowID: 1, SrcAddr: 8, DstAddr: 9},
	})
	f.Add(disc)
	missed := append([]byte(nil), good...)
	StampConnMiss(missed)
	f.Add(missed)
	// A pre-checksum frame (byte 37 zeroed) must still decode, unchecked.
	legacy := append([]byte(nil), good...)
	legacy[37] = 0
	f.Add(legacy)
	// Corrupted-header seeds: a covered-bit flip and a clobbered checksum
	// byte must both be rejected with ErrBadChecksum, never dispatched.
	flipped := append([]byte(nil), good...)
	FlipCoveredBit(flipped, 77)
	f.Add(flipped)
	badSum := append([]byte(nil), good...)
	badSum[37] ^= 0x5A
	f.Add(badSum)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, consumed, err := Unmarshal(data)
		if err != nil {
			return
		}
		if consumed <= 0 || consumed > len(data) || consumed%CacheLineSize != 0 {
			t.Fatalf("consumed %d of %d", consumed, len(data))
		}
		// Round-trip: a successfully decoded frame re-encodes and decodes
		// to the same header and payload.
		m.Len = 0 // recomputed by MarshalAppend
		re, err := MarshalAppend(nil, &m)
		if err != nil {
			t.Fatalf("re-encode of accepted frame failed: %v", err)
		}
		m2, _, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if m2.Kind != m.Kind || m2.Flags != m.Flags || m2.ConnID != m.ConnID ||
			m2.RPCID != m.RPCID || m2.FlowID != m.FlowID || m2.FnID != m.FnID ||
			m2.Budget != m.Budget || m2.Occupancy != m.Occupancy ||
			!bytes.Equal(m2.Payload, m.Payload) {
			t.Fatal("round trip diverged")
		}
	})
}

// FuzzReassembler feeds arbitrary line sequences: no panics, and every
// delivered message must be internally consistent.
func FuzzReassembler(f *testing.F) {
	frame, _ := MarshalAppend(nil, &Message{
		Header:  Header{Kind: KindResponse, ConnID: 9},
		Payload: make([]byte, 200),
	})
	f.Add(frame, uint16(1))
	f.Fuzz(func(t *testing.T, data []byte, flow uint16) {
		r := NewReassembler()
		for off := 0; off+CacheLineSize <= len(data); off += CacheLineSize {
			m, done, err := r.AddLine(flow, data[off:off+CacheLineSize])
			if err != nil {
				return // malformed first line resets the flow; fine
			}
			if done && int(m.Len) != len(m.Payload) {
				t.Fatalf("delivered message inconsistent: len=%d payload=%d", m.Len, len(m.Payload))
			}
		}
	})
}

// FuzzDecoder drives the field decoder with arbitrary payloads: it must be
// panic-free and terminate.
func FuzzDecoder(f *testing.F) {
	e := NewEncoder(nil)
	e.Int32(-1)
	e.String16("x")
	e.Bytes16([]byte{1, 2})
	f.Add(e.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDecoder(data)
		for d.Err() == nil && d.Remaining() > 0 {
			d.Uint32()
			d.Bytes16()
			d.Bool()
		}
	})
}
