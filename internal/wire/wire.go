// Package wire defines Dagger's RPC wire format. Following the paper's
// hardware design, messages are framed in 64-byte cache-line units: the
// header occupies the front of the first line and the payload fills the rest,
// spilling into additional lines for RPCs larger than one line (which the
// paper reassembles in software, §4.7).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// CacheLineSize is the transfer MTU of the memory interconnect: one CPU
// cache line.
const CacheLineSize = 64

// HeaderSize is the encoded size of a message header, at the front of the
// first cache line. Header v2 grew from 32 to 40 bytes to carry the per-RPC
// deadline budget; byte 36 has since been claimed from the reserved tail for
// the congestion occupancy hint and byte 37 for the header checksum (bytes
// 38-39 remain reserved). Claiming a reserved-zero byte needs no magic bump:
// frames encoded before the field existed decode with Occupancy 0 ("no
// hint") and checksum 0 ("unchecked legacy frame").
const HeaderSize = 40

// FirstLinePayload is the payload capacity of the first cache line.
const FirstLinePayload = CacheLineSize - HeaderSize

// MaxPayload bounds a single RPC's payload; the paper's microservice RPCs
// range from a few bytes to a few kilobytes.
const MaxPayload = 16 * 1024

// MaxFrameSize is the largest framed message: a MaxPayload message padded to
// whole cache lines. Buffer pools on the data path size their largest class
// to this, so any legal frame fits a pooled buffer.
const MaxFrameSize = (1 + (MaxPayload-FirstLinePayload+CacheLineSize-1)/CacheLineSize) * CacheLineSize

// Magic identifies Dagger frames on the wire. The value was bumped when the
// header grew its budget field so v1 frames are rejected cleanly rather than
// misparsed (the layouts are not compatible).
const Magic uint16 = 0xDA67

// MagicV1 is the pre-budget header magic. Kept only so tests can assert that
// old-layout frames are rejected with ErrBadMagic.
const MagicV1 uint16 = 0xDA66

// Kind distinguishes message types multiplexed over one symmetric stack
// (the paper: "Request types are distinguished by the request type field").
type Kind uint8

// Message kinds.
const (
	KindRequest Kind = iota + 1
	KindResponse
	KindConnect
	KindConnectAck
	KindDisconnect
)

func (k Kind) String() string {
	switch k {
	case KindRequest:
		return "request"
	case KindResponse:
		return "response"
	case KindConnect:
		return "connect"
	case KindConnectAck:
		return "connect-ack"
	case KindDisconnect:
		return "disconnect"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// FlagCongested is the ECN-style congestion-experienced bit in Flags: set by
// a NIC queue when the frame was admitted past the dataplane mark threshold,
// echoed by the server into the response so the client can react. The top
// bit keeps clear of the stack-level flags (error, shed) in the low bits.
const FlagCongested uint8 = 0x80

// FlagConnMiss is the connection-cache-miss bit in Flags: set by a NIC whose
// connection lookup for the frame fell back to the host backing store (§4.2),
// echoed by the server into the response so clients and traces can observe
// working sets that no longer fit the near-memory cache. Like FlagCongested
// it stays clear of the stack-level flags in the low bits.
const FlagConnMiss uint8 = 0x40

// FlagDead is the dead-letter bit in response Flags: set on the synthetic
// response a transport bridge injects when the reliability protocol gave up
// delivering the request (every retransmission exhausted). A client seeing
// it fails the call fast with a peer-dead error instead of burning its full
// timeout. It lives in the stack-level low bits alongside the error and shed
// flags owned by internal/core.
const FlagDead uint8 = 0x04

// stampedFlagsMask covers the Flags bits NIC queues stamp onto frames after
// marshalling (StampCongestion, StampConnMiss). The header checksum masks
// them out — along with the occupancy byte the congestion stamp rewrites —
// so in-flight stamping never invalidates a frame.
const stampedFlagsMask = FlagCongested | FlagConnMiss

// Header is the fixed-size RPC header.
type Header struct {
	Kind      Kind
	Flags     uint8
	ConnID    uint32 // connection identifier (c_id in the paper)
	RPCID     uint64 // per-connection request identifier, echoed in responses
	FlowID    uint16 // NIC flow (maps 1:1 to an RX/TX ring)
	FnID      uint16 // registered remote function
	Len       uint32 // payload length in bytes
	SrcAddr   uint32 // source host address (connection setup and steering)
	DstAddr   uint32 // destination host address
	Budget    uint32 // remaining deadline budget in microseconds; 0 = none
	Occupancy uint8  // congestion occupancy hint (dataplane.OccupancyHint); 0 = none
}

// Congested reports whether the frame carries a congestion mark.
func (h *Header) Congested() bool { return h.Flags&FlagCongested != 0 }

// ConnMissed reports whether the frame carries a connection-cache-miss mark.
func (h *Header) ConnMissed() bool { return h.Flags&FlagConnMiss != 0 }

// MaxBudget is the largest encodable deadline budget (~71.6 minutes). Budgets
// beyond it saturate rather than wrap.
const MaxBudget uint32 = ^uint32(0)

// Message is a complete RPC frame: header plus payload.
type Message struct {
	Header
	Payload []byte
}

// Lines returns the number of cache lines the message occupies on the
// interconnect and the wire.
func (m *Message) Lines() int { return LinesFor(len(m.Payload)) }

// WireSize returns the framed size in bytes (a multiple of CacheLineSize).
func (m *Message) WireSize() int { return m.Lines() * CacheLineSize }

// LinesFor returns the number of cache lines needed for a payload length.
func LinesFor(payloadLen int) int {
	if payloadLen <= FirstLinePayload {
		return 1
	}
	rest := payloadLen - FirstLinePayload
	return 1 + (rest+CacheLineSize-1)/CacheLineSize
}

// Errors returned by Unmarshal.
var (
	ErrShortBuffer = errors.New("wire: buffer shorter than frame")
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadKind     = errors.New("wire: bad message kind")
	ErrTooLarge    = errors.New("wire: payload exceeds MaxPayload")
	ErrBadChecksum = errors.New("wire: header checksum mismatch")
)

// MarshalAppend encodes m onto dst, padding to a whole number of cache
// lines, and returns the extended slice.
func MarshalAppend(dst []byte, m *Message) ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return dst, ErrTooLarge
	}
	if m.Len != 0 && int(m.Len) != len(m.Payload) {
		return dst, fmt.Errorf("wire: header Len %d != payload %d", m.Len, len(m.Payload))
	}
	total := LinesFor(len(m.Payload)) * CacheLineSize
	off := len(dst)
	for i := 0; i < total; i++ {
		dst = append(dst, 0)
	}
	b := dst[off:]
	binary.LittleEndian.PutUint16(b[0:], Magic)
	b[2] = byte(m.Kind)
	b[3] = m.Flags
	binary.LittleEndian.PutUint32(b[4:], m.ConnID)
	binary.LittleEndian.PutUint64(b[8:], m.RPCID)
	binary.LittleEndian.PutUint16(b[16:], m.FlowID)
	binary.LittleEndian.PutUint16(b[18:], m.FnID)
	binary.LittleEndian.PutUint32(b[20:], uint32(len(m.Payload)))
	binary.LittleEndian.PutUint32(b[24:], m.SrcAddr)
	binary.LittleEndian.PutUint32(b[28:], m.DstAddr)
	binary.LittleEndian.PutUint32(b[32:], m.Budget)
	b[occupancyOffset] = m.Occupancy
	b[checksumOffset] = encodeChecksum(headerChecksum(b))
	// b[38:40] reserved, zero.
	copy(b[HeaderSize:], m.Payload)
	return dst, nil
}

// occupancyOffset is the byte offset of the occupancy hint in an encoded
// header, shared by MarshalAppend, ParseHeader, and StampCongestion.
const occupancyOffset = 36

// checksumOffset is the byte offset of the header checksum, claimed from the
// reserved-zero tail: a CRC-8 over the header with the in-flight-mutable
// bits masked out. A stored value of 0 means "unchecked legacy frame"
// (frames encoded before the field existed), so verification skips it and
// the encoder substitutes checksumZeroValue when the CRC computes to 0.
const checksumOffset = 37

// checksumZeroValue is stored when the header's CRC-8 computes to 0, keeping
// 0 free as the legacy "no checksum" sentinel.
const checksumZeroValue = 0xFF

// crc8Table is the CRC-8 lookup table for the SMBus polynomial x^8+x^2+x+1
// (0x07), the classic one-byte header CRC.
var crc8Table = makeCRC8Table()

func makeCRC8Table() [256]byte {
	var t [256]byte
	for i := range t {
		c := byte(i)
		for b := 0; b < 8; b++ {
			if c&0x80 != 0 {
				c = c<<1 ^ 0x07
			} else {
				c <<= 1
			}
		}
		t[i] = c
	}
	return t
}

// headerChecksum computes the CRC-8 of an encoded header. Coverage excludes
// exactly the bits NIC queues rewrite on already-marshalled frames — the
// congestion/conn-miss flag bits, the occupancy byte, and the checksum byte
// itself — so StampCongestion and StampConnMiss never invalidate a frame.
// Everything else in the header, including the reserved tail, is covered.
func headerChecksum(b []byte) byte {
	c := byte(0xFF)
	for i := 0; i < HeaderSize; i++ {
		v := b[i]
		switch i {
		case 3:
			v &^= stampedFlagsMask
		case occupancyOffset, checksumOffset:
			v = 0
		}
		c = crc8Table[c^v]
	}
	return c
}

// encodeChecksum maps a computed CRC to its stored form, keeping 0 reserved
// for "unchecked legacy frame".
func encodeChecksum(c byte) byte {
	if c == 0 {
		return checksumZeroValue
	}
	return c
}

// VerifyChecksum reports whether a frame's header checksum is consistent:
// either the legacy 0 ("no checksum", pre-checksum frames pass unchecked) or
// a stored CRC matching the recomputed one. NIC admission uses it to drop
// corrupted frames before they reach a ring; ParseHeader applies the same
// check, so a corrupt frame that slips past a NIC still cannot dispatch.
func VerifyChecksum(frame []byte) bool {
	if len(frame) < HeaderSize {
		return false
	}
	stored := frame[checksumOffset]
	return stored == 0 || stored == encodeChecksum(headerChecksum(frame))
}

// coveredHeaderBits is the size of the checksum-covered bit region
// FlipCoveredBit indexes: bytes 0-2, the non-stamped low six bits of the
// flags byte, bytes 4-35, and the reserved tail bytes 38-39. The occupancy
// and checksum bytes and the stamped flag bits are excluded — corruption
// there is outside the checksum contract.
const coveredHeaderBits = 3*8 + 6 + 32*8 + 2*8

// FlipCoveredBit flips one bit of a frame's checksum-covered header region,
// selecting the position from bit modulo coveredHeaderBits. It is the
// CorruptBit fault's mutation: because the flipped bit is always covered,
// CRC-8's single-bit error detection guarantees VerifyChecksum rejects the
// frame afterwards (except the 1-in-256 class of frames storing the
// zero-substitute, where one specific flip position can alias; the chaos
// gates assert zero escapes for their seeds). Frames too short to hold a
// header are left untouched.
func FlipCoveredBit(frame []byte, bit uint32) {
	if len(frame) < HeaderSize {
		return
	}
	i := int(bit % coveredHeaderBits)
	var byteIdx, bitIdx int
	switch {
	case i < 24: // bytes 0-2
		byteIdx, bitIdx = i/8, i%8
	case i < 30: // flags byte, non-stamped bits 0-5
		byteIdx, bitIdx = 3, i-24
	case i < 30+32*8: // bytes 4-35
		j := i - 30
		byteIdx, bitIdx = 4+j/8, j%8
	default: // reserved tail, bytes 38-39
		j := i - (30 + 32*8)
		byteIdx, bitIdx = 38+j/8, j%8
	}
	frame[byteIdx] ^= 1 << bitIdx
}

// StampCongestion sets the congestion-experienced flag and occupancy hint on
// an already-marshalled frame, in place. NIC queues mark frames as they
// transit — after the sender marshalled them — so the stamp patches the
// encoded header rather than the Message. Frames too short to hold a header
// are left untouched.
func StampCongestion(frame []byte, hint uint8) {
	if len(frame) < HeaderSize {
		return
	}
	frame[3] |= FlagCongested
	frame[occupancyOffset] = hint
}

// StampConnMiss sets the connection-cache-miss flag on an already-marshalled
// frame, in place. The NIC learns the verdict while steering the frame —
// after the sender marshalled it — so, like StampCongestion, the stamp
// patches the encoded header rather than the Message. Frames too short to
// hold a header are left untouched.
func StampConnMiss(frame []byte) {
	if len(frame) < HeaderSize {
		return
	}
	frame[3] |= FlagConnMiss
}

// SubBudget re-anchors a deadline budget across a hop: the remaining budget
// after elapsedMicros have passed, saturating instead of wrapping. expired
// reports that a real budget ran out (the unsaturated subtraction would have
// wrapped to a bogus ~71-minute budget); callers must shed rather than
// forward such a request, because remaining 0 on the wire means "no
// deadline". A zero input budget stays 0/not-expired: no deadline never
// expires.
func SubBudget(budget uint32, elapsedMicros uint64) (remaining uint32, expired bool) {
	if budget == 0 {
		return 0, false
	}
	if elapsedMicros >= uint64(budget) {
		return 0, true
	}
	return budget - uint32(elapsedMicros), false
}

// ParseHeader decodes and validates the fixed-size header at the front of a
// frame's first cache line. It needs only HeaderSize bytes, so the
// reassembler can validate a frame from its first line alone.
func ParseHeader(buf []byte) (Header, error) {
	if len(buf) < HeaderSize {
		return Header{}, ErrShortBuffer
	}
	if binary.LittleEndian.Uint16(buf[0:]) != Magic {
		return Header{}, ErrBadMagic
	}
	k := Kind(buf[2])
	if k < KindRequest || k > KindDisconnect {
		return Header{}, ErrBadKind
	}
	var h Header
	h.Kind = k
	h.Flags = buf[3]
	h.ConnID = binary.LittleEndian.Uint32(buf[4:])
	h.RPCID = binary.LittleEndian.Uint64(buf[8:])
	h.FlowID = binary.LittleEndian.Uint16(buf[16:])
	h.FnID = binary.LittleEndian.Uint16(buf[18:])
	h.Len = binary.LittleEndian.Uint32(buf[20:])
	h.SrcAddr = binary.LittleEndian.Uint32(buf[24:])
	h.DstAddr = binary.LittleEndian.Uint32(buf[28:])
	h.Budget = binary.LittleEndian.Uint32(buf[32:])
	h.Occupancy = buf[occupancyOffset]
	if h.Len > MaxPayload {
		return Header{}, ErrTooLarge
	}
	// Checksum last, so malformed-field errors keep their specific identity.
	// Stored 0 is a pre-checksum frame: decoded unchecked for v1 (of the
	// 40-byte layout) compatibility.
	if stored := buf[checksumOffset]; stored != 0 && stored != encodeChecksum(headerChecksum(buf)) {
		return Header{}, ErrBadChecksum
	}
	return h, nil
}

// Unmarshal decodes one frame from buf, returning the message, the number of
// bytes consumed, and an error. The returned payload aliases buf; Unmarshal
// itself retains nothing and the caller keeps ownership of buf.
//
// dagger:borrows
func Unmarshal(buf []byte) (Message, int, error) {
	if len(buf) < CacheLineSize {
		return Message{}, 0, ErrShortBuffer
	}
	h, err := ParseHeader(buf)
	if err != nil {
		return Message{}, 0, err
	}
	m := Message{Header: h}
	total := LinesFor(int(m.Len)) * CacheLineSize
	if len(buf) < total {
		return Message{}, 0, ErrShortBuffer
	}
	m.Payload = buf[HeaderSize : HeaderSize+int(m.Len)]
	return m, total, nil
}
