package wire

import (
	"bytes"
	"testing"
)

// countingPool is a BufferPool that tracks loans for the ownership tests.
type countingPool struct {
	gets, puts int
	last       []byte
}

func (p *countingPool) Get(n int) []byte {
	p.gets++
	p.last = make([]byte, n)
	return p.last
}

func (p *countingPool) Put(b []byte) { p.puts++ }

func marshalFrame(t *testing.T, payload []byte) []byte {
	t.Helper()
	m := &Message{Header: Header{Kind: KindRequest, RPCID: 7}, Payload: payload}
	frame, err := MarshalAppend(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	return frame
}

func feedFrame(t *testing.T, r *Reassembler, flow uint16, frame []byte) Message {
	t.Helper()
	var (
		m    Message
		done bool
		err  error
	)
	for off := 0; off < len(frame); off += CacheLineSize {
		m, done, err = r.AddLine(flow, frame[off:off+CacheLineSize])
		if err != nil {
			t.Fatal(err)
		}
	}
	if !done {
		t.Fatal("frame did not complete")
	}
	return m
}

// TestReassemblerPooledPayloads checks the ownership contract: payload
// buffers are drawn from the pool, delivered at offset zero (so they can be
// recycled directly), and do not alias the fed lines.
func TestReassemblerPooledPayloads(t *testing.T) {
	pool := &countingPool{}
	r := NewReassemblerPool(pool)
	payload := bytes.Repeat([]byte("x"), 150) // multi-line
	frame := marshalFrame(t, payload)
	m := feedFrame(t, r, 3, frame)
	if !bytes.Equal(m.Payload, payload) {
		t.Fatal("payload mismatch")
	}
	if pool.gets != 1 {
		t.Fatalf("pool.Get called %d times, want 1", pool.gets)
	}
	if &m.Payload[0] != &pool.last[0] {
		t.Fatal("delivered payload is not the pooled buffer")
	}
	if cap(m.Payload) < len(m.Payload) || len(pool.last) != len(payload) {
		t.Fatal("pooled buffer sized wrong")
	}
	// The delivered buffer must not alias the frame: mutating the frame
	// after delivery must not corrupt the payload.
	for i := range frame {
		frame[i] = 0xFF
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatal("payload aliases the fed frame")
	}
	if r.PendingFlows() != 0 {
		t.Fatalf("PendingFlows = %d after completion", r.PendingFlows())
	}
}

// TestReassemblerSingleLinePooled covers the one-line fast path and the
// zero-length payload (no pool loan at all).
func TestReassemblerSingleLinePooled(t *testing.T) {
	pool := &countingPool{}
	r := NewReassemblerPool(pool)
	m := feedFrame(t, r, 0, marshalFrame(t, []byte("hi")))
	if string(m.Payload) != "hi" || pool.gets != 1 {
		t.Fatalf("payload %q gets %d", m.Payload, pool.gets)
	}
	m = feedFrame(t, r, 0, marshalFrame(t, nil))
	if len(m.Payload) != 0 {
		t.Fatal("zero-payload frame delivered bytes")
	}
	if pool.gets != 1 {
		t.Fatal("zero-payload frame should not borrow a buffer")
	}
}

// TestReassemblerStateReuse checks that back-to-back multi-line frames on
// one flow reuse the persistent flow state and stay correct.
func TestReassemblerStateReuse(t *testing.T) {
	r := NewReassembler()
	for i := 0; i < 5; i++ {
		payload := bytes.Repeat([]byte{byte('a' + i)}, 100+i)
		m := feedFrame(t, r, 9, marshalFrame(t, payload))
		if !bytes.Equal(m.Payload, payload) {
			t.Fatalf("frame %d corrupted", i)
		}
	}
}

func TestParseHeaderValidates(t *testing.T) {
	frame := marshalFrame(t, []byte("ping"))
	h, err := ParseHeader(frame)
	if err != nil || h.Kind != KindRequest || h.RPCID != 7 || h.Len != 4 {
		t.Fatalf("ParseHeader = %+v, %v", h, err)
	}
	if _, err := ParseHeader(frame[:HeaderSize-1]); err != ErrShortBuffer {
		t.Fatalf("short: %v", err)
	}
	bad := append([]byte(nil), frame...)
	bad[0] = 0
	if _, err := ParseHeader(bad); err != ErrBadMagic {
		t.Fatalf("magic: %v", err)
	}
}
