package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func sampleMessage(payloadLen int) *Message {
	p := make([]byte, payloadLen)
	for i := range p {
		p[i] = byte(i * 7)
	}
	return &Message{
		Header: Header{
			Kind:      KindRequest,
			Flags:     3,
			ConnID:    42,
			RPCID:     1<<40 + 17,
			FlowID:    5,
			FnID:      2,
			SrcAddr:   0x0A000001,
			DstAddr:   0x0A000002,
			Budget:    1_500_000, // 1.5s in µs
			Occupancy: 37,
		},
		Payload: p,
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 31, 32, 33, 63, 64, 96, 100, 1000, MaxPayload} {
		m := sampleMessage(n)
		buf, err := MarshalAppend(nil, m)
		if err != nil {
			t.Fatalf("marshal %d: %v", n, err)
		}
		if len(buf)%CacheLineSize != 0 {
			t.Fatalf("frame size %d not line-aligned", len(buf))
		}
		if len(buf) != m.WireSize() {
			t.Fatalf("frame size %d != WireSize %d", len(buf), m.WireSize())
		}
		got, consumed, err := Unmarshal(buf)
		if err != nil {
			t.Fatalf("unmarshal %d: %v", n, err)
		}
		if consumed != len(buf) {
			t.Fatalf("consumed %d, want %d", consumed, len(buf))
		}
		if got.Kind != m.Kind || got.ConnID != m.ConnID || got.RPCID != m.RPCID ||
			got.FlowID != m.FlowID || got.FnID != m.FnID || got.Flags != m.Flags ||
			got.SrcAddr != m.SrcAddr || got.DstAddr != m.DstAddr || got.Budget != m.Budget ||
			got.Occupancy != m.Occupancy {
			t.Fatalf("header mismatch: got %+v want %+v", got.Header, m.Header)
		}
		if !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("payload mismatch at len %d", n)
		}
	}
}

func TestLinesFor(t *testing.T) {
	cases := []struct {
		payload, lines int
	}{
		{0, 1}, {1, 1}, {FirstLinePayload, 1}, {FirstLinePayload + 1, 2},
		{FirstLinePayload + CacheLineSize, 2}, {FirstLinePayload + CacheLineSize + 1, 3},
		{512, 9},
	}
	for _, c := range cases {
		if got := LinesFor(c.payload); got != c.lines {
			t.Errorf("LinesFor(%d) = %d, want %d", c.payload, got, c.lines)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, _, err := Unmarshal(make([]byte, 10)); err != ErrShortBuffer {
		t.Errorf("short buffer: %v", err)
	}
	bad := make([]byte, CacheLineSize)
	if _, _, err := Unmarshal(bad); err != ErrBadMagic {
		t.Errorf("bad magic: %v", err)
	}
	m := sampleMessage(0)
	buf, _ := MarshalAppend(nil, m)
	buf[2] = 99
	if _, _, err := Unmarshal(buf); err != ErrBadKind {
		t.Errorf("bad kind: %v", err)
	}
	// Multi-line frame truncated to its first line.
	m2 := sampleMessage(200)
	buf2, _ := MarshalAppend(nil, m2)
	if _, _, err := Unmarshal(buf2[:CacheLineSize]); err != ErrShortBuffer {
		t.Errorf("truncated multi-line: %v", err)
	}
}

// TestHeaderV2Layout pins the v2 framing: budget boundary values survive the
// round trip, frames truncated inside the widened header are rejected, and
// old-magic (v1 layout) frames fail cleanly with ErrBadMagic.
func TestHeaderV2Layout(t *testing.T) {
	for _, budget := range []uint32{0, 1, 1000, MaxBudget - 1, MaxBudget} {
		m := sampleMessage(8)
		m.Budget = budget
		buf, err := MarshalAppend(nil, m)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		got, err := ParseHeader(buf)
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if got.Budget != budget {
			t.Fatalf("budget %d round-tripped to %d", budget, got.Budget)
		}
	}

	// Truncation inside the header extension (bytes 32..39) must be rejected.
	m := sampleMessage(4)
	buf, _ := MarshalAppend(nil, m)
	for _, n := range []int{HeaderSize - 8, HeaderSize - 1} {
		if _, err := ParseHeader(buf[:n]); err != ErrShortBuffer {
			t.Errorf("ParseHeader(%d bytes) = %v, want ErrShortBuffer", n, err)
		}
	}

	// A v1-magic frame is an old layout; it must be rejected, not misparsed.
	old := make([]byte, CacheLineSize)
	copy(old, buf)
	binary.LittleEndian.PutUint16(old, MagicV1)
	if _, err := ParseHeader(old); err != ErrBadMagic {
		t.Errorf("v1 magic = %v, want ErrBadMagic", err)
	}
	if _, _, err := Unmarshal(old); err != ErrBadMagic {
		t.Errorf("Unmarshal v1 magic = %v, want ErrBadMagic", err)
	}
}

// TestCongestionFieldLayout pins the congestion extension of the v2 header:
// the mark bit and occupancy hint round-trip, the hint lives in what used to
// be a reserved-zero byte (so frames encoded before the field existed decode
// as unmarked with no hint, without a magic bump), and StampCongestion
// patches marshalled frames in place.
func TestCongestionFieldLayout(t *testing.T) {
	m := sampleMessage(8)
	m.Flags = FlagCongested | 3
	m.Occupancy = 200
	buf, err := MarshalAppend(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if buf[36] != 200 {
		t.Fatalf("occupancy byte at offset 36 = %d, want 200", buf[36])
	}
	got, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Congested() || got.Occupancy != 200 || got.Flags&3 != 3 {
		t.Fatalf("congestion fields lost: %+v", got)
	}

	// An unmarked frame leaves the occupancy byte and the reserved tail zero
	// (byte 37 now carries the header checksum): it must decode as unmarked
	// with a zero hint.
	old := sampleMessage(8)
	old.Flags = 3
	old.Occupancy = 0
	obuf, _ := MarshalAppend(nil, old)
	for _, i := range []int{36, 38, 39} {
		if obuf[i] != 0 {
			t.Fatalf("byte %d of an unmarked frame = %d, want 0", i, obuf[i])
		}
	}
	if obuf[37] == 0 {
		t.Fatal("checksum byte 37 not populated")
	}
	oh, err := ParseHeader(obuf)
	if err != nil {
		t.Fatal(err)
	}
	if oh.Congested() || oh.Occupancy != 0 {
		t.Fatalf("unmarked frame decoded congested: %+v", oh)
	}

	// StampCongestion marks the encoded frame in place; the decode sees it.
	StampCongestion(obuf, 190)
	sh, err := ParseHeader(obuf)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.Congested() || sh.Occupancy != 190 {
		t.Fatalf("stamp not visible: %+v", sh)
	}
	if sh.Flags&3 != 3 {
		t.Fatalf("stamp clobbered other flags: %#x", sh.Flags)
	}
	// Too-short frames are left untouched rather than sliced out of range.
	short := []byte{1, 2, 3}
	StampCongestion(short, 99)
	if short[0] != 1 || short[1] != 2 || short[2] != 3 {
		t.Fatal("short frame mutated")
	}
}

// TestConnMissFieldLayout pins the connection-cache-miss flag bit: it
// round-trips, keeps clear of the congestion and stack-level bits, and
// StampConnMiss patches marshalled frames in place (mirroring
// StampCongestion).
func TestConnMissFieldLayout(t *testing.T) {
	m := sampleMessage(8)
	m.Flags = FlagConnMiss | 3
	buf, err := MarshalAppend(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ConnMissed() || got.Congested() || got.Flags&3 != 3 {
		t.Fatalf("conn-miss fields lost: %+v", got)
	}

	// Stamp an unmarked frame in place; other flags survive, and the bit
	// composes with a congestion stamp on the same frame.
	plain := sampleMessage(8)
	plain.Flags = 3
	pbuf, _ := MarshalAppend(nil, plain)
	StampConnMiss(pbuf)
	StampCongestion(pbuf, 150)
	sh, err := ParseHeader(pbuf)
	if err != nil {
		t.Fatal(err)
	}
	if !sh.ConnMissed() || !sh.Congested() || sh.Occupancy != 150 || sh.Flags&3 != 3 {
		t.Fatalf("stamps diverged: %+v", sh)
	}
	// Too-short frames are left untouched rather than sliced out of range.
	short := []byte{1, 2, 3}
	StampConnMiss(short)
	if short[0] != 1 || short[1] != 2 || short[2] != 3 {
		t.Fatal("short frame mutated")
	}
}

// TestDisconnectRoundTrip pins the connection-control frame the client emits
// on CloseConnection: a payload-less KindDisconnect carrying the connection
// identity, surviving a marshal/decode round trip.
func TestDisconnectRoundTrip(t *testing.T) {
	m := &Message{Header: Header{
		Kind: KindDisconnect, ConnID: 0x01020304,
		FlowID: 2, SrcAddr: 0x0A000001, DstAddr: 0x0A000002,
	}}
	buf, err := MarshalAppend(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(buf) != CacheLineSize {
		t.Fatalf("disconnect frame = %d bytes, want one cache line", len(buf))
	}
	got, n, err := Unmarshal(buf)
	if err != nil || n != CacheLineSize {
		t.Fatalf("unmarshal: n=%d err=%v", n, err)
	}
	if got.Kind != KindDisconnect || got.ConnID != m.ConnID ||
		got.SrcAddr != m.SrcAddr || got.DstAddr != m.DstAddr ||
		got.FlowID != m.FlowID || len(got.Payload) != 0 {
		t.Fatalf("disconnect round trip diverged: %+v", got.Header)
	}
	// The same frame under the v1 magic must be rejected, not misparsed.
	old := append([]byte(nil), buf...)
	binary.LittleEndian.PutUint16(old, MagicV1)
	if _, err := ParseHeader(old); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("v1 disconnect frame: %v, want ErrBadMagic", err)
	}
}

// TestChecksumFieldLayout pins the header-checksum extension: the CRC lives
// in reserved byte 37, frames with a zeroed checksum byte (encoded before
// the field existed) still decode, corruption of any covered header bit is
// rejected with ErrBadChecksum, and in-flight stamps never invalidate a
// frame.
func TestChecksumFieldLayout(t *testing.T) {
	m := sampleMessage(8)
	buf, err := MarshalAppend(nil, m)
	if err != nil {
		t.Fatal(err)
	}
	if buf[37] == 0 {
		t.Fatal("checksum byte 37 not populated")
	}
	if !VerifyChecksum(buf) {
		t.Fatal("fresh frame fails verification")
	}
	if _, err := ParseHeader(buf); err != nil {
		t.Fatal(err)
	}

	// A pre-checksum frame (byte 37 zero) decodes unchecked.
	legacy := append([]byte(nil), buf...)
	legacy[37] = 0
	if !VerifyChecksum(legacy) {
		t.Fatal("legacy zero-checksum frame rejected")
	}
	lh, err := ParseHeader(legacy)
	if err != nil {
		t.Fatalf("legacy frame: %v", err)
	}
	if lh.ConnID != m.ConnID || lh.RPCID != m.RPCID {
		t.Fatalf("legacy frame misdecoded: %+v", lh)
	}

	// Corrupting a covered field is caught.
	for _, off := range []int{8, 20, 24, 32, 38} {
		bad := append([]byte(nil), buf...)
		bad[off] ^= 0x10
		if VerifyChecksum(bad) {
			t.Fatalf("corruption at byte %d passed verification", off)
		}
		if _, err := ParseHeader(bad); err != ErrBadChecksum {
			t.Fatalf("corruption at byte %d: ParseHeader = %v, want ErrBadChecksum", off, err)
		}
		if _, _, err := Unmarshal(bad); err != ErrBadChecksum {
			t.Fatalf("corruption at byte %d: Unmarshal = %v, want ErrBadChecksum", off, err)
		}
	}

	// Stamps patch excluded bits/bytes: they must never invalidate a frame.
	stamped := append([]byte(nil), buf...)
	StampCongestion(stamped, 210)
	StampConnMiss(stamped)
	if !VerifyChecksum(stamped) {
		t.Fatal("in-flight stamps invalidated the checksum")
	}
	if _, err := ParseHeader(stamped); err != nil {
		t.Fatalf("stamped frame: %v", err)
	}

	// Short frames fail verification rather than slicing out of range.
	if VerifyChecksum(buf[:HeaderSize-1]) {
		t.Fatal("short frame verified")
	}
}

// TestFlipCoveredBit pins the CorruptBit mutation contract: every offset
// (wrapped modulo the covered region) flips exactly one covered bit, the
// mutation is always caught by verification for these frames, and a second
// flip at the same offset restores the frame.
func TestFlipCoveredBit(t *testing.T) {
	m := sampleMessage(8)
	buf, _ := MarshalAppend(nil, m)
	const covered = 3*8 + 6 + 32*8 + 2*8
	for bit := uint32(0); bit < covered+5; bit++ {
		frame := append([]byte(nil), buf...)
		FlipCoveredBit(frame, bit)
		if bytes.Equal(frame, buf) {
			t.Fatalf("bit %d: no mutation", bit)
		}
		if frame[36] != buf[36] || frame[37] != buf[37] {
			t.Fatalf("bit %d mutated an excluded byte", bit)
		}
		if d := frame[3] ^ buf[3]; d&(FlagCongested|FlagConnMiss) != 0 {
			t.Fatalf("bit %d mutated a stamped flag bit", bit)
		}
		if VerifyChecksum(frame) {
			t.Fatalf("bit %d: single-bit corruption passed verification", bit)
		}
		FlipCoveredBit(frame, bit)
		if !bytes.Equal(frame, buf) {
			t.Fatalf("bit %d: double flip did not restore the frame", bit)
		}
	}
	// Too-short frames are left untouched.
	short := []byte{1, 2, 3}
	FlipCoveredBit(short, 0)
	if short[0] != 1 || short[1] != 2 || short[2] != 3 {
		t.Fatal("short frame mutated")
	}
}

func TestSubBudgetSaturates(t *testing.T) {
	cases := []struct {
		budget  uint32
		elapsed uint64
		want    uint32
		expired bool
	}{
		{0, 0, 0, false},
		{0, 1 << 40, 0, false}, // no deadline never expires
		{100, 0, 100, false},
		{100, 40, 60, false},
		{100, 99, 1, false},
		{100, 100, 0, true},
		{100, 101, 0, true}, // would wrap unsaturated: 100-101 = ~71min
		{100, 1 << 40, 0, true},
		{MaxBudget, 1, MaxBudget - 1, false},
		{MaxBudget, uint64(MaxBudget), 0, true},
	}
	for _, c := range cases {
		rem, exp := SubBudget(c.budget, c.elapsed)
		if rem != c.want || exp != c.expired {
			t.Errorf("SubBudget(%d, %d) = (%d, %v), want (%d, %v)",
				c.budget, c.elapsed, rem, exp, c.want, c.expired)
		}
	}
	// A live budget re-anchors to a live budget: remaining is never 0 (which
	// would mean "no deadline" on the wire) unless expired says to shed.
	for b := uint32(1); b < 2000; b += 7 {
		for e := uint64(0); e < uint64(b); e += 3 {
			rem, exp := SubBudget(b, e)
			if exp || rem == 0 {
				t.Fatalf("SubBudget(%d, %d) = (%d, %v): live budget lost its deadline", b, e, rem, exp)
			}
		}
	}
}

func TestMarshalRejectsOversized(t *testing.T) {
	m := sampleMessage(MaxPayload + 1)
	if _, err := MarshalAppend(nil, m); err != ErrTooLarge {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestMarshalRejectsLenMismatch(t *testing.T) {
	m := sampleMessage(8)
	m.Len = 5
	if _, err := MarshalAppend(nil, m); err == nil {
		t.Fatal("len mismatch accepted")
	}
}

func TestMarshalAppendStacks(t *testing.T) {
	a := sampleMessage(10)
	b := sampleMessage(100)
	buf, _ := MarshalAppend(nil, a)
	buf, _ = MarshalAppend(buf, b)
	m1, c1, err := Unmarshal(buf)
	if err != nil || len(m1.Payload) != 10 {
		t.Fatalf("first frame: %v", err)
	}
	m2, _, err := Unmarshal(buf[c1:])
	if err != nil || len(m2.Payload) != 100 {
		t.Fatalf("second frame: %v", err)
	}
}

// Property: round-trip preserves header and payload for arbitrary content.
func TestRoundTripProperty(t *testing.T) {
	f := func(payload []byte, connID uint32, rpcID uint64, flowID, fnID uint16, budget uint32, flags, occ uint8) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		m := &Message{
			Header: Header{Kind: KindResponse, Flags: flags, ConnID: connID, RPCID: rpcID,
				FlowID: flowID, FnID: fnID, Budget: budget, Occupancy: occ},
			Payload: payload,
		}
		buf, err := MarshalAppend(nil, m)
		if err != nil {
			return false
		}
		got, _, err := Unmarshal(buf)
		if err != nil {
			return false
		}
		return got.ConnID == connID && got.RPCID == rpcID && got.FlowID == flowID &&
			got.FnID == fnID && got.Budget == budget && got.Flags == flags &&
			got.Occupancy == occ && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestReassemblerSingleLine(t *testing.T) {
	r := NewReassembler()
	m := sampleMessage(16)
	buf, _ := MarshalAppend(nil, m)
	got, done, err := r.AddLine(m.FlowID, buf)
	if err != nil || !done {
		t.Fatalf("single line not delivered: done=%v err=%v", done, err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("payload mismatch")
	}
	if r.PendingFlows() != 0 {
		t.Fatal("residual pending state")
	}
}

func TestReassemblerMultiLine(t *testing.T) {
	r := NewReassembler()
	m := sampleMessage(300) // 1 + ceil((300-FirstLinePayload)/64) = 6 lines
	buf, _ := MarshalAppend(nil, m)
	lines := len(buf) / CacheLineSize
	for i := 0; i < lines-1; i++ {
		_, done, err := r.AddLine(m.FlowID, buf[i*CacheLineSize:(i+1)*CacheLineSize])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			t.Fatalf("frame delivered early at line %d/%d", i+1, lines)
		}
	}
	got, done, err := r.AddLine(m.FlowID, buf[(lines-1)*CacheLineSize:])
	if err != nil || !done {
		t.Fatalf("final line: done=%v err=%v", done, err)
	}
	if !bytes.Equal(got.Payload, m.Payload) {
		t.Fatal("reassembled payload mismatch")
	}
}

func TestReassemblerInterleavedFlows(t *testing.T) {
	r := NewReassembler()
	a := sampleMessage(200)
	a.FlowID = 1
	b := sampleMessage(200)
	b.FlowID = 2
	for i := range b.Payload {
		b.Payload[i] ^= 0xFF
	}
	bufA, _ := MarshalAppend(nil, a)
	bufB, _ := MarshalAppend(nil, b)
	linesA := len(bufA) / CacheLineSize
	var gotA, gotB *Message
	for i := 0; i < linesA; i++ {
		if m, done, err := r.AddLine(1, bufA[i*CacheLineSize:(i+1)*CacheLineSize]); err != nil {
			t.Fatal(err)
		} else if done {
			gotA = &m
		}
		if m, done, err := r.AddLine(2, bufB[i*CacheLineSize:(i+1)*CacheLineSize]); err != nil {
			t.Fatal(err)
		} else if done {
			gotB = &m
		}
	}
	if gotA == nil || gotB == nil {
		t.Fatal("interleaved frames not delivered")
	}
	if !bytes.Equal(gotA.Payload, a.Payload) || !bytes.Equal(gotB.Payload, b.Payload) {
		t.Fatal("cross-flow payload corruption")
	}
}

func TestReassemblerBadLine(t *testing.T) {
	r := NewReassembler()
	if _, _, err := r.AddLine(1, make([]byte, 5)); err == nil {
		t.Fatal("short line accepted")
	}
	junk := make([]byte, CacheLineSize)
	if _, _, err := r.AddLine(1, junk); err == nil {
		t.Fatal("garbage first line accepted")
	}
}

func TestEncoderDecoderRoundTrip(t *testing.T) {
	e := NewEncoder(nil)
	e.Int32(-5)
	e.Uint32(7)
	e.Int64(-1 << 50)
	e.Uint64(1 << 60)
	e.Bool(true)
	e.Bool(false)
	e.CharArray([]byte("key"), 8)
	e.Bytes16([]byte{1, 2, 3})
	e.String16("hello")

	d := NewDecoder(e.Bytes())
	if d.Int32() != -5 || d.Uint32() != 7 || d.Int64() != -1<<50 || d.Uint64() != 1<<60 {
		t.Fatal("scalar mismatch")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bool mismatch")
	}
	ca := d.CharArray(8)
	if !bytes.Equal(ca, []byte{'k', 'e', 'y', 0, 0, 0, 0, 0}) {
		t.Fatalf("char array = %v", ca)
	}
	if !bytes.Equal(d.Bytes16(), []byte{1, 2, 3}) {
		t.Fatal("bytes16 mismatch")
	}
	if d.String16() != "hello" {
		t.Fatal("string16 mismatch")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestDecoderShort(t *testing.T) {
	d := NewDecoder([]byte{1, 2})
	if d.Uint32() != 0 || d.Err() != ErrDecodeShort {
		t.Fatal("short decode not flagged")
	}
	// Subsequent reads stay zero and keep the error.
	if d.Uint64() != 0 || d.Err() != ErrDecodeShort {
		t.Fatal("sticky error lost")
	}
}

// Property: encoder/decoder round-trip arbitrary tuples.
func TestCodecProperty(t *testing.T) {
	f := func(a int32, b uint64, s string, raw []byte) bool {
		if len(s) > 0xFFFF {
			s = s[:0xFFFF]
		}
		if len(raw) > 0xFFFF {
			raw = raw[:0xFFFF]
		}
		e := NewEncoder(nil)
		e.Int32(a)
		e.Uint64(b)
		e.String16(s)
		e.Bytes16(raw)
		d := NewDecoder(e.Bytes())
		ok := d.Int32() == a && d.Uint64() == b && d.String16() == s && bytes.Equal(d.Bytes16(), raw)
		return ok && d.Err() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
