package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrDecodeShort is returned when a decoder runs past the end of its buffer.
var ErrDecodeShort = errors.New("wire: decode past end of buffer")

// Encoder serializes RPC argument objects into flat payloads. It implements
// the paper's restriction (§4.5): arguments are continuous, with no
// references to other objects — fixed-width scalars, fixed-size char arrays,
// and length-prefixed byte strings.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder appending to an optional existing buffer.
func NewEncoder(buf []byte) *Encoder { return &Encoder{buf: buf} }

// Bytes returns the encoded payload.
func (e *Encoder) Bytes() []byte { return e.buf }

// Reset truncates the encoder for reuse.
func (e *Encoder) Reset() { e.buf = e.buf[:0] }

// Uint32 appends a little-endian uint32.
func (e *Encoder) Uint32(v uint32) {
	e.buf = binary.LittleEndian.AppendUint32(e.buf, v)
}

// Int32 appends a little-endian int32.
func (e *Encoder) Int32(v int32) { e.Uint32(uint32(v)) }

// Uint64 appends a little-endian uint64.
func (e *Encoder) Uint64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

// Int64 appends a little-endian int64.
func (e *Encoder) Int64(v int64) { e.Uint64(uint64(v)) }

// Bool appends a single byte 0/1.
func (e *Encoder) Bool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

// CharArray appends exactly n bytes: src truncated or zero-padded. This is
// the IDL's char[N] type.
func (e *Encoder) CharArray(src []byte, n int) {
	for i := 0; i < n; i++ {
		if i < len(src) {
			e.buf = append(e.buf, src[i])
		} else {
			e.buf = append(e.buf, 0)
		}
	}
}

// Bytes16 appends a 16-bit length prefix followed by the bytes.
func (e *Encoder) Bytes16(src []byte) {
	if len(src) > 0xFFFF {
		panic(fmt.Sprintf("wire: bytes16 too long: %d", len(src)))
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(src)))
	e.buf = append(e.buf, src...)
}

// String16 appends a 16-bit length-prefixed string.
func (e *Encoder) String16(s string) {
	if len(s) > 0xFFFF {
		panic(fmt.Sprintf("wire: string16 too long: %d", len(s)))
	}
	e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(len(s)))
	e.buf = append(e.buf, s...)
}

// Decoder reads values written by Encoder. All methods record the first
// error; Err must be checked after decoding.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over payload.
func NewDecoder(payload []byte) *Decoder { return &Decoder{buf: payload} }

// Err returns the first decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of unconsumed bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

func (d *Decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = ErrDecodeShort
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Uint32 reads a little-endian uint32.
func (d *Decoder) Uint32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// Int32 reads a little-endian int32.
func (d *Decoder) Int32() int32 { return int32(d.Uint32()) }

// Uint64 reads a little-endian uint64.
func (d *Decoder) Uint64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// Int64 reads a little-endian int64.
func (d *Decoder) Int64() int64 { return int64(d.Uint64()) }

// Bool reads a single byte as a boolean.
func (d *Decoder) Bool() bool {
	b := d.take(1)
	return b != nil && b[0] != 0
}

// CharArray reads exactly n bytes (the IDL char[N] type). The result aliases
// the payload.
func (d *Decoder) CharArray(n int) []byte { return d.take(n) }

// Bytes16 reads a 16-bit length-prefixed byte string, aliasing the payload.
func (d *Decoder) Bytes16() []byte {
	b := d.take(2)
	if b == nil {
		return nil
	}
	n := int(binary.LittleEndian.Uint16(b))
	return d.take(n)
}

// String16 reads a 16-bit length-prefixed string. Unlike Bytes16 it must
// copy: the decoder aliases the payload buffer, and an aliased string would
// break Go's string immutability when the buffer is reused.
func (d *Decoder) String16() string { return string(d.Bytes16()) } //daggervet:ignore=hotpathalloc
