package analysis

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
)

// fixtureLoader is shared across fixture runs so dependency packages (the
// standard library, checked from source) are only type-checked once per
// test process.
var (
	fixtureLoaderOnce sync.Once
	fixtureLoader     *Loader
	fixtureLoaderErr  error
)

func sharedLoader() (*Loader, error) {
	fixtureLoaderOnce.Do(func() {
		fixtureLoader, fixtureLoaderErr = NewLoader(".")
		if fixtureLoader != nil {
			// Mirror cmd/daggervet: test files are part of the analyzed
			// surface, so fixtures and repo-clean runs cover them too.
			fixtureLoader.IncludeTests = true
		}
	})
	return fixtureLoader, fixtureLoaderErr
}

// RunFixture loads the fixture package in dir as import path asPath, runs
// analyzer a over it, and checks the diagnostics against the fixture's
// expectations, written as trailing comments in the x/tools analysistest
// style:
//
//	time.Now() // want `time\.Now reads the wall clock`
//
// Each want comment holds one or more quoted regular expressions; every
// expectation must be matched by a diagnostic on its line and every
// diagnostic must match an expectation.
func RunFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.Load(dir, asPath)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	checkFixture(t, a, pkg)
}

// RunXTestFixture is RunFixture for a fixture directory's external test
// package (loaded via LoadXTest under asPath+"/xtest").
func RunXTestFixture(t *testing.T, a *Analyzer, dir, asPath string) {
	t.Helper()
	loader, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	pkg, err := loader.LoadXTest(dir, asPath)
	if err != nil {
		t.Fatalf("load xtest fixture %s: %v", dir, err)
	}
	if pkg == nil {
		t.Fatalf("fixture %s has no external test files", dir)
	}
	checkFixture(t, a, pkg)
}

// checkFixture runs analyzer a over pkg and matches its diagnostics against
// the package's want comments.
func checkFixture(t *testing.T, a *Analyzer, pkg *Package) {
	t.Helper()
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("run %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "want ")
				if !ok {
					// Directive comments carry their expectation embedded:
					// "// dagger:ignore foo bar // want `...`".
					if i := strings.Index(text, "// want "); i >= 0 {
						rest, ok = text[i+len("// want "):], true
					}
				}
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				res, err := parseWant(rest)
				if err != nil {
					t.Fatalf("%s:%d: bad want comment: %v", pos.Filename, pos.Line, err)
				}
				k := key{pos.Filename, pos.Line}
				wants[k] = append(wants[k], res...)
			}
		}
	}

	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("unexpected diagnostic at %s:%d: %s", d.Pos.Filename, d.Pos.Line, d.Message)
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// parseWant extracts the quoted regexps from the body of a want comment.
func parseWant(s string) ([]*regexp.Regexp, error) {
	var out []*regexp.Regexp
	for {
		s = strings.TrimSpace(s)
		if s == "" {
			return out, nil
		}
		var lit string
		switch s[0] {
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated regexp in %q", s)
			}
			lit, s = s[1:1+end], s[2+end:]
		case '"':
			end := 1
			for end < len(s) && (s[end] != '"' || s[end-1] == '\\') {
				end++
			}
			if end == len(s) {
				return nil, fmt.Errorf("unterminated regexp in %q", s)
			}
			unq, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			lit, s = unq, s[end+1:]
		default:
			return nil, fmt.Errorf("expected quoted regexp, got %q", s)
		}
		re, err := regexp.Compile(lit)
		if err != nil {
			return nil, err
		}
		out = append(out, re)
	}
}
