package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// HotPathAlloc keeps the RPC data path allocation-lean, as the paper's
// zero-copy CPU–NIC interface assumes of the software above it. Inside the
// send/receive/ring hot paths it flags fmt.Sprint* formatting, appends in
// loops onto slices declared without capacity, and []byte→string
// conversions (each allocates and copies). Cold paths are exempt: String/
// Error methods, panic messages, and error construction — except
// constant-message fmt.Errorf, which mints the identical error on every
// call and should be a package-level sentinel instead.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc: "flag fmt.Sprint*, un-preallocated append loops, []byte→string " +
		"conversions, and constant fmt.Errorf on the RPC data path",
	Run: runHotPathAlloc,
}

// hotScopes are whole packages on the data path.
var hotScopes = []string{
	"dagger/internal/ringbuf",
	"dagger/internal/wire",
	"dagger/internal/transport",
	"dagger/internal/connstate",
	"dagger/internal/metrics",
	"dagger/internal/faults",
}

// hotFiles extends the scope to individual hot files in wider packages.
var hotFiles = map[string][]string{
	"dagger/internal/core": {"client.go"},
}

func runHotPathAlloc(pass *Pass) error {
	wholePkg := pathIn(pass.Path, hotScopes...)
	fileSet := map[string]bool{}
	for _, f := range hotFiles[pass.Path] {
		fileSet[f] = true
	}
	if !wholePkg && len(fileSet) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		if !wholePkg && !fileSet[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		checkHotFile(pass, f)
	}
	return nil
}

func checkHotFile(pass *Pass, f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// String/Error methods are diagnostic/cold by convention.
		if name := funcName(fd); name == "String" || name == "Error" {
			continue
		}
		cold := coldRegions(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// A single constant argument means no formatting happens: the
			// call builds the identical error on every invocation, paying
			// an allocation a package-level sentinel (errors.New at init)
			// would not. Checked even though error construction is
			// otherwise cold — the fix is free. Wrapping with %w (two or
			// more args) is dynamic and exempt.
			if _, ok := isPkgCall(pass.Info, call, "fmt", "Errorf"); ok && len(call.Args) == 1 {
				if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil {
					pass.Reportf(call.Pos(),
						"constant fmt.Errorf allocates per call; hoist a package-level sentinel error")
				}
			}
			if cold.contains(call.Pos()) {
				return true
			}
			if name, ok := isPkgCall(pass.Info, call, "fmt", "Sprintf", "Sprint", "Sprintln"); ok {
				pass.Reportf(call.Pos(),
					"fmt.%s allocates on the hot path; precompute or use strconv/append", name)
			}
			return true
		})
		checkByteStringConv(pass, fd.Body, cold)
		checkAppendLoops(pass, fd.Body)
	}
}

// regions is a set of source intervals.
type regions [][2]token.Pos

func (r regions) contains(p token.Pos) bool {
	for _, iv := range r {
		if p >= iv[0] && p < iv[1] {
			return true
		}
	}
	return false
}

// coldRegions returns the spans of body that only execute on failure
// paths: panic() arguments and error-construction calls (fmt.Errorf,
// errors.New).
func coldRegions(pass *Pass, body *ast.BlockStmt) regions {
	var out regions
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
			return false
		}
		if _, ok := isPkgCall(pass.Info, call, "fmt", "Errorf"); ok {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
			return false
		}
		if _, ok := isPkgCall(pass.Info, call, "errors", "New"); ok {
			out = append(out, [2]token.Pos{call.Pos(), call.End()})
			return false
		}
		return true
	})
	return out
}

// checkByteStringConv flags string(b) for []byte b, except in the
// allocation-free positions the compiler optimizes (map index, ==/!=
// comparison) and in cold regions.
func checkByteStringConv(pass *Pass, body *ast.BlockStmt, cold regions) {
	optimized := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			// m[string(b)] does not allocate when m is a map.
			if t := pass.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					optimized[ast.Unparen(n.Index)] = true
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.EQL || n.Op == token.NEQ {
				optimized[ast.Unparen(n.X)] = true
				optimized[ast.Unparen(n.Y)] = true
			}
		}
		return true
	})
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 || optimized[call] || cold.contains(call.Pos()) {
			return true
		}
		// A conversion has a type as its "function".
		tv, ok := pass.Info.Types[call.Fun]
		if !ok || !tv.IsType() {
			return true
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); !ok || b.Kind() != types.String {
			return true
		}
		argT := pass.TypeOf(call.Args[0])
		if argT == nil {
			return true
		}
		if sl, ok := argT.Underlying().(*types.Slice); ok {
			if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
				pass.Reportf(call.Pos(),
					"[]byte→string conversion allocates and copies on the hot path; keep the []byte")
			}
		}
		return true
	})
}

// checkAppendLoops flags `x = append(x, ...)` inside a loop when x is a
// local slice declared in this function without capacity (var x []T,
// x := []T{}, or make([]T, 0)); growing it element-wise reallocates
// log(n) times where a single preallocation would do.
func checkAppendLoops(pass *Pass, body *ast.BlockStmt) {
	// Collect local slice variables declared without capacity.
	noCap := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					obj := pass.Info.Defs[name]
					if obj == nil {
						continue
					}
					if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
						noCap[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
					continue
				}
				switch rhs := ast.Unparen(n.Rhs[i]).(type) {
				case *ast.CompositeLit:
					if len(rhs.Elts) == 0 {
						noCap[obj] = true
					}
				case *ast.CallExpr:
					if id, ok := rhs.Fun.(*ast.Ident); ok && id.Name == "make" && len(rhs.Args) == 2 {
						// make([]T, 0) with no cap argument.
						if tv, ok := pass.Info.Types[rhs.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
							noCap[obj] = true
						}
					}
				}
			}
		}
		return true
	})
	if len(noCap) == 0 {
		return
	}
	// Find appends to those variables inside loops.
	var inLoop func(n ast.Node, depth int)
	inLoop = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m != n {
					inLoop(m, depth+1)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					inLoop(m, depth+1)
					return false
				}
			case *ast.AssignStmt:
				if depth == 0 {
					return true
				}
				for i, rhs := range m.Rhs {
					call, ok := ast.Unparen(rhs).(*ast.CallExpr)
					if !ok {
						continue
					}
					fid, ok := call.Fun.(*ast.Ident)
					if !ok || fid.Name != "append" || len(call.Args) == 0 {
						continue
					}
					target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
					if !ok {
						continue
					}
					if i < len(m.Lhs) {
						if lid, ok := m.Lhs[i].(*ast.Ident); !ok || lid.Name != target.Name {
							continue
						}
					}
					if obj := pass.Info.Uses[target]; obj != nil && noCap[obj] {
						pass.Reportf(call.Pos(),
							"append to %s grows an un-preallocated slice inside a loop; preallocate with make(cap)", target.Name)
					}
				}
			}
			return true
		})
	}
	inLoop(body, 0)
}
