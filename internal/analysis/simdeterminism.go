package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// SimDeterminism forbids sources of nondeterminism inside the simulation
// packages. The discrete-event engine must be bit-for-bit reproducible —
// the paper's figures are regenerated from it — so model code must use the
// virtual sim.Time clock instead of the wall clock, an explicitly seeded
// rand.New(rand.NewSource(seed)) instead of math/rand's global source, and
// must not depend on Go's randomized map iteration order.
// SimDeterminism applies to _test.go files too (Tests): a test that seeds
// from the wall clock or the global source can mask a determinism regression
// by never reproducing it. The map-iteration check is waived in test files —
// tests routinely range over expectation maps where order cannot leak into
// simulated results.
var SimDeterminism = &Analyzer{
	Name: "simdeterminism",
	Doc: "forbid wall-clock time, the global math/rand source, and map " +
		"iteration order dependence in simulation packages",
	Tests: true,
	Run:   runSimDeterminism,
}

// simScopes are the packages whose behavior feeds simulated results.
var simScopes = []string{
	"dagger/internal/sim",
	"dagger/internal/dataplane",
	"dagger/internal/connstate",
	"dagger/internal/interconnect",
	"dagger/internal/nicmodel",
	"dagger/internal/netmodel",
	"dagger/internal/microsim",
	"dagger/internal/experiments",
	"dagger/internal/metrics",
	"dagger/internal/faults",
}

// wallClockFuncs are the time package functions that read or depend on the
// wall clock (or the process scheduler) and therefore leak real time into
// simulated results.
var wallClockFuncs = []string{
	"Now", "Since", "Until", "After", "Tick", "Sleep",
	"NewTimer", "NewTicker", "AfterFunc",
}

// globalRandOK are math/rand package functions that are allowed because
// they construct explicitly seeded generators rather than drawing from the
// global source.
var globalRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runSimDeterminism(pass *Pass) error {
	if !pathIn(pass.Path, simScopes...) {
		return nil
	}
	for _, f := range pass.Files {
		isTestFile := strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go")
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name, ok := isPkgCall(pass.Info, n, "time", wallClockFuncs...); ok {
					pass.Reportf(n.Pos(),
						"time.%s reads the wall clock in simulation code; use the virtual sim.Time clock", name)
				}
				if fn := calleeFunc(pass.Info, n); fn != nil &&
					fn.Pkg() != nil && fn.Pkg().Path() == "math/rand" &&
					fn.Type().(*types.Signature).Recv() == nil &&
					!globalRandOK[fn.Name()] {
					pass.Reportf(n.Pos(),
						"rand.%s draws from the global math/rand source in simulation code; use a seeded rand.New(rand.NewSource(seed))", fn.Name())
				}
			case *ast.RangeStmt:
				if isTestFile {
					// Map order in a test cannot leak into simulated results;
					// only the wall-clock and global-rand checks apply here.
					return true
				}
				t := pass.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); isMap && !orderInvariantRange(pass, n) {
					pass.Reportf(n.Pos(),
						"map iteration order is randomized; sort the keys first or mark the loop //daggervet:ignore=simdeterminism if provably order-invariant")
				}
			}
			return true
		})
	}
	return nil
}

// orderInvariantRange reports whether a map range is trivially independent
// of iteration order: a keys/values-collection loop whose body is a single
// append onto one slice (the caller is expected to sort afterwards), a pure
// counting loop, or an integer accumulation (+=, |=, &=, ^=; commutative
// and associative — unlike float accumulation, whose rounding makes the sum
// order-dependent).
func orderInvariantRange(pass *Pass, n *ast.RangeStmt) bool {
	if len(n.Body.List) != 1 {
		return false
	}
	switch st := n.Body.List[0].(type) {
	case *ast.AssignStmt:
		// keys = append(keys, k)
		if len(st.Rhs) == 1 {
			if call, ok := st.Rhs[0].(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "append" {
					return true
				}
			}
		}
		// sum += v over integers.
		switch st.Tok {
		case token.ADD_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
			if len(st.Lhs) == 1 {
				if t := pass.TypeOf(st.Lhs[0]); t != nil {
					if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
						return true
					}
				}
			}
		}
	case *ast.IncDecStmt:
		return true
	}
	return false
}
