package analysis

import (
	"go/ast"
	"go/types"
)

// ErrCheckLite flags silently dropped errors on the RPC stack's own
// operations (Conn/transport/ring/NIC calls). A dropped send error hides
// ring overflow and routing failures that the paper's flow-control design
// makes load-bearing. Explicitly assigning to the blank identifier
// (`_ = conn.Send(...)`) documents intent and is allowed.
var ErrCheckLite = &Analyzer{
	Name: "errchecklite",
	Doc:  "flag call statements that silently drop a returned error on the RPC data path",
	Run:  runErrCheckLite,
}

// errScopes are the packages where dropped errors hide protocol bugs.
var errScopes = []string{
	"dagger/internal/core",
	"dagger/internal/transport",
	"dagger/internal/fabric",
	"dagger/internal/ringbuf",
	"dagger/internal/wire",
	// Examples are copied into real services; a dropped error there is a
	// bug template.
	"dagger/examples",
}

// errCheckExempt lists receiver types whose methods cannot fail
// meaningfully (their error results exist to satisfy io interfaces).
var errCheckExempt = [][2]string{
	{"bytes", "Buffer"},
	{"strings", "Builder"},
	{"hash", "Hash"},
}

// errCheckExemptFuncs lists package-level functions whose error result is
// ceremonial: stdout printers fail only when stdout itself is gone, at
// which point no recovery is possible. fmt.Fprintf is NOT exempt — an
// explicit writer argument signals the caller cares where bytes land.
var errCheckExemptFuncs = [][2]string{
	{"fmt", "Print"},
	{"fmt", "Printf"},
	{"fmt", "Println"},
}

func runErrCheckLite(pass *Pass) error {
	if !pathIn(pass.Path, errScopes...) {
		return nil
	}
	errType := types.Universe.Lookup("error").Type()
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[call]
			if !ok {
				return true
			}
			// The error must be the sole or final result.
			var last types.Type
			switch t := tv.Type.(type) {
			case *types.Tuple:
				if t.Len() == 0 {
					return true
				}
				last = t.At(t.Len() - 1).Type()
			default:
				last = t
			}
			if last == nil || !types.Identical(last, errType) {
				return true
			}
			if exemptErrCall(pass, call) {
				return true
			}
			name := "call"
			if fn := calleeFunc(pass.Info, call); fn != nil {
				name = fn.Name()
			}
			pass.Reportf(stmt.Pos(),
				"%s returns an error that is silently dropped; handle it or assign to _ explicitly", name)
			return true
		})
	}
	return nil
}

// exemptErrCall reports whether the call's receiver is a can't-fail writer
// (bytes.Buffer, strings.Builder, hash.Hash) or the call is a ceremonial
// stdout printer (fmt.Print/Printf/Println).
func exemptErrCall(pass *Pass, call *ast.CallExpr) bool {
	for _, ex := range errCheckExemptFuncs {
		if _, ok := isPkgCall(pass.Info, call, ex[0], ex[1]); ok {
			return true
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	for _, ex := range errCheckExempt {
		if isNamedType(t, ex[0], ex[1]) {
			return true
		}
	}
	// hash.Hash is an interface; check interface satisfaction by name.
	if named, ok := t.(*types.Named); ok {
		if obj := named.Obj(); obj.Pkg() != nil && obj.Pkg().Path() == "hash" {
			return true
		}
	}
	return false
}
