package analysis

import (
	"go/ast"
	"testing"

	"dagger/internal/analysis/flow"
)

// corpusLattice is the trivial one-element lattice: it converges on any
// graph, so running it over every real function body checks that CFG
// construction handles the repo's full range of control-flow shapes and that
// the worklist terminates on every loop structure the codebase actually
// uses.
type corpusLattice struct{}

func (corpusLattice) Entry() bool                       { return true }
func (corpusLattice) Transfer(_ ast.Node, in bool) bool { return in }
func (corpusLattice) Join(x, y bool) bool               { return x || y }
func (corpusLattice) Equal(x, y bool) bool              { return x == y }

// TestFlowCorpusRealPackages builds a CFG for every function and function
// literal in the data-path packages the flow-based analyzers police, checks
// the graph's structural invariants, and runs a fixpoint to completion.
func TestFlowCorpusRealPackages(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{"../fabric", "../transport", "../core", "../ringbuf", "../wire", "../dataplane"}
	total := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body == nil {
					return true
				}
				total++
				pos := pkg.Fset.Position(body.Pos())
				g := flow.New(body)
				checkGraphInvariants(t, g, pos.String())
				r := flow.Forward[bool](g, corpusLattice{})
				if !r.Converged {
					t.Errorf("%s: trivial lattice did not converge", pos)
				}
				return true
			})
		}
	}
	if total < 100 {
		t.Fatalf("corpus too small: only %d function bodies analyzed", total)
	}
}

// checkGraphInvariants asserts the structural contract every analysis relies
// on: entry is block 0, the exit block ends in an ExitMark, edges are
// symmetric (every successor lists us as a predecessor and vice versa), and
// Blocks is indexed by Block.Index.
func checkGraphInvariants(t *testing.T, g *flow.Graph, where string) {
	t.Helper()
	if g.Entry == nil || g.Exit == nil {
		t.Fatalf("%s: nil entry or exit block", where)
	}
	if g.Entry.Index != 0 {
		t.Errorf("%s: entry block has index %d, want 0", where, g.Entry.Index)
	}
	if n := len(g.Exit.Nodes); n == 0 {
		t.Errorf("%s: exit block has no nodes", where)
	} else if _, ok := g.Exit.Nodes[n-1].(*flow.ExitMark); !ok {
		t.Errorf("%s: exit block does not end in an ExitMark", where)
	}
	for i, b := range g.Blocks {
		if b.Index != i {
			t.Errorf("%s: block at position %d has index %d", where, i, b.Index)
		}
		for _, s := range b.Succs {
			if !containsBlock(s.Preds, b) {
				t.Errorf("%s: block %d -> %d edge missing back-link", where, b.Index, s.Index)
			}
		}
		for _, p := range b.Preds {
			if !containsBlock(p.Succs, b) {
				t.Errorf("%s: block %d <- %d edge missing forward link", where, b.Index, p.Index)
			}
		}
	}
}

func containsBlock(list []*flow.Block, b *flow.Block) bool {
	for _, x := range list {
		if x == b {
			return true
		}
	}
	return false
}
