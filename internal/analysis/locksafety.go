package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockSafety enforces the concurrency discipline of the functional RPC
// stack. It flags (1) lock values copied by value (parameters, results,
// assignments, range variables), (2) mutexes held across blocking
// operations — channel sends/receives, blocking selects, sync.WaitGroup/
// sync.Cond waits, time.Sleep — and (3) return paths on which a locked
// mutex is provably still held (the missing-defer-unlock bug class).
// It also machine-checks `// dagger:requires-lock <field>` annotations:
// helpers documented as "caller holds <recv>.<field>" (e.g.
// Reliable.session) must only be called where the simulation can prove
// that mutex is held.
var LockSafety = &Analyzer{
	Name: "locksafety",
	Doc: "flag copied locks, mutexes held across blocking operations, " +
		"return paths that leak a held mutex, and calls into " +
		"dagger:requires-lock helpers without the required mutex",
	Run: runLockSafety,
}

// lockScopes are the packages forming the concurrent data path, plus the
// examples users copy concurrency idioms from.
var lockScopes = []string{
	"dagger/internal/core",
	"dagger/internal/transport",
	"dagger/internal/fabric",
	"dagger/examples",
}

func runLockSafety(pass *Pass) error {
	if !pathIn(pass.Path, lockScopes...) {
		return nil
	}
	requires := collectRequiresLock(pass)
	for _, f := range pass.Files {
		checkCopiedLocks(pass, f)
		// Check every function body — declarations and literals — with a
		// fresh lock state; a goroutine or deferred closure does not hold
		// the locks of its creator. Annotated helpers start with the
		// caller's mutex modeled as held.
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					ls := &lockSim{pass: pass, requires: requires}
					ls.scanBlock(n.Body.List, seededState(pass, requires, n))
				}
			case *ast.FuncLit:
				ls := &lockSim{pass: pass, requires: requires}
				ls.scanBlock(n.Body.List, make(lockState))
			}
			return true
		})
	}
	return nil
}

// requiresLockPrefix introduces a lock-precondition annotation in a
// function's doc comment:
//
//	// dagger:requires-lock mu
//	func (r *Reliable) session(ep string) *txSession { ... }
//
// declares that callers of r.session must hold r.mu at the call site.
const requiresLockPrefix = "dagger:requires-lock"

// collectRequiresLock maps every annotated function in the package to the
// mutex field its callers must hold. Malformed annotations (no field name)
// are reported rather than silently ignored.
func collectRequiresLock(pass *Pass) map[*types.Func]string {
	out := make(map[*types.Func]string)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, requiresLockPrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					pass.Reportf(fd.Name.Pos(),
						"dagger:requires-lock annotation missing the mutex field name")
					continue
				}
				if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
					out[fn] = fields[0]
				}
			}
		}
	}
	return out
}

// seededState returns the initial lock state for fd's body: empty, unless
// fd carries a dagger:requires-lock annotation, in which case the caller's
// mutex is modeled as held — with a pending deferred unlock, since
// releasing it is the caller's job, not a leak in the helper.
func seededState(pass *Pass, requires map[*types.Func]string, fd *ast.FuncDecl) lockState {
	st := make(lockState)
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return st
	}
	field, ok := requires[fn]
	if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
		return st
	}
	st[fd.Recv.List[0].Names[0].Name+"."+field] = &mutexState{depth: 1, deferred: true}
	return st
}

// checkCopiedLocks flags by-value traffic in lock-containing types.
func checkCopiedLocks(pass *Pass, f *ast.File) {
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(t) {
				pass.Reportf(field.Type.Pos(),
					"%s passes lock by value: %s contains a sync primitive; use a pointer", what, t)
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFieldList(n.Recv, "receiver")
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.FuncLit:
			checkFieldList(n.Type.Params, "parameter")
			checkFieldList(n.Type.Results, "result")
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if len(n.Rhs) != len(n.Lhs) {
					break
				}
				// Assignment to blank compiles to a no-op; no copy happens.
				if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
					continue
				}
				// Copying an existing lock-containing value (variable,
				// field, or dereference). Fresh composite literals and
				// function calls are legitimate initialization.
				switch ast.Unparen(rhs).(type) {
				case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
				default:
					continue
				}
				t := pass.TypeOf(rhs)
				if t == nil {
					continue
				}
				if _, isPtr := t.(*types.Pointer); isPtr {
					continue
				}
				if containsLock(t) {
					pass.Reportf(n.Rhs[i].Pos(),
						"assignment copies lock value: %s contains a sync primitive", t)
				}
			}
		case *ast.RangeStmt:
			if n.Value == nil {
				return true
			}
			t := pass.TypeOf(n.Value)
			if t == nil {
				return true
			}
			if _, isPtr := t.(*types.Pointer); isPtr {
				return true
			}
			if containsLock(t) {
				pass.Reportf(n.Value.Pos(),
					"range value copies lock value: %s contains a sync primitive; range over indices or pointers", t)
			}
		}
		return true
	})
	_ = f
}

// lockState tracks, per canonical mutex expression (e.g. "c.mu"), how many
// times it is currently locked and whether an unlock is deferred.
type lockState map[string]*mutexState

type mutexState struct {
	depth    int
	deferred bool
	rlock    bool
}

func (s lockState) clone() lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		c := *v
		out[k] = &c
	}
	return out
}

// anyHeld returns the name of a mutex currently held (including via a
// pending deferred unlock), or "".
func (s lockState) anyHeld() string {
	for k, v := range s {
		if v.depth > 0 {
			return k
		}
	}
	return ""
}

// lockSim is a conservative intra-procedural simulation of mutex state. It
// scans statement lists sequentially, recursing into branches with cloned
// state; branch effects only propagate out of straight-line code, which
// keeps the checker simple and biases it toward no false positives on the
// common lock/early-return/unlock shapes.
type lockSim struct {
	pass *Pass
	// requires maps annotated helpers to the mutex field their callers
	// must hold (see requiresLockPrefix).
	requires map[*types.Func]string
}

// scanBlock scans stmts under state st, returning the resulting state and
// whether the block always terminates (returns or panics).
func (ls *lockSim) scanBlock(stmts []ast.Stmt, st lockState) (lockState, bool) {
	for _, stmt := range stmts {
		var terminated bool
		st, terminated = ls.scanStmt(stmt, st)
		if terminated {
			return st, true
		}
	}
	return st, false
}

func (ls *lockSim) scanStmt(stmt ast.Stmt, st lockState) (lockState, bool) {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		if name, locking, isR := mutexOp(ls.pass, s.X); name != "" {
			ms := st[name]
			if ms == nil {
				ms = &mutexState{}
				st[name] = ms
			}
			if locking {
				ms.depth++
				ms.rlock = isR
			} else if ms.depth > 0 {
				ms.depth--
			}
			return st, false
		}
		ls.checkExpr(s.X, st)
	case *ast.DeferStmt:
		if name, locking, _ := mutexOp(ls.pass, s.Call); name != "" && !locking {
			ms := st[name]
			if ms == nil {
				ms = &mutexState{}
				st[name] = ms
			}
			ms.deferred = true
		}
		// The deferred call itself runs at return; its body is scanned
		// separately if it is a FuncLit.
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			ls.checkExpr(e, st)
		}
		for name, ms := range st {
			if ms.depth > 0 && !ms.deferred {
				verb := "Unlock"
				if ms.rlock {
					verb = "RUnlock"
				}
				ls.pass.Reportf(stmt.Pos(),
					"return with %s held; unlock before returning or use defer %s.%s()", name, name, verb)
			}
		}
		return st, true
	case *ast.SendStmt:
		if held := st.anyHeld(); held != "" {
			ls.pass.Reportf(stmt.Pos(),
				"channel send while holding %s; a full channel blocks with the mutex held", held)
		}
		ls.checkRequiresLock(s.Chan, st)
		ls.checkRequiresLock(s.Value, st)
	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = ls.scanStmt(s.Init, st)
		}
		ls.checkExpr(s.Cond, st)
		thenSt, thenTerm := ls.scanBlock(s.Body.List, st.clone())
		var elseTerm bool
		elseSt := st
		if s.Else != nil {
			elseSt, elseTerm = ls.scanStmt(s.Else, st.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return mergeStates(thenSt, elseSt), false
		}
	case *ast.BlockStmt:
		return ls.scanBlock(s.List, st)
	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = ls.scanStmt(s.Init, st)
		}
		if s.Cond != nil {
			ls.checkExpr(s.Cond, st)
		}
		ls.scanBlock(s.Body.List, st.clone())
	case *ast.RangeStmt:
		ls.checkExpr(s.X, st)
		ls.scanBlock(s.Body.List, st.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = ls.scanStmt(s.Init, st)
		}
		ls.checkExpr(s.Tag, st)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.scanBlock(cc.Body, st.clone())
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				ls.scanBlock(cc.Body, st.clone())
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			if held := st.anyHeld(); held != "" {
				ls.pass.Reportf(s.Pos(),
					"blocking select while holding %s; unlock before waiting", held)
			}
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				ls.scanBlock(cc.Body, st.clone())
			}
		}
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			ls.checkExpr(e, st)
		}
	case *ast.DeclStmt:
		// no lock effects
	case *ast.GoStmt:
		// The spawned goroutine does not hold our locks; its body (if a
		// FuncLit) is scanned separately with fresh state.
	case *ast.LabeledStmt:
		return ls.scanStmt(s.Stmt, st)
	}
	return st, false
}

// mergeStates combines two branch outcomes conservatively (minimum depth),
// so that a branch that conditionally locks does not poison the
// fall-through path with false "held" reports.
func mergeStates(a, b lockState) lockState {
	out := make(lockState)
	for k, av := range a {
		c := *av
		if bv, ok := b[k]; ok {
			if bv.depth < c.depth {
				c.depth = bv.depth
			}
			c.deferred = c.deferred || bv.deferred
		} else {
			c.depth = 0
		}
		out[k] = &c
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			c := *bv
			c.depth = 0
			out[k] = &c
		}
	}
	return out
}

// checkExpr applies the expression-level checks under lock state st:
// blocking operations while a mutex is held, and calls into
// dagger:requires-lock helpers without the required mutex.
func (ls *lockSim) checkExpr(e ast.Expr, st lockState) {
	ls.checkBlocking(e, st)
	ls.checkRequiresLock(e, st)
}

// checkRequiresLock reports calls to annotated helpers whose required
// mutex is not provably held at the call site. The receiver expression is
// canonicalized textually — `o.c.locked(k)` annotated with field `mu`
// requires `o.c.mu` held — matching the lockSim's own canonical names.
// Deferred and go'ed calls run under a different lock regime and are not
// checked; calls through method values lose the receiver and stay silent.
func (ls *lockSim) checkRequiresLock(e ast.Expr, st lockState) {
	if e == nil || len(ls.requires) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later / elsewhere
		case *ast.CallExpr:
			fn := calleeFunc(ls.pass.Info, n)
			if fn == nil {
				return true
			}
			field, ok := ls.requires[fn]
			if !ok {
				return true
			}
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			want := types.ExprString(sel.X) + "." + field
			if ms := st[want]; ms == nil || ms.depth == 0 {
				ls.pass.Reportf(n.Pos(),
					"call to %s requires holding %s (dagger:requires-lock)", fn.Name(), want)
			}
		}
		return true
	})
}

// checkBlocking reports blocking operations inside expression e while a
// mutex is held: channel receives and calls to the known blocking set.
func (ls *lockSim) checkBlocking(e ast.Expr, st lockState) {
	held := st.anyHeld()
	if held == "" || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // runs later / elsewhere
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				ls.pass.Reportf(n.Pos(),
					"channel receive while holding %s; an empty channel blocks with the mutex held", held)
			}
		case *ast.CallExpr:
			if fn := calleeFunc(ls.pass.Info, n); fn != nil && fn.Pkg() != nil {
				switch {
				case fn.Pkg().Path() == "time" && fn.Name() == "Sleep":
					ls.pass.Reportf(n.Pos(), "time.Sleep while holding %s", held)
				case fn.Pkg().Path() == "sync" && fn.Name() == "Wait":
					ls.pass.Reportf(n.Pos(), "sync %s.Wait() while holding %s blocks with the mutex held",
						recvText(n), held)
				}
			}
		}
		return true
	})
}

// mutexOp matches e against `x.Lock()`, `x.RLock()`, `x.Unlock()`,
// `x.RUnlock()` on a sync.Mutex or sync.RWMutex and returns the canonical
// receiver text, whether it is a lock acquisition, and whether it is the
// reader form.
func mutexOp(pass *Pass, e ast.Expr) (name string, locking, rlock bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false, false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn, _ := pass.Info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, fn.Name() == "RLock"
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, fn.Name() == "RUnlock"
	}
	return "", false, false
}

// recvText renders the receiver of a method call for diagnostics.
func recvText(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}
