package analysis

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestSimDeterminismFixture(t *testing.T) {
	RunFixture(t, SimDeterminism, filepath.Join("testdata", "simdeterminism"), "dagger/internal/sim/fixture")
}

// TestSimDeterminismTestFileFixture proves the loader reaches in-package
// _test.go files and that simdeterminism polices them: unseeded rand and
// wall-clock reads are flagged, while seeded tests and test-file map ranges
// pass.
func TestSimDeterminismTestFileFixture(t *testing.T) {
	RunFixture(t, SimDeterminism,
		filepath.Join("testdata", "simdeterminism", "tests"), "dagger/internal/sim/fixture/tests")
}

// TestSimDeterminismXTestFixture proves external test packages (package
// foo_test) are loaded under the synthetic /xtest path and analyzed in scope.
func TestSimDeterminismXTestFixture(t *testing.T) {
	RunXTestFixture(t, SimDeterminism,
		filepath.Join("testdata", "simdeterminism", "tests"), "dagger/internal/sim/fixture/tests")
}

// TestTestFileDiagnosticsFilteredWithoutOptIn proves analyzers that do not
// opt into test files produce no diagnostics there even when scoped in: the
// same unseeded fixture attributed to a lock-safety-scoped path must stay
// silent under a Tests=false analyzer.
func TestTestFileDiagnosticsFilteredWithoutOptIn(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.Load(filepath.Join("testdata", "simdeterminism", "tests"), "dagger/internal/sim/fixture/tests")
	if err != nil {
		t.Fatal(err)
	}
	noTests := &Analyzer{
		Name: "wantless",
		Run: func(p *Pass) error {
			for _, f := range p.Files {
				p.Reportf(f.Pos(), "flag every file")
			}
			return nil
		},
	}
	diags, err := Run(pkg, []*Analyzer{noTests})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 || !strings.HasSuffix(diags[0].Pos.Filename, "fixture.go") {
		t.Fatalf("Tests=false analyzer should only report in non-test files, got %v", diags)
	}
}

// TestConnstateSimFixture pins simdeterminism coverage of the shared
// connection-state policy layer: wall-clock eviction stamps, global-rand
// victim selection, and order-sensitive backing-store walks are flagged
// when attributed to dagger/internal/connstate.
func TestConnstateSimFixture(t *testing.T) {
	RunFixture(t, SimDeterminism,
		filepath.Join("testdata", "connstate", "sim"), "dagger/internal/connstate/fixture")
}

// TestConnstateAllocFixture pins hotpathalloc coverage of the same layer:
// per-lookup formatting, constant fmt.Errorf, []byte→string conversions,
// and un-preallocated append loops are flagged there.
func TestConnstateAllocFixture(t *testing.T) {
	RunFixture(t, HotPathAlloc,
		filepath.Join("testdata", "connstate", "alloc"), "dagger/internal/connstate/fixture")
}

// TestMetricsSimFixture pins simdeterminism coverage of the metrics plane:
// wall-clock snapshot stamps and order-sensitive registry walks are flagged
// when attributed to dagger/internal/metrics, keeping cross-substrate
// snapshot diffs reproducible.
func TestMetricsSimFixture(t *testing.T) {
	RunFixture(t, SimDeterminism,
		filepath.Join("testdata", "metrics", "sim"), "dagger/internal/metrics/fixture")
}

// TestMetricsAllocFixture pins hotpathalloc coverage of the metrics plane:
// per-event name formatting, []byte→string conversions, and un-preallocated
// snapshot appends are flagged there.
func TestMetricsAllocFixture(t *testing.T) {
	RunFixture(t, HotPathAlloc,
		filepath.Join("testdata", "metrics", "alloc"), "dagger/internal/metrics/fixture")
}

// TestFaultsSimFixture pins simdeterminism coverage of the fault-injection
// policy layer: wall-clock seeds, global-rand verdict draws, and
// order-sensitive held-frame walks are flagged when attributed to
// dagger/internal/faults, keeping fault plans replayable.
func TestFaultsSimFixture(t *testing.T) {
	RunFixture(t, SimDeterminism,
		filepath.Join("testdata", "faults", "sim"), "dagger/internal/faults/fixture")
}

// TestFaultsAllocFixture pins hotpathalloc coverage of the same layer:
// per-verdict formatting, constant fmt.Errorf, []byte→string conversions,
// and un-preallocated append loops are flagged there.
func TestFaultsAllocFixture(t *testing.T) {
	RunFixture(t, HotPathAlloc,
		filepath.Join("testdata", "faults", "alloc"), "dagger/internal/faults/fixture")
}

func TestLockSafetyFixture(t *testing.T) {
	RunFixture(t, LockSafety, filepath.Join("testdata", "locksafety"), "dagger/internal/core/fixture")
}

func TestHotPathAllocFixture(t *testing.T) {
	RunFixture(t, HotPathAlloc, filepath.Join("testdata", "hotpathalloc"), "dagger/internal/wire/fixture")
}

func TestErrCheckLiteFixture(t *testing.T) {
	RunFixture(t, ErrCheckLite, filepath.Join("testdata", "errchecklite"), "dagger/internal/transport/fixture")
}

func TestBufOwnershipFixture(t *testing.T) {
	RunFixture(t, BufOwnership, filepath.Join("testdata", "bufownership"), "dagger/internal/core/fixture")
}

func TestBudgetFlowFixture(t *testing.T) {
	RunFixture(t, BudgetFlow, filepath.Join("testdata", "budgetflow"), "dagger/internal/core/fixture")
}

func TestShedCheckFixture(t *testing.T) {
	RunFixture(t, ShedCheck, filepath.Join("testdata", "shedcheck"), "dagger/internal/core/fixture")
}

// TestCongestionCheckFixture pins the congestion half of shedcheck: a
// dataplane Mark verdict is subject to the same consult-before-dispatch
// contract as shed verdicts, with congestion-specific wording.
func TestCongestionCheckFixture(t *testing.T) {
	RunFixture(t, ShedCheck, filepath.Join("testdata", "congestioncheck"), "dagger/internal/dataplane/fixture")
}

// TestIgnoreFixture pins the // dagger:ignore contract: suppression on the
// directive's own line and the line below, mandatory reasons, and stale or
// malformed directives surfacing as diagnostics of their own.
func TestIgnoreFixture(t *testing.T) {
	RunFixture(t, ShedCheck, filepath.Join("testdata", "ignore"), "dagger/internal/core/fixture")
}

// TestAnalyzersScopedOut proves the analyzers stay silent on packages
// outside their scope: the same violation-riddled fixtures produce no
// diagnostics when attributed to an unscoped import path.
func TestAnalyzersScopedOut(t *testing.T) {
	cases := []struct {
		a   *Analyzer
		dir string
	}{
		{SimDeterminism, "simdeterminism"},
		{SimDeterminism, filepath.Join("connstate", "sim")},
		{HotPathAlloc, filepath.Join("connstate", "alloc")},
		{SimDeterminism, filepath.Join("faults", "sim")},
		{HotPathAlloc, filepath.Join("faults", "alloc")},
		{LockSafety, "locksafety"},
		{HotPathAlloc, "hotpathalloc"},
		{ErrCheckLite, "errchecklite"},
		{BufOwnership, "bufownership"},
		{BudgetFlow, "budgetflow"},
		{ShedCheck, "shedcheck"},
		{ShedCheck, "congestioncheck"},
	}
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		pkg, err := loader.Load(filepath.Join("testdata", tc.dir), "dagger/internal/unscoped/fixture")
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		diags, err := Run(pkg, []*Analyzer{tc.a})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: diagnostic outside scope: %s", tc.a.Name, d)
		}
	}
}

// TestLoaderRealPackages exercises the source loader on representative
// repo packages, including one that imports net (forcing a pure-Go
// standard-library type-check from GOROOT source).
func TestLoaderRealPackages(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath() != "dagger" {
		t.Fatalf("module path = %q, want dagger", loader.ModulePath())
	}
	for _, dir := range []string{"../sim", "../transport", "../ringbuf"} {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if len(pkg.Files) == 0 {
			t.Fatalf("load %s: no files", dir)
		}
		if pkg.Types == nil || !pkg.Types.Complete() {
			t.Fatalf("load %s: incomplete type information", dir)
		}
	}
}

// TestRepoClean runs every analyzer over the live packages they scope to;
// the repo must stay violation-free, which is the same gate cmd/daggervet
// enforces in CI.
func TestRepoClean(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		"../sim", "../dataplane", "../connstate", "../interconnect", "../nicmodel",
		"../netmodel", "../microsim", "../experiments", "../overload",
		"../core", "../transport", "../fabric", "../ringbuf", "../wire",
		"../faults",
		"../../examples/quickstart", "../../examples/kvs",
		"../../examples/flight", "../../examples/socialnet",
		"../../examples/multitenant",
	}
	all := []*Analyzer{SimDeterminism, LockSafety, HotPathAlloc, ErrCheckLite, BufOwnership, BudgetFlow, ShedCheck}
	for _, dir := range dirs {
		pkgs := []*Package{}
		pkg, err := loader.Load(dir, "")
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
		// External test packages (package foo_test) are part of the analyzed
		// surface too.
		if xpkg, err := loader.LoadXTest(dir, ""); err != nil {
			t.Fatalf("load xtest %s: %v", dir, err)
		} else if xpkg != nil {
			pkgs = append(pkgs, xpkg)
		}
		for _, p := range pkgs {
			diags, err := Run(p, all)
			if err != nil {
				t.Fatal(err)
			}
			for _, d := range diags {
				t.Errorf("%s", d)
			}
		}
	}
}
