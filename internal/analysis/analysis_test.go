package analysis

import (
	"path/filepath"
	"testing"
)

func TestSimDeterminismFixture(t *testing.T) {
	RunFixture(t, SimDeterminism, filepath.Join("testdata", "simdeterminism"), "dagger/internal/sim/fixture")
}

func TestLockSafetyFixture(t *testing.T) {
	RunFixture(t, LockSafety, filepath.Join("testdata", "locksafety"), "dagger/internal/core/fixture")
}

func TestHotPathAllocFixture(t *testing.T) {
	RunFixture(t, HotPathAlloc, filepath.Join("testdata", "hotpathalloc"), "dagger/internal/wire/fixture")
}

func TestErrCheckLiteFixture(t *testing.T) {
	RunFixture(t, ErrCheckLite, filepath.Join("testdata", "errchecklite"), "dagger/internal/transport/fixture")
}

// TestAnalyzersScopedOut proves the analyzers stay silent on packages
// outside their scope: the same violation-riddled fixtures produce no
// diagnostics when attributed to an unscoped import path.
func TestAnalyzersScopedOut(t *testing.T) {
	cases := []struct {
		a   *Analyzer
		dir string
	}{
		{SimDeterminism, "simdeterminism"},
		{LockSafety, "locksafety"},
		{HotPathAlloc, "hotpathalloc"},
		{ErrCheckLite, "errchecklite"},
	}
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range cases {
		pkg, err := loader.Load(filepath.Join("testdata", tc.dir), "dagger/internal/unscoped/fixture")
		if err != nil {
			t.Fatalf("%s: %v", tc.dir, err)
		}
		diags, err := Run(pkg, []*Analyzer{tc.a})
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s: diagnostic outside scope: %s", tc.a.Name, d)
		}
	}
}

// TestLoaderRealPackages exercises the source loader on representative
// repo packages, including one that imports net (forcing a pure-Go
// standard-library type-check from GOROOT source).
func TestLoaderRealPackages(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	if loader.ModulePath() != "dagger" {
		t.Fatalf("module path = %q, want dagger", loader.ModulePath())
	}
	for _, dir := range []string{"../sim", "../transport", "../ringbuf"} {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		if len(pkg.Files) == 0 {
			t.Fatalf("load %s: no files", dir)
		}
		if pkg.Types == nil || !pkg.Types.Complete() {
			t.Fatalf("load %s: incomplete type information", dir)
		}
	}
}

// TestRepoClean runs every analyzer over the live packages they scope to;
// the repo must stay violation-free, which is the same gate cmd/daggervet
// enforces in CI.
func TestRepoClean(t *testing.T) {
	loader, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		"../sim", "../interconnect", "../nicmodel", "../netmodel",
		"../microsim", "../experiments",
		"../core", "../transport", "../fabric", "../ringbuf", "../wire",
		"../../examples/quickstart", "../../examples/kvs",
		"../../examples/flight", "../../examples/socialnet",
		"../../examples/multitenant",
	}
	all := []*Analyzer{SimDeterminism, LockSafety, HotPathAlloc, ErrCheckLite}
	for _, dir := range dirs {
		pkg, err := loader.Load(dir, "")
		if err != nil {
			t.Fatalf("load %s: %v", dir, err)
		}
		diags, err := Run(pkg, all)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
