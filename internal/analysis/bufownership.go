package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"dagger/internal/analysis/flow"
)

// BufOwnership enforces the pooled-buffer ownership contract documented in
// internal/fabric: every buffer drawn from a data-path pool (ringbuf.BufPool
// / wire.BufferPool Get, or a frame produced by wire.MarshalAppend into one)
// must, on every control-flow path, be released (Put/Release), handed to a
// function annotated // dagger:transfers-ownership, or escape to an owner
// the analysis cannot see (stored, returned, captured, or passed to an
// unannotated call). It is flow-sensitive: facts propagate over the
// internal/analysis/flow CFG, so a Put on one branch does not excuse a leak
// on the other.
//
// Reported defects:
//
//   - leak-on-return: a path reaches a return (or falls off the end of the
//     function, after defers) while still owning a pooled buffer;
//   - double release: Put/Release of a buffer already released;
//   - release or use after a // dagger:transfers-ownership handoff;
//   - use after release;
//   - a Get result discarded outright.
//
// Inside a function annotated // dagger:transfers-ownership, the named
// parameters start owned: the body must consume them on every path, which is
// what makes the annotation a checked contract rather than a comment.
// Functions annotated // dagger:borrows only read their buffer arguments, so
// calls to them neither consume nor escape the buffer.
var BufOwnership = &Analyzer{
	Name:  "bufownership",
	Doc:   "pooled data-path buffers must be released or handed off exactly once on every path",
	Tests: false,
	Run:   runBufOwnership,
}

// bufScopes is where the pooled-buffer contract applies: the functional data
// path. ringbuf and wire are the pool implementations themselves and are
// excluded — they manipulate raw free-list storage below the contract.
var bufScopes = []string{
	"dagger/internal/fabric",
	"dagger/internal/transport",
	"dagger/internal/core",
}

// ownState tracks one buffer's lifecycle as a bitmask; joins union the bits,
// and checks fire only on pure states so merged paths stay conservative.
type ownState uint8

const (
	stOwned    ownState = 1 << iota // held by this function, must be consumed
	stReleased                      // returned to a pool
	stMoved                         // ownership handed to an annotated callee
	stEscaped                       // visible to code the analysis cannot see
)

// refKey names a tracked reference: a local variable, or a field of a local
// struct value (field loads through pointers escape instead — the pointee is
// shared).
type refKey struct {
	obj   types.Object
	field string
}

// ownFact is the dataflow fact: which references are bound to which
// allocation sites, and each site's lifecycle state.
type ownFact struct {
	bind map[refKey]token.Pos
	res  map[token.Pos]ownState
}

func (f ownFact) clone() ownFact {
	out := ownFact{
		bind: make(map[refKey]token.Pos, len(f.bind)),
		res:  make(map[token.Pos]ownState, len(f.res)),
	}
	for k, v := range f.bind {
		out.bind[k] = v
	}
	for k, v := range f.res {
		out.res[k] = v
	}
	return out
}

// ownReporter receives diagnostics during the reporting pass; it is nil
// during fixpoint iteration.
type ownReporter func(pos token.Pos, format string, args ...any)

// ownAnalysis analyzes one function body.
type ownAnalysis struct {
	pass *Pass
	// entryParams are parameters owned at entry (transfers-ownership
	// contract on the analyzed function itself).
	entryParams []*types.Var
	rep         ownReporter // nil during Forward, set during Visit replay
	// Leaks are buffered during the replay and emitted afterwards: a site
	// leaking through an explicit return is anchored at that return, and only
	// sites with no return report fall back to the function's closing brace
	// (the Exit block is visited first, so immediate reporting would anchor
	// everything there).
	leakRet  map[token.Pos]token.Pos // alloc site -> first leaking return
	leakExit map[token.Pos]token.Pos // alloc site -> exit position
}

func runBufOwnership(pass *Pass) error {
	if !pathIn(pass.Path, bufScopes...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeOwnership(pass, fn.Body, ownedParams(pass, fn))
				}
			case *ast.FuncLit:
				analyzeOwnership(pass, fn.Body, nil)
			}
			return true
		})
	}
	return nil
}

// ownedParams returns the parameters the function's own
// dagger:transfers-ownership annotation obliges it to consume.
func ownedParams(pass *Pass, decl *ast.FuncDecl) []*types.Var {
	fn, _ := pass.Info.Defs[decl.Name].(*types.Func)
	if fn == nil {
		return nil
	}
	d, ok := pass.Directives[fn]
	if !ok || !d.TransfersOwnership {
		return nil
	}
	return coveredParams(fn, d)
}

// coveredParams resolves which of fn's parameters a transfers-ownership
// directive covers: the named ones, or every []byte parameter when the
// directive names none.
func coveredParams(fn *types.Func, d Directive) []*types.Var {
	sig := fn.Type().(*types.Signature)
	var out []*types.Var
	for i := 0; i < sig.Params().Len(); i++ {
		p := sig.Params().At(i)
		if len(d.Params) == 0 {
			if isByteSlice(p.Type()) {
				out = append(out, p)
			}
			continue
		}
		for _, name := range d.Params {
			if p.Name() == name {
				out = append(out, p)
			}
		}
	}
	return out
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func analyzeOwnership(pass *Pass, body *ast.BlockStmt, owned []*types.Var) {
	a := &ownAnalysis{pass: pass, entryParams: owned}
	g := flow.New(body)
	r := flow.Forward[ownFact](g, a)
	if !r.Converged {
		return
	}
	a.leakRet = make(map[token.Pos]token.Pos)
	a.leakExit = make(map[token.Pos]token.Pos)
	r.Visit(func(n ast.Node, before ownFact) {
		a.rep = func(pos token.Pos, format string, args ...any) {
			pass.Reportf(pos, format, args...)
		}
		a.step(n, before)
		a.rep = nil
	})
	for site, pos := range a.leakRet {
		delete(a.leakExit, site)
		pass.Reportf(pos, "pooled buffer obtained at line %d leaks: not released or handed off on every path reaching this point",
			pass.Fset.Position(site).Line)
	}
	for site, pos := range a.leakExit {
		pass.Reportf(pos, "pooled buffer obtained at line %d leaks: not released or handed off on every path reaching this point",
			pass.Fset.Position(site).Line)
	}
}

// --- flow.Analysis implementation ---

func (a *ownAnalysis) Entry() ownFact {
	f := ownFact{bind: map[refKey]token.Pos{}, res: map[token.Pos]ownState{}}
	for _, p := range a.entryParams {
		f.bind[refKey{obj: p}] = p.Pos()
		f.res[p.Pos()] = stOwned
	}
	return f
}

func (a *ownAnalysis) Transfer(n ast.Node, in ownFact) ownFact {
	return a.step(n, in)
}

func (a *ownAnalysis) Join(x, y ownFact) ownFact {
	out := x.clone()
	for site, st := range y.res {
		out.res[site] |= st
	}
	for k, site := range y.bind {
		if cur, ok := out.bind[k]; ok {
			if cur != site {
				// The same variable names different buffers on the two
				// paths: tracking either would misattribute Puts, so stop
				// tracking both.
				delete(out.bind, k)
				out.res[cur] |= stEscaped
				out.res[site] |= stEscaped
			}
			continue
		}
		out.bind[k] = site
	}
	return out
}

func (a *ownAnalysis) Equal(x, y ownFact) bool {
	if len(x.bind) != len(y.bind) || len(x.res) != len(y.res) {
		return false
	}
	for k, v := range x.bind {
		if w, ok := y.bind[k]; !ok || w != v {
			return false
		}
	}
	for k, v := range x.res {
		if w, ok := y.res[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// --- the single statement interpreter, shared by Transfer and the
// reporting replay ---

func (a *ownAnalysis) step(n ast.Node, in ownFact) ownFact {
	f := in.clone()
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n.Lhs, n.Rhs, &f)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) == 0 {
					continue
				}
				lhs := make([]ast.Expr, len(vs.Names))
				for i, id := range vs.Names {
					lhs[i] = id
				}
				a.assign(lhs, vs.Values, &f)
			}
		}
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			if key, ok := a.resolveRef(res); ok {
				a.escape(key, &f)
			} else {
				a.effects(res, &f)
			}
		}
		a.checkLeaks(n.Return, &f, false)
	case *flow.ExitMark:
		a.checkLeaks(n.Pos(), &f, true)
	case *ast.ExprStmt:
		// A naked Get is a buffer nobody can ever release.
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && a.isSource(call) {
			if a.rep != nil {
				a.rep(n.Pos(), "pooled buffer from %s is discarded: nothing can release it", callName(call))
			}
			for _, arg := range call.Args {
				a.effects(arg, &f)
			}
			return f
		}
		a.effects(n.X, &f)
	case *ast.DeferStmt:
		a.deferEffects(n.Call, &f)
	case *ast.GoStmt:
		a.unknownCall(n.Call, &f)
	case *ast.SendStmt:
		a.effects(n.Chan, &f)
		a.escapeOrUse(n.Value, &f)
	case *ast.IncDecStmt:
		a.effects(n.X, &f)
	case *ast.RangeStmt:
		a.effects(n.X, &f)
		if id, ok := n.Value.(*ast.Ident); ok && id.Name != "_" {
			// Range values are fresh views each iteration; drop stale binds.
			if obj := a.pass.Info.Defs[id]; obj != nil {
				delete(f.bind, refKey{obj: obj})
			}
		}
	case ast.Expr:
		a.effects(n, &f)
	}
	return f
}

// assign interprets one (possibly multi-value) assignment.
func (a *ownAnalysis) assign(lhs, rhs []ast.Expr, f *ownFact) {
	if len(rhs) == 1 && len(lhs) > 1 {
		call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr)
		if !ok {
			a.effects(rhs[0], f)
			a.clearBinds(lhs, f)
			return
		}
		// Multi-value call: the buffer, if any, is in result 0 (Get,
		// MarshalAppend) or result 0's annotated field (yields-ownership).
		if site, field, ok := a.producedBuffer(call, f); ok {
			a.clearBinds(lhs, f)
			a.bindTo(lhs[0], field, site, f)
			return
		}
		if a.isBorrowCall(call) {
			for _, arg := range call.Args {
				a.effects(arg, f)
			}
		} else {
			a.unknownCall(call, f)
		}
		a.clearBinds(lhs, f)
		return
	}
	for i := range lhs {
		if i >= len(rhs) {
			break
		}
		if site, ok := a.evalOwn(rhs[i], f); ok {
			a.bindTo(lhs[i], "", site, f)
			continue
		}
		if key, ok := a.lhsRef(lhs[i]); ok {
			a.effects(rhs[i], f)
			delete(f.bind, key)
		} else {
			// Store through a pointer, map, index, or global: the buffer on
			// the right becomes visible to other code.
			a.effects(lhs[i], f)
			a.escapeOrUse(rhs[i], f)
		}
	}
}

// producedBuffer classifies a call that mints or carries a pooled buffer in
// its first result, returning the allocation site and the field (for
// yields-ownership directives) the buffer lands in.
func (a *ownAnalysis) producedBuffer(call *ast.CallExpr, f *ownFact) (site token.Pos, field string, ok bool) {
	if a.isSource(call) {
		for _, arg := range call.Args {
			a.effects(arg, f)
		}
		f.res[call.Pos()] = stOwned
		return call.Pos(), "", true
	}
	if a.isPropagator(call) && len(call.Args) > 0 {
		if site, ok := a.evalOwn(call.Args[0], f); ok {
			for _, arg := range call.Args[1:] {
				a.effects(arg, f)
			}
			return site, "", true
		}
		return 0, "", false
	}
	if fn := calleeFunc(a.pass.Info, call); fn != nil {
		if d, ok := a.pass.Directives[fn]; ok && d.YieldsOwnership {
			for _, arg := range call.Args {
				a.effects(arg, f)
			}
			f.res[call.Pos()] = stOwned
			field = ""
			if len(d.Params) > 0 {
				field = d.Params[0]
			}
			return call.Pos(), field, true
		}
	}
	return 0, "", false
}

// bindTo binds an assignment target to a buffer site. Blank targets leak the
// buffer on the spot; unresolvable targets (pointer stores) publish it.
func (a *ownAnalysis) bindTo(target ast.Expr, field string, site token.Pos, f *ownFact) {
	if id, ok := ast.Unparen(target).(*ast.Ident); ok && id.Name == "_" {
		for _, s := range f.bind {
			if s == site {
				// `_ = buf`: another reference still owns the buffer.
				return
			}
		}
		if a.rep != nil && f.res[site]&stEscaped == 0 {
			a.rep(target.Pos(), "pooled buffer assigned to _ is discarded: nothing can release it")
		}
		f.res[site] |= stEscaped
		return
	}
	key, ok := a.lhsRef(target)
	if !ok {
		f.res[site] |= stEscaped
		return
	}
	key.field = field
	f.bind[key] = site
}

func (a *ownAnalysis) clearBinds(lhs []ast.Expr, f *ownFact) {
	for _, e := range lhs {
		key, ok := a.lhsRef(e)
		if !ok {
			continue
		}
		if key.field != "" {
			delete(f.bind, key)
			continue
		}
		// Overwriting a struct value drops its field bindings too.
		for k := range f.bind {
			if k.obj == key.obj {
				delete(f.bind, k)
			}
		}
	}
}

// lhsRef resolves an assignment target to a trackable reference: a local
// variable, or a field of a local struct value.
func (a *ownAnalysis) lhsRef(e ast.Expr) (refKey, bool) {
	return a.refOf(e)
}

// resolveRef resolves a read expression to a tracked reference, looking
// through parens and slicings.
func (a *ownAnalysis) resolveRef(e ast.Expr) (refKey, bool) {
	e = ast.Unparen(e)
	if sl, ok := e.(*ast.SliceExpr); ok {
		return a.resolveRef(sl.X)
	}
	return a.refOf(e)
}

func (a *ownAnalysis) refOf(e ast.Expr) (refKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.pass.Info.ObjectOf(e)
		if v, ok := obj.(*types.Var); ok && !v.IsField() {
			return refKey{obj: obj}, true
		}
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return refKey{}, false
		}
		obj := a.pass.Info.ObjectOf(base)
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() {
			return refKey{}, false
		}
		// Only fields of struct *values* stay private to this function;
		// through a pointer the pointee is shared state.
		if _, isStruct := v.Type().Underlying().(*types.Struct); !isStruct {
			return refKey{}, false
		}
		return refKey{obj: obj, field: e.Sel.Name}, true
	}
	return refKey{}, false
}

// evalOwn resolves an expression to an existing or newly-minted buffer site.
func (a *ownAnalysis) evalOwn(e ast.Expr, f *ownFact) (token.Pos, bool) {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.SliceExpr:
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			if idx != nil {
				a.effects(idx, f)
			}
		}
		return a.evalOwn(e.X, f)
	case *ast.Ident, *ast.SelectorExpr:
		if key, ok := a.resolveRef(e); ok {
			if site, bound := f.bind[key]; bound {
				return site, true
			}
		}
	case *ast.CallExpr:
		if site, field, ok := a.producedBuffer(e, f); ok && field == "" {
			return site, true
		}
	}
	return 0, false
}

// --- call classification ---

func inDagger(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil &&
		(fn.Pkg().Path() == "dagger" || strings.HasPrefix(fn.Pkg().Path(), "dagger/"))
}

// isSource reports a pool Get: a dagger method named Get with signature
// func(int) []byte (ringbuf.BufPool, wire.BufferPool, and fixtures).
func (a *ownAnalysis) isSource(call *ast.CallExpr) bool {
	fn := calleeFunc(a.pass.Info, call)
	if !inDagger(fn) || fn.Name() != "Get" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
		isByteSlice(sig.Results().At(0).Type())
}

// isRelease reports a pool repayment: a dagger func/method named Put or
// Release taking exactly one []byte.
func (a *ownAnalysis) isRelease(call *ast.CallExpr) bool {
	fn := calleeFunc(a.pass.Info, call)
	if !inDagger(fn) || (fn.Name() != "Put" && fn.Name() != "Release") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isByteSlice(sig.Params().At(0).Type())
}

// isPropagator reports wire.MarshalAppend: the result aliases (and extends)
// the buffer passed as the first argument.
func (a *ownAnalysis) isPropagator(call *ast.CallExpr) bool {
	fn := calleeFunc(a.pass.Info, call)
	return inDagger(fn) && fn.Name() == "MarshalAppend"
}

func (a *ownAnalysis) isBorrowCall(call *ast.CallExpr) bool {
	fn := calleeFunc(a.pass.Info, call)
	if fn == nil {
		return false
	}
	d, ok := a.pass.Directives[fn]
	return ok && d.Borrows
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "call"
}

// --- effects: the expression walker ---

// effects applies an expression's ownership effects: release/handoff calls
// change state, unknown calls and stores publish buffers, reads check for
// use-after-release.
func (a *ownAnalysis) effects(e ast.Expr, f *ownFact) {
	if e == nil {
		return
	}
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		a.call(e, f)
	case *ast.FuncLit:
		a.escapeCaptured(e, f)
	case *ast.Ident:
		a.useCheck(e, f)
	case *ast.SelectorExpr:
		if _, ok := a.refOf(e); ok {
			a.useCheck(e, f)
			return
		}
		a.effects(e.X, f)
	case *ast.SliceExpr:
		a.useCheck(e, f)
		for _, idx := range []ast.Expr{e.Low, e.High, e.Max} {
			a.effects(idx, f)
		}
	case *ast.IndexExpr:
		a.effects(e.X, f)
		a.effects(e.Index, f)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			a.escapeOrUse(e.X, f)
			return
		}
		a.effects(e.X, f)
	case *ast.StarExpr:
		a.effects(e.X, f)
	case *ast.BinaryExpr:
		a.effects(e.X, f)
		a.effects(e.Y, f)
	case *ast.CompositeLit:
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			a.escapeOrUse(elt, f)
		}
	case *ast.TypeAssertExpr:
		a.effects(e.X, f)
	case *ast.KeyValueExpr:
		a.effects(e.Key, f)
		a.effects(e.Value, f)
	}
}

// useCheck flags reads of buffers that are gone.
func (a *ownAnalysis) useCheck(e ast.Expr, f *ownFact) {
	key, ok := a.resolveRef(e)
	if !ok {
		return
	}
	site, bound := f.bind[key]
	if !bound || a.rep == nil {
		return
	}
	switch f.res[site] {
	case stReleased:
		a.rep(e.Pos(), "use of %s after it was released to the pool", refName(e))
	case stMoved:
		a.rep(e.Pos(), "use of %s after ownership was handed off", refName(e))
	}
}

func refName(e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		if base, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			return base.Name + "." + e.Sel.Name
		}
		return e.Sel.Name
	case *ast.SliceExpr:
		return refName(e.X)
	}
	return "buffer"
}

// escapeOrUse publishes a tracked buffer (store, send, capture, composite);
// untrackable expressions get plain effects.
func (a *ownAnalysis) escapeOrUse(e ast.Expr, f *ownFact) {
	if key, ok := a.resolveRef(e); ok {
		a.useCheck(e, f)
		a.escape(key, f)
		return
	}
	a.effects(e, f)
}

// escape marks a reference's buffer (and, for a bare variable, every field
// buffer it carries) as visible to unknown code.
func (a *ownAnalysis) escape(key refKey, f *ownFact) {
	if key.field == "" {
		for k, site := range f.bind {
			if k.obj == key.obj {
				f.res[site] |= stEscaped
			}
		}
		return
	}
	if site, ok := f.bind[key]; ok {
		f.res[site] |= stEscaped
	}
}

// escapeCaptured escapes every tracked variable a function literal captures.
func (a *ownAnalysis) escapeCaptured(lit *ast.FuncLit, f *ownFact) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil {
			return true
		}
		a.escape(refKey{obj: obj}, f)
		return true
	})
}

// call classifies and applies one call expression.
func (a *ownAnalysis) call(call *ast.CallExpr, f *ownFact) {
	// Type conversions copy; arguments are plain reads.
	if tv, ok := a.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		for _, arg := range call.Args {
			a.effects(arg, f)
		}
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := a.pass.Info.ObjectOf(id).(*types.Builtin); ok {
			a.builtin(b.Name(), call, f)
			return
		}
	}
	if a.isRelease(call) && len(call.Args) == 1 {
		a.release(call, f)
		return
	}
	if a.isSource(call) || a.isPropagator(call) || a.isBorrowCall(call) {
		// In expression position a fresh Get escapes into its consumer;
		// propagator and borrow arguments are plain reads.
		for _, arg := range call.Args {
			a.effects(arg, f)
		}
		return
	}
	if fn := calleeFunc(a.pass.Info, call); fn != nil {
		if d, ok := a.pass.Directives[fn]; ok && d.TransfersOwnership {
			a.handoff(call, fn, d, f)
			return
		}
	}
	a.unknownCall(call, f)
}

func (a *ownAnalysis) builtin(name string, call *ast.CallExpr, f *ownFact) {
	switch name {
	case "append":
		// append may retain or reallocate its arguments' backing arrays.
		for _, arg := range call.Args {
			a.escapeOrUse(arg, f)
		}
	default: // len, cap, copy, min, max, print, println, ...
		for _, arg := range call.Args {
			a.effects(arg, f)
		}
	}
}

// release applies a Put/Release call.
func (a *ownAnalysis) release(call *ast.CallExpr, f *ownFact) {
	arg := call.Args[0]
	key, ok := a.resolveRef(arg)
	if !ok {
		a.effects(arg, f)
		return
	}
	site, bound := f.bind[key]
	if !bound {
		return
	}
	switch f.res[site] {
	case stReleased:
		if a.rep != nil {
			a.rep(call.Pos(), "double release of %s: the buffer was already returned to the pool", refName(arg))
		}
	case stMoved:
		if a.rep != nil {
			a.rep(call.Pos(), "release of %s after ownership was handed off", refName(arg))
		}
	}
	if f.res[site]&stEscaped == 0 {
		f.res[site] = stReleased
	}
}

// handoff applies a call to a dagger:transfers-ownership function.
func (a *ownAnalysis) handoff(call *ast.CallExpr, fn *types.Func, d Directive, f *ownFact) {
	covered := coveredParams(fn, d)
	sig := fn.Type().(*types.Signature)
	for i, arg := range call.Args {
		var param *types.Var
		if i < sig.Params().Len() {
			param = sig.Params().At(i)
		}
		owned := false
		for _, p := range covered {
			if p == param {
				owned = true
			}
		}
		if !owned {
			a.effects(arg, f)
			continue
		}
		key, ok := a.resolveRef(arg)
		if !ok {
			a.effects(arg, f)
			continue
		}
		site, bound := f.bind[key]
		if !bound {
			continue
		}
		switch f.res[site] {
		case stReleased:
			if a.rep != nil {
				a.rep(call.Pos(), "%s handed to %s after it was released to the pool", refName(arg), fn.Name())
			}
		case stMoved:
			if a.rep != nil {
				a.rep(call.Pos(), "%s handed to %s after ownership was already handed off", refName(arg), fn.Name())
			}
		}
		if f.res[site]&stEscaped == 0 {
			f.res[site] = stMoved
		}
	}
}

// unknownCall escapes every tracked argument (and receiver): the callee may
// retain or release the buffer, so this function's obligation ends.
func (a *ownAnalysis) unknownCall(call *ast.CallExpr, f *ownFact) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if key, ok := a.resolveRef(sel.X); ok {
			a.escape(key, f)
		} else {
			a.effects(sel.X, f)
		}
	} else {
		a.effects(call.Fun, f)
	}
	for _, arg := range call.Args {
		a.escapeOrUse(arg, f)
	}
}

// deferEffects handles `defer call`: a deferred Put covers the buffer on
// every path (the Exit block replays the defer), so it is neither a leak nor
// double-released by later analysis; other deferred calls escape their
// arguments.
func (a *ownAnalysis) deferEffects(call *ast.CallExpr, f *ownFact) {
	if a.isRelease(call) && len(call.Args) == 1 {
		if key, ok := a.resolveRef(call.Args[0]); ok {
			a.escape(key, f)
			return
		}
	}
	a.unknownCall(call, f)
}

// checkLeaks records buffers still owned when a path leaves the function;
// analyzeOwnership emits them once the whole body has been replayed.
func (a *ownAnalysis) checkLeaks(pos token.Pos, f *ownFact, exit bool) {
	if a.rep == nil {
		return
	}
	for site, st := range f.res {
		// Owned on at least one path and never visible to anyone who could
		// release it: some path leaks. Escape clears the obligation.
		if st&stOwned == 0 || st&stEscaped != 0 {
			continue
		}
		m := a.leakRet
		if exit {
			m = a.leakExit
		}
		if _, seen := m[site]; !seen {
			m[site] = pos
		}
	}
}
