// Package analysis is a self-contained static-analysis framework plus the
// Dagger-specific analyzers behind cmd/daggervet. It deliberately mirrors
// the golang.org/x/tools/go/analysis API shape (Analyzer, Pass, Diagnostic,
// want-comment fixtures) but is built only on the standard library's
// go/ast, go/build and go/types packages, so the lint suite works in
// hermetic build environments with no module downloads.
//
// The analyzers encode the invariants this repo's value rests on:
//
//   - simdeterminism: the discrete-event engine (internal/sim and the model
//     packages above it) must stay bit-for-bit reproducible, so wall-clock
//     time and the global math/rand source are forbidden there.
//   - locksafety: the functional RPC stack (internal/core,
//     internal/transport, internal/fabric) must stay race-free: no copied
//     locks, no blocking while holding a mutex, no return with a mutex held.
//   - hotpathalloc: the data path (internal/ringbuf, internal/wire,
//     internal/transport, the client send/receive path) must stay
//     allocation-lean.
//   - errchecklite: errors from Conn/transport/ring operations must not be
//     silently dropped.
package analysis

import (
	"errors"
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	// Path is the import path the package was loaded as. Fixture packages
	// may be loaded under a synthetic path to exercise path-scoped
	// analyzers.
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// Directives is the loader's accumulated dagger: annotation registry,
	// covering this package and every module-local package loaded so far
	// (including dependencies), so callers of an annotated function see its
	// contract across package boundaries.
	Directives map[*types.Func]Directive
}

// A Directive is a dagger: ownership annotation in a function declaration's
// doc comment. Exactly one of TransfersOwnership, Borrows or YieldsOwnership
// is set.
type Directive struct {
	// TransfersOwnership: "// dagger:transfers-ownership [param ...]" — the
	// function takes ownership of the named []byte parameters (all []byte
	// parameters when none are named) on every path, success or failure.
	// Callers must not use or release the buffer afterwards; the function
	// body must release or hand off the buffer on every path.
	TransfersOwnership bool
	// Borrows: "// dagger:borrows" — the function only reads its buffer
	// arguments and retains no reference; callers keep ownership.
	Borrows bool
	// YieldsOwnership: "// dagger:yields-ownership [Field]" — the function's
	// first result carries a pooled buffer the caller now owns; when Field is
	// given, the buffer is that field of the (struct) result rather than the
	// result itself.
	YieldsOwnership bool
	// Params names the parameters a transfers-ownership directive covers
	// (empty means every []byte parameter), or holds the single field name of
	// a yields-ownership directive.
	Params []string
}

// Loader loads packages from source and type-checks them without any
// external tooling. Direct targets are fully checked; their dependencies
// (including the standard library, which is checked from GOROOT source) are
// checked with IgnoreFuncBodies for speed and cached for the lifetime of
// the loader.
type Loader struct {
	ctx        build.Context
	moduleRoot string
	modulePath string
	fset       *token.FileSet

	// IncludeTests merges each target package's in-package _test.go files
	// into the loaded package, so analyzers that opt in (Analyzer.Tests) can
	// police test code too. External test packages (package foo_test) are
	// loaded separately via LoadXTest. Dependency packages are always loaded
	// without their tests.
	IncludeTests bool

	mu         sync.Mutex
	deps       map[string]*types.Package
	directives map[*types.Func]Directive
}

// NewLoader creates a loader rooted at the Go module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Force the pure-Go build so GOROOT packages (net, os/user) resolve to
	// their cgo-free file sets, which go/types can check from source.
	ctx.CgoEnabled = false
	return &Loader{
		ctx:        ctx,
		moduleRoot: root,
		modulePath: modPath,
		fset:       token.NewFileSet(),
		deps:       make(map[string]*types.Package),
		directives: make(map[*types.Func]Directive),
	}, nil
}

// ModuleRoot returns the filesystem root of the loaded module.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's declared import path.
func (l *Loader) ModulePath() string { return l.modulePath }

// findModule walks up from dir looking for go.mod and returns the module
// root directory and module path.
func findModule(dir string) (root, path string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: no module line in %s/go.mod", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
	}
}

// Load fully type-checks the package in dir, recording complete type
// information for analysis. asPath overrides the import path the package is
// attributed to (used by fixtures); if empty the path is derived from the
// directory's position within the module.
func (l *Loader) Load(dir string, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if asPath == "" {
		rel, err := filepath.Rel(l.moduleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleRoot)
		}
		asPath = l.modulePath
		if rel != "." {
			asPath = l.modulePath + "/" + filepath.ToSlash(rel)
		}
	}
	files, err := l.parseDir(abs, l.IncludeTests)
	if err != nil {
		return nil, err
	}
	return l.check(asPath, abs, files)
}

// LoadXTest loads the external test package (package foo_test) of dir, if
// any, under the synthetic import path asPath + "/xtest" — beneath the base
// path, so path-scoped analyzers treat external tests as part of the tree
// they test. Returns (nil, nil) when dir has no external test files.
func (l *Loader) LoadXTest(dir string, asPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	if asPath == "" {
		rel, err := filepath.Rel(l.moduleRoot, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.moduleRoot)
		}
		asPath = l.modulePath
		if rel != "." {
			asPath = l.modulePath + "/" + filepath.ToSlash(rel)
		}
	}
	bp, err := l.importDir(abs)
	if err != nil {
		return nil, err
	}
	if len(bp.XTestGoFiles) == 0 {
		return nil, nil
	}
	files, err := l.parseFiles(abs, bp.XTestGoFiles)
	if err != nil {
		return nil, err
	}
	return l.check(asPath+"/xtest", abs, files)
}

// check type-checks files as package asPath with full type information.
func (l *Loader) check(asPath, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    (*depImporter)(l),
		FakeImportC: true,
	}
	tpkg, err := conf.Check(asPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", asPath, err)
	}
	l.collectDirectives(files, info.Defs)
	return &Package{
		Path:       asPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		Directives: l.directives,
	}, nil
}

// collectDirectives records the dagger: annotations on the function
// declarations in files into the loader-wide registry.
func (l *Loader) collectDirectives(files []*ast.File, defs map[*ast.Ident]types.Object) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var d Directive
			found := false
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, "dagger:transfers-ownership"); ok {
					d.TransfersOwnership = true
					d.Params = strings.Fields(rest)
					found = true
				} else if text == "dagger:borrows" {
					d.Borrows = true
					found = true
				} else if rest, ok := strings.CutPrefix(text, "dagger:yields-ownership"); ok {
					d.YieldsOwnership = true
					d.Params = strings.Fields(rest)
					found = true
				}
			}
			if !found {
				continue
			}
			if fn, ok := defs[fd.Name].(*types.Func); ok {
				l.directives[fn] = d
			}
		}
	}
}

// importDir resolves dir's build info, tolerating test-only directories
// (which go/build reports as NoGoError while still listing the test files).
func (l *Loader) importDir(dir string) (*build.Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		var noGo *build.NoGoError
		if errors.As(err, &noGo) && bp != nil &&
			(len(bp.TestGoFiles) > 0 || len(bp.XTestGoFiles) > 0) {
			return bp, nil
		}
		return nil, fmt.Errorf("analysis: %w", err)
	}
	return bp, nil
}

// parseDir parses the build-constrained Go files of dir: the non-test files,
// plus the in-package test files when includeTests is set.
func (l *Loader) parseDir(dir string, includeTests bool) ([]*ast.File, error) {
	bp, err := l.importDir(dir)
	if err != nil {
		return nil, err
	}
	names := append([]string(nil), bp.GoFiles...)
	if includeTests {
		names = append(names, bp.TestGoFiles...)
	}
	sort.Strings(names)
	return l.parseFiles(dir, names)
}

func (l *Loader) parseFiles(dir string, names []string) ([]*ast.File, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// depImporter resolves imports for type-checking. Module-local packages are
// read from the module tree; everything else is resolved against GOROOT
// (including the std vendor tree). Dependency packages are checked with
// IgnoreFuncBodies: analysis only needs their exported API.
type depImporter Loader

func (imp *depImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(imp)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	l.mu.Lock()
	if pkg, ok := l.deps[path]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	l.mu.Unlock()

	dir, err := l.resolve(path)
	if err != nil {
		return nil, err
	}
	files, err := l.parseDir(dir, false)
	if err != nil {
		return nil, err
	}
	conf := types.Config{
		Importer:         imp,
		IgnoreFuncBodies: true,
		FakeImportC:      true,
	}
	// Module-local dependencies keep their Defs so dagger: annotations on
	// their functions (e.g. fabric.Inject's transfers-ownership contract)
	// are visible when analyzing packages that call them.
	var info *types.Info
	local := path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/")
	if local {
		info = &types.Info{Defs: make(map[*ast.Ident]types.Object)}
	}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking dependency %s: %w", path, err)
	}
	if local {
		l.collectDirectives(files, info.Defs)
	}
	l.mu.Lock()
	l.deps[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// resolve maps an import path to a source directory.
func (l *Loader) resolve(path string) (string, error) {
	if path == l.modulePath {
		return l.moduleRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
		return filepath.Join(l.moduleRoot, filepath.FromSlash(rest)), nil
	}
	for _, dir := range []string{
		filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path)),
		filepath.Join(l.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path)),
	} {
		if st, err := os.Stat(dir); err == nil && st.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("analysis: cannot resolve import %q", path)
}
