package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"dagger/internal/analysis/flow"
)

// BudgetFlow enforces deadline-budget propagation (§5.5: the ctx deadline is
// the request's wire budget, and every tier below the entry point must see
// it). A function that receives a context must thread it to downstream RPC
// calls; minting a fresh context.Background()/TODO() below the entry tier
// silently discards the caller's remaining budget, so the server can no
// longer shed doomed work.
//
// The analysis is flow-sensitive over the internal/analysis/flow CFG: a
// budget-carrying context is "live" from the point it is created (named ctx
// parameter, context.WithTimeout/WithDeadline, or a derivation of either)
// to the point it is overwritten. Reports:
//
//   - a function with a named context parameter calls
//     context.Background()/context.TODO() (laundering: the caller's budget
//     exists but a fresh, unbounded context is used instead);
//   - context.Background()/TODO() passed directly as a call argument while
//     a budget context is live (except as the parent of a context.With*
//     derivation);
//   - calling a budget-less method M while a budget context is live when
//     the receiver also offers MContext (e.g. Call vs CallContext,
//     Get vs GetContext): the budget exists and a variant that carries it
//     exists, so dropping it is never necessary.
//
// Entry-tier functions — no context parameter, no live budget — may mint
// root contexts freely; that is where budgets are born.
var BudgetFlow = &Analyzer{
	Name:  "budgetflow",
	Doc:   "contexts carrying deadline budgets must propagate to downstream RPC calls",
	Tests: false,
	Run:   runBudgetFlow,
}

// budgetScopes is where budget propagation is enforced: the RPC core and
// everything built on top of it. The fabric/transport layers below the RPC
// boundary carry budgets as wire words, not contexts.
var budgetScopes = []string{
	"dagger/internal/core",
	"dagger/internal/overload",
	"dagger/internal/social",
	"dagger/internal/flight",
	"dagger/internal/kvs",
	"dagger/internal/experiments",
	"dagger/examples",
}

// budgetFact maps context-typed variables that may carry a deadline budget
// at this program point to true. Join is set union ("may carry").
type budgetFact map[types.Object]bool

type budgetAnalysis struct {
	pass *Pass
	// fnName labels diagnostics with the enclosing function.
	fnName string
	// ctxParams are the function's own named context parameters: live
	// budgets at entry, since the caller's deadline arrives through them.
	ctxParams []types.Object
	rep       ownReporter
	// reported dedups per-position (defers replay in the Exit block).
	reported map[token.Pos]bool
}

func runBudgetFlow(pass *Pass) error {
	if !pathIn(pass.Path, budgetScopes...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeBudget(pass, funcName(fn), fn.Type, fn.Body)
				}
			case *ast.FuncLit:
				analyzeBudget(pass, "func literal", fn.Type, fn.Body)
			}
			return true
		})
	}
	return nil
}

func analyzeBudget(pass *Pass, name string, ftype *ast.FuncType, body *ast.BlockStmt) {
	a := &budgetAnalysis{pass: pass, fnName: name, reported: make(map[token.Pos]bool)}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, id := range field.Names {
				obj := pass.Info.Defs[id]
				// A parameter named _ is a visible, deliberate opt-out at the
				// signature; only named parameters carry an obligation.
				if id.Name != "_" && obj != nil && isContextType(obj.Type()) {
					a.ctxParams = append(a.ctxParams, obj)
				}
			}
		}
	}
	g := flow.New(body)
	r := flow.Forward[budgetFact](g, a)
	if !r.Converged {
		return
	}
	r.Visit(func(n ast.Node, before budgetFact) {
		a.rep = func(pos token.Pos, format string, args ...any) {
			if !a.reported[pos] {
				a.reported[pos] = true
				pass.Reportf(pos, format, args...)
			}
		}
		a.scan(n, before)
		a.rep = nil
	})
}

func isContextType(t types.Type) bool {
	return isNamedType(t, "context", "Context")
}

// isContextCall reports a call to a package-level context function named one
// of names.
func (a *budgetAnalysis) isContextCall(call *ast.CallExpr, names ...string) (string, bool) {
	return isPkgCall(a.pass.Info, call, "context", names...)
}

// --- flow.Analysis implementation ---

func (a *budgetAnalysis) Entry() budgetFact {
	f := budgetFact{}
	for _, p := range a.ctxParams {
		f[p] = true
	}
	return f
}

func (a *budgetAnalysis) Transfer(n ast.Node, in budgetFact) budgetFact {
	out := make(budgetFact, len(in))
	for k := range in {
		out[k] = true
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.transferAssign(n.Lhs, n.Rhs, out)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Values) > 0 {
					lhs := make([]ast.Expr, len(vs.Names))
					for i, id := range vs.Names {
						lhs[i] = id
					}
					a.transferAssign(lhs, vs.Values, out)
				}
			}
		}
	}
	return out
}

func (a *budgetAnalysis) transferAssign(lhs, rhs []ast.Expr, f budgetFact) {
	assignOne := func(target ast.Expr, carries bool) {
		id, ok := ast.Unparen(target).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil || !isContextType(obj.Type()) {
			return
		}
		if carries {
			f[obj] = true
		} else {
			delete(f, obj)
		}
	}
	if len(rhs) == 1 && len(lhs) > 1 {
		// ctx, cancel := context.WithTimeout(...): the context is result 0.
		assignOne(lhs[0], a.carriesBudget(rhs[0], f))
		return
	}
	for i := range lhs {
		if i < len(rhs) {
			assignOne(lhs[i], a.carriesBudget(rhs[i], f))
		}
	}
}

// carriesBudget reports whether evaluating e may yield a budget-carrying
// context.
func (a *budgetAnalysis) carriesBudget(e ast.Expr, f budgetFact) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := a.pass.Info.ObjectOf(e)
		return obj != nil && f[obj]
	case *ast.CallExpr:
		if name, ok := a.isContextCall(e, "WithTimeout", "WithDeadline", "WithCancel", "WithValue", "Background", "TODO"); ok {
			switch name {
			case "WithTimeout", "WithDeadline":
				return true
			case "WithCancel", "WithValue":
				return len(e.Args) > 0 && a.carriesBudget(e.Args[0], f)
			default: // Background, TODO
				return false
			}
		}
		// An unknown call (a helper wrapping a context): assume the result
		// keeps whatever budget flowed in.
		for _, arg := range e.Args {
			if a.carriesBudget(arg, f) {
				return true
			}
		}
	}
	return false
}

// --- reporting ---

// scan inspects one CFG node for violations with fact before holding. A
// RangeStmt node carries its whole body (already covered by other blocks)
// and function literals run later under their own analysis, so both are
// pruned.
func (a *budgetAnalysis) scan(n ast.Node, before budgetFact) {
	root := n
	switch n := n.(type) {
	case *flow.ExitMark:
		return // synthetic node; ast.Walk cannot visit it
	case *ast.RangeStmt:
		root = n.X
	}
	if root == nil {
		return
	}
	// Background()/TODO() as the parent of a context.With* derivation is a
	// legitimate root-budget mint, not laundering.
	exempt := map[*ast.CallExpr]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, ok := a.isContextCall(call, "WithTimeout", "WithDeadline", "WithCancel", "WithValue"); ok && len(call.Args) > 0 {
			if parent, ok := ast.Unparen(call.Args[0]).(*ast.CallExpr); ok {
				exempt[parent] = true
			}
		}
		return true
	})
	ast.Inspect(root, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		a.checkCall(call, before, exempt)
		return true
	})
}

func (a *budgetAnalysis) checkCall(call *ast.CallExpr, before budgetFact, exempt map[*ast.CallExpr]bool) {
	if name, ok := a.isContextCall(call, "Background", "TODO"); ok {
		if len(a.ctxParams) > 0 {
			a.rep(call.Pos(), "%s already receives a context; context.%s() discards the caller's deadline budget (derive from the ctx parameter instead)",
				a.fnName, name)
			return
		}
		if exempt[call] {
			return
		}
		if live := a.liveBudget(before); live != "" {
			a.rep(call.Pos(), "context.%s() passed along while budget context %q is live; pass %q so the deadline propagates",
				name, live, live)
		}
		return
	}
	a.checkSibling(call, before)
}

// checkSibling reports calls to budget-less methods whose receiver offers a
// Context-suffixed variant while a budget is live.
func (a *budgetAnalysis) checkSibling(call *ast.CallExpr, before budgetFact) {
	live := a.liveBudget(before)
	if live == "" {
		return
	}
	fn := calleeFunc(a.pass.Info, call)
	if fn == nil || fn.Pkg() == nil || !inDagger(fn) {
		return
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return // already budget-aware
		}
	}
	sibling := fn.Name() + "Context"
	obj, _, _ := types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), sibling)
	if m, ok := obj.(*types.Func); !ok || m == nil {
		return
	}
	a.rep(call.Pos(), "%s drops the deadline budget carried by %q; use %s so downstream tiers can shed expired work",
		fn.Name(), live, sibling)
}

// liveBudget returns the lexicographically first live budget variable's
// name, or "" when none is live (deterministic across map iteration).
func (a *budgetAnalysis) liveBudget(f budgetFact) string {
	names := make([]string, 0, len(f))
	for obj := range f {
		names = append(names, obj.Name())
	}
	if len(names) == 0 {
		return ""
	}
	sort.Strings(names)
	return names[0]
}

func (a *budgetAnalysis) Join(x, y budgetFact) budgetFact {
	out := make(budgetFact, len(x)+len(y))
	for k := range x {
		out[k] = true
	}
	for k := range y {
		out[k] = true
	}
	return out
}

func (a *budgetAnalysis) Equal(x, y budgetFact) bool {
	if len(x) != len(y) {
		return false
	}
	for k := range x {
		if !y[k] {
			return false
		}
	}
	return true
}
