package flow

import (
	"bytes"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"strings"
	"testing"
)

// buildFunc parses body as the body of a function and returns its CFG.
func buildFunc(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	return New(fn.Body)
}

// render returns a compact one-line rendering of node n.
func render(n ast.Node) string {
	if _, ok := n.(*ExitMark); ok {
		return "<exit>"
	}
	// A range head node is the whole *ast.RangeStmt; render only its header
	// so body statements don't alias into the head block.
	if r, ok := n.(*ast.RangeStmt); ok {
		return "range " + render(r.X)
	}
	var buf bytes.Buffer
	printer.Fprint(&buf, token.NewFileSet(), n)
	return strings.Join(strings.Fields(buf.String()), " ")
}

// blockWith returns the unique block containing a node whose rendering
// contains substr.
func blockWith(t *testing.T, g *Graph, substr string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(render(n), substr) {
				if found != nil && found != b {
					t.Fatalf("node %q appears in blocks %d and %d", substr, found.Index, b.Index)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q", substr)
	}
	return found
}

// reachable returns the set of blocks reachable from b (including b).
func reachable(b *Block) map[*Block]bool {
	seen := map[*Block]bool{b: true}
	stack := []*Block{b}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range cur.Succs {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}

func hasSucc(b, target *Block) bool {
	for _, s := range b.Succs {
		if s == target {
			return true
		}
	}
	return false
}

func TestIfElse(t *testing.T) {
	g := buildFunc(t, `
		if cond() {
			a()
		} else {
			b()
		}
		fin()
	`)
	cond := blockWith(t, g, "cond()")
	aB := blockWith(t, g, "a()")
	bB := blockWith(t, g, "b()")
	dB := blockWith(t, g, "fin()")
	if !hasSucc(cond, aB) || !hasSucc(cond, bB) {
		t.Errorf("cond block %d should branch to a (%d) and b (%d); succs %v", cond.Index, aB.Index, bB.Index, cond.Succs)
	}
	if !hasSucc(aB, dB) || !hasSucc(bB, dB) {
		t.Errorf("both arms should rejoin at fin()")
	}
	if !reachable(g.Entry)[g.Exit] {
		t.Errorf("exit unreachable")
	}
}

func TestIfWithoutElse(t *testing.T) {
	g := buildFunc(t, `
		if cond() {
			a()
		}
		fin()
	`)
	cond := blockWith(t, g, "cond()")
	dB := blockWith(t, g, "fin()")
	if !hasSucc(cond, dB) {
		t.Errorf("if without else must have a fall-through edge from the condition to fin()")
	}
}

func TestForLoop(t *testing.T) {
	g := buildFunc(t, `
		for i := 0; i < n; i++ {
			body()
		}
		after()
	`)
	cond := blockWith(t, g, "i < n")
	body := blockWith(t, g, "body()")
	post := blockWith(t, g, "i++")
	after := blockWith(t, g, "after()")
	if !hasSucc(cond, body) || !hasSucc(cond, after) {
		t.Errorf("loop head must branch into the body and out to after()")
	}
	if !hasSucc(body, post) {
		t.Errorf("body must flow to the post statement")
	}
	if !hasSucc(post, cond) {
		t.Errorf("post statement must close the back edge to the condition")
	}
}

func TestForWithoutCond(t *testing.T) {
	g := buildFunc(t, `
		for {
			if done() {
				break
			}
		}
		after()
	`)
	after := blockWith(t, g, "after()")
	brk := blockWith(t, g, "break")
	if !hasSucc(brk, after) {
		t.Errorf("break must edge to after()")
	}
	// `for {}` has no condition exit: after() is reachable only via break.
	if len(after.Preds) != 1 || after.Preds[0] != brk {
		t.Errorf("after() should be reached only through break; preds %v", after.Preds)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	g := buildFunc(t, `
		switch tag() {
		case 1:
			a()
		case 2:
			b()
			fallthrough
		case 3:
			c()
		default:
			d()
		}
		e()
	`)
	head := blockWith(t, g, "tag()")
	aB := blockWith(t, g, "a()")
	cB := blockWith(t, g, "c()")
	eB := blockWith(t, g, "e()")
	fall := blockWith(t, g, "fallthrough")
	if len(head.Succs) != 4 {
		t.Errorf("switch with a default must branch only into its 4 clauses; succs %v", head.Succs)
	}
	if !hasSucc(fall, cB) {
		t.Errorf("fallthrough must edge into the next case body")
	}
	if !hasSucc(aB, eB) {
		t.Errorf("case bodies must flow to the statement after the switch")
	}
}

func TestSwitchNoDefault(t *testing.T) {
	g := buildFunc(t, `
		switch tag() {
		case 1:
			a()
		}
		e()
	`)
	head := blockWith(t, g, "tag()")
	eB := blockWith(t, g, "e()")
	if !hasSucc(head, eB) {
		t.Errorf("switch without default must have a no-match edge to e()")
	}
}

func TestDeferReplay(t *testing.T) {
	g := buildFunc(t, `
		defer a()
		defer b()
		c()
	`)
	if len(g.Defers) != 2 {
		t.Fatalf("want 2 recorded defers, got %d", len(g.Defers))
	}
	exit := g.Exit.Nodes
	if len(exit) != 3 {
		t.Fatalf("exit block should replay 2 defers plus the mark; got %d nodes", len(exit))
	}
	if !strings.Contains(render(exit[0]), "b()") || !strings.Contains(render(exit[1]), "a()") {
		t.Errorf("defers must replay LIFO: got %q then %q", render(exit[0]), render(exit[1]))
	}
	if _, ok := exit[2].(*ExitMark); !ok {
		t.Errorf("exit block must end with ExitMark, got %T", exit[2])
	}
}

func TestLabeledBreak(t *testing.T) {
	g := buildFunc(t, `
	outer:
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if p(i, j) {
					break outer
				}
			}
		}
		done()
	`)
	brk := blockWith(t, g, "break outer")
	done := blockWith(t, g, "done()")
	if !hasSucc(brk, done) {
		t.Errorf("break outer must jump past both loops to done(); succs %v", brk.Succs)
	}
	inner := blockWith(t, g, "j < 3")
	if hasSucc(brk, inner) {
		t.Errorf("break outer must not fall back into the inner loop")
	}
}

func TestLabeledContinue(t *testing.T) {
	g := buildFunc(t, `
	outer:
		for range rows {
			for range cols {
				if skip() {
					continue outer
				}
				visit()
			}
		}
	`)
	cont := blockWith(t, g, "continue outer")
	outerHead := blockWith(t, g, "range rows")
	if !hasSucc(cont, outerHead) {
		t.Errorf("continue outer must edge to the outer range head")
	}
}

func TestPanicTerminatesPath(t *testing.T) {
	g := buildFunc(t, `
		if bad() {
			panic("boom")
		}
		ok()
	`)
	pan := blockWith(t, g, `panic("boom")`)
	if len(pan.Succs) != 0 {
		t.Errorf("a panicking block must have no successors; got %v", pan.Succs)
	}
	if !reachable(g.Entry)[g.Exit] {
		t.Errorf("the non-panicking path must still reach exit")
	}
}

func TestAllPathsPanic(t *testing.T) {
	g := buildFunc(t, `panic("always")`)
	if reachable(g.Entry)[g.Exit] {
		t.Errorf("exit must be unreachable when every path panics")
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	g := buildFunc(t, `
		if early() {
			return
		}
		work()
	`)
	ret := blockWith(t, g, "return")
	if !hasSucc(ret, g.Exit) {
		t.Errorf("return must edge to the exit block")
	}
	work := blockWith(t, g, "work()")
	if hasSucc(ret, work) {
		t.Errorf("return must not fall through to work()")
	}
}

func TestTypeSwitchAndSelect(t *testing.T) {
	g := buildFunc(t, `
		switch v := x.(type) {
		case int:
			useInt(v)
		case string:
			useString(v)
		}
		select {
		case <-ch:
			got()
		default:
			idle()
		}
		end()
	`)
	for _, want := range []string{"useInt(v)", "useString(v)", "got()", "idle()", "end()"} {
		b := blockWith(t, g, want)
		if !reachable(g.Entry)[b] {
			t.Errorf("%s unreachable", want)
		}
	}
	if !reachable(g.Entry)[g.Exit] {
		t.Errorf("exit unreachable")
	}
}

// assignedVars is a simple monotone lattice (set of assigned variable names)
// used to prove the worklist converges on loops.
type assignedVars struct{}

func (assignedVars) Entry() map[string]bool { return nil }

func (assignedVars) Transfer(n ast.Node, in map[string]bool) map[string]bool {
	assign, ok := n.(*ast.AssignStmt)
	if !ok {
		return in
	}
	out := make(map[string]bool, len(in)+1)
	for k := range in {
		out[k] = true
	}
	for _, lhs := range assign.Lhs {
		if id, ok := lhs.(*ast.Ident); ok {
			out[id.Name] = true
		}
	}
	return out
}

func (assignedVars) Join(a, b map[string]bool) map[string]bool {
	out := make(map[string]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}

func (assignedVars) Equal(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func TestLatticeConvergesOnLoops(t *testing.T) {
	g := buildFunc(t, `
		x := 0
		for i := 0; i < n; i++ {
			if odd(i) {
				y := 1
				use(y)
			} else {
				z := 2
				use(z)
			}
			x = x + 1
		}
		use(x)
	`)
	r := Forward[map[string]bool](g, assignedVars{})
	if !r.Converged {
		t.Fatalf("worklist failed to converge on a monotone lattice")
	}
	exit, ok := r.ExitFact()
	if !ok {
		t.Fatalf("exit unreachable")
	}
	for _, v := range []string{"x", "i", "y", "z"} {
		if !exit[v] {
			t.Errorf("exit fact missing %q (loop facts must merge across iterations); got %v", v, exit)
		}
	}
}

// brokenLattice never reports facts equal, simulating a non-converging
// analysis: the solver's safety valve must stop it.
type brokenLattice struct{}

func (brokenLattice) Entry() int                      { return 0 }
func (brokenLattice) Transfer(n ast.Node, in int) int { return in + 1 }
func (brokenLattice) Join(a, b int) int               { return a + b }
func (brokenLattice) Equal(a, b int) bool             { return false }

func TestSafetyValveOnBrokenLattice(t *testing.T) {
	g := buildFunc(t, `
		for {
			if done() {
				break
			}
			spin()
		}
	`)
	r := Forward[int](g, brokenLattice{})
	if r.Converged {
		t.Errorf("a lattice with Equal()==false everywhere must trip the safety valve")
	}
}

func TestVisitSeesBeforeFacts(t *testing.T) {
	g := buildFunc(t, `
		x := 1
		use(x)
	`)
	r := Forward[map[string]bool](g, assignedVars{})
	sawUse := false
	r.Visit(func(n ast.Node, before map[string]bool) {
		if strings.Contains(render(n), "use(x)") {
			sawUse = true
			if !before["x"] {
				t.Errorf("fact before use(x) must include x; got %v", before)
			}
		}
	})
	if !sawUse {
		t.Errorf("Visit never reached use(x)")
	}
}
