// Package flow is a small, stdlib-only control-flow and dataflow engine for
// Go function bodies: CFG construction over go/ast plus a forward worklist
// solver with a pluggable lattice (dataflow.go). It exists so daggervet's
// flow-sensitive analyzers — bufownership, budgetflow, shedcheck — can reason
// about branches, loops, and early returns instead of pattern-matching
// statements, the way go/analysis-based ownership and lock-discipline
// verifiers do, while staying free of module downloads.
//
// The CFG is statement-granular: each Block holds the ast.Nodes that execute
// in order when the block runs (statements, plus branch conditions and
// switch/select guards, which appear as expression nodes in the block that
// evaluates them). Edges follow Go control flow: if/else, for/range loops
// with labeled break and continue, switch/type-switch with fallthrough,
// select, goto, and return. A panic() call terminates its path without
// reaching Exit, so exit-path analyses (leak checking) do not fire on
// panicking paths.
//
// Deferred calls run at function exit: each *ast.DeferStmt appears once in
// the block where it is evaluated (so analyses can register it) and again,
// in LIFO order, in the Exit block (so transfer functions can apply the
// deferred call's effect where it actually happens). The synthetic ExitMark
// node closes the Exit block and marks the single point that every
// non-panicking path reaches after defers have run.
package flow

import (
	"go/ast"
	"go/token"
)

// A Block is one straight-line run of nodes with no internal control
// transfer. Execution enters at Nodes[0] and leaves to one of Succs.
type Block struct {
	// Index is the block's position in Graph.Blocks (creation order; the
	// entry block is always index 0).
	Index int
	// Nodes are the statements and guard expressions executed by this block,
	// in order.
	Nodes []ast.Node
	// Succs are the possible successor blocks.
	Succs []*Block
	// Preds are the predecessor blocks (the reverse of Succs).
	Preds []*Block
}

// A Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters at the top of the body.
	Entry *Block
	// Exit is the synthetic block every non-panicking path reaches. Its
	// Nodes replay the function's defers in LIFO order, closed by an
	// *ExitMark.
	Exit *Block
	// Blocks lists every block, indexed by Block.Index.
	Blocks []*Block
	// Defers lists the defer statements in evaluation (encounter) order.
	Defers []*ast.DeferStmt
}

// ExitMark is the synthetic node closing the Exit block: the single point a
// fall-through or return path reaches after deferred calls have run. It
// implements ast.Node so analyses can anchor exit-time diagnostics.
type ExitMark struct {
	// Rbrace is the closing brace of the function body.
	Rbrace token.Pos
}

// Pos implements ast.Node.
func (m *ExitMark) Pos() token.Pos { return m.Rbrace }

// End implements ast.Node.
func (m *ExitMark) End() token.Pos { return m.Rbrace + 1 }

// loopFrame is one enclosing breakable/continuable construct.
type loopFrame struct {
	label     string // "" for unlabeled
	breakTo   *Block
	contTo    *Block // nil for switch/select frames (continue skips them)
	isLoop    bool
	savedFall *Block // fallthrough target active outside this frame
}

type pendingGoto struct {
	from  *Block
	label string
}

type builder struct {
	g     *Graph
	cur   *Block // nil after a terminator: following code is unreachable
	next  string // pending label naming the next loop/switch/select
	fall  *Block // fallthrough target inside a switch clause
	loops []loopFrame
	label map[string]*Block // label -> block the labeled statement starts
	gotos []pendingGoto
}

// New builds the control-flow graph of body. body must be non-nil (a
// function with no body has no flow to analyze).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{g: &Graph{}, label: make(map[string]*Block)}
	b.cur = b.newBlock()
	b.g.Entry = b.cur
	b.g.Exit = b.newBlock()
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	for _, pg := range b.gotos {
		if to := b.label[pg.label]; to != nil {
			b.edge(pg.from, to)
		}
	}
	// The Exit block replays defers in LIFO order, then the exit mark.
	for i := len(b.g.Defers) - 1; i >= 0; i-- {
		b.g.Exit.Nodes = append(b.g.Exit.Nodes, b.g.Defers[i])
	}
	b.g.Exit.Nodes = append(b.g.Exit.Nodes, &ExitMark{Rbrace: body.Rbrace})
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
}

// current returns the block receiving the next node, starting a fresh
// predecessor-less block for statically unreachable code.
func (b *builder) current() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *builder) add(n ast.Node) {
	blk := b.current()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for a loop/switch/select statement.
func (b *builder) takeLabel() string {
	l := b.next
	b.next = ""
	return l
}

func (b *builder) push(f loopFrame) {
	f.savedFall = b.fall
	b.fall = nil
	b.loops = append(b.loops, f)
}

func (b *builder) pop() {
	b.fall = b.loops[len(b.loops)-1].savedFall
	b.loops = b.loops[:len(b.loops)-1]
}

// find locates the innermost frame matching label (continue requires a loop
// frame; break accepts any).
func (b *builder) find(label string, needLoop bool) *loopFrame {
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := &b.loops[i]
		if needLoop && !f.isLoop {
			continue
		}
		if label == "" || f.label == label {
			return f
		}
	}
	return nil
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.EmptyStmt:

	case *ast.LabeledStmt:
		// Start a fresh block so goto (and labeled loop back-edges) have a
		// well-defined target.
		target := b.newBlock()
		if b.cur != nil {
			b.edge(b.cur, target)
		}
		b.cur = target
		b.label[s.Label.Name] = target
		b.next = s.Label.Name
		b.stmt(s.Stmt)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil // the path ends here, short of Exit
		}

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.current(), b.g.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.add(s)
		label := ""
		if s.Label != nil {
			label = s.Label.Name
		}
		switch s.Tok {
		case token.BREAK:
			if f := b.find(label, false); f != nil {
				b.edge(b.current(), f.breakTo)
			}
			b.cur = nil
		case token.CONTINUE:
			if f := b.find(label, true); f != nil {
				b.edge(b.current(), f.contTo)
			}
			b.cur = nil
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: b.current(), label: label})
			b.cur = nil
		case token.FALLTHROUGH:
			if b.fall != nil {
				b.edge(b.current(), b.fall)
			}
			b.cur = nil
		}

	case *ast.DeferStmt:
		b.add(s)
		b.g.Defers = append(b.g.Defers, s)

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		head := b.current()
		after := b.newBlock()
		thenB := b.newBlock()
		b.edge(head, thenB)
		b.cur = thenB
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(head, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		} else {
			b.edge(head, after)
		}
		b.cur = after

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.current(), head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		cont := head
		if s.Post != nil {
			cont = b.newBlock()
			cont.Nodes = append(cont.Nodes, s.Post)
			b.edge(cont, head)
		}
		if label != "" {
			b.label[label] = head
		}
		if s.Cond != nil {
			b.edge(head, after)
		}
		body := b.newBlock()
		b.edge(head, body)
		b.push(loopFrame{label: label, breakTo: after, contTo: cont, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, cont)
		}
		b.pop()
		b.cur = after

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock()
		b.edge(b.current(), head)
		head.Nodes = append(head.Nodes, s)
		if label != "" {
			b.label[label] = head
		}
		after := b.newBlock()
		b.edge(head, after) // ranges may be empty
		body := b.newBlock()
		b.edge(head, body)
		b.push(loopFrame{label: label, breakTo: after, contTo: head, isLoop: true})
		b.cur = body
		b.stmtList(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.pop()
		b.cur = after

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, s.Body.List, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.caseClauses(label, s.Body.List, s.Assign)

	case *ast.SelectStmt:
		label := b.takeLabel()
		head := b.current()
		after := b.newBlock()
		hasDefault := false
		b.push(loopFrame{label: label, breakTo: after})
		for _, c := range s.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok {
				continue
			}
			clause := b.newBlock()
			b.edge(head, clause)
			b.cur = clause
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			} else {
				hasDefault = true
			}
			b.stmtList(cc.Body)
			if b.cur != nil {
				b.edge(b.cur, after)
			}
		}
		b.pop()
		// Without a default the select blocks until some case runs, so
		// control cannot skip every clause; select{} never proceeds at all.
		_ = hasDefault
		if len(s.Body.List) == 0 {
			b.cur = nil
			return
		}
		b.cur = after

	default:
		// Assignments, declarations, sends, go statements, inc/dec: one
		// straight-line node. Function literals inside them are separate
		// functions with their own graphs.
		b.add(s)
	}
}

// caseClauses builds the shared switch/type-switch shape. assign, when
// non-nil, is the type-switch binding statement, evaluated in the head.
func (b *builder) caseClauses(label string, clauses []ast.Stmt, assign ast.Stmt) {
	if assign != nil {
		b.add(assign)
	}
	head := b.current()
	after := b.newBlock()
	if label != "" {
		b.label[label] = head
	}
	// Pre-create clause blocks so fallthrough can target the next clause.
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, c := range clauses {
		blocks[i] = b.newBlock()
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			hasDefault = true
		}
	}
	b.push(loopFrame{label: label, breakTo: after})
	for i, c := range clauses {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		b.edge(head, blocks[i])
		b.cur = blocks[i]
		for _, e := range cc.List {
			b.add(e)
		}
		if i+1 < len(blocks) {
			b.fall = blocks[i+1]
		} else {
			b.fall = nil
		}
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.pop()
	if !hasDefault {
		b.edge(head, after)
	}
	b.cur = after
}

// isPanicCall reports whether e is a call to the predeclared panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
