package flow

import "go/ast"

// Analysis defines one forward dataflow problem over a Graph. The fact type
// F is the lattice element; Join must be a sound upper bound (typically set
// union / pointwise max) so the worklist converges on loops.
//
// Transfer must treat its input fact as immutable and return a fresh (or
// unchanged) value: facts are shared across blocks by the solver.
type Analysis[F any] interface {
	// Entry returns the fact holding at function entry.
	Entry() F
	// Transfer returns the fact after node n executes with fact in holding.
	Transfer(n ast.Node, in F) F
	// Join combines facts from two predecessors.
	Join(a, b F) F
	// Equal reports whether two facts are the same lattice element; the
	// solver stops propagating along an edge when the joined input stops
	// changing.
	Equal(a, b F) bool
}

// Result holds a solved forward dataflow problem.
type Result[F any] struct {
	// In maps each reached block to the fact holding before its first node.
	In map[*Block]F
	// Converged is false only if the solver hit its iteration cap, which
	// indicates a lattice whose Join/Equal do not form a finite-height
	// ascending chain. Analyzers should treat !Converged as "no findings"
	// rather than report from a half-solved state.
	Converged bool

	g *Graph
	a Analysis[F]
}

// Forward solves the dataflow problem a over g with a standard worklist
// iteration and returns the per-block input facts. Blocks never reached from
// Entry (statically dead code) have no entry in Result.In.
func Forward[F any](g *Graph, a Analysis[F]) *Result[F] {
	r := &Result[F]{In: make(map[*Block]F), g: g, a: a}
	r.In[g.Entry] = a.Entry()
	work := []*Block{g.Entry}
	queued := make([]bool, len(g.Blocks))
	queued[g.Entry.Index] = true

	// Safety valve: a well-formed lattice converges in O(blocks * height)
	// steps; the cap only trips on a broken Join/Equal pair.
	maxSteps := 64*len(g.Blocks) + 256
	steps := 0
	for len(work) > 0 {
		if steps++; steps > maxSteps {
			r.Converged = false
			return r
		}
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		out := r.In[b]
		for _, n := range b.Nodes {
			out = a.Transfer(n, out)
		}
		for _, s := range b.Succs {
			prev, reached := r.In[s]
			next := out
			if reached {
				next = a.Join(prev, out)
			}
			if reached && a.Equal(prev, next) {
				continue
			}
			r.In[s] = next
			if !queued[s.Index] {
				queued[s.Index] = true
				work = append(work, s)
			}
		}
	}
	r.Converged = true
	return r
}

// Visit replays the solved facts over every reached block in index order,
// calling visit(n, before) with the fact holding immediately before each
// node executes. Analyzers report diagnostics from inside visit, where both
// the syntax and the abstract state are in hand.
func (r *Result[F]) Visit(visit func(n ast.Node, before F)) {
	for _, b := range r.g.Blocks {
		in, reached := r.In[b]
		if !reached {
			continue
		}
		fact := in
		for _, n := range b.Nodes {
			visit(n, fact)
			fact = r.a.Transfer(n, fact)
		}
	}
}

// ExitFact returns the fact holding at the start of the Exit block and
// whether any path reaches it (a function whose every path panics or blocks
// forever has no exit fact).
func (r *Result[F]) ExitFact() (F, bool) {
	f, ok := r.In[r.g.Exit]
	return f, ok
}
