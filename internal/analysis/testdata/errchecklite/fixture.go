// Package fixture seeds violations for the errchecklite analyzer. It is
// loaded by the test harness as if it lived under dagger/internal/transport.
package fixture

import (
	"bytes"
	"fmt"
	"os"
)

type conn struct{}

func (c *conn) Send(b []byte) error        { return nil }
func (c *conn) Close() error               { return nil }
func (c *conn) Stats() (sent, dropped int) { return 0, 0 }
func (c *conn) Read(b []byte) (int, error) { return 0, nil }
func notify(ch chan<- struct{})            { ch <- struct{}{} }

func dropped(c *conn, b []byte) {
	c.Send(b)     // want `Send returns an error that is silently dropped`
	c.Read(b)     // want `Read returns an error that is silently dropped`
	_ = c.Close() // explicit blank assignment documents intent
}

func handled(c *conn, b []byte) error {
	if err := c.Send(b); err != nil {
		return err
	}
	return c.Close()
}

func noErrorResultOK(c *conn, ch chan<- struct{}) {
	c.Stats()  // no error result
	notify(ch) // no results at all
}

func bufferOK(buf *bytes.Buffer, b []byte) {
	buf.Write(b)     // bytes.Buffer cannot fail
	buf.WriteByte(1) // bytes.Buffer cannot fail
}

func suppressed(c *conn, b []byte) {
	c.Send(b) //daggervet:ignore=errchecklite
}

func stdoutPrintersOK(n int) {
	fmt.Println("progress:", n) // stdout printers are ceremonial
	fmt.Printf("progress: %d\n", n)
	fmt.Print(n)
	fmt.Fprintf(os.Stdout, "n=%d\n", n) // want `Fprintf returns an error that is silently dropped`
}
