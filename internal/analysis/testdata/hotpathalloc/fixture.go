// Package fixture seeds violations for the hotpathalloc analyzer. It is
// loaded by the test harness as if it lived under dagger/internal/wire.
package fixture

import (
	"errors"
	"fmt"
)

type kind int

// String methods are diagnostic-path by convention and exempt.
func (k kind) String() string { return fmt.Sprintf("kind(%d)", int(k)) }

func format(n int) string {
	return fmt.Sprintf("n=%d", n) // want `fmt\.Sprintf allocates on the hot path`
}

func sprintToo(n int) string {
	return fmt.Sprint(n) // want `fmt\.Sprint allocates on the hot path`
}

func coldPanic(n int) {
	if n < 0 {
		panic(fmt.Sprintf("bad n: %d", n)) // panic messages are cold
	}
}

func coldError(b []byte) error {
	if len(b) == 0 {
		return errors.New(string(b)) // error construction is cold
	}
	return fmt.Errorf("trailing %q", string(b))
}

// ---- constant fmt.Errorf → package-level sentinel ----

// errEmpty is the shape the analyzer pushes toward: one allocation at
// init, comparable with errors.Is, free on the hot path.
var errEmpty = errors.New("fixture: empty buffer")

func constErrorf(b []byte) error {
	if len(b) == 0 {
		return fmt.Errorf("fixture: empty buffer") // want `constant fmt\.Errorf allocates per call`
	}
	return nil
}

func sentinelOK(b []byte) error {
	if len(b) == 0 {
		return errEmpty
	}
	return nil
}

func wrapOK(err error) error {
	return fmt.Errorf("fixture: inner failed: %w", err) // dynamic wrapping is exempt
}

func dynamicMessageOK(msg string) error {
	return fmt.Errorf(msg) // non-constant message cannot be a sentinel
}

func convert(b []byte) string {
	return string(b) // want `\[\]byte→string conversion allocates`
}

func mapKeyOK(m map[string]int, b []byte) int {
	return m[string(b)] // compiler-optimized, no allocation
}

func compareOK(a, b []byte) bool {
	return string(a) == string(b) // compiler-optimized, no allocation
}

func growLoop(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x*2) // want `append to out grows an un-preallocated slice`
	}
	return out
}

func growLiteralLoop(xs []int) []int {
	out := []int{}
	for _, x := range xs {
		out = append(out, x) // want `append to out grows an un-preallocated slice`
	}
	return out
}

func growPreallocOK(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x*2)
	}
	return out
}

func appendOnceOK(xs []int, x int) []int {
	var out []int
	out = append(out, x) // not in a loop
	out = append(out, xs...)
	return out
}
