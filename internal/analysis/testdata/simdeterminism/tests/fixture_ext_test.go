// External test package: loaded separately via Loader.LoadXTest under the
// synthetic <path>/xtest import path, which keeps it inside the analyzer's
// scope.
package fixture_test

import (
	"math/rand"
	"testing"
	"time"
)

func TestExternalSeededIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if rng.Intn(10) > 10 {
		t.Fatal("unreachable")
	}
}

func TestExternalUnseededIsFlagged(t *testing.T) {
	_ = time.Now()          // want `time\.Now reads the wall clock`
	if rand.Intn(10) > 10 { // want `rand\.Intn draws from the global math/rand source`
		t.Fatal("unreachable")
	}
}
