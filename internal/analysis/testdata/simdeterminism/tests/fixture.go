// Package fixture anchors the test-file fixtures: the interesting cases
// live in fixture_test.go (in-package) and fixture_ext_test.go (external
// test package), which the loader only reaches with IncludeTests/LoadXTest.
package fixture

// Tick is a benign production declaration; the production side of this
// fixture is deliberately clean so every diagnostic comes from a test file.
func Tick(now int64) int64 { return now + 1 }
