package fixture

import (
	"math/rand"
	"testing"
	"time"
)

// A seeded test is the approved pattern: explicit source, reproducible runs.
func TestSeededIsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	if Tick(int64(rng.Intn(10))) == 0 {
		t.Fatal("unreachable")
	}
	// Constructing times is fine; only reading the clock is not.
	_ = time.Unix(42, 0)
}

// An unseeded test hides determinism regressions behind run-to-run noise.
func TestUnseededIsFlagged(t *testing.T) {
	_ = rand.Intn(10) // want `rand\.Intn draws from the global math/rand source`
	_ = time.Now()    // want `time\.Now reads the wall clock`
	time.Sleep(0)     // want `time\.Sleep reads the wall clock`
	// Map iteration order in a test file is waived: it cannot leak into
	// simulated results, so no diagnostic here.
	for k, v := range map[int]int{1: 2} {
		if Tick(int64(k)) == int64(v) {
			t.Log("match")
		}
	}
}
