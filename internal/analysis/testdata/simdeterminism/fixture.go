// Package fixture seeds violations for the simdeterminism analyzer. It is
// loaded by the test harness as if it lived under dagger/internal/sim.
package fixture

import (
	"math/rand"
	"time"
)

func wallClock() time.Duration {
	t0 := time.Now()             // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(t0)        // want `time\.Since reads the wall clock`
}

func timers(f func()) {
	<-time.After(time.Second)      // want `time\.After reads the wall clock`
	time.AfterFunc(time.Second, f) // want `time\.AfterFunc reads the wall clock`
}

func globalRand() (int, float64) {
	n := rand.Intn(10)                 // want `rand\.Intn draws from the global math/rand source`
	f := rand.Float64()                // want `rand\.Float64 draws from the global math/rand source`
	rand.Shuffle(n, func(i, j int) {}) // want `rand\.Shuffle draws from the global math/rand source`
	return n, f
}

func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed)) // seeded constructors are the fix, not a violation
	return rng.Intn(10)
}

func mapOrderFloat(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

func mapOrderUse(m map[string]int, emit func(string)) {
	for k := range m { // want `map iteration order is randomized`
		emit(k)
	}
}

func mapOrderIntSum(m map[string]int) int {
	sum := 0
	for _, v := range m { // integer accumulation is order-invariant
		sum += v
	}
	return sum
}

func mapOrderCount(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func mapOrderCollect(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // collect-then-sort is the sanctioned pattern
		keys = append(keys, k)
	}
	return keys
}

func mapOrderSuppressed(m map[string]float64) float64 {
	best := 0.0
	//daggervet:ignore=simdeterminism
	for _, v := range m {
		if v > best {
			best = v
		}
	}
	return best
}
