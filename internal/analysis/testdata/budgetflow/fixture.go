// Package fixture exercises the budgetflow analyzer: contexts that carry a
// deadline budget (named ctx parameters, context.WithTimeout/WithDeadline
// derivations) must be threaded to downstream RPC calls rather than replaced
// by fresh root contexts.
package fixture

import (
	"context"
	"time"
)

// client mimics the RPC client shape: a budget-less method with a
// Context-suffixed sibling.
type client struct{}

func (client) Call(req []byte) ([]byte, error) { return req, nil }

func (client) CallContext(ctx context.Context, req []byte) ([]byte, error) {
	_ = ctx
	return req, nil
}

// Ping has no Context sibling, so calling it with a live budget is fine: no
// budget-carrying variant exists.
func (client) Ping() {}

func sink(ctx context.Context) { _ = ctx }

func freshCtx() context.Context { return context.TODO() }

// --- clean shapes ---

// entryTier mints root contexts freely: no context parameter, no live budget.
// This is where budgets are born.
func entryTier(c client) {
	_, _ = c.Call(nil)
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, _ = c.CallContext(ctx, nil)
}

// threaded passes the caller's budget along; nothing to report.
func threaded(ctx context.Context, c client) error {
	_, err := c.CallContext(ctx, nil)
	return err
}

// blankParam is a visible, deliberate opt-out at the signature: only named
// context parameters carry the obligation.
func blankParam(_ context.Context, c client) {
	_, _ = c.Call(nil)
}

// noSibling: a live budget plus a method with no Context variant is clean.
func noSibling(ctx context.Context, c client) {
	c.Ping()
	_, _ = c.CallContext(ctx, nil)
}

// flowSensitive: the budget is only live on the branch that threads it; the
// other path never sees a deadline, so its budget-less call is clean.
func flowSensitive(c client, shed bool) {
	if shed {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_, _ = c.CallContext(ctx, nil)
		return
	}
	_, _ = c.Call(nil)
}

// overwritten: once ctx is rebound to a budget-less context the obligation
// ends.
func overwritten(c client) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, _ = c.CallContext(ctx, nil)
	ctx = freshCtx()
	_, _ = c.Call(nil)
	sink(ctx)
}

// derived: WithCancel/WithValue inherit the parent's budget, and threading
// the derivation is as good as threading the original.
func derived(ctx context.Context, c client) {
	inner, cancel := context.WithCancel(ctx)
	defer cancel()
	_, _ = c.CallContext(inner, nil)
}

// reRoot: Background() as the parent of a context.With* derivation is a
// legitimate root-budget mint even while another budget is live — deadlines
// for unrelated work are allowed to start fresh.
func reRoot(c client) {
	ctx1, cancel1 := context.WithTimeout(context.Background(), time.Second)
	defer cancel1()
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Second)
	defer cancel2()
	_, _ = c.CallContext(ctx1, nil)
	_, _ = c.CallContext(ctx2, nil)
}

// loopThreaded: the budget stays live across iterations; threading it every
// time converges clean.
func loopThreaded(ctx context.Context, c client) {
	for i := 0; i < 3; i++ {
		_, _ = c.CallContext(ctx, nil)
	}
}

// --- violations ---

// launder receives a budget and mints a fresh root instead of deriving from
// it.
func launder(ctx context.Context, c client) error {
	fresh := context.Background() // want `launder already receives a context; context\.Background\(\) discards the caller's deadline budget \(derive from the ctx parameter instead\)`
	_, err := c.CallContext(fresh, nil)
	_ = ctx
	return err
}

// launderTODO: TODO() is the same laundering with a different name.
func launderTODO(ctx context.Context, c client) error {
	fresh := context.TODO() // want `launderTODO already receives a context; context\.TODO\(\) discards the caller's deadline budget \(derive from the ctx parameter instead\)`
	_, err := c.CallContext(fresh, nil)
	_ = ctx
	return err
}

// nakedBackground passes a root context along while a budget is live.
func nakedBackground(c client) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	sink(context.Background()) // want `context\.Background\(\) passed along while budget context "ctx" is live; pass "ctx" so the deadline propagates`
	_, _ = c.CallContext(ctx, nil)
}

// dropSibling calls the budget-less method while a budget is live and a
// Context-suffixed variant exists.
func dropSibling(ctx context.Context, c client) {
	_, _ = c.Call(nil) // want `Call drops the deadline budget carried by "ctx"; use CallContext so downstream tiers can shed expired work`
	sink(ctx)
}

// dropSiblingLocal: the live budget can also be a local derivation.
func dropSiblingLocal(c client) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, _ = c.Call(nil) // want `Call drops the deadline budget carried by "ctx"; use CallContext so downstream tiers can shed expired work`
	sink(ctx)
}

// launderInLiteral: function literals are analyzed on their own; a ctx
// parameter on the literal carries the same obligation.
func launderInLiteral(c client) func(context.Context) {
	return func(ctx context.Context) {
		fresh := context.Background() // want `func literal already receives a context; context\.Background\(\) discards the caller's deadline budget \(derive from the ctx parameter instead\)`
		_, _ = c.CallContext(fresh, nil)
		_ = ctx
	}
}
