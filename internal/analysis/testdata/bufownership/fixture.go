// Package fixture exercises the bufownership analyzer: pooled buffers must
// be released or handed off exactly once on every control-flow path.
package fixture

import "errors"

var errFail = errors.New("fail")

// pool mimics ringbuf.BufPool's shape: a dagger-internal Get(int) []byte
// source and Put([]byte) release.
type pool struct{}

func (pool) Get(n int) []byte { return make([]byte, n) }
func (pool) Put(b []byte)     {}

var p pool

// sink takes the buffer on every path.
//
// dagger:transfers-ownership b
func sink(b []byte) {
	p.Put(b)
}

// peek only reads the buffer; the caller keeps ownership.
//
// dagger:borrows
func peek(b []byte) int { return len(b) }

type msg struct{ Payload []byte }

// produce mints a pooled buffer into the Payload field of its result.
//
// dagger:yields-ownership Payload
func produce(n int) (msg, bool) {
	return msg{Payload: p.Get(n)}, true
}

func use(b []byte) {}

// --- clean shapes: no diagnostics ---

func releaseOK() {
	b := p.Get(64)
	p.Put(b)
}

func deferOK(c bool) error {
	b := p.Get(64)
	defer p.Put(b)
	if c {
		return errFail
	}
	return nil
}

func branchMergeOK(c bool) {
	b := p.Get(64)
	if c {
		p.Put(b)
	} else {
		sink(b)
	}
}

func borrowThenPutOK() {
	b := p.Get(16)
	n := peek(b)
	_ = n
	p.Put(b)
}

func escapeToUnknownOK() {
	b := p.Get(16)
	use(b)
}

type holder struct{ buf []byte }

func escapeToFieldOK(h *holder) {
	b := p.Get(64)
	h.buf = b
}

func goroutineCaptureOK() {
	b := p.Get(16)
	go func() { p.Put(b) }()
}

func loopOK(n int) {
	for i := 0; i < n; i++ {
		b := p.Get(32)
		p.Put(b)
	}
}

func yieldsOK() {
	m, _ := produce(8)
	p.Put(m.Payload)
}

// --- leaks ---

func leakOnErrPath(fail bool) error {
	b := p.Get(64)
	if fail {
		return errFail // want `pooled buffer obtained at line \d+ leaks`
	}
	p.Put(b)
	return nil
}

func leakPartialPut(c bool) {
	b := p.Get(64)
	if c {
		p.Put(b)
	}
} // want `pooled buffer obtained at line \d+ leaks`

func leakInLoop(n int) {
	for i := 0; i < n; i++ {
		b := p.Get(32)
		if b[0] == 0 {
			continue
		}
		p.Put(b)
	}
} // want `pooled buffer obtained at line \d+ leaks`

func leakAfterBorrow() int {
	b := p.Get(16)
	return peek(b) // want `pooled buffer obtained at line \d+ leaks`
}

func leakYields(c bool) {
	m, _ := produce(8)
	if c {
		return // want `pooled buffer obtained at line \d+ leaks`
	}
	p.Put(m.Payload)
}

// badSink promises to consume b but drops it on one path.
//
// dagger:transfers-ownership b
func badSink(b []byte, drop bool) {
	if drop {
		return // want `pooled buffer obtained at line \d+ leaks`
	}
	p.Put(b)
}

// --- double release / handoff misuse ---

func doubleRelease() {
	b := p.Get(64)
	p.Put(b)
	p.Put(b) // want `double release of b`
}

func releaseAfterHandoff() {
	b := p.Get(64)
	sink(b)
	p.Put(b) // want `release of b after ownership was handed off`
}

func doubleHandoff() {
	b := p.Get(64)
	sink(b)
	sink(b) // want `b handed to sink after ownership was already handed off`
}

// --- use after the buffer is gone ---

func useAfterRelease() byte {
	b := p.Get(64)
	p.Put(b)
	return b[0] // want `use of b after it was released to the pool`
}

func useAfterHandoff() byte {
	b := p.Get(64)
	sink(b)
	return b[0] // want `use of b after ownership was handed off`
}

func useAfterReleaseField() byte {
	m, _ := produce(8)
	p.Put(m.Payload)
	return m.Payload[0] // want `use of m\.Payload after it was released to the pool`
}

// --- discarded buffers ---

func discardedResult() {
	p.Get(64) // want `pooled buffer from Get is discarded`
}

func discardedBlank() {
	_ = p.Get(64) // want `pooled buffer assigned to _ is discarded`
}
