// Package fixture exercises the shedcheck analyzer's congestion-verdict
// matching: dataplane.Mark decides whether a queue admission must carry an
// ECN-style congestion stamp, and computing the verdict without acting on it
// leaves a congested queue that never tells its clients to back off. The
// fixture loads as dagger/internal/dataplane/fixture, so the local Mark
// matches the analyzer's dataplane-scoped name check.
package fixture

// Mark mimics the dataplane congestion policy entry point: a bool-returning
// mark decision over queue occupancy.
func Mark(depth, capacity int) bool { return capacity > 0 && 2*depth >= capacity }

// OccupancyHint mimics the hint quantizer that rides with a set mark.
func OccupancyHint(depth, capacity int) uint8 {
	if capacity <= 0 || depth <= 0 {
		return 0
	}
	if depth >= capacity {
		return 255
	}
	return uint8((255*depth + capacity/2) / capacity)
}

// Handler is the server's request-dispatch shape: calling a Handler value
// executes the request.
type Handler func(req []byte) []byte

// markSink stands in for stamping the verdict into a frame header.
var markSink bool

// --- clean shapes ---

// consultedInline stamps at admission exactly like the fabric and the
// nicmodel RX/TX paths: the verdict is the branch condition.
func consultedInline(depth, capacity int) uint8 {
	if Mark(depth, capacity) {
		return OccupancyHint(depth, capacity)
	}
	return 0
}

// boundThenStamped binds the verdict and consults it before anything else
// happens — the TX-table idiom.
func boundThenStamped(depth, capacity int) (hint uint8) {
	marked := Mark(depth, capacity)
	if marked {
		hint = OccupancyHint(depth, capacity)
	}
	return hint
}

// passedAlong hands the verdict to another component, which counts as
// consulting it.
func stamp(v bool) { markSink = v }

func passedAlong(depth, capacity int) {
	v := Mark(depth, capacity)
	stamp(v)
}

// --- violations ---

// discarded runs the mark policy as a bare statement: the queue measured its
// occupancy and then told nobody.
func discarded(depth, capacity int) {
	Mark(depth, capacity) // want `congestion verdict from Mark is discarded: the policy ran but nothing acts on it`
}

// discardedBlank assigns the verdict to _, the same discard.
func discardedBlank(depth, capacity int) {
	_ = Mark(depth, capacity) // want `congestion verdict from Mark is discarded: the policy ran but nothing acts on it`
}

// dispatchWhilePending executes the request before anyone looks at the mark:
// the congestion signal is computed but the frame ships unstamped.
func dispatchWhilePending(h Handler, depth, capacity int) []byte {
	marked := Mark(depth, capacity)
	out := h(nil) // want `request dispatched to handler while the congestion verdict from line \d+ is still unexamined`
	if marked {
		return nil
	}
	return out
}

// neverExamined computes the verdict and leaves the function without ever
// reading it.
func neverExamined(depth, capacity int) (marked bool) {
	marked = Mark(depth, capacity)
	return // want `congestion verdict computed at line \d+ is never examined`
}
