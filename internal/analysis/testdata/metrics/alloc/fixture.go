// Package fixture seeds hotpathalloc violations in metrics-flavored code.
// It is loaded by the test harness as if it lived under
// dagger/internal/metrics: counter increments and histogram observations sit
// on every substrate's data path, so a per-event allocation here shows up in
// every benchmark the registry instruments.
package fixture

import "fmt"

// counterKey formats a registry name per increment — the shape the analyzer
// exists to catch: hierarchical names must be built once at registration.
func counterKey(flow int) string {
	return fmt.Sprintf("thread.%d.processed", flow) // want `fmt\.Sprintf allocates on the hot path`
}

// observeLabel converts a wire tag per observation.
func observeLabel(tag []byte) string {
	return string(tag) // want `\[\]byte→string conversion allocates`
}

// collectNonZero grows an un-preallocated sample slice per snapshot.
func collectNonZero(counts []uint64) []uint64 {
	var out []uint64
	for _, c := range counts {
		if c > 0 {
			out = append(out, c) // want `append to out grows an un-preallocated slice`
		}
	}
	return out
}

// collectNonZeroOK is the fix: bucket counts bound the sample count, so the
// snapshot can preallocate.
func collectNonZeroOK(counts []uint64) []uint64 {
	out := make([]uint64, 0, len(counts))
	for _, c := range counts {
		if c > 0 {
			out = append(out, c)
		}
	}
	return out
}
