// Package fixture seeds simdeterminism violations in metrics-flavored code.
// It is loaded by the test harness as if it lived under
// dagger/internal/metrics: parity tests diff whole snapshots byte-for-byte
// across substrates, so a wall-clock stamp or an order-sensitive map walk in
// the registry would make identical runs produce different reports.
package fixture

import "time"

// stampSnapshot leaks real time into a snapshot, so two captures of the
// same counters never compare equal.
func stampSnapshot() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// sumByName folds registered values in randomized map order; float rounding
// makes the report order-dependent.
func sumByName(values map[string]float64) float64 {
	var sum float64
	for _, v := range values { // want `map iteration order is randomized`
		sum += v
	}
	return sum
}

// countRegisteredOK is order-invariant: integer counting commutes, so the
// randomized walk cannot leak into the snapshot.
func countRegisteredOK(values map[string]int64) int {
	n := 0
	for range values {
		n++
	}
	return n
}
