// Package fixture exercises the shedcheck analyzer: shed verdicts must be
// consulted — computing whether a request's budget expired and then
// dispatching (or dropping the answer) silently re-introduces the doomed
// work the policy exists to prevent.
package fixture

// ShouldShed mimics the dataplane policy entry point: a bool-returning
// verdict function.
func ShouldShed(budget, elapsed uint32) bool { return budget > 0 && elapsed > budget }

// ShedDecision mimics the functional substrate's wrapper.
func ShedDecision(received, execStart int64, budget uint32) bool {
	return ShouldShed(budget, uint32(execStart-received))
}

// Handler is the server's request-dispatch shape: calling a Handler value
// executes the request.
type Handler func(req []byte) []byte

// verdictSink stands in for storing a verdict somewhere another component
// reads it.
var verdictSink bool

// --- clean shapes ---

// consultedInline branches on the verdict directly; nothing is ever pending.
func consultedInline(h Handler, budget, elapsed uint32) []byte {
	if ShouldShed(budget, elapsed) {
		return nil
	}
	return h(nil)
}

// boundThenBranched consults the bound verdict before dispatching.
func boundThenBranched(h Handler, budget, elapsed uint32) []byte {
	drop := ShouldShed(budget, elapsed)
	if drop {
		return nil
	}
	return h(nil)
}

// consultedInSwitch mirrors the real server: the verdict is a switch case.
func consultedInSwitch(h Handler, received, execStart int64, budget uint32) []byte {
	switch {
	case ShedDecision(received, execStart, budget):
		return nil
	default:
		return h(nil)
	}
}

// passedAlong hands the verdict to another function, which counts as
// consulting it — someone downstream acts on it.
func record(v bool) { verdictSink = v }

func passedAlong(budget, elapsed uint32) {
	v := ShouldShed(budget, elapsed)
	record(v)
}

// --- violations ---

// discarded runs the policy as a bare statement: nothing can act on it.
func discarded(budget, elapsed uint32) {
	ShouldShed(budget, elapsed) // want `shed verdict from ShouldShed is discarded: the policy ran but nothing acts on it`
}

// discardedBlank assigns the verdict to _, which is the same discard.
func discardedBlank(received, execStart int64, budget uint32) {
	_ = ShedDecision(received, execStart, budget) // want `shed verdict from ShedDecision is discarded: the policy ran but nothing acts on it`
}

// dispatchWhilePending executes the request before anyone looks at the
// verdict: the shed policy ran for nothing.
func dispatchWhilePending(h Handler, budget, elapsed uint32) []byte {
	drop := ShouldShed(budget, elapsed)
	out := h(nil) // want `request dispatched to handler while the shed verdict from line \d+ is still unexamined`
	if drop {
		return nil
	}
	return out
}

// neverExamined computes the verdict and leaves the function without ever
// reading it.
func neverExamined(budget, elapsed uint32) (verdict bool) {
	verdict = ShouldShed(budget, elapsed)
	return // want `shed verdict computed at line \d+ is never examined`
}
