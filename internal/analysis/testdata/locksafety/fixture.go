// Package fixture seeds violations for the locksafety analyzer. It is
// loaded by the test harness as if it lived under dagger/internal/core.
package fixture

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

func byValueParam(mu sync.Mutex) {} // want `parameter passes lock by value`

func byValueStruct(g guarded) int { // want `parameter passes lock by value`
	return g.n
}

func pointerParamOK(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func copyAssign(g *guarded) {
	cp := *g // want `assignment copies lock value`
	_ = cp
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies lock value`
		total += g.n
	}
	return total
}

func rangeIndexOK(gs []guarded) int {
	total := 0
	for i := range gs {
		gs[i].mu.Lock()
		total += gs[i].n
		gs[i].mu.Unlock()
	}
	return total
}

func heldAtReturn(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		return -1 // want `return with g\.mu held`
	}
	g.mu.Unlock()
	return 0
}

func rlockHeldAtReturn(g *rwGuarded, bad bool) int {
	g.mu.RLock()
	if bad {
		return -1 // want `return with g\.mu held`
	}
	g.mu.RUnlock()
	return g.n
}

func earlyReturnUnlockOK(g *guarded, skip bool) int {
	g.mu.Lock()
	if skip {
		g.mu.Unlock()
		return 0
	}
	g.mu.Unlock()
	return 1
}

func deferUnlockOK(g *guarded, bad bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if bad {
		return -1
	}
	return g.n
}

func sendWhileLocked(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

func sendAfterUnlockOK(g *guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

func recvWhileLocked(g *guarded, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want `channel receive while holding g\.mu`
}

func sleepWhileLocked(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

func waitWhileLocked(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `sync wg\.Wait\(\) while holding g\.mu`
}

func blockingSelectWhileLocked(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `blocking select while holding g\.mu`
	case v := <-ch:
		g.n = v
	}
}

func nonBlockingSelectOK(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-ch:
		g.n = v
	default:
	}
}

func goroutineDoesNotInherit(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		ch <- 1 // the goroutine does not hold g.mu
	}()
}

func suppressed(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n //daggervet:ignore=locksafety
	g.mu.Unlock()
}
