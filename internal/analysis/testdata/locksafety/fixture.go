// Package fixture seeds violations for the locksafety analyzer. It is
// loaded by the test harness as if it lived under dagger/internal/core.
package fixture

import (
	"sync"
	"time"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

type rwGuarded struct {
	mu sync.RWMutex
	n  int
}

func byValueParam(mu sync.Mutex) {} // want `parameter passes lock by value`

func byValueStruct(g guarded) int { // want `parameter passes lock by value`
	return g.n
}

func pointerParamOK(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func copyAssign(g *guarded) {
	cp := *g // want `assignment copies lock value`
	_ = cp
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range value copies lock value`
		total += g.n
	}
	return total
}

func rangeIndexOK(gs []guarded) int {
	total := 0
	for i := range gs {
		gs[i].mu.Lock()
		total += gs[i].n
		gs[i].mu.Unlock()
	}
	return total
}

func heldAtReturn(g *guarded, bad bool) int {
	g.mu.Lock()
	if bad {
		return -1 // want `return with g\.mu held`
	}
	g.mu.Unlock()
	return 0
}

func rlockHeldAtReturn(g *rwGuarded, bad bool) int {
	g.mu.RLock()
	if bad {
		return -1 // want `return with g\.mu held`
	}
	g.mu.RUnlock()
	return g.n
}

func earlyReturnUnlockOK(g *guarded, skip bool) int {
	g.mu.Lock()
	if skip {
		g.mu.Unlock()
		return 0
	}
	g.mu.Unlock()
	return 1
}

func deferUnlockOK(g *guarded, bad bool) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	if bad {
		return -1
	}
	return g.n
}

func sendWhileLocked(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

func sendAfterUnlockOK(g *guarded, ch chan int) {
	g.mu.Lock()
	n := g.n
	g.mu.Unlock()
	ch <- n
}

func recvWhileLocked(g *guarded, ch chan int) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return <-ch // want `channel receive while holding g\.mu`
}

func sleepWhileLocked(g *guarded) {
	g.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
	g.mu.Unlock()
}

func waitWhileLocked(g *guarded, wg *sync.WaitGroup) {
	g.mu.Lock()
	defer g.mu.Unlock()
	wg.Wait() // want `sync wg\.Wait\(\) while holding g\.mu`
}

func blockingSelectWhileLocked(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select { // want `blocking select while holding g\.mu`
	case v := <-ch:
		g.n = v
	}
}

func nonBlockingSelectOK(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case v := <-ch:
		g.n = v
	default:
	}
}

func goroutineDoesNotInherit(g *guarded, ch chan int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	go func() {
		ch <- 1 // the goroutine does not hold g.mu
	}()
}

func suppressed(g *guarded, ch chan int) {
	g.mu.Lock()
	ch <- g.n //daggervet:ignore=locksafety
	g.mu.Unlock()
}

// ---- dagger:requires-lock annotation checking ----

type cache struct {
	mu sync.Mutex
	m  map[string]int
}

// locked reads the entry for k. Caller holds c.mu.
//
// dagger:requires-lock mu
func (c *cache) locked(k string) int {
	return c.m[k]
}

// lockedRecv demonstrates that an annotated body is simulated with the
// caller's mutex held: blocking inside it is blocking under the lock.
//
// dagger:requires-lock mu
func (c *cache) lockedRecv(ch chan int) int {
	return <-ch // want `channel receive while holding c\.mu`
}

// dagger:requires-lock
func (c *cache) badAnnotation() {} // want `dagger:requires-lock annotation missing the mutex field name`

func callerHoldsOK(c *cache, k string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.locked(k)
}

func callerMissingLock(c *cache, k string) int {
	return c.locked(k) // want `call to locked requires holding c\.mu`
}

func callerUnlockedTooEarly(c *cache, k string) int {
	c.mu.Lock()
	c.mu.Unlock()
	return c.locked(k) // want `call to locked requires holding c\.mu`
}

func callSiteInAssignChecked(c *cache, k string) {
	v := c.locked(k) // want `call to locked requires holding c\.mu`
	_ = v
}

func callSiteInCondChecked(c *cache, k string) bool {
	if c.locked(k) > 0 { // want `call to locked requires holding c\.mu`
		return true
	}
	return false
}

type owner struct{ c *cache }

// nestedReceiverOK shows receiver canonicalization: holding o.c.mu
// satisfies a call to o.c.locked.
func nestedReceiverOK(o *owner, k string) int {
	o.c.mu.Lock()
	defer o.c.mu.Unlock()
	return o.c.locked(k)
}

func nestedReceiverMissing(o *owner, k string) int {
	return o.c.locked(k) // want `call to locked requires holding o\.c\.mu`
}

// annotatedCallsAnnotatedOK: the seeded state lets an annotated helper
// call a sibling helper with the same precondition.
//
// dagger:requires-lock mu
func (c *cache) annotatedCallsAnnotatedOK(k string) int {
	return c.locked(k)
}

func deferredCallNotChecked(c *cache, k string) {
	c.mu.Lock()
	defer c.locked(k) // defers run under a different lock regime; not checked
	c.mu.Unlock()
}
