// Package fixture seeds simdeterminism violations in fault-injection
// flavored code. It is loaded by the test harness as if it lived under
// dagger/internal/faults: the verdict policy feeds both substrates, so a
// wall-clock read, a global-rand draw, or an order-sensitive map walk here
// would make fault plans unreplayable and break cross-substrate parity.
package fixture

import (
	"math/rand"
	"time"
)

// clockSeed derives the injection seed from the wall clock: two runs of the
// same chaos sweep draw different fault plans.
func clockSeed() uint64 {
	return uint64(time.Now().UnixNano()) // want `time\.Now reads the wall clock`
}

// globalDraw decides a drop from the global source; verdict sequences
// diverge across processes and interleavings.
func globalDraw(ppm uint32) bool {
	return rand.Intn(1_000_000) < int(ppm) // want `rand\.Intn draws from the global math/rand source`
}

// seededDraw is the fix: the verdict is a pure function of seed and frame
// index, replayable from the config alone.
func seededDraw(seed int64, ppm uint32) bool {
	return rand.New(rand.NewSource(seed)).Intn(1_000_000) < int(ppm)
}

// sumHeldDelay folds per-class hold budgets in randomized map order; float
// rounding makes the total order-dependent.
func sumHeldDelay(held map[uint64]float64) float64 {
	var sum float64
	for _, d := range held { // want `map iteration order is randomized`
		sum += d
	}
	return sum
}

// countHeldOK is order-invariant: integer counting commutes, so the
// randomized walk cannot leak.
func countHeldOK(held map[uint64]uint32) int {
	n := 0
	for range held {
		n++
	}
	return n
}
