// Package fixture seeds hotpathalloc violations in fault-injection flavored
// code. It is loaded by the test harness as if it lived under
// dagger/internal/faults: the verdict function runs once per admitted frame
// on both substrates, so a per-verdict allocation here taxes every chaos
// run's data path.
package fixture

import (
	"errors"
	"fmt"
)

// errRates is the shape the analyzer pushes toward: one allocation at init,
// comparable with errors.Is, free on every validation.
var errRates = errors.New("fixture: fault rates exceed the denominator")

func verdictLabel(class uint8) string {
	return fmt.Sprintf("class-%d", class) // want `fmt\.Sprintf allocates on the hot path`
}

func validateErr(sum uint64) error {
	if sum > 1_000_000 {
		return fmt.Errorf("fixture: fault rates exceed the denominator") // want `constant fmt\.Errorf allocates per call`
	}
	return nil
}

func sentinelOK(sum uint64) error {
	if sum > 1_000_000 {
		return errRates
	}
	return nil
}

func frameTag(tag []byte) string {
	return string(tag) // want `\[\]byte→string conversion allocates`
}

func collectDropped(frames []uint64, dropped []bool) []uint64 {
	var drops []uint64
	for i, f := range frames {
		if dropped[i] {
			drops = append(drops, f) // want `append to drops grows an un-preallocated slice`
		}
	}
	return drops
}

func collectDroppedOK(frames []uint64, dropped []bool) []uint64 {
	drops := make([]uint64, 0, len(frames))
	for i, f := range frames {
		if dropped[i] {
			drops = append(drops, f)
		}
	}
	return drops
}
