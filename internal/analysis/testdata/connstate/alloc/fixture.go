// Package fixture seeds hotpathalloc violations in connection-state
// flavored code. It is loaded by the test harness as if it lived under
// dagger/internal/connstate: every steering decision crosses this layer, so
// a per-lookup allocation here taxes both substrates' data paths.
package fixture

import (
	"errors"
	"fmt"
)

// errNotOpen is the shape the analyzer pushes toward: one allocation at
// init, comparable with errors.Is, free on every lookup.
var errNotOpen = errors.New("fixture: connection not open")

func slotLabel(slot uint32) string {
	return fmt.Sprintf("slot-%d", slot) // want `fmt\.Sprintf allocates on the hot path`
}

func lookupErr(open bool) error {
	if !open {
		return fmt.Errorf("fixture: connection not open") // want `constant fmt\.Errorf allocates per call`
	}
	return nil
}

func sentinelOK(open bool) error {
	if !open {
		return errNotOpen
	}
	return nil
}

func tagString(tag []byte) string {
	return string(tag) // want `\[\]byte→string conversion allocates`
}

func collectOpen(keys []uint64, valid []bool) []uint64 {
	var open []uint64
	for i, k := range keys {
		if valid[i] {
			open = append(open, k) // want `append to open grows an un-preallocated slice`
		}
	}
	return open
}

func collectOpenOK(keys []uint64, valid []bool) []uint64 {
	open := make([]uint64, 0, len(keys))
	for i, k := range keys {
		if valid[i] {
			open = append(open, k)
		}
	}
	return open
}
