// Package fixture seeds simdeterminism violations in connection-state
// flavored code. It is loaded by the test harness as if it lived under
// dagger/internal/connstate: the policy layer feeds both substrates, so any
// wall-clock read, global-rand draw, or order-sensitive map walk here would
// make the timing stack's results irreproducible.
package fixture

import (
	"math/rand"
	"time"
)

// stampEviction leaks real time into cache state: an eviction timestamped
// with the wall clock diverges across runs.
func stampEviction() int64 {
	return time.Now().UnixNano() // want `time\.Now reads the wall clock`
}

// randomVictim draws the eviction victim from the global source, making
// cache contents irreproducible.
func randomVictim(slots int) int {
	return rand.Intn(slots) // want `rand\.Intn draws from the global math/rand source`
}

// seededVictim is the fix: a caller-provided seed keeps runs identical.
func seededVictim(seed int64, slots int) int {
	return rand.New(rand.NewSource(seed)).Intn(slots)
}

// meanOccupancy folds the backing store in randomized map order; float
// rounding makes the sum order-dependent.
func meanOccupancy(backing map[uint64]float64) float64 {
	var sum float64
	for _, v := range backing { // want `map iteration order is randomized`
		sum += v
	}
	return sum / float64(len(backing))
}

// openCountOK is order-invariant: integer accumulation commutes, so the
// randomized walk cannot leak.
func openCountOK(backing map[uint64]uint16) uint64 {
	var n uint64
	for range backing {
		n++
	}
	return n
}
