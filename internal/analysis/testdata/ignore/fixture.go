// Package fixture exercises the // dagger:ignore suppression directive,
// using shedcheck as the target analyzer. A directive names the analyzer it
// silences and must record a reason; it covers its own line and the line
// below. Directives that suppress nothing are themselves diagnosed so stale
// exceptions cannot accumulate.
package fixture

// ShouldShed mimics the dataplane policy entry point so shedcheck has
// something to diagnose.
func ShouldShed(budget, elapsed uint32) bool { return budget > 0 && elapsed > budget }

// suppressedNextLine: the directive on its own line silences the diagnostic
// on the line below; no want expectation because no diagnostic escapes.
func suppressedNextLine(budget, elapsed uint32) {
	// dagger:ignore shedcheck the verdict is deliberately dropped in this demo
	ShouldShed(budget, elapsed)
}

// suppressedSameLine: a trailing directive covers its own line.
func suppressedSameLine(budget, elapsed uint32) {
	ShouldShed(budget, elapsed) // dagger:ignore shedcheck demo of same-line suppression
}

// unusedSuppression: the directive names shedcheck but the covered lines are
// clean, so the suppression itself is diagnosed.
func unusedSuppression(budget, elapsed uint32) bool {
	// dagger:ignore shedcheck nothing wrong here // want `unused dagger:ignore suppression: no shedcheck diagnostic here`
	return ShouldShed(budget, elapsed)
}

// otherAnalyzer: a directive naming an analyzer outside this run is left
// alone — a single-analyzer run cannot judge it.
func otherAnalyzer(budget, elapsed uint32) bool {
	// dagger:ignore bufownership verdict buffers are not pooled here
	return ShouldShed(budget, elapsed)
}

// wrongAnalyzerDoesNotSuppress: naming the wrong analyzer leaves the real
// diagnostic standing (and in a run including bufownership the directive
// would be reported unused).
func wrongAnalyzerDoesNotSuppress(budget, elapsed uint32) {
	// dagger:ignore bufownership misdirected exception
	ShouldShed(budget, elapsed) // want `shed verdict from ShouldShed is discarded: the policy ran but nothing acts on it`
}

// malformedMissingReason: a suppression with no recorded rationale is not
// honored — the diagnostic below still fires and the directive is reported.
func malformedMissingReason(budget, elapsed uint32) {
	// dagger:ignore shedcheck // want `malformed dagger:ignore directive: missing reason \(write: // dagger:ignore <analyzer> <reason>\)`
	ShouldShed(budget, elapsed) // want `shed verdict from ShouldShed is discarded: the policy ran but nothing acts on it`
}

// malformedEmpty: a bare directive is rejected outright.
func malformedEmpty(budget, elapsed uint32) {
	// dagger:ignore // want `malformed dagger:ignore directive: missing analyzer name and reason`
	ShouldShed(budget, elapsed) // want `shed verdict from ShouldShed is discarded: the policy ran but nothing acts on it`
}
