package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one analysis and its checker function.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //daggervet:ignore=name suppressions.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// Tests opts the analyzer into _test.go files: when false, diagnostics
	// the analyzer reports in test files are discarded (test code may copy
	// locks into tables, allocate on hot paths, and drop errors at will; it
	// may NOT be nondeterministic in simulation packages).
	Tests bool
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// A Pass provides one analyzer with one type-checked package and collects
// its diagnostics.
type Pass struct {
	Analyzer *Analyzer
	Path     string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Directives maps functions (from this package and its loaded
	// dependencies) to their dagger: ownership annotations, so analyzers see
	// annotations across package boundaries.
	Directives map[*types.Func]Directive

	diags      []Diagnostic
	suppressed map[string]map[int]bool // filename -> line -> suppressed
	ignores    *ignoreTable
}

// Reportf records a diagnostic at pos unless that line carries a
// //daggervet:ignore or // dagger:ignore suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if lines, ok := p.suppressed[position.Filename]; ok && lines[position.Line] {
		return
	}
	if p.ignores.suppress(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Run applies analyzers to pkg and returns the diagnostics sorted by
// position. After all analyzers have run, stale // dagger:ignore directives
// — those naming an analyzer in this run that suppressed nothing — are
// reported as diagnostics themselves, so dead suppressions rot visibly.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	ignores := collectIgnores(pkg)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:   a,
			Path:       pkg.Path,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			Directives: pkg.Directives,
			suppressed: suppressedLines(pkg, a.Name),
			ignores:    ignores,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
		}
		for _, d := range pass.diags {
			if !a.Tests && strings.HasSuffix(d.Pos.Filename, "_test.go") {
				continue
			}
			out = append(out, d)
		}
	}
	out = append(out, ignores.staleDiagnostics(analyzers)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// suppressedLines maps, per file, the lines on which diagnostics from the
// named analyzer are suppressed. A comment of the form
//
//	//daggervet:ignore        (suppresses every analyzer)
//	//daggervet:ignore=name   (suppresses one analyzer)
//
// suppresses findings on its own line and, when it is the only thing on its
// line, on the line below.
func suppressedLines(pkg *Package, analyzer string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "daggervet:ignore")
				if !ok {
					continue
				}
				if name, isEq := strings.CutPrefix(rest, "="); isEq {
					if strings.TrimSpace(name) != analyzer {
						continue
					}
				} else if strings.TrimSpace(rest) != "" {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				if out[pos.Filename] == nil {
					out[pos.Filename] = make(map[int]bool)
				}
				out[pos.Filename][pos.Line] = true
				out[pos.Filename][pos.Line+1] = true
			}
		}
	}
	return out
}

// An ignoreEntry is one parsed // dagger:ignore directive.
type ignoreEntry struct {
	analyzer  string
	reason    string
	pos       token.Position
	used      bool
	malformed string // non-empty: why the directive could not be parsed
}

// ignoreTable indexes a package's // dagger:ignore directives by the lines
// they cover (their own line, plus the line below, matching the legacy
// //daggervet:ignore behavior).
type ignoreTable struct {
	entries []*ignoreEntry
	byLine  map[string]map[int][]*ignoreEntry
}

// collectIgnores parses every // dagger:ignore <analyzer> <reason> directive
// in pkg. The reason is required: an exception with no recorded rationale is
// reported as malformed rather than honored.
func collectIgnores(pkg *Package) *ignoreTable {
	t := &ignoreTable{byLine: make(map[string]map[int][]*ignoreEntry)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "dagger:ignore")
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				// A later "//" starts a nested comment (fixtures put their
				// want expectations there); it is not part of the directive.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				e := &ignoreEntry{pos: pkg.Fset.Position(c.Pos())}
				fields := strings.Fields(rest)
				switch {
				case len(fields) == 0:
					e.malformed = "missing analyzer name and reason"
				case len(fields) == 1:
					e.malformed = "missing reason (write: // dagger:ignore <analyzer> <reason>)"
				default:
					e.analyzer = fields[0]
					e.reason = strings.Join(fields[1:], " ")
				}
				t.entries = append(t.entries, e)
				if t.byLine[e.pos.Filename] == nil {
					t.byLine[e.pos.Filename] = make(map[int][]*ignoreEntry)
				}
				for _, line := range []int{e.pos.Line, e.pos.Line + 1} {
					t.byLine[e.pos.Filename][line] = append(t.byLine[e.pos.Filename][line], e)
				}
			}
		}
	}
	return t
}

// suppress reports whether a diagnostic from analyzer at position is covered
// by a directive, marking every covering directive used.
func (t *ignoreTable) suppress(analyzer string, position token.Position) bool {
	hit := false
	for _, e := range t.byLine[position.Filename][position.Line] {
		if e.malformed == "" && e.analyzer == analyzer {
			e.used = true
			hit = true
		}
	}
	return hit
}

// staleDiagnostics reports malformed directives and directives that name an
// analyzer in this run but suppressed nothing. Directives naming analyzers
// outside the run set are left alone (a single-analyzer run cannot judge
// them); unused directives for Tests=false analyzers in _test.go files are
// skipped the same way their diagnostics would be.
func (t *ignoreTable) staleDiagnostics(analyzers []*Analyzer) []Diagnostic {
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []Diagnostic
	for _, e := range t.entries {
		if e.malformed != "" {
			out = append(out, Diagnostic{
				Analyzer: "ignore",
				Pos:      e.pos,
				Message:  "malformed dagger:ignore directive: " + e.malformed,
			})
			continue
		}
		a, inRun := byName[e.analyzer]
		if !inRun || e.used {
			continue
		}
		if !a.Tests && strings.HasSuffix(e.pos.Filename, "_test.go") {
			continue
		}
		out = append(out, Diagnostic{
			Analyzer: e.analyzer,
			Pos:      e.pos,
			Message:  fmt.Sprintf("unused dagger:ignore suppression: no %s diagnostic here", e.analyzer),
		})
	}
	return out
}

// pathIn reports whether import path p is pkg or lies beneath any of the
// given package paths.
func pathIn(p string, roots ...string) bool {
	for _, r := range roots {
		if p == r || strings.HasPrefix(p, r+"/") {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called package-level function or method, or nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isPkgCall reports whether call invokes a package-level function of
// pkgPath whose name is in names.
func isPkgCall(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) (string, bool) {
	fn := calleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return "", false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", false
	}
	for _, n := range names {
		if fn.Name() == n {
			return n, true
		}
	}
	return "", false
}

// isNamedType reports whether t (after pointer indirection) is the named
// type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// containsLock reports whether t directly or transitively contains a
// sync.Mutex, sync.RWMutex, sync.WaitGroup, sync.Cond or sync.Once by
// value, meaning values of t must not be copied.
func containsLock(t types.Type) bool {
	seen := make(map[types.Type]bool)
	var walk func(types.Type) bool
	walk = func(t types.Type) bool {
		if t == nil || seen[t] {
			return false
		}
		seen[t] = true
		for _, n := range []string{"Mutex", "RWMutex", "WaitGroup", "Cond", "Once"} {
			if isNamedType(t, "sync", n) {
				// Pointers to locks are fine; isNamedType dereferences, so
				// re-check that t itself is not a pointer.
				if _, isPtr := t.(*types.Pointer); !isPtr {
					return true
				}
			}
		}
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields(); i++ {
				if walk(u.Field(i).Type()) {
					return true
				}
			}
		case *types.Array:
			return walk(u.Elem())
		}
		if named, ok := t.(*types.Named); ok {
			return walk(named.Underlying())
		}
		return false
	}
	return walk(t)
}

// funcName returns the name of the enclosing function declaration, or "".
func funcName(decl *ast.FuncDecl) string {
	if decl == nil || decl.Name == nil {
		return ""
	}
	return decl.Name.Name
}
