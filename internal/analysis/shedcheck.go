package analysis

import (
	"go/ast"
	"go/token"
	"go/types"

	"dagger/internal/analysis/flow"
)

// ShedCheck enforces that dataplane verdicts are acted on. dataplane.ShouldShed
// (and its substrate entry points, core.ShedDecision and friends) decide
// whether a request's deadline budget has expired; dataplane.Mark decides
// whether a queue admission must carry an ECN-style congestion stamp.
// Computing either verdict and then ignoring it silently re-introduces the
// failure the policy exists to prevent: doomed work dispatched anyway, or a
// congested queue that never tells its clients to back off.
//
// The analysis tracks verdict-producing calls flow-sensitively over the
// internal/analysis/flow CFG. A verdict bound to a local variable is
// "pending" until the variable is read (branched on, stored, passed along).
// Reports:
//
//   - a verdict-producing call whose result is discarded (bare expression
//     statement or assigned to _): the policy ran but nothing can act on it;
//   - a handler dispatch — calling a value of a dagger Handler function type
//     — while a verdict is still pending: the request is executed before the
//     decision is consulted;
//   - a path leaving the function with a verdict still pending: the decision
//     was computed but never examined.
var ShedCheck = &Analyzer{
	Name:  "shedcheck",
	Doc:   "shed and congestion verdicts must be consulted, not dropped",
	Tests: false,
	Run:   runShedCheck,
}

// shedScopes is everywhere the shed and congestion policies are consulted:
// the functional server and fabric, the timing models, the experiments
// driving them, and the policy layer itself.
var shedScopes = []string{
	"dagger/internal/core",
	"dagger/internal/dataplane",
	"dagger/internal/fabric",
	"dagger/internal/nicmodel",
	"dagger/internal/microsim",
	"dagger/internal/overload",
	"dagger/internal/experiments",
}

// shedFact maps local variables holding an unconsulted shed verdict to the
// position of the call that produced it.
type shedFact map[types.Object]token.Pos

type shedAnalysis struct {
	pass     *Pass
	rep      ownReporter
	reported map[token.Pos]bool
	// pendingAtExit collects verdicts alive at returns/exit for one report
	// per producing call.
	pendingAtExit map[token.Pos]token.Pos // producing call -> exit position
	// kindAt remembers which policy produced the verdict at a call position
	// ("shed" or "congestion"), for kind-aware diagnostics.
	kindAt map[token.Pos]string
}

func runShedCheck(pass *Pass) error {
	if !pathIn(pass.Path, shedScopes...) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					analyzeShed(pass, fn.Body)
				}
			case *ast.FuncLit:
				analyzeShed(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

func analyzeShed(pass *Pass, body *ast.BlockStmt) {
	a := &shedAnalysis{
		pass:          pass,
		reported:      make(map[token.Pos]bool),
		pendingAtExit: make(map[token.Pos]token.Pos),
		kindAt:        make(map[token.Pos]string),
	}
	g := flow.New(body)
	r := flow.Forward[shedFact](g, a)
	if !r.Converged {
		return
	}
	r.Visit(func(n ast.Node, before shedFact) {
		a.rep = func(pos token.Pos, format string, args ...any) {
			if !a.reported[pos] {
				a.reported[pos] = true
				pass.Reportf(pos, format, args...)
			}
		}
		a.scan(n, before)
		a.rep = nil
	})
	for site, pos := range a.pendingAtExit {
		pass.Reportf(pos, "%s verdict computed at line %d is never examined",
			a.kind(site), pass.Fset.Position(site).Line)
	}
}

// kind returns the policy kind recorded for the verdict call at site.
func (a *shedAnalysis) kind(site token.Pos) string {
	if k := a.kindAt[site]; k != "" {
		return k
	}
	return "shed"
}

// isVerdictCall reports a call to a dagger policy entry point whose bool
// result demands action: the shed policy (ShouldShed, ShedDecision) anywhere
// under dagger, and the congestion mark policy (Mark) in the dataplane
// package — the name is too generic to match repo-wide. The producing call's
// kind is recorded for diagnostics.
func (a *shedAnalysis) isVerdictCall(call *ast.CallExpr) bool {
	fn := calleeFunc(a.pass.Info, call)
	if fn == nil || !inDagger(fn) {
		return false
	}
	var kind string
	switch fn.Name() {
	case "ShouldShed", "ShedDecision":
		kind = "shed"
	case "Mark":
		if fn.Pkg() == nil || !pathIn(fn.Pkg().Path(), "dagger/internal/dataplane") {
			return false
		}
		kind = "congestion"
	default:
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Results().Len() != 1 {
		return false
	}
	basic, ok := sig.Results().At(0).Type().Underlying().(*types.Basic)
	if !ok || basic.Kind() != types.Bool {
		return false
	}
	a.kindAt[call.Pos()] = kind
	return true
}

// isHandlerDispatch reports a call through a value whose type is a dagger
// named function type called Handler — the server's request-dispatch shape.
func (a *shedAnalysis) isHandlerDispatch(call *ast.CallExpr) bool {
	t := a.pass.Info.TypeOf(call.Fun)
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if _, isSig := named.Underlying().(*types.Signature); !isSig {
		return false
	}
	pkg := named.Obj().Pkg().Path()
	return named.Obj().Name() == "Handler" &&
		(pkg == "dagger" || pathIn(pkg, "dagger"))
}

// --- flow.Analysis implementation ---

func (a *shedAnalysis) Entry() shedFact { return shedFact{} }

func (a *shedAnalysis) Transfer(n ast.Node, in shedFact) shedFact {
	out := make(shedFact, len(in))
	for k, v := range in {
		out[k] = v
	}
	// Any read of a pending verdict consults it; finding reads is cheaper
	// than enumerating the ways a bool can be used, so clear on every
	// identifier use outside the binding position.
	binding := map[types.Object]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		if len(as.Rhs) == 1 {
			if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && a.isVerdictCall(call) {
				for _, l := range as.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
						if obj := a.pass.Info.ObjectOf(id); obj != nil {
							out[obj] = call.Pos()
							binding[obj] = true
						}
					}
				}
			}
		}
	}
	shedInspect(n, func(sub ast.Node) bool {
		id, ok := sub.(*ast.Ident)
		if !ok {
			return true
		}
		obj := a.pass.Info.ObjectOf(id)
		if obj == nil || binding[obj] {
			return true
		}
		delete(out, obj)
		return true
	})
	return out
}

func (a *shedAnalysis) Join(x, y shedFact) shedFact {
	out := make(shedFact, len(x)+len(y))
	for k, v := range x {
		out[k] = v
	}
	for k, v := range y {
		out[k] = v
	}
	return out
}

func (a *shedAnalysis) Equal(x, y shedFact) bool {
	if len(x) != len(y) {
		return false
	}
	for k, v := range x {
		if w, ok := y[k]; !ok || w != v {
			return false
		}
	}
	return true
}

// shedInspect walks n skipping function literal bodies and range bodies
// (both are covered elsewhere: literals by their own analysis, range bodies
// by their own CFG blocks).
func shedInspect(n ast.Node, visit func(ast.Node) bool) {
	root := n
	switch n := n.(type) {
	case *flow.ExitMark:
		// Synthetic node; ast.Walk cannot visit it.
		return
	case *ast.RangeStmt:
		root = n.X
	}
	if root == nil {
		return
	}
	ast.Inspect(root, func(sub ast.Node) bool {
		if _, ok := sub.(*ast.FuncLit); ok {
			return false
		}
		return visit(sub)
	})
}

// --- reporting ---

func (a *shedAnalysis) scan(n ast.Node, before shedFact) {
	switch n := n.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok && a.isVerdictCall(call) {
			a.rep(call.Pos(), "%s verdict from %s is discarded: the policy ran but nothing acts on it",
				a.kind(call.Pos()), callName(call))
			return
		}
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 {
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && a.isVerdictCall(call) {
				allBlank := true
				for _, l := range n.Lhs {
					if id, ok := ast.Unparen(l).(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if allBlank {
					a.rep(call.Pos(), "%s verdict from %s is discarded: the policy ran but nothing acts on it",
						a.kind(call.Pos()), callName(call))
					return
				}
			}
		}
	case *ast.ReturnStmt:
		a.recordPending(n.Return, before)
	case *flow.ExitMark:
		a.recordPending(n.Pos(), before)
	}
	shedInspect(n, func(sub ast.Node) bool {
		call, ok := sub.(*ast.CallExpr)
		if !ok {
			return true
		}
		if a.isHandlerDispatch(call) {
			if site, live := a.anyPending(before); live {
				a.rep(call.Pos(), "request dispatched to handler while the %s verdict from line %d is still unexamined",
					a.kind(site), a.pass.Fset.Position(site).Line)
			}
		}
		return true
	})
}

// anyPending returns the earliest pending verdict site for deterministic
// messages.
func (a *shedAnalysis) anyPending(f shedFact) (token.Pos, bool) {
	best := token.NoPos
	for _, site := range f {
		if best == token.NoPos || site < best {
			best = site
		}
	}
	return best, best != token.NoPos
}

func (a *shedAnalysis) recordPending(pos token.Pos, f shedFact) {
	if a.rep == nil {
		return
	}
	for _, site := range f {
		if _, seen := a.pendingAtExit[site]; !seen {
			a.pendingAtExit[site] = pos
		}
	}
}
