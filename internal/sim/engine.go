// Package sim implements a deterministic discrete-event simulation engine
// with a virtual nanosecond clock. It is the substrate for Dagger's timing
// models: interconnect transactions, NIC pipeline stages, network links, and
// queueing all execute as ordered events on a single Engine.
//
// The engine is deliberately single-threaded: determinism matters more than
// host parallelism for reproducing the paper's figures. Events scheduled for
// the same instant fire in scheduling order (a stable tie-break), so repeated
// runs with the same seed produce identical results.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a point in simulated time, in nanoseconds since simulation start.
type Time int64

// Common durations, expressed in simulated nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// Float64 returns t as a float64 number of nanoseconds.
func (t Time) Float64() float64 { return float64(t) }

// Micros returns t as a float64 number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(t)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// one with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	events  eventHeap
	stopped bool
}

// NewEngine returns an engine with the clock at zero and no pending events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Pending reports the number of scheduled, not-yet-fired events.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute simulated time t. Scheduling in the past
// (t < Now) panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	heap.Push(&e.events, event{at: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) {
	e.At(e.now+d, fn)
}

// Step fires the earliest pending event and returns true, or returns false if
// no events remain.
func (e *Engine) Step() bool {
	if len(e.events) == 0 {
		return false
	}
	ev := heap.Pop(&e.events).(event)
	e.now = ev.at
	ev.fn()
	return true
}

// Run fires events until none remain or Stop is called.
func (e *Engine) Run() {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then advances the clock
// to the deadline. Events scheduled past the deadline remain pending.
func (e *Engine) RunUntil(deadline Time) {
	e.stopped = false
	for !e.stopped && len(e.events) > 0 && e.events[0].at <= deadline {
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Stop halts Run/RunUntil after the currently executing event returns.
func (e *Engine) Stop() { e.stopped = true }
