package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events fired out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered at %d: %v", i, v)
		}
	}
}

func TestEngineAfterChains(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			e.After(7, tick)
		}
	}
	e.After(7, tick)
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if e.Now() != 70 {
		t.Fatalf("clock = %v, want 70", e.Now())
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run()
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i*10), func() { fired++ })
	}
	e.RunUntil(55)
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
	if e.Now() != 55 {
		t.Fatalf("clock = %v, want 55", e.Now())
	}
	e.Run()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10 after Run", fired)
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.At(1, func() { fired++; e.Stop() })
	e.At(2, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (Stop should halt)", fired)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

// Property: however events are scheduled, they fire in nondecreasing time
// order and the clock matches each event's timestamp.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(stamps []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, s := range stamps {
			at := Time(s)
			e.At(at, func() {
				if e.Now() != at {
					t.Errorf("clock %v != event time %v", e.Now(), at)
				}
				fired = append(fired, at)
			})
		}
		e.Run()
		if len(fired) != len(stamps) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestResourceFIFOGrants(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 2)
	var order []int
	hold := func(id int, d Time) {
		r.Acquire(func() {
			order = append(order, id)
			e.After(d, r.Release)
		})
	}
	hold(1, 100)
	hold(2, 100)
	hold(3, 10) // queued until t=100
	hold(4, 10)
	e.Run()
	want := []int{1, 2, 3, 4}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("grant order = %v, want %v", order, want)
		}
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	if !r.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if r.TryAcquire() {
		t.Fatal("second TryAcquire should fail at capacity")
	}
	r.Release()
	if !r.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEngine()
	r := NewResource(e, 1)
	r.Acquire(func() { e.After(500, r.Release) })
	e.At(1000, func() {})
	e.Run()
	u := r.Utilization()
	if u < 0.45 || u > 0.55 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestResourceReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("release of idle resource did not panic")
		}
	}()
	e := NewEngine()
	NewResource(e, 1).Release()
}

func TestQueueBoundedDrops(t *testing.T) {
	q := NewQueue(2)
	if !q.Push(1) || !q.Push(2) {
		t.Fatal("push within capacity failed")
	}
	if q.Push(3) {
		t.Fatal("push beyond capacity succeeded")
	}
	if q.Dropped != 1 {
		t.Fatalf("dropped = %d, want 1", q.Dropped)
	}
	v, ok := q.Pop()
	if !ok || v.(int) != 1 {
		t.Fatalf("pop = %v, want 1", v)
	}
}

// Property: a queue is FIFO — pop order equals push order for any sequence
// that fits in capacity.
func TestQueueFIFOProperty(t *testing.T) {
	f := func(vals []int) bool {
		q := NewQueue(0)
		for _, v := range vals {
			q.Push(v)
		}
		for _, want := range vals {
			got, ok := q.Pop()
			if !ok || got.(int) != want {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQueueStats(t *testing.T) {
	q := NewQueue(0)
	rng := rand.New(rand.NewSource(1))
	max := 0
	n := 0
	for i := 0; i < 1000; i++ {
		if rng.Intn(2) == 0 {
			q.Push(i)
			n++
			if n > max {
				max = n
			}
		} else if n > 0 {
			q.Pop()
			n--
		}
	}
	if q.MaxLen != max {
		t.Fatalf("MaxLen = %d, want %d", q.MaxLen, max)
	}
	if int(q.Enqueued-q.Dequeued) != q.Len() {
		t.Fatalf("enqueued-dequeued=%d, len=%d", q.Enqueued-q.Dequeued, q.Len())
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		5:          "5ns",
		1500:       "1.500us",
		2500000:    "2.500ms",
		3000000000: "3.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(in), got, want)
		}
	}
}
