package sim_test

import (
	"fmt"

	"dagger/internal/sim"
)

// Example schedules a small event chain on the deterministic engine.
func Example() {
	eng := sim.NewEngine()
	eng.After(100, func() {
		fmt.Println("bus transfer done at", eng.Now())
		eng.After(50, func() {
			fmt.Println("pipeline exit at", eng.Now())
		})
	})
	eng.Run()
	// Output:
	// bus transfer done at 100ns
	// pipeline exit at 150ns
}

// ExampleResource shows FIFO queueing at a single-server resource.
func ExampleResource() {
	eng := sim.NewEngine()
	core := sim.NewResource(eng, 1)
	for i := 1; i <= 3; i++ {
		i := i
		core.Acquire(func() {
			eng.After(10, func() {
				fmt.Printf("request %d served at %v\n", i, eng.Now())
				core.Release()
			})
		})
	}
	eng.Run()
	// Output:
	// request 1 served at 10ns
	// request 2 served at 20ns
	// request 3 served at 30ns
}
