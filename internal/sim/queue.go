package sim

// Queue is a bounded FIFO with occupancy statistics, used for NIC flow
// FIFOs, RX/TX rings, and switch ports in the timing models. Items are
// opaque; timing semantics (service rates) are composed by the caller.
type Queue struct {
	items []interface{}
	cap   int // 0 means unbounded

	Enqueued uint64
	Dequeued uint64
	Dropped  uint64
	MaxLen   int
}

// NewQueue creates a queue with the given capacity; capacity 0 means
// unbounded.
func NewQueue(capacity int) *Queue {
	return &Queue{cap: capacity}
}

// Push appends an item. It returns false (and counts a drop) if the queue is
// full.
func (q *Queue) Push(v interface{}) bool {
	if q.cap > 0 && len(q.items) >= q.cap {
		q.Dropped++
		return false
	}
	q.items = append(q.items, v)
	q.Enqueued++
	if len(q.items) > q.MaxLen {
		q.MaxLen = len(q.items)
	}
	return true
}

// Pop removes and returns the oldest item, or nil and false when empty.
func (q *Queue) Pop() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v := q.items[0]
	q.items = q.items[1:]
	q.Dequeued++
	return v, true
}

// Peek returns the oldest item without removing it.
func (q *Queue) Peek() (interface{}, bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	return q.items[0], true
}

// Len returns the current occupancy.
func (q *Queue) Len() int { return len(q.items) }

// Cap returns the configured capacity (0 = unbounded).
func (q *Queue) Cap() int { return q.cap }
