package sim

// Resource models a server with fixed capacity and a FIFO wait queue: CPU
// cores, bus endpoints, switch ports. Acquire either grants a slot
// immediately or enqueues the requester; Release hands the freed slot to the
// longest-waiting requester.
type Resource struct {
	eng      *Engine
	capacity int
	busy     int
	waiters  []func()

	// Stats accumulated over the run.
	granted     uint64
	queuedTotal uint64
	busyTime    Time
	lastChange  Time
}

// NewResource creates a resource with the given slot capacity on eng.
// Capacity must be positive.
func NewResource(eng *Engine, capacity int) *Resource {
	if capacity <= 0 {
		panic("sim: resource capacity must be positive")
	}
	return &Resource{eng: eng, capacity: capacity}
}

// Acquire requests a slot. fn runs (as a new event at the current time) once
// a slot is granted. The caller must eventually call Release for every grant.
func (r *Resource) Acquire(fn func()) {
	if r.busy < r.capacity {
		r.accountBusy()
		r.busy++
		r.granted++
		r.eng.After(0, fn)
		return
	}
	r.queuedTotal++
	r.waiters = append(r.waiters, fn)
}

// TryAcquire grants a slot immediately if one is free and returns true;
// otherwise it returns false without queueing.
func (r *Resource) TryAcquire() bool {
	if r.busy < r.capacity {
		r.accountBusy()
		r.busy++
		r.granted++
		return true
	}
	return false
}

// Release frees a slot, waking the oldest waiter if any.
func (r *Resource) Release() {
	if r.busy <= 0 {
		panic("sim: release of idle resource")
	}
	if len(r.waiters) > 0 {
		next := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.granted++
		r.eng.After(0, next)
		return // slot transfers directly; busy count unchanged
	}
	r.accountBusy()
	r.busy--
}

// InUse returns the number of currently held slots.
func (r *Resource) InUse() int { return r.busy }

// QueueLen returns the number of waiting requesters.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Granted returns the total number of grants.
func (r *Resource) Granted() uint64 { return r.granted }

// Utilization returns the time-averaged fraction of busy capacity since the
// start of the simulation.
func (r *Resource) Utilization() float64 {
	r.accountBusy()
	if r.eng.now == 0 {
		return 0
	}
	return float64(r.busyTime) / (float64(r.eng.now) * float64(r.capacity))
}

func (r *Resource) accountBusy() {
	dt := r.eng.now - r.lastChange
	r.busyTime += Time(int64(dt) * int64(r.busy))
	r.lastChange = r.eng.now
}
