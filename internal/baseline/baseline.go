// Package baseline carries the comparison systems of Table 3 — IX (kernel-
// bypass dataplane OS), FaSST (two-sided RDMA RPCs), eRPC (raw-NIC
// userspace RPCs) and NetDIMM (in-DIMM integrated NIC) — as published
// round-trip and per-core throughput numbers plus component-level cost
// decompositions that explain where each system's time goes. The Dagger row
// of the table is measured live from this repo's timing model; the baseline
// rows are, as in the paper, "performance numbers ... provided from
// corresponding papers".
package baseline

import (
	"fmt"

	"dagger/internal/sim"
)

// System is one comparison row of Table 3.
type System struct {
	Name    string
	Objects string // transfer unit and whether full RPCs are delivered
	ToR     string // assumed top-of-rack delay
	// RTTMicros is the published median round trip in microseconds.
	RTTMicros float64
	// ThroughputMrps is the published single-core throughput (0 = not
	// reported).
	ThroughputMrps float64
	// FullRPC reports whether the system delivers complete RPCs ("RPC")
	// rather than raw messages ("msg") — msg systems exclude RPC-layer
	// processing from their numbers.
	FullRPC bool
	// Components decompose one direction of the round trip; the model's
	// RTT is 2x their sum. The decomposition explains the published
	// number in terms of the system's architecture.
	Components []Component
	// CPUPerRPC is the modeled core time per RPC (bounds per-core
	// throughput; 0 = not modeled).
	CPUPerRPC sim.Time
}

// Component is one latency contribution on the one-way path.
type Component struct {
	Name string
	Cost sim.Time
}

// ModelRTT returns the decomposition's round trip (2x one-way sum).
func (s System) ModelRTT() sim.Time {
	var sum sim.Time
	for _, c := range s.Components {
		sum += c.Cost
	}
	return 2 * sum
}

// ModelThroughputMrps returns the CPU-cost-implied per-core throughput.
func (s System) ModelThroughputMrps() float64 {
	if s.CPUPerRPC == 0 {
		return 0
	}
	return 1e3 / float64(s.CPUPerRPC)
}

// Published returns the four non-Dagger rows of Table 3 with their
// component decompositions.
func Published() []System {
	return []System{
		{
			Name: "IX", Objects: "64B msg", ToR: "N/A",
			RTTMicros: 11.4, ThroughputMrps: 1.5, FullRPC: false,
			// IX runs a protected dataplane: each message still crosses a
			// hardened kernel-bypass TCP stack with batched syscalls.
			Components: []Component{
				{"dataplane syscall + run-to-completion batch", 2050},
				{"TCP/IP processing", 1900},
				{"NIC PCIe doorbell + DMA", 1300},
				{"wire + switch", 450},
			},
			CPUPerRPC: 660, // 1.5 Mrps
		},
		{
			Name: "FaSST", Objects: "48B RPC", ToR: "0.3 us",
			RTTMicros: 2.8, ThroughputMrps: 4.8, FullRPC: true,
			// FaSST: two-sided unreliable-datagram RDMA verbs; RPC layer on
			// the CPU, doorbell-batched sends over PCIe.
			Components: []Component{
				{"RPC layer on CPU (send+recv)", 250},
				{"verbs post + doorbell (PCIe)", 450},
				{"RNIC processing + DMA", 400},
				{"wire + ToR", 300},
			},
			CPUPerRPC: 208, // 4.8 Mrps
		},
		{
			Name: "eRPC", Objects: "32B RPC", ToR: "0.3 us",
			RTTMicros: 2.3, ThroughputMrps: 4.96, FullRPC: true,
			// eRPC: raw-NIC userspace stack, zero-copy, doorbell batching,
			// congestion control off the critical path.
			Components: []Component{
				{"RPC layer on CPU (send+recv)", 180},
				{"doorbell + PCIe DMA", 420},
				{"NIC processing", 250},
				{"wire + ToR", 300},
			},
			CPUPerRPC: 202, // 4.96 Mrps
		},
		{
			Name: "NetDIMM", Objects: "64B msg", ToR: "0.1 us",
			RTTMicros: 2.2, ThroughputMrps: 0, FullRPC: false,
			// NetDIMM: NIC integrated in DIMM hardware; memory-write
			// initiated sends, but no RPC stack offload (messages only).
			Components: []Component{
				{"memory write to DIMM NIC", 350},
				{"in-DIMM processing", 300},
				{"wire + ToR", 250},
				{"remote DIMM delivery + poll", 200},
			},
		},
	}
}

// DaggerRow builds the Dagger row from measured values (median RTT in
// microseconds and single-core throughput in Mrps, both produced by the
// fig10-style echo experiment at UPI B=4).
func DaggerRow(rttMicros, thrMrps float64) System {
	return System{
		Name: "Dagger", Objects: "64B RPC", ToR: "0.3 us",
		RTTMicros: rttMicros, ThroughputMrps: thrMrps, FullRPC: true,
		Components: []Component{
			{"single memory write (CPU)", 50},
			{"UPI coherent delivery", 400},
			{"NIC RPC pipeline", 100},
			{"wire + ToR", 300},
			{"UPI delivery to host + poll", 200},
		},
		CPUPerRPC: 81,
	}
}

// SpeedupRange returns Dagger's per-core throughput gain over the published
// baselines that report throughput (the paper's 1.3-3.8x headline uses its
// full set of comparison settings).
func SpeedupRange(dagger System, published []System) (lo, hi float64) {
	lo, hi = 0, 0
	for _, s := range published {
		if s.ThroughputMrps <= 0 {
			continue
		}
		sp := dagger.ThroughputMrps / s.ThroughputMrps
		if lo == 0 || sp < lo {
			lo = sp
		}
		if sp > hi {
			hi = sp
		}
	}
	return lo, hi
}

// FormatRow renders one system as the Table 3 row text.
func FormatRow(s System) string {
	thr := "N/A"
	if s.ThroughputMrps > 0 {
		thr = fmt.Sprintf("%.1f", s.ThroughputMrps)
	}
	return fmt.Sprintf("%-8s %-8s ToR=%-6s RTT=%.1fus Thr=%s Mrps", s.Name, s.Objects, s.ToR, s.RTTMicros, thr)
}
