package baseline

import (
	"math"
	"strings"
	"testing"
)

func TestPublishedMatchesPaperTable3(t *testing.T) {
	want := map[string]struct {
		rtt float64
		thr float64
	}{
		"IX":      {11.4, 1.5},
		"FaSST":   {2.8, 4.8},
		"eRPC":    {2.3, 4.96},
		"NetDIMM": {2.2, 0},
	}
	for _, s := range Published() {
		w, ok := want[s.Name]
		if !ok {
			t.Errorf("unexpected system %q", s.Name)
			continue
		}
		if s.RTTMicros != w.rtt || s.ThroughputMrps != w.thr {
			t.Errorf("%s: rtt/thr = %v/%v, want %v/%v", s.Name, s.RTTMicros, s.ThroughputMrps, w.rtt, w.thr)
		}
	}
	if len(Published()) != 4 {
		t.Errorf("rows = %d, want 4", len(Published()))
	}
}

// The component decompositions must actually explain the published RTTs.
func TestDecompositionsSumToPublishedRTT(t *testing.T) {
	for _, s := range append(Published(), DaggerRow(2.1, 12.4)) {
		model := s.ModelRTT().Micros()
		if math.Abs(model-s.RTTMicros)/s.RTTMicros > 0.05 {
			t.Errorf("%s: decomposition RTT %.2fus vs published %.2fus (>5%% off)", s.Name, model, s.RTTMicros)
		}
	}
}

func TestCPUModelMatchesThroughput(t *testing.T) {
	for _, s := range append(Published(), DaggerRow(2.1, 12.4)) {
		if s.ThroughputMrps == 0 || s.CPUPerRPC == 0 {
			continue
		}
		model := s.ModelThroughputMrps()
		if math.Abs(model-s.ThroughputMrps)/s.ThroughputMrps > 0.05 {
			t.Errorf("%s: CPU model implies %.2f Mrps vs published %.2f", s.Name, model, s.ThroughputMrps)
		}
	}
}

// Table 3's qualitative claims: Dagger has the lowest RTT and the highest
// per-core throughput; the msg-only systems don't deliver full RPCs.
func TestDaggerWinsTable3(t *testing.T) {
	d := DaggerRow(2.1, 12.4)
	for _, s := range Published() {
		if s.RTTMicros < d.RTTMicros {
			t.Errorf("%s RTT %.1f beats Dagger %.1f", s.Name, s.RTTMicros, d.RTTMicros)
		}
		if s.ThroughputMrps > d.ThroughputMrps {
			t.Errorf("%s throughput beats Dagger", s.Name)
		}
	}
	if !d.FullRPC {
		t.Error("Dagger delivers full RPCs")
	}
	for _, s := range Published() {
		if strings.Contains(s.Objects, "msg") && s.FullRPC {
			t.Errorf("%s: msg system marked FullRPC", s.Name)
		}
	}
}

// Per-core speedup vs throughput-reporting baselines spans the paper's
// 1.3-3.8x headline window (2.5x vs FaSST/eRPC, larger vs IX).
func TestSpeedupRange(t *testing.T) {
	lo, hi := SpeedupRange(DaggerRow(2.1, 12.4), Published())
	if lo < 1.3 || lo > 3.0 {
		t.Errorf("min speedup %.2f outside sanity window", lo)
	}
	if hi < 3.8 {
		t.Errorf("max speedup %.2f, want >= 3.8 (vs IX it is ~8x)", hi)
	}
}

func TestFormatRow(t *testing.T) {
	row := FormatRow(Published()[0])
	if !strings.Contains(row, "IX") || !strings.Contains(row, "11.4") {
		t.Errorf("row = %q", row)
	}
	if !strings.Contains(FormatRow(Published()[3]), "N/A") {
		t.Error("NetDIMM throughput should render N/A")
	}
}
