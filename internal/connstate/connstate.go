// Package connstate is the single source of truth for Dagger's connection
// state (§4.2): the bounded, direct-mapped, near-memory connection cache with
// a host-DRAM backing store behind it. The NIC holds the hot working set of
// connection entries in on-chip memory; entries displaced by direct-mapped
// conflicts fall back to host memory and pay one coherent-bus round trip
// (HostLookupPenaltyNanos) when they are next looked up, at which point they
// are re-cached. That geometry — slot indexing, tag match, conflict eviction,
// re-cache on miss — plus the open → active → close lifecycle and its
// hit/miss/eviction accounting live here, and only here.
//
// Like internal/dataplane, everything in this package is pure policy: the
// same call sequence produces the same decisions, byte for byte, whether the
// caller is the functional goroutine stack (fabric.SoftNIC steering real
// frames) or the discrete-event timing stack (nicmodel.ConnectionManager
// charging sim.Time penalties). Cross-substrate parity tests pin that
// equivalence. Nothing here allocates on the lookup path, reads clocks, or
// consults global state; adapters own locking and time.
package connstate

import (
	"errors"
	"fmt"
)

// MaxCachedConnections is the FPGA BRAM-bounded connection cache limit
// quoted in §4.2 (~153K connections for the available on-chip memory).
const MaxCachedConnections = 153 * 1024

// HostLookupPenaltyNanos is the extra latency of fetching a connection entry
// from host memory on a connection cache miss: one coherent bus round trip.
// The timing substrate charges it as sim.Time; the functional substrate may
// inject it through a per-miss hook.
const HostLookupPenaltyNanos int64 = 800

// Sentinel lifecycle errors. Adapters wrap them (with %w) to add their own
// context, so errors.Is works across layers.
var (
	// ErrAlreadyOpen reports an Open of a key that is already open.
	ErrAlreadyOpen = errors.New("connstate: connection already open")
	// ErrNotOpen reports a Lookup or Close of a key that is not open.
	ErrNotOpen = errors.New("connstate: connection not open")
)

// Key packs a (source address, connection id) pair into the cache key. The
// connection id occupies the low 32 bits, so the direct-mapped slot index —
// the key's LSBs — is decided by the connection id alone and is therefore
// identical across substrates whether or not a caller distinguishes sources;
// the source address participates only in the full-width tag match.
func Key(srcAddr, connID uint32) uint64 {
	return uint64(srcAddr)<<32 | uint64(connID)
}

// Stats is the cache's monitor-counter block.
type Stats struct {
	Hits      uint64 // lookups served from the cache
	Misses    uint64 // lookups served from the backing store (then re-cached)
	Evictions uint64 // valid entries displaced by a conflicting open or re-cache
	Opens     uint64 // successful Opens
	Closes    uint64 // successful Closes
}

// Cache is the direct-mapped connection cache plus its host backing store.
// V is the per-connection state an adapter steers by (a flow id for the
// fabric, a ConnTuple for the NIC model). The zero value is not usable;
// construct with New. Not safe for concurrent use: adapters lock.
type Cache[V any] struct {
	size  int
	mask  uint32
	valid []bool
	keys  []uint64
	vals  []V

	// backing holds every open connection (host DRAM); the cache holds the
	// subset that survived direct-mapped conflicts.
	backing map[uint64]V

	stats Stats
}

// New creates a cache of size entries, rounded up to a power of two. Size is
// a hard-configuration parameter chosen per application (§4.2); it must be
// positive and at most MaxCachedConnections.
func New[V any](size int) *Cache[V] {
	if size <= 0 {
		panic("connstate: connection cache size must be positive")
	}
	if size > MaxCachedConnections {
		panic(fmt.Sprintf("connstate: connection cache %d exceeds BRAM limit %d", size, MaxCachedConnections))
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &Cache[V]{
		size:    n,
		mask:    uint32(n - 1),
		valid:   make([]bool, n),
		keys:    make([]uint64, n),
		vals:    make([]V, n),
		backing: make(map[uint64]V),
	}
}

// Size returns the cache size in entries (post-rounding).
func (c *Cache[V]) Size() int { return c.size }

// slot returns the direct-mapped slot for key: the key's LSBs, i.e. the
// connection id's LSBs under the Key packing.
func (c *Cache[V]) slot(key uint64) uint32 { return uint32(key) & c.mask }

// Open registers a connection. The entry is written to both the backing
// store and its direct-mapped cache slot; a valid conflicting entry is
// displaced to the backing store (it already lives there) and counted as an
// eviction. Opening an already-open key returns ErrAlreadyOpen.
func (c *Cache[V]) Open(key uint64, v V) error {
	if _, exists := c.backing[key]; exists {
		return ErrAlreadyOpen
	}
	i := c.slot(key)
	if c.valid[i] && c.keys[i] == key {
		return ErrAlreadyOpen
	}
	if c.valid[i] {
		c.stats.Evictions++
	}
	c.stats.Opens++
	c.backing[key] = v
	c.valid[i] = true
	c.keys[i] = key
	c.vals[i] = v
	return nil
}

// Close removes a connection from the backing store, invalidating its cache
// slot if the slot still holds it. Closing a key that is not open returns
// ErrNotOpen.
func (c *Cache[V]) Close(key uint64) error {
	if _, exists := c.backing[key]; !exists {
		return ErrNotOpen
	}
	c.stats.Closes++
	delete(c.backing, key)
	i := c.slot(key)
	if c.valid[i] && c.keys[i] == key {
		c.valid[i] = false
	}
	return nil
}

// Lookup returns the connection's state and whether the cache served it. On
// a hit the slot is untouched. On a miss the entry is fetched from the
// backing store and re-cached, displacing (and counting as evicted) any
// valid conflicting occupant; the caller owes the host-lookup penalty. A key
// that is not open returns ErrNotOpen.
func (c *Cache[V]) Lookup(key uint64) (V, bool, error) {
	i := c.slot(key)
	if c.valid[i] && c.keys[i] == key {
		c.stats.Hits++
		return c.vals[i], true, nil
	}
	v, ok := c.backing[key]
	if !ok {
		var zero V
		return zero, false, ErrNotOpen
	}
	c.stats.Misses++
	if c.valid[i] {
		c.stats.Evictions++
	}
	c.valid[i] = true
	c.keys[i] = key
	c.vals[i] = v
	return v, false, nil
}

// Reset drops every connection — cache slots and backing store — without
// touching the monitor counters. Adapters call it when a reconfiguration
// (e.g. a balancer swap) invalidates all steering state.
func (c *Cache[V]) Reset() {
	for i := range c.valid {
		c.valid[i] = false
	}
	c.backing = make(map[uint64]V)
}

// OpenCount returns the number of open connections (cached or not).
func (c *Cache[V]) OpenCount() int { return len(c.backing) }

// Stats returns a copy of the monitor counters.
func (c *Cache[V]) Stats() Stats { return c.stats }

// HitRate returns the fraction of lookups served from the cache.
func (c *Cache[V]) HitRate() float64 {
	total := c.stats.Hits + c.stats.Misses
	if total == 0 {
		return 0
	}
	return float64(c.stats.Hits) / float64(total)
}
