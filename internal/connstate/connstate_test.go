package connstate

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	c := New[int](5)
	if c.Size() != 8 {
		t.Fatalf("size = %d, want 8 (rounded to power of two)", c.Size())
	}
	// Keys whose connection ids share LSBs land in the same slot regardless
	// of source address; distinct LSBs never collide.
	if c.slot(Key(1, 3)) != c.slot(Key(2, 3)) {
		t.Fatal("same conn id, different src mapped to different slots")
	}
	if c.slot(Key(1, 3)) == c.slot(Key(1, 4)) {
		t.Fatal("conn ids 3 and 4 collided in a size-8 cache")
	}
	if c.slot(Key(0, 3)) != c.slot(Key(0, 11)) {
		t.Fatal("conn ids 3 and 11 must alias in a size-8 cache")
	}
}

func TestLifecycleSentinels(t *testing.T) {
	c := New[string](4)
	k := Key(9, 1)
	if err := c.Open(k, "a"); err != nil {
		t.Fatal(err)
	}
	if err := c.Open(k, "b"); !errors.Is(err, ErrAlreadyOpen) {
		t.Fatalf("double open: %v, want ErrAlreadyOpen", err)
	}
	if _, _, err := c.Lookup(Key(9, 2)); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("lookup of unopened: %v, want ErrNotOpen", err)
	}
	if err := c.Close(Key(9, 2)); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("close of unopened: %v, want ErrNotOpen", err)
	}
	if err := c.Close(k); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Lookup(k); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("lookup after close: %v, want ErrNotOpen", err)
	}
	st := c.Stats()
	if st.Opens != 1 || st.Closes != 1 {
		t.Fatalf("stats = %+v, want 1 open / 1 close", st)
	}
}

// TestThrashPingPong pins the direct-mapped conflict dance exactly: two keys
// aliasing one slot ping-pong (miss, re-cache, evict) with every counter
// accounted for.
func TestThrashPingPong(t *testing.T) {
	c := New[int](4)
	a, b := Key(0, 1), Key(0, 5) // same LSBs in a size-4 cache
	if err := c.Open(a, 10); err != nil {
		t.Fatal(err)
	}
	if err := c.Open(b, 20); err != nil {
		t.Fatal(err)
	}
	// Opening b displaced a.
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions after conflicting open = %d, want 1", st.Evictions)
	}
	steps := []struct {
		key  uint64
		want int
	}{{a, 10}, {b, 20}, {a, 10}, {b, 20}}
	for i, s := range steps {
		v, hit, err := c.Lookup(s.key)
		if err != nil || v != s.want {
			t.Fatalf("step %d: v=%v err=%v", i, v, err)
		}
		if hit {
			t.Fatalf("step %d: ping-pong lookup hit; every access must miss", i)
		}
	}
	st := c.Stats()
	if st.Hits != 0 || st.Misses != 4 || st.Evictions != 5 {
		t.Fatalf("stats = %+v, want 0 hits / 4 misses / 5 evictions", st)
	}
	// A repeated lookup of the most recent key hits without evicting.
	if _, hit, _ := c.Lookup(b); !hit {
		t.Fatal("re-cached entry did not hit")
	}
	if st := c.Stats(); st.Hits != 1 || st.Evictions != 5 {
		t.Fatalf("stats after hit = %+v", st)
	}
	if got := c.HitRate(); got != 0.2 {
		t.Fatalf("hit rate = %v, want 0.2", got)
	}
}

// Property: for any open/lookup sequence, Lookup always returns the value
// most recently opened for that key, regardless of cache conflicts, and the
// backing store tracks the open population exactly.
func TestCoherenceProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		c := New[uint16](8)
		model := map[uint64]uint16{}
		for i, raw := range ids {
			k := Key(uint32(raw%3), uint32(raw%32))
			if _, open := model[k]; !open {
				if err := c.Open(k, uint16(i)); err != nil {
					return false
				}
				model[k] = uint16(i)
			} else {
				got, _, err := c.Lookup(k)
				if err != nil || got != model[k] {
					return false
				}
			}
		}
		return c.OpenCount() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestReset(t *testing.T) {
	c := New[int](4)
	for id := uint32(1); id <= 3; id++ {
		if err := c.Open(Key(0, id), int(id)); err != nil {
			t.Fatal(err)
		}
	}
	c.Lookup(Key(0, 1))
	before := c.Stats()
	c.Reset()
	if c.OpenCount() != 0 {
		t.Fatalf("open count after reset = %d", c.OpenCount())
	}
	if _, _, err := c.Lookup(Key(0, 1)); !errors.Is(err, ErrNotOpen) {
		t.Fatalf("lookup after reset: %v, want ErrNotOpen", err)
	}
	if c.Stats() != before {
		t.Fatalf("reset touched monitor counters: %+v != %+v", c.Stats(), before)
	}
	// The table is usable again and slots really were invalidated: a fresh
	// open of a previously cached id must not be mistaken for the old entry.
	if err := c.Open(Key(0, 1), 99); err != nil {
		t.Fatal(err)
	}
	v, hit, err := c.Lookup(Key(0, 1))
	if err != nil || !hit || v != 99 {
		t.Fatalf("post-reset lookup = (%v, %v, %v)", v, hit, err)
	}
}

func TestLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized cache did not panic")
		}
	}()
	New[int](MaxCachedConnections + 1)
}

// TestLookupZeroAlloc pins the lookup path allocation-free on both hits and
// re-caching misses — it runs on every request the fabric steers.
func TestLookupZeroAlloc(t *testing.T) {
	c := New[uint16](4)
	a, b := Key(1, 1), Key(1, 5)
	c.Open(a, 1)
	c.Open(b, 2)
	if n := testing.AllocsPerRun(1000, func() {
		c.Lookup(a) // ping-pong: every call is a re-caching miss
		c.Lookup(b)
		c.Lookup(b) // and this one a hit
	}); n != 0 {
		t.Fatalf("Lookup allocates %v per run, want 0", n)
	}
}
