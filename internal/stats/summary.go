package stats

import "math"

// Summary accumulates a running mean and variance using Welford's algorithm,
// for metrics where full histograms are unnecessary (utilizations, drop
// rates, queue depths).
type Summary struct {
	n    uint64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// NewSummary returns an empty summary.
func NewSummary() *Summary {
	return &Summary{min: math.Inf(1), max: math.Inf(-1)}
}

// Add records one observation.
func (s *Summary) Add(x float64) {
	s.n++
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
	if x < s.min {
		s.min = x
	}
	if x > s.max {
		s.max = x
	}
}

// N returns the observation count.
func (s *Summary) N() uint64 { return s.n }

// Mean returns the running mean, or 0 when empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.mean
}

// Variance returns the sample variance, or 0 with fewer than two samples.
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Stddev returns the sample standard deviation.
func (s *Summary) Stddev() float64 { return math.Sqrt(s.Variance()) }

// Min returns the smallest observation, or 0 when empty.
func (s *Summary) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation, or 0 when empty.
func (s *Summary) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}
