package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Record(i)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d, want 100", h.Count())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max = %d/%d, want 1/100", h.Min(), h.Max())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean = %v, want 50.5", m)
	}
	p50 := h.Percentile(50)
	if p50 < 45 || p50 > 55 {
		t.Fatalf("p50 = %d, want ~50", p50)
	}
	p99 := h.Percentile(99)
	if p99 < 95 || p99 > 100 {
		t.Fatalf("p99 = %d, want ~99", p99)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Percentile(50) != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramSingleValue(t *testing.T) {
	h := NewHistogram()
	h.RecordN(42, 1000)
	for _, p := range []float64{0, 1, 50, 99, 99.9, 100} {
		if got := h.Percentile(p); got != 42 {
			t.Fatalf("P%v = %d, want 42", p, got)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	// With 32 sub-buckets per octave, any percentile must be within ~3.2%
	// of the exact empirical percentile.
	rng := rand.New(rand.NewSource(7))
	h := NewHistogram()
	var exact []int64
	for i := 0; i < 20000; i++ {
		// Log-uniform over [100ns, 100ms].
		v := int64(100 * math.Exp(rng.Float64()*math.Log(1e6)))
		h.Record(v)
		exact = append(exact, v)
	}
	sort.Slice(exact, func(i, j int) bool { return exact[i] < exact[j] })
	for _, p := range []float64{50, 90, 99, 99.9} {
		idx := int(math.Ceil(p/100*float64(len(exact)))) - 1
		want := exact[idx]
		got := h.Percentile(p)
		relErr := math.Abs(float64(got)-float64(want)) / float64(want)
		if relErr > 0.04 {
			t.Errorf("P%v = %d, exact %d, rel err %.3f > 0.04", p, got, want, relErr)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(0); i < 500; i++ {
		a.Record(i)
		b.Record(i + 10000)
	}
	a.Merge(b)
	if a.Count() != 1000 {
		t.Fatalf("merged count = %d, want 1000", a.Count())
	}
	if a.Min() != 0 || a.Max() != 10499 {
		t.Fatalf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	p50 := a.Percentile(50)
	if p50 > 600 {
		t.Fatalf("merged p50 = %d, want < 600", p50)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(5)
	h.Reset()
	if h.Count() != 0 || h.Percentile(50) != 0 {
		t.Fatal("reset did not clear histogram")
	}
	h.Record(9)
	if h.Percentile(50) != 9 {
		t.Fatal("histogram unusable after reset")
	}
}

// Property: percentiles are monotone in p, bounded by [Min, Max], and P100
// equals Max exactly.
func TestHistogramMonotoneProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram()
		for _, v := range raw {
			h.Record(int64(v))
		}
		prev := int64(-1)
		for p := 0.0; p <= 100.0; p += 2.5 {
			v := h.Percentile(p)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return h.Percentile(100) == h.Max() && h.Percentile(0) == h.Min()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucketLow(bucketIndex(v)) <= v and the bucket width bound holds.
func TestHistogramBucketInverseProperty(t *testing.T) {
	h := NewHistogram()
	f := func(v int64) bool {
		if v < 0 {
			v = -v
		}
		idx := h.bucketIndex(v)
		low := h.bucketLow(idx)
		if low > v {
			return false
		}
		// Upper bound: next bucket's low must exceed v.
		return h.bucketLow(idx+1) > v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]int64{64, 128, 128, 512, 1024})
	if got := c.At(63); got != 0 {
		t.Fatalf("At(63) = %v, want 0", got)
	}
	if got := c.At(128); got != 0.6 {
		t.Fatalf("At(128) = %v, want 0.6", got)
	}
	if got := c.At(2048); got != 1 {
		t.Fatalf("At(2048) = %v, want 1", got)
	}
	if q := c.Quantile(0.5); q != 128 {
		t.Fatalf("Quantile(0.5) = %d, want 128", q)
	}
	if q := c.Quantile(1); q != 1024 {
		t.Fatalf("Quantile(1) = %d, want 1024", q)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.At(5) != 0 || c.Quantile(0.9) != 0 || c.Len() != 0 {
		t.Fatal("empty CDF should report zeros")
	}
}

// Property: CDF At is monotone and Quantile inverts At within data bounds.
func TestCDFProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		obs := make([]int64, len(raw))
		for i, v := range raw {
			obs[i] = int64(v)
		}
		c := NewCDF(obs)
		for _, q := range []float64{0.1, 0.5, 0.9, 0.99, 1} {
			v := c.Quantile(q)
			if c.At(v) < q-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummary(t *testing.T) {
	s := NewSummary()
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("n = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean())
	}
	// Sample variance of this classic dataset is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-9 {
		t.Fatalf("variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	s := NewSummary()
	if s.Mean() != 0 || s.Variance() != 0 || s.Min() != 0 || s.Max() != 0 {
		t.Fatal("empty summary should report zeros")
	}
}

func TestHistogramSummaryString(t *testing.T) {
	h := NewHistogram()
	h.Record(1500)
	h.Record(2500)
	out := h.Summary(1000, "us")
	if out == "" {
		t.Fatal("empty summary string")
	}
}
