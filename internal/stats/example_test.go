package stats_test

import (
	"fmt"

	"dagger/internal/stats"
)

// ExampleHistogram records latencies and queries percentiles.
func ExampleHistogram() {
	h := stats.NewHistogram()
	for i := int64(1); i <= 1000; i++ {
		h.Record(i * 100) // 100ns .. 100us
	}
	fmt.Println(h.Count(), h.Min(), h.Max())
	fmt.Println(h.Percentile(50) >= 48_000 && h.Percentile(50) <= 52_000)
	// Output:
	// 1000 100 100000
	// true
}

// ExampleCDF inspects a discrete size distribution.
func ExampleCDF() {
	c := stats.NewCDF([]int64{32, 64, 64, 128, 512})
	fmt.Printf("%.1f %d\n", c.At(64), c.Quantile(0.9))
	// Output: 0.6 512
}
