// Package stats provides the measurement primitives used across Dagger's
// experiment harness: log-bucketed latency histograms with percentile
// queries, running summaries, and CDFs over discrete size distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Histogram is a latency histogram with logarithmically spaced buckets
// (HDR-style: within each power-of-two range, a fixed number of linear
// sub-buckets). It records int64 values — nanoseconds, bytes, counts — with
// bounded relative error set by the sub-bucket resolution.
type Histogram struct {
	subBits uint // sub-buckets per octave = 1<<subBits

	counts []uint64
	total  uint64
	sum    float64
	min    int64
	max    int64
}

// NewHistogram returns a histogram with 32 sub-buckets per power of two
// (≈3% worst-case relative error), suitable for microsecond-scale latencies.
func NewHistogram() *Histogram {
	return NewHistogramPrecision(5)
}

// NewHistogramPrecision returns a histogram with 1<<subBits sub-buckets per
// power of two. subBits must be in [0, 10].
func NewHistogramPrecision(subBits uint) *Histogram {
	if subBits > 10 {
		panic("stats: subBits too large")
	}
	return &Histogram{subBits: subBits, min: math.MaxInt64, max: math.MinInt64}
}

// BucketIndex returns the bucket holding value v in the log-bucketed
// geometry with 1<<subBits sub-buckets per power of two. The geometry is
// shared with internal/metrics, whose fixed-size histograms preallocate
// NumBuckets counters so the observation path never grows a slice.
func BucketIndex(subBits uint, v int64) int {
	if v < 0 {
		v = 0
	}
	sub := int64(1) << subBits
	if v < sub {
		return int(v)
	}
	// Position of the leading bit above the linear range.
	lead := 63 - leadingZeros64(uint64(v))
	octave := lead - int(subBits)
	offset := (v >> uint(octave)) - sub // 0..sub-1 within the octave
	return int(sub) + octave*int(sub) + int(offset)
}

// BucketLow returns the lowest value mapping to bucket i (the inverse of
// BucketIndex, used for percentile reconstruction).
func BucketLow(subBits uint, i int) int64 {
	sub := int64(1) << subBits
	if int64(i) < sub {
		return int64(i)
	}
	octave := (i - int(sub)) / int(sub)
	offset := int64((i - int(sub)) % int(sub))
	v := uint64(sub+offset) << uint(octave)
	if v > math.MaxInt64 || octave > 63 {
		return math.MaxInt64
	}
	return int64(v)
}

// NumBuckets returns the number of buckets the geometry needs to cover the
// whole non-negative int64 range at the given precision.
func NumBuckets(subBits uint) int {
	return BucketIndex(subBits, math.MaxInt64) + 1
}

func (h *Histogram) bucketIndex(v int64) int { return BucketIndex(h.subBits, v) }

// bucketLow returns the lowest value mapping to bucket i (inverse of
// bucketIndex, used for percentile reconstruction).
func (h *Histogram) bucketLow(i int) int64 { return BucketLow(h.subBits, i) }

func leadingZeros64(x uint64) int {
	n := 0
	if x == 0 {
		return 64
	}
	for x&(1<<63) == 0 {
		x <<= 1
		n++
	}
	return n
}

// Record adds one observation.
func (h *Histogram) Record(v int64) { h.RecordN(v, 1) }

// RecordN adds n observations of value v.
func (h *Histogram) RecordN(v int64, n uint64) {
	if n == 0 {
		return
	}
	idx := h.bucketIndex(v)
	for idx >= len(h.counts) {
		h.counts = append(h.counts, 0)
	}
	h.counts[idx] += n
	h.total += n
	h.sum += float64(v) * float64(n)
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() uint64 { return h.total }

// Mean returns the arithmetic mean of recorded values, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	return h.sum / float64(h.total)
}

// Min returns the smallest recorded value, or 0 when empty.
func (h *Histogram) Min() int64 {
	if h.total == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total == 0 {
		return 0
	}
	return h.max
}

// Percentile returns the value at quantile p in [0, 100]. The result is the
// lower bound of the bucket containing the p-th observation, clamped to
// [Min, Max]. Empty histograms return 0.
func (h *Histogram) Percentile(p float64) int64 {
	if h.total == 0 {
		return 0
	}
	if p <= 0 {
		return h.min
	}
	if p >= 100 {
		return h.max
	}
	rank := uint64(math.Ceil(p / 100 * float64(h.total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			v := h.bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// Median is Percentile(50).
func (h *Histogram) Median() int64 { return h.Percentile(50) }

// Reset clears all recorded observations.
func (h *Histogram) Reset() {
	h.counts = h.counts[:0]
	h.total = 0
	h.sum = 0
	h.min = math.MaxInt64
	h.max = math.MinInt64
}

// Merge adds all observations from o into h. The histograms must have the
// same precision.
func (h *Histogram) Merge(o *Histogram) {
	if h.subBits != o.subBits {
		panic("stats: merging histograms of different precision")
	}
	for len(h.counts) < len(o.counts) {
		h.counts = append(h.counts, 0)
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.total += o.total
	h.sum += o.sum
	if o.total > 0 {
		if o.min < h.min {
			h.min = o.min
		}
		if o.max > h.max {
			h.max = o.max
		}
	}
}

// Summary formats count/mean/p50/p90/p99/max with a unit divisor (e.g. 1000
// for printing nanosecond records as microseconds).
func (h *Histogram) Summary(unit float64, unitName string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d mean=%.2f%s p50=%.2f%s p90=%.2f%s p99=%.2f%s max=%.2f%s",
		h.total,
		h.Mean()/unit, unitName,
		float64(h.Percentile(50))/unit, unitName,
		float64(h.Percentile(90))/unit, unitName,
		float64(h.Percentile(99))/unit, unitName,
		float64(h.Max())/unit, unitName)
	return b.String()
}

// CDF describes an empirical cumulative distribution over int64 values.
type CDF struct {
	vals []int64
}

// NewCDF builds a CDF from observations (the slice is copied and sorted).
func NewCDF(obs []int64) *CDF {
	v := make([]int64, len(obs))
	copy(v, obs)
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return &CDF{vals: v}
}

// At returns the fraction of observations <= x.
func (c *CDF) At(x int64) float64 {
	if len(c.vals) == 0 {
		return 0
	}
	i := sort.Search(len(c.vals), func(i int) bool { return c.vals[i] > x })
	return float64(i) / float64(len(c.vals))
}

// Quantile returns the smallest value v such that At(v) >= q, for q in (0,1].
func (c *CDF) Quantile(q float64) int64 {
	if len(c.vals) == 0 {
		return 0
	}
	if q <= 0 {
		return c.vals[0]
	}
	if q > 1 {
		q = 1
	}
	idx := int(math.Ceil(q*float64(len(c.vals)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.vals) {
		idx = len(c.vals) - 1
	}
	return c.vals[idx]
}

// Len returns the number of observations.
func (c *CDF) Len() int { return len(c.vals) }
