package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"

	"dagger/internal/stats"
)

func TestCounterGauge(t *testing.T) {
	r := New()
	c := r.Counter("rpc.in")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("queue.depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegisterExisting(t *testing.T) {
	var c Counter
	c.Add(3)
	r := New()
	if got := r.RegisterCounter("pre.counted", &c); got != &c {
		t.Fatalf("RegisterCounter did not return the same handle")
	}
	if got := r.Snapshot().Value("pre.counted"); got != 3 {
		t.Fatalf("registered counter value = %d, want 3", got)
	}
}

func TestNameValidation(t *testing.T) {
	r := New()
	r.Counter("ok.name-1_x")
	for _, bad := range []string{"", "Upper.case", "spa ce", "uni.cöde"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q: want panic", bad)
				}
			}()
			r.Counter(bad)
		}()
	}
	// Duplicate across kinds must panic too.
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("duplicate name: want panic")
			}
		}()
		r.Gauge("ok.name-1_x")
	}()
}

func TestFuncGauge(t *testing.T) {
	r := New()
	level := int64(0)
	r.Func("derived.level", func() int64 { return level })
	level = 42
	if got := r.Snapshot().Value("derived.level"); got != 42 {
		t.Fatalf("func gauge = %d, want 42", got)
	}
}

func TestSnapshotSorted(t *testing.T) {
	r := New()
	r.Counter("z.last")
	r.Counter("a.first")
	r.Counter("m.middle")
	s := r.Snapshot()
	names := make([]string, len(s.Samples))
	for i, sm := range s.Samples {
		names[i] = sm.Name
	}
	want := []string{"a.first", "m.middle", "z.last"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("snapshot order = %v, want %v", names, want)
		}
	}
}

func TestSnapshotSelfContained(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Inc()
	h.Observe(10)
	s := r.Snapshot()
	c.Add(100)
	h.Observe(10)
	if got := s.Value("c"); got != 1 {
		t.Fatalf("snapshot counter mutated to %d", got)
	}
	if sm, _ := s.Get("h"); sm.Value != 1 || sm.Buckets[0].Count != 1 {
		t.Fatalf("snapshot histogram mutated: %+v", sm)
	}
}

func TestHistogramGeometryMatchesStats(t *testing.T) {
	h := NewHistogram()
	ref := stats.NewHistogram()
	vals := []int64{0, 1, 31, 32, 63, 64, 100, 4096, 1 << 20, math.MaxInt64, -5}
	for _, v := range vals {
		h.Observe(v)
		ref.Record(v)
	}
	if h.Count() != ref.Count() {
		t.Fatalf("count mismatch: %d vs %d", h.Count(), ref.Count())
	}
	for _, p := range []float64{50, 90, 99} {
		got := h.Quantile(p)
		// stats.Percentile clamps to [min, max] while Quantile returns the
		// raw bucket low, so compare at bucket granularity.
		want := ref.Percentile(p)
		if stats.BucketIndex(DefaultSubBits, got) != stats.BucketIndex(DefaultSubBits, want) {
			t.Fatalf("p%.0f = %d, want bucket of %d", p, got, want)
		}
	}
	// Exact bucket boundary values must round-trip exactly.
	for _, v := range []int64{64, 256, 1024, 4096} {
		i := stats.BucketIndex(DefaultSubBits, v)
		if low := stats.BucketLow(DefaultSubBits, i); low != v {
			t.Fatalf("boundary %d maps to bucket low %d", v, low)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram()
	for i := int64(1); i <= 100; i++ {
		h.Observe(i * 1000)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	p50 := h.Quantile(50)
	if p50 < 40_000 || p50 > 60_000 {
		t.Fatalf("p50 = %d, want ≈50000", p50)
	}
	if h.Sum() != 5050*1000 {
		t.Fatalf("sum = %d", h.Sum())
	}
}

func TestFilterAndWithPrefix(t *testing.T) {
	r := New()
	r.Counter("conn.hits").Inc()
	r.Counter("conn.misses")
	r.Counter("connect.other").Inc()
	r.Counter("shed.expired").Inc()
	f := r.Snapshot().Filter("conn")
	if len(f.Samples) != 2 {
		t.Fatalf("Filter(conn) = %d samples, want 2 (no connect.*): %+v", len(f.Samples), f.Samples)
	}
	p := f.WithPrefix("nic")
	if _, ok := p.Get("nic.conn.hits"); !ok {
		t.Fatalf("WithPrefix missing nic.conn.hits: %+v", p.Samples)
	}
}

func TestDelta(t *testing.T) {
	r := New()
	c := r.Counter("c")
	h := r.Histogram("h")
	c.Add(2)
	h.Observe(64)
	before := r.Snapshot()
	c.Add(3)
	h.Observe(64)
	h.Observe(4096)
	after := r.Snapshot()
	d := after.Delta(before)
	if got := d.Value("c"); got != 3 {
		t.Fatalf("delta counter = %d, want 3", got)
	}
	hs, _ := d.Get("h")
	if hs.Value != 2 || len(hs.Buckets) != 2 {
		t.Fatalf("delta histogram = %+v, want 2 obs in 2 buckets", hs)
	}
}

func TestMergeAndDiff(t *testing.T) {
	a := New()
	a.Counter("conn.hits").Add(5)
	b := New()
	b.Counter("conn.hits").Add(5)
	sa, sb := a.Snapshot(), b.Snapshot()
	if d := Diff(sa, sb); d != "" {
		t.Fatalf("identical snapshots diff: %s", d)
	}
	b2 := New()
	b2.Counter("conn.hits").Add(6)
	if d := Diff(sa, b2.Snapshot()); !strings.Contains(d, "conn.hits") {
		t.Fatalf("diff missed changed counter: %q", d)
	}
	m := Merge(sa.WithPrefix("x"), sb.WithPrefix("y"))
	if len(m.Samples) != 2 || m.Samples[0].Name != "x.conn.hits" {
		t.Fatalf("merge = %+v", m.Samples)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("Merge with duplicate names: want panic")
			}
		}()
		Merge(sa, sb)
	}()
}

func TestWriteTextJSON(t *testing.T) {
	r := New()
	r.Counter("rpc.in").Add(3)
	r.Histogram("lat").Observe(100)
	var text bytes.Buffer
	if err := r.Snapshot().WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "rpc.in counter 3") {
		t.Fatalf("text export:\n%s", text.String())
	}
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var round Snapshot
	if err := json.Unmarshal(buf.Bytes(), &round); err != nil {
		t.Fatalf("JSON round-trip: %v\n%s", err, buf.String())
	}
	if Diff(r.Snapshot(), round) != "" {
		t.Fatalf("JSON round-trip changed snapshot:\n%s", Diff(r.Snapshot(), round))
	}
	// Byte stability: encoding the same snapshot twice is identical.
	var buf2 bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatalf("JSON export not byte-stable")
	}
}

// TestMetricsZeroAlloc pins the hot-path contract: a warm Counter.Inc,
// Counter.Add, Gauge.Set, and Histogram.Observe perform zero allocations.
func TestMetricsZeroAlloc(t *testing.T) {
	r := New()
	c := r.Counter("hot.counter")
	g := r.Gauge("hot.gauge")
	h := r.Histogram("hot.hist")
	// Warm up.
	c.Inc()
	g.Set(1)
	h.Observe(123)

	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(9) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op, want 0", n)
	}
	v := int64(0)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(v); v += 997 }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}

// TestSnapshotConcurrent races hot-path writers against snapshotting; run
// under -race this is the regression test for mixed atomic/plain access.
func TestSnapshotConcurrent(t *testing.T) {
	r := New()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(int64(i) * 1024)
			}
		}(i)
	}
	for i := 0; i < 100; i++ {
		s := r.Snapshot()
		if sm, ok := s.Get("h"); ok {
			var sum uint64
			for _, b := range sm.Buckets {
				sum += b.Count
			}
			if int64(sum) != sm.Value {
				t.Fatalf("histogram Value %d != bucket sum %d", sm.Value, sum)
			}
		}
	}
	close(stop)
	wg.Wait()
}
