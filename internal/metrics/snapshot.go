package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Bucket is one non-empty histogram bucket: Low is the smallest value
// mapping into it (stats.BucketLow), Count the number of observations.
type Bucket struct {
	Low   int64  `json:"low"`
	Count uint64 `json:"count"`
}

// Sample is one captured metric. For counters and gauges Value is the
// count/level; for histograms Value is the observation count, Sum the
// running sum, and Buckets the non-empty buckets in ascending order.
type Sample struct {
	Name    string   `json:"name"`
	Kind    Kind     `json:"kind"`
	Value   int64    `json:"value"`
	Sum     int64    `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Quantile returns the lower bound of the bucket containing the p-th
// percentile observation, p in [0, 100]. Zero for non-histogram or empty
// samples.
func (s Sample) Quantile(p float64) int64 {
	return quantileFromBuckets(s.Buckets, p)
}

func quantileFromBuckets(buckets []Bucket, p float64) int64 {
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := uint64(math.Ceil(p / 100 * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range buckets {
		seen += b.Count
		if seen >= rank {
			return b.Low
		}
	}
	return buckets[len(buckets)-1].Low
}

// Snapshot is a point-in-time capture of a registry: samples stable-sorted
// by name. The zero value is an empty snapshot.
type Snapshot struct {
	Samples []Sample `json:"samples"`
}

// Get returns the sample with the given name, or a zero Sample and false.
func (s Snapshot) Get(name string) (Sample, bool) {
	i := sort.Search(len(s.Samples), func(i int) bool { return s.Samples[i].Name >= name })
	if i < len(s.Samples) && s.Samples[i].Name == name {
		return s.Samples[i], true
	}
	return Sample{}, false
}

// Value returns the named sample's Value, or 0 if absent.
func (s Snapshot) Value(name string) int64 {
	sm, _ := s.Get(name)
	return sm.Value
}

// Filter returns the samples whose names start with any of the given
// dotted prefixes. A prefix matches the exact name or any name under it
// ("conn" matches "conn.hits" but not "connect.x"). Sort order is
// preserved.
func (s Snapshot) Filter(prefixes ...string) Snapshot {
	out := Snapshot{}
	for _, sm := range s.Samples {
		for _, p := range prefixes {
			if sm.Name == p || (strings.HasPrefix(sm.Name, p) && len(sm.Name) > len(p) && sm.Name[len(p)] == '.') {
				out.Samples = append(out.Samples, sm)
				break
			}
		}
	}
	return out
}

// WithPrefix returns a copy with every sample name prefixed by
// "prefix." — used to merge per-component snapshots into one namespace.
func (s Snapshot) WithPrefix(prefix string) Snapshot {
	if prefix == "" {
		return s
	}
	out := Snapshot{Samples: make([]Sample, len(s.Samples))}
	for i, sm := range s.Samples {
		sm.Name = prefix + "." + sm.Name
		out.Samples[i] = sm
	}
	return out
}

// Delta returns s minus prev, matched by name: counter/gauge values and
// histogram bucket counts subtract; samples absent from prev pass through
// unchanged; samples only in prev are dropped. Use it to isolate one
// experiment phase from a shared registry.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{Samples: make([]Sample, 0, len(s.Samples))}
	for _, cur := range s.Samples {
		old, ok := prev.Get(cur.Name)
		if !ok {
			out.Samples = append(out.Samples, cur)
			continue
		}
		d := cur
		d.Value = cur.Value - old.Value
		d.Sum = cur.Sum - old.Sum
		if len(cur.Buckets) > 0 || len(old.Buckets) > 0 {
			d.Buckets = subtractBuckets(cur.Buckets, old.Buckets)
		}
		out.Samples = append(out.Samples, d)
	}
	return out
}

// subtractBuckets subtracts old bucket counts from cur by Low value,
// dropping buckets that reach zero. Counts never decrease in a live
// histogram, so a missing cur bucket with an old count only arises from
// mismatched snapshots; it is dropped rather than inventing negatives.
func subtractBuckets(cur, old []Bucket) []Bucket {
	oldAt := make(map[int64]uint64, len(old))
	for _, b := range old {
		oldAt[b.Low] = b.Count
	}
	out := make([]Bucket, 0, len(cur))
	for _, b := range cur {
		n := b.Count - oldAt[b.Low]
		if n > 0 && n <= b.Count {
			out = append(out, Bucket{Low: b.Low, Count: n})
		}
	}
	return out
}

// Merge combines snapshots into one, re-sorted by name. Duplicate names
// across inputs panic — merge per-component snapshots under distinct
// WithPrefix namespaces instead.
func Merge(snaps ...Snapshot) Snapshot {
	out := Snapshot{}
	seen := make(map[string]bool)
	for _, s := range snaps {
		for _, sm := range s.Samples {
			if seen[sm.Name] {
				panic(fmt.Sprintf("metrics: Merge duplicate sample name %q", sm.Name))
			}
			seen[sm.Name] = true
			out.Samples = append(out.Samples, sm)
		}
	}
	sort.Slice(out.Samples, func(i, j int) bool { return out.Samples[i].Name < out.Samples[j].Name })
	return out
}

// Diff reports the differences between two snapshots as newline-separated
// "name: a=x b=y" lines, or "" when byte-identical. Parity tests assert
// Diff == "".
func Diff(a, b Snapshot) string {
	out := make([]string, 0, len(a.Samples)+len(b.Samples))
	i, j := 0, 0
	for i < len(a.Samples) || j < len(b.Samples) {
		switch {
		case j >= len(b.Samples) || (i < len(a.Samples) && a.Samples[i].Name < b.Samples[j].Name):
			// dagger:ignore hotpathalloc Diff is a diagnostics-only slow path; readable formatting wins
			out = append(out, fmt.Sprintf("%s: only in a (value=%d)", a.Samples[i].Name, a.Samples[i].Value))
			i++
		case i >= len(a.Samples) || b.Samples[j].Name < a.Samples[i].Name:
			// dagger:ignore hotpathalloc Diff is a diagnostics-only slow path; readable formatting wins
			out = append(out, fmt.Sprintf("%s: only in b (value=%d)", b.Samples[j].Name, b.Samples[j].Value))
			j++
		default:
			sa, sb := a.Samples[i], b.Samples[j]
			if sa.Kind != sb.Kind || sa.Value != sb.Value || sa.Sum != sb.Sum || !bucketsEqual(sa.Buckets, sb.Buckets) {
				// dagger:ignore hotpathalloc Diff is a diagnostics-only slow path; readable formatting wins
				out = append(out, fmt.Sprintf("%s: a={kind=%s value=%d sum=%d buckets=%v} b={kind=%s value=%d sum=%d buckets=%v}",
					sa.Name, sa.Kind, sa.Value, sa.Sum, sa.Buckets, sb.Kind, sb.Value, sb.Sum, sb.Buckets))
			}
			i++
			j++
		}
	}
	return strings.Join(out, "\n")
}

func bucketsEqual(a, b []Bucket) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// WriteText writes one "name kind value" line per sample (histograms add
// sum and the non-empty bucket list), in sorted order.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, sm := range s.Samples {
		var err error
		if sm.Kind == KindHistogram {
			_, err = fmt.Fprintf(w, "%s %s count=%d sum=%d buckets=%d\n", sm.Name, sm.Kind, sm.Value, sm.Sum, len(sm.Buckets))
		} else {
			_, err = fmt.Fprintf(w, "%s %s %d\n", sm.Name, sm.Kind, sm.Value)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON writes the snapshot as indented JSON. Sample order (sorted by
// name) makes the output byte-stable for identical snapshots.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
