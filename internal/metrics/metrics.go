// Package metrics is the unified telemetry plane for both Dagger substrates:
// one deterministic, allocation-free registry of typed counter, gauge, and
// histogram handles with hierarchical dotted names. The paper's entire
// evaluation (§5, Figs. 10-15) is driven by per-stage NIC counters — cache
// hits, queue occupancies, sheds, congestion marks — and every layer of this
// reproduction (fabric.SoftNIC, nicmodel.NIC, the core client/server, the
// transports, the buffer pools, the trace collector) registers its counters
// here instead of growing ad-hoc accounting, so experiments read one
// Snapshot per component instead of hand-plumbing getter tuples.
//
// Design constraints, in order:
//
//   - Hot-path updates (Counter.Inc, Counter.Add, Gauge.Set,
//     Histogram.Observe) are single atomic operations: no locks, no
//     allocation, no map lookups. Handles are resolved once at registration
//     time and then held by the owning component.
//   - Snapshots are deterministic: samples are stable-sorted by name, and
//     nothing in the package consults maps in iteration order, the wall
//     clock, or unseeded randomness, so two substrates replaying the same
//     trace produce byte-identical snapshots (the cross-substrate parity
//     tests diff whole snapshots).
//   - Registration is the slow path. It takes a lock, may allocate, and
//     panics on programmer error (duplicate or malformed names) rather than
//     returning errors every call site would have to ignore.
//
// Naming scheme: lowercase dotted hierarchies, `family.event` (conn.hits,
// shed.expired, mark.rx.stamped). Families shared by both substrates —
// conn.*, shed.*, mark.* — must use identical names on both sides; that is
// what makes whole-snapshot parity diffs possible.
//
// Snapshots taken while traffic is flowing are per-sample atomic but not
// globally consistent (counter A may include an event whose companion in
// counter B is not yet visible); experiments snapshot at quiescence.
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"dagger/internal/stats"
)

// Kind discriminates sample types in snapshots and exports.
type Kind string

// Sample kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Counter is a monotonically increasing event counter. The zero value is
// ready to use, so components embed Counter fields directly where an
// atomic.Uint64 used to live — the Add/Load method set is intentionally
// identical — and register them with Registry.RegisterCounter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed level (queue depth, window size). The
// zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current level.
func (g *Gauge) Load() int64 { return g.v.Load() }

// DefaultSubBits is the default histogram precision: 32 sub-buckets per
// power of two, matching stats.NewHistogram (≈3% worst-case relative error).
const DefaultSubBits = 5

// Histogram is a fixed-bucket log-bucketed histogram sharing the
// internal/stats geometry (stats.BucketIndex / stats.BucketLow). Unlike
// stats.Histogram it never grows: all buckets covering the non-negative
// int64 range are preallocated at construction, so Observe is a pure
// index computation plus three atomic adds — allocation-free and safe for
// concurrent use on the data path.
type Histogram struct {
	subBits uint
	counts  []atomic.Uint64
	total   atomic.Uint64
	sum     atomic.Int64
}

// NewHistogram returns a histogram with DefaultSubBits precision.
func NewHistogram() *Histogram { return NewHistogramPrecision(DefaultSubBits) }

// NewHistogramPrecision returns a histogram with 1<<subBits sub-buckets per
// power of two. subBits must be in [0, 10]; memory is ~8 B per bucket
// (≈15 KB at the default precision).
func NewHistogramPrecision(subBits uint) *Histogram {
	if subBits > 10 {
		panic("metrics: histogram subBits too large")
	}
	return &Histogram{
		subBits: subBits,
		counts:  make([]atomic.Uint64, stats.NumBuckets(subBits)),
	}
}

// Observe records one value. Negative values clamp to zero (the shared
// stats geometry's convention).
func (h *Histogram) Observe(v int64) {
	h.counts[stats.BucketIndex(h.subBits, v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.total.Load() }

// Sum returns the running sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the lower bound of the bucket containing the p-th
// percentile observation, p in [0, 100]. Empty histograms return 0.
func (h *Histogram) Quantile(p float64) int64 {
	return quantileFromBuckets(h.snapshotBuckets(), p)
}

// snapshotBuckets collects the non-empty buckets in ascending value order.
func (h *Histogram) snapshotBuckets() []Bucket {
	out := make([]Bucket, 0, len(h.counts))
	for i := range h.counts {
		if n := h.counts[i].Load(); n > 0 {
			out = append(out, Bucket{Low: stats.BucketLow(h.subBits, i), Count: n})
		}
	}
	return out
}

// entry is one registered metric. Exactly one of the handle fields is set.
type entry struct {
	name string
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
	fn   func() int64
}

// Registry holds a component's metrics. Registration is locked and may
// allocate; the handles it returns are then updated without touching the
// registry again. A Registry is safe for concurrent registration and
// snapshotting, but components conventionally register everything at
// construction time.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]bool
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// validName enforces the naming scheme: non-empty, lowercase dotted
// hierarchies over [a-z0-9._-].
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		ch := name[i]
		switch {
		case ch >= 'a' && ch <= 'z':
		case ch >= '0' && ch <= '9':
		case ch == '.' || ch == '_' || ch == '-':
		default:
			return false
		}
	}
	return true
}

func (r *Registry) add(e entry) {
	if !validName(e.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q (want lowercase dotted [a-z0-9._-])", e.name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic(fmt.Sprintf("metrics: duplicate metric name %q", e.name))
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// Counter creates, registers, and returns a counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	return r.RegisterCounter(name, c)
}

// RegisterCounter registers an existing counter (typically an embedded
// struct field) under name and returns it.
func (r *Registry) RegisterCounter(name string, c *Counter) *Counter {
	if c == nil {
		panic("metrics: RegisterCounter with nil counter")
	}
	r.add(entry{name: name, kind: KindCounter, c: c})
	return c
}

// Gauge creates, registers, and returns a gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	return r.RegisterGauge(name, g)
}

// RegisterGauge registers an existing gauge under name and returns it.
func (r *Registry) RegisterGauge(name string, g *Gauge) *Gauge {
	if g == nil {
		panic("metrics: RegisterGauge with nil gauge")
	}
	r.add(entry{name: name, kind: KindGauge, g: g})
	return g
}

// Histogram creates, registers, and returns a histogram at the default
// precision.
func (r *Registry) Histogram(name string) *Histogram {
	return r.RegisterHistogram(name, NewHistogram())
}

// RegisterHistogram registers an existing histogram under name and returns
// it.
func (r *Registry) RegisterHistogram(name string, h *Histogram) *Histogram {
	if h == nil {
		panic("metrics: RegisterHistogram with nil histogram")
	}
	r.add(entry{name: name, kind: KindHistogram, h: h})
	return h
}

// Func registers a read-time computed gauge: fn is invoked at every
// Snapshot. Use it for levels derived from existing state (cache stats,
// ring occupancy) so the owning structure needs no duplicate counter; fn
// must be safe to call from the snapshotting goroutine.
func (r *Registry) Func(name string, fn func() int64) {
	if fn == nil {
		panic("metrics: Func with nil function")
	}
	r.add(entry{name: name, kind: KindGauge, fn: fn})
}

// Snapshot captures every registered metric, stable-sorted by name. The
// result is self-contained: mutating the registry or its handles afterwards
// does not change an existing snapshot.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	entries := make([]entry, len(r.entries))
	copy(entries, r.entries)
	r.mu.Unlock()

	samples := make([]Sample, 0, len(entries))
	for _, e := range entries {
		s := Sample{Name: e.name, Kind: e.kind}
		switch {
		case e.c != nil:
			s.Value = int64(e.c.Load())
		case e.g != nil:
			s.Value = e.g.Load()
		case e.fn != nil:
			s.Value = e.fn()
		case e.h != nil:
			s.Buckets = e.h.snapshotBuckets()
			// Derive the count from the captured buckets so Value ==
			// sum(Buckets) holds within one snapshot even if observations
			// land between the loads.
			var total uint64
			for _, b := range s.Buckets {
				total += b.Count
			}
			s.Value = int64(total)
			s.Sum = e.h.Sum()
		}
		samples = append(samples, s)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].Name < samples[j].Name })
	return Snapshot{Samples: samples}
}
