package nicmodel

import (
	"fmt"
	"testing"
	"testing/quick"

	"dagger/internal/dataplane"
	"dagger/internal/interconnect"
	"dagger/internal/sim"
	"dagger/internal/wire"
)

func TestConnectionManagerOpenLookupClose(t *testing.T) {
	cm := NewConnectionManager(64)
	tup := ConnTuple{SrcFlow: 3, DestAddr: 0x0A000001, LoadBalancer: BalancerStatic}
	if err := cm.Open(7, tup); err != nil {
		t.Fatal(err)
	}
	got, penalty, err := cm.Lookup(7)
	if err != nil || penalty != 0 {
		t.Fatalf("lookup: %v penalty %v", err, penalty)
	}
	if got != tup {
		t.Fatalf("tuple = %+v, want %+v", got, tup)
	}
	if err := cm.Close(7); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cm.Lookup(7); err == nil {
		t.Fatal("lookup of closed connection succeeded")
	}
}

func TestConnectionManagerDoubleOpenClose(t *testing.T) {
	cm := NewConnectionManager(16)
	if err := cm.Open(1, ConnTuple{}); err != nil {
		t.Fatal(err)
	}
	if err := cm.Open(1, ConnTuple{}); err == nil {
		t.Fatal("double open succeeded")
	}
	if err := cm.Close(2); err == nil {
		t.Fatal("close of unopened connection succeeded")
	}
}

func TestConnectionManagerConflictMiss(t *testing.T) {
	cm := NewConnectionManager(4) // ids 1 and 5 conflict (same LSBs)
	a := ConnTuple{SrcFlow: 1}
	b := ConnTuple{SrcFlow: 2}
	if err := cm.Open(1, a); err != nil {
		t.Fatal(err)
	}
	if err := cm.Open(5, b); err != nil {
		t.Fatal(err)
	}
	// id 5 displaced id 1 in the direct-mapped slot; looking up 1 must
	// miss to host memory with a penalty, then be re-cached.
	got, penalty, err := cm.Lookup(1)
	if err != nil {
		t.Fatal(err)
	}
	if penalty != HostLookupPenalty {
		t.Fatalf("penalty = %v, want %v", penalty, HostLookupPenalty)
	}
	if got != a {
		t.Fatalf("tuple = %+v, want %+v", got, a)
	}
	// Now 1 is cached; 5 misses.
	if _, p, _ := cm.Lookup(1); p != 0 {
		t.Fatal("re-cached entry still misses")
	}
	if _, p, _ := cm.Lookup(5); p != HostLookupPenalty {
		t.Fatal("displaced entry should miss")
	}
	if cm.HitRate() >= 1 || cm.HitRate() <= 0 {
		t.Fatalf("hit rate = %v", cm.HitRate())
	}
}

// TestConnectionManagerThrash pins the direct-mapped conflict ping-pong with
// exact monitor counters: two ids aliasing one slot alternate miss →
// re-cache → evict on every access (the degradation mode the connscale
// experiment measures past cache capacity).
func TestConnectionManagerThrash(t *testing.T) {
	cm := NewConnectionManager(4)
	a := ConnTuple{SrcFlow: 1}
	b := ConnTuple{SrcFlow: 2}
	if err := cm.Open(1, a); err != nil {
		t.Fatal(err)
	}
	if err := cm.Open(5, b); err != nil { // displaces id 1: eviction #1
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, p, err := cm.Lookup(1); err != nil || p != HostLookupPenalty {
			t.Fatalf("round %d: lookup(1) penalty=%v err=%v", i, p, err)
		}
		if _, p, err := cm.Lookup(5); err != nil || p != HostLookupPenalty {
			t.Fatalf("round %d: lookup(5) penalty=%v err=%v", i, p, err)
		}
	}
	st := cm.Stats()
	if st.Hits != 0 || st.Misses != 6 || st.Evictions != 7 || st.Opens != 2 {
		t.Fatalf("stats = %+v, want 0 hits / 6 misses / 7 evictions / 2 opens", st)
	}
	// Break the ping-pong: the most recently re-cached id now hits for free.
	if _, p, err := cm.Lookup(5); err != nil || p != 0 {
		t.Fatalf("re-cached lookup penalty=%v err=%v", p, err)
	}
	if st := cm.Stats(); st.Hits != 1 || st.Evictions != 7 {
		t.Fatalf("stats after hit = %+v", st)
	}
}

// Property: with any open/lookup sequence, Lookup always returns the tuple
// most recently opened for that id, regardless of cache conflicts.
func TestConnectionManagerCoherenceProperty(t *testing.T) {
	f := func(ids []uint8) bool {
		cm := NewConnectionManager(8)
		model := map[uint32]ConnTuple{}
		for i, raw := range ids {
			id := uint32(raw % 32)
			if _, open := model[id]; !open {
				tup := ConnTuple{SrcFlow: uint16(i)}
				if err := cm.Open(id, tup); err != nil {
					return false
				}
				model[id] = tup
			} else {
				got, _, err := cm.Lookup(id)
				if err != nil || got != model[id] {
					return false
				}
			}
		}
		return cm.OpenCount() == len(model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestConnectionManagerLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("oversized connection cache did not panic")
		}
	}()
	NewConnectionManager(MaxCachedConnections + 1)
}

func TestBalancerUniformRoundRobin(t *testing.T) {
	b := NewBalancer(BalancerUniform, 4)
	counts := make([]int, 4)
	for i := 0; i < 100; i++ {
		counts[b.Pick(Steer{})]++
	}
	for f, c := range counts {
		if c != 25 {
			t.Fatalf("flow %d got %d, want 25", f, c)
		}
	}
}

func TestBalancerStatic(t *testing.T) {
	b := NewBalancer(BalancerStatic, 4)
	for f := uint16(0); f < 4; f++ {
		if got := b.Pick(Steer{ConnFlow: f}); got != f {
			t.Fatalf("static pick = %d, want %d", got, f)
		}
	}
	// Out-of-range conn flow wraps rather than panicking.
	if got := b.Pick(Steer{ConnFlow: 7}); got != 3 {
		t.Fatalf("wrapped pick = %d, want 3", got)
	}
}

func TestBalancerObjectLevelAffinity(t *testing.T) {
	b := NewBalancer(BalancerObjectLevel, 8)
	// Same key always lands on the same flow (MICA's requirement, §5.7).
	k := []byte("user:42")
	first := b.Pick(Steer{Key: k})
	for i := 0; i < 50; i++ {
		if b.Pick(Steer{Key: k}) != first {
			t.Fatal("object-level steering not stable for a key")
		}
	}
	// Different keys spread across flows.
	seen := map[uint16]bool{}
	for i := 0; i < 200; i++ {
		seen[b.Pick(Steer{Key: []byte(fmt.Sprintf("key-%d", i))})] = true
	}
	if len(seen) < 6 {
		t.Fatalf("object-level steering used only %d/8 flows", len(seen))
	}
}

func TestTxPathEnqueueSchedule(t *testing.T) {
	tx := NewTxPath(4, 2)
	if tx.TableSize() != 8 {
		t.Fatalf("table size = %d, want 8", tx.TableSize())
	}
	for i := 0; i < 4; i++ {
		if !tx.Enqueue(0, uint64(i), []byte{byte(i)}) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	// Flow 1 has fewer than a batch: not schedulable without force.
	tx.Enqueue(1, 100, []byte{0xAA})
	data, flow, ok := tx.ScheduleBatch(false)
	if !ok || flow != 0 || len(data) != 4 {
		t.Fatalf("schedule = %v flow %d ok %v", data, flow, ok)
	}
	for i, d := range data {
		if d[0] != byte(i) {
			t.Fatalf("batch order wrong at %d", i)
		}
	}
	if _, _, ok := tx.ScheduleBatch(false); ok {
		t.Fatal("partial batch scheduled without force")
	}
	data, flow, ok = tx.ScheduleBatch(true)
	if !ok || flow != 1 || len(data) != 1 || data[0][0] != 0xAA {
		t.Fatal("forced flush failed")
	}
	if tx.FreeSlots() != tx.TableSize() {
		t.Fatalf("slots leaked: %d free of %d", tx.FreeSlots(), tx.TableSize())
	}
}

func TestTxPathBackpressure(t *testing.T) {
	tx := NewTxPath(2, 1)
	if !tx.Enqueue(0, 1, nil) || !tx.Enqueue(0, 2, nil) {
		t.Fatal("fill failed")
	}
	if tx.Enqueue(0, 3, nil) {
		t.Fatal("enqueue into full table succeeded")
	}
	if tx.Stalls.Load() != 1 {
		t.Fatalf("stalls = %d, want 1", tx.Stalls.Load())
	}
}

// Property: slots never leak — after any enqueue/schedule sequence,
// free + queued == table size, and scheduled batches preserve FIFO order
// within a flow.
func TestTxPathSlotConservationProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		tx := NewTxPath(3, 4)
		queued := 0
		nextID := uint64(0)
		expect := make([][]uint64, 4)
		for _, op := range ops {
			if op%2 == 0 {
				flow := uint16(op/2) % 4
				if tx.Enqueue(flow, nextID, []byte{byte(nextID)}) {
					expect[flow] = append(expect[flow], nextID)
					queued++
				}
				nextID++
			} else {
				data, flow, ok := tx.ScheduleBatch(op%4 == 3)
				if ok {
					for i, d := range data {
						want := expect[flow][i]
						if d[0] != byte(want) {
							return false
						}
					}
					expect[flow] = expect[flow][len(data):]
					queued -= len(data)
				}
			}
			if tx.FreeSlots()+queued != tx.TableSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHCCHitMiss(t *testing.T) {
	h := NewHCC()
	if p := h.Access(0x1000); p != HCCMissPenalty {
		t.Fatalf("cold access penalty = %v", p)
	}
	if p := h.Access(0x1000); p != 0 {
		t.Fatalf("warm access penalty = %v", p)
	}
	if p := h.Access(0x1008); p != 0 {
		t.Fatal("same-line access missed")
	}
	h.Invalidate(0x1000)
	if p := h.Access(0x1000); p != HCCMissPenalty {
		t.Fatal("invalidated line still hit")
	}
	if h.HitRate() <= 0 || h.HitRate() >= 1 {
		t.Fatalf("hit rate = %v", h.HitRate())
	}
}

func TestHCCConflict(t *testing.T) {
	h := NewHCC()
	a := uint64(0)
	b := a + HCCSizeBytes // maps to the same direct-mapped slot
	h.Access(a)
	h.Access(b)
	if p := h.Access(a); p != HCCMissPenalty {
		t.Fatal("conflicting line should have been evicted")
	}
}

func TestHardConfigValidation(t *testing.T) {
	good := HardConfig{NFlows: 64, ConnCacheSize: 65536, Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 4}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []HardConfig{
		{NFlows: 0, ConnCacheSize: 64, Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 1}},
		{NFlows: MaxNFlows + 1, ConnCacheSize: 64, Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 1}},
		{NFlows: 4, ConnCacheSize: 0, Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 1}},
		{NFlows: 4, ConnCacheSize: 64, Iface: interconnect.Config{Kind: interconnect.MMIO, Batch: 2}},
	}
	for i, h := range bad {
		if err := h.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func newTestNIC(t *testing.T, eng *sim.Engine) *NIC {
	t.Helper()
	n, err := NewNIC(eng, HardConfig{
		NFlows:        8,
		ConnCacheSize: 1024,
		Iface:         interconnect.Config{Kind: interconnect.UPI, Batch: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNICSoftReconfigure(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNIC(t, eng)
	if n.Soft().Batch != 4 || n.Soft().ActiveFlows != 8 {
		t.Fatalf("defaults = %+v", n.Soft())
	}
	s := n.Soft()
	s.Batch = 1
	s.ActiveFlows = 2
	s.Balancer = BalancerObjectLevel
	if err := n.Reconfigure(s); err != nil {
		t.Fatal(err)
	}
	if n.Balancer.Kind() != BalancerObjectLevel {
		t.Fatal("balancer not rebuilt")
	}
	if n.TX.TableSize() != 2 {
		t.Fatalf("tx table = %d, want batch*flows = 2", n.TX.TableSize())
	}
	s.ActiveFlows = 9 // exceeds hard NFlows
	if err := n.Reconfigure(s); err == nil {
		t.Fatal("overscaled soft config accepted")
	}
	if n.Monitor.SoftReconfig.Load() != 2 {
		t.Fatalf("reconfig count = %d, want 2", n.Monitor.SoftReconfig.Load())
	}
}

func TestNICPipelineDelay(t *testing.T) {
	eng := sim.NewEngine()
	n := newTestNIC(t, eng)
	m := &wire.Message{Payload: make([]byte, 16)} // 1 line
	d1 := n.PipelineDelay(m)
	if d1 != n.Timing.Transit+n.Timing.PerRPC {
		t.Fatalf("idle pipeline delay = %v", d1)
	}
	// Immediately-following message queues behind the first's occupancy.
	d2 := n.PipelineDelay(m)
	if d2 <= d1 {
		t.Fatalf("back-to-back delay %v not greater than idle %v", d2, d1)
	}
	// Multi-line message occupies longer.
	big := &wire.Message{Payload: make([]byte, 500)}
	eng2 := sim.NewEngine()
	n2 := newTestNIC(t, eng2)
	if n2.PipelineDelay(big) <= d1 {
		t.Fatal("multi-line RPC should take longer than single-line")
	}
}

func TestTXRingSizeFor(t *testing.T) {
	// §4.4: for 12.4 Mrps per flow the ring needs ~10 entries.
	if n := TXRingSizeFor(12.4e6); n != 10 {
		t.Fatalf("ring size for 12.4 Mrps = %d, want 10", n)
	}
	if n := TXRingSizeFor(1000); n != 1 {
		t.Fatalf("ring size floor = %d, want 1", n)
	}
}

func TestSpecTable(t *testing.T) {
	spec := SpecTable()
	if len(spec) != 7 {
		t.Fatalf("spec rows = %d, want 7", len(spec))
	}
	if spec[3].Parameter != "Max number of NIC flows" || spec[3].Value != "512" {
		t.Fatalf("flows row = %+v", spec[3])
	}
}

func TestRxPathBatching(t *testing.T) {
	rx := NewRxPath(4, 16)
	for i := 0; i < 3; i++ {
		if rx.Deliver(RxEntry{RPCID: uint64(i)}) {
			t.Fatalf("batch ready after %d entries", i+1)
		}
	}
	if !rx.Deliver(RxEntry{RPCID: 3}) {
		t.Fatal("4th entry did not complete the batch")
	}
	if rx.Buffered() != 0 || rx.Pending() != 4 {
		t.Fatalf("buffered=%d pending=%d", rx.Buffered(), rx.Pending())
	}
	got := rx.Complete(0)
	if len(got) != 4 {
		t.Fatalf("completed %d", len(got))
	}
	for i, e := range got {
		if e.RPCID != uint64(i) {
			t.Fatal("completion order broken")
		}
	}
	if rx.Batches.Load() != 1 || rx.Delivered.Load() != 4 {
		t.Fatalf("counters: batches=%d delivered=%d", rx.Batches.Load(), rx.Delivered.Load())
	}
}

func TestRxPathFlushPartialBatch(t *testing.T) {
	rx := NewRxPath(4, 16)
	rx.Deliver(RxEntry{RPCID: 1})
	if !rx.Flush() {
		t.Fatal("flush of partial batch failed")
	}
	if rx.Flush() {
		t.Fatal("flush of empty buffer reported work")
	}
	if got := rx.Complete(0); len(got) != 1 || got[0].RPCID != 1 {
		t.Fatalf("flush delivery: %v", got)
	}
}

func TestRxPathOverflowDrops(t *testing.T) {
	rx := NewRxPath(2, 2)
	rx.Deliver(RxEntry{RPCID: 1})
	rx.Deliver(RxEntry{RPCID: 2}) // batch -> pending, buffer empty
	if !rx.Deliver(RxEntry{RPCID: 3}) {
		// 3rd entry buffered; 4th would exceed cap (2 pending + ...)
		t.Log("third buffered without batch")
	}
	dropped := rx.Dropped.Load()
	rx.Deliver(RxEntry{RPCID: 4})
	if rx.Dropped.Load() <= dropped {
		t.Fatal("overflow did not drop")
	}
}

// TestRxPathCongestionMarking fills an RX buffer without draining: entries
// admitted below half occupancy arrive clean, entries at or past it carry
// the mark and a hint agreeing with dataplane.Mark on the same depth.
func TestRxPathCongestionMarking(t *testing.T) {
	const capEntries = 16
	rx := NewRxPath(1, capEntries) // batch 1: every entry goes straight to pending
	for i := 0; i < capEntries; i++ {
		rx.Deliver(RxEntry{RPCID: uint64(i)})
	}
	got := rx.Complete(0)
	if len(got) != capEntries {
		t.Fatalf("delivered %d entries", len(got))
	}
	for i, e := range got {
		wantMark := dataplane.Mark(i, capEntries) // entry i admitted at depth i
		if e.Marked != wantMark {
			t.Fatalf("entry %d marked=%v, want %v", i, e.Marked, wantMark)
		}
		if wantMark {
			if want := dataplane.OccupancyHint(i, capEntries); e.Hint != want {
				t.Fatalf("entry %d hint=%d, want %d", i, e.Hint, want)
			}
		} else if e.Hint != 0 {
			t.Fatalf("clean entry %d carries hint %d", i, e.Hint)
		}
	}
	if rx.Marked.Load() != capEntries/2 {
		t.Fatalf("Marked = %d, want %d", rx.Marked.Load(), capEntries/2)
	}
}

// TestTxPathCongestionMarking fills the request table without scheduling:
// slots claimed at or past half occupancy are stamped.
func TestTxPathCongestionMarking(t *testing.T) {
	tx := NewTxPath(4, 2) // table of 8
	size := tx.TableSize()
	for i := 0; i < size; i++ {
		if !tx.Enqueue(uint16(i%2), uint64(i), nil) {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	marked := 0
	for _, s := range tx.table {
		if s.Marked {
			marked++
			if !dataplane.HintCongested(s.Hint) {
				t.Fatalf("marked slot has low hint %d", s.Hint)
			}
		}
	}
	if marked != size/2 || tx.Marked.Load() != uint64(size/2) {
		t.Fatalf("marked %d slots (counter %d), want %d", marked, tx.Marked.Load(), size/2)
	}
}

func TestRxPathCompleteBounded(t *testing.T) {
	rx := NewRxPath(1, 8)
	for i := 0; i < 5; i++ {
		rx.Deliver(RxEntry{RPCID: uint64(i)})
	}
	if got := rx.Complete(2); len(got) != 2 {
		t.Fatalf("bounded complete = %d", len(got))
	}
	if rx.Pending() != 3 {
		t.Fatalf("pending = %d", rx.Pending())
	}
}
