package nicmodel

import (
	"testing"

	"dagger/internal/faults"
)

func allOf(t *testing.T, rates faults.Rates) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(faults.Config{Seed: 1, Rates: rates})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

func TestRxPathFaultDropAndCorrupt(t *testing.T) {
	rx := NewRxPath(1, 64)
	rx.SetFaultInjector(allOf(t, faults.Rates{Drop: faults.RateDenominator}))
	for i := 0; i < 10; i++ {
		if rx.Deliver(RxEntry{RPCID: uint64(i)}) {
			t.Fatal("all-drop stage produced a ready batch")
		}
	}
	if rx.FaultDrops.Load() != 10 || rx.Received.Load() != 0 {
		t.Fatalf("FaultDrops=%d Received=%d, want 10/0", rx.FaultDrops.Load(), rx.Received.Load())
	}

	rx.SetFaultInjector(allOf(t, faults.Rates{Corrupt: faults.RateDenominator}))
	for i := 0; i < 10; i++ {
		rx.Deliver(RxEntry{RPCID: uint64(i)})
	}
	// The modelled checksum check catches every flip at admission.
	if rx.FaultCorrupts.Load() != 10 || rx.CorruptDrops.Load() != 10 || rx.Received.Load() != 0 {
		t.Fatalf("FaultCorrupts=%d CorruptDrops=%d Received=%d, want 10/10/0",
			rx.FaultCorrupts.Load(), rx.CorruptDrops.Load(), rx.Received.Load())
	}
}

func TestRxPathFaultDuplicate(t *testing.T) {
	rx := NewRxPath(1, 64)
	rx.SetFaultInjector(allOf(t, faults.Rates{Duplicate: faults.RateDenominator}))
	for i := 0; i < 5; i++ {
		rx.Deliver(RxEntry{RPCID: uint64(i + 1)})
	}
	got := rx.Complete(0)
	if len(got) != 10 || rx.FaultDups.Load() != 5 {
		t.Fatalf("delivered %d entries, FaultDups=%d; want 10/5", len(got), rx.FaultDups.Load())
	}
	for i := 0; i < 5; i++ {
		if got[2*i].RPCID != uint64(i+1) || got[2*i+1].RPCID != uint64(i+1) {
			t.Fatalf("entries %d,%d = rpc %d,%d; want back-to-back copies of %d",
				2*i, 2*i+1, got[2*i].RPCID, got[2*i+1].RPCID, i+1)
		}
	}
}

func TestRxPathFaultDelayFlush(t *testing.T) {
	rx := NewRxPath(1, 64)
	rx.SetFaultInjector(allOf(t, faults.Rates{Delay: faults.RateDenominator}))
	rx.Deliver(RxEntry{RPCID: 7})
	if rx.Received.Load() != 0 || rx.FaultDelays.Load() != 1 {
		t.Fatalf("Received=%d FaultDelays=%d, want 0/1", rx.Received.Load(), rx.FaultDelays.Load())
	}
	if !rx.FlushFaults() {
		t.Fatal("flush of a held entry did not make a batch pending")
	}
	got := rx.Complete(0)
	if len(got) != 1 || got[0].RPCID != 7 {
		t.Fatalf("flush released %v, want the held entry", got)
	}
	// Uninstalling the stage also releases.
	rx.Deliver(RxEntry{RPCID: 8})
	rx.SetFaultInjector(nil)
	got = rx.Complete(0)
	if len(got) != 1 || got[0].RPCID != 8 {
		t.Fatalf("uninstall released %v, want the held entry", got)
	}
}

// A held TX request whose release finds the table full is re-held for the
// next admission — the table's overflow policy is backpressure, not loss.
func TestTxPathFaultReleaseBackpressure(t *testing.T) {
	tx := NewTxPath(1, 1) // 1-entry table
	tx.SetFaultInjector(allOf(t, faults.Rates{Delay: faults.RateDenominator}))
	if !tx.Enqueue(0, 1, nil) {
		t.Fatal("held enqueue reported refusal")
	}
	tx.SetFaultInjector(nil)
	// Request 1 released into the only slot; fill checks below go through the
	// plain path.
	if tx.FlowDepth(0) != 1 {
		t.Fatalf("released request not tabled: depth %d", tx.FlowDepth(0))
	}

	// Now hold a request while the table is full: its release must re-hold
	// rather than drop.
	tx.SetFaultInjector(allOf(t, faults.Rates{Delay: faults.RateDenominator}))
	if !tx.Enqueue(0, 2, nil) {
		t.Fatal("held enqueue reported refusal")
	}
	// Age it to due by pushing more admissions through the stage (each is
	// itself held, but only request 2 ever comes due first).
	for i := 0; i < 8; i++ {
		tx.Enqueue(0, uint64(10+i), nil)
	}
	if tx.FlowDepth(0) != 1 {
		t.Fatalf("full table admitted a release: depth %d", tx.FlowDepth(0))
	}
	// Drain the table; the re-held request lands on the next admission-driven
	// release (flush).
	if _, _, ok := tx.ScheduleBatch(true); !ok {
		t.Fatal("schedule of tabled request failed")
	}
	tx.FlushFaults()
	if tx.FlowDepth(0) == 0 {
		t.Fatal("re-held request was lost instead of released after space freed")
	}
}
