package nicmodel

// Spec reports the implementation specification of the Dagger NIC as in
// Table 1 of the paper. Clock frequencies and resource usage are properties
// of the synthesized design; we carry them as the model's nameplate data so
// `daggerbench -run table1` can print the table.
type Spec struct {
	Parameter string
	Value     string
}

// SpecTable returns Table 1's rows.
func SpecTable() []Spec {
	return []Spec{
		{"CPU-NIC interface clock frequency, MHz", "200 - 300"},
		{"RPC unit clock frequency, MHz", "200"},
		{"Transport clock frequency, MHz", "200"},
		{"Max number of NIC flows", "512"},
		{"FPGA resource usage, LUT (K)", "87.1 (20%)"},
		{"FPGA resource usage, BRAM blocks (M20K)", "555 (20%)"},
		{"FPGA resource usage, registers (K)", "120.8"},
	}
}
