package nicmodel

import (
	"dagger/internal/metrics"
	"dagger/internal/sim"
)

// HCC models the Host Coherent Cache (§4.1): a small direct-mapped cache in
// the blue bitstream, fully coherent with host memory over CCI-P. The NIC
// keeps connection state and transport structures in it while the backing
// data lives in host DRAM, so the FPGA needs no dedicated DRAM and misses
// are serviced by the coherence protocol rather than explicit DMA.
type HCC struct {
	lineBits uint
	tags     []uint64
	valid    []bool

	// Counters are metrics.Counter (atomic) so a registry snapshot taken
	// from another goroutine never races Access.
	Hits   metrics.Counter
	Misses metrics.Counter
}

// DescribeMetrics registers the cache's hit/miss counters into reg.
func (h *HCC) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("hcc.hits", &h.Hits)
	reg.RegisterCounter("hcc.misses", &h.Misses)
}

// HCC geometry from the paper: 128 KB direct-mapped, 64 B lines.
const (
	HCCSizeBytes = 128 * 1024
	HCCLineBytes = 64
	hccLines     = HCCSizeBytes / HCCLineBytes
)

// HCCMissPenalty is the latency of pulling a line from host DRAM through
// the coherence protocol on a miss. Cheaper than a PCIe NIC's cache miss
// (§4.1) because CCI-P keeps the copies consistent in hardware.
const HCCMissPenalty sim.Time = 500

// NewHCC returns an empty cache.
func NewHCC() *HCC {
	return &HCC{
		lineBits: 6,
		tags:     make([]uint64, hccLines),
		valid:    make([]bool, hccLines),
	}
}

// Access touches the line containing addr, returning the access latency:
// zero for a hit, HCCMissPenalty for a miss (after which the line is
// resident).
func (h *HCC) Access(addr uint64) sim.Time {
	line := addr >> h.lineBits
	idx := line % hccLines
	if h.valid[idx] && h.tags[idx] == line {
		h.Hits.Inc()
		return 0
	}
	h.Misses.Inc()
	h.valid[idx] = true
	h.tags[idx] = line
	return HCCMissPenalty
}

// Invalidate drops the line containing addr (host wrote it; coherence
// protocol invalidates the NIC's copy).
func (h *HCC) Invalidate(addr uint64) {
	line := addr >> h.lineBits
	idx := line % hccLines
	if h.valid[idx] && h.tags[idx] == line {
		h.valid[idx] = false
	}
}

// HitRate returns the fraction of accesses that hit.
func (h *HCC) HitRate() float64 {
	hits := h.Hits.Load()
	total := hits + h.Misses.Load()
	if total == 0 {
		return 0
	}
	return float64(hits) / float64(total)
}
