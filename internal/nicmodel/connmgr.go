// Package nicmodel implements the Dagger NIC's hardware blocks at the
// structural level of Figures 6, 8 and 9: the connection manager's
// direct-mapped 1W3R cache, the load balancers, the TX-path request buffer
// with its free-slot FIFO and flow FIFOs, the flow scheduler, the host
// coherent cache (HCC), the packet monitor, and the soft-reconfiguration
// unit. These blocks are composed with the interconnect models into a full
// RPC pipeline by the experiment harness.
package nicmodel

import (
	"errors"
	"fmt"

	"dagger/internal/connstate"
	"dagger/internal/sim"
)

// ConnTuple is the connection table entry (§4.2): connection IDs map onto
// <src_flow, dest_addr, load_balancer>.
type ConnTuple struct {
	SrcFlow      uint16 // flow receiving this connection's requests
	DestAddr     uint32 // destination host
	LoadBalancer BalancerKind
}

// ConnectionManager models the CM block: a direct-mapped connection cache
// split into three independently indexed tables so that three agents — the
// RPC outgoing flow, the incoming flow, and the CM itself — can access it in
// the same cycle (1W3R, §4.2). Entries evicted by conflicts fall back to
// host memory over the interconnect, with a miss penalty.
//
// The cache geometry, lifecycle, and accounting are owned by
// internal/connstate; this type is the timing adapter that converts cache
// verdicts into sim.Time penalties.
type ConnectionManager struct {
	cache *connstate.Cache[ConnTuple]
}

// MaxCachedConnections is the FPGA BRAM-bounded connection cache limit
// quoted in §4.2 (~153K connections for the available on-chip memory).
const MaxCachedConnections = connstate.MaxCachedConnections

// HostLookupPenalty is the extra latency of fetching a connection tuple
// from host memory on a connection cache miss (one coherent bus round
// trip).
const HostLookupPenalty sim.Time = sim.Time(connstate.HostLookupPenaltyNanos)

// NewConnectionManager creates a CM with a direct-mapped cache of size
// entries (rounded up to a power of two). Size is a hard-configuration
// parameter chosen per application (§4.2).
func NewConnectionManager(size int) *ConnectionManager {
	return &ConnectionManager{cache: connstate.New[ConnTuple](size)}
}

// Size returns the cache size in entries.
func (cm *ConnectionManager) Size() int { return cm.cache.Size() }

// Open registers a connection. The entry is written to the cache slot
// indexed by the connection ID's LSBs, displacing any conflicting entry to
// the host backing store.
func (cm *ConnectionManager) Open(id uint32, t ConnTuple) error {
	if err := cm.cache.Open(uint64(id), t); err != nil {
		return fmt.Errorf("nicmodel: connection %d already open: %w", id, err)
	}
	return nil
}

// Close removes a connection from the cache and backing store.
func (cm *ConnectionManager) Close(id uint32) error {
	if err := cm.cache.Close(uint64(id)); err != nil {
		return fmt.Errorf("nicmodel: connection %d not open: %w", id, err)
	}
	return nil
}

// Lookup returns the connection tuple and the lookup latency penalty:
// zero on a cache hit, HostLookupPenalty on a miss that is served from host
// memory (the missing entry is then re-cached).
func (cm *ConnectionManager) Lookup(id uint32) (ConnTuple, sim.Time, error) {
	t, hit, err := cm.cache.Lookup(uint64(id))
	if err != nil {
		if errors.Is(err, connstate.ErrNotOpen) {
			err = fmt.Errorf("nicmodel: connection %d not open: %w", id, err)
		}
		return ConnTuple{}, 0, err
	}
	if hit {
		return t, 0, nil
	}
	return t, HostLookupPenalty, nil
}

// OpenCount returns the number of open connections (cached or not).
func (cm *ConnectionManager) OpenCount() int { return cm.cache.OpenCount() }

// Stats returns the cache's monitor counters (hits, misses, evictions,
// opens, closes).
func (cm *ConnectionManager) Stats() connstate.Stats { return cm.cache.Stats() }

// HitRate returns the fraction of lookups served from the cache.
func (cm *ConnectionManager) HitRate() float64 { return cm.cache.HitRate() }
