// Package nicmodel implements the Dagger NIC's hardware blocks at the
// structural level of Figures 6, 8 and 9: the connection manager's
// direct-mapped 1W3R cache, the load balancers, the TX-path request buffer
// with its free-slot FIFO and flow FIFOs, the flow scheduler, the host
// coherent cache (HCC), the packet monitor, and the soft-reconfiguration
// unit. These blocks are composed with the interconnect models into a full
// RPC pipeline by the experiment harness.
package nicmodel

import (
	"fmt"

	"dagger/internal/sim"
)

// ConnTuple is the connection table entry (§4.2): connection IDs map onto
// <src_flow, dest_addr, load_balancer>.
type ConnTuple struct {
	SrcFlow      uint16 // flow receiving this connection's requests
	DestAddr     uint32 // destination host
	LoadBalancer BalancerKind
}

// ConnectionManager models the CM block: a direct-mapped connection cache
// split into three independently indexed tables so that three agents — the
// RPC outgoing flow, the incoming flow, and the CM itself — can access it in
// the same cycle (1W3R, §4.2). Entries evicted by conflicts fall back to
// host memory over the interconnect, with a miss penalty.
type ConnectionManager struct {
	size  int
	mask  uint32
	valid []bool
	ids   []uint32
	tups  []ConnTuple

	// backing store: connections that exist but are not cached (host DRAM).
	backing map[uint32]ConnTuple

	Hits   uint64
	Misses uint64
	Opens  uint64
	Closes uint64
}

// MaxCachedConnections is the FPGA BRAM-bounded connection cache limit
// quoted in §4.2 (~153K connections for the available on-chip memory).
const MaxCachedConnections = 153 * 1024

// HostLookupPenalty is the extra latency of fetching a connection tuple
// from host memory on a connection cache miss (one coherent bus round
// trip).
const HostLookupPenalty sim.Time = 800

// NewConnectionManager creates a CM with a direct-mapped cache of size
// entries (rounded up to a power of two). Size is a hard-configuration
// parameter chosen per application (§4.2).
func NewConnectionManager(size int) *ConnectionManager {
	if size <= 0 {
		panic("nicmodel: connection cache size must be positive")
	}
	if size > MaxCachedConnections {
		panic(fmt.Sprintf("nicmodel: connection cache %d exceeds BRAM limit %d", size, MaxCachedConnections))
	}
	n := 1
	for n < size {
		n <<= 1
	}
	return &ConnectionManager{
		size:    n,
		mask:    uint32(n - 1),
		valid:   make([]bool, n),
		ids:     make([]uint32, n),
		tups:    make([]ConnTuple, n),
		backing: make(map[uint32]ConnTuple),
	}
}

// Size returns the cache size in entries.
func (cm *ConnectionManager) Size() int { return cm.size }

// Open registers a connection. The entry is written to the cache slot
// indexed by the connection ID's LSBs, displacing any conflicting entry to
// the host backing store.
func (cm *ConnectionManager) Open(id uint32, t ConnTuple) error {
	if _, exists := cm.backing[id]; exists {
		return fmt.Errorf("nicmodel: connection %d already open", id)
	}
	i := id & cm.mask
	if cm.valid[i] && cm.ids[i] == id {
		return fmt.Errorf("nicmodel: connection %d already open", id)
	}
	cm.Opens++
	cm.backing[id] = t
	cm.valid[i] = true
	cm.ids[i] = id
	cm.tups[i] = t
	return nil
}

// Close removes a connection from the cache and backing store.
func (cm *ConnectionManager) Close(id uint32) error {
	if _, exists := cm.backing[id]; !exists {
		return fmt.Errorf("nicmodel: connection %d not open", id)
	}
	cm.Closes++
	delete(cm.backing, id)
	i := id & cm.mask
	if cm.valid[i] && cm.ids[i] == id {
		cm.valid[i] = false
	}
	return nil
}

// Lookup returns the connection tuple and the lookup latency penalty:
// zero on a cache hit, HostLookupPenalty on a miss that is served from host
// memory (the missing entry is then re-cached).
func (cm *ConnectionManager) Lookup(id uint32) (ConnTuple, sim.Time, error) {
	i := id & cm.mask
	if cm.valid[i] && cm.ids[i] == id {
		cm.Hits++
		return cm.tups[i], 0, nil
	}
	t, ok := cm.backing[id]
	if !ok {
		return ConnTuple{}, 0, fmt.Errorf("nicmodel: connection %d not open", id)
	}
	cm.Misses++
	cm.valid[i] = true
	cm.ids[i] = id
	cm.tups[i] = t
	return t, HostLookupPenalty, nil
}

// OpenCount returns the number of open connections (cached or not).
func (cm *ConnectionManager) OpenCount() int { return len(cm.backing) }

// HitRate returns the fraction of lookups served from the cache.
func (cm *ConnectionManager) HitRate() float64 {
	total := cm.Hits + cm.Misses
	if total == 0 {
		return 0
	}
	return float64(cm.Hits) / float64(total)
}
