package nicmodel

import (
	"dagger/internal/dataplane"
)

// BalancerKind selects the load balancing scheme steering incoming RPCs to
// NIC flows (§4.4.2, §5.7). The choice is soft-configurable per NIC
// instance; servers specify it when registering connections.
//
// BalancerKind aliases dataplane.Scheme: the steering decision itself lives
// in internal/dataplane and is shared verbatim with the functional stack's
// fabric, so the two substrates cannot drift. The zero value is
// BalancerStatic, matching NewNIC's default soft configuration.
type BalancerKind = dataplane.Scheme

// Load balancing schemes (aliases kept for API compatibility; see
// dataplane.Scheme for semantics).
const (
	// BalancerStatic steers by the flow recorded in the connection tuple —
	// "static load balancing": responses return to the flow the request
	// came from.
	BalancerStatic = dataplane.SteerStatic
	// BalancerUniform distributes incoming RPCs evenly (round-robin) over
	// flows — "dynamic uniform steering". Right for stateless tiers.
	BalancerUniform = dataplane.SteerUniform
	// BalancerObjectLevel hashes the request key to a flow (MICA's
	// object-level core affinity, implemented on the FPGA for §5.7):
	// requests for the same key always reach the same partition.
	BalancerObjectLevel = dataplane.SteerKeyHash
)

// Steer describes one steering decision's inputs.
type Steer struct {
	ConnFlow uint16 // flow from the connection tuple (static scheme)
	Key      []byte // request key (object-level scheme)
}

// Balancer steers incoming RPCs to one of NFlows flow FIFOs. It is a thin
// stateful shell — the round-robin counter and flow count — around the pure
// decision functions in internal/dataplane.
type Balancer struct {
	kind   BalancerKind
	nflows int
	rr     uint32
}

// NewBalancer creates a balancer over nflows flows.
func NewBalancer(kind BalancerKind, nflows int) *Balancer {
	if nflows <= 0 {
		panic("nicmodel: balancer needs at least one flow")
	}
	return &Balancer{kind: kind, nflows: nflows}
}

// Kind returns the steering scheme.
func (b *Balancer) Kind() BalancerKind { return b.kind }

// Pick returns the target flow for one request.
func (b *Balancer) Pick(s Steer) uint16 {
	in := dataplane.SteerInput{
		NFlows:   b.nflows,
		ConnFlow: s.ConnFlow,
		HasConn:  true,
		Key:      s.Key,
		RR:       b.rr,
	}
	f := dataplane.Steer(b.kind, in)
	if b.kind == dataplane.SteerUniform {
		b.rr++
	}
	return f
}
