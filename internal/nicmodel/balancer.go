package nicmodel

import (
	"fmt"
	"hash/fnv"
)

// BalancerKind selects the load balancing scheme steering incoming RPCs to
// NIC flows (§4.4.2, §5.7). The choice is soft-configurable per NIC
// instance; servers specify it when registering connections.
type BalancerKind int

// Load balancing schemes.
const (
	// BalancerUniform distributes incoming RPCs evenly (round-robin) over
	// flows — "dynamic uniform steering". Right for stateless tiers.
	BalancerUniform BalancerKind = iota
	// BalancerStatic steers by the flow recorded in the connection tuple —
	// "static load balancing": responses return to the flow the request
	// came from.
	BalancerStatic
	// BalancerObjectLevel hashes the request key to a flow (MICA's
	// object-level core affinity, implemented on the FPGA for §5.7):
	// requests for the same key always reach the same partition.
	BalancerObjectLevel
)

func (k BalancerKind) String() string {
	switch k {
	case BalancerUniform:
		return "uniform"
	case BalancerStatic:
		return "static"
	case BalancerObjectLevel:
		return "object-level"
	default:
		return fmt.Sprintf("balancer(%d)", int(k))
	}
}

// Steer describes one steering decision's inputs.
type Steer struct {
	ConnFlow uint16 // flow from the connection tuple (static scheme)
	Key      []byte // request key (object-level scheme)
}

// Balancer steers incoming RPCs to one of NFlows flow FIFOs.
type Balancer struct {
	kind   BalancerKind
	nflows int
	rr     int
}

// NewBalancer creates a balancer over nflows flows.
func NewBalancer(kind BalancerKind, nflows int) *Balancer {
	if nflows <= 0 {
		panic("nicmodel: balancer needs at least one flow")
	}
	return &Balancer{kind: kind, nflows: nflows}
}

// Kind returns the steering scheme.
func (b *Balancer) Kind() BalancerKind { return b.kind }

// Pick returns the target flow for one request.
func (b *Balancer) Pick(s Steer) uint16 {
	switch b.kind {
	case BalancerUniform:
		f := b.rr
		b.rr = (b.rr + 1) % b.nflows
		return uint16(f)
	case BalancerStatic:
		return s.ConnFlow % uint16(b.nflows)
	case BalancerObjectLevel:
		h := fnv.New32a()
		h.Write(s.Key)
		return uint16(h.Sum32() % uint32(b.nflows))
	default:
		panic("nicmodel: unknown balancer kind")
	}
}
