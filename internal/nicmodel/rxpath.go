package nicmodel

import (
	"dagger/internal/dataplane"
	"dagger/internal/faults"
	"dagger/internal/metrics"
)

// The RX path (Figure 8, §4.4): the NIC's TX FSM places newly received RPC
// objects into per-flow RX buffers, which accumulate a batch of B requests
// before handing them to the completion queue (so the RX buffer size is
// B x the mean RPC size), and asynchronously returns freed entries during
// bookkeeping.

// RxEntry is one received RPC waiting for completion-queue handoff.
type RxEntry struct {
	RPCID uint64
	Data  []byte
	// Marked/Hint carry the ECN-style congestion stamp applied at RX-buffer
	// admission when occupancy was at or past the dataplane mark threshold
	// (the same dataplane.Mark decision the functional fabric stamps into
	// wire headers).
	Marked bool
	Hint   uint8
}

// RxPath models one flow's RX buffer and its batching into the completion
// queue.
type RxPath struct {
	batch   int
	buf     []RxEntry
	cap     int
	pending []RxEntry

	// Chaos plane (internal/faults): an optional deterministic fault stage
	// consulted once per Deliver, with the same verdict semantics as the
	// functional fabric's admission stage so the cross-substrate parity test
	// can pin them byte-identical.
	inj     *faults.Injector
	delayed []delayedRxEntry

	// Counters are metrics.Counter (atomic) so a registry snapshot taken
	// from another goroutine never races the delivery path.
	Received  metrics.Counter
	Delivered metrics.Counter
	Dropped   metrics.Counter
	Batches   metrics.Counter
	Marked    metrics.Counter // entries congestion-marked at admission

	// Fault-stage counters (fault.* family, cross-substrate names shared
	// with fabric.SoftNIC). CorruptDrops counts corrupted frames the
	// modelled header-checksum check caught at admission — never buffered.
	FaultDrops    metrics.Counter
	FaultDups     metrics.Counter
	FaultDelays   metrics.Counter
	FaultCorrupts metrics.Counter
	CorruptDrops  metrics.Counter
}

// delayedRxEntry is an entry the fault stage is holding back; it releases
// after remaining further Delivers.
type delayedRxEntry struct {
	e         RxEntry
	remaining uint32
}

// DescribeMetrics registers the RX path's counters into reg. The
// cross-substrate names (mark.rx.stamped and drop.rx.ring) are gauges here,
// as on the functional fabric, where they aggregate across flow rings — the
// kinds must match for whole-snapshot parity diffs.
func (r *RxPath) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("rx.received", &r.Received)
	reg.RegisterCounter("rx.delivered", &r.Delivered)
	reg.RegisterCounter("rx.batches", &r.Batches)
	reg.RegisterCounter("fault.dropped", &r.FaultDrops)
	reg.RegisterCounter("fault.duplicated", &r.FaultDups)
	reg.RegisterCounter("fault.delayed", &r.FaultDelays)
	reg.RegisterCounter("fault.corrupted", &r.FaultCorrupts)
	reg.RegisterCounter("fault.corrupt.dropped", &r.CorruptDrops)
	reg.Func("drop.rx.ring", func() int64 { return int64(r.Dropped.Load()) })
	reg.Func("mark.rx.stamped", func() int64 { return int64(r.Marked.Load()) })
}

// NewRxPath creates an RX path with batching width B and a buffer of
// capEntries entries (0 sizes it at 4x the batch, the paper's B=4 sweet
// spot times a safety factor).
func NewRxPath(batch, capEntries int) *RxPath {
	if batch <= 0 {
		panic("nicmodel: rx batch must be positive")
	}
	if capEntries <= 0 {
		capEntries = 4 * batch
	}
	if capEntries < batch {
		capEntries = batch
	}
	return &RxPath{batch: batch, cap: capEntries}
}

// SetFaultInjector installs a deterministic fault stage (internal/faults)
// ahead of RX-buffer admission; nil uninstalls it. Reconfiguring releases
// any entries a previous stage was still holding, in hold order.
func (r *RxPath) SetFaultInjector(inj *faults.Injector) {
	r.flushFaults()
	r.inj = inj
}

// FlushFaults releases every entry the fault stage is holding back (Delay
// and Reorder verdicts not yet due) in hold order, reporting whether a batch
// became pending. Drivers call it when draining a faulted path so every
// admitted entry is accounted for.
func (r *RxPath) FlushFaults() (ready bool) { return r.flushFaults() }

func (r *RxPath) flushFaults() (ready bool) {
	for _, d := range r.delayed {
		if _, rdy := r.admit(d.e); rdy {
			ready = true
		}
	}
	r.delayed = r.delayed[:0]
	return ready
}

// Deliver places one received RPC into the RX buffer, through the fault
// stage when an injector is installed. When a full batch has accumulated, it
// is moved to the pending completion set and ready=true is returned.
// Admission is the dataplane queue policy: a full buffer drops the RPC
// (dataplane.RxRingOverflow, best-effort delivery).
func (r *RxPath) Deliver(e RxEntry) (ready bool) {
	if r.inj == nil {
		_, ready = r.admit(e)
		return ready
	}
	v := r.inj.Next()
	// Age entries held by earlier Delivers. They release only after this
	// Deliver's own admission (below), so a Reorder verdict swaps an entry
	// with its successor — the same ordering contract as the functional
	// fabric's admission stage.
	for i := range r.delayed {
		r.delayed[i].remaining--
	}
	switch v.Class {
	case faults.Drop:
		r.FaultDrops.Inc()
	case faults.CorruptBit:
		// The modelled NIC's header-checksum check catches the flip at
		// admission: counted and discarded, never buffered (the functional
		// fabric verifies wire.VerifyChecksum for real at the same point).
		r.FaultCorrupts.Inc()
		r.CorruptDrops.Inc()
	case faults.Duplicate:
		_, ready = r.admit(e)
		if ok, rdy := r.admit(e); ok {
			r.FaultDups.Inc()
			ready = ready || rdy
		}
	case faults.Delay, faults.Reorder:
		r.FaultDelays.Inc()
		rem := v.Arg
		if rem == 0 {
			rem = 1
		}
		r.delayed = append(r.delayed, delayedRxEntry{e: e, remaining: rem})
	default: // Deliver
		_, ready = r.admit(e)
	}
	// Release everything now due, in hold order.
	if len(r.delayed) > 0 {
		kept := r.delayed[:0]
		for _, d := range r.delayed {
			if d.remaining == 0 {
				if _, rdy := r.admit(d.e); rdy {
					ready = true
				}
			} else {
				kept = append(kept, d)
			}
		}
		for i := len(kept); i < len(r.delayed); i++ {
			r.delayed[i] = delayedRxEntry{}
		}
		r.delayed = kept
	}
	return ready
}

// admit is RX-buffer admission proper, past the fault stage: duplicate
// copies and released held entries come through here without drawing fresh
// verdicts. It reports whether the entry was admitted and whether a batch
// became pending.
func (r *RxPath) admit(e RxEntry) (admitted, ready bool) {
	depth := len(r.buf) + len(r.pending)
	if !dataplane.Admit(depth, r.cap) {
		if dataplane.DropRefused(dataplane.RxRingOverflow) {
			r.Dropped.Inc()
		}
		return false, false
	}
	// Same mark decision (and same depth expression) as the admission
	// check: an entry admitted at or past half occupancy carries the
	// congestion stamp to the completion queue and onward to the client.
	if dataplane.Mark(depth, r.cap) {
		e.Marked = true
		e.Hint = dataplane.OccupancyHint(depth, r.cap)
		r.Marked.Inc()
	}
	r.buf = append(r.buf, e)
	r.Received.Inc()
	if len(r.buf) >= r.batch {
		r.pending = append(r.pending, r.buf...)
		r.buf = r.buf[:0]
		r.Batches.Inc()
		return true, true
	}
	return true, false
}

// Flush forces a partial batch out (the soft-configured batch timeout under
// low load). It reports whether anything became pending.
func (r *RxPath) Flush() bool {
	if len(r.buf) == 0 {
		return false
	}
	r.pending = append(r.pending, r.buf...)
	r.buf = r.buf[:0]
	r.Batches.Inc()
	return true
}

// Complete drains up to max pending entries to the completion queue
// (all if max <= 0), freeing their buffer slots.
func (r *RxPath) Complete(max int) []RxEntry {
	n := len(r.pending)
	if max > 0 && max < n {
		n = max
	}
	out := make([]RxEntry, n)
	copy(out, r.pending[:n])
	r.pending = r.pending[n:]
	r.Delivered.Add(uint64(n))
	return out
}

// Buffered returns the entries accumulated toward the next batch.
func (r *RxPath) Buffered() int { return len(r.buf) }

// Pending returns the entries awaiting completion-queue pickup.
func (r *RxPath) Pending() int { return len(r.pending) }
