package nicmodel

import (
	"dagger/internal/dataplane"
	"dagger/internal/metrics"
)

// The RX path (Figure 8, §4.4): the NIC's TX FSM places newly received RPC
// objects into per-flow RX buffers, which accumulate a batch of B requests
// before handing them to the completion queue (so the RX buffer size is
// B x the mean RPC size), and asynchronously returns freed entries during
// bookkeeping.

// RxEntry is one received RPC waiting for completion-queue handoff.
type RxEntry struct {
	RPCID uint64
	Data  []byte
	// Marked/Hint carry the ECN-style congestion stamp applied at RX-buffer
	// admission when occupancy was at or past the dataplane mark threshold
	// (the same dataplane.Mark decision the functional fabric stamps into
	// wire headers).
	Marked bool
	Hint   uint8
}

// RxPath models one flow's RX buffer and its batching into the completion
// queue.
type RxPath struct {
	batch   int
	buf     []RxEntry
	cap     int
	pending []RxEntry

	// Counters are metrics.Counter (atomic) so a registry snapshot taken
	// from another goroutine never races the delivery path.
	Received  metrics.Counter
	Delivered metrics.Counter
	Dropped   metrics.Counter
	Batches   metrics.Counter
	Marked    metrics.Counter // entries congestion-marked at admission
}

// DescribeMetrics registers the RX path's counters into reg. The
// cross-substrate names (mark.rx.stamped and drop.rx.ring) are gauges here,
// as on the functional fabric, where they aggregate across flow rings — the
// kinds must match for whole-snapshot parity diffs.
func (r *RxPath) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("rx.received", &r.Received)
	reg.RegisterCounter("rx.delivered", &r.Delivered)
	reg.RegisterCounter("rx.batches", &r.Batches)
	reg.Func("drop.rx.ring", func() int64 { return int64(r.Dropped.Load()) })
	reg.Func("mark.rx.stamped", func() int64 { return int64(r.Marked.Load()) })
}

// NewRxPath creates an RX path with batching width B and a buffer of
// capEntries entries (0 sizes it at 4x the batch, the paper's B=4 sweet
// spot times a safety factor).
func NewRxPath(batch, capEntries int) *RxPath {
	if batch <= 0 {
		panic("nicmodel: rx batch must be positive")
	}
	if capEntries <= 0 {
		capEntries = 4 * batch
	}
	if capEntries < batch {
		capEntries = batch
	}
	return &RxPath{batch: batch, cap: capEntries}
}

// Deliver places one received RPC into the RX buffer. When a full batch has
// accumulated, it is moved to the pending completion set and ready=true is
// returned. Admission is the dataplane queue policy: a full buffer drops
// the RPC (dataplane.RxRingOverflow, best-effort delivery).
func (r *RxPath) Deliver(e RxEntry) (ready bool) {
	depth := len(r.buf) + len(r.pending)
	if !dataplane.Admit(depth, r.cap) {
		if dataplane.DropRefused(dataplane.RxRingOverflow) {
			r.Dropped.Inc()
		}
		return false
	}
	// Same mark decision (and same depth expression) as the admission
	// check: an entry admitted at or past half occupancy carries the
	// congestion stamp to the completion queue and onward to the client.
	if dataplane.Mark(depth, r.cap) {
		e.Marked = true
		e.Hint = dataplane.OccupancyHint(depth, r.cap)
		r.Marked.Inc()
	}
	r.buf = append(r.buf, e)
	r.Received.Inc()
	if len(r.buf) >= r.batch {
		r.pending = append(r.pending, r.buf...)
		r.buf = r.buf[:0]
		r.Batches.Inc()
		return true
	}
	return false
}

// Flush forces a partial batch out (the soft-configured batch timeout under
// low load). It reports whether anything became pending.
func (r *RxPath) Flush() bool {
	if len(r.buf) == 0 {
		return false
	}
	r.pending = append(r.pending, r.buf...)
	r.buf = r.buf[:0]
	r.Batches.Inc()
	return true
}

// Complete drains up to max pending entries to the completion queue
// (all if max <= 0), freeing their buffer slots.
func (r *RxPath) Complete(max int) []RxEntry {
	n := len(r.pending)
	if max > 0 && max < n {
		n = max
	}
	out := make([]RxEntry, n)
	copy(out, r.pending[:n])
	r.pending = r.pending[n:]
	r.Delivered.Add(uint64(n))
	return out
}

// Buffered returns the entries accumulated toward the next batch.
func (r *RxPath) Buffered() int { return len(r.buf) }

// Pending returns the entries awaiting completion-queue pickup.
func (r *RxPath) Pending() int { return len(r.pending) }
