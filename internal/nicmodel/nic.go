package nicmodel

import (
	"fmt"

	"dagger/internal/dataplane"
	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/sim"
	"dagger/internal/wire"
)

// HardConfig holds the NIC parameters fixed at synthesis time (§4.1 "hard
// configuration"): chosen via SystemVerilog macros in the paper, via this
// struct here. Changing them means re-synthesizing a bitstream, so the
// experiment harness treats a HardConfig as immutable once a NIC is built.
type HardConfig struct {
	// NFlows is the number of parallel NIC flows (and RX/TX ring pairs).
	NFlows int
	// ConnCacheSize is the connection cache size in entries.
	ConnCacheSize int
	// Iface selects the CPU-NIC interface family and batch width.
	Iface interconnect.Config
	// FlowFIFODepth bounds each flow FIFO (0 = unbounded).
	FlowFIFODepth int
}

// MaxNFlows is the synthesis limit on flows from Table 1.
const MaxNFlows = 512

// Validate checks hard-configuration limits (Table 1).
func (h HardConfig) Validate() error {
	if h.NFlows <= 0 || h.NFlows > MaxNFlows {
		return fmt.Errorf("nicmodel: NFlows %d outside (0, %d]", h.NFlows, MaxNFlows)
	}
	if h.ConnCacheSize <= 0 || h.ConnCacheSize > MaxCachedConnections {
		return fmt.Errorf("nicmodel: connection cache %d outside (0, %d]", h.ConnCacheSize, MaxCachedConnections)
	}
	return h.Iface.Validate()
}

// SoftConfig holds the parameters adjustable at runtime through the
// soft-reconfiguration unit's register file (§4.1): CCI-P batch size,
// ring provisioning, active flows, and the load balancing scheme.
type SoftConfig struct {
	// Batch is the effective CCI-P batching width (<= hard Iface.Batch
	// ceiling is not required; auto mode moves it with load).
	Batch int
	// ActiveFlows <= NFlows restricts how many flows carry traffic.
	ActiveFlows int
	// Balancer selects the request steering scheme.
	Balancer BalancerKind
	// RXRingEntries / TXRingEntries provision the software rings.
	RXRingEntries int
	TXRingEntries int
}

// PipelineTiming captures the FPGA RPC unit's stage latencies. The RPC unit
// runs at 200 MHz (Table 1); a handful of pipeline stages give ~50 ns of
// transit latency, and the pipeline sustains one RPC per cycle (200 Mrps —
// §5.5 notes the NIC itself "is capable of processing up to 200 Mrps").
type PipelineTiming struct {
	// Transit is the cut-through latency of the RPC unit + transport.
	Transit sim.Time
	// PerRPC is the pipeline occupancy per RPC (1 / 200 MHz = 5 ns).
	PerRPC sim.Time
	// PerExtraLine is the added occupancy per cache line beyond the first
	// for multi-line RPCs.
	PerExtraLine sim.Time
}

// DefaultPipelineTiming returns the Table 1 clocking.
func DefaultPipelineTiming() PipelineTiming {
	return PipelineTiming{Transit: 30, PerRPC: 5, PerExtraLine: 5}
}

// PacketMonitor collects the networking statistics block's counters
// (Figure 6). metrics.Counter is a drop-in for the atomic.Uint64 these grew
// up as; every NIC registers them in its metrics registry at creation.
type PacketMonitor struct {
	RPCsIn       metrics.Counter
	RPCsOut      metrics.Counter
	BytesIn      metrics.Counter
	BytesOut     metrics.Counter
	Drops        metrics.Counter
	Sheds        metrics.Counter
	BatchesSent  metrics.Counter
	SoftReconfig metrics.Counter
}

// NIC is one Dagger NIC instance: hard configuration, current soft
// configuration, and its hardware blocks. Several instances can share one
// FPGA (virtualization, Figure 14); the arbiter lives in netmodel.
type NIC struct {
	eng  *sim.Engine
	hard HardConfig
	soft SoftConfig

	CM       *ConnectionManager
	Balancer *Balancer
	TX       *TxPath
	HCC      *HCC
	Monitor  PacketMonitor
	Timing   PipelineTiming

	reg *metrics.Registry

	// pipe serializes RPC-unit occupancy.
	pipeBusyUntil sim.Time
}

// Metrics returns the NIC's telemetry registry. Shared-policy families use
// the cross-substrate names (conn.*, shed.*, mark.*) so snapshots diff
// cleanly against the functional fabric's SoftNIC.
func (n *NIC) Metrics() *metrics.Registry { return n.reg }

// describeMetrics registers the packet-monitor counters plus read-time
// gauges over the connection manager, HCC, and TX path. TX metrics are
// gauges closing over n — Reconfigure rebuilds n.TX, and the registry must
// keep following the live instance.
func (n *NIC) describeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("rpc.in", &n.Monitor.RPCsIn)
	reg.RegisterCounter("rpc.out", &n.Monitor.RPCsOut)
	reg.RegisterCounter("bytes.in", &n.Monitor.BytesIn)
	reg.RegisterCounter("bytes.out", &n.Monitor.BytesOut)
	reg.RegisterCounter("drop.ring", &n.Monitor.Drops)
	reg.RegisterCounter("shed.expired", &n.Monitor.Sheds)
	reg.RegisterCounter("batch.sent", &n.Monitor.BatchesSent)
	reg.RegisterCounter("reconfig.soft", &n.Monitor.SoftReconfig)
	n.HCC.DescribeMetrics(reg)
	reg.Func("conn.hits", func() int64 { return int64(n.CM.Stats().Hits) })
	reg.Func("conn.misses", func() int64 { return int64(n.CM.Stats().Misses) })
	reg.Func("conn.evictions", func() int64 { return int64(n.CM.Stats().Evictions) })
	reg.Func("conn.opens", func() int64 { return int64(n.CM.Stats().Opens) })
	reg.Func("conn.closes", func() int64 { return int64(n.CM.Stats().Closes) })
	reg.Func("conn.open", func() int64 { return int64(n.CM.OpenCount()) })
	// Every steering lookup is either a cache hit or a backing-store miss;
	// both substrates derive conn.lookups identically so the family stays
	// snapshot-comparable.
	reg.Func("conn.lookups", func() int64 {
		st := n.CM.Stats()
		return int64(st.Hits + st.Misses)
	})
	reg.Func("tx.enqueued", func() int64 { return int64(n.TX.Enqueued.Load()) })
	reg.Func("tx.scheduled", func() int64 { return int64(n.TX.Scheduled.Load()) })
	reg.Func("tx.stalls", func() int64 { return int64(n.TX.Stalls.Load()) })
	reg.Func("mark.tx.stamped", func() int64 { return int64(n.TX.Marked.Load()) })
}

// NewNIC builds a NIC from a hard configuration with default soft
// configuration.
func NewNIC(eng *sim.Engine, hard HardConfig) (*NIC, error) {
	if err := hard.Validate(); err != nil {
		return nil, err
	}
	n := &NIC{
		eng:    eng,
		hard:   hard,
		Timing: DefaultPipelineTiming(),
		CM:     NewConnectionManager(hard.ConnCacheSize),
		HCC:    NewHCC(),
	}
	soft := SoftConfig{
		Batch:         hard.Iface.Batch,
		ActiveFlows:   hard.NFlows,
		Balancer:      BalancerStatic,
		RXRingEntries: 64,
		TXRingEntries: 64,
	}
	if err := n.Reconfigure(soft); err != nil {
		return nil, err
	}
	n.reg = metrics.New()
	n.describeMetrics(n.reg)
	return n, nil
}

// Hard returns the NIC's hard configuration.
func (n *NIC) Hard() HardConfig { return n.hard }

// Soft returns the current soft configuration.
func (n *NIC) Soft() SoftConfig { return n.soft }

// Reconfigure applies a new soft configuration through the
// soft-reconfiguration unit. It validates against the hard configuration
// and rebuilds the steering and TX structures. In hardware this is a few
// MMIO writes to the register file; traffic in flight keeps moving, so
// reconfiguration is cheap and can be done at runtime (e.g. adaptive batch
// sizing, Fig. 11).
func (n *NIC) Reconfigure(s SoftConfig) error {
	if s.Batch <= 0 {
		return fmt.Errorf("nicmodel: soft batch must be positive")
	}
	if s.ActiveFlows <= 0 || s.ActiveFlows > n.hard.NFlows {
		return fmt.Errorf("nicmodel: active flows %d outside (0, %d]", s.ActiveFlows, n.hard.NFlows)
	}
	if s.RXRingEntries <= 0 || s.TXRingEntries <= 0 {
		return fmt.Errorf("nicmodel: ring entries must be positive")
	}
	n.soft = s
	n.Balancer = NewBalancer(s.Balancer, s.ActiveFlows)
	n.TX = NewTxPath(s.Batch, s.ActiveFlows)
	n.Monitor.SoftReconfig.Add(1)
	return nil
}

// PipelineDelay charges the RPC unit's pipeline for one message and returns
// the time at which it exits the NIC: cut-through transit plus occupancy
// serialization (the unit processes one line per cycle).
func (n *NIC) PipelineDelay(m *wire.Message) sim.Time {
	now := n.eng.Now()
	start := now
	if n.pipeBusyUntil > start {
		start = n.pipeBusyUntil
	}
	occ := n.Timing.PerRPC + sim.Time(m.Lines()-1)*n.Timing.PerExtraLine
	n.pipeBusyUntil = start + occ
	return (start - now) + occ + n.Timing.Transit
}

// ShedExpired is the timing-stack entry into the dataplane shed policy:
// a simulated request that arrived at arrival carrying budgetMicros of
// deadline budget (0 = no deadline) is shed — before it occupies a server
// core — when its budget has expired by the engine's current virtual time.
// Shed requests are counted in Monitor.Sheds. The decision is the same
// dataplane.ShouldShed the functional core server uses with wall-clock
// time, so the parity test can assert identical verdicts.
func (n *NIC) ShedExpired(arrival sim.Time, budgetMicros uint32) bool {
	elapsed := dataplane.ElapsedMicros(int64(n.eng.Now() - arrival))
	if !dataplane.ShouldShed(budgetMicros, elapsed) {
		return false
	}
	n.Monitor.Sheds.Add(1)
	return true
}

// TXRingSizeFor computes the paper's TX ring provisioning rule (§4.4):
// ceil(Thr_per_flow * 0.8 / 1e6) entries for a desired per-flow throughput.
func TXRingSizeFor(perFlowRPS float64) int {
	n := int((perFlowRPS*0.8 + 1e6 - 1) / 1e6)
	if n < 1 {
		n = 1
	}
	return n
}
