package nicmodel

import (
	"sync"
	"testing"

	"dagger/internal/interconnect"
	"dagger/internal/metrics"
	"dagger/internal/sim"
)

// TestNICMetricsRegistry checks that the NIC's registry-backed samples
// agree with the pre-existing getters and monitor fields.
func TestNICMetricsRegistry(t *testing.T) {
	eng := sim.NewEngine()
	n, err := NewNIC(eng, HardConfig{NFlows: 2, ConnCacheSize: 8, Iface: interconnect.Config{Kind: interconnect.UPI, Batch: 4}})
	if err != nil {
		t.Fatal(err)
	}
	n.Monitor.RPCsIn.Add(3)
	n.Monitor.Sheds.Add(2)
	if err := n.CM.Open(1, ConnTuple{}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := n.CM.Lookup(1); err != nil {
		t.Fatal(err)
	}
	n.HCC.Access(0)
	n.HCC.Access(0)
	if !n.TX.Enqueue(0, 1, nil) {
		t.Fatal("enqueue refused")
	}

	s := n.Metrics().Snapshot()
	checks := map[string]int64{
		"rpc.in":        3,
		"shed.expired":  2,
		"conn.opens":    int64(n.CM.Stats().Opens),
		"conn.hits":     int64(n.CM.Stats().Hits),
		"conn.open":     int64(n.CM.OpenCount()),
		"hcc.hits":      int64(n.HCC.Hits.Load()),
		"hcc.misses":    int64(n.HCC.Misses.Load()),
		"tx.enqueued":   int64(n.TX.Enqueued.Load()),
		"reconfig.soft": int64(n.Monitor.SoftReconfig.Load()),
	}
	for name, want := range checks {
		if got := s.Value(name); got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}

	// TX gauges must follow a reconfigured (rebuilt) TX path, not the old
	// instance.
	soft := n.Soft()
	soft.Batch = 2
	if err := n.Reconfigure(soft); err != nil {
		t.Fatal(err)
	}
	if got := n.Metrics().Snapshot().Value("tx.enqueued"); got != 0 {
		t.Fatalf("tx.enqueued after reconfigure = %d, want 0 (fresh TX path)", got)
	}
}

// TestCountersSnapshotRace is the mixed atomic/plain access regression test:
// before the metrics migration, RxPath/TxPath/HCC counters were plain
// uint64s, so a registry snapshot concurrent with the model would race.
// Run under -race this pins the fix.
func TestCountersSnapshotRace(t *testing.T) {
	rx := NewRxPath(2, 8)
	tx := NewTxPath(2, 2)
	hcc := NewHCC()
	reg := metrics.New()
	rx.DescribeMetrics(reg)
	tx.DescribeMetrics(reg)
	hcc.DescribeMetrics(reg)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5000; i++ {
			rx.Deliver(RxEntry{RPCID: uint64(i)})
			rx.Complete(0)
			if tx.Enqueue(uint16(i%2), uint64(i), nil) {
				tx.ScheduleBatch(true)
			}
			hcc.Access(uint64(i) * 64)
		}
	}()
	for i := 0; i < 200; i++ {
		s := reg.Snapshot()
		if s.Value("rx.received") < 0 {
			t.Fatal("impossible counter")
		}
		_ = hcc.HitRate()
	}
	wg.Wait()

	if got := reg.Snapshot().Value("rx.received"); got != int64(rx.Received.Load()) {
		t.Fatalf("snapshot disagrees with counter at quiescence: %d vs %d", got, rx.Received.Load())
	}
}
