package nicmodel

import (
	"fmt"

	"dagger/internal/dataplane"
	"dagger/internal/faults"
	"dagger/internal/metrics"
)

// The TX path (Figure 9B): instead of buffering whole RPCs in per-flow
// FIFOs, incoming RPCs land in a shared request buffer (a lookup table
// indexed by slot_id), a free-slot FIFO tracks free entries, and the
// per-flow FIFOs carry only slot references. The flow scheduler picks a
// flow FIFO holding a full batch and hands the referenced payloads to the
// CCI-P transmitter.

// RequestSlot is one request-table entry.
type RequestSlot struct {
	Valid bool
	RPCID uint64
	Flow  uint16
	Data  []byte
	// Marked/Hint carry the congestion stamp applied at table admission
	// when occupancy was at or past the dataplane mark threshold.
	Marked bool
	Hint   uint8
}

// TxPath models the request buffer, free-slot FIFO, flow FIFOs, and the
// flow scheduler. Table size is B * NFlows entries (§4.4.2).
type TxPath struct {
	batch  int
	nflows int
	table  []RequestSlot
	free   []uint32 // free-slot FIFO
	fifos  [][]uint32

	rrCursor int

	// Chaos plane (internal/faults): an optional deterministic fault stage
	// consulted once per Enqueue, mirroring the RX-side stage. Because the
	// TX table's overflow policy is backpressure (not drop), a held entry
	// whose release finds the table full is re-held for the next admission
	// instead of being lost.
	inj     *faults.Injector
	delayed []delayedTxEntry

	// Counters are metrics.Counter (atomic) so a registry snapshot taken
	// from another goroutine never races the enqueue/schedule path.
	Enqueued  metrics.Counter
	Scheduled metrics.Counter
	Stalls    metrics.Counter // enqueue attempts that found no free slot
	Marked    metrics.Counter // requests congestion-marked at table admission

	// Fault-stage counters (fault.* family, cross-substrate names).
	FaultDrops    metrics.Counter
	FaultDups     metrics.Counter
	FaultDelays   metrics.Counter
	FaultCorrupts metrics.Counter
	CorruptDrops  metrics.Counter
}

// delayedTxEntry is a request the fault stage is holding back; it releases
// after remaining further Enqueues.
type delayedTxEntry struct {
	flow      uint16
	rpcID     uint64
	data      []byte
	remaining uint32
}

// DescribeMetrics registers the TX path's counters into reg. The NIC
// registers equivalent read-time gauges instead (its TxPath is rebuilt on
// every soft reconfiguration); this direct form serves tests and
// experiments driving a TxPath standalone.
func (t *TxPath) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("tx.enqueued", &t.Enqueued)
	reg.RegisterCounter("tx.scheduled", &t.Scheduled)
	reg.RegisterCounter("tx.stalls", &t.Stalls)
	reg.RegisterCounter("mark.tx.stamped", &t.Marked)
	// TX-side fault counters get their own prefix: the cross-substrate
	// fault.* parity names belong to the RX/admission stage (RxPath here,
	// ring admission on the functional fabric), and both paths may share a
	// registry.
	reg.RegisterCounter("fault.tx.dropped", &t.FaultDrops)
	reg.RegisterCounter("fault.tx.duplicated", &t.FaultDups)
	reg.RegisterCounter("fault.tx.delayed", &t.FaultDelays)
	reg.RegisterCounter("fault.tx.corrupted", &t.FaultCorrupts)
	reg.RegisterCounter("fault.tx.corrupt.dropped", &t.CorruptDrops)
}

// NewTxPath creates a TX path with batch width B over nflows flows.
func NewTxPath(batch, nflows int) *TxPath {
	if batch <= 0 || nflows <= 0 {
		panic("nicmodel: txpath needs positive batch and flows")
	}
	n := batch * nflows
	t := &TxPath{
		batch:  batch,
		nflows: nflows,
		table:  make([]RequestSlot, n),
		free:   make([]uint32, 0, n),
		fifos:  make([][]uint32, nflows),
	}
	for i := 0; i < n; i++ {
		t.free = append(t.free, uint32(i))
	}
	return t
}

// TableSize returns the request-table capacity (B * NFlows).
func (t *TxPath) TableSize() int { return len(t.table) }

// FreeSlots returns the number of free request-table entries.
func (t *TxPath) FreeSlots() int { return len(t.free) }

// SetFaultInjector installs a deterministic fault stage (internal/faults)
// ahead of request-table admission; nil uninstalls it. Reconfiguring
// releases any requests a previous stage was still holding, in hold order.
func (t *TxPath) SetFaultInjector(inj *faults.Injector) {
	t.flushFaults()
	t.inj = inj
}

// FlushFaults releases every request the fault stage is holding back, in
// hold order. Requests refused by a full table are lost at this point (the
// producer that would have absorbed the backpressure is gone); callers drain
// the scheduler first to avoid that.
func (t *TxPath) FlushFaults() {
	t.flushFaults()
}

func (t *TxPath) flushFaults() {
	for _, d := range t.delayed {
		if !t.enqueue(d.flow, d.rpcID, d.data) {
			t.Stalls.Inc()
		}
	}
	t.delayed = t.delayed[:0]
}

// Enqueue stores an RPC into the request table, through the fault stage when
// an injector is installed, and pushes its slot reference onto the target
// flow's FIFO. Admission is the dataplane queue policy: with no free slot
// the request is refused and stays with the producer
// (dataplane.TxTableOverflow is backpressure — the hardware asserts
// back-pressure on the RPC unit — so nothing is dropped here). Fault-stage
// losses (Drop, CorruptBit) return true: the producer believes the request
// was accepted, exactly as with a frame lost past the admission point.
func (t *TxPath) Enqueue(flow uint16, rpcID uint64, data []byte) bool {
	if int(flow) >= t.nflows {
		panic(fmt.Sprintf("nicmodel: flow %d out of range (%d flows)", flow, t.nflows))
	}
	if t.inj == nil {
		return t.enqueue(flow, rpcID, data)
	}
	v := t.inj.Next()
	// Age entries held by earlier Enqueues; releases happen after this
	// Enqueue's own admission so a Reorder swaps with its successor.
	for i := range t.delayed {
		t.delayed[i].remaining--
	}
	ok := true
	switch v.Class {
	case faults.Drop:
		t.FaultDrops.Inc()
	case faults.CorruptBit:
		// The modelled header-checksum check catches the flip at admission:
		// counted and discarded, never tabled.
		t.FaultCorrupts.Inc()
		t.CorruptDrops.Inc()
	case faults.Duplicate:
		ok = t.enqueue(flow, rpcID, data)
		if t.enqueue(flow, rpcID, data) {
			t.FaultDups.Inc()
		}
	case faults.Delay, faults.Reorder:
		t.FaultDelays.Inc()
		rem := v.Arg
		if rem == 0 {
			rem = 1
		}
		t.delayed = append(t.delayed, delayedTxEntry{
			flow: flow, rpcID: rpcID, data: data, remaining: rem,
		})
	default: // Deliver
		ok = t.enqueue(flow, rpcID, data)
	}
	// Release everything now due, in hold order; a release refused by the
	// full table re-holds for the next admission (backpressure, not loss).
	if len(t.delayed) > 0 {
		kept := t.delayed[:0]
		for _, d := range t.delayed {
			if d.remaining == 0 {
				if !t.enqueue(d.flow, d.rpcID, d.data) {
					d.remaining = 1
					kept = append(kept, d)
				}
			} else {
				kept = append(kept, d)
			}
		}
		for i := len(kept); i < len(t.delayed); i++ {
			t.delayed[i] = delayedTxEntry{}
		}
		t.delayed = kept
	}
	return ok
}

// enqueue is request-table admission proper, past the fault stage.
func (t *TxPath) enqueue(flow uint16, rpcID uint64, data []byte) bool {
	depth := len(t.table) - len(t.free)
	if !dataplane.Admit(depth, len(t.table)) {
		if !dataplane.DropRefused(dataplane.TxTableOverflow) {
			t.Stalls.Inc()
		}
		return false
	}
	// Same mark decision (and same depth expression) as the admission
	// check: a request admitted at or past half table occupancy is stamped
	// so the congestion signal rides its slot through the scheduler.
	marked := dataplane.Mark(depth, len(t.table))
	var hint uint8
	if marked {
		hint = dataplane.OccupancyHint(depth, len(t.table))
		t.Marked.Inc()
	}
	slot := t.free[0]
	t.free = t.free[1:]
	t.table[slot] = RequestSlot{Valid: true, RPCID: rpcID, Flow: flow, Data: data, Marked: marked, Hint: hint}
	t.fifos[flow] = append(t.fifos[flow], slot)
	t.Enqueued.Inc()
	return true
}

// FlowDepth returns the number of queued references for a flow.
func (t *TxPath) FlowDepth(flow uint16) int { return len(t.fifos[flow]) }

// ScheduleBatch implements the flow scheduler: starting from a round-robin
// cursor it picks the first flow FIFO holding at least a full batch (or, if
// force is set, any non-empty FIFO — used by the soft-configured batch
// timeout to flush under low load), dequeues up to one batch of references,
// reads the payloads out of the request table, and returns the slots to the
// free FIFO. It returns the batch and the source flow, or ok=false when
// nothing is eligible.
func (t *TxPath) ScheduleBatch(force bool) (data [][]byte, flow uint16, ok bool) {
	for i := 0; i < t.nflows; i++ {
		f := (t.rrCursor + i) % t.nflows
		depth := len(t.fifos[f])
		if depth == 0 {
			continue
		}
		if depth < t.batch && !force {
			continue
		}
		n := t.batch
		if depth < n {
			n = depth
		}
		refs := t.fifos[f][:n]
		t.fifos[f] = t.fifos[f][n:]
		out := make([][]byte, 0, n)
		for _, slot := range refs {
			s := &t.table[slot]
			if !s.Valid {
				panic("nicmodel: scheduled reference to invalid slot")
			}
			out = append(out, s.Data)
			s.Valid = false
			t.free = append(t.free, slot)
		}
		t.rrCursor = (f + 1) % t.nflows
		t.Scheduled.Add(uint64(n))
		return out, uint16(f), true
	}
	return nil, 0, false
}
