package workload

import (
	"math"
	"math/rand"

	"dagger/internal/sim"
)

// Arrival generates inter-arrival gaps for an open-loop load generator.
type Arrival interface {
	// NextGap returns the simulated time until the next request.
	NextGap() sim.Time
	// Rate returns the configured mean request rate in requests/second.
	Rate() float64
}

// PoissonArrival models a memoryless open-loop client at a given mean rate.
type PoissonArrival struct {
	rng  *rand.Rand
	rate float64 // requests per second
}

// NewPoissonArrival creates a Poisson arrival process at rate requests/sec.
func NewPoissonArrival(rng *rand.Rand, rate float64) *PoissonArrival {
	if rate <= 0 {
		panic("workload: arrival rate must be positive")
	}
	return &PoissonArrival{rng: rng, rate: rate}
}

// NextGap samples an exponential inter-arrival gap.
func (p *PoissonArrival) NextGap() sim.Time {
	gapSec := -math.Log(1-p.rng.Float64()) / p.rate
	gap := sim.Time(gapSec * 1e9)
	if gap < 1 {
		gap = 1
	}
	return gap
}

// Rate returns the mean rate in requests/second.
func (p *PoissonArrival) Rate() float64 { return p.rate }

// UniformArrival issues requests at exact fixed intervals (a paced
// closed-spacing generator, used for saturation sweeps).
type UniformArrival struct {
	gap  sim.Time
	rate float64
}

// NewUniformArrival creates a fixed-interval process at rate requests/sec.
func NewUniformArrival(rate float64) *UniformArrival {
	if rate <= 0 {
		panic("workload: arrival rate must be positive")
	}
	gap := sim.Time(1e9 / rate)
	if gap < 1 {
		gap = 1
	}
	return &UniformArrival{gap: gap, rate: rate}
}

// NextGap returns the fixed gap.
func (u *UniformArrival) NextGap() sim.Time { return u.gap }

// Rate returns the mean rate in requests/second.
func (u *UniformArrival) Rate() float64 { return u.rate }
