// Package workload generates the request streams used throughout Dagger's
// evaluation: Zipfian key popularity (the MICA/memcached experiments use
// skew 0.99 and 0.9999), set/get operation mixes, per-service RPC size
// distributions, and open-loop arrival processes.
package workload

import (
	"math"
	"math/rand"
)

// Zipf draws items in [0, n) with Zipfian popularity of parameter theta,
// using the Gray et al. rejection-free method popularized by YCSB. Unlike
// math/rand's Zipf it supports theta < 1 exponents expressed the way the KVS
// literature (and the Dagger paper) quotes them: skewness 0.99 means
// P(rank k) ∝ 1/k^0.99.
type Zipf struct {
	rng   *rand.Rand
	n     uint64
	theta float64

	alpha, zetan, eta float64
}

// NewZipf creates a generator over [0, n) with skew theta in [0, 1).
// theta = 0 degenerates to uniform.
func NewZipf(rng *rand.Rand, n uint64, theta float64) *Zipf {
	if n == 0 {
		panic("workload: zipf over empty domain")
	}
	if theta < 0 || theta >= 1 {
		panic("workload: zipf theta must be in [0,1)")
	}
	z := &Zipf{rng: rng, n: n, theta: theta}
	z.zetan = zeta(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - zeta(2, theta)/z.zetan)
	return z
}

func zeta(n uint64, theta float64) float64 {
	// Direct summation for the sizes we use; for very large n switch to the
	// incremental approximation to keep construction fast.
	if n <= 1_000_000 {
		sum := 0.0
		for i := uint64(1); i <= n; i++ {
			sum += 1 / math.Pow(float64(i), theta)
		}
		return sum
	}
	// Euler–Maclaurin style approximation: exact head + integral tail.
	const head = 1_000_000
	sum := zeta(head, theta)
	// Integral of x^-theta from head to n.
	sum += (math.Pow(float64(n), 1-theta) - math.Pow(float64(head), 1-theta)) / (1 - theta)
	return sum
}

// Next returns the next sample in [0, n), where 0 is the most popular rank.
func (z *Zipf) Next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	v := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if v >= z.n {
		v = z.n - 1
	}
	return v
}

// N returns the domain size.
func (z *Zipf) N() uint64 { return z.n }

// Theta returns the skew parameter.
func (z *Zipf) Theta() float64 { return z.theta }
