package workload

import (
	"math"
	"math/rand"
)

// SizeDist samples RPC payload sizes in bytes.
type SizeDist interface {
	Sample(rng *rand.Rand) int64
}

// FixedSize always returns the same size.
type FixedSize int64

// Sample returns the fixed size.
func (f FixedSize) Sample(*rand.Rand) int64 { return int64(f) }

// UniformSize samples uniformly in [Lo, Hi].
type UniformSize struct {
	Lo, Hi int64
}

// Sample draws a uniform size.
func (u UniformSize) Sample(rng *rand.Rand) int64 {
	if u.Hi <= u.Lo {
		return u.Lo
	}
	return u.Lo + rng.Int63n(u.Hi-u.Lo+1)
}

// LogNormalSize samples a log-normal size clamped to [Min, Max].
type LogNormalSize struct {
	Mu, Sigma float64 // parameters of ln(size)
	Min, Max  int64
}

// Sample draws a log-normal size.
func (l LogNormalSize) Sample(rng *rand.Rand) int64 {
	v := int64(math.Exp(l.Mu + l.Sigma*rng.NormFloat64()))
	if v < l.Min {
		v = l.Min
	}
	if l.Max > 0 && v > l.Max {
		v = l.Max
	}
	return v
}

// WeightedSize pairs a distribution with a selection weight.
type WeightedSize struct {
	Weight float64
	Dist   SizeDist
}

// MixtureSize samples from component distributions with given weights.
type MixtureSize struct {
	comps []WeightedSize
	total float64
}

// NewMixtureSize builds a mixture; weights need not sum to 1.
func NewMixtureSize(comps ...WeightedSize) *MixtureSize {
	m := &MixtureSize{comps: comps}
	for _, c := range comps {
		if c.Weight < 0 {
			panic("workload: negative mixture weight")
		}
		m.total += c.Weight
	}
	if m.total <= 0 {
		panic("workload: mixture has no weight")
	}
	return m
}

// Sample selects a component by weight, then samples it.
func (m *MixtureSize) Sample(rng *rand.Rand) int64 {
	x := rng.Float64() * m.total
	for _, c := range m.comps {
		if x < c.Weight {
			return c.Dist.Sample(rng)
		}
		x -= c.Weight
	}
	return m.comps[len(m.comps)-1].Dist.Sample(rng)
}
