package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dagger/internal/sim"
)

func TestZipfSkewConcentratesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	z := NewZipf(rng, 1_000_000, 0.99)
	const n = 200_000
	top100 := 0
	for i := 0; i < n; i++ {
		if z.Next() < 100 {
			top100++
		}
	}
	frac := float64(top100) / n
	// With theta=0.99 over 1M keys, the top-100 ranks should capture a large
	// fraction of accesses (analytically ~37%).
	if frac < 0.25 || frac > 0.55 {
		t.Fatalf("top-100 mass = %.3f, want ~0.37", frac)
	}
}

func TestZipfHigherSkewMoreMass(t *testing.T) {
	sample := func(theta float64) float64 {
		rng := rand.New(rand.NewSource(2))
		z := NewZipf(rng, 1_000_000, theta)
		hit := 0
		for i := 0; i < 100_000; i++ {
			if z.Next() < 10 {
				hit++
			}
		}
		return float64(hit) / 100_000
	}
	lo, hi := sample(0.9), sample(0.9999)
	if hi <= lo {
		t.Fatalf("skew 0.9999 mass %.3f should exceed skew 0.9 mass %.3f", hi, lo)
	}
}

func TestZipfUniformDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	z := NewZipf(rng, 1000, 0)
	counts := make([]int, 10)
	for i := 0; i < 100_000; i++ {
		counts[z.Next()/100]++
	}
	for i, c := range counts {
		if c < 8500 || c > 11500 {
			t.Fatalf("bucket %d count %d, want ~10000 (uniform)", i, c)
		}
	}
}

// Property: Zipf samples always land in [0, n).
func TestZipfBoundsProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, thetaRaw uint8) bool {
		n := uint64(nRaw)%10000 + 1
		theta := float64(thetaRaw) / 256.0 // [0, 1)
		rng := rand.New(rand.NewSource(seed))
		z := NewZipf(rng, n, theta)
		for i := 0; i < 200; i++ {
			if z.Next() >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfLargeDomainZeta(t *testing.T) {
	// 200M records (the paper's MICA dataset) must construct quickly via the
	// approximation and still produce valid skewed samples.
	rng := rand.New(rand.NewSource(4))
	z := NewZipf(rng, 200_000_000, 0.99)
	hit := 0
	for i := 0; i < 50_000; i++ {
		v := z.Next()
		if v >= z.N() {
			t.Fatal("sample out of range")
		}
		if v < 1000 {
			hit++
		}
	}
	if hit == 0 {
		t.Fatal("no samples in the hot set; zeta approximation broken")
	}
}

func TestKVGeneratorMix(t *testing.T) {
	g := NewKVGenerator(5, Tiny, ReadIntensive, 0.99)
	gets := 0
	const n = 100_000
	for i := 0; i < n; i++ {
		r := g.Next()
		if len(r.Key) != Tiny.KeySize {
			t.Fatalf("key size %d, want %d", len(r.Key), Tiny.KeySize)
		}
		if r.Op == OpGet {
			gets++
			if r.Value != nil {
				t.Fatal("get carries a value")
			}
		} else if len(r.Value) != Tiny.ValueSize {
			t.Fatalf("value size %d, want %d", len(r.Value), Tiny.ValueSize)
		}
	}
	frac := float64(gets) / n
	if math.Abs(frac-0.95) > 0.01 {
		t.Fatalf("get fraction %.3f, want 0.95", frac)
	}
}

func TestKeyForRecordDeterministic(t *testing.T) {
	a := KeyForRecord(Small, 12345, nil)
	b := KeyForRecord(Small, 12345, nil)
	if string(a) != string(b) {
		t.Fatal("same record produced different keys")
	}
	c := KeyForRecord(Small, 12346, nil)
	if string(a) == string(c) {
		t.Fatal("different records produced identical keys")
	}
	if len(a) != Small.KeySize {
		t.Fatalf("key length %d, want %d", len(a), Small.KeySize)
	}
}

func TestPoissonArrivalMeanRate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := NewPoissonArrival(rng, 1e6) // 1 Mrps => mean gap 1000 ns
	var total sim.Time
	const n = 100_000
	for i := 0; i < n; i++ {
		total += a.NextGap()
	}
	mean := float64(total) / n
	if math.Abs(mean-1000) > 30 {
		t.Fatalf("mean gap %.1f ns, want ~1000", mean)
	}
}

func TestUniformArrival(t *testing.T) {
	a := NewUniformArrival(2e6)
	if a.NextGap() != 500 {
		t.Fatalf("gap = %v, want 500ns", a.NextGap())
	}
	if a.Rate() != 2e6 {
		t.Fatalf("rate = %v", a.Rate())
	}
}

func TestArrivalRejectsBadRate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero rate did not panic")
		}
	}()
	NewUniformArrival(0)
}

func TestSizeDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if FixedSize(64).Sample(rng) != 64 {
		t.Fatal("fixed size wrong")
	}
	u := UniformSize{Lo: 10, Hi: 20}
	for i := 0; i < 1000; i++ {
		v := u.Sample(rng)
		if v < 10 || v > 20 {
			t.Fatalf("uniform sample %d out of range", v)
		}
	}
	l := LogNormalSize{Mu: math.Log(580), Sigma: 0.5, Min: 64, Max: 4096}
	for i := 0; i < 1000; i++ {
		v := l.Sample(rng)
		if v < 64 || v > 4096 {
			t.Fatalf("lognormal sample %d out of clamp range", v)
		}
	}
}

func TestMixtureSize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewMixtureSize(
		WeightedSize{Weight: 0.9, Dist: FixedSize(64)},
		WeightedSize{Weight: 0.1, Dist: FixedSize(1024)},
	)
	small := 0
	for i := 0; i < 10_000; i++ {
		if m.Sample(rng) == 64 {
			small++
		}
	}
	frac := float64(small) / 10_000
	if math.Abs(frac-0.9) > 0.02 {
		t.Fatalf("small fraction %.3f, want 0.9", frac)
	}
}

func TestMixtureRejectsEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero-weight mixture did not panic")
		}
	}()
	NewMixtureSize(WeightedSize{Weight: 0, Dist: FixedSize(1)})
}
