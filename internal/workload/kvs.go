package workload

import (
	"encoding/binary"
	"math/rand"
)

// Op is a key-value store operation kind.
type Op int

const (
	// OpGet reads a key.
	OpGet Op = iota
	// OpSet writes a key.
	OpSet
)

// KVRequest is one generated key-value operation.
type KVRequest struct {
	Op    Op
	Key   []byte
	Value []byte // nil for gets
}

// Dataset describes a key/value sizing scheme. The paper evaluates "tiny"
// (8 B keys, 8 B values) and "small" (16 B keys, 32 B values) datasets,
// mirroring MICA's evaluation.
type Dataset struct {
	Name      string
	KeySize   int
	ValueSize int
	Records   uint64
}

// Standard datasets from §5.6.
var (
	Tiny  = Dataset{Name: "tiny", KeySize: 8, ValueSize: 8, Records: 10_000_000}
	Small = Dataset{Name: "small", KeySize: 16, ValueSize: 32, Records: 10_000_000}
)

// Mix describes a set/get operation mix. The paper uses write-intensive
// (50%/50%) and read-intensive (5%/95%) mixes.
type Mix struct {
	Name   string
	GetPct float64
}

// Standard mixes from §5.6.
var (
	WriteIntensive = Mix{Name: "50% GET", GetPct: 0.50}
	ReadIntensive  = Mix{Name: "95% GET", GetPct: 0.95}
)

// KVGenerator produces a Zipfian-skewed stream of KV operations over a
// dataset.
type KVGenerator struct {
	rng  *rand.Rand
	zipf *Zipf
	ds   Dataset
	mix  Mix

	key []byte
	val []byte
}

// NewKVGenerator builds a generator with the given skew (0.99 in the paper's
// main runs, 0.9999 in the high-locality run).
func NewKVGenerator(seed int64, ds Dataset, mix Mix, theta float64) *KVGenerator {
	rng := rand.New(rand.NewSource(seed))
	return &KVGenerator{
		rng:  rng,
		zipf: NewZipf(rng, ds.Records, theta),
		ds:   ds,
		mix:  mix,
		key:  make([]byte, ds.KeySize),
		val:  make([]byte, ds.ValueSize),
	}
}

// KeyForRecord deterministically materializes the key bytes for a record
// index, so generators and store loaders agree on the key space.
func KeyForRecord(ds Dataset, rec uint64, dst []byte) []byte {
	if cap(dst) < ds.KeySize {
		dst = make([]byte, ds.KeySize)
	}
	dst = dst[:ds.KeySize]
	for i := range dst {
		dst[i] = byte('a' + i%26)
	}
	binary.LittleEndian.PutUint64(dst[:8], rec)
	return dst
}

// Next returns the next operation. The returned slices are reused across
// calls; callers that retain them must copy.
func (g *KVGenerator) Next() KVRequest {
	rec := g.zipf.Next()
	g.key = KeyForRecord(g.ds, rec, g.key)
	if g.rng.Float64() < g.mix.GetPct {
		return KVRequest{Op: OpGet, Key: g.key}
	}
	for i := range g.val {
		g.val[i] = byte(g.rng.Intn(256))
	}
	return KVRequest{Op: OpSet, Key: g.key, Value: g.val}
}

// Dataset returns the generator's dataset description.
func (g *KVGenerator) Dataset() Dataset { return g.ds }
