package transport

import (
	"sync/atomic"

	"dagger/internal/fabric"
	"dagger/internal/metrics"
	"dagger/internal/wire"
)

// Bridge connects a local fabric to remote peers over a PacketConn: it
// installs itself as the fabric's gateway for non-local destinations and
// injects inbound frames into the fabric with the usual NIC-side steering.
// One Bridge per host; the route table is the cross-host extension of the
// ToR model's static switching table.
type Bridge struct {
	fab    *fabric.Fabric
	conn   PacketConn
	routes *RouteTable
	closed atomic.Bool

	Forwarded   metrics.Counter
	Injected    metrics.Counter
	InjectErr   metrics.Counter
	NoPeer      metrics.Counter
	DeadLetters metrics.Counter
}

// DescribeMetrics registers the bridge's forwarding counters into reg.
func (b *Bridge) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("bridge.forwarded", &b.Forwarded)
	reg.RegisterCounter("bridge.injected", &b.Injected)
	reg.RegisterCounter("bridge.injecterr", &b.InjectErr)
	reg.RegisterCounter("bridge.nopeer", &b.NoPeer)
	reg.RegisterCounter("bridge.deadletters", &b.DeadLetters)
}

// NewBridge attaches a bridge to fab over conn using routes. The bridge
// takes ownership of the conn's receive handler. A Reliable conn additionally
// gets the bridge's dead-letter hook: requests the protocol abandons come back
// to the local fabric as synthetic FlagDead responses, so the waiting client
// fails fast with ErrPeerDead instead of burning its full timeout.
func NewBridge(fab *fabric.Fabric, conn PacketConn, routes *RouteTable) *Bridge {
	b := &Bridge{fab: fab, conn: conn, routes: routes}
	conn.SetHandler(b.onFrame)
	if rl, ok := conn.(*Reliable); ok {
		rl.SetDeadLetter(b.onDeadLetter)
	}
	fab.SetGateway(b.forward)
	return b
}

// onDeadLetter receives frames the reliable protocol gave up delivering. For
// abandoned requests it synthesizes a dead-peer response toward the caller;
// abandoned responses are dropped (the remote caller's own transport is
// responsible for its side's liveness).
func (b *Bridge) onDeadLetter(_ string, pkt []byte) {
	if b.closed.Load() {
		return
	}
	h, err := wire.ParseHeader(pkt)
	if err != nil || h.Kind != wire.KindRequest {
		return
	}
	b.DeadLetters.Add(1)
	m := &wire.Message{Header: wire.Header{
		Kind: wire.KindResponse, Flags: wire.FlagDead,
		ConnID: h.ConnID, RPCID: h.RPCID, FlowID: h.FlowID, FnID: h.FnID,
		SrcAddr: h.DstAddr, DstAddr: h.SrcAddr,
	}}
	buf := b.fab.Buffers().Get(wire.CacheLineSize)
	frame, err := wire.MarshalAppend(buf[:0], m)
	if err != nil {
		b.fab.Buffers().Put(buf)
		return
	}
	if err := b.fab.Inject(frame); err != nil {
		b.InjectErr.Add(1)
	}
}

// Endpoint returns the bridge's own transport endpoint (to put in peers'
// route tables).
func (b *Bridge) Endpoint() string { return b.conn.LocalEndpoint() }

func (b *Bridge) forward(dstAddr uint32, frame []byte) error {
	if b.closed.Load() {
		return ErrBridgeClose
	}
	ep, ok := b.routes.Resolve(dstAddr)
	if !ok {
		b.NoPeer.Add(1)
		return ErrNoPeer
	}
	b.Forwarded.Add(1)
	return b.conn.Send(ep, frame)
}

func (b *Bridge) onFrame(pkt []byte, _ string) {
	if b.closed.Load() {
		return
	}
	// pkt is borrowed from the conn, but Inject takes ownership of its
	// argument — so copy into a pooled frame buffer first.
	frame := b.fab.Buffers().Get(len(pkt))
	copy(frame, pkt)
	if err := b.fab.Inject(frame); err != nil {
		b.InjectErr.Add(1)
		return
	}
	b.Injected.Add(1)
}

// Close detaches the bridge and closes its conn.
func (b *Bridge) Close() error {
	if b.closed.Swap(true) {
		return nil
	}
	b.fab.SetGateway(nil)
	return b.conn.Close()
}
