package transport

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"dagger/internal/core"
	"dagger/internal/fabric"
	"dagger/internal/kvs/mica"
)

// ===== Route table =====

func TestRouteTable(t *testing.T) {
	rt := NewRouteTable(
		Route{Lo: 100, Hi: 199, Endpoint: "hostA"},
		Route{Lo: 200, Hi: 200, Endpoint: "hostB"},
	)
	if ep, ok := rt.Resolve(150); !ok || ep != "hostA" {
		t.Fatalf("resolve(150) = %q,%v", ep, ok)
	}
	if ep, ok := rt.Resolve(200); !ok || ep != "hostB" {
		t.Fatalf("resolve(200) = %q,%v", ep, ok)
	}
	if _, ok := rt.Resolve(50); ok {
		t.Fatal("unrouted address resolved")
	}
}

// TestRouteTableBinarySearch covers the sorted-interval lookup: unsorted
// insertion order, exact boundary addresses, gaps between ranges, and the
// extremes of the address space.
func TestRouteTableBinarySearch(t *testing.T) {
	rt := NewRouteTable(
		Route{Lo: 500, Hi: 599, Endpoint: "hostC"},
		Route{Lo: 100, Hi: 199, Endpoint: "hostA"},
		Route{Lo: 300, Hi: 300, Endpoint: "hostB"},
		Route{Lo: 0, Hi: 0, Endpoint: "zero"},
		Route{Lo: 1 << 31, Hi: ^uint32(0), Endpoint: "high"},
	)
	cases := []struct {
		addr uint32
		ep   string
		ok   bool
	}{
		{0, "zero", true},
		{1, "", false},
		{99, "", false},
		{100, "hostA", true},
		{199, "hostA", true},
		{200, "", false},
		{300, "hostB", true},
		{301, "", false},
		{499, "", false},
		{500, "hostC", true},
		{599, "hostC", true},
		{600, "", false},
		{1 << 31, "high", true},
		{^uint32(0), "high", true},
		{1<<31 - 1, "", false},
	}
	for _, c := range cases {
		if ep, ok := rt.Resolve(c.addr); ok != c.ok || ep != c.ep {
			t.Fatalf("Resolve(%d) = %q,%v; want %q,%v", c.addr, ep, ok, c.ep, c.ok)
		}
	}
	// Empty table.
	if _, ok := NewRouteTable().Resolve(42); ok {
		t.Fatal("empty table resolved an address")
	}
}

func TestRouteTableRejectsOverlap(t *testing.T) {
	overlaps := [][2]Route{
		{{Lo: 100, Hi: 199, Endpoint: "a"}, {Lo: 150, Hi: 250, Endpoint: "b"}},
		{{Lo: 100, Hi: 199, Endpoint: "a"}, {Lo: 50, Hi: 100, Endpoint: "b"}},
		{{Lo: 100, Hi: 199, Endpoint: "a"}, {Lo: 100, Hi: 199, Endpoint: "b"}},
		{{Lo: 100, Hi: 199, Endpoint: "a"}, {Lo: 120, Hi: 130, Endpoint: "b"}},
	}
	for i, pair := range overlaps {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: overlapping route accepted", i)
				}
			}()
			NewRouteTable(pair[0], pair[1])
		}()
	}
}

func TestRouteTableRejectsInverted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted route accepted")
		}
	}()
	NewRouteTable(Route{Lo: 5, Hi: 1, Endpoint: "x"})
}

// ===== Lossy in-memory conn for protocol tests =====

// memNet is an in-memory datagram network with configurable loss.
type memNet struct {
	mu    sync.Mutex
	conns map[string]*memConn
	rng   *rand.Rand
	loss  float64
}

func newMemNet(loss float64, seed int64) *memNet {
	return &memNet{conns: map[string]*memConn{}, rng: rand.New(rand.NewSource(seed)), loss: loss}
}

type memConn struct {
	net     *memNet
	name    string
	mu      sync.Mutex
	handler func([]byte, string)
	closed  bool
}

func (n *memNet) conn(name string) *memConn {
	n.mu.Lock()
	defer n.mu.Unlock()
	c := &memConn{net: n, name: name}
	n.conns[name] = c
	return c
}

func (c *memConn) Send(endpoint string, pkt []byte) error {
	c.net.mu.Lock()
	dst := c.net.conns[endpoint]
	drop := c.net.rng.Float64() < c.net.loss
	c.net.mu.Unlock()
	if dst == nil {
		return fmt.Errorf("memnet: no conn %q", endpoint)
	}
	if drop {
		return nil // silently lost, like UDP
	}
	cp := make([]byte, len(pkt))
	copy(cp, pkt)
	go func() {
		dst.mu.Lock()
		h := dst.handler
		closed := dst.closed
		dst.mu.Unlock()
		if h != nil && !closed {
			h(cp, c.name)
		}
	}()
	return nil
}

func (c *memConn) SetHandler(h func([]byte, string)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.handler = h
}

func (c *memConn) LocalEndpoint() string { return c.name }

func (c *memConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// ===== Reliability protocol =====

func TestReliableDeliversWithoutLoss(t *testing.T) {
	net := newMemNet(0, 1)
	a := NewReliable(net.conn("a"), ReliableOptions{RTO: 5 * time.Millisecond})
	defer a.Close()
	b := NewReliable(net.conn("b"), ReliableOptions{RTO: 5 * time.Millisecond})
	defer b.Close()

	got := make(chan []byte, 16)
	b.SetHandler(func(pkt []byte, from string) {
		if from != "a" {
			t.Errorf("from = %q", from)
		}
		got <- pkt
	})
	for i := 0; i < 5; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[byte]bool{}
	for i := 0; i < 5; i++ {
		select {
		case p := <-got:
			seen[p[0]] = true
		case <-time.After(2 * time.Second):
			t.Fatal("delivery timeout")
		}
	}
	if len(seen) != 5 {
		t.Fatalf("delivered %d distinct, want 5", len(seen))
	}
	deadline := time.Now().Add(time.Second)
	for a.Unacked() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Unacked() != 0 {
		t.Fatalf("unacked = %d after acks", a.Unacked())
	}
}

func TestReliableSurvivesHeavyLoss(t *testing.T) {
	net := newMemNet(0.4, 2) // 40% datagram loss, both directions
	a := NewReliable(net.conn("a"), ReliableOptions{RTO: 3 * time.Millisecond, MaxRetries: 50})
	defer a.Close()
	b := NewReliable(net.conn("b"), ReliableOptions{RTO: 3 * time.Millisecond, MaxRetries: 50})
	defer b.Close()

	const n = 100
	var mu sync.Mutex
	delivered := map[byte]int{}
	b.SetHandler(func(pkt []byte, _ string) {
		mu.Lock()
		delivered[pkt[0]]++
		mu.Unlock()
	})
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		count := len(delivered)
		mu.Unlock()
		if count == n {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(delivered) != n {
		t.Fatalf("delivered %d of %d under loss", len(delivered), n)
	}
	// Exactly-once to the handler despite retransmission.
	for k, c := range delivered {
		if c != 1 {
			t.Fatalf("packet %d delivered %d times", k, c)
		}
	}
	if a.Retransmits.Load() == 0 {
		t.Error("no retransmits under 40% loss?")
	}
}

func TestReliableGivesUpEventually(t *testing.T) {
	net := newMemNet(1.0, 3) // total blackout
	a := NewReliable(net.conn("a"), ReliableOptions{RTO: 2 * time.Millisecond, MaxRetries: 3})
	defer a.Close()
	net.conn("b") // exists but unreachable
	if err := a.Send("b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.Unacked() > 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if a.Unacked() != 0 {
		t.Fatal("sender never gave up")
	}
	if a.GaveUp.Load() != 1 {
		t.Fatalf("gaveUp = %d", a.GaveUp.Load())
	}
}

// ===== UDP conn =====

func TestUDPConnRoundTrip(t *testing.T) {
	a, err := NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	got := make(chan string, 1)
	b.SetHandler(func(pkt []byte, from string) { got <- string(pkt) })
	if err := a.Send(b.LocalEndpoint(), []byte("over-udp")); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "over-udp" {
			t.Fatalf("payload %q", s)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("udp delivery timeout")
	}
}

// ===== Bridge: full RPC across two fabrics over real UDP =====

func twoHosts(t *testing.T) (cliFab, srvFab *fabric.Fabric, cleanup func()) {
	t.Helper()
	cliFab = fabric.NewFabric()
	srvFab = fabric.NewFabric()
	cliConn, err := NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srvConn, err := NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cliRel := NewReliable(cliConn, ReliableOptions{RTO: 10 * time.Millisecond})
	srvRel := NewReliable(srvConn, ReliableOptions{RTO: 10 * time.Millisecond})
	cliBridge := NewBridge(cliFab, cliRel, NewRouteTable(Route{Lo: 100, Hi: 199, Endpoint: srvConn.LocalEndpoint()}))
	srvBridge := NewBridge(srvFab, srvRel, NewRouteTable(Route{Lo: 1, Hi: 99, Endpoint: cliConn.LocalEndpoint()}))
	return cliFab, srvFab, func() {
		cliBridge.Close()
		srvBridge.Close()
	}
}

func TestBridgeRPCOverUDP(t *testing.T) {
	cliFab, srvFab, cleanup := twoHosts(t)
	defer cleanup()

	snic, err := srvFab.CreateNIC(100, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	srv := core.NewRpcThreadedServer(snic, core.ServerConfig{})
	if err := srv.Register(0, "echo", func(_ context.Context, req []byte) ([]byte, error) {
		return append([]byte("udp:"), req...), nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	cnic, err := cliFab.CreateNIC(1, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := core.NewRpcClient(cnic, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(100); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		msg := []byte(fmt.Sprintf("m%d", i))
		resp, err := cli.Call(0, msg)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if !bytes.Equal(resp, append([]byte("udp:"), msg...)) {
			t.Fatalf("call %d: resp %q", i, resp)
		}
	}
}

func TestBridgeMICAOverUDP(t *testing.T) {
	cliFab, srvFab, cleanup := twoHosts(t)
	defer cleanup()

	snic, err := srvFab.CreateNIC(100, 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	store := mica.NewStore(4, 1024, 1<<20)
	srv, err := mica.Serve(snic, store, core.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	cnic, _ := cliFab.CreateNIC(1, 1, 256)
	cli, _ := core.NewRpcClient(cnic, 0)
	defer cli.Close()
	if _, err := cli.OpenConnection(100); err != nil {
		t.Fatal(err)
	}
	mc := mica.NewClient(cli)
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		if err := mc.Set(k, k); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		k := []byte(fmt.Sprintf("key-%d", i))
		v, err := mc.Get(k)
		if err != nil || !bytes.Equal(v, k) {
			t.Fatalf("key %d over UDP: %q %v", i, v, err)
		}
	}
}

func TestBridgeNoPeer(t *testing.T) {
	fab := fabric.NewFabric()
	conn, err := NewUDPConn("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBridge(fab, conn, NewRouteTable())
	defer b.Close()
	nic, _ := fab.CreateNIC(1, 1, 16)
	cli, _ := core.NewRpcClient(nic, 0)
	defer cli.Close()
	if _, err := cli.OpenConnection(999); err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(time.Millisecond)
	if _, err := cli.Call(0, nil); err == nil {
		t.Fatal("call to unrouted address succeeded")
	}
	if b.NoPeer.Load() == 0 {
		t.Fatal("NoPeer counter not bumped")
	}
}

// AIMD congestion control: the window grows on clean acks and halves on
// retransmission timeouts, and packets beyond it queue rather than flood.
func TestCongestionWindowDynamics(t *testing.T) {
	// Clean network: window grows.
	clean := newMemNet(0, 4)
	a := NewReliable(clean.conn("a"), ReliableOptions{RTO: 5 * time.Millisecond, InitialWindow: 4})
	defer a.Close()
	b := NewReliable(clean.conn("b"), ReliableOptions{RTO: 5 * time.Millisecond})
	defer b.Close()
	b.SetHandler(func([]byte, string) {})
	for i := 0; i < 200; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for (a.Unacked() > 0 || a.Queued() > 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if a.Queued() != 0 || a.Unacked() != 0 {
		t.Fatalf("pipeline did not drain: unacked=%d queued=%d", a.Unacked(), a.Queued())
	}
	if w := a.Window("b"); w <= 4 {
		t.Errorf("window did not grow on clean network: %.1f", w)
	}

	// Blackout: window collapses to the floor.
	dark := newMemNet(1.0, 5)
	c := NewReliable(dark.conn("c"), ReliableOptions{RTO: 2 * time.Millisecond, MaxRetries: 4, InitialWindow: 16})
	defer c.Close()
	dark.conn("d")
	for i := 0; i < 8; i++ {
		_ = c.Send("d", []byte{byte(i)})
	}
	deadline = time.Now().Add(2 * time.Second)
	for c.Window("d") > 1 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if w := c.Window("d"); w > 1 {
		t.Errorf("window did not collapse under total loss: %.1f", w)
	}
}

// Queued packets behind a small window must still all be delivered,
// in-window batches at a time.
func TestCongestionWindowDrainsQueue(t *testing.T) {
	net := newMemNet(0, 6)
	a := NewReliable(net.conn("a"), ReliableOptions{RTO: 5 * time.Millisecond, InitialWindow: 2, MaxWindow: 4})
	defer a.Close()
	b := NewReliable(net.conn("b"), ReliableOptions{RTO: 5 * time.Millisecond})
	defer b.Close()
	var mu sync.Mutex
	got := map[byte]bool{}
	b.SetHandler(func(pkt []byte, _ string) {
		mu.Lock()
		got[pkt[0]] = true
		mu.Unlock()
	})
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		mu.Lock()
		c := len(got)
		mu.Unlock()
		if c == n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("only %d of %d delivered through the window", len(got), n)
}

// ===== Dead-letter plane =====

// A packet the protocol abandons must surface through the dead-letter hook
// with its original (unframed) payload, not vanish silently.
func TestDeadLetterCallback(t *testing.T) {
	net := newMemNet(1.0, 7) // total blackout
	a := NewReliable(net.conn("a"), ReliableOptions{RTO: 2 * time.Millisecond, MaxRetries: 2})
	defer a.Close()
	net.conn("b")

	type deadPkt struct {
		endpoint string
		payload  []byte
	}
	got := make(chan deadPkt, 1)
	a.SetDeadLetter(func(ep string, pkt []byte) {
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		got <- deadPkt{ep, cp}
	})
	if err := a.Send("b", []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	select {
	case d := <-got:
		if d.endpoint != "b" || !bytes.Equal(d.payload, []byte("doomed")) {
			t.Fatalf("dead letter = %q to %q; want original payload to b", d.payload, d.endpoint)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned packet never dead-lettered")
	}
	if a.DeadLetters.Load() != 1 || a.GaveUp.Load() != 1 {
		t.Fatalf("DeadLetters=%d GaveUp=%d, want 1/1", a.DeadLetters.Load(), a.GaveUp.Load())
	}
}

// A give-up-only tick says nothing new about congestion: the window halves
// once per tick that actually retransmitted, and NOT again when the packet is
// finally abandoned. (Regression: give-up storms used to halve cwnd per tick,
// collapsing the window to the floor before a replacement peer saw traffic.)
func TestGiveUpDoesNotCollapseWindow(t *testing.T) {
	net := newMemNet(1.0, 8) // total blackout
	a := NewReliable(net.conn("a"), ReliableOptions{
		RTO: 2 * time.Millisecond, MaxRetries: 1, InitialWindow: 16,
	})
	defer a.Close()
	net.conn("b")
	if err := a.Send("b", []byte{1}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for a.GaveUp.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if a.GaveUp.Load() != 1 {
		t.Fatal("sender never gave up")
	}
	// Exactly one retransmission happened (MaxRetries=1), so exactly one
	// multiplicative decrease: 16 -> 8. The buggy behaviour halved again on
	// the give-up tick, to 4.
	if w := a.Window("b"); w != 8 {
		t.Fatalf("window = %.1f after one retransmit + one give-up, want 8", w)
	}
}

// End-to-end fail-fast: a call routed into a dead path fails with
// core.ErrPeerDead as soon as the transport gives up, via the bridge's
// synthetic FlagDead response — not after the client's full timeout.
func TestBridgeDeadLetterFailsFast(t *testing.T) {
	net := newMemNet(1.0, 9) // the peer is unreachable
	fab := fabric.NewFabric()
	rel := NewReliable(net.conn("cli"), ReliableOptions{RTO: 2 * time.Millisecond, MaxRetries: 3})
	b := NewBridge(fab, rel, NewRouteTable(Route{Lo: 100, Hi: 100, Endpoint: "srv"}))
	defer b.Close()
	net.conn("srv")

	nic, err := fab.CreateNIC(1, 1, 64)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := core.NewRpcClient(nic, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.OpenConnection(100); err != nil {
		t.Fatal(err)
	}
	cli.SetTimeout(30 * time.Second) // the dead-letter must beat this by miles

	start := time.Now()
	_, err = cli.Call(0, []byte("into the void"))
	elapsed := time.Since(start)
	if !errors.Is(err, core.ErrPeerDead) {
		t.Fatalf("call into dead path: err = %v, want ErrPeerDead", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("dead-letter verdict took %v; fail-fast path did not engage", elapsed)
	}
	if core.Retryable(err) {
		t.Fatal("ErrPeerDead must not be retryable")
	}
	if b.DeadLetters.Load() == 0 {
		t.Fatal("bridge dead-letter counter not bumped")
	}
	if cli.PeerDead.Load() != 1 {
		t.Fatalf("client PeerDead = %d, want 1", cli.PeerDead.Load())
	}
}
