package transport

import (
	"net"
	"sync"
	"sync/atomic"

	"dagger/internal/metrics"
)

// maxDatagram bounds one UDP payload: a full Dagger frame plus the protocol
// header fits comfortably (frames are at most wire.MaxPayload + one line).
const maxDatagram = 20 * 1024

// UDPConn is the production PacketConn: one UDP socket per host.
type UDPConn struct {
	conn    *net.UDPConn
	mu      sync.RWMutex
	handler func([]byte, string)
	closed  atomic.Bool
	wg      sync.WaitGroup

	Sent     metrics.Counter
	Received metrics.Counter
}

// DescribeMetrics registers the socket's datagram counters into reg.
func (u *UDPConn) DescribeMetrics(reg *metrics.Registry) {
	reg.RegisterCounter("udp.sent", &u.Sent)
	reg.RegisterCounter("udp.received", &u.Received)
}

// NewUDPConn binds a UDP socket on addr ("127.0.0.1:0" for an ephemeral
// port) and starts its receive loop.
func NewUDPConn(addr string) (*UDPConn, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	u := &UDPConn{conn: conn}
	u.wg.Add(1)
	go u.recvLoop()
	return u, nil
}

func (u *UDPConn) recvLoop() {
	defer u.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, from, err := u.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		u.Received.Add(1)
		u.mu.RLock()
		h := u.handler
		u.mu.RUnlock()
		if h != nil {
			// The receive buffer is reused across datagrams; handlers get
			// a borrowed view per the PacketConn contract and copy if they
			// retain it.
			h(buf[:n], from.String())
		}
	}
}

// Send transmits one datagram to endpoint (host:port).
func (u *UDPConn) Send(endpoint string, pkt []byte) error {
	if u.closed.Load() {
		return ErrBridgeClose
	}
	ua, err := net.ResolveUDPAddr("udp", endpoint)
	if err != nil {
		return err
	}
	if _, err := u.conn.WriteToUDP(pkt, ua); err != nil {
		return err
	}
	u.Sent.Add(1)
	return nil
}

// SetHandler installs the receive callback.
func (u *UDPConn) SetHandler(h func([]byte, string)) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.handler = h
}

// LocalEndpoint returns the bound host:port.
func (u *UDPConn) LocalEndpoint() string { return u.conn.LocalAddr().String() }

// Close shuts the socket and waits for the receive loop.
func (u *UDPConn) Close() error {
	if u.closed.Swap(true) {
		return nil
	}
	err := u.conn.Close()
	u.wg.Wait()
	return err
}
