// Package transport extends Dagger's functional stack across hosts: it
// implements the Transport layer of Figure 6 — a UDP/IP datagram path
// between NICs — plus the Protocol unit the paper leaves as future work
// (§4.5: "we plan to extend Dagger with reliable transports"): sequence
// numbers, cumulative acknowledgements, retransmission and duplicate
// suppression layered over the lossy datagram path.
//
// A Bridge attaches to a fabric.Fabric as its gateway: frames addressed to
// NICs that are not local are forwarded to the peer host owning that
// address, where the remote Bridge injects them into its own fabric with
// the usual NIC-side steering.
package transport

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Errors returned by transports.
var (
	ErrNoPeer      = errors.New("transport: no peer owns destination address")
	ErrBridgeClose = errors.New("transport: bridge closed")
)

// PacketConn is the datagram substrate a Bridge runs over: real UDP in
// production (NewUDPConn), an in-memory lossy pair in tests. Implementations
// must be safe for concurrent Send.
type PacketConn interface {
	// Send transmits one datagram to a peer named by an opaque endpoint
	// string (host:port for UDP).
	Send(endpoint string, pkt []byte) error
	// SetHandler installs the receive callback; it is invoked once per
	// inbound datagram with the sender's endpoint. Must be called before
	// traffic flows. The pkt slice is borrowed: it is only valid for the
	// duration of the callback, and a handler that retains it must copy
	// (this lets implementations reuse one receive buffer).
	SetHandler(func(pkt []byte, from string))
	// LocalEndpoint returns this conn's own endpoint name.
	LocalEndpoint() string
	// Close stops the conn; the handler will not fire afterwards.
	Close() error
}

// Route maps a Dagger NIC address range to a peer endpoint.
type Route struct {
	// Lo and Hi bound the NIC addresses (inclusive) owned by the peer.
	Lo, Hi uint32
	// Endpoint is the peer's PacketConn endpoint.
	Endpoint string
}

// RouteTable resolves destination NIC addresses to peer endpoints — the
// static switching table of the paper's ToR model, stretched across hosts.
// Routes are kept sorted by Lo and must not overlap, so Resolve is a
// lock-free, allocation-free binary search (it runs on the per-frame
// forwarding path); Add copies the table, which is fine for the rare
// control-plane write.
type RouteTable struct {
	mu     sync.Mutex              // serializes writers
	routes atomic.Pointer[[]Route] // sorted by Lo, non-overlapping
}

// NewRouteTable builds a table from routes.
func NewRouteTable(routes ...Route) *RouteTable {
	t := &RouteTable{}
	for _, r := range routes {
		t.Add(r)
	}
	return t
}

// Add inserts a route, keeping the table sorted. It panics on an inverted
// range or one that overlaps an existing route (one address must resolve to
// exactly one peer).
func (t *RouteTable) Add(r Route) {
	if r.Hi < r.Lo {
		panic(fmt.Sprintf("transport: route range [%d, %d] inverted", r.Lo, r.Hi))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	var cur []Route
	if p := t.routes.Load(); p != nil {
		cur = *p
	}
	i := sort.Search(len(cur), func(j int) bool { return cur[j].Lo > r.Lo })
	if i > 0 && cur[i-1].Hi >= r.Lo {
		panic(fmt.Sprintf("transport: route [%d, %d] overlaps [%d, %d]", r.Lo, r.Hi, cur[i-1].Lo, cur[i-1].Hi))
	}
	if i < len(cur) && cur[i].Lo <= r.Hi {
		panic(fmt.Sprintf("transport: route [%d, %d] overlaps [%d, %d]", r.Lo, r.Hi, cur[i].Lo, cur[i].Hi))
	}
	next := make([]Route, 0, len(cur)+1)
	next = append(next, cur[:i]...)
	next = append(next, r)
	next = append(next, cur[i:]...)
	t.routes.Store(&next)
}

// Resolve returns the endpoint owning addr: a binary search for the route
// with the greatest Lo not above addr, then an upper-bound check.
func (t *RouteTable) Resolve(addr uint32) (string, bool) {
	p := t.routes.Load()
	if p == nil {
		return "", false
	}
	routes := *p
	lo, hi := 0, len(routes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if routes[mid].Lo <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && addr <= routes[lo-1].Hi {
		return routes[lo-1].Endpoint, true
	}
	return "", false
}
