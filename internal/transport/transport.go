// Package transport extends Dagger's functional stack across hosts: it
// implements the Transport layer of Figure 6 — a UDP/IP datagram path
// between NICs — plus the Protocol unit the paper leaves as future work
// (§4.5: "we plan to extend Dagger with reliable transports"): sequence
// numbers, cumulative acknowledgements, retransmission and duplicate
// suppression layered over the lossy datagram path.
//
// A Bridge attaches to a fabric.Fabric as its gateway: frames addressed to
// NICs that are not local are forwarded to the peer host owning that
// address, where the remote Bridge injects them into its own fabric with
// the usual NIC-side steering.
package transport

import (
	"errors"
	"fmt"
	"sync"
)

// Errors returned by transports.
var (
	ErrNoPeer      = errors.New("transport: no peer owns destination address")
	ErrBridgeClose = errors.New("transport: bridge closed")
)

// PacketConn is the datagram substrate a Bridge runs over: real UDP in
// production (NewUDPConn), an in-memory lossy pair in tests. Implementations
// must be safe for concurrent Send.
type PacketConn interface {
	// Send transmits one datagram to a peer named by an opaque endpoint
	// string (host:port for UDP).
	Send(endpoint string, pkt []byte) error
	// SetHandler installs the receive callback; it is invoked once per
	// inbound datagram with the sender's endpoint. Must be called before
	// traffic flows.
	SetHandler(func(pkt []byte, from string))
	// LocalEndpoint returns this conn's own endpoint name.
	LocalEndpoint() string
	// Close stops the conn; the handler will not fire afterwards.
	Close() error
}

// Route maps a Dagger NIC address range to a peer endpoint.
type Route struct {
	// Lo and Hi bound the NIC addresses (inclusive) owned by the peer.
	Lo, Hi uint32
	// Endpoint is the peer's PacketConn endpoint.
	Endpoint string
}

// RouteTable resolves destination NIC addresses to peer endpoints — the
// static switching table of the paper's ToR model, stretched across hosts.
type RouteTable struct {
	mu     sync.RWMutex
	routes []Route
}

// NewRouteTable builds a table from routes.
func NewRouteTable(routes ...Route) *RouteTable {
	t := &RouteTable{}
	for _, r := range routes {
		t.Add(r)
	}
	return t
}

// Add appends a route.
func (t *RouteTable) Add(r Route) {
	if r.Hi < r.Lo {
		panic(fmt.Sprintf("transport: route range [%d, %d] inverted", r.Lo, r.Hi))
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes = append(t.routes, r)
}

// Resolve returns the endpoint owning addr.
func (t *RouteTable) Resolve(addr uint32) (string, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, r := range t.routes {
		if addr >= r.Lo && addr <= r.Hi {
			return r.Endpoint, true
		}
	}
	return "", false
}
